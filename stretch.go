// Package stretch is a library-level reproduction of "Stretch: Balancing
// QoS and Throughput for Colocated Server Workloads on SMT Cores"
// (Margaritov et al., HPCA 2019).
//
// Stretch is a software-controlled asymmetric ROB/LSQ partitioning
// mechanism for dual-threaded SMT cores: when a latency-sensitive service
// runs below peak load, its tail-latency slack lets system software shift
// most of the instruction window to a colocated batch thread (B-mode),
// boosting batch throughput without violating QoS; under high load the
// skew can be reversed (Q-mode).
//
// The package exposes the three layers of the reproduction:
//
//   - a cycle-level SMT core model with programmable partition limit
//     registers (Colocation, Solo);
//   - the workload catalogue standing in for CloudSuite and SPEC CPU2006
//     (Services, BatchWorkloads);
//   - the software control plane and the full experiment suite
//     regenerating every table and figure in the paper (Controller,
//     RunExperiment, Experiments);
//   - the fleet layer: a synthetic traffic generator (Traffic,
//     Constant/Ramp/Diurnal/Burst arrival shapes) feeding a sharded
//     datacenter-scale simulation of thousands of controller-governed SMT
//     cores (Fleet, FleetConfig) — the §VI-D cluster studies scaled from
//     one core to a fleet — executed window-major with a measurement
//     barrier per window, scheduled by a pluggable stepped policy
//     (Scheduler: static, elastic proportional, power-of-two-choices, and
//     closed-loop feedback on measured tails) under replayable scenario
//     events (FleetScenario: server drains and restores, traffic surges,
//     heterogeneous server generations), with the per-window fleet series
//     exposed as FleetResult.WindowTrace. Tail quantiles are estimated by
//     mergeable log-bucketed histograms by default (TailEstimator), which
//     is what lets the fleet scale to tens of thousands of cores with
//     constant per-core memory; the exact sorted-sample estimator remains
//     available for small runs and accuracy comparisons. The fleet's
//     per-mode performance arithmetic can be calibrated from the
//     cycle-level layer (CalibrationTable, DefaultCalibration): each
//     client's B-/Q-mode LS slowdown and batch credit then come from its
//     own (service, batch-pairing) colocation's measured cells instead of
//     fleet-wide scalars, making datacenter-level throughput claims
//     traceable to the paper's microarchitectural model;
//   - the trace layer: a versioned CSV/JSONL trace-file format for
//     recorded per-window, per-client traffic (TraceFile, LoadTrace), a
//     deterministic synthesizer emitting the same format from generative
//     specs (SynthTrace) with ServeGen-style arrival realism —
//     Gamma-/Weibull-mixed Poisson processes (ArrivalProcess) and Zipf
//     client cohorts (ExpandCohort) — and fleet replay through
//     TraceFile.Traffic, bit-identical to simulating the generative spec
//     at the same seed.
//
// For policy introspection and tuning, a fleet run can record every
// scheduling decision (DecisionTraceLevel, FleetResult.DecisionTrace)
// with per-client allocation deltas and the signals that drove them,
// evaluate alternative assignments per window to measure the chosen
// assignment's regret (DecisionCounterfactual), and rank scheduler
// candidates over a trace suite by weighted multi-objective fitness
// (FitnessWeights, SearchSchedulers, SearchGrid).
//
// Quick start:
//
//	col, _ := stretch.NewColocation(stretch.WebSearch, "zeusmp")
//	res, _ := col.Measure()                      // equal partitioning
//	col, _ = stretch.NewColocation(stretch.WebSearch, "zeusmp",
//	    stretch.WithBMode())                     // 56-136 skew
//	boosted, _ := col.Measure()
package stretch

import (
	"fmt"

	"stretch/internal/calib"
	"stretch/internal/colocate"
	"stretch/internal/core"
	"stretch/internal/experiments"
	"stretch/internal/fleet"
	"stretch/internal/loadgen"
	"stretch/internal/monitor"
	"stretch/internal/sampling"
	"stretch/internal/stats"
	"stretch/internal/trace"
	"stretch/internal/tracefile"
	"stretch/internal/workload"
)

// Names of the four latency-sensitive services (Table III).
const (
	DataServing    = workload.DataServing
	WebServing     = workload.WebServing
	WebSearch      = workload.WebSearch
	MediaStreaming = workload.MediaStreaming
)

// Mode re-exports the Stretch operating modes.
type Mode = core.Mode

// Stretch operating modes (§IV): Baseline equal split, batch boost, QoS
// boost.
const (
	ModeBaseline = core.ModeBaseline
	ModeB        = core.ModeB
	ModeQ        = core.ModeQ
)

// BModeSkew and QModeSkew are the paper's headline partition points: the
// LS thread's ROB entries out of 192.
const (
	BModeSkew = experiments.BModeSkew
	QModeSkew = experiments.QModeSkew
)

// Services returns the latency-sensitive workload names.
func Services() []string { return workload.ServiceNames() }

// BatchWorkloads returns the 29 SPEC CPU2006 stand-in names.
func BatchWorkloads() []string { return workload.BatchNames() }

// Option customises a Colocation.
type Option func(*options) error

type options struct {
	cfg  core.Config
	spec sampling.Spec
}

// WithBMode applies the headline batch-boost skew (56-136).
func WithBMode() Option {
	return func(o *options) error { return o.cfg.SetSkew(BModeSkew) }
}

// WithQMode applies the headline QoS-boost skew (136-56).
func WithQMode() Option {
	return func(o *options) error { return o.cfg.SetSkew(QModeSkew) }
}

// WithSkew applies an arbitrary partitioning: ls ROB entries for the
// latency-sensitive thread, the rest for the batch thread.
func WithSkew(lsEntries int) Option {
	return func(o *options) error { return o.cfg.SetSkew(lsEntries) }
}

// WithDynamicROB replaces static partitioning with a dynamically shared
// window (the Fig. 11 configuration).
func WithDynamicROB() Option {
	return func(o *options) error {
		o.cfg.ROBPolicy = core.ROBDynamic
		return nil
	}
}

// WithConfig replaces the whole core configuration.
func WithConfig(cfg core.Config) Option {
	return func(o *options) error {
		o.cfg = cfg
		return nil
	}
}

// WithSamples overrides the sampling budget (samples × (warmup+measure)
// instructions per thread).
func WithSamples(samples int, warmup, measure uint64) Option {
	return func(o *options) error {
		if samples <= 0 || measure == 0 {
			return fmt.Errorf("stretch: invalid sampling budget")
		}
		o.spec = sampling.Spec{Samples: samples, Warmup: warmup, Measure: measure, Seed: o.spec.Seed}
		return nil
	}
}

// WithSeed reseeds the whole measurement.
func WithSeed(seed uint64) Option {
	return func(o *options) error {
		o.spec.Seed = seed
		return nil
	}
}

// Colocation measures a latency-sensitive workload sharing an SMT core
// with a batch workload.
type Colocation struct {
	ls, batch trace.Profile
	opt       options
}

// NewColocation builds a colocation of the named workloads. The
// latency-sensitive workload runs on hardware thread 0.
func NewColocation(ls, batch string, opts ...Option) (*Colocation, error) {
	lp, err := workload.Lookup(ls)
	if err != nil {
		return nil, err
	}
	bp, err := workload.Lookup(batch)
	if err != nil {
		return nil, err
	}
	o := options{cfg: core.Default(), spec: sampling.Standard()}
	for _, f := range opts {
		if err := f(&o); err != nil {
			return nil, err
		}
	}
	return &Colocation{ls: lp, batch: bp, opt: o}, nil
}

// Result holds the measured IPC of both hardware threads.
type Result struct {
	// LSIPC and BatchIPC are sampled mean IPCs.
	LSIPC, BatchIPC float64
	// LS and Batch expose the full aggregated metrics.
	LS, Batch sampling.Agg
}

// Measure runs the sampled simulation.
func (c *Colocation) Measure() (Result, error) {
	a0, a1, err := sampling.Colocated(c.opt.cfg, c.ls, c.batch, c.opt.spec)
	if err != nil {
		return Result{}, err
	}
	return Result{LSIPC: a0.IPC, BatchIPC: a1.IPC, LS: a0, Batch: a1}, nil
}

// Solo measures a workload alone on a full core (the normalisation
// baseline used throughout the paper).
func Solo(name string, opts ...Option) (sampling.Agg, error) {
	p, err := workload.Lookup(name)
	if err != nil {
		return sampling.Agg{}, err
	}
	o := options{cfg: core.Solo(), spec: sampling.Standard()}
	for _, f := range opts {
		if err := f(&o); err != nil {
			return sampling.Agg{}, err
		}
	}
	return sampling.Solo(o.cfg, p, o.spec)
}

// Slowdown and Speedup are the normalisations used by every figure.
var (
	Slowdown = colocate.Slowdown
	Speedup  = colocate.Speedup
)

// Controller re-exports the §IV-C software monitor.
type Controller = monitor.Controller

// ControllerConfig re-exports the monitor tuning.
type ControllerConfig = monitor.Config

// NewController builds the CPI2-style Stretch controller for a service
// with the given tail-latency target.
func NewController(targetMs float64) (*Controller, error) {
	return monitor.New(monitor.DefaultConfig(targetMs))
}

// ExperimentScale selects fidelity for RunExperiment.
type ExperimentScale = experiments.Scale

// Experiment scales.
const (
	ScaleQuick = experiments.Quick
	ScaleFull  = experiments.Full
)

// ExperimentTable is a printable experiment result.
type ExperimentTable = experiments.Table

// Experiments lists the available experiment ids in paper order.
func Experiments() []string {
	var ids []string
	for _, n := range experiments.All() {
		ids = append(ids, n.ID)
	}
	return ids
}

// RunExperiment regenerates one paper artifact ("fig9", "table2", ...).
func RunExperiment(id string, scale ExperimentScale) (ExperimentTable, error) {
	n, err := experiments.ByID(id)
	if err != nil {
		return ExperimentTable{}, err
	}
	return n.Run(experiments.NewContext(scale))
}

// --- Fleet layer: synthetic traffic + datacenter-scale simulation ---

// Traffic is a multi-client open-loop traffic specification: per-client
// arrival specs, core-share fractions and SLO classes over a windowed
// horizon.
type Traffic = loadgen.Traffic

// TrafficClient is one traffic source in a multi-client spec.
type TrafficClient = loadgen.Client

// ArrivalSpec couples an arrival shape with the noise model.
type ArrivalSpec = loadgen.Spec

// ArrivalShape produces each window's deterministic mean arrival rate.
type ArrivalShape = loadgen.Shape

// Arrival shapes: flat rate, invitro-style RPS ramp, diurnal day profile,
// and burst injection on top of any base shape.
type (
	Constant = loadgen.Constant
	Ramp     = loadgen.Ramp
	Diurnal  = loadgen.Diurnal
	Burst    = loadgen.Burst
)

// SLOClass scales a service's published QoS target for a traffic client.
type SLOClass = loadgen.SLOClass

// SLO classes.
const (
	SLOStandard = loadgen.SLOStandard
	SLOStrict   = loadgen.SLOStrict
	SLORelaxed  = loadgen.SLORelaxed
)

// WebSearchDay is the §VI-D Web Search diurnal profile (fractions of
// peak), reusable as Diurnal.HourLoad.
func WebSearchDay() [24]float64 { return loadgen.WebSearchDay() }

// VideoDay is the §VI-D YouTube-like diurnal profile (fractions of peak),
// reusable as Diurnal.HourLoad.
func VideoDay() [24]float64 { return loadgen.VideoDay() }

// Scheduler tunes the fleet's core-allocation and load-routing policy:
// the static Fraction split, elastic proportional reallocation (with
// hysteresis, min-core floors and a migration penalty),
// power-of-two-choices routing, or closed-loop feedback reallocation
// driven by each window's measured tails.
type Scheduler = fleet.SchedulerConfig

// SchedulerPolicy names a fleet scheduling policy.
type SchedulerPolicy = fleet.Policy

// Scheduler policies.
const (
	// PolicyStatic keeps each client on the cores its Fraction bought.
	PolicyStatic = fleet.PolicyStatic
	// PolicyProportional re-divides in-service cores every window in
	// proportion to each client's current SLO-weighted offered load.
	PolicyProportional = fleet.PolicyProportional
	// PolicyP2C allocates like PolicyProportional but routes each
	// window's load with power-of-two-choices instead of an even split.
	PolicyP2C = fleet.PolicyP2C
	// PolicyFeedback closes the loop: it allocates like
	// PolicyProportional but weights each client's demand by the previous
	// window's measured violations and slack, stealing cores from
	// slack-rich clients for violating ones.
	PolicyFeedback = fleet.PolicyFeedback
)

// ParseSchedulerPolicy resolves a policy name
// (static|proportional|p2c|feedback).
func ParseSchedulerPolicy(s string) (SchedulerPolicy, error) { return fleet.ParsePolicy(s) }

// Autoscale tunes the fleet's autoscaling layer: servers join/leave the
// fleet between windows under a scaling policy, with a warm-up cost — a
// joining server's cores pay the migration penalty for their first active
// window. Set it on FleetConfig.Autoscale; the zero value keeps every
// server in service.
type Autoscale = fleet.AutoscaleConfig

// AutoscalePolicy names a fleet autoscaling policy.
type AutoscalePolicy = fleet.AutoscalePolicy

// Autoscale policies.
const (
	// AutoscaleOff keeps the fleet size fixed.
	AutoscaleOff = fleet.AutoscaleOff
	// AutoscaleUtil keeps offered load over in-service saturation
	// capacity inside the configured utilisation band.
	AutoscaleUtil = fleet.AutoscaleUtil
	// AutoscaleViolation scales out on measured QoS-violation
	// core-windows and in on sustained slack.
	AutoscaleViolation = fleet.AutoscaleViolation
)

// ParseAutoscalePolicy resolves a policy name (off|util|violation).
func ParseAutoscalePolicy(s string) (AutoscalePolicy, error) { return fleet.ParseAutoscalePolicy(s) }

// Autoscaler is the stepped scaling interface: called once per window
// with the previous window's measured observation and the current fleet
// state, it returns how many servers should be in service. Supply a
// custom implementation via Autoscale.Custom.
type Autoscaler = fleet.Autoscaler

// AutoscaleState is the fleet state handed to an Autoscaler each window.
type AutoscaleState = fleet.ScaleState

// TailEstimator selects how the fleet estimates tail-latency quantiles at
// every level (per-request, per-window, per-client, fleet-wide).
type TailEstimator = stats.TailEstimator

// Tail estimators. The fleet default (EstimatorDefault) is the mergeable
// log-bucketed histogram: O(1) per observation and constant memory, with
// quantile error bounded by the bucket resolution (≤ 1/16 ≈ 6.25% per
// quantisation level, half that in expectation). EstimatorExact retains
// and sorts every observation — exact, but memory grows with request
// count; use it for small runs and accuracy comparisons.
const (
	EstimatorDefault   = stats.EstimatorDefault
	EstimatorExact     = stats.EstimatorExact
	EstimatorHistogram = stats.EstimatorHistogram
)

// ParseTailEstimator resolves an estimator name (exact|histogram).
func ParseTailEstimator(s string) (TailEstimator, error) { return stats.ParseTailEstimator(s) }

// EngineMode selects how the fleet computes per-core window tails: the
// discrete event-level simulator, the analytic fluid fast path, or the
// per-window auto classifier.
type EngineMode = fleet.Engine

// Engine modes. EngineDiscrete (the default) simulates every core-window
// event by event and is byte-identical to all pre-engine results.
// EngineFluid answers every sound core-window from the closed-form
// steady-state solver, falling back to the simulator outside the solver's
// envelope. EngineAuto classifies per (core, window): steady windows take
// the analytic fast path, transitional ones — mode switches, migration
// cold-starts, bursts, surges, utilization above the guard band — keep
// full discrete fidelity, which is what makes 1M-core × 24h fleet days
// tractable without giving up event-level accuracy where it matters.
const (
	EngineDiscrete = fleet.EngineDiscrete
	EngineFluid    = fleet.EngineFluid
	EngineAuto     = fleet.EngineAuto
)

// ParseEngineMode resolves an engine name (discrete|fluid|auto).
func ParseEngineMode(s string) (EngineMode, error) { return fleet.ParseEngine(s) }

// FleetWindowObservation is one window's measured fleet record: the
// feedback handed to the closed-loop scheduler after each window barrier,
// and the per-window entry of FleetResult.WindowTrace.
type FleetWindowObservation = fleet.WindowObservation

// FleetClientWindowObs is one client's aggregate within a single window.
type FleetClientWindowObs = fleet.ClientWindowObs

// FleetEvent is one scenario incident: a server drain/restore, a traffic
// surge redirected onto a client, or a server pinned at an older hardware
// generation's performance.
type FleetEvent = loadgen.Event

// FleetEventKind discriminates fleet events.
type FleetEventKind = loadgen.EventKind

// Fleet event kinds.
const (
	EventDrain   = loadgen.EventDrain
	EventRestore = loadgen.EventRestore
	EventSurge   = loadgen.EventSurge
	EventPerf    = loadgen.EventPerf
)

// FleetScenario is an ordered set of fleet events applied to one run.
type FleetScenario = loadgen.Scenario

// ParseFleetEvents parses a comma-separated event list, e.g.
// "drain:24:0,restore:72:0,surge:30-40:video:1.8,perf:3:0.85".
func ParseFleetEvents(s string) (FleetScenario, error) { return loadgen.ParseEvents(s) }

// CalibrationTable maps every calibrated (service, batch) colocation to
// its per-mode performance deltas — LS slowdown and batch speedup relative
// to equal partitioning — derived from the cycle-level core model. Set it
// on FleetConfig.Calibration to make the fleet's B-/Q-mode arithmetic
// pair-specific (the §V observation that Stretch's gains vary widely
// across colocations); leave it nil for the legacy uniform scalars.
type CalibrationTable = calib.Table

// CalibrationInputs pins everything a calibration table is a function of:
// the service × batch grid, the B-/Q-mode skews, and the sampling spec.
// Tables are content-addressed by CalibrationInputs.Fingerprint.
type CalibrationInputs = calib.Inputs

// CalibrationCell is one (service, batch, mode) delta pair.
type CalibrationCell = calib.Cell

// DefaultBatchPairing is the batch workload assumed for a TrafficClient
// whose Batch field is empty.
const DefaultBatchPairing = fleet.DefaultBatchPairing

// DefaultCalibration returns the committed default calibration table: the
// full service × batch catalogue at the headline 56-136 / 136-56 skews,
// pre-built so no cycle-level cost is paid at load time.
func DefaultCalibration() (*CalibrationTable, error) { return calib.Default() }

// DefaultCalibrationInputs returns the inputs the committed default table
// was built from.
func DefaultCalibrationInputs() CalibrationInputs { return calib.DefaultInputs() }

// BuildCalibrationTable runs the cycle-level model over the inputs' grid —
// the expensive path — and returns the per-pair per-mode table.
// Deterministic: the same inputs build the same table at any GOMAXPROCS.
func BuildCalibrationTable(in CalibrationInputs) (*CalibrationTable, error) { return calib.Build(in) }

// LoadCalibrationTable reads and verifies a cached table from disk.
func LoadCalibrationTable(path string) (*CalibrationTable, error) { return calib.Load(path) }

// CachedCalibrationTable returns the table for in, paying cycle-level cost
// at most once per content hash: a cache file whose stored hash matches
// the inputs' fingerprint is loaded; anything else (missing, stale,
// tampered) triggers a rebuild and rewrite.
func CachedCalibrationTable(path string, in CalibrationInputs) (*CalibrationTable, error) {
	return calib.Cached(path, in)
}

// FleetConfig parameterises a datacenter-scale run: fleet size, traffic,
// B-mode deltas (a CalibrationTable or the uniform scalars), request
// budget, worker pool, seed, scheduler policy and scenario events.
type FleetConfig = fleet.Config

// FleetResult aggregates a fleet run: per-client tails and violations,
// fleet-wide tails over every serving core-window (FleetP99Ms,
// FleetP999Ms), engaged-core-hours, and batch core-hours gained over
// equal partitioning.
type FleetResult = fleet.Result

// FleetClientMetrics is one traffic client's aggregate.
type FleetClientMetrics = fleet.ClientMetrics

// Fleet simulates a datacenter of controller-governed SMT cores under the
// configured traffic, sharded across a goroutine worker pool. Identical
// seeds reproduce identical aggregate metrics regardless of worker count.
func Fleet(cfg FleetConfig) (FleetResult, error) { return fleet.Run(cfg) }

// PeakRPSPerCore is the peak sustainable per-core arrival rate of a
// service — the anchor for building traffic in fractions of peak.
func PeakRPSPerCore(service string, nRequests int, seed uint64) (float64, error) {
	return fleet.PeakRPSPerCore(service, nRequests, seed)
}

// CapacitySpec asks for the minimum fleet meeting an SLO budget: a run
// template (whose Servers field is the search ceiling), a search floor,
// and the largest tolerable count of QoS-violating core-windows.
type CapacitySpec = fleet.CapacitySpec

// CapacityPlan is a capacity search result: the minimum fleet meeting the
// budget (when feasible) and every probed size in evaluation order.
type CapacityPlan = fleet.CapacityPlan

// CapacityPoint is one probed fleet size within a capacity search.
type CapacityPoint = fleet.CapacityPoint

// PlanCapacity binary-searches the minimum server count whose
// full-horizon run meets the SLO budget. Drive it from a recorded trace
// (TraceFile.Traffic) so the offered load is independent of the fleet
// size — then the answer is also seed- and worker-count-independent.
func PlanCapacity(spec CapacitySpec) (CapacityPlan, error) { return fleet.PlanCapacity(spec) }

// --- Decision tracing, counterfactuals and policy search ---

// DecisionTraceLevel selects how much of each window's scheduling
// decision a fleet run records into FleetResult.DecisionTrace: off
// (nothing, zero cost — the default), summary (per-client deltas and
// driving signals), or full (plus the per-core assignment snapshot).
type DecisionTraceLevel = fleet.TraceLevel

// Decision-trace levels.
const (
	DecisionTraceOff     = fleet.TraceOff
	DecisionTraceSummary = fleet.TraceSummary
	DecisionTraceFull    = fleet.TraceFull
)

// ParseDecisionTraceLevel resolves a trace-level name (off|summary|full).
func ParseDecisionTraceLevel(s string) (DecisionTraceLevel, error) { return fleet.ParseTraceLevel(s) }

// DecisionRecord is one window's complete scheduling decision: per-client
// allocation deltas with the signals that drove them, rebalance and
// hysteresis-suppression flags, migrations charged, the optional
// counterfactual evaluation, and (at full level) the per-core assignment.
type DecisionRecord = fleet.DecisionRecord

// ClientDecision is one client's slice of a window's decision.
type ClientDecision = fleet.ClientDecision

// DecisionAssignment is the full-level per-core assignment snapshot.
type DecisionAssignment = fleet.AssignmentRecord

// DecisionCounterfactual records a traced window's alternative-assignment
// evaluation: the chosen assignment's cost, the best cost over the chosen
// and all evaluated single-core-move alternatives, and the regret of the
// chosen assignment (≥ 0 by construction).
type DecisionCounterfactual = fleet.Counterfactual

// DecisionAlternative is one evaluated alternative assignment.
type DecisionAlternative = fleet.CounterfactualAlt

// FitnessWeights weighs the four fleet objectives — violation
// core-windows, batch core-hours gained, migration core-windows and Jain
// fairness — into the scalar fitness the policy search ranks by.
type FitnessWeights = fleet.FitnessWeights

// DefaultFitnessWeights is the hand-picked objective trade.
func DefaultFitnessWeights() FitnessWeights { return fleet.DefaultFitnessWeights() }

// ParseFitnessWeights resolves a weight spec like "viol=1,batch=0.5";
// unspecified keys keep their defaults.
func ParseFitnessWeights(s string) (FitnessWeights, error) { return fleet.ParseFitnessWeights(s) }

// SearchOutcome is one candidate scheduler's evaluation over a suite.
type SearchOutcome = fleet.SearchOutcome

// SearchGrid is the default scheduler-candidate grid: every policy at its
// defaults plus a sweep of the feedback gains; the hand-tuned feedback
// configuration is always a member.
func SearchGrid() []Scheduler { return fleet.SearchGrid() }

// SearchSchedulers evaluates every candidate over every suite config and
// returns the outcomes ranked by fitness, best first.
func SearchSchedulers(suite []FleetConfig, cands []Scheduler, w FitnessWeights) ([]SearchOutcome, error) {
	return fleet.SearchSchedulers(suite, cands, w)
}

// JainFairness is the Jain fairness index of xs: (Σx)²/(n·Σx²) — 1 when
// all equal and positive, approaching 1/n when one value dominates.
func JainFairness(xs []float64) float64 { return stats.Jain(xs) }

// --- Trace layer: recorded-traffic ingestion, synthesis and replay ---

// ArrivalProcess selects the window-population noise model layered on an
// ArrivalSpec's deterministic shape: exact rates, Poisson sampling, or an
// overdispersed Gamma-/Weibull-mixed Poisson whose CV knob captures the
// burstiness recorded production traces show and plain Poisson misses.
type ArrivalProcess = loadgen.Arrival

// Arrival processes. ArrivalDefault defers to the legacy ArrivalSpec
// Poisson flag.
const (
	ArrivalDefault = loadgen.ArrivalDefault
	ArrivalExact   = loadgen.ArrivalExact
	ArrivalPoisson = loadgen.ArrivalPoisson
	ArrivalGamma   = loadgen.ArrivalGamma
	ArrivalWeibull = loadgen.ArrivalWeibull
)

// ParseArrivalProcess resolves an arrival-process string:
// "exact", "poisson", "gamma:<cv>" or "weibull:<cv>". The CV result is
// the mixture's coefficient of variation (zero for the first two).
func ParseArrivalProcess(s string) (ArrivalProcess, float64, error) { return loadgen.ParseArrival(s) }

// ParseSLOClass resolves an SLO class name (standard|strict|relaxed).
func ParseSLOClass(s string) (SLOClass, error) { return loadgen.ParseSLOClass(s) }

// ReplayShape plays back a recorded per-window rate sequence verbatim —
// the shape a loaded TraceFile turns into. ScaleShape and ShiftShape wrap
// any base shape with a rate multiplier or a circular window offset; the
// cohort expander composes them to stagger and weight cohort members.
type (
	ReplayShape = loadgen.Replay
	ScaleShape  = loadgen.Scale
	ShiftShape  = loadgen.Shift
)

// CohortSpec expands one logical traffic client into a population of
// members with Zipf-skewed rate shares and phase-staggered shapes
// (ServeGen-style client realism).
type CohortSpec = loadgen.CohortSpec

// ExpandCohort splits a client into spec.Members cohort clients; shares
// are normalised Zipf weights, so expansion is deterministic and
// rate-preserving.
func ExpandCohort(c TrafficClient, spec CohortSpec) ([]TrafficClient, error) {
	return loadgen.ExpandCohort(c, spec)
}

// TraceFile is a parsed (or synthesised) traffic recording: a windowed
// horizon, per-client metadata, optional embedded scenario events, and
// the complete per-window rate matrix. Its Traffic method converts it
// into the fleet's traffic source; replay is seed-independent for the
// timelines (the rates are already a realisation) while the simulation's
// per-core streams stay seed-derived as usual.
type TraceFile = tracefile.Trace

// TraceClient is the per-client metadata a TraceFile carries.
type TraceClient = tracefile.Client

// TraceSynthSpec drives SynthTrace: the generative Traffic, scenario
// events to embed, and the realisation seed.
type TraceSynthSpec = tracefile.SynthSpec

// LoadTrace reads and strictly validates a trace file (CSV or JSONL,
// auto-detected) with line-numbered errors.
func LoadTrace(path string) (*TraceFile, error) { return tracefile.Load(path) }

// ParseTrace parses a trace from a reader; see LoadTrace.
var ParseTrace = tracefile.Parse

// SynthTrace materialises a generative traffic spec into a TraceFile
// through the same seed-derived streams the fleet uses: replaying the
// result under a fleet with the same seed is bit-identical to simulating
// the spec directly.
func SynthTrace(spec TraceSynthSpec) (*TraceFile, error) { return tracefile.Synth(spec) }
