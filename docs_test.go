package stretch

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target) with an
// optional title. Autolinks and reference-style definitions are out of
// scope — the repo's docs use inline links.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// TestDocsRelativeLinks fails on broken relative links in any *.md file in
// the repository, so docs cannot silently rot as files move. External
// (http/https/mailto) links and pure fragments are skipped; a relative
// link's target (with any #fragment stripped) must exist on disk relative
// to the file that contains it. CI runs this as its docs gate.
func TestDocsRelativeLinks(t *testing.T) {
	root := "."
	var mds []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		// SNIPPETS.md and PAPERS.md quote external repositories and papers
		// verbatim; links inside quoted material are not ours to fix.
		if base := filepath.Base(path); base == "SNIPPETS.md" || base == "PAPERS.md" {
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mds = append(mds, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mds) == 0 {
		t.Fatal("no markdown files found; is the test running from the repo root?")
	}
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}
