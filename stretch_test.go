package stretch

import (
	"bytes"
	"strings"
	"testing"
)

func TestCatalog(t *testing.T) {
	if len(Services()) != 4 {
		t.Fatalf("services = %d", len(Services()))
	}
	if len(BatchWorkloads()) != 29 {
		t.Fatalf("batch = %d", len(BatchWorkloads()))
	}
	for _, n := range []string{DataServing, WebServing, WebSearch, MediaStreaming} {
		found := false
		for _, s := range Services() {
			if s == n {
				found = true
			}
		}
		if !found {
			t.Errorf("service %s missing from catalogue", n)
		}
	}
}

func TestNewColocationErrors(t *testing.T) {
	if _, err := NewColocation("nope", "zeusmp"); err == nil {
		t.Fatal("unknown LS accepted")
	}
	if _, err := NewColocation(WebSearch, "nope"); err == nil {
		t.Fatal("unknown batch accepted")
	}
	if _, err := NewColocation(WebSearch, "zeusmp", WithSkew(0)); err == nil {
		t.Fatal("invalid skew accepted")
	}
	if _, err := NewColocation(WebSearch, "zeusmp", WithSamples(0, 1, 1)); err == nil {
		t.Fatal("invalid sampling accepted")
	}
}

func TestQuickColocationAndModes(t *testing.T) {
	fast := WithSamples(2, 10000, 12000)

	col, err := NewColocation(WebSearch, "zeusmp", fast)
	if err != nil {
		t.Fatal(err)
	}
	base, err := col.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if base.LSIPC <= 0 || base.BatchIPC <= 0 {
		t.Fatalf("bad IPCs %+v", base)
	}

	bm, err := NewColocation(WebSearch, "zeusmp", fast, WithBMode())
	if err != nil {
		t.Fatal(err)
	}
	bres, err := bm.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if Speedup(bres.BatchIPC, base.BatchIPC) <= 0 {
		t.Error("B-mode did not speed up the batch thread")
	}
	if Speedup(bres.LSIPC, base.LSIPC) >= 0 {
		t.Error("B-mode did not cost the LS thread")
	}

	qm, err := NewColocation(WebSearch, "zeusmp", fast, WithQMode())
	if err != nil {
		t.Fatal(err)
	}
	qres, err := qm.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if Speedup(qres.LSIPC, base.LSIPC) <= 0 {
		t.Error("Q-mode did not speed up the LS thread")
	}

	dyn, err := NewColocation(WebSearch, "zeusmp", fast, WithDynamicROB())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dyn.Measure(); err != nil {
		t.Fatal(err)
	}
}

func TestSoloAndSeed(t *testing.T) {
	fast := WithSamples(2, 8000, 10000)
	a, err := Solo("zeusmp", fast)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solo("zeusmp", fast, WithSeed(777))
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC == b.IPC {
		t.Error("reseeding did not change the measurement")
	}
	if _, err := Solo("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestControllerFacade(t *testing.T) {
	ctl, err := NewController(100)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Mode() != ModeBaseline {
		t.Fatal("controller must start in baseline")
	}
}

func TestExperimentsFacade(t *testing.T) {
	ids := Experiments()
	if len(ids) < 19 {
		t.Fatalf("%d experiments", len(ids))
	}
	tab, err := RunExperiment("table2", ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "192 entries") {
		t.Error("table2 output missing the ROB line")
	}
	if _, err := RunExperiment("nope", ScaleQuick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestModeConstants(t *testing.T) {
	if BModeSkew != 56 || QModeSkew != 136 {
		t.Fatal("headline skews must be 56-136 / 136-56")
	}
	if ModeB.String() != "B-mode" || ModeQ.String() != "Q-mode" {
		t.Fatal("mode strings")
	}
}

func TestFleetFacade(t *testing.T) {
	res, err := Fleet(FleetConfig{
		Servers: 1, CoresPerServer: 4,
		Traffic: Traffic{
			Windows: 8, WindowSec: 450,
			Clients: []TrafficClient{{
				Name: "search", Service: WebSearch, Fraction: 1,
				Spec: ArrivalSpec{Shape: Diurnal{
					HourLoad: WebSearchDay(), PeakRPS: 4 * 300,
				}, Poisson: true},
			}},
		},
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 4 || len(res.Clients) != 1 {
		t.Fatalf("fleet shape: %+v", res)
	}
	if res.BatchGain <= 0 {
		t.Fatalf("no batch gain at overnight load (%v)", res.BatchGain)
	}
	if _, err := Fleet(FleetConfig{}); err == nil {
		t.Fatal("empty fleet config accepted")
	}
	if _, err := PeakRPSPerCore("nope", 100, 1); err == nil {
		t.Fatal("unknown service accepted by PeakRPSPerCore")
	}
	if SLOStrict.Scale() >= SLOStandard.Scale() {
		t.Fatal("SLO re-exports broken")
	}
}

func TestSchedulerFacade(t *testing.T) {
	pol, err := ParseSchedulerPolicy("proportional")
	if err != nil || pol != PolicyProportional {
		t.Fatalf("ParseSchedulerPolicy: %v %v", pol, err)
	}
	scenario, err := ParseFleetEvents("drain:2:0,restore:6:0,surge:3-6:search:1.4")
	if err != nil {
		t.Fatal(err)
	}
	if len(scenario.Events) != 3 || scenario.Events[0].Kind != EventDrain {
		t.Fatalf("scenario: %+v", scenario)
	}
	res, err := Fleet(FleetConfig{
		Servers: 2, CoresPerServer: 4,
		Traffic: Traffic{
			Windows: 8, WindowSec: 450,
			Clients: []TrafficClient{
				{Name: "search", Service: WebSearch, Fraction: 0.5, SLO: SLOStrict,
					Spec: ArrivalSpec{Shape: Constant{Rate: 4 * 250}, Poisson: true}},
				{Name: "kv", Service: DataServing, Fraction: 0.5,
					Spec: ArrivalSpec{Shape: Ramp{StartRPS: 400, TargetRPS: 4000}, Poisson: true}},
			},
		},
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 150, Seed: 1,
		Scheduler: Scheduler{Policy: pol},
		Scenario:  scenario,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != PolicyProportional {
		t.Fatalf("policy echo: %v", res.Policy)
	}
	if res.DrainedCoreWindows != 4*4 {
		t.Fatalf("drained core-windows %d, want 16", res.DrainedCoreWindows)
	}
	if res.Migrations == 0 {
		t.Fatal("elastic run under drain recorded no migrations")
	}
	if _, err := ParseSchedulerPolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := ParseFleetEvents("warp:1:2"); err == nil {
		t.Fatal("unknown event kind accepted")
	}
}

func TestTraceFacade(t *testing.T) {
	traffic := Traffic{
		Windows: 6, WindowSec: 600,
		Clients: []TrafficClient{{
			Name: "search", Service: WebSearch, Fraction: 1, SLO: SLOStrict,
			Spec: ArrivalSpec{Shape: Constant{Rate: 1200}, Process: ArrivalGamma, CV: 1.5},
		}},
	}
	tr, err := SynthTrace(TraceSynthSpec{Traffic: traffic, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Windows != 6 || tr.Hours() != 1 || len(tr.Clients) != 1 {
		t.Fatalf("synthesised trace shape: %+v", tr)
	}

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := parsed.Traffic()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fleet(FleetConfig{
		Servers: 1, CoresPerServer: 2, Traffic: replay,
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 2 || len(res.Clients) != 1 {
		t.Fatalf("replayed fleet shape: %+v", res)
	}

	proc, cv, err := ParseArrivalProcess("weibull:1.5")
	if err != nil || proc != ArrivalWeibull || cv != 1.5 {
		t.Fatalf("ParseArrivalProcess: %v %v %v", proc, cv, err)
	}
	if _, _, err := ParseArrivalProcess("brownian"); err == nil {
		t.Fatal("unknown process accepted")
	}
	slo, err := ParseSLOClass("strict")
	if err != nil || slo != SLOStrict {
		t.Fatalf("ParseSLOClass: %v %v", slo, err)
	}

	members, err := ExpandCohort(traffic.Clients[0], CohortSpec{Members: 3, Skew: 1, PhaseWindows: 1})
	if err != nil || len(members) != 3 {
		t.Fatalf("ExpandCohort: %v %v", members, err)
	}
	sum := 0.0
	for _, m := range members {
		sum += m.Spec.Shape.RPS(0, 6)
	}
	if sum < 1199.9 || sum > 1200.1 {
		t.Fatalf("cohort rates sum to %v, want 1200", sum)
	}

	if _, err := LoadTrace("testdata/definitely-missing.trace"); err == nil {
		t.Fatal("missing trace accepted")
	}
}
