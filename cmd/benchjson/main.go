// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can publish benchmark trajectories (BENCH_*.json
// artifacts) that tooling can diff across commits without re-parsing the
// bench text format.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson -o BENCH_fleet.json
//	benchjson -o BENCH_fleet.json bench1.txt bench2.txt
//	benchjson -baseline BENCH_fleet.json -tolerance 4 bench.txt
//
// Each benchmark appears once, with every metric averaged over its -count
// repetitions (runs records how many were folded in). Standard metrics
// (ns/op, B/op, allocs/op) and custom b.ReportMetric units (e.g. req/s)
// are treated alike.
//
// With -baseline, the parsed input is compared against a previously
// emitted JSON snapshot instead of (or before) being written: every
// baseline benchmark must appear in the input with mean ns/op at most
// -tolerance times its baseline value, or the exit status is 1. The
// tolerance is deliberately coarse — the committed snapshot records one
// machine's numbers and CI hardware differs — so the gate catches
// order-of-magnitude regressions, not noise. Benchmarks new on the input
// side pass (they become baseline entries when the snapshot is
// regenerated); benchmarks missing from the input fail closed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one aggregated benchmark result.
type Benchmark struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (from the preceding `pkg:`
	// header line; empty if the input carried none). Same-named
	// benchmarks in different packages stay separate entries.
	Pkg string `json:"pkg,omitempty"`
	// Procs is the GOMAXPROCS suffix (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Runs is how many result lines (-count repetitions) were folded in.
	Runs int `json:"runs"`
	// Iterations is the total b.N across runs.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → mean value across runs (ns/op, B/op,
	// allocs/op, and any custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Packages   []string    `json:"packages,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// accum collects one benchmark's repetitions before averaging.
type accum struct {
	name       string
	pkg        string
	procs      int
	runs       int
	iterations int64
	sums       map[string]float64
	counts     map[string]int
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	baseline := flag.String("baseline", "", "committed snapshot to compare the input against (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 4, "with -baseline: fail when mean ns/op exceeds this multiple of the snapshot's")
	flag.Parse()

	var readers []io.Reader
	if flag.NArg() == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		readers = append(readers, f)
	}

	rep, err := parse(io.MultiReader(readers...))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		report, ok := compare(base, rep, *tolerance)
		fmt.Print(report)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: regression beyond %gx of %s\n", *tolerance, *baseline)
			os.Exit(1)
		}
		if *out == "" {
			return
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse consumes go-test bench output: header key: value lines and
// `BenchmarkName-P  N  value unit  value unit ...` result lines; anything
// else (PASS, ok, test logs) is ignored.
func parse(r io.Reader) (Report, error) {
	var rep Report
	accums := map[string]*accum{}
	var order []string
	pkg := "" // package of the benchmark lines that follow

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			rep.Packages = append(rep.Packages, pkg)
		case strings.HasPrefix(line, "Benchmark"):
			fields := strings.Fields(line)
			// A result line needs a name, an iteration count, and at
			// least one value-unit pair; odd trailing fields are not a
			// result line (e.g. a benchmark log line).
			if len(fields) < 4 || len(fields)%2 != 0 {
				continue
			}
			iters, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue
			}
			name, procs := splitProcs(fields[0])
			// Key by (package, name): a multi-package bench run (or
			// several per-package files) reuses benchmark names, and
			// averaging across packages would report a value that
			// corresponds to no real benchmark.
			key := pkg + "\x00" + name
			a, ok := accums[key]
			if !ok {
				a = &accum{name: name, pkg: pkg, procs: procs, sums: map[string]float64{}, counts: map[string]int{}}
				accums[key] = a
				order = append(order, key)
			}
			a.runs++
			a.iterations += iters
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return Report{}, fmt.Errorf("bad value %q in %q", fields[i], line)
				}
				unit := fields[i+1]
				a.sums[unit] += v
				a.counts[unit]++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}

	sort.Strings(rep.Packages)
	for _, key := range order {
		a := accums[key]
		b := Benchmark{
			Name: a.name, Pkg: a.pkg, Procs: a.procs,
			Runs: a.runs, Iterations: a.iterations,
			Metrics: make(map[string]float64, len(a.sums)),
		}
		for unit, sum := range a.sums {
			b.Metrics[unit] = sum / float64(a.counts[unit])
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, nil
}

// compare checks every baseline benchmark against the head report's mean
// ns/op, returning a human-readable delta table and whether the head
// stayed within tolerance×baseline everywhere. Head-only benchmarks are
// listed but never fail; baseline entries absent from the head fail
// closed (a gate that silently stops measuring guards nothing).
func compare(base, head Report, tolerance float64) (string, bool) {
	heads := make(map[string]Benchmark, len(head.Benchmarks))
	for _, b := range head.Benchmarks {
		heads[b.Pkg+"\x00"+b.Name] = b
	}
	var sb strings.Builder
	ok := true
	for _, b := range base.Benchmarks {
		key := b.Pkg + "\x00" + b.Name
		h, found := heads[key]
		delete(heads, key)
		baseNs := b.Metrics["ns/op"]
		if !found {
			fmt.Fprintf(&sb, "%-40s missing from input\n", b.Name)
			ok = false
			continue
		}
		headNs := h.Metrics["ns/op"]
		if baseNs <= 0 {
			fmt.Fprintf(&sb, "%-40s no baseline ns/op\n", b.Name)
			continue
		}
		ratio := headNs / baseNs
		verdict := "ok"
		if headNs > tolerance*baseNs {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Fprintf(&sb, "%-40s %14.0f -> %14.0f ns/op (%5.2fx) %s\n", b.Name, baseNs, headNs, ratio, verdict)
	}
	// Deterministic order for head-only entries.
	var extra []string
	for key := range heads {
		extra = append(extra, key)
	}
	sort.Strings(extra)
	for _, key := range extra {
		fmt.Fprintf(&sb, "%-40s new (no baseline)\n", heads[key].Name)
	}
	return sb.String(), ok
}

// splitProcs strips the trailing -P GOMAXPROCS suffix from a benchmark
// name, returning the bare name and P (0 when absent).
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 0
	}
	return name[:i], p
}
