package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: stretch
cpu: Intel(R) Xeon(R) CPU
BenchmarkFleet1kCores-8   	       3	 104805861 ns/op	         4400000 req/s	  378123 B/op	     195 allocs/op
BenchmarkFleet1kCores-8   	       3	 106805861 ns/op	         4300000 req/s	  378125 B/op	     195 allocs/op
BenchmarkFleet10kCores-8  	       1	1004805861 ns/op	  3600000 B/op	     765 allocs/op
BenchmarkTraceGen         	 5000000	       251 ns/op
PASS
ok  	stretch	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "Intel(R) Xeon(R) CPU" {
		t.Fatalf("header wrong: %+v", rep)
	}
	if len(rep.Packages) != 1 || rep.Packages[0] != "stretch" {
		t.Fatalf("packages wrong: %v", rep.Packages)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}

	fleet := rep.Benchmarks[0]
	if fleet.Name != "BenchmarkFleet1kCores" || fleet.Procs != 8 {
		t.Fatalf("name/procs wrong: %+v", fleet)
	}
	if fleet.Runs != 2 || fleet.Iterations != 6 {
		t.Fatalf("runs/iterations wrong: %+v", fleet)
	}
	// Metrics are means across the two -count runs.
	wantNs := (104805861.0 + 106805861.0) / 2
	if got := fleet.Metrics["ns/op"]; math.Abs(got-wantNs) > 1 {
		t.Fatalf("ns/op %v, want %v", got, wantNs)
	}
	if got := fleet.Metrics["req/s"]; math.Abs(got-4350000) > 1 {
		t.Fatalf("req/s %v, want 4350000", got)
	}
	if got := fleet.Metrics["allocs/op"]; got != 195 {
		t.Fatalf("allocs/op %v", got)
	}

	big := rep.Benchmarks[1]
	if big.Name != "BenchmarkFleet10kCores" || big.Runs != 1 || big.Metrics["B/op"] != 3600000 {
		t.Fatalf("10k bench wrong: %+v", big)
	}

	// No -P suffix: procs 0, name intact.
	tg := rep.Benchmarks[2]
	if tg.Name != "BenchmarkTraceGen" || tg.Procs != 0 || tg.Metrics["ns/op"] != 251 {
		t.Fatalf("trace bench wrong: %+v", tg)
	}
}

// TestParseKeepsPackagesSeparate: the same benchmark name in two packages
// (a ./... run, or two per-package files concatenated) must stay two
// entries — averaging across packages would report a value that
// corresponds to no real benchmark.
func TestParseKeepsPackagesSeparate(t *testing.T) {
	in := `pkg: stretch/internal/queueing
BenchmarkSimulate-4 	 10	 100 ns/op
pkg: stretch/internal/other
BenchmarkSimulate-4 	 10	 300 ns/op
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	if rep.Benchmarks[0].Pkg != "stretch/internal/queueing" || rep.Benchmarks[0].Metrics["ns/op"] != 100 {
		t.Fatalf("first entry wrong: %+v", rep.Benchmarks[0])
	}
	if rep.Benchmarks[1].Pkg != "stretch/internal/other" || rep.Benchmarks[1].Metrics["ns/op"] != 300 {
		t.Fatalf("second entry wrong: %+v", rep.Benchmarks[1])
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := `BenchmarkOdd-4 	notanumber	 12 ns/op
Benchmark log line without fields
BenchmarkGood-4 	 10	 12 ns/op
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkGood" {
		t.Fatalf("got %+v", rep.Benchmarks)
	}
}

func TestParseRejectsMalformedValues(t *testing.T) {
	in := "BenchmarkBad-4 \t 10 \t twelve ns/op\n"
	if _, err := parse(strings.NewReader(in)); err == nil {
		t.Fatal("malformed value accepted")
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 0},
		{"BenchmarkX-foo", "BenchmarkX-foo", 0},
		{"Benchmark-2-16", "Benchmark-2", 16},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", c.in, name, procs, c.name, c.procs)
		}
	}
}

func TestCompare(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Pkg: "stretch", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkB", Pkg: "stretch", Metrics: map[string]float64{"ns/op": 1000}},
	}}
	head := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Pkg: "stretch", Metrics: map[string]float64{"ns/op": 350}},
		{Name: "BenchmarkB", Pkg: "stretch", Metrics: map[string]float64{"ns/op": 900}},
		{Name: "BenchmarkNew", Pkg: "stretch", Metrics: map[string]float64{"ns/op": 5}},
	}}
	// Within 4x everywhere: passes, and the new benchmark is reported
	// without failing.
	out, ok := compare(base, head, 4)
	if !ok {
		t.Fatalf("in-tolerance comparison failed:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkNew") || !strings.Contains(out, "new (no baseline)") {
		t.Fatalf("head-only benchmark not reported:\n%s", out)
	}
	// 350 ns vs 100 ns exceeds 3x.
	out, ok = compare(base, head, 3)
	if ok || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("3.5x regression passed a 3x gate:\n%s", out)
	}
	// A baseline benchmark missing from the head fails closed.
	head.Benchmarks = head.Benchmarks[1:]
	out, ok = compare(base, head, 4)
	if ok || !strings.Contains(out, "missing from input") {
		t.Fatalf("missing benchmark passed:\n%s", out)
	}
	// Same name in a different package is not a match.
	other := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Pkg: "elsewhere", Metrics: map[string]float64{"ns/op": 1}},
		{Name: "BenchmarkB", Pkg: "stretch", Metrics: map[string]float64{"ns/op": 900}},
	}}
	if _, ok := compare(base, other, 4); ok {
		t.Fatal("cross-package name collision treated as a match")
	}
}
