// stretchsim synth: materialise a named generative traffic spec into a
// trace file, so synthetic and recorded traffic replay through the same
// path. The synthesizer reuses the -fleet named specs, optionally
// swapping every client's arrival process (e.g. gamma:1.5 for
// trace-like overdispersion) and expanding each client into a cohort of
// Zipf-weighted, phase-staggered members.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stretch/internal/loadgen"
	"stretch/internal/tracefile"
)

// synthParams mirrors the synth flag set.
type synthParams struct {
	spec           string
	servers, cores int
	hours          float64
	wph            int
	seed           uint64
	arrival        string
	cohorts        string
	events         string
	format         string
	out            string
}

// parseCohorts parses the -cohorts value: "N[:skew[:phase]]".
func parseCohorts(s string) (loadgen.CohortSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) > 3 {
		return loadgen.CohortSpec{}, fmt.Errorf("cohorts %q wants N[:skew[:phase]]", s)
	}
	var spec loadgen.CohortSpec
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return loadgen.CohortSpec{}, fmt.Errorf("cohorts members %q not an integer", parts[0])
	}
	spec.Members = n
	if len(parts) > 1 {
		skew, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return loadgen.CohortSpec{}, fmt.Errorf("cohorts skew %q not a number", parts[1])
		}
		spec.Skew = skew
	}
	if len(parts) > 2 {
		phase, err := strconv.Atoi(parts[2])
		if err != nil {
			return loadgen.CohortSpec{}, fmt.Errorf("cohorts phase %q not an integer", parts[2])
		}
		spec.PhaseWindows = phase
	}
	return spec, nil
}

// buildSynthTrace materialises the synth parameters into a trace, pure of
// any I/O so the golden tests can drive it directly.
func buildSynthTrace(p synthParams) (*tracefile.Trace, error) {
	windows := int(p.hours * float64(p.wph))
	windowSec := 3600.0 / float64(p.wph)
	if windows <= 0 {
		return nil, fmt.Errorf("non-positive synth horizon")
	}
	clients, err := namedSpecClients(p.spec, p.servers, p.cores, windows, p.wph, p.seed)
	if err != nil {
		return nil, err
	}

	scenario, err := loadgen.ParseEvents(p.events)
	if err != nil {
		return nil, err
	}
	if p.spec == "failover" && p.events == "" {
		scenario = failoverScenario(p.servers, windows)
	}

	if p.arrival != "" {
		proc, cv, err := loadgen.ParseArrival(p.arrival)
		if err != nil {
			return nil, err
		}
		for i := range clients {
			clients[i].Spec.Poisson = false
			clients[i].Spec.Process = proc
			clients[i].Spec.CV = cv
		}
	}

	if p.cohorts != "" {
		cspec, err := parseCohorts(p.cohorts)
		if err != nil {
			return nil, err
		}
		expanded := make([]loadgen.Client, 0, len(clients)*cspec.Members)
		members := make(map[string][]string, len(clients))
		for _, c := range clients {
			ms, err := loadgen.ExpandCohort(c, cspec)
			if err != nil {
				return nil, err
			}
			names := make([]string, len(ms))
			for i, m := range ms {
				names[i] = m.Name
			}
			members[c.Name] = names
			expanded = append(expanded, ms...)
		}
		clients = expanded
		// Surge events target clients by name; a surge on an expanded
		// client becomes one per member (the multiplicative factor is
		// share-independent, so per-member surges are equivalent).
		var evs []loadgen.Event
		for _, e := range scenario.Events {
			if e.Kind == loadgen.EventSurge && len(members[e.Client]) > 0 {
				for _, name := range members[e.Client] {
					m := e
					m.Client = name
					evs = append(evs, m)
				}
				continue
			}
			evs = append(evs, e)
		}
		scenario.Events = evs
	}

	return tracefile.Synth(tracefile.SynthSpec{
		Traffic: loadgen.Traffic{Clients: clients, Windows: windows, WindowSec: windowSec},
		Events:  scenario,
		Seed:    p.seed,
	})
}

// runSynth is the synth subcommand entry point.
func runSynth(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	var p synthParams
	fs.StringVar(&p.spec, "spec", "mixed", "generative traffic spec (websearch|video|mixed|failover)")
	fs.IntVar(&p.servers, "servers", 64, "fleet size the rates are anchored to: servers")
	fs.IntVar(&p.cores, "cores", 16, "fleet size the rates are anchored to: SMT cores per server")
	fs.Float64Var(&p.hours, "hours", 168, "trace horizon in hours")
	fs.IntVar(&p.wph, "windows-per-hour", 4, "trace windows per hour")
	fs.Uint64Var(&p.seed, "seed", 1, "realisation seed (replaying under the same fleet seed is bit-identical to simulating the spec)")
	fs.StringVar(&p.arrival, "arrival", "", "override every client's arrival process: exact|poisson|gamma:<cv>|weibull:<cv> (empty keeps the spec's defaults)")
	fs.StringVar(&p.cohorts, "cohorts", "", "expand each client into a cohort: N[:skew[:phase-windows]] (Zipf rate shares, staggered shapes)")
	fs.StringVar(&p.events, "events", "", "scenario annotations to embed, e.g. \"drain:24:0,surge:30-40:video:1.8\" (failover spec has a built-in default)")
	fs.StringVar(&p.format, "format", "csv", "output format (csv|jsonl)")
	fs.StringVar(&p.out, "o", "", "output path (empty writes to stdout)")
	fs.Parse(args)

	t, err := buildSynthTrace(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: synth: %v\n", err)
		os.Exit(2)
	}
	w := os.Stdout
	if p.out != "" {
		f, err := os.Create(p.out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stretchsim: synth: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := t.Write(w, p.format); err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: synth: %v\n", err)
		os.Exit(1)
	}
	if p.out != "" {
		fmt.Printf("wrote %s: %d windows × %d clients, %.0fh (%s)\n",
			p.out, t.Windows, len(t.Clients), t.Hours(), p.format)
	}
}
