package main

import (
	"path/filepath"
	"reflect"
	"testing"

	"stretch/internal/fleet"
)

// weekPlanParams is the capacity-planning configuration for the committed
// week trace: search 2–8 servers × 4 cores for the smallest fleet keeping
// the feedback policy within 150 violating core-windows over the 7 days.
// The range starts at 2 because the violation count is only monotone once
// the fleet is large enough for every client to hold at least one core
// per window; the 1-server point sits below that regime.
func weekPlanParams() planParams {
	return planParams{
		trace: weekTracePath, cores: 4,
		minServers: 2, maxServers: 8, budget: 150,
		policy: "feedback", estimator: "histogram",
		windowReq: 150, seed: 1,
		bSpeedup: 0.13, lsSlowdown: 0.07,
	}
}

// cheapPlanParams is a lighter variant (fewer simulated requests per
// core-window, tighter range) for the worker-independence and property
// tests that run the search repeatedly.
func cheapPlanParams() planParams {
	p := weekPlanParams()
	p.minServers, p.maxServers = 3, 8
	p.windowReq, p.budget = 60, 8
	return p
}

// TestPlanGolden locks the `stretchsim plan` report byte-for-byte on the
// committed week trace: every probe the bisection evaluates, and the
// minimum capacity it settles on.
func TestPlanGolden(t *testing.T) {
	p := weekPlanParams()
	spec, hours, err := buildPlanSpec(p)
	if err != nil {
		t.Fatal(err)
	}
	if hours != 168 {
		t.Fatalf("plan adopted %v hours from the trace, want 168", hours)
	}
	plan, err := fleet.PlanCapacity(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("week-trace plan infeasible at the 8-server ceiling")
	}
	checkGolden(t, filepath.Join("testdata", "plan_week.golden"), []byte(formatPlan(p, hours, plan)))
}

// TestPlanWorkerIndependence: the planned capacity — and every probe along
// the way — is bit-identical regardless of the worker pool size (the -race
// CI job runs this, covering the determinism contract under the race
// detector).
func TestPlanWorkerIndependence(t *testing.T) {
	run := func(workers int) fleet.CapacityPlan {
		p := cheapPlanParams()
		p.workers = workers
		spec, _, err := buildPlanSpec(p)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fleet.PlanCapacity(spec)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	base := run(1)
	if !base.Feasible {
		t.Fatal("cheap week-trace plan infeasible")
	}
	for _, workers := range []int{5, 16} {
		if got := run(workers); !reflect.DeepEqual(base, got) {
			t.Fatalf("plan with %d workers diverged from 1 worker:\n got %+v\nbase %+v", workers, got, base)
		}
	}
}

// TestPlanMonotoneOnWeekTrace is the property the bisection relies on,
// checked against the real committed trace: over the search range,
// violating core-windows are non-increasing in fleet size, and the
// bisection's answer equals an exhaustive linear scan's.
func TestPlanMonotoneOnWeekTrace(t *testing.T) {
	p := cheapPlanParams()
	spec, _, err := buildPlanSpec(p)
	if err != nil {
		t.Fatal(err)
	}
	linear := -1
	prev := -1
	for k := p.minServers; k <= p.maxServers; k++ {
		cfg := spec.Config
		cfg.Servers = k
		res, err := fleet.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.ViolationWindows > prev {
			t.Fatalf("violations not monotone: %d servers has %d, %d servers had %d",
				k, res.ViolationWindows, k-1, prev)
		}
		prev = res.ViolationWindows
		if linear < 0 && res.ViolationWindows <= p.budget {
			linear = k
		}
	}
	if linear < 0 {
		t.Fatalf("no fleet in %d-%d meets budget %d", p.minServers, p.maxServers, p.budget)
	}
	plan, err := fleet.PlanCapacity(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.Servers != linear {
		t.Fatalf("bisection picked %d servers (feasible=%v), linear scan says %d",
			plan.Servers, plan.Feasible, linear)
	}
}

// TestBuildPlanSpecRejectsBadInput: named generative specs are rejected
// (their offered load is anchored to the fleet size, so a capacity search
// over them is circular), as are unreadable trace paths.
func TestBuildPlanSpecRejectsBadInput(t *testing.T) {
	for _, trace := range []string{"mixed", "failover", "testdata/definitely-missing.trace.csv"} {
		p := weekPlanParams()
		p.trace = trace
		if _, _, err := buildPlanSpec(p); err == nil {
			t.Errorf("trace %q accepted", trace)
		}
	}
}
