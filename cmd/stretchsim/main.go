// Command stretchsim regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	stretchsim -list
//	stretchsim -experiment fig9 [-scale full]
//	stretchsim -experiment all [-scale quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stretch/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		exp   = flag.String("experiment", "all", "experiment id (e.g. fig9) or 'all'")
		scale = flag.String("scale", "quick", "experiment scale: quick or full")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.All() {
			fmt.Println(n.ID)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "stretchsim: unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}

	ctx := experiments.NewContext(sc)
	run := func(n experiments.Named) {
		start := time.Now()
		t, err := n.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stretchsim: %s: %v\n", n.ID, err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Printf("(%s, %s scale, %.1fs)\n\n", n.ID, sc, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, n := range experiments.All() {
			run(n)
		}
		return
	}
	n, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: %v\n", err)
		os.Exit(2)
	}
	run(n)
}
