// Command stretchsim regenerates the paper's tables and figures from the
// simulator, runs datacenter-scale fleet studies over synthetic traffic,
// and synthesises/replays recorded traffic traces.
//
// Usage:
//
//	stretchsim -list
//	stretchsim -experiment fig9 [-scale full]
//	stretchsim -experiment all [-scale quick]
//	stretchsim -fleet [-servers 64] [-cores 16] [-trace mixed|<file>]
//	           [-policy static|proportional|p2c|feedback] [-events "drain:24:0,..."]
//	           [-autoscale off|util|violation] [-autoscale-min 1]
//	           [-tail-estimator histogram|exact] [-engine discrete|fluid|auto]
//	           [-calib default|<path.json>]
//	           [-hours 24] [-windows-per-hour 4] [-window-requests 400]
//	           [-seed 1] [-fleet-workers 0] [-window-trace]
//	           [-trace-level off|summary|full] [-counterfactual-k 0]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	stretchsim synth [-spec mixed] [-servers 64] [-cores 16] [-hours 168]
//	           [-windows-per-hour 4] [-seed 1] [-arrival gamma:1.5]
//	           [-cohorts 4:1:6] [-events "..."] [-format csv|jsonl] [-o week.trace.csv]
//	stretchsim plan -trace week.trace.csv [-budget 0] [-cores 16]
//	           [-min-servers 1] [-max-servers 64] [-policy feedback]
//	           [-tail-estimator histogram|exact] [-engine discrete|fluid|auto]
//	           [-calib default|<path.json>]
//	           [-window-requests 400] [-seed 1] [-fleet-workers 0]
//	stretchsim search [-traces week.trace.csv,failover] [-servers 4] [-cores 4]
//	           [-weights viol=1,batch=0.5,migr=0.05,fair=25] [-top 0]
//	           [-tail-estimator histogram|exact] [-hours 24]
//	           [-windows-per-hour 4] [-window-requests 150] [-seed 1]
//
// A -trace value that is not a named spec is replayed from that trace
// file (as written by synth or by fleet tooling recording production
// traffic); the replay adopts the file's horizon and embedded events.
// plan binary-searches the minimum server count whose full-trace replay
// stays within the SLO budget of violating core-windows. search sweeps
// the scheduler-candidate grid over a comma-separated trace suite and
// ranks the candidates by weighted multi-objective fitness.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"stretch/internal/experiments"
	"stretch/internal/fleet"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "synth" {
		runSynth(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "plan" {
		runPlan(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "search" {
		runSearch(os.Args[2:])
		return
	}

	var (
		list  = flag.Bool("list", false, "list available experiments")
		exp   = flag.String("experiment", "all", "experiment id (e.g. fig9) or 'all'")
		scale = flag.String("scale", "quick", "experiment scale: quick or full")

		fleetMode  = flag.Bool("fleet", false, "run a datacenter-scale fleet study instead of experiments")
		servers    = flag.Int("servers", 64, "fleet: number of servers")
		cores      = flag.Int("cores", 16, "fleet: SMT cores per server")
		traceName  = flag.String("trace", "mixed", "fleet: traffic source — a named spec (websearch|video|mixed|failover) or a trace file path to replay")
		policy     = flag.String("policy", "static", "fleet: scheduler policy (static|proportional|p2c|feedback)")
		autoscale  = flag.String("autoscale", "off", "fleet: autoscaling policy (off|util|violation) — servers join/leave the fleet between windows")
		autoMin    = flag.Int("autoscale-min", 0, "fleet: autoscaler's in-service server floor (0 = default 1)")
		estimator  = flag.String("tail-estimator", "histogram", "fleet: tail quantile estimator (histogram|exact)")
		engine     = flag.String("engine", "discrete", "fleet: window engine — discrete event simulation, the analytic fluid fast path, or per-window auto classification (discrete|fluid|auto)")
		calibFlag  = flag.String("calib", "", "fleet: per-(service,batch,mode) calibration from the cycle-level model: \"default\" for the committed table, a .json path for an on-disk cache (built on miss), empty for uniform scalars")
		events     = flag.String("events", "", "fleet: scenario events, e.g. \"drain:24:0,restore:72:0,surge:30-40:video:1.8,perf:3:0.85\" (failover trace has a built-in default)")
		hours      = flag.Float64("hours", 24, "fleet: horizon in hours")
		wph        = flag.Int("windows-per-hour", 4, "fleet: monitoring windows per hour")
		windowReq  = flag.Int("window-requests", 400, "fleet: simulated requests per core-window")
		seed       = flag.Uint64("seed", 1, "fleet: experiment seed")
		fleetWork  = flag.Int("fleet-workers", 0, "fleet: goroutine pool size (0 = GOMAXPROCS)")
		bSpeedup   = flag.Float64("b-speedup", 0.13, "fleet: measured B-mode batch speedup")
		lsSlowdown = flag.Float64("ls-slowdown", 0.07, "fleet: measured B-mode LS slowdown")
		winTrace   = flag.Bool("window-trace", false, "fleet: print the per-window fleet series (cores, tails, violations per client)")
		cohStats   = flag.Bool("cohort-stats", false, "fleet: add the cohort fast-path line (coalesced core-windows, hit rate, distinct analytic solves) to the report")
		traceLevel = flag.String("trace-level", "off", "fleet: decision-trace level (off|summary|full) — records every scheduling decision and prints the decision-trace report")
		cfK        = flag.Int("counterfactual-k", 0, "fleet: evaluate up to K alternative assignments per traced window and report the chosen assignment's regret (needs -trace-level)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file before exiting")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stretchsim: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "stretchsim: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "stretchsim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "stretchsim: memprofile: %v\n", err)
			}
		}()
	}

	if *fleetMode {
		runFleet(fleetParams{
			servers: *servers, cores: *cores, trace: *traceName,
			policy: *policy, autoscale: *autoscale, autoMin: *autoMin,
			events: *events, estimator: *estimator, engine: *engine,
			calib: *calibFlag,
			hours: *hours, wph: *wph, windowReq: *windowReq,
			seed: *seed, workers: *fleetWork,
			bSpeedup: *bSpeedup, lsSlowdown: *lsSlowdown,
			windowTrace: *winTrace, cohortStats: *cohStats,
			traceLevel: *traceLevel, counterfactualK: *cfK,
		})
		return
	}

	if *list {
		for _, n := range experiments.All() {
			fmt.Println(n.ID)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "stretchsim: unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}

	ctx := experiments.NewContext(sc)
	run := func(n experiments.Named) {
		start := time.Now()
		t, err := n.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stretchsim: %s: %v\n", n.ID, err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Printf("(%s, %s scale, %.1fs)\n\n", n.ID, sc, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, n := range experiments.All() {
			run(n)
		}
		return
	}
	n, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: %v\n", err)
		os.Exit(2)
	}
	run(n)
}

// runFleet builds the traffic source — a named spec or a trace file —
// and simulates the fleet.
func runFleet(p fleetParams) {
	cfg, err := buildFleetConfig(&p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: %v\n", err)
		os.Exit(2)
	}
	start := time.Now()
	res, err := fleet.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: fleet: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Print(formatFleetResult(p, cfg, res))
	if p.windowTrace {
		fmt.Print(formatWindowTrace(res))
	}
	if cfg.DecisionTrace != fleet.TraceOff {
		fmt.Print(formatDecisionTrace(res))
	}
	simCW := float64(res.Cores)*float64(res.Windows) - float64(res.DrainedCoreWindows+res.ParkedCoreWindows+res.IdleCoreWindows)
	simCW -= float64(res.AnalyticCoreWindows) // analytic windows simulate no requests
	simReq := simCW * float64(p.windowReq)
	fmt.Printf("(%.1fs wall, ~%.1fM simulated requests, %.1fM req/s)\n",
		elapsed.Seconds(), simReq/1e6, simReq/1e6/elapsed.Seconds())
}
