// Command stretchsim regenerates the paper's tables and figures from the
// simulator, and runs datacenter-scale fleet studies over synthetic
// traffic.
//
// Usage:
//
//	stretchsim -list
//	stretchsim -experiment fig9 [-scale full]
//	stretchsim -experiment all [-scale quick]
//	stretchsim -fleet [-servers 64] [-cores 16] [-trace mixed]
//	           [-hours 24] [-windows-per-hour 4] [-window-requests 400]
//	           [-seed 1] [-fleet-workers 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stretch/internal/experiments"
	"stretch/internal/fleet"
	"stretch/internal/loadgen"
	"stretch/internal/workload"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		exp   = flag.String("experiment", "all", "experiment id (e.g. fig9) or 'all'")
		scale = flag.String("scale", "quick", "experiment scale: quick or full")

		fleetMode  = flag.Bool("fleet", false, "run a datacenter-scale fleet study instead of experiments")
		servers    = flag.Int("servers", 64, "fleet: number of servers")
		cores      = flag.Int("cores", 16, "fleet: SMT cores per server")
		traceName  = flag.String("trace", "mixed", "fleet: traffic spec (websearch|video|mixed)")
		hours      = flag.Float64("hours", 24, "fleet: horizon in hours")
		wph        = flag.Int("windows-per-hour", 4, "fleet: monitoring windows per hour")
		windowReq  = flag.Int("window-requests", 400, "fleet: simulated requests per core-window")
		seed       = flag.Uint64("seed", 1, "fleet: experiment seed")
		fleetWork  = flag.Int("fleet-workers", 0, "fleet: goroutine pool size (0 = GOMAXPROCS)")
		bSpeedup   = flag.Float64("b-speedup", 0.13, "fleet: measured B-mode batch speedup")
		lsSlowdown = flag.Float64("ls-slowdown", 0.07, "fleet: measured B-mode LS slowdown")
	)
	flag.Parse()

	if *fleetMode {
		runFleet(*servers, *cores, *traceName, *hours, *wph, *windowReq, *seed,
			*fleetWork, *bSpeedup, *lsSlowdown)
		return
	}

	if *list {
		for _, n := range experiments.All() {
			fmt.Println(n.ID)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "stretchsim: unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}

	ctx := experiments.NewContext(sc)
	run := func(n experiments.Named) {
		start := time.Now()
		t, err := n.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stretchsim: %s: %v\n", n.ID, err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Printf("(%s, %s scale, %.1fs)\n\n", n.ID, sc, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, n := range experiments.All() {
			run(n)
		}
		return
	}
	n, err := experiments.ByID(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: %v\n", err)
		os.Exit(2)
	}
	run(n)
}

// runFleet builds the named traffic spec and simulates the fleet.
func runFleet(servers, cores int, traceName string, hours float64, wph, windowReq int,
	seed uint64, workers int, bSpeedup, lsSlowdown float64) {

	nCores := servers * cores
	windows := int(hours * float64(wph))
	windowsPerDay := 24 * wph
	windowSec := 3600.0 / float64(wph)
	if windows <= 0 {
		fmt.Fprintln(os.Stderr, "stretchsim: non-positive fleet horizon")
		os.Exit(2)
	}

	// Anchor each service's traffic at its peak sustainable per-core rate
	// (memoised: the PeakLoad bisection is the expensive part of startup).
	peaks := map[string]float64{}
	peak := func(svc string) float64 {
		if p, ok := peaks[svc]; ok {
			return p
		}
		p, err := fleet.PeakRPSPerCore(svc, 4000, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stretchsim: %v\n", err)
			os.Exit(1)
		}
		peaks[svc] = p
		return p
	}

	var clients []loadgen.Client
	switch traceName {
	case "websearch":
		clients = []loadgen.Client{{
			Name: "search", Service: workload.WebSearch, Fraction: 1,
			Spec: loadgen.Spec{Shape: loadgen.Diurnal{
				HourLoad:      loadgen.WebSearchDay(),
				PeakRPS:       peak(workload.WebSearch) * float64(nCores),
				Smooth:        true,
				WindowsPerDay: windowsPerDay,
			}, Poisson: true},
		}}
	case "video":
		clients = []loadgen.Client{{
			Name: "video", Service: workload.MediaStreaming, Fraction: 1,
			Spec: loadgen.Spec{Shape: loadgen.Diurnal{
				HourLoad:      loadgen.VideoDay(),
				PeakRPS:       peak(workload.MediaStreaming) * float64(nCores),
				Smooth:        true,
				WindowsPerDay: windowsPerDay,
			}, Poisson: true},
		}}
	case "mixed":
		// Burst shape for the kvstore client: half-hour spikes every third
		// of the horizon. Clamp so coarse grains keep a real burst and tiny
		// horizons degrade to a single burst instead of a permanent one.
		burstLen := wph / 2
		if burstLen < 1 {
			burstLen = 1
		}
		burstEvery := windows / 3
		if burstEvery <= burstLen {
			burstEvery = 0
		}
		wsCores := float64(nCores) / 2
		vidCores := float64(nCores) * 3 / 10
		dsCores := float64(nCores) / 5
		clients = []loadgen.Client{
			{
				Name: "search", Service: workload.WebSearch, Fraction: 0.5,
				SLO: loadgen.SLOStrict,
				Spec: loadgen.Spec{Shape: loadgen.Diurnal{
					HourLoad:      loadgen.WebSearchDay(),
					PeakRPS:       peak(workload.WebSearch) * wsCores,
					Smooth:        true,
					WindowsPerDay: windowsPerDay,
				}, Poisson: true},
			},
			{
				Name: "video", Service: workload.MediaStreaming, Fraction: 0.3,
				SLO: loadgen.SLORelaxed,
				Spec: loadgen.Spec{Shape: loadgen.Diurnal{
					HourLoad:      loadgen.VideoDay(),
					PeakRPS:       peak(workload.MediaStreaming) * vidCores,
					Smooth:        true,
					WindowsPerDay: windowsPerDay,
				}, Poisson: true},
			},
			{
				Name: "kvstore", Service: workload.DataServing, Fraction: 0.2,
				Spec: loadgen.Spec{Shape: loadgen.Burst{
					Base: loadgen.Ramp{
						StartRPS:  0.3 * peak(workload.DataServing) * dsCores,
						TargetRPS: 0.7 * peak(workload.DataServing) * dsCores,
					},
					Start: windows / 3, Length: burstLen, Every: burstEvery,
					Magnitude: 1.8,
				}, Poisson: true},
			},
		}
	default:
		fmt.Fprintf(os.Stderr, "stretchsim: unknown fleet trace %q (websearch|video|mixed)\n", traceName)
		os.Exit(2)
	}

	cfg := fleet.Config{
		Servers: servers, CoresPerServer: cores,
		Traffic:       loadgen.Traffic{Clients: clients, Windows: windows, WindowSec: windowSec},
		BatchSpeedupB: bSpeedup, LSSlowdownB: lsSlowdown,
		WindowRequests: windowReq, Workers: workers, Seed: seed,
	}
	start := time.Now()
	res, err := fleet.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: fleet: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("== fleet: %d servers × %d cores = %d SMT cores, %s traffic, %.0fh ==\n",
		servers, cores, res.Cores, traceName, hours)
	fmt.Printf("%-10s %-16s %-9s %6s %12s %12s %12s %10s\n",
		"client", "service", "slo", "cores", "p99 (ms)", "p99.9 (ms)", "violations", "B hours")
	for _, cm := range res.Clients {
		fmt.Printf("%-10s %-16s %-9s %6d %12.1f %12.1f %7d/%-5d %10.0f\n",
			cm.Client, cm.Service, cm.SLO, cm.Cores, cm.P99Ms, cm.P999Ms,
			cm.ViolationWindows, cm.CoreWindows, cm.EngagedCoreHours)
	}
	simReq := float64(res.Cores) * float64(res.Windows) * float64(windowReq)
	fmt.Printf("\nengaged %.0f of %.0f core-hours (%.0f%%), %d controller switches\n",
		res.EngagedCoreHours, res.TotalCoreHours, 100*res.EngagedCoreHours/res.TotalCoreHours,
		res.Switches)
	fmt.Printf("batch core-hours gained vs equal partitioning: %.0f (%+.1f%%)\n",
		res.BatchCoreHoursGained, 100*res.BatchGain)
	fmt.Printf("(%.1fs wall, ~%.1fM simulated requests, %.1fM req/s)\n",
		elapsed.Seconds(), simReq/1e6, simReq/1e6/elapsed.Seconds())
}
