// Fleet-study construction and rendering for stretchsim -fleet, separated
// from main so the golden-artifact regression tests can build the exact
// CLI configuration and lock the exact CLI output.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"stretch/internal/calib"
	"stretch/internal/fleet"
	"stretch/internal/loadgen"
	"stretch/internal/sampling"
	"stretch/internal/stats"
	"stretch/internal/tracefile"
	"stretch/internal/workload"
)

// fleetParams mirrors the -fleet flag set.
type fleetParams struct {
	servers, cores  int
	trace           string
	policy          string
	autoscale       string
	autoMin         int
	events          string
	estimator       string
	engine          string
	calib           string
	hours           float64
	wph, windowReq  int
	seed            uint64
	workers         int
	bSpeedup        float64
	lsSlowdown      float64
	windowTrace     bool
	cohortStats     bool
	traceLevel      string
	counterfactualK int
}

// fleetTraces lists the named traffic specs.
func fleetTraces() []string { return []string{"websearch", "video", "mixed", "failover"} }

func isNamedTrace(name string) bool {
	for _, t := range fleetTraces() {
		if t == name {
			return true
		}
	}
	return false
}

// namedSpecClients materialises one of the named generative traffic specs
// for a fleet of servers × cores SMT cores over the given horizon. It is
// shared by -fleet (which simulates the spec directly) and synth (which
// records its realisation into a trace file).
func namedSpecClients(name string, servers, cores, windows, wph int, seed uint64) ([]loadgen.Client, error) {
	nCores := servers * cores
	windowsPerDay := 24 * wph

	// Anchor each service's traffic at its peak sustainable per-core rate
	// (memoised: the PeakLoad bisection is the expensive part of startup).
	peaks := map[string]float64{}
	peak := func(svc string) (float64, error) {
		if pk, ok := peaks[svc]; ok {
			return pk, nil
		}
		pk, err := fleet.PeakRPSPerCore(svc, 4000, seed)
		if err == nil {
			peaks[svc] = pk
		}
		return pk, err
	}

	diurnal := func(svc string, day [24]float64, coreShare float64) (loadgen.Spec, error) {
		pk, err := peak(svc)
		if err != nil {
			return loadgen.Spec{}, err
		}
		return loadgen.Spec{Shape: loadgen.Diurnal{
			HourLoad:      day,
			PeakRPS:       pk * coreShare,
			Smooth:        true,
			WindowsPerDay: windowsPerDay,
		}, Poisson: true}, nil
	}

	// The mixed client population: strict-SLO search, relaxed video, and
	// a bursty ramping kvstore. Shared by the mixed and failover traces.
	mixedClients := func() ([]loadgen.Client, error) {
		// Burst shape for the kvstore client: half-hour spikes every third
		// of the horizon. Clamp so coarse grains keep a real burst and tiny
		// horizons degrade to a single burst instead of a permanent one.
		burstLen := wph / 2
		if burstLen < 1 {
			burstLen = 1
		}
		burstEvery := windows / 3
		if burstEvery <= burstLen {
			burstEvery = 0
		}
		ws, err := diurnal(workload.WebSearch, loadgen.WebSearchDay(), float64(nCores)/2)
		if err != nil {
			return nil, err
		}
		vid, err := diurnal(workload.MediaStreaming, loadgen.VideoDay(), float64(nCores)*3/10)
		if err != nil {
			return nil, err
		}
		dsPeak, err := peak(workload.DataServing)
		if err != nil {
			return nil, err
		}
		dsCores := float64(nCores) / 5
		// Batch pairings span the calibration spectrum: a high-MLP
		// streamer behind search, a memory streamer behind video, a
		// pointer-chaser behind the kvstore. Inert without -calib.
		return []loadgen.Client{
			{Name: "search", Service: workload.WebSearch, Batch: workload.Zeusmp, Fraction: 0.5,
				SLO: loadgen.SLOStrict, Spec: ws},
			{Name: "video", Service: workload.MediaStreaming, Batch: "libquantum", Fraction: 0.3,
				SLO: loadgen.SLORelaxed, Spec: vid},
			{Name: "kvstore", Service: workload.DataServing, Batch: "mcf", Fraction: 0.2,
				Spec: loadgen.Spec{Shape: loadgen.Burst{
					Base: loadgen.Ramp{
						StartRPS:  0.3 * dsPeak * dsCores,
						TargetRPS: 0.7 * dsPeak * dsCores,
					},
					Start: windows / 3, Length: burstLen, Every: burstEvery,
					Magnitude: 1.8,
				}, Poisson: true}},
		}, nil
	}

	switch name {
	case "websearch":
		spec, err := diurnal(workload.WebSearch, loadgen.WebSearchDay(), float64(nCores))
		if err != nil {
			return nil, err
		}
		return []loadgen.Client{{
			Name: "search", Service: workload.WebSearch, Batch: workload.Zeusmp, Fraction: 1, Spec: spec,
		}}, nil
	case "video":
		spec, err := diurnal(workload.MediaStreaming, loadgen.VideoDay(), float64(nCores))
		if err != nil {
			return nil, err
		}
		return []loadgen.Client{{
			Name: "video", Service: workload.MediaStreaming, Batch: "libquantum", Fraction: 1, Spec: spec,
		}}, nil
	case "mixed", "failover":
		return mixedClients()
	default:
		return nil, fmt.Errorf("unknown fleet trace %q (%s, or a trace file path)",
			name, strings.Join(fleetTraces(), "|"))
	}
}

// buildFleetConfig materialises the trace, policy and event list into a
// fleet.Config. The trace is either a named generative spec or the path
// of a recorded trace file to replay; replay adopts the file's horizon
// (overwriting p.hours so the report header reflects it) and its embedded
// scenario annotations. The failover spec ships a default scenario — a
// quarter of the servers fail mid-day and return later, on a fleet whose
// last quarter of servers is an older hardware generation. -events
// overrides either source of events.
func buildFleetConfig(p *fleetParams) (fleet.Config, error) {
	policy, err := fleet.ParsePolicy(p.policy)
	if err != nil {
		return fleet.Config{}, err
	}
	autoPolicy, err := fleet.ParseAutoscalePolicy(p.autoscale)
	if err != nil {
		return fleet.Config{}, err
	}
	estimator, err := stats.ParseTailEstimator(p.estimator)
	if err != nil {
		return fleet.Config{}, err
	}
	engine, err := fleet.ParseEngine(p.engine)
	if err != nil {
		return fleet.Config{}, err
	}
	scenario, err := loadgen.ParseEvents(p.events)
	if err != nil {
		return fleet.Config{}, err
	}
	traceLevel, err := fleet.ParseTraceLevel(p.traceLevel)
	if err != nil {
		return fleet.Config{}, err
	}
	if p.counterfactualK < 0 {
		return fleet.Config{}, fmt.Errorf("negative -counterfactual-k %d", p.counterfactualK)
	}
	if p.counterfactualK > 0 && traceLevel == fleet.TraceOff {
		return fleet.Config{}, fmt.Errorf("-counterfactual-k needs -trace-level summary or full")
	}

	var (
		clients   []loadgen.Client
		windows   int
		windowSec float64
	)
	if isNamedTrace(p.trace) {
		windows = int(p.hours * float64(p.wph))
		windowSec = 3600.0 / float64(p.wph)
		if windows <= 0 {
			return fleet.Config{}, fmt.Errorf("non-positive fleet horizon")
		}
		clients, err = namedSpecClients(p.trace, p.servers, p.cores, windows, p.wph, p.seed)
		if err != nil {
			return fleet.Config{}, err
		}
		if p.trace == "failover" && p.events == "" {
			scenario = failoverScenario(p.servers, windows)
		}
	} else {
		if _, statErr := os.Stat(p.trace); statErr != nil {
			return fleet.Config{}, fmt.Errorf("unknown fleet trace %q (%s, or a trace file path)",
				p.trace, strings.Join(fleetTraces(), "|"))
		}
		t, err := tracefile.Load(p.trace)
		if err != nil {
			return fleet.Config{}, err
		}
		traffic, err := t.Traffic()
		if err != nil {
			return fleet.Config{}, err
		}
		clients = traffic.Clients
		windows, windowSec = t.Windows, t.WindowSec
		p.hours = t.Hours()
		if p.events == "" {
			scenario = t.Events
		}
	}

	table, err := resolveCalibration(p.calib, clients)
	if err != nil {
		return fleet.Config{}, err
	}

	return fleet.Config{
		Servers: p.servers, CoresPerServer: p.cores,
		Traffic:       loadgen.Traffic{Clients: clients, Windows: windows, WindowSec: windowSec},
		Calibration:   table,
		BatchSpeedupB: p.bSpeedup, LSSlowdownB: p.lsSlowdown,
		WindowRequests: p.windowReq, Workers: p.workers, Seed: p.seed,
		TailEstimator:   estimator,
		Engine:          engine,
		Scheduler:       fleet.SchedulerConfig{Policy: policy},
		DecisionTrace:   traceLevel,
		CounterfactualK: p.counterfactualK,
		Autoscale:       fleet.AutoscaleConfig{Policy: autoPolicy, MinServers: p.autoMin},
		Scenario:        scenario,
	}, nil
}

// resolveCalibration materialises the -calib flag: empty keeps the uniform
// scalars, "default" loads the committed full-catalogue table (no
// cycle-level cost), and any other value is an on-disk cache path covering
// exactly the trace's (service, batch) pairings — served from the file
// when its content hash matches the inputs, rebuilt from the cycle-level
// model (minutes of simulation) and written back on a miss.
func resolveCalibration(arg string, clients []loadgen.Client) (*calib.Table, error) {
	switch arg {
	case "":
		return nil, nil
	case "default":
		return calib.Default()
	}
	svcSet, batchSet := map[string]bool{}, map[string]bool{}
	for _, c := range clients {
		svcSet[c.Service] = true
		batchSet[fleet.BatchPairing(c)] = true
	}
	in := calib.Inputs{
		Services: sortedKeys(svcSet), Batches: sortedKeys(batchSet),
		BSkew: calib.DefaultBSkew, QSkew: calib.DefaultQSkew,
		Spec: sampling.Standard(),
	}
	return calib.Cached(arg, in)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// failoverScenario is the failover trace's default event list: a quarter
// of the servers (at least one) fails a third of the way through the
// horizon and returns at two thirds, search picks up a 1.3× redirected
// surge while the capacity is out, and the last quarter of the fleet is
// an older generation running at 85% performance.
func failoverScenario(servers, windows int) loadgen.Scenario {
	failed := servers / 4
	if failed < 1 {
		failed = 1
	}
	down, up := windows/3, 2*windows/3
	var evs []loadgen.Event
	for s := 0; s < failed; s++ {
		evs = append(evs,
			loadgen.Event{Kind: loadgen.EventDrain, Window: down, Server: s},
			loadgen.Event{Kind: loadgen.EventRestore, Window: up, Server: s},
		)
	}
	if down < up {
		evs = append(evs, loadgen.Event{
			Kind: loadgen.EventSurge, Window: down, Until: up, Client: "search", Factor: 1.3,
		})
	}
	for s := servers - servers/4; s < servers; s++ {
		evs = append(evs, loadgen.Event{Kind: loadgen.EventPerf, Server: s, Factor: 0.85})
	}
	return loadgen.Scenario{Events: evs}
}

// formatFleetResult renders the study (without wall-clock timing, so the
// output is reproducible and golden-testable).
func formatFleetResult(p fleetParams, cfg fleet.Config, res fleet.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== fleet: %d servers × %d cores = %d SMT cores, %s traffic, %.0fh ==\n",
		p.servers, p.cores, res.Cores, p.trace, p.hours)
	fmt.Fprintf(&b, "policy %s", res.Policy)
	if res.Autoscale != fleet.AutoscaleOff {
		fmt.Fprintf(&b, ", autoscale %s", res.Autoscale)
	}
	if n := len(cfg.Scenario.Events); n > 0 {
		evs := make([]string, n)
		for i, e := range cfg.Scenario.Events {
			evs[i] = e.String()
		}
		fmt.Fprintf(&b, ", %d events: %s", n, strings.Join(evs, ","))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-10s %-16s %-9s %6s %12s %12s %12s %10s\n",
		"client", "service", "slo", "cores", "p99 (ms)", "p99.9 (ms)", "violations", "B hours")
	for _, cm := range res.Clients {
		fmt.Fprintf(&b, "%-10s %-16s %-9s %6d %12.1f %12.1f %7d/%-5d %10.0f\n",
			cm.Client, cm.Service, cm.SLO, cm.Cores, cm.P99Ms, cm.P999Ms,
			cm.ViolationWindows, cm.CoreWindows, cm.EngagedCoreHours)
	}
	// The fleet-wide tail line is part of the histogram-estimator report
	// only, so pre-histogram golden files for the exact estimator keep
	// reproducing byte-identically.
	if res.TailEstimator == stats.EstimatorHistogram {
		fmt.Fprintf(&b, "fleet-wide tail over all serving core-windows: p99 %.1f ms, p99.9 %.1f ms (histogram estimator)\n",
			res.FleetP99Ms, res.FleetP999Ms)
	}
	// The engine line only appears on fluid/auto runs, so discrete golden
	// files keep reproducing byte-identically.
	if res.Engine != fleet.EngineDiscrete {
		serving := res.Cores*res.Windows - res.DrainedCoreWindows - res.ParkedCoreWindows - res.IdleCoreWindows
		pct := 0.0
		if serving > 0 {
			pct = 100 * float64(res.AnalyticCoreWindows) / float64(serving)
		}
		fmt.Fprintf(&b, "engine %s: %d of %d serving core-windows answered analytically (%.1f%%)\n",
			res.Engine, res.AnalyticCoreWindows, serving, pct)
		// The cohort line is opt-in (-cohort-stats), so every pre-cohort
		// golden file keeps reproducing byte-identically.
		if p.cohortStats {
			cpct := 0.0
			if serving > 0 {
				cpct = 100 * float64(res.CohortCoreWindows) / float64(serving)
			}
			fmt.Fprintf(&b, "cohort fast path: %d of %d serving core-windows coalesced (%.1f%% hit rate), %d distinct analytic solves\n",
				res.CohortCoreWindows, serving, cpct, res.AnalyticSolves)
		}
	}
	// The calibration block only appears on calibrated runs, so
	// uniform-scalar golden files keep reproducing byte-identically.
	if res.CalibrationHash != "" && cfg.Calibration != nil {
		fmt.Fprintf(&b, "\ncalibration %.12s (cycle-level table) — per-client colocation deltas vs equal partitioning:\n",
			res.CalibrationHash)
		fmt.Fprintf(&b, "%-10s %-14s %9s %9s %9s %16s\n",
			"client", "batch pairing", "B batch", "B LS cost", "Q batch", "batch gained (h)")
		for _, cm := range res.Clients {
			p, _ := cfg.Calibration.Pair(cm.Service, cm.Batch)
			fmt.Fprintf(&b, "%-10s %-14s %+8.1f%% %+8.1f%% %+8.1f%% %16.1f\n",
				cm.Client, cm.Batch, 100*p.B.BatchSpeedup, 100*p.B.LSSlowdown,
				100*p.Q.BatchSpeedup, cm.BatchCoreHoursGained)
		}
	}
	fmt.Fprintf(&b, "\nengaged %.0f of %.0f core-hours (%.0f%%), %d controller switches\n",
		res.EngagedCoreHours, res.TotalCoreHours, 100*res.EngagedCoreHours/res.TotalCoreHours,
		res.Switches)
	fmt.Fprintf(&b, "batch core-hours gained vs equal partitioning: %.0f (%+.1f%%)\n",
		res.BatchCoreHoursGained, 100*res.BatchGain)
	// The parked count joins the schedule line only on autoscaled runs, so
	// pre-autoscaling golden files keep reproducing byte-identically.
	if res.ParkedCoreWindows > 0 {
		fmt.Fprintf(&b, "schedule: %d migration, %d drained, %d parked, %d idle core-windows\n",
			res.Migrations, res.DrainedCoreWindows, res.ParkedCoreWindows, res.IdleCoreWindows)
	} else if res.Migrations+res.DrainedCoreWindows+res.IdleCoreWindows > 0 {
		fmt.Fprintf(&b, "schedule: %d migration, %d drained, %d idle core-windows\n",
			res.Migrations, res.DrainedCoreWindows, res.IdleCoreWindows)
	}
	return b.String()
}

// formatDecisionTrace renders the decision-trace report block: the
// horizon's rebalance/migration totals, the counterfactual regret summary
// when the evaluator ran, and one row per *active* window — a window where
// the allocator wanted to move cores (rebalanced or suppressed) — with the
// per-client allocation transition and the signals that drove it. Quiet
// windows (no desired moves) are elided: a week has thousands of them and
// they all say "nothing happened".
func formatDecisionTrace(res fleet.Result) string {
	var b strings.Builder
	rebalances, forced, suppressed, moves, migrations := 0, 0, 0, 0, 0
	cumRegret, regretFree := 0.0, 0
	hasCF := false
	for _, d := range res.DecisionTrace {
		if d.Rebalanced {
			rebalances++
		}
		if d.Forced {
			forced++
		}
		if d.Suppressed {
			suppressed++
		}
		moves += d.Moves
		migrations += d.Migrations
		if d.Counterfactual != nil {
			hasCF = true
			cumRegret += d.Counterfactual.Regret
			if d.Counterfactual.Regret == 0 {
				regretFree++
			}
		}
	}
	fmt.Fprintf(&b, "\ndecision trace (%d windows): %d rebalances (%d forced, %d suppressed), %d desired core-moves, %d migration core-windows\n",
		len(res.DecisionTrace), rebalances, forced, suppressed, moves, migrations)
	if hasCF {
		fmt.Fprintf(&b, "counterfactual: cumulative regret %.1f violation core-windows; chosen assignment was best in %d/%d windows\n",
			cumRegret, regretFree, len(res.DecisionTrace))
	}
	active := 0
	for _, d := range res.DecisionTrace {
		if d.Moves == 0 {
			continue
		}
		active++
		action := "rebalance"
		if d.Suppressed {
			action = "suppressed"
		}
		if d.Forced && d.Rebalanced {
			action = "rebalance(forced)"
		}
		fmt.Fprintf(&b, "win %-4d %-17s %2d moves %2d migr", d.Window, action, d.Moves, d.Migrations)
		if d.Counterfactual != nil {
			fmt.Fprintf(&b, " regret %4.1f", d.Counterfactual.Regret)
		}
		for ci, cd := range d.Clients {
			name := "?"
			if ci < len(res.Clients) {
				name = res.Clients[ci].Client
			}
			delta := "="
			if cd.Gained > 0 {
				delta = fmt.Sprintf("+%d", cd.Gained)
			} else if cd.Lost > 0 {
				delta = fmt.Sprintf("-%d", cd.Lost)
			}
			fmt.Fprintf(&b, " | %s %d(%s) w=%.2f viol=%d slack=%+.2f",
				name, cd.Cores, delta, cd.Weight, cd.Violations, cd.Slack)
		}
		b.WriteString("\n")
	}
	if active == 0 {
		b.WriteString("no windows with desired core-moves over the horizon\n")
	}
	return b.String()
}

// formatWindowTrace renders the per-window fleet series collected at each
// window barrier: the fleet-wide core partition and, per client, the cores
// held, the p99 over its core tails and its violating core-windows — the
// same observation records the closed-loop scheduler consumed online.
func formatWindowTrace(res fleet.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nwindow trace (%d windows):\n", len(res.WindowTrace))
	fmt.Fprintf(&b, "%-4s %5s %5s %5s %5s %5s %5s %5s %6s", "win", "serve", "drain", "park", "idle", "B", "viol", "migr", "cohort")
	for _, cm := range res.Clients {
		fmt.Fprintf(&b, " | %-20s", cm.Client+" c/p99/viol")
	}
	b.WriteString("\n")
	for _, o := range res.WindowTrace {
		fmt.Fprintf(&b, "%-4d %5d %5d %5d %5d %5d %5d %5d %6d",
			o.Window, o.ServingCores, o.DrainedCores, o.ParkedCores, o.IdleCores,
			o.BCores, o.Violations, o.Migrations, o.CohortCores)
		for _, co := range o.Clients {
			fmt.Fprintf(&b, " | %4d %10.1f %4d", co.Cores, co.TailP99Ms, co.Violations)
		}
		b.WriteString("\n")
	}
	return b.String()
}
