package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"stretch/internal/fleet"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenParams is a small but non-trivial fleet: big enough for the
// failover scenario to drain a whole server and for every client to hold
// multiple cores, small enough to keep the test fast. The pre-histogram
// golden files were blessed under the exact estimator, so it stays pinned
// here; histogram cases override it.
func goldenParams(trace, policy string) fleetParams {
	return fleetParams{
		servers: 4, cores: 4, trace: trace, policy: policy,
		estimator: "exact",
		hours:     6, wph: 4, windowReq: 150, seed: 1,
		bSpeedup: 0.13, lsSlowdown: 0.07,
	}
}

// TestFleetGolden locks the seed-1 stretchsim -fleet output for every
// trace (and each scheduler policy on the mixed trace) against committed
// golden files, so refactors cannot silently shift the paper-facing
// numbers. Run with -update to rebless after an intentional change. The
// feedback failover case runs the full 24h day: the closed loop only has
// violations to react to once the diurnal peak is in the horizon. Cases
// with estimator "histogram" lock the mergeable-histogram tail path,
// including the fleet-wide tail line it adds to the report; the exact
// cases' files predate the histogram estimator and must keep reproducing
// byte-identically.
func TestFleetGolden(t *testing.T) {
	cases := []struct {
		trace, policy string
		hours         float64
		estimator     string
		calib         string
		autoscale     string
		engine        string
		cohortStats   bool
	}{
		{"websearch", "static", 0, "", "", "", "", false},
		{"video", "static", 0, "", "", "", "", false},
		{"mixed", "static", 0, "", "", "", "", false},
		{"mixed", "proportional", 0, "", "", "", "", false},
		{"mixed", "p2c", 0, "", "", "", "", false},
		{"failover", "proportional", 0, "", "", "", "", false},
		{"mixed", "feedback", 0, "", "", "", "", false},
		{"failover", "feedback", 24, "", "", "", "", false},
		{"mixed", "static", 0, "histogram", "", "", "", false},
		{"mixed", "feedback", 0, "histogram", "", "", "", false},
		{"failover", "feedback", 24, "histogram", "", "", "", false},
		// Calibrated runs consume the committed default table: per-client
		// (service, batch) deltas from the cycle-level model, locked with
		// the per-client calibrated batch-speedup block in the report.
		{"mixed", "static", 0, "", "default", "", "", false},
		{"failover", "feedback", 24, "histogram", "default", "", "", false},
		// The autoscaled day: the util policy parks off-peak capacity and
		// pays warm-up migrations on the way back up, locked end to end —
		// policy echo, parked core-windows in the schedule line and all.
		{"mixed", "feedback", 24, "histogram", "", "util", "", false},
		// Auto-engine runs lock the fluid fast path's classifier output:
		// the engine line reports how many serving core-windows were
		// answered analytically, and the fleet numbers must hold steady
		// against the discrete goldens above.
		{"mixed", "feedback", 24, "histogram", "", "", "auto", false},
		{"failover", "feedback", 24, "histogram", "", "", "auto", false},
		// The cohort-stats line (opt-in via -cohort-stats) locks the
		// coalesced fast path's observability: coalesced core-windows,
		// hit rate and distinct analytic solves.
		{"mixed", "feedback", 24, "histogram", "", "", "auto", true},
	}
	for _, tc := range cases {
		name := tc.trace + "_" + tc.policy
		if tc.estimator != "" {
			name += "_" + tc.estimator
		}
		if tc.calib != "" {
			name += "_calibrated"
		}
		if tc.autoscale != "" {
			name += "_autoscale_" + tc.autoscale
		}
		if tc.engine != "" {
			name += "_" + tc.engine
		}
		if tc.cohortStats {
			name += "_cohort"
		}
		t.Run(name, func(t *testing.T) {
			p := goldenParams(tc.trace, tc.policy)
			if tc.hours != 0 {
				p.hours = tc.hours
			}
			if tc.estimator != "" {
				p.estimator = tc.estimator
			}
			p.calib = tc.calib
			p.autoscale = tc.autoscale
			p.engine = tc.engine
			p.cohortStats = tc.cohortStats
			cfg, err := buildFleetConfig(&p)
			if err != nil {
				t.Fatal(err)
			}
			res, err := fleet.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := formatFleetResult(p, cfg, res)
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestFleetGoldenRerouting sanity-checks the scenario behind the failover
// golden: the drained server's load visibly reroutes — the surviving
// cores' violation pressure and the schedule's drained count must be
// consistent with one server out for a third of the horizon.
func TestFleetGoldenRerouting(t *testing.T) {
	p := goldenParams("failover", "proportional")
	cfg, err := buildFleetConfig(&p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	windows := int(p.hours * float64(p.wph))
	down, up := windows/3, 2*windows/3
	wantDrained := p.cores * (up - down) // one server of 4 cores
	if res.DrainedCoreWindows != wantDrained {
		t.Fatalf("drained core-windows %d, want %d", res.DrainedCoreWindows, wantDrained)
	}
	if res.Migrations == 0 {
		t.Fatal("failover scenario scheduled no migrations")
	}
	// No offered load is dropped: every client still gets served windows
	// on the surviving cores throughout the drain.
	total := 0
	for _, cm := range res.Clients {
		total += cm.CoreWindows
	}
	if want := res.Cores*windows - res.DrainedCoreWindows - res.IdleCoreWindows; total != want {
		t.Fatalf("serving core-windows %d, want %d", total, want)
	}
}

// TestFeedbackBeatsProportionalOnFailover is the closed-loop acceptance
// check: over the full failover day (a quarter of the servers out while
// search absorbs a redirected surge), reacting to measured violations must
// beat reacting to offered load alone — fewer QoS-violation core-windows
// at equal-or-better batch core-hours gained. The absolute numbers are
// locked by testdata/failover_feedback.golden; this test locks the
// relation.
func TestFeedbackBeatsProportionalOnFailover(t *testing.T) {
	run := func(policy string) fleet.Result {
		t.Helper()
		p := goldenParams("failover", policy)
		p.hours = 24
		cfg, err := buildFleetConfig(&p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fleet.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	prop := run("proportional")
	fb := run("feedback")
	if prop.ViolationWindows == 0 {
		t.Fatal("failover day has no violations under proportional; the comparison is vacuous")
	}
	if fb.ViolationWindows >= prop.ViolationWindows {
		t.Errorf("feedback violated %d core-windows, want fewer than proportional's %d",
			fb.ViolationWindows, prop.ViolationWindows)
	}
	if fb.BatchCoreHoursGained < prop.BatchCoreHoursGained {
		t.Errorf("feedback gained %.1f batch core-hours < proportional's %.1f",
			fb.BatchCoreHoursGained, prop.BatchCoreHoursGained)
	}
}

// TestWindowTraceOutput sanity-checks the -window-trace rendering: one row
// per window plus the two header lines.
func TestWindowTraceOutput(t *testing.T) {
	p := goldenParams("mixed", "proportional")
	cfg, err := buildFleetConfig(&p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	windows := int(p.hours * float64(p.wph))
	if len(res.WindowTrace) != windows {
		t.Fatalf("window trace has %d entries, want %d", len(res.WindowTrace), windows)
	}
	out := formatWindowTrace(res)
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if want := windows + 3; lines != want {
		t.Fatalf("window trace rendered %d lines, want %d:\n%s", lines, want, out)
	}
}

func TestBuildFleetConfigRejectsBadInput(t *testing.T) {
	bad := []func(*fleetParams){
		func(p *fleetParams) { p.trace = "nope" },
		func(p *fleetParams) { p.policy = "nope" },
		func(p *fleetParams) { p.events = "drain:banana" },
		func(p *fleetParams) { p.hours = 0 },
		func(p *fleetParams) { p.estimator = "nope" },
		func(p *fleetParams) { p.engine = "nope" },
		func(p *fleetParams) { p.traceLevel = "nope" },
		func(p *fleetParams) { p.counterfactualK = -1 },
		func(p *fleetParams) { p.counterfactualK = 2 }, // needs -trace-level
	}
	for i, mutate := range bad {
		p := goldenParams("mixed", "static")
		mutate(&p)
		if _, err := buildFleetConfig(&p); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// Events parse and validate against the fleet.
	p := goldenParams("mixed", "proportional")
	p.events = "drain:4:0,restore:12:0,surge:6-12:video:1.5,perf:3:0.9"
	cfg, err := buildFleetConfig(&p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Scenario.Events) != 4 {
		t.Fatalf("parsed %d events", len(cfg.Scenario.Events))
	}
	if _, err := fleet.Run(cfg); err != nil {
		t.Fatal(err)
	}
}
