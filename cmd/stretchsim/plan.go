// stretchsim plan: the capacity-planner driver. Given a recorded trace
// file and an SLO budget, binary-search the minimum server count whose
// full-trace replay stays within the budget of violating core-windows
// (fleet.PlanCapacity). The trace fixes the offered load, so the answer
// depends only on the traffic and the budget — not on the fleet seed or
// the worker count — and is locked by a golden test.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stretch/internal/fleet"
)

// planParams mirrors the plan flag set.
type planParams struct {
	trace                  string
	cores                  int
	minServers, maxServers int
	budget                 int
	policy                 string
	estimator              string
	engine                 string
	calib                  string
	events                 string
	windowReq              int
	seed                   uint64
	workers                int
	bSpeedup               float64
	lsSlowdown             float64
}

// buildPlanSpec materialises the plan parameters into a capacity spec,
// pure of any I/O beyond loading the trace file, so the golden tests can
// drive it directly. It returns the replayed horizon in hours for the
// report header. Named generative specs are rejected: their rates are
// anchored to the fleet size, so shrinking the fleet would shrink the
// demand and the "minimum capacity" would be meaningless — synth the spec
// into a trace file first.
func buildPlanSpec(p planParams) (fleet.CapacitySpec, float64, error) {
	if isNamedTrace(p.trace) {
		return fleet.CapacitySpec{}, 0, fmt.Errorf(
			"plan needs a recorded trace file; spec %q sizes its load to the fleet (synth it first)", p.trace)
	}
	fp := fleetParams{
		servers: p.maxServers, cores: p.cores, trace: p.trace,
		policy: p.policy, events: p.events, estimator: p.estimator,
		engine: p.engine, calib: p.calib, windowReq: p.windowReq,
		seed: p.seed, workers: p.workers,
		bSpeedup: p.bSpeedup, lsSlowdown: p.lsSlowdown,
	}
	cfg, err := buildFleetConfig(&fp)
	if err != nil {
		return fleet.CapacitySpec{}, 0, err
	}
	return fleet.CapacitySpec{
		Config:              cfg,
		MinServers:          p.minServers,
		MaxViolationWindows: p.budget,
	}, fp.hours, nil
}

// formatPlan renders the search (without wall-clock timing, so the output
// is reproducible and golden-testable).
func formatPlan(p planParams, hours float64, plan fleet.CapacityPlan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== plan: minimum fleet for %s, %.0fh, policy %s ==\n", p.trace, hours, p.policy)
	fmt.Fprintf(&b, "SLO budget ≤ %d violating core-windows; search %d-%d servers × %d cores\n",
		plan.Budget, plan.MinServers, plan.MaxServers, plan.CoresPerServer)
	fmt.Fprintf(&b, "%-7s %6s %6s %11s %10s %17s %4s\n",
		"probe", "srv", "cores", "violations", "p99 (ms)", "batch gained (h)", "met")
	for i, pt := range plan.Probes {
		met := "no"
		if pt.Met {
			met = "yes"
		}
		fmt.Fprintf(&b, "%-7d %6d %6d %11d %10.1f %17.1f %4s\n",
			i+1, pt.Servers, pt.Cores, pt.ViolationWindows, pt.FleetP99Ms,
			pt.BatchCoreHoursGained, met)
	}
	if !plan.Feasible {
		fmt.Fprintf(&b, "no feasible fleet: %d violating core-windows at the %d-server ceiling (budget %d)\n",
			plan.Probes[0].ViolationWindows, plan.MaxServers, plan.Budget)
		return b.String()
	}
	fmt.Fprintf(&b, "minimum capacity: %d servers × %d cores = %d SMT cores (%d violating core-windows ≤ budget %d)\n",
		plan.Servers, plan.CoresPerServer, plan.Cores, plan.ViolationWindows, plan.Budget)
	return b.String()
}

// runPlan is the plan subcommand entry point.
func runPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	var p planParams
	fs.StringVar(&p.trace, "trace", "", "recorded trace file to plan against (required; synth one from a named spec)")
	fs.IntVar(&p.cores, "cores", 16, "SMT cores per server")
	fs.IntVar(&p.minServers, "min-servers", 1, "search floor: smallest fleet considered")
	fs.IntVar(&p.maxServers, "max-servers", 64, "search ceiling: largest fleet considered")
	fs.IntVar(&p.budget, "budget", 0, "SLO budget: largest tolerable count of QoS-violating core-windows over the horizon")
	fs.StringVar(&p.policy, "policy", "feedback", "scheduler policy each probe runs (static|proportional|p2c|feedback)")
	fs.StringVar(&p.estimator, "tail-estimator", "histogram", "tail quantile estimator (histogram|exact)")
	fs.StringVar(&p.engine, "engine", "discrete", "window engine each probe runs (discrete|fluid|auto)")
	fs.StringVar(&p.calib, "calib", "", "per-(service,batch,mode) calibration: \"default\", a .json cache path, or empty for uniform scalars")
	fs.StringVar(&p.events, "events", "", "scenario events overriding the trace's embedded annotations")
	fs.IntVar(&p.windowReq, "window-requests", 400, "simulated requests per core-window")
	fs.Uint64Var(&p.seed, "seed", 1, "experiment seed (the planned capacity is seed-independent for recorded traces)")
	fs.IntVar(&p.workers, "fleet-workers", 0, "goroutine pool size (0 = GOMAXPROCS)")
	fs.Float64Var(&p.bSpeedup, "b-speedup", 0.13, "measured B-mode batch speedup")
	fs.Float64Var(&p.lsSlowdown, "ls-slowdown", 0.07, "measured B-mode LS slowdown")
	fs.Parse(args)

	if p.trace == "" {
		fmt.Fprintln(os.Stderr, "stretchsim: plan: -trace is required")
		os.Exit(2)
	}
	spec, hours, err := buildPlanSpec(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: plan: %v\n", err)
		os.Exit(2)
	}
	start := time.Now()
	plan, err := fleet.PlanCapacity(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: plan: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(formatPlan(p, hours, plan))
	fmt.Printf("(%d probes, %.1fs wall)\n", len(plan.Probes), time.Since(start).Seconds())
}
