package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"stretch/internal/fleet"
	"stretch/internal/stats"
)

// weekTracePath is the committed 7-day trace: the mixed spec realised at
// the golden fleet scale with gamma-overdispersed arrivals, one window
// per hour. TestSynthGolden regenerates it under -update; the replay
// goldens below consume it, so synthesis is locked before replay is.
const weekTracePath = "testdata/week_mixed.trace.csv"

func weekSynthParams() synthParams {
	return synthParams{
		spec: "mixed", servers: 4, cores: 4,
		hours: 168, wph: 1, seed: 1,
		arrival: "gamma:1.5", format: "csv",
	}
}

// checkGolden compares got against the committed golden at path,
// rewriting it under -update.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestSynthGolden locks the synthesizer's output byte-for-byte: the 7-day
// mixed CSV trace the replay goldens run on, and a small failover JSONL
// trace with cohort expansion and the remapped surge annotations.
func TestSynthGolden(t *testing.T) {
	t.Run("week_mixed_csv", func(t *testing.T) {
		tr, err := buildSynthTrace(weekSynthParams())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, weekTracePath, buf.Bytes())
	})
	t.Run("failover_cohort_jsonl", func(t *testing.T) {
		p := synthParams{
			spec: "failover", servers: 4, cores: 4,
			hours: 6, wph: 2, seed: 1,
			cohorts: "2:1:2", format: "jsonl",
		}
		tr, err := buildSynthTrace(p)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, filepath.Join("testdata", "failover_cohort.trace.jsonl"), buf.Bytes())
	})
}

// replayParams is the 7-day replay configuration: the committed week
// trace on the golden fleet scale. The horizon comes from the trace file,
// not the hours field.
func replayParams(policy string) fleetParams {
	return fleetParams{
		servers: 4, cores: 4, trace: weekTracePath, policy: policy,
		estimator: "histogram",
		hours:     0, wph: 4, windowReq: 150, seed: 1,
		bSpeedup: 0.13, lsSlowdown: 0.07,
	}
}

// TestTraceReplayGolden locks the week-long replay report for the
// feedback and proportional policies on the identical trace — the
// policy-comparison-on-recorded-traffic workflow the trace subsystem
// exists for.
func TestTraceReplayGolden(t *testing.T) {
	for _, policy := range []string{"feedback", "proportional"} {
		t.Run(policy, func(t *testing.T) {
			p := replayParams(policy)
			cfg, err := buildFleetConfig(&p)
			if err != nil {
				t.Fatal(err)
			}
			if p.hours != 168 {
				t.Fatalf("replay adopted %v hours from the trace, want 168", p.hours)
			}
			res, err := fleet.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := formatFleetResult(p, cfg, res)
			checkGolden(t, filepath.Join("testdata", "replay_"+policy+".golden"), []byte(got))
		})
	}
}

// TestTraceReplayWorkerIndependence: the 7-day replay result is
// bit-identical regardless of the worker pool size (the -race CI job runs
// this, covering the determinism contract under the race detector).
func TestTraceReplayWorkerIndependence(t *testing.T) {
	run := func(workers int) fleet.Result {
		p := replayParams("feedback")
		p.windowReq = 60
		cfg, err := buildFleetConfig(&p)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = workers
		res, err := fleet.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, workers := range []int{5, 16} {
		if got := run(workers); !reflect.DeepEqual(base, got) {
			t.Fatalf("replay with %d workers diverged from 1 worker", workers)
		}
	}
}

// TestTraceReplayAutoMatchesDiscrete is the fluid fast path's accuracy
// contract on recorded traffic: replaying the committed week trace under
// the auto engine must answer a substantial share of serving core-windows
// analytically, land the fleet-wide tail quantiles within the histogram's
// bucket resolution of the discrete reference, and stay bit-identical
// across worker pool sizes (the -race CI job runs this too).
func TestTraceReplayAutoMatchesDiscrete(t *testing.T) {
	run := func(engine string, workers int) fleet.Result {
		t.Helper()
		p := replayParams("feedback")
		p.windowReq = 60
		p.engine = engine
		cfg, err := buildFleetConfig(&p)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = workers
		res, err := fleet.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	disc := run("discrete", 1)
	auto := run("auto", 1)
	if auto.AnalyticCoreWindows == 0 {
		t.Fatal("auto engine answered no windows analytically; the comparison is vacuous")
	}
	// A steady window's analytic answer can move its tail reading by at
	// most a histogram bucket, and the fleet-wide quantile over all
	// readings by at most one more: allow a two-bucket ratio either way.
	bound := math.Pow(2, 2*stats.NewTailHistogram().Resolution())
	check := func(name string, a, d float64) {
		t.Helper()
		if a > d*bound || d > a*bound {
			t.Errorf("fleet %s: auto %.2f ms vs discrete %.2f ms exceeds the %.3f× bucket-resolution bound",
				name, a, d, bound)
		}
	}
	check("p99", auto.FleetP99Ms, disc.FleetP99Ms)
	check("p99.9", auto.FleetP999Ms, disc.FleetP999Ms)
	for _, workers := range []int{5, 16} {
		if got := run("auto", workers); !reflect.DeepEqual(auto, got) {
			t.Fatalf("auto replay with %d workers diverged from 1 worker", workers)
		}
	}
}

// TestTraceReplayUsesEmbeddedEvents: a replayed trace's annotations reach
// the fleet scenario, and -events still overrides them.
func TestTraceReplayUsesEmbeddedEvents(t *testing.T) {
	dir := t.TempDir()
	p := synthParams{
		spec: "failover", servers: 4, cores: 4,
		hours: 6, wph: 2, seed: 1, format: "csv",
	}
	tr, err := buildSynthTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "failover.trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fp := replayParams("feedback")
	fp.trace = path
	cfg, err := buildFleetConfig(&fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Scenario.Events) != len(tr.Events.Events) || len(cfg.Scenario.Events) == 0 {
		t.Fatalf("embedded events lost: %d in trace, %d in config",
			len(tr.Events.Events), len(cfg.Scenario.Events))
	}

	fp = replayParams("feedback")
	fp.trace = path
	fp.events = "drain:2:0,restore:4:0"
	cfg, err = buildFleetConfig(&fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Scenario.Events) != 2 {
		t.Fatalf("-events override lost: got %d events", len(cfg.Scenario.Events))
	}
}

// TestTraceReplayRejectsBadSource: a trace value that is neither a named
// spec nor a readable trace file fails with a helpful error.
func TestTraceReplayRejectsBadSource(t *testing.T) {
	for _, trace := range []string{"nope", "testdata/definitely-missing.trace.csv"} {
		p := replayParams("static")
		p.trace = trace
		if _, err := buildFleetConfig(&p); err == nil {
			t.Errorf("trace %q accepted", trace)
		}
	}
	// A real file that is not a trace also fails, with a parse error.
	p := replayParams("static")
	p.trace = "testdata/mixed_static.golden"
	if _, err := buildFleetConfig(&p); err == nil {
		t.Error("non-trace file accepted")
	}
}

// TestSynthRejectsBadInput mirrors the -fleet validation test for the
// synth flag set.
func TestSynthRejectsBadInput(t *testing.T) {
	bad := []func(*synthParams){
		func(p *synthParams) { p.spec = "nope" },
		func(p *synthParams) { p.hours = 0 },
		func(p *synthParams) { p.arrival = "gaussian" },
		func(p *synthParams) { p.arrival = "gamma:-1" },
		func(p *synthParams) { p.cohorts = "0" },
		func(p *synthParams) { p.cohorts = "2:x" },
		func(p *synthParams) { p.cohorts = "2:1:1:1" },
		func(p *synthParams) { p.events = "drain:banana" },
	}
	for i, mutate := range bad {
		p := weekSynthParams()
		p.hours = 2 // keep the valid-path check cheap if a mutation is a no-op
		mutate(&p)
		if _, err := buildSynthTrace(p); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
