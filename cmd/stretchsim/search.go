// stretchsim search: the policy-search driver. Sweep the scheduler
// candidate grid (every policy, plus PolicyFeedback's gain × decay ×
// hysteresis tunings) over a comma-separated suite of traffic sources —
// recorded trace files and/or named specs — and rank the candidates by
// weighted multi-objective fitness (fleet.FitnessWeights). The hand-tuned
// feedback configuration is always in the grid, so the report's winner is
// at least as fit; the week-trace ranking is locked by a golden test.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stretch/internal/fleet"
)

// searchParams mirrors the search flag set.
type searchParams struct {
	traces         string
	servers, cores int
	weights        string
	top            int
	estimator      string
	engine         string
	calib          string
	events         string
	hours          float64
	wph, windowReq int
	seed           uint64
	workers        int
	bSpeedup       float64
	lsSlowdown     float64
}

// buildSearchSuite materialises the comma-separated trace list into one
// fleet.Config per entry (sharing the fleet shape and simulation knobs)
// plus the entry names for the report. Unlike plan, named generative specs
// are allowed: the fleet size is fixed, so their fleet-anchored rates are
// well-defined.
func buildSearchSuite(p searchParams) ([]fleet.Config, []string, error) {
	names := strings.Split(p.traces, ",")
	suite := make([]fleet.Config, 0, len(names))
	for _, name := range names {
		if name == "" {
			return nil, nil, fmt.Errorf("empty entry in trace suite %q", p.traces)
		}
		fp := fleetParams{
			servers: p.servers, cores: p.cores, trace: name,
			policy: "static", events: p.events, estimator: p.estimator,
			engine: p.engine, calib: p.calib,
			hours: p.hours, wph: p.wph, windowReq: p.windowReq,
			seed: p.seed, workers: p.workers,
			bSpeedup: p.bSpeedup, lsSlowdown: p.lsSlowdown,
		}
		cfg, err := buildFleetConfig(&fp)
		if err != nil {
			return nil, nil, err
		}
		suite = append(suite, cfg)
	}
	return suite, names, nil
}

// formatSearchReport renders the ranked sweep (without wall-clock timing,
// so the output is reproducible and golden-testable). top bounds the
// printed rows (0 = all); the hand-tuned feedback baseline is always
// reported in the closing comparison line, wherever it ranked.
func formatSearchReport(p searchParams, names []string, w fleet.FitnessWeights, outs []fleet.SearchOutcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== search: %d scheduler candidates × %d traces (%s) ==\n",
		len(outs), len(names), strings.Join(names, ", "))
	fmt.Fprintf(&b, "fitness weights %s; %d servers × %d cores\n", w, p.servers, p.cores)
	fmt.Fprintf(&b, "%-4s %-12s %5s %5s %5s %9s %6s %5s %9s %9s\n",
		"rank", "policy", "gain", "decay", "hyst", "fitness", "viol", "migr", "batch(h)", "fairness")
	shown := len(outs)
	if p.top > 0 && p.top < shown {
		shown = p.top
	}
	baseline := fleet.SchedulerConfig{Policy: fleet.PolicyFeedback}.WithDefaults()
	var best, handTuned *fleet.SearchOutcome
	for i := range outs {
		o := &outs[i]
		if o.Scheduler == baseline && handTuned == nil {
			handTuned = o
		}
		if best == nil {
			best = o
		}
		if i >= shown {
			continue
		}
		gain, decay := "-", "-"
		if o.Scheduler.Policy == fleet.PolicyFeedback {
			gain = fmt.Sprintf("%.2f", o.Scheduler.FeedbackGain)
			decay = fmt.Sprintf("%.2f", o.Scheduler.FeedbackDecay)
		}
		fmt.Fprintf(&b, "%-4d %-12s %5s %5s %5.2f %9.1f %6d %5d %9.1f %9.3f\n",
			i+1, o.Scheduler.Policy, gain, decay, o.Scheduler.Hysteresis,
			o.Fitness, o.Violations, o.Migrations, o.BatchCoreHoursGained, o.Fairness)
	}
	if shown < len(outs) {
		fmt.Fprintf(&b, "… %d more candidates (-top 0 shows all)\n", len(outs)-shown)
	}
	if best != nil && handTuned != nil {
		desc := best.Scheduler.Policy.String()
		if best.Scheduler.Policy == fleet.PolicyFeedback {
			desc += fmt.Sprintf(" gain %s decay %s", trimFloat(best.Scheduler.FeedbackGain),
				trimFloat(best.Scheduler.FeedbackDecay))
		}
		desc += fmt.Sprintf(" hysteresis %s", trimFloat(best.Scheduler.Hysteresis))
		fmt.Fprintf(&b, "best: %s — fitness %.1f vs hand-tuned feedback %.1f (%+.1f)\n",
			desc, best.Fitness, handTuned.Fitness, best.Fitness-handTuned.Fitness)
	}
	return b.String()
}

// trimFloat renders a tuning value without trailing zeros.
func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
}

// runSearch is the search subcommand entry point.
func runSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	var p searchParams
	fs.StringVar(&p.traces, "traces", "testdata/week_mixed.trace.csv,failover",
		"comma-separated trace suite: recorded trace files and/or named specs (websearch|video|mixed|failover)")
	fs.IntVar(&p.servers, "servers", 4, "number of servers")
	fs.IntVar(&p.cores, "cores", 4, "SMT cores per server")
	fs.StringVar(&p.weights, "weights", "", "fitness weight spec, e.g. \"viol=1,batch=0.5,migr=0.05,fair=25\" (empty = defaults)")
	fs.IntVar(&p.top, "top", 0, "print only the top N candidates (0 = all)")
	fs.StringVar(&p.estimator, "tail-estimator", "histogram", "tail quantile estimator (histogram|exact)")
	fs.StringVar(&p.engine, "engine", "discrete", "window engine each run uses (discrete|fluid|auto)")
	fs.StringVar(&p.calib, "calib", "", "per-(service,batch,mode) calibration: \"default\", a .json cache path, or empty for uniform scalars")
	fs.StringVar(&p.events, "events", "", "scenario events overriding each trace's embedded/default annotations")
	fs.Float64Var(&p.hours, "hours", 24, "horizon for named generative specs (trace files bring their own)")
	fs.IntVar(&p.wph, "windows-per-hour", 4, "monitoring windows per hour for named specs")
	fs.IntVar(&p.windowReq, "window-requests", 150, "simulated requests per core-window")
	fs.Uint64Var(&p.seed, "seed", 1, "experiment seed")
	fs.IntVar(&p.workers, "fleet-workers", 0, "goroutine pool size per run (0 = GOMAXPROCS)")
	fs.Float64Var(&p.bSpeedup, "b-speedup", 0.13, "measured B-mode batch speedup")
	fs.Float64Var(&p.lsSlowdown, "ls-slowdown", 0.07, "measured B-mode LS slowdown")
	fs.Parse(args)

	weights, err := fleet.ParseFitnessWeights(p.weights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: search: %v\n", err)
		os.Exit(2)
	}
	suite, names, err := buildSearchSuite(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: search: %v\n", err)
		os.Exit(2)
	}
	start := time.Now()
	outs, err := fleet.SearchSchedulers(suite, fleet.SearchGrid(), weights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stretchsim: search: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(formatSearchReport(p, names, weights, outs))
	fmt.Printf("(%d candidates × %d traces, %.1fs wall)\n", len(outs), len(suite), time.Since(start).Seconds())
}
