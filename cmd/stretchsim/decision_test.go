package main

import (
	"path/filepath"
	"testing"

	"stretch/internal/fleet"
)

// TestDecisionTraceGolden locks the -trace-level summary report on the
// mixed feedback day, counterfactuals included: the full fleet report
// followed by the decision-trace block (rebalance counts, cumulative
// regret, one row per window that wanted core-moves). Rebless with
// -update after an intentional change.
func TestDecisionTraceGolden(t *testing.T) {
	p := goldenParams("mixed", "feedback")
	p.traceLevel = "summary"
	p.counterfactualK = 2
	cfg, err := buildFleetConfig(&p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := formatFleetResult(p, cfg, res) + formatDecisionTrace(res)
	checkGolden(t, filepath.Join("testdata", "mixed_feedback_trace.golden"), []byte(got))
}

// TestSearchGolden locks the ranked policy-search report over the
// committed week trace: 21 grid candidates, fitness-ordered, with the
// hand-tuned feedback comparison line. The report format excludes wall
// time, so the file is byte-stable.
func TestSearchGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("21-candidate sweep over the 7-day trace")
	}
	p := searchParams{
		traces: weekTracePath, servers: 4, cores: 4,
		estimator: "histogram", engine: "discrete",
		hours: 24, wph: 4, windowReq: 60, seed: 1,
		bSpeedup: 0.13, lsSlowdown: 0.07,
	}
	weights, err := fleet.ParseFitnessWeights(p.weights)
	if err != nil {
		t.Fatal(err)
	}
	suite, names, err := buildSearchSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := fleet.SearchSchedulers(suite, fleet.SearchGrid(), weights)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance guarantee, asserted on the same run the golden locks:
	// the winner is at least as fit as the hand-tuned feedback baseline.
	baseline := fleet.SchedulerConfig{Policy: fleet.PolicyFeedback}.WithDefaults()
	for _, o := range outs {
		if o.Scheduler == baseline && outs[0].Fitness < o.Fitness {
			t.Fatalf("winner fitness %v below hand-tuned feedback's %v", outs[0].Fitness, o.Fitness)
		}
	}
	got := formatSearchReport(p, names, weights, outs)
	checkGolden(t, filepath.Join("testdata", "search_week.golden"), []byte(got))
}

// TestFeedbackRegretBeatsProportionalOnFailover extends the failover-day
// acceptance check to the counterfactual evaluator: the closed loop's
// chosen assignments must accumulate less regret — fewer violation
// core-windows left on the table versus the evaluated single-core moves —
// than proportional's over the same day.
func TestFeedbackRegretBeatsProportionalOnFailover(t *testing.T) {
	run := func(policy string) (cumRegret float64, windows int) {
		t.Helper()
		p := goldenParams("failover", policy)
		p.hours = 24
		p.traceLevel = "summary"
		p.counterfactualK = 3
		cfg, err := buildFleetConfig(&p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fleet.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range res.DecisionTrace {
			if rec.Counterfactual == nil {
				t.Fatalf("%s: window %d missing its counterfactual", policy, rec.Window)
			}
			if rec.Counterfactual.Regret < 0 {
				t.Fatalf("%s: window %d negative regret %v", policy, rec.Window, rec.Counterfactual.Regret)
			}
			cumRegret += rec.Counterfactual.Regret
		}
		return cumRegret, len(res.DecisionTrace)
	}
	fb, windows := run("feedback")
	prop, _ := run("proportional")
	if windows != 96 {
		t.Fatalf("failover day traced %d windows, want 96", windows)
	}
	if prop == 0 {
		t.Fatal("proportional accumulated no regret; the comparison is vacuous")
	}
	if fb >= prop {
		t.Errorf("feedback's cumulative regret %.1f not below proportional's %.1f", fb, prop)
	}
}
