// Benchmark harness: one benchmark per paper table/figure (regenerating the
// artifact at quick scale per iteration; run with -scale via stretchsim for
// the full versions), plus microbenchmarks of the simulator's hot paths.
//
//	go test -bench=. -benchmem
package stretch

import (
	"bytes"
	"testing"

	"stretch/internal/branch"
	"stretch/internal/cache"
	"stretch/internal/core"
	"stretch/internal/experiments"
	"stretch/internal/queueing"
	"stretch/internal/trace"
	"stretch/internal/workload"
)

// benchCtx shares memoised grids across benchmark iterations so each bench
// measures its own experiment's marginal work after the shared baselines
// are built.
var benchCtx = experiments.NewContext(experiments.Quick)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	n, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ctx := benchCtx
		if i > 0 {
			// Re-run against a fresh context only when iterating, so
			// b.N>1 measures the uncached cost.
			ctx = experiments.NewContext(experiments.Quick)
		}
		if _, err := n.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// Tables.
func BenchmarkTable1QoSTargets(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2ProcessorConfig(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3Workloads(b *testing.B)       { benchExperiment(b, "table3") }

// Characterisation figures (§II-III).
func BenchmarkFig1LatencyVsLoad(b *testing.B)      { benchExperiment(b, "fig1") }
func BenchmarkFig2SlackCurves(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig3ColocationSlowdown(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4ResourceSharing(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5ResourceSharingAll(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6ROBSensitivity(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7MLP(b *testing.B)                { benchExperiment(b, "fig7") }

// Evaluation figures (§VI).
func BenchmarkFig9SkewSweep(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkFig10BModeSpeedup(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFig11DynamicSharing(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12FetchThrottling(b *testing.B)    { benchExperiment(b, "fig12") }
func BenchmarkFig13SoftwareScheduling(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14CaseStudies(b *testing.B)        { benchExperiment(b, "fig14") }

// Design-choice ablations (DESIGN.md §6).
func BenchmarkAblationLSQCoupling(b *testing.B)      { benchExperiment(b, "ablation-lsq") }
func BenchmarkAblationMSHR(b *testing.B)             { benchExperiment(b, "ablation-mshr") }
func BenchmarkAblationPrefetcher(b *testing.B)       { benchExperiment(b, "ablation-prefetch") }
func BenchmarkAblationControllerSignal(b *testing.B) { benchExperiment(b, "ablation-signal") }
func BenchmarkAblationFlushCost(b *testing.B)        { benchExperiment(b, "ablation-flush") }

// --- Microbenchmarks of the simulator substrate ---

// BenchmarkCoreCycles measures raw simulation speed: simulated cycles per
// wall-clock op for a colocated pair.
func BenchmarkCoreCycles(b *testing.B) {
	lp, _ := workload.Lookup(workload.WebSearch)
	bp, _ := workload.Lookup(workload.Zeusmp)
	g0, _ := trace.NewGenerator(lp, 1)
	g1, _ := trace.NewGenerator(bp, 2)
	c, err := core.New(core.Default(), g0, g1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	c.RunCycles(int64(b.N))
}

// BenchmarkCoreInstructions measures simulated instruction throughput solo.
func BenchmarkCoreInstructions(b *testing.B) {
	p, _ := workload.Lookup(workload.Zeusmp)
	g, _ := trace.NewGenerator(p, 1)
	c, err := core.New(core.Solo(), g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	target := uint64(b.N)
	for c.Committed(0) < target {
		c.RunCycles(1024)
	}
}

// BenchmarkTraceGen measures µop generation throughput.
func BenchmarkTraceGen(b *testing.B) {
	p, _ := workload.Lookup(workload.WebSearch)
	g, _ := trace.NewGenerator(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkCacheAccess measures the L1 lookup path.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.L1Config())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64)
	}
}

// BenchmarkPredictor measures predict+update throughput.
func BenchmarkPredictor(b *testing.B) {
	p := branch.New(branch.DefaultConfig(), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x4000 + (i%512)*72)
		p.Predict(i&1, pc)
		p.Update(i&1, pc, i%3 == 0)
	}
}

// BenchmarkQueueing measures request-simulation throughput.
func BenchmarkQueueing(b *testing.B) {
	svc := workload.Services()[workload.WebSearch]
	cfg := queueing.Config{
		Workers: svc.Workers, MeanServiceMs: svc.MeanServiceMs,
		ServiceCV: svc.ServiceCV, BurstProb: svc.BurstProb, BurstLen: svc.BurstLen,
		QoSQuantile: svc.QoSQuantile, QoSTargetMs: svc.QoSTargetMs,
	}
	b.ResetTimer()
	if _, err := queueing.Simulate(cfg, 400, b.N+10, 1, 1); err != nil {
		b.Fatal(err)
	}
}

// benchFleetConfig is the shared fleet-scale benchmark shape: servers×16
// controller-governed SMT cores draining a diurnal web-search day.
func benchFleetConfig(servers int, est TailEstimator) FleetConfig {
	nCores := servers * 16
	return FleetConfig{
		Servers: servers, CoresPerServer: 16,
		Traffic: Traffic{
			Windows: 6, WindowSec: 4 * 3600,
			Clients: []TrafficClient{{
				Name: "search", Service: WebSearch, Fraction: 1,
				Spec: ArrivalSpec{Shape: Diurnal{
					HourLoad: WebSearchDay(), PeakRPS: float64(nCores) * 700,
				}, Poisson: true},
			}},
		},
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 120, Seed: 1,
		TailEstimator: est,
	}
}

func benchFleet(b *testing.B, cfg FleetConfig) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var requests float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := Fleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Core-windows the analytic fast path answered simulate no requests.
		simCW := float64(res.Cores)*float64(res.Windows) - float64(res.AnalyticCoreWindows)
		requests += simCW * float64(cfg.WindowRequests)
	}
	b.ReportMetric(requests/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkFleet1kCores is the fleet-scale perf trajectory under the
// default (histogram) tail estimator: ~1k cores, one diurnal day.
// The persistent worker pool (one goroutine set per run instead of
// workers×windows spawns behind the window barrier) plus the shared
// striped solve cache dropped this case from 236 to ~225 allocs/op.
func BenchmarkFleet1kCores(b *testing.B) {
	benchFleet(b, benchFleetConfig(63, EstimatorDefault)) // 1008 cores
}

// BenchmarkFleetExact1kCores guards the exact-estimator path (sorted
// samples at every level), which small accuracy-sensitive runs still use.
func BenchmarkFleetExact1kCores(b *testing.B) {
	benchFleet(b, benchFleetConfig(63, EstimatorExact))
}

// BenchmarkFleetCalibrated1kCores guards the acceptance bound of the
// calibration refactor: per-client per-mode deltas from the committed
// cycle-level table must stay within noise of the uniform-scalar run,
// because the table resolves to flat per-client arrays before the first
// window and nothing touches it on the per-request path.
func BenchmarkFleetCalibrated1kCores(b *testing.B) {
	table, err := DefaultCalibration()
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchFleetConfig(63, EstimatorDefault)
	cfg.Calibration = table
	cfg.Traffic.Clients[0].Batch = "zeusmp"
	benchFleet(b, cfg)
}

// BenchmarkFleetCohort1kCores measures the cohort-coalesced path at the
// 1k scale under the auto engine: steady windows answered once per cohort
// span (one analytic solve, one bulk histogram deposit, one shared
// controller per equivalence class) with the discrete residue on the
// worker pool. Its delta against BenchmarkFleet1kCores is the coalescing
// win on the analytic fraction of the horizon.
func BenchmarkFleetCohort1kCores(b *testing.B) {
	cfg := benchFleetConfig(63, EstimatorDefault)
	cfg.Engine = EngineAuto
	benchFleet(b, cfg)
}

// BenchmarkFleet10kCores is the scale target the mergeable histograms
// enable: 10000 cores with memory independent of the request count.
func BenchmarkFleet10kCores(b *testing.B) {
	benchFleet(b, benchFleetConfig(625, EstimatorDefault)) // 10000 cores
}

// BenchmarkFleet100kCores runs the same diurnal day at 100k cores under
// the auto engine: steady windows answered by the analytic fluid fast
// path, transitional ones (cold starts, mode switches, guard-band
// excursions) on the discrete simulator.
func BenchmarkFleet100kCores(b *testing.B) {
	cfg := benchFleetConfig(6250, EstimatorDefault) // 100000 cores
	cfg.Engine = EngineAuto
	benchFleet(b, cfg)
}

// BenchmarkFleet1MCores is the fluid fast path's tentpole scale target:
// a 1M-core × 24h fleet day under the auto engine in under a minute.
func BenchmarkFleet1MCores(b *testing.B) {
	cfg := benchFleetConfig(62500, EstimatorDefault) // 1000000 cores
	cfg.Engine = EngineAuto
	benchFleet(b, cfg)
}

// BenchmarkFleetAutoscale1kCores guards the autoscaling layer's overhead:
// the same 1008-core day with the util policy parking and unparking whole
// servers between windows. The per-window scaling decision is O(servers)
// bookkeeping, so the delta against BenchmarkFleet1kCores should be the
// work *saved* by the parked windows, never added coordination cost.
func BenchmarkFleetAutoscale1kCores(b *testing.B) {
	cfg := benchFleetConfig(63, EstimatorDefault)
	cfg.Autoscale = Autoscale{Policy: AutoscaleUtil}
	benchFleet(b, cfg)
}

// BenchmarkFleetDecisionTrace1kCores guards the decision-tracing
// acceptance bound: the same 1008-core day with a summary trace recorded
// per window. Record building is O(clients) bookkeeping behind the window
// barrier, so the delta against BenchmarkFleet1kCores must stay within
// noise (<2%) — and with tracing off the stepper's only extra work is one
// level check per window.
func BenchmarkFleetDecisionTrace1kCores(b *testing.B) {
	cfg := benchFleetConfig(63, EstimatorDefault)
	cfg.DecisionTrace = DecisionTraceSummary
	benchFleet(b, cfg)
}

// BenchmarkPlanCapacity guards the capacity planner end to end: an
// in-memory recorded trace, bisected over a 16-server range. Each probe is
// a full fleet run, so this is the planner's real cost profile (dominated
// by the probe runs, not the search bookkeeping).
func BenchmarkPlanCapacity(b *testing.B) {
	cfg := benchFleetConfig(16, EstimatorDefault)
	tr, err := SynthTrace(TraceSynthSpec{Traffic: cfg.Traffic, Seed: cfg.Seed})
	if err != nil {
		b.Fatal(err)
	}
	traffic, err := tr.Traffic()
	if err != nil {
		b.Fatal(err)
	}
	cfg.Traffic = traffic
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		plan, err := PlanCapacity(CapacitySpec{Config: cfg, MaxViolationWindows: 40})
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Probes) == 0 {
			b.Fatal("planner probed nothing")
		}
	}
}

// BenchmarkFleetTraceReplay1kCores guards the trace-replay path at fleet
// scale: the 1008-core benchmark traffic is synthesised into a trace file
// once (encode + strict re-parse outside the timer), then every iteration
// replays the parsed trace. The delta against BenchmarkFleet1kCores is
// the cost of consuming recorded rates instead of drawing them — which
// should be nil, since replayed timelines skip the per-window draws.
func BenchmarkFleetTraceReplay1kCores(b *testing.B) {
	cfg := benchFleetConfig(63, EstimatorDefault)
	tr, err := SynthTrace(TraceSynthSpec{Traffic: cfg.Traffic, Seed: cfg.Seed})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	parsed, err := ParseTrace(&buf)
	if err != nil {
		b.Fatal(err)
	}
	traffic, err := parsed.Traffic()
	if err != nil {
		b.Fatal(err)
	}
	cfg.Traffic = traffic
	benchFleet(b, cfg)
}
