// Cluster case studies (§VI-D / Fig. 14): integrate Stretch B-mode batch
// throughput over the diurnal day of a Web Search cluster and a
// YouTube-like cluster, using measured B-mode speedups from the core model.
package main

import (
	"fmt"
	"log"

	"stretch"
	"stretch/internal/fleet"
)

func main() {
	cases := []struct {
		trace fleet.DiurnalTrace
		ls    string
		batch string
	}{
		{fleet.WebSearchTrace(), stretch.WebSearch, "zeusmp"},
		{fleet.YouTubeTrace(), stretch.MediaStreaming, "libquantum"},
	}

	for _, cs := range cases {
		// Measure the B-mode batch speedup and LS cost for this pairing.
		eq, err := measure(cs.ls, cs.batch)
		if err != nil {
			log.Fatal(err)
		}
		bm, err := measure(cs.ls, cs.batch, stretch.WithBMode())
		if err != nil {
			log.Fatal(err)
		}
		gain := stretch.Speedup(bm.BatchIPC, eq.BatchIPC)
		cost := -stretch.Speedup(bm.LSIPC, eq.LSIPC)

		study := fleet.Study{
			Trace:         cs.trace,
			EngageBelow:   0.85,
			BatchSpeedupB: gain,
			LSSlowdownB:   cost,
		}
		res, err := study.Run()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s (%s + %s) ==\n", cs.trace.Name, cs.ls, cs.batch)
		fmt.Printf("B-mode batch speedup %+.0f%%, LS cost %.0f%%\n", 100*gain, 100*cost)
		fmt.Print("hours: ")
		for _, h := range res.Hours {
			c := "."
			if h.Mode == stretch.ModeB {
				c = "B"
			}
			fmt.Print(c)
		}
		fmt.Printf("\nB-mode engaged %d/24 hours -> 24h cluster batch gain %+.1f%%\n\n",
			res.EngagedHours, 100*res.ClusterGain)
	}
	fmt.Println("paper: ~5% for the Web Search cluster (11 engageable hours) and")
	fmt.Println("~11% for the YouTube cluster (17 hours)")
}

func measure(ls, b string, opts ...stretch.Option) (stretch.Result, error) {
	col, err := stretch.NewColocation(ls, b, opts...)
	if err != nil {
		return stretch.Result{}, err
	}
	return col.Measure()
}
