// Capacity planning and autoscaling: turn the fleet simulator around. The
// other examples ask "what happens with N servers"; this one fixes the
// offered load in absolute requests per second — the way a recorded
// production trace would — and asks the operator's questions instead:
// how many servers does this traffic need to stay inside an SLO budget
// (stretch.PlanCapacity), and how much of that peak-sized fleet can an
// autoscaler park off-peak once it is deployed (FleetConfig.Autoscale)?
package main

import (
	"fmt"
	"log"
	"time"

	"stretch"
)

func main() {
	const (
		maxServers = 8 // search ceiling: the largest fleet we could rack
		cores      = 4
		wph        = 4
		windows    = 24 * wph
		budget     = 25 // tolerable QoS-violating core-windows over the day
	)

	// Anchor the day's traffic in absolute rps, independent of the fleet
	// being sized: a diurnal search service peaking at ~12 cores' worth of
	// load and a video service peaking at ~6.
	peakSearch, err := stretch.PeakRPSPerCore(stretch.WebSearch, 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	peakVideo, err := stretch.PeakRPSPerCore(stretch.MediaStreaming, 4000, 1)
	if err != nil {
		log.Fatal(err)
	}
	traffic := stretch.Traffic{
		Windows: windows, WindowSec: 3600.0 / wph,
		Clients: []stretch.TrafficClient{
			{
				Name: "search", Service: stretch.WebSearch, Fraction: 0.6,
				SLO: stretch.SLOStrict,
				Spec: stretch.ArrivalSpec{Shape: stretch.Diurnal{
					HourLoad: stretch.WebSearchDay(),
					PeakRPS:  peakSearch * 12,
					Smooth:   true,
				}, Poisson: true},
			},
			{
				Name: "video", Service: stretch.MediaStreaming, Fraction: 0.4,
				SLO: stretch.SLORelaxed,
				Spec: stretch.ArrivalSpec{Shape: stretch.Diurnal{
					HourLoad: stretch.VideoDay(),
					PeakRPS:  peakVideo * 6,
					Smooth:   true,
				}, Poisson: true},
			},
		},
	}
	template := stretch.FleetConfig{
		Servers: maxServers, CoresPerServer: cores,
		Traffic:       traffic,
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 400, Seed: 1,
		Scheduler: stretch.Scheduler{Policy: stretch.PolicyFeedback},
	}

	// How many servers does this day of traffic need? Size the fleet twice
	// — once per window engine — to show the planner's headline win: every
	// bisection probe replays the full day, so routing steady windows
	// through the analytic solver (EngineAuto) cuts each probe's cost
	// while the discrete-grade accuracy contract keeps the answer honest.
	planWith := func(engine stretch.EngineMode) (stretch.CapacityPlan, time.Duration) {
		cfg := template
		cfg.Engine = engine
		start := time.Now()
		p, err := stretch.PlanCapacity(stretch.CapacitySpec{
			Config:              cfg,
			MinServers:          1,
			MaxViolationWindows: budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p, time.Since(start)
	}
	plan, discreteWall := planWith(stretch.EngineDiscrete)
	fmt.Printf("== sizing: ≤ %d violating core-windows over 24h, %d-%d servers × %d cores ==\n",
		plan.Budget, plan.MinServers, plan.MaxServers, cores)
	for i, pt := range plan.Probes {
		met := "over budget"
		if pt.Met {
			met = "ok"
		}
		fmt.Printf("  probe %d: %d servers (%2d cores) -> %3d violations, p99 %6.1f ms  [%s]\n",
			i+1, pt.Servers, pt.Cores, pt.ViolationWindows, pt.FleetP99Ms, met)
	}
	if !plan.Feasible {
		log.Fatalf("no fleet up to %d servers meets the budget", plan.MaxServers)
	}
	fmt.Printf("minimum capacity: %d servers = %d cores (%d violations ≤ %d)\n\n",
		plan.Servers, plan.Cores, plan.ViolationWindows, plan.Budget)

	// The same sizing on the fluid fast path: the auto engine answers
	// steady core-windows in closed form and must land on a capacity the
	// discrete plan corroborates.
	autoPlan, autoWall := planWith(stretch.EngineAuto)
	fmt.Printf("== engine speedup: planning wall-clock, discrete vs auto ==\n")
	fmt.Printf("discrete: %d servers in %.2fs   auto: %d servers in %.2fs   speedup %.1f×\n\n",
		plan.Servers, discreteWall.Seconds(),
		autoPlan.Servers, autoWall.Seconds(),
		discreteWall.Seconds()/autoWall.Seconds())

	// Deploy the planned fleet with the util autoscaler: off-peak, whole
	// servers park (their cores stop serving and harvesting alike) and pay
	// a one-window warm-up migration penalty when they rejoin.
	deployed := template
	deployed.Servers = plan.Servers
	deployed.Autoscale = stretch.Autoscale{Policy: stretch.AutoscaleUtil}
	res, err := stretch.Fleet(deployed)
	if err != nil {
		log.Fatal(err)
	}
	coreWindows := res.Cores * res.Windows
	fmt.Printf("== deployed %d servers with autoscale %s ==\n", plan.Servers, res.Autoscale)
	fmt.Printf("parked %d of %d core-windows (%.0f%% of the planned fleet off-peak), %d warm-up migrations\n",
		res.ParkedCoreWindows, coreWindows,
		100*float64(res.ParkedCoreWindows)/float64(coreWindows), res.Migrations)
	fmt.Printf("violations %d (budget %d), engaged %.0f of %.0f core-hours, batch gained %.0f core-hours\n",
		res.ViolationWindows, budget, res.EngagedCoreHours, res.TotalCoreHours, res.BatchCoreHoursGained)
}
