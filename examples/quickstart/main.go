// Quickstart: colocate Web Search with zeusmp on a dual-threaded SMT core
// and show what Stretch B-mode buys the batch thread — the paper's headline
// experiment in a dozen lines.
package main

import (
	"fmt"
	"log"

	"stretch"
)

func main() {
	const batch = "zeusmp"

	// Solo full-core baselines (the normalisation used by every figure).
	lsSolo, err := stretch.Solo(stretch.WebSearch)
	if err != nil {
		log.Fatal(err)
	}
	bSolo, err := stretch.Solo(batch)
	if err != nil {
		log.Fatal(err)
	}

	// SMT baseline: equal 96-96 ROB partitioning.
	col, err := stretch.NewColocation(stretch.WebSearch, batch)
	if err != nil {
		log.Fatal(err)
	}
	base, err := col.Measure()
	if err != nil {
		log.Fatal(err)
	}

	// Stretch B-mode: 56 entries for the service, 136 for the batch thread.
	boosted, err := stretch.NewColocation(stretch.WebSearch, batch, stretch.WithBMode())
	if err != nil {
		log.Fatal(err)
	}
	bres, err := boosted.Measure()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("solo IPC:      %-12s %.3f\n", stretch.WebSearch, lsSolo.IPC)
	fmt.Printf("solo IPC:      %-12s %.3f\n", batch, bSolo.IPC)
	fmt.Printf("SMT baseline:  LS %.3f (%.0f%% slowdown)   batch %.3f (%.0f%% slowdown)\n",
		base.LSIPC, 100*stretch.Slowdown(base.LSIPC, lsSolo.IPC),
		base.BatchIPC, 100*stretch.Slowdown(base.BatchIPC, bSolo.IPC))
	fmt.Printf("B-mode 56-136: LS %.3f (%+.0f%% vs equal)  batch %.3f (%+.0f%% vs equal)\n",
		bres.LSIPC, 100*stretch.Speedup(bres.LSIPC, base.LSIPC),
		bres.BatchIPC, 100*stretch.Speedup(bres.BatchIPC, base.BatchIPC))
	fmt.Println("\nAt sub-peak load the service's tail-latency slack absorbs the LS")
	fmt.Println("slowdown, so the batch gain is free throughput (paper: +13% avg).")
}
