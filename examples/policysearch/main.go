// Policy search: decisions as data. A mixed-service day runs under the
// closed-loop feedback scheduler with decision tracing and counterfactual
// evaluation on — every window's record says what the allocator saw, what
// it did, and the regret of its choice versus the best single-core-move
// alternative. The same day (calm and with a mid-day failover) then feeds
// the search driver, which sweeps the scheduler-candidate grid and ranks
// every candidate by weighted multi-objective fitness; the hand-tuned
// feedback configuration is always in the grid, so the winner can never
// score below it.
package main

import (
	"fmt"
	"log"

	"stretch"
)

func main() {
	const (
		servers = 4
		cores   = 4
		wph     = 4 // monitoring windows per hour
		windows = 24 * wph
	)
	nCores := float64(servers * cores)

	peak := map[string]float64{}
	for _, svc := range []string{stretch.WebSearch, stretch.DataServing} {
		p, err := stretch.PeakRPSPerCore(svc, 4000, 1)
		if err != nil {
			log.Fatal(err)
		}
		peak[svc] = p
	}

	traffic := stretch.Traffic{
		Windows: windows, WindowSec: 3600.0 / wph,
		Clients: []stretch.TrafficClient{
			{
				Name: "search", Service: stretch.WebSearch, Fraction: 0.6,
				SLO: stretch.SLOStrict,
				Spec: stretch.ArrivalSpec{Shape: stretch.Diurnal{
					HourLoad: stretch.WebSearchDay(),
					PeakRPS:  peak[stretch.WebSearch] * nCores * 0.6,
					Smooth:   true,
				}, Poisson: true},
			},
			{
				Name: "kvstore", Service: stretch.DataServing, Fraction: 0.4,
				Spec: stretch.ArrivalSpec{Shape: stretch.Ramp{
					StartRPS:  0.3 * peak[stretch.DataServing] * nCores * 0.4,
					TargetRPS: 0.8 * peak[stretch.DataServing] * nCores * 0.4,
				}, Poisson: true},
			},
		},
	}

	failover, err := stretch.ParseFleetEvents(fmt.Sprintf(
		"drain:%d:0,restore:%d:0,surge:%d-%d:search:1.3",
		windows/3, 2*windows/3, windows/3, 2*windows/3))
	if err != nil {
		log.Fatal(err)
	}

	base := stretch.FleetConfig{
		Servers: servers, CoresPerServer: cores,
		Traffic:       traffic,
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 150, Seed: 1,
	}

	// Pass 1: one traced run. Every scheduling decision becomes a record;
	// the counterfactual evaluator prices the 3 most promising single-core
	// moves per window and charges the chosen assignment its regret.
	traced := base
	traced.Scheduler = stretch.Scheduler{Policy: stretch.PolicyFeedback}
	traced.Scenario = failover
	traced.DecisionTrace = stretch.DecisionTraceSummary
	traced.CounterfactualK = 3
	res, err := stretch.Fleet(traced)
	if err != nil {
		log.Fatal(err)
	}
	rebalances, suppressed, regret, bestWindows := 0, 0, 0.0, 0
	for _, rec := range res.DecisionTrace {
		if rec.Rebalanced {
			rebalances++
		}
		if rec.Suppressed {
			suppressed++
		}
		regret += rec.Counterfactual.Regret
		if rec.Counterfactual.Regret == 0 {
			bestWindows++
		}
	}
	fmt.Printf("== traced failover day: feedback, %d servers × %d cores ==\n", servers, cores)
	fmt.Printf("%d windows: %d rebalances, %d suppressed by hysteresis\n",
		len(res.DecisionTrace), rebalances, suppressed)
	fmt.Printf("cumulative regret %.1f violation core-windows; chosen assignment best in %d/%d windows\n",
		regret, bestWindows, len(res.DecisionTrace))
	fmt.Printf("fairness (Jain over per-client SLO fulfilment): %.3f\n\n", res.FairnessIndex)

	// Pass 2: the search driver. Both days form the suite; every candidate
	// in the default grid runs on both and is ranked by total fitness.
	calm := base
	failoverDay := base
	failoverDay.Scenario = failover
	weights := stretch.DefaultFitnessWeights()
	outs, err := stretch.SearchSchedulers(
		[]stretch.FleetConfig{calm, failoverDay}, stretch.SearchGrid(), weights)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== policy search: %d candidates × calm + failover day (weights %s) ==\n",
		len(outs), weights)
	fmt.Printf("%-4s %-14s %5s %5s %5s %9s %6s %9s\n",
		"rank", "policy", "gain", "decay", "hyst", "fitness", "viol", "batch(h)")
	show := 5
	if len(outs) < show {
		show = len(outs)
	}
	for i := 0; i < show; i++ {
		o := outs[i]
		gain, decay := "-", "-"
		if o.Scheduler.Policy == stretch.PolicyFeedback {
			gain = fmt.Sprintf("%.2f", o.Scheduler.FeedbackGain)
			decay = fmt.Sprintf("%.2f", o.Scheduler.FeedbackDecay)
		}
		fmt.Printf("%-4d %-14s %5s %5s %5.2f %9.1f %6d %9.1f\n",
			i+1, o.Scheduler.Policy, gain, decay, o.Scheduler.Hysteresis,
			o.Fitness, o.Violations, o.BatchCoreHoursGained)
	}
	var handTuned stretch.SearchOutcome
	baseline := stretch.Scheduler{Policy: stretch.PolicyFeedback}.WithDefaults()
	for _, o := range outs {
		if o.Scheduler == baseline {
			handTuned = o
		}
	}
	fmt.Printf("\nwinner fitness %.1f vs hand-tuned feedback %.1f (%+.1f; never negative —\n",
		outs[0].Fitness, handTuned.Fitness, outs[0].Fitness-handTuned.Fitness)
	fmt.Println("the hand-tuned configuration is itself in the grid)")
}
