// Fleet study: scale the §VI-D cluster argument from one core to a
// datacenter. A mixed-service fleet — strict-SLO web search on half the
// cores, relaxed video streaming and a bursty key-value store on the rest —
// runs a full synthetic day through per-core Stretch controllers, then the
// same day again with a burst storm injected into the key-value client, to
// show the controllers shedding B-mode only where and when the storm lands.
// A final calibrated run swaps the hand-measured uniform scalars for the
// committed cycle-level calibration table, giving each client its own
// (service, batch-pairing) B-/Q-mode deltas and per-client batch credit.
package main

import (
	"fmt"
	"log"

	"stretch"
)

func main() {
	const (
		servers = 8
		cores   = 16
		wph     = 4 // monitoring windows per hour
		windows = 24 * wph
	)
	nCores := float64(servers * cores)

	// Measure the B-mode deltas this fleet would deploy with (56-136 skew,
	// web search + zeusmp as the representative pairing).
	eq, err := measure(stretch.WebSearch, "zeusmp")
	if err != nil {
		log.Fatal(err)
	}
	bm, err := measure(stretch.WebSearch, "zeusmp", stretch.WithBMode())
	if err != nil {
		log.Fatal(err)
	}
	bGain := stretch.Speedup(bm.BatchIPC, eq.BatchIPC)
	lsCost := -stretch.Speedup(bm.LSIPC, eq.LSIPC)
	fmt.Printf("deploying B-mode with measured batch speedup %+.0f%%, LS cost %.0f%%\n\n",
		100*bGain, 100*lsCost)

	// Per-core peak rates anchor the traffic in fractions of peak.
	peak := map[string]float64{}
	for _, svc := range []string{stretch.WebSearch, stretch.MediaStreaming, stretch.DataServing} {
		p, err := stretch.PeakRPSPerCore(svc, 4000, 1)
		if err != nil {
			log.Fatal(err)
		}
		peak[svc] = p
	}

	calmKV := stretch.ArrivalSpec{Shape: stretch.Ramp{
		StartRPS:  0.3 * peak[stretch.DataServing] * nCores * 0.2,
		TargetRPS: 0.6 * peak[stretch.DataServing] * nCores * 0.2,
	}, Poisson: true}
	stormKV := stretch.ArrivalSpec{Shape: stretch.Burst{
		Base:      calmKV.Shape,
		Start:     windows / 4,
		Length:    2 * wph,
		Every:     windows / 3,
		Magnitude: 2.5,
	}, Poisson: true}

	traffic := func(kv stretch.ArrivalSpec) stretch.Traffic {
		return stretch.Traffic{
			Windows: windows, WindowSec: 3600.0 / wph,
			Clients: []stretch.TrafficClient{
				{
					Name: "search", Service: stretch.WebSearch, Fraction: 0.5,
					SLO: stretch.SLOStrict,
					Spec: stretch.ArrivalSpec{Shape: stretch.Diurnal{
						HourLoad: stretch.WebSearchDay(),
						PeakRPS:  peak[stretch.WebSearch] * nCores * 0.5,
						Smooth:   true,
					}, Poisson: true},
				},
				{
					Name: "video", Service: stretch.MediaStreaming, Fraction: 0.3,
					SLO: stretch.SLORelaxed,
					Spec: stretch.ArrivalSpec{Shape: stretch.Diurnal{
						HourLoad: stretch.VideoDay(),
						PeakRPS:  peak[stretch.MediaStreaming] * nCores * 0.3,
						Smooth:   true,
					}, Poisson: true},
				},
				{Name: "kvstore", Service: stretch.DataServing, Fraction: 0.2, Spec: kv},
			},
		}
	}

	for _, sc := range []struct {
		name string
		kv   stretch.ArrivalSpec
	}{{"calm day", calmKV}, {"burst storm on kvstore", stormKV}} {
		res, err := stretch.Fleet(stretch.FleetConfig{
			Servers: servers, CoresPerServer: cores,
			Traffic:       traffic(sc.kv),
			BatchSpeedupB: bGain, LSSlowdownB: lsCost,
			WindowRequests: 300, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d cores × 24h ==\n", sc.name, res.Cores)
		for _, cm := range res.Clients {
			fmt.Printf("  %-8s %-16s %-8s cores=%-3d p99=%6.1fms p99.9=%6.1fms viol=%d/%d B-hours=%.0f\n",
				cm.Client, cm.Service, cm.SLO, cm.Cores, cm.P99Ms, cm.P999Ms,
				cm.ViolationWindows, cm.CoreWindows, cm.EngagedCoreHours)
		}
		fmt.Printf("  engaged %.0f/%.0f core-hours, batch gain vs equal partitioning %+.1f%% (%.0f core-hours)\n\n",
			res.EngagedCoreHours, res.TotalCoreHours, 100*res.BatchGain, res.BatchCoreHoursGained)
	}

	// Calibrated calm day: per-client deltas from the committed
	// cycle-level table instead of one fleet-wide scalar pair. Each client
	// names the batch workload its cores colocate; the engine looks up the
	// pairing's own B-/Q-mode cells.
	table, err := stretch.DefaultCalibration()
	if err != nil {
		log.Fatal(err)
	}
	tr := traffic(calmKV)
	tr.Clients[0].Batch = "zeusmp"
	tr.Clients[1].Batch = "libquantum"
	tr.Clients[2].Batch = "mcf"
	res, err := stretch.Fleet(stretch.FleetConfig{
		Servers: servers, CoresPerServer: cores,
		Traffic:        tr,
		Calibration:    table,
		WindowRequests: 300, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== calm day, calibrated (table %.12s): %d cores × 24h ==\n",
		res.CalibrationHash, res.Cores)
	for _, cm := range res.Clients {
		cell, _ := table.Lookup(cm.Service, cm.Batch, stretch.ModeB)
		fmt.Printf("  %-8s × %-11s B: batch %+5.1f%% LS %+5.1f%%  B-hours=%-5.0f batch gained=%.1f core-hours\n",
			cm.Client, cm.Batch, 100*cell.BatchSpeedup, -100*cell.LSSlowdown,
			cm.EngagedCoreHours, cm.BatchCoreHoursGained)
	}
	fmt.Printf("  fleet batch gain vs equal partitioning %+.1f%% (%.0f core-hours)\n",
		100*res.BatchGain, res.BatchCoreHoursGained)
}

func measure(ls, b string, opts ...stretch.Option) (stretch.Result, error) {
	col, err := stretch.NewColocation(ls, b, opts...)
	if err != nil {
		return stretch.Result{}, err
	}
	return col.Measure()
}
