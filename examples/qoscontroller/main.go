// QoS controller demo: a Web Search service rides a synthetic diurnal load
// while the §IV-C software monitor watches windowed tail latency (from the
// queueing model) and drives the Stretch mode bits. Prints one line per
// monitoring window group showing load, tail latency, and the engaged mode.
package main

import (
	"fmt"
	"log"

	"stretch/internal/core"
	"stretch/internal/fleet"
	"stretch/internal/monitor"
	"stretch/internal/queueing"
	"stretch/internal/workload"
)

func main() {
	svc := workload.Services()[workload.WebSearch]
	qc := queueing.Config{
		Workers:       svc.Workers,
		MeanServiceMs: svc.MeanServiceMs,
		ServiceCV:     svc.ServiceCV,
		BurstProb:     svc.BurstProb,
		BurstLen:      svc.BurstLen,
		QoSQuantile:   svc.QoSQuantile,
		QoSTargetMs:   svc.QoSTargetMs,
	}
	const nReq = 20000
	peak, err := queueing.PeakLoad(qc, nReq, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak sustainable load: %.0f req/s (p99 <= %gms)\n\n", peak, svc.QoSTargetMs)

	ctl, err := monitor.New(monitor.DefaultConfig(svc.QoSTargetMs))
	if err != nil {
		log.Fatal(err)
	}

	// B-mode costs the service ~7% single-thread performance (measured
	// B-mode LS slowdown); the controller must only engage it when the
	// queueing slack absorbs that.
	const bModeSlowdown = 0.07

	day := fleet.WebSearchTrace()
	fmt.Println("hour  load   p99(ms)  mode      action")
	for h, load := range day.HourLoad {
		perf := 1.0
		if ctl.Mode() == core.ModeB {
			perf = 1 - bModeSlowdown
		}
		res, err := queueing.Simulate(qc, peak*load, nReq, perf, uint64(100+h))
		if err != nil {
			log.Fatal(err)
		}
		act := ctl.Observe(monitor.Observation{TailMs: res.QoSMs})
		// Apply hysteresis: feed a second window per hour so streaks build.
		res2, err := queueing.Simulate(qc, peak*load, nReq, perf, uint64(200+h))
		if err != nil {
			log.Fatal(err)
		}
		if a2 := ctl.Observe(monitor.Observation{TailMs: res2.QoSMs}); a2 != monitor.ActionNone {
			act = a2
		}
		fmt.Printf("%02d    %3.0f%%  %7.1f  %-9s %s\n",
			h, 100*load, res.QoSMs, ctl.Mode(), act)
	}
	fmt.Printf("\nmode switches over the day: %d (hysteresis keeps flips rare;\n", ctl.Switches())
	fmt.Println("each switch costs one drain + 12-cycle flush on both threads)")
}
