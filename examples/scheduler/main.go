// Scheduler study: the same mixed-service day under each fleet scheduling
// policy, calm and during a failover. Static keeps every client on the
// cores its fraction bought; proportional re-divides the fleet window by
// window as diurnal load shifts (harvesting more B-mode core-hours at
// fewer QoS violations); p2c additionally routes each window's load by
// power-of-two-choices instead of an even split; feedback closes the loop
// — it reallocates on each window's *measured* tails, stealing cores from
// slack-rich clients for violating ones. The failover pass drains a
// quarter of the servers mid-day while redirected traffic surges onto the
// search client, showing the drained load rerouting across the survivors
// and the closed loop absorbing the violations the open-loop policies
// cannot see coming.
package main

import (
	"fmt"
	"log"

	"stretch"
)

func main() {
	const (
		servers = 8
		cores   = 16
		wph     = 4 // monitoring windows per hour
		windows = 24 * wph
	)
	nCores := float64(servers * cores)

	// Per-core peak rates anchor the traffic in fractions of peak.
	peak := map[string]float64{}
	for _, svc := range []string{stretch.WebSearch, stretch.MediaStreaming, stretch.DataServing} {
		p, err := stretch.PeakRPSPerCore(svc, 4000, 1)
		if err != nil {
			log.Fatal(err)
		}
		peak[svc] = p
	}

	traffic := stretch.Traffic{
		Windows: windows, WindowSec: 3600.0 / wph,
		Clients: []stretch.TrafficClient{
			{
				Name: "search", Service: stretch.WebSearch, Fraction: 0.5,
				SLO: stretch.SLOStrict,
				Spec: stretch.ArrivalSpec{Shape: stretch.Diurnal{
					HourLoad: stretch.WebSearchDay(),
					PeakRPS:  peak[stretch.WebSearch] * nCores * 0.5,
					Smooth:   true,
				}, Poisson: true},
			},
			{
				Name: "video", Service: stretch.MediaStreaming, Fraction: 0.3,
				SLO: stretch.SLORelaxed,
				Spec: stretch.ArrivalSpec{Shape: stretch.Diurnal{
					HourLoad: stretch.VideoDay(),
					PeakRPS:  peak[stretch.MediaStreaming] * nCores * 0.3,
					Smooth:   true,
				}, Poisson: true},
			},
			{
				Name: "kvstore", Service: stretch.DataServing, Fraction: 0.2,
				Spec: stretch.ArrivalSpec{Shape: stretch.Burst{
					Base: stretch.Ramp{
						StartRPS:  0.3 * peak[stretch.DataServing] * nCores * 0.2,
						TargetRPS: 0.7 * peak[stretch.DataServing] * nCores * 0.2,
					},
					Start: windows / 3, Length: wph / 2, Every: windows / 3,
					Magnitude: 1.8,
				}, Poisson: true},
			},
		},
	}

	// Failover scenario: servers 0-1 fail mid-day, search absorbs a 1.3×
	// redirected surge while they are out, and the last two servers are an
	// older generation at 85% performance.
	failover, err := stretch.ParseFleetEvents(fmt.Sprintf(
		"drain:%d:0,drain:%d:1,restore:%d:0,restore:%d:1,surge:%d-%d:search:1.3,perf:6:0.85,perf:7:0.85",
		windows/3, windows/3, 2*windows/3, 2*windows/3, windows/3, 2*windows/3))
	if err != nil {
		log.Fatal(err)
	}

	policies := []stretch.SchedulerPolicy{
		stretch.PolicyStatic, stretch.PolicyProportional, stretch.PolicyP2C,
		stretch.PolicyFeedback,
	}
	for _, scenario := range []struct {
		name   string
		events stretch.FleetScenario
	}{{"calm day", stretch.FleetScenario{}}, {"failover day", failover}} {
		fmt.Printf("== %s: %d servers × %d cores, 24h ==\n", scenario.name, servers, cores)
		fmt.Printf("%-14s %12s %12s %12s %12s %12s\n",
			"policy", "violations", "engaged h", "batch h", "migrations", "search p99")
		for _, pol := range policies {
			res, err := stretch.Fleet(stretch.FleetConfig{
				Servers: servers, CoresPerServer: cores,
				Traffic:       traffic,
				BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
				WindowRequests: 300, Seed: 1,
				Scheduler: stretch.Scheduler{Policy: pol},
				Scenario:  scenario.events,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %12d %12.0f %12.0f %12d %10.1fms\n",
				pol, res.ViolationWindows, res.EngagedCoreHours,
				res.BatchCoreHoursGained, res.Migrations, res.Clients[0].P99Ms)
		}
		fmt.Println()
	}
	fmt.Println("(violations = QoS-violating core-windows; batch h = batch core-hours")
	fmt.Println(" gained vs equal partitioning; identical seeds are bit-identical across")
	fmt.Println(" worker counts under every policy)")
}
