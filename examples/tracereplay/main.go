// Trace replay: the recorded-traffic workflow end to end. A week of
// multi-cohort traffic is synthesised once — two services whose logical
// clients each expand into Zipf-weighted, phase-staggered cohort members
// with gamma-overdispersed arrivals — written to a trace file, read back
// through the strict parser, and replayed under two scheduling policies.
// Because the trace is a fixed realisation, the policies see *identical*
// arrivals window for window: the violation and batch-core-hour deltas
// below are pure policy effects, with zero traffic-sampling noise — the
// comparison recorded production traces exist to enable.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"stretch"
)

func main() {
	const (
		servers = 8
		cores   = 16
		days    = 7
		wph     = 1 // one window per hour keeps the week-long run quick
		windows = days * 24 * wph
		seed    = 1
	)
	nCores := float64(servers * cores)

	peak := map[string]float64{}
	for _, svc := range []string{stretch.WebSearch, stretch.MediaStreaming} {
		p, err := stretch.PeakRPSPerCore(svc, 4000, seed)
		if err != nil {
			log.Fatal(err)
		}
		peak[svc] = p
	}

	// Two logical clients; gamma-mixed arrivals (CV 1.5) add the
	// burstiness recorded traces show and Poisson misses.
	logical := []stretch.TrafficClient{
		{Name: "search", Service: stretch.WebSearch, Fraction: 0.6, SLO: stretch.SLOStrict,
			Spec: stretch.ArrivalSpec{Shape: stretch.Diurnal{
				HourLoad: stretch.WebSearchDay(), PeakRPS: 0.6 * nCores * peak[stretch.WebSearch],
				Smooth: true, WindowsPerDay: 24 * wph,
			}, Process: stretch.ArrivalGamma, CV: 1.5}},
		{Name: "video", Service: stretch.MediaStreaming, Fraction: 0.4, SLO: stretch.SLORelaxed,
			Spec: stretch.ArrivalSpec{Shape: stretch.Diurnal{
				HourLoad: stretch.VideoDay(), PeakRPS: 0.4 * nCores * peak[stretch.MediaStreaming],
				Smooth: true, WindowsPerDay: 24 * wph,
			}, Process: stretch.ArrivalGamma, CV: 1.5}},
	}

	// Each logical client becomes a four-member cohort: Zipf rate shares
	// (the biggest member carries ~48%), shapes staggered by 6 hours.
	var clients []stretch.TrafficClient
	for _, c := range logical {
		members, err := stretch.ExpandCohort(c, stretch.CohortSpec{
			Members: 4, Skew: 1, PhaseWindows: 6 * wph,
		})
		if err != nil {
			log.Fatal(err)
		}
		clients = append(clients, members...)
	}

	tr, err := stretch.SynthTrace(stretch.TraceSynthSpec{
		Traffic: stretch.Traffic{Clients: clients, Windows: windows, WindowSec: 3600 / wph},
		Seed:    seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Write the trace out and read it back: the replay below consumes the
	// file, not the in-memory spec, exercising the same path recorded
	// production traffic would take.
	path := filepath.Join(os.TempDir(), "week_cohorts.trace.csv")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	loaded, err := stretch.LoadTrace(path)
	if err != nil {
		log.Fatal(err)
	}
	traffic, err := loaded.Traffic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesised %s: %d windows × %d cohort clients over %.0fh\n\n",
		path, loaded.Windows, len(loaded.Clients), loaded.Hours())

	// Replay the identical week under two policies.
	type outcome struct {
		policy     stretch.SchedulerPolicy
		violations int
		batchHours float64
		p99        float64
	}
	var outcomes []outcome
	for _, policy := range []stretch.SchedulerPolicy{stretch.PolicyProportional, stretch.PolicyFeedback} {
		res, err := stretch.Fleet(stretch.FleetConfig{
			Servers: servers, CoresPerServer: cores,
			Traffic:       traffic,
			BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
			WindowRequests: 150, Seed: seed,
			Scheduler: stretch.Scheduler{Policy: policy},
		})
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{
			policy: policy, violations: res.ViolationWindows,
			batchHours: res.BatchCoreHoursGained, p99: res.FleetP99Ms,
		})
	}

	fmt.Printf("%-14s %12s %18s %14s\n", "policy", "violations", "batch gained (h)", "fleet p99 (ms)")
	for _, o := range outcomes {
		fmt.Printf("%-14s %12d %18.0f %14.1f\n", o.policy, o.violations, o.batchHours, o.p99)
	}
	prop, fb := outcomes[0], outcomes[1]
	fmt.Printf("\nfeedback vs proportional on the identical recorded week: ")
	fmt.Printf("%+d violation windows, %+.0f batch core-hours\n",
		fb.violations-prop.violations, fb.batchHours-prop.batchHours)
}
