// Colocation characterisation: sweep a set of batch co-runners against one
// latency-sensitive service across partitioning policies (the §III / §VI-A
// methodology on a small grid), printing a per-benchmark table.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"stretch"
)

func main() {
	ls := stretch.WebSearch
	if len(os.Args) > 1 {
		ls = os.Args[1]
	}
	batch := []string{"zeusmp", "libquantum", "mcf", "lbm", "gcc", "omnetpp", "hmmer", "povray", "sjeng"}

	lsSolo, err := stretch.Solo(ls)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "batch\tsolo IPC\tequal: batch slow\tLS slow\tB-mode: batch gain\tLS cost\tdynamic: batch loss\n")
	for _, b := range batch {
		bSolo, err := stretch.Solo(b)
		if err != nil {
			log.Fatal(err)
		}
		eq, err := measure(ls, b)
		if err != nil {
			log.Fatal(err)
		}
		bm, err := measure(ls, b, stretch.WithBMode())
		if err != nil {
			log.Fatal(err)
		}
		dyn, err := measure(ls, b, stretch.WithDynamicROB())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.0f%%\t%.0f%%\t%+.0f%%\t%+.0f%%\t%+.0f%%\n",
			b, bSolo.IPC,
			100*stretch.Slowdown(eq.BatchIPC, bSolo.IPC),
			100*stretch.Slowdown(eq.LSIPC, lsSolo.IPC),
			100*stretch.Speedup(bm.BatchIPC, eq.BatchIPC),
			100*stretch.Speedup(bm.LSIPC, eq.LSIPC),
			100*-stretch.Speedup(dyn.BatchIPC, eq.BatchIPC))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}

func measure(ls, b string, opts ...stretch.Option) (stretch.Result, error) {
	col, err := stretch.NewColocation(ls, b, opts...)
	if err != nil {
		return stretch.Result{}, err
	}
	return col.Measure()
}
