module stretch

go 1.24
