// Profiling hook for benchmark runs: setting STRETCH_PPROF=<dir> wraps the
// whole `go test -bench` invocation in a CPU profile and writes a heap
// snapshot on exit (<dir>/cpu.pprof, <dir>/mem.pprof). It exists so CI and
// scripted bench sweeps can collect profiles without threading go test's
// -cpuprofile flags through every wrapper; interactive use can keep the
// standard flags. Unset, TestMain adds nothing.
package stretch

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"testing"
)

func TestMain(m *testing.M) {
	dir := os.Getenv("STRETCH_PPROF")
	if dir == "" {
		os.Exit(m.Run())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "STRETCH_PPROF: %v\n", err)
		os.Exit(1)
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "STRETCH_PPROF: %v\n", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		fmt.Fprintf(os.Stderr, "STRETCH_PPROF: %v\n", err)
		os.Exit(1)
	}
	code := m.Run()
	pprof.StopCPUProfile()
	cpu.Close()
	if mem, err := os.Create(filepath.Join(dir, "mem.pprof")); err == nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(mem); err != nil {
			fmt.Fprintf(os.Stderr, "STRETCH_PPROF: %v\n", err)
		}
		mem.Close()
	} else {
		fmt.Fprintf(os.Stderr, "STRETCH_PPROF: %v\n", err)
	}
	os.Exit(code)
}
