// Package isa defines the micro-operation vocabulary shared by the trace
// generator and the core model: operation kinds, the functional-unit classes
// that execute them, and their execution latencies.
//
// The model is ISA-agnostic at the instruction-encoding level (the paper
// simulates SPARC v9; we reproduce pipeline behaviour, not encodings): a
// trace is a stream of micro-ops annotated with dependence distances,
// memory addresses, and branch outcomes.
//
// Invariant: this package is pure vocabulary — immutable kinds, classes
// and latency tables with no state — so every consumer can share it
// concurrently without coordination.
package isa

import "fmt"

// OpKind classifies a micro-op by the pipeline resources it needs.
type OpKind uint8

// Micro-op kinds.
const (
	OpIntAlu OpKind = iota // single-cycle integer ALU
	OpIntMul               // integer multiply/divide
	OpFP                   // floating-point arithmetic
	OpLoad                 // memory load (occupies LSQ + LSU)
	OpStore                // memory store (occupies LSQ + LSU)
	OpBranch               // conditional or indirect branch
	numOpKinds
)

// NumOpKinds is the number of distinct micro-op kinds.
const NumOpKinds = int(numOpKinds)

// String returns the mnemonic for the kind.
func (k OpKind) String() string {
	switch k {
	case OpIntAlu:
		return "alu"
	case OpIntMul:
		return "mul"
	case OpFP:
		return "fp"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// IsMem reports whether the kind accesses data memory.
func (k OpKind) IsMem() bool { return k == OpLoad || k == OpStore }

// FUClass identifies a functional-unit pool in the core back-end.
type FUClass uint8

// Functional-unit classes, matching Table II: 4 int adders, 2 int
// multipliers, 3 FPUs, 2 load/store units.
const (
	FUIntAdd FUClass = iota
	FUIntMul
	FUFP
	FULSU
	numFUClasses
)

// NumFUClasses is the number of functional-unit pools.
const NumFUClasses = int(numFUClasses)

// String returns the pool name.
func (c FUClass) String() string {
	switch c {
	case FUIntAdd:
		return "int-add"
	case FUIntMul:
		return "int-mul"
	case FUFP:
		return "fp"
	case FULSU:
		return "lsu"
	default:
		return fmt.Sprintf("FUClass(%d)", uint8(c))
	}
}

// FUFor returns the functional-unit class that executes kind k.
func FUFor(k OpKind) FUClass {
	switch k {
	case OpIntMul:
		return FUIntMul
	case OpFP:
		return FUFP
	case OpLoad, OpStore:
		return FULSU
	default: // OpIntAlu, OpBranch
		return FUIntAdd
	}
}

// Latency returns the execution latency in cycles for kind k, excluding any
// memory-hierarchy time (loads add cache latency on top of address
// generation).
func Latency(k OpKind) int {
	switch k {
	case OpIntAlu, OpBranch:
		return 1
	case OpIntMul:
		return 3
	case OpFP:
		return 4
	case OpLoad, OpStore:
		return 1 // address generation; memory time added by the cache model
	default:
		return 1
	}
}

// MicroOp is one element of an instruction trace.
type MicroOp struct {
	// PC is the program counter of the op (byte address).
	PC uint64
	// Site is a stable identifier of the static instruction site, used
	// by PC-indexed structures such as the stride prefetcher. For most
	// ops it mirrors the PC; trace generators give stream accesses a
	// stable site the way a loop's load PC is stable in real code.
	Site uint32
	// Kind classifies the op.
	Kind OpKind
	// Dep1 and Dep2 are register-dependence distances: the op depends on
	// the results of the ops Dep1 and Dep2 positions earlier in program
	// order of the same thread. Zero means no dependence. Loads feeding
	// through pointer chases are expressed as small distances to older
	// loads.
	Dep1, Dep2 int32
	// Addr is the effective data address for loads and stores.
	Addr uint64
	// Taken reports the branch outcome for branch ops.
	Taken bool
	// Target is the branch target for taken branches (next fetch PC).
	Target uint64
}
