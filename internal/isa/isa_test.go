package isa

import "testing"

func TestFUMapping(t *testing.T) {
	cases := []struct {
		k OpKind
		c FUClass
	}{
		{OpIntAlu, FUIntAdd},
		{OpBranch, FUIntAdd},
		{OpIntMul, FUIntMul},
		{OpFP, FUFP},
		{OpLoad, FULSU},
		{OpStore, FULSU},
	}
	for _, c := range cases {
		if got := FUFor(c.k); got != c.c {
			t.Errorf("FUFor(%v) = %v, want %v", c.k, got, c.c)
		}
	}
}

func TestLatencies(t *testing.T) {
	if Latency(OpIntAlu) != 1 || Latency(OpBranch) != 1 {
		t.Error("single-cycle ops must have latency 1")
	}
	if Latency(OpIntMul) <= Latency(OpIntAlu) {
		t.Error("multiply must be slower than add")
	}
	if Latency(OpFP) <= Latency(OpIntAlu) {
		t.Error("FP must be slower than add")
	}
	for k := OpKind(0); int(k) < NumOpKinds; k++ {
		if Latency(k) < 1 {
			t.Errorf("latency of %v < 1", k)
		}
	}
}

func TestIsMem(t *testing.T) {
	for k := OpKind(0); int(k) < NumOpKinds; k++ {
		want := k == OpLoad || k == OpStore
		if k.IsMem() != want {
			t.Errorf("IsMem(%v) = %v", k, k.IsMem())
		}
	}
}

func TestStrings(t *testing.T) {
	names := map[OpKind]string{
		OpIntAlu: "alu", OpIntMul: "mul", OpFP: "fp",
		OpLoad: "load", OpStore: "store", OpBranch: "branch",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
	if OpKind(200).String() == "" || FUClass(200).String() == "" {
		t.Error("unknown values must still format")
	}
	fus := map[FUClass]string{FUIntAdd: "int-add", FUIntMul: "int-mul", FUFP: "fp", FULSU: "lsu"}
	for c, want := range fus {
		if c.String() != want {
			t.Errorf("%v.String() = %q", c, c.String())
		}
	}
}
