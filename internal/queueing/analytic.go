// Analytic is the fluid fast path behind the fleet engine's Engine
// selector: a closed-form steady-state solution of the same bursty M/G/k
// system Simulate realises event by event. It exists because a steady
// window — stationary arrival rate, fixed mode, no warm-up — is fully
// described by its queueing equilibrium, so simulating hundreds of
// requests per core-window to estimate a tail quantile is wasted work at
// fleet scale (the paper's slack argument is itself a steady-state
// argument). The solver composes:
//
//   - an Erlang-C wait probability on the offered request load, with the
//     Allen-Cunneen (C²a+C²s)/2 correction for service variability and
//     batch-arrival dispersion (C²a = E[G²]/E[G] for the fixed-size burst
//     distribution G realised by BurstProb/BurstLen);
//   - a conditional queueing delay modelled as a two-branch
//     hyperexponential around the Allen-Cunneen rate (kμ−λ)/corr: the
//     heavy branch captures burst-driven waits, whose tail a single
//     mean-matched exponential systematically underestimates;
//   - within-burst drain delays: burst member j waits for j−f earliest
//     completions of the ~kμ service pool, where f is the free-server
//     count drawn from the truncated-Erlang busy distribution in the
//     no-wait branch and zero in the wait branch;
//   - the log-normal service time itself.
//
// The resulting sojourn distribution — a mixture of shifted log-normals,
// half of them convolved with the exponential wait — is deposited into the
// same log-bucketed stats.Histogram geometry the discrete simulator
// records into, as integer counts via cumulative rounding. Quantiles
// therefore come off the identical bucket-midpoint grid, which is what
// bounds the analytic-vs-discrete disagreement by the histogram's bucket
// resolution on steady windows.
package queueing

import (
	"fmt"
	"math"

	"stretch/internal/stats"
)

const (
	// AnalyticMaxUtilization is the soundness ceiling of the closed-form
	// solver: above it the heavy-traffic approximations degrade and the
	// equilibrium itself takes longer than a window to reach, so callers
	// (the fleet's fluid/auto engines) must keep the discrete simulator.
	AnalyticMaxUtilization = 0.95
	// maxAnalyticWorkers bounds the Erlang busy-distribution recurrence:
	// beyond it the a^i/i! terms approach float64 overflow and the O(k)
	// solve stops being cheap. Larger pools fall back to the simulator.
	maxAnalyticWorkers = 512
	// minAnalyticWorkers floors the pool size: in near-saturated tiny
	// pools a single burst swamps every server and the within-burst drain
	// model double-counts the backlog (fuzzing found ~2× mean inflation at
	// k=1, ρ=0.87 with batches). Every calibrated service runs 10-16
	// workers per core; smaller pools fall back to the simulator.
	minAnalyticWorkers = 8
	// maxAnalyticBurst bounds the within-burst mixture enumeration.
	maxAnalyticBurst = 64
	// maxAnalyticCV and maxAnalyticCa2 bound the variability the solver
	// will answer for: Allen-Cunneen's two-moment waiting-time scaling
	// overestimates heavily once service variance (cs² ≫ 1) or batch
	// arrival dispersion (C²a = E[G²]/E[G] ≫ 1) dominates — fuzzing found
	// ~45% mean error at CV 2.15 and ~40% at C²a ≈ 10. Every calibrated
	// service sits at CV ≤ 0.5 and C²a ≤ 2.8; stranger shapes fall back to
	// the discrete simulator.
	maxAnalyticCV  = 1.0
	maxAnalyticCa2 = 4.0
	// analyticMass is the integer probability mass deposited into the
	// histogram: large enough that quantile ranks resolve every bucket,
	// small enough that a fleet merging millions of analytic windows
	// cannot overflow uint64 counts.
	analyticMass = 1 << 20
	// heavyTailFactor and heavyShare parameterise the heavy branch of the
	// hyperexponential conditional wait (see analyticSolve): the heavy
	// branch decays heavyTailFactor× slower than the Allen-Cunneen rate,
	// and carries heavyShare of the batch component of the arrival
	// dispersion. Calibrated once against the discrete simulator over the
	// full service catalogue and utilization grid.
	heavyTailFactor = 3.0
	heavyShare      = 0.22
)

// expComp is one exponential branch of the conditional-wait mixture.
type expComp struct {
	rate float64 // decay rate, per ms
	frac float64 // branch probability
}

// Utilization returns the offered request load over service capacity,
// ρ = λ·E[S]/k, for the configured service at the given arrival rate and
// perf factor — the steadiness signal the fleet's engine classifier
// compares against its guard band and AnalyticMaxUtilization.
func Utilization(cfg Config, ratePerSec, perfFactor float64) float64 {
	if cfg.Workers <= 0 || perfFactor <= 0 {
		return math.Inf(1)
	}
	b := int(cfg.BurstLen)
	if b < 1 {
		b = 1
	}
	eg := 1 + cfg.BurstProb*float64(b-1)
	return ratePerSec / 1000 * eg * cfg.MeanServiceMs / perfFactor / float64(cfg.Workers)
}

// Analytic solves the configured service in closed form at the given
// arrival rate (requests per second) and perf factor, returning the same
// Result fields Simulate measures. MaxQueue and Requests are zero: no
// discrete requests exist on this path. Quantiles are read from an
// analytically filled stats.Histogram with the standard tail geometry
// regardless of cfg.Estimator, so they sit on the same bucket-midpoint
// grid as a histogram-estimator simulation. It errors when the system is
// outside the solver's soundness envelope (utilization at or above
// AnalyticMaxUtilization, oversized worker pools or bursts, service CV
// beyond the calibrated range): those regimes need the discrete
// simulator.
func Analytic(cfg Config, ratePerSec, perfFactor float64) (Result, error) {
	h, meanMs, err := analyticSolve(cfg, ratePerSec, perfFactor)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		MeanMs: meanMs,
		P95Ms:  h.Quantile(0.95),
		P99Ms:  h.Quantile(0.99),
		QoSMs:  h.Quantile(cfg.QoSQuantile),
	}
	r.MeetsQoS = r.QoSMs <= cfg.QoSTargetMs
	return r, nil
}

// AnalyticTail returns the latency at the service's QoS quantile from the
// analytic solution. When sampleEquiv > 0 it emulates the rank convention
// of a discrete window that measured sampleEquiv requests minus the 10%
// warm-up: a finite sample's closest-rank quantile sits at rank
// ⌊q·(m−1)⌋ of m observations — systematically below the asymptotic
// quantile for small m — and the fleet's auto engine must reproduce that
// convention, not improve on it, for analytic and discrete windows to
// agree within bucket resolution.
func AnalyticTail(cfg Config, ratePerSec, perfFactor float64, sampleEquiv int) (float64, error) {
	h, _, err := analyticSolve(cfg, ratePerSec, perfFactor)
	if err != nil {
		return 0, err
	}
	q := cfg.QoSQuantile
	if m := sampleEquiv - sampleEquiv/10; m > 1 {
		rank := math.Floor(q * float64(m-1))
		q = (rank + 0.5) / float64(m)
	}
	return h.Quantile(q), nil
}

// analyticSolve builds the steady-state sojourn-time distribution and
// deposits it into a fresh tail histogram; it returns the histogram and
// the analytic mean sojourn time.
func analyticSolve(cfg Config, ratePerSec, perfFactor float64) (*stats.Histogram, float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if ratePerSec <= 0 {
		return nil, 0, fmt.Errorf("queueing: non-positive rate")
	}
	if perfFactor <= 0 || perfFactor > MaxPerfFactor || math.IsNaN(perfFactor) {
		return nil, 0, fmt.Errorf("queueing: perf factor %v out of (0,%v]", perfFactor, float64(MaxPerfFactor))
	}
	k := cfg.Workers
	if k > maxAnalyticWorkers {
		return nil, 0, fmt.Errorf("queueing: analytic solver capped at %d workers (have %d)", maxAnalyticWorkers, k)
	}
	if k < minAnalyticWorkers {
		return nil, 0, fmt.Errorf("queueing: analytic solver floored at %d workers (have %d)", minAnalyticWorkers, k)
	}
	b := int(cfg.BurstLen)
	if b < 1 {
		b = 1
	}
	if b > maxAnalyticBurst {
		return nil, 0, fmt.Errorf("queueing: analytic solver capped at burst length %d (have %d)", maxAnalyticBurst, b)
	}
	if cfg.ServiceCV > maxAnalyticCV {
		return nil, 0, fmt.Errorf("queueing: analytic solver capped at service CV %v (have %v)", float64(maxAnalyticCV), cfg.ServiceCV)
	}
	p := cfg.BurstProb
	if b == 1 {
		p = 0 // a burst of one is no burst: the discrete path adds nothing
	}

	eg := 1 + p*float64(b-1)             // E[G], requests per burst head
	es := cfg.MeanServiceMs / perfFactor // E[S], ms
	lam := ratePerSec / 1000 * eg        // request arrival rate, per ms
	rho := lam * es / float64(k)         // utilization
	kmu := float64(k) / es               // service-pool drain rate, per ms
	if rho >= AnalyticMaxUtilization {
		return nil, 0, fmt.Errorf("queueing: utilization %.3f at or above analytic ceiling %v", rho, AnalyticMaxUtilization)
	}

	// Erlang-B recurrence on the offered request load a = kρ, then
	// Erlang-C for the wait probability.
	a := float64(k) * rho
	eb := 1.0
	for j := 1; j <= k; j++ {
		eb = a * eb / (float64(j) + a*eb)
	}
	pWait := eb / (1 - rho*(1-eb))

	// Allen-Cunneen correction: batch-Poisson arrival dispersion plus
	// log-normal service variability. For fixed-size bursts,
	// C²a = E[G²]/E[G] (the index of dispersion of request counts).
	eg2 := (1 - p) + p*float64(b)*float64(b)
	ca2 := eg2 / eg
	if ca2 > maxAnalyticCa2 {
		return nil, 0, fmt.Errorf("queueing: analytic solver capped at arrival dispersion C²a %v (have %.2f)", float64(maxAnalyticCa2), ca2)
	}
	cs2 := cfg.ServiceCV * cfg.ServiceCV
	corr := (ca2 + cs2) / 2
	if corr <= 0 {
		// Deterministic batchless service (cv=0, p=0) still queues; keep
		// the M/D/k halving rather than a degenerate zero wait.
		corr = 0.5
	}
	nu := (kmu - lam) / corr // base conditional-wait decay rate

	// The conditional wait is modelled hyperexponential rather than plain
	// Exp(ν): the log-normal workload has no finite moment generating
	// function, so the true wait tail is strictly heavier than the
	// mean-matched exponential, and burst dumps (a head dragging b·E[S]/k
	// of pool work in one instant) stretch it further. A second branch at
	// rate ν/heavyTailFactor, weighted by the batch share of the arrival
	// dispersion, captures burst-driven waits; both its weight law and the
	// factor are calibrated against the discrete simulator across the
	// service catalogue (TestAnalyticMatchesDiscrete). Poisson singleton
	// traffic (ca2→1) degenerates back to the plain exponential.
	wHeavy := heavyShare * (ca2 - 1) / (ca2 + cs2)
	if wHeavy < 0 {
		wHeavy = 0
	}
	waitMean := (1 + wHeavy*(heavyTailFactor-1)) / nu
	waitComps := []expComp{{rate: nu, frac: 1 - wHeavy}}
	if wHeavy > 0 {
		waitComps = append(waitComps, expComp{rate: nu / heavyTailFactor, frac: wHeavy})
	}

	// Truncated-Erlang busy-server distribution π_i ∝ a^i/i!, i<k: what a
	// non-waiting burst head finds on arrival (PASTA), determining how
	// many members start on free servers.
	pis := make([]float64, k)
	piSum := 0.0
	t := 1.0
	for i := 0; i < k; i++ {
		pis[i] = t
		piSum += t
		t *= a / float64(i+1)
	}

	// Mixture weights over within-burst drain positions: wNoWait[n] weighs
	// the component dNoWait[n] + S, wWait[n] the component
	// n/(kμ) + Exp(ν) + S.
	//
	// The two branches drain differently. Behind a wait, the pool is a
	// saturated flow: completions tick at kμ and member j starts (j−1)
	// ticks after the head. Without a wait, the burst hit free capacity:
	// members beyond the free servers wait for the n-th completion among
	// ~k concurrently running log-normal services — an order statistic
	// F⁻¹(n/(k+1)), far larger than n/(kμ) at low load because the n-th
	// of k fresh services finishing is nothing like a saturated drain.
	step := 1 / kmu
	dNoWait := make([]float64, b)
	for n := 1; n < b; n++ {
		if n <= k {
			dNoWait[n] = lognormQuantile(es, sigmaOf(cfg.ServiceCV), float64(n)/float64(k+1))
		} else {
			dNoWait[n] = lognormQuantile(es, sigmaOf(cfg.ServiceCV), float64(k)/float64(k+1)) + float64(n-k)*step
		}
	}
	wNoWait := make([]float64, b)
	wWait := make([]float64, b)
	fBatch := p * float64(b) / eg // fraction of requests arriving in bursts
	wNoWait[0] += (1 - fBatch) * (1 - pWait)
	wWait[0] += (1 - fBatch) * pWait
	if b > 1 {
		wj := fBatch / float64(b) // requests are uniform over burst positions
		for j := 1; j <= b; j++ {
			// Head waited: all k servers busy when the burst reaches the
			// front; member j drains j−1 completions behind the head.
			wWait[j-1] += wj * pWait
			// Head started immediately: i busy servers leave k−i free;
			// members beyond them wait for pool completions.
			for i := 0; i < k; i++ {
				n := j - (k - i)
				if n < 0 {
					n = 0
				}
				wNoWait[n] += wj * (1 - pWait) * pis[i] / piSum
			}
		}
	}

	meanMs := es
	for n, w := range wNoWait {
		meanMs += w * dNoWait[n]
	}
	for n, w := range wWait {
		meanMs += w * (float64(n)*step + waitMean)
	}

	h := stats.NewTailHistogram()
	depositAnalytic(h, cfg, es, waitComps, step, dNoWait, wNoWait, wWait)
	return h, meanMs, nil
}

// sigmaOf converts a coefficient of variation to the log-normal σ.
func sigmaOf(cv float64) float64 { return math.Sqrt(math.Log(1 + cv*cv)) }

// lognormQuantile returns the u-quantile of a log-normal distribution
// with the given mean and log-space σ.
func lognormQuantile(mean, sigma, u float64) float64 {
	if sigma == 0 {
		return mean
	}
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(mu + sigma*math.Sqrt2*math.Erfinv(2*u-1))
}

// depositAnalytic discretises the mixture distribution onto the histogram
// grid as integer counts. The service time is first discretised into
// per-bucket atoms at bucket midpoints (one erf per bucket edge); each
// mixture component then shifts those atoms by its drain delay and, for
// wait-branch components, convolves them with each exponential branch of
// the conditional wait via a single ascending pass over the bucket edges
// with a decaying prefix sum — O(b × branches × buckets) total, no
// quadratic convolution. Cumulative rounding converts the accumulated
// float mass to exactly analyticMass integer counts.
func depositAnalytic(h *stats.Histogram, cfg Config, es float64, waitComps []expComp, step float64, dNoWait, wNoWait, wWait []float64) {
	nb := h.NumBuckets()

	// Log-normal service CDF at full support; cv=0 degenerates to a step.
	sigma2 := math.Log(1 + cfg.ServiceCV*cfg.ServiceCV)
	sigma := math.Sqrt(sigma2)
	mu := math.Log(es) - sigma2/2
	cdf := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		if sigma == 0 {
			if x >= es {
				return 1
			}
			return 0
		}
		return 0.5 * math.Erfc(-(math.Log(x)-mu)/(sigma*math.Sqrt2))
	}

	// Bucket edges, midpoints and per-bucket service mass. The top bucket
	// absorbs the remaining upper tail; its midpoint is +Inf, which the
	// histogram clamps into the top bucket.
	edges := make([]float64, nb)
	mids := make([]float64, nb)
	sMass := make([]float64, nb)
	prevEdge, prevCDF := 0.0, 0.0
	for j := 0; j < nb; j++ {
		u := h.UpperBound(j)
		edges[j] = u
		if math.IsInf(u, 1) {
			mids[j] = math.Inf(1)
			sMass[j] = 1 - prevCDF
			continue
		}
		mids[j] = (prevEdge + u) / 2
		if j == 0 {
			mids[j] = 0 // underflow bucket: representative value 0
		}
		c := cdf(u)
		sMass[j] = c - prevCDF
		prevEdge, prevCDF = u, c
	}

	// Accumulate each component's mass into float buckets.
	fTot := make([]float64, nb)
	for n, w := range wNoWait {
		if w <= 0 {
			continue
		}
		d := dNoWait[n]
		if d == 0 {
			// Unshifted: atoms land back in their own buckets exactly.
			for j, m := range sMass {
				fTot[j] += w * m
			}
			continue
		}
		// Shifted atoms ascend with j, so the destination bucket only moves
		// forward: a single merge walk over the precomputed edges replaces a
		// per-atom binary search through Histogram.UpperBound (which
		// dominated the solve's profile).
		bi := 0
		for j, m := range sMass {
			if m <= 0 {
				continue
			}
			x := mids[j] + d
			for bi < nb-1 && x >= edges[bi] {
				bi++
			}
			fTot[bi] += w * m
		}
	}
	if hasMass(wWait) {
		decay := make([]float64, nb)
		cdfW := make([]float64, nb)
		for _, wc := range waitComps {
			if wc.frac <= 0 {
				continue
			}
			nu := wc.rate
			// Per-branch edge decay factors for the exponential convolution.
			for j := 1; j < nb; j++ {
				if math.IsInf(edges[j], 1) {
					decay[j] = 0
					continue
				}
				decay[j] = math.Exp(-nu * (edges[j] - edges[j-1]))
			}
			for n, w := range wWait {
				if w <= 0 {
					continue
				}
				d := float64(n) * step
				// Ascending edge pass: A carries Σ mass·e^{−ν(edge−pos)} over
				// atoms whose shifted position pos ≤ edge; the component CDF at
				// an edge is (cumulative atom mass) − A.
				A, cum := 0.0, 0.0
				ai := 0
				for j := 0; j < nb; j++ {
					if math.IsInf(edges[j], 1) {
						cdfW[j] = 1
						continue
					}
					if j > 0 {
						A *= decay[j]
					}
					for ai < nb && !math.IsInf(mids[ai], 1) && mids[ai]+d <= edges[j] {
						if m := sMass[ai]; m > 0 {
							A += m * math.Exp(-nu*(edges[j]-(mids[ai]+d)))
							cum += m
						}
						ai++
					}
					cdfW[j] = cum - A
				}
				prev := 0.0
				for j := 0; j < nb; j++ {
					fTot[j] += w * wc.frac * (cdfW[j] - prev)
					prev = cdfW[j]
				}
			}
		}
	}

	// Cumulative rounding: deposit exactly analyticMass counts, each
	// bucket getting round(cumMass·N) − already-deposited.
	cum := 0.0
	var deposited uint64
	for j := 0; j < nb; j++ {
		cum += fTot[j]
		target := uint64(math.Round(cum * analyticMass))
		if target > analyticMass {
			target = analyticMass
		}
		if target > deposited {
			h.AddN(mids[j], target-deposited)
			deposited = target
		}
	}
	if deposited < analyticMass {
		h.AddN(math.Inf(1), analyticMass-deposited)
	}
}

func hasMass(ws []float64) bool {
	for _, w := range ws {
		if w > 0 {
			return true
		}
	}
	return false
}
