// Shared analytic solve cache: one lock-striped, two-generation map that
// every fleet worker (and the counterfactual evaluator) reads and writes,
// replacing the former per-worker caches. The solver is a pure function of
// its key, so sharing results across goroutines cannot perturb any value —
// it only stops W workers from re-solving the same rate plateau W times.
//
// Eviction is per-stripe and generational rather than a wholesale clear:
// when a stripe's current generation fills, it becomes the previous
// generation and a fresh map takes over; a hit in the previous generation
// promotes the entry back into the current one. A hot key that keeps being
// looked up therefore survives any number of eviction storms (pathological
// per-core rate diversity, e.g. p2c routing), while cold keys age out two
// generations after they stop being touched.
package queueing

import "sync"

// TailKey identifies one solved steady state: a caller-scoped service
// index plus the exact bit patterns of the arrival rate and perf factor.
// Keying by bits (not float values) is what makes cache hits reproduce the
// solver bit-for-bit: equal bits give equal results on every goroutine.
type TailKey struct {
	Service    int32
	Rate, Perf uint64
}

// tailCacheStripes is the number of independently locked stripes. A power
// of two so stripe selection is a mask, sized well past any plausible
// worker count so stripe collisions under concurrent lookup stay rare.
const tailCacheStripes = 64

// TailCache is a concurrency-safe solve cache. The zero value is not
// usable; build one with NewTailCache.
type TailCache struct {
	perStripe int
	stripes   [tailCacheStripes]tailStripe
}

type tailStripe struct {
	mu        sync.Mutex
	limit     int
	cur, prev map[TailKey]float64
}

// NewTailCache builds a cache bounded at roughly capacity entries across
// all stripes: each stripe rotates generations at capacity/stripes entries
// and holds at most two generations, so the hard ceiling is 2× capacity.
func NewTailCache(capacity int) *TailCache {
	per := capacity / tailCacheStripes
	if per < 1 {
		per = 1
	}
	c := &TailCache{perStripe: per}
	for i := range c.stripes {
		c.stripes[i].limit = per
	}
	return c
}

func (k TailKey) stripe() uint64 {
	h := k.Rate*0x9e3779b97f4a7c15 ^ k.Perf*0xbf58476d1ce4e5b9 ^ uint64(uint32(k.Service))*0x94d049bb133111eb
	h ^= h >> 33
	return h & (tailCacheStripes - 1)
}

// Lookup returns the cached solve for k. A hit in the previous generation
// is promoted into the current one, which is what keeps hot keys resident
// across rotations.
func (c *TailCache) Lookup(k TailKey) (float64, bool) {
	s := &c.stripes[k.stripe()]
	s.mu.Lock()
	if v, ok := s.cur[k]; ok {
		s.mu.Unlock()
		return v, true
	}
	if v, ok := s.prev[k]; ok {
		s.insertLocked(k, v)
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	return 0, false
}

// Insert records a solve for k and reports whether the key was previously
// unknown to the cache (absent from both generations). Concurrent solvers
// of the same key therefore count one first insert between them, which
// keeps solve counters deterministic across worker counts.
func (c *TailCache) Insert(k TailKey, v float64) bool {
	s := &c.stripes[k.stripe()]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cur[k]; ok {
		return false
	}
	_, stale := s.prev[k]
	s.insertLocked(k, v)
	return !stale
}

// insertLocked adds k to the current generation, rotating generations
// first when the current one is full. Called with s.mu held.
func (s *tailStripe) insertLocked(k TailKey, v float64) {
	if s.cur == nil {
		s.cur = make(map[TailKey]float64)
	}
	if len(s.cur) >= s.limit {
		s.prev = s.cur
		s.cur = make(map[TailKey]float64, s.limit)
	}
	s.cur[k] = v
}
