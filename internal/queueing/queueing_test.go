package queueing

import (
	"fmt"
	"math"
	"stretch/internal/stats"
	"testing"
)

func cfg() Config {
	return Config{
		Workers:       8,
		MeanServiceMs: 5,
		ServiceCV:     1.0,
		BurstProb:     0.1,
		BurstLen:      3,
		QoSQuantile:   0.99,
		QoSTargetMs:   100,
	}
}

func TestValidate(t *testing.T) {
	good := cfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.MeanServiceMs = 0 },
		func(c *Config) { c.MeanServiceMs = math.NaN() },
		func(c *Config) { c.ServiceCV = -1 },
		func(c *Config) { c.ServiceCV = math.Inf(1) },
		func(c *Config) { c.BurstProb = -0.1 },
		func(c *Config) { c.BurstProb = 1.5 },
		func(c *Config) { c.BurstLen = -1 },
		func(c *Config) { c.QoSQuantile = 1.2 },
		func(c *Config) { c.QoSQuantile = math.NaN() },
		func(c *Config) { c.QoSTargetMs = 0 },
	}
	for i, m := range bad {
		c := cfg()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSimulateArgumentChecks(t *testing.T) {
	if _, err := Simulate(cfg(), 0, 1000, 1, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Simulate(cfg(), 100, 0, 1, 1); err == nil {
		t.Fatal("zero requests accepted")
	}
	if _, err := Simulate(cfg(), 100, 1000, 0, 1); err == nil {
		t.Fatal("zero perf accepted")
	}
	if _, err := Simulate(cfg(), 100, 1000, MaxPerfFactor+0.5, 1); err == nil {
		t.Fatal("perf > MaxPerfFactor accepted")
	}
	// A modest super-unity factor is legal: a calibrated Q-mode core runs
	// the service faster than the equal-partitioning baseline.
	fast, err := Simulate(cfg(), 100, 1000, 1.1, 1)
	if err != nil {
		t.Fatalf("perf 1.1 rejected: %v", err)
	}
	base, err := Simulate(cfg(), 100, 1000, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fast.MeanMs >= base.MeanMs {
		t.Fatalf("perf 1.1 mean %v not below perf 1 mean %v", fast.MeanMs, base.MeanMs)
	}
}

func TestLatencyOrderingAndGrowth(t *testing.T) {
	c := cfg()
	low, err := Simulate(c, 100, 30000, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !(low.MeanMs <= low.P95Ms && low.P95Ms <= low.P99Ms) {
		t.Fatalf("percentile ordering violated: %+v", low)
	}
	if low.MeanMs < c.MeanServiceMs*0.8 {
		t.Fatalf("latency below service time: %v", low.MeanMs)
	}
	// Near saturation (8 workers × 200/s = 1600/s capacity).
	high, err := Simulate(c, 1500, 30000, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if high.P99Ms <= low.P99Ms*1.5 {
		t.Fatalf("tail did not grow with load: %v -> %v", low.P99Ms, high.P99Ms)
	}
	// The tail must grow by more milliseconds than the mean (queueing
	// delay dominates the tail, Fig. 1).
	if high.P99Ms-low.P99Ms <= high.MeanMs-low.MeanMs {
		t.Fatal("p99 should grow by more than the mean with load")
	}
}

func TestPerfFactorStretchesService(t *testing.T) {
	full, err := Simulate(cfg(), 100, 30000, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	half, err := Simulate(cfg(), 100, 30000, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	ratio := half.MeanMs / full.MeanMs
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("halving performance scaled mean latency by %v, want ~2", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Simulate(cfg(), 400, 20000, 1, 99)
	b, _ := Simulate(cfg(), 400, 20000, 1, 99)
	if a != b {
		t.Fatal("same-seed simulations diverged")
	}
	c, _ := Simulate(cfg(), 400, 20000, 1, 100)
	if a == c {
		t.Fatal("different seeds produced identical results")
	}
}

func TestPeakLoadBracketsQoS(t *testing.T) {
	c := cfg()
	peak, err := PeakLoad(c, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if peak <= 0 {
		t.Fatal("non-positive peak")
	}
	at, err := Simulate(c, peak*0.95, 20000, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !at.MeetsQoS {
		t.Fatalf("95%% of peak violates QoS: p-tail %vms", at.QoSMs)
	}
	over, err := Simulate(c, peak*1.3, 20000, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if over.MeetsQoS {
		t.Fatal("30% beyond peak still meets QoS — peak search too conservative")
	}
}

func TestMaxQueueGrowsWithOverload(t *testing.T) {
	c := cfg()
	// Well under capacity almost nothing waits; past saturation (8 workers
	// × 200/s = 1600/s) the backlog must grow without bound over the run.
	low, err := Simulate(c, 200, 20000, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	over, err := Simulate(c, 2400, 20000, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if over.MaxQueue <= low.MaxQueue {
		t.Fatalf("overload max queue %d not above light-load %d", over.MaxQueue, low.MaxQueue)
	}
	if over.MaxQueue < c.Workers {
		t.Fatalf("50%% overload over 20k requests backed up only %d requests", over.MaxQueue)
	}
}

// TestSimulatorMatchesSimulate pins the reuse contract the fleet hot loop
// relies on: a Simulator re-used across runs — with other configurations
// and rates interleaved — must produce results bit-identical to the
// one-shot package function for every (config, args, seed).
func TestSimulatorMatchesSimulate(t *testing.T) {
	a := cfg()
	b := Config{
		Workers: 64, MeanServiceMs: 2, ServiceCV: 0.4,
		BurstProb: 0.02, BurstLen: 10, QoSQuantile: 0.95, QoSTargetMs: 30,
	}
	sim, err := NewSimulator(a)
	if err != nil {
		t.Fatal(err)
	}
	runs := []struct {
		cfg  Config
		rate float64
		n    int
		perf float64
		seed uint64
	}{
		{a, 400, 5000, 1, 1},
		{b, 20000, 3000, 0.8, 2},
		{a, 1500, 2000, 0.6, 3},
		{a, 400, 5000, 1, 1}, // repeat of the first: must still match
		{b, 5000, 800, 1, 99},
	}
	for i, r := range runs {
		if err := sim.Reset(r.cfg); err != nil {
			t.Fatal(err)
		}
		got, err := sim.Simulate(r.rate, r.n, r.perf, r.seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Simulate(r.cfg, r.rate, r.n, r.perf, r.seed)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("run %d diverged from one-shot Simulate:\n%+v\nvs\n%+v", i, got, want)
		}
	}
	// The reusable path must reject the same bad inputs.
	if err := sim.Reset(Config{}); err == nil {
		t.Fatal("Reset accepted an invalid config")
	}
	if _, err := sim.Simulate(0, 100, 1, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewSimulator(Config{}); err == nil {
		t.Fatal("NewSimulator accepted an invalid config")
	}
	var unconfigured Simulator
	if _, err := unconfigured.Simulate(100, 1000, 1, 1); err == nil {
		t.Fatal("zero-value Simulator simulated without a Reset")
	}
}

// BenchmarkSimulate exercises the hot loop at several worker-pool widths;
// the Workers=64 case is the regression guard for the former
// O(requests × workers) queue-depth rescan, and the reused-Simulator cases
// are the allocation guard for the fleet engine's per-window path.
func BenchmarkSimulate(b *testing.B) {
	for _, workers := range []int{8, 64} {
		c := Config{
			Workers: workers, MeanServiceMs: 5, ServiceCV: 1.0,
			BurstProb: 0.1, BurstLen: 3, QoSQuantile: 0.99, QoSTargetMs: 100,
		}
		rate := float64(workers) * 1000 / c.MeanServiceMs * 0.8
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(c, rate, 10000, 1, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("workers=%d/reused", workers), func(b *testing.B) {
			b.ReportAllocs()
			sim, err := NewSimulator(c)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if err := sim.Reset(c); err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Simulate(rate, 10000, 1, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestLoadCurveShape(t *testing.T) {
	c := cfg()
	peak, err := PeakLoad(c, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := LoadCurve(c, peak, []float64{0.2, 0.5, 0.8, 1.0}, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].P99Ms < rs[i-1].P99Ms*0.8 {
			t.Fatalf("p99 fell substantially with load: %v -> %v", rs[i-1].P99Ms, rs[i].P99Ms)
		}
	}
	if _, err := LoadCurve(c, peak, []float64{0}, 1000, 5); err == nil {
		t.Fatal("zero load fraction accepted")
	}
}

// TestHistogramEstimatorTracksExact locks the estimator contract: switching
// Config.Estimator never perturbs the simulated event sequence (the exact
// per-request mean is bit-identical) and quantile estimates stay within the
// histogram's bucket resolution of the exact sorted-sample quantiles.
func TestHistogramEstimatorTracksExact(t *testing.T) {
	exact := cfg()
	exact.Estimator = stats.EstimatorExact
	hist := cfg()
	hist.Estimator = stats.EstimatorHistogram
	for _, rate := range []float64{200, 800, 1400} {
		re, err := Simulate(exact, rate, 20000, 1, 11)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := Simulate(hist, rate, 20000, 1, 11)
		if err != nil {
			t.Fatal(err)
		}
		if re.MeanMs != rh.MeanMs || re.MaxQueue != rh.MaxQueue || re.Requests != rh.Requests {
			t.Fatalf("rate %v: estimator perturbed the simulation: %+v vs %+v", rate, re, rh)
		}
		tol := 2 * stats.NewTailHistogram().Resolution()
		for _, pair := range [][2]float64{{re.P95Ms, rh.P95Ms}, {re.P99Ms, rh.P99Ms}, {re.QoSMs, rh.QoSMs}} {
			if rel := math.Abs(pair[1]-pair[0]) / pair[0]; rel > tol {
				t.Fatalf("rate %v: histogram quantile %v vs exact %v (relative error %.3f > %.3f)",
					rate, pair[1], pair[0], rel, tol)
			}
		}
	}
}

// TestHistogramEstimatorDeterministicReuse checks a reused Simulator in
// histogram mode is bit-identical to a one-shot run, as the fleet hot loop
// requires.
func TestHistogramEstimatorDeterministicReuse(t *testing.T) {
	c := cfg()
	c.Estimator = stats.EstimatorHistogram
	sim, err := NewSimulator(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := sim.Simulate(900, 5000, 0.9, 77)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Simulate(c, 900, 5000, 0.9, 77)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("reused simulator drifted on pass %d: %+v vs %+v", i, got, want)
		}
	}
}

func TestValidateRejectsUnknownEstimator(t *testing.T) {
	c := cfg()
	c.Estimator = stats.TailEstimator(99)
	if err := c.Validate(); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}
