package queueing

import (
	"math"
	"testing"

	"stretch/internal/stats"
	"stretch/internal/workload"
)

// svcConfigs materialises the workload catalogue into queueing configs,
// the same way the fleet engine does.
func svcConfigs() map[string]Config {
	out := map[string]Config{}
	for name, svc := range workload.Services() {
		out[name] = Config{
			Workers: svc.Workers, MeanServiceMs: svc.MeanServiceMs,
			ServiceCV: svc.ServiceCV, BurstProb: svc.BurstProb, BurstLen: svc.BurstLen,
			QoSQuantile: svc.QoSQuantile, QoSTargetMs: svc.QoSTargetMs,
			Estimator: stats.EstimatorHistogram,
		}
	}
	return out
}

// rateAtUtil returns the arrival rate (req/s) that offers utilization rho
// to the configured service at the given perf factor.
func rateAtUtil(cfg Config, rho, perf float64) float64 {
	b := int(cfg.BurstLen)
	if b < 1 {
		b = 1
	}
	eg := 1 + cfg.BurstProb*float64(b-1)
	return rho * float64(cfg.Workers) / (cfg.MeanServiceMs / perf) * 1000 / eg
}

// TestAnalyticMatchesDiscrete pins the accuracy contract of the fluid fast
// path: across the full service catalogue and the utilization range the
// fleet's auto classifier routes to the solver, the analytic mean sojourn
// time and QoS-quantile tail stay within a documented envelope of a
// long discrete simulation. The envelope is deliberately wider than the
// histogram bucket resolution: the discrete reference at finite n carries
// its own sampling noise, and the solver's within-burst drain model is an
// approximation. The fleet-level agreement bound (auto vs discrete p99
// within bucket resolution) is pinned end-to-end in cmd/stretchsim.
func TestAnalyticMatchesDiscrete(t *testing.T) {
	for name, cfg := range svcConfigs() {
		for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.85} {
			rate := rateAtUtil(cfg, rho, 1)
			ar, err := Analytic(cfg, rate, 1)
			if err != nil {
				t.Fatalf("%s rho=%.2f: %v", name, rho, err)
			}
			// Average several long discrete runs to beat down seed noise.
			var mean, tail float64
			const runs = 5
			for seed := uint64(1); seed <= runs; seed++ {
				sr, err := Simulate(cfg, rate, 60000, 1, seed)
				if err != nil {
					t.Fatalf("%s rho=%.2f: %v", name, rho, err)
				}
				mean += sr.MeanMs / runs
				tail += sr.QoSMs / runs
			}
			meanErr := ar.MeanMs/mean - 1
			tailErr := ar.QoSMs/tail - 1
			t.Logf("%-16s rho=%.2f mean %8.2f vs %8.2f (%+6.1f%%)  qos %8.2f vs %8.2f (%+6.1f%%)",
				name, rho, ar.MeanMs, mean, 100*meanErr, ar.QoSMs, tail, 100*tailErr)
			if math.Abs(meanErr) > 0.10 {
				t.Errorf("%s rho=%.2f: analytic mean %.3f vs discrete %.3f (%.1f%% off)",
					name, rho, ar.MeanMs, mean, 100*meanErr)
			}
			if math.Abs(tailErr) > 0.15 {
				t.Errorf("%s rho=%.2f: analytic QoS tail %.3f vs discrete %.3f (%.1f%% off)",
					name, rho, ar.QoSMs, tail, 100*tailErr)
			}
		}
	}
}

// TestAnalyticSoundnessEnvelope pins the solver's refusal envelope: the
// regimes the fleet must keep on the discrete path are rejected with an
// error rather than answered badly.
func TestAnalyticSoundnessEnvelope(t *testing.T) {
	cfg := svcConfigs()[workload.WebSearch]
	if _, err := Analytic(cfg, rateAtUtil(cfg, 0.99, 1), 1); err == nil {
		t.Error("utilization above the analytic ceiling must error")
	}
	if _, err := Analytic(cfg, -5, 1); err == nil {
		t.Error("non-positive rate must error")
	}
	if _, err := Analytic(cfg, 100, 0); err == nil {
		t.Error("non-positive perf factor must error")
	}
	big := cfg
	big.BurstLen = maxAnalyticBurst + 1
	if _, err := Analytic(big, 100, 1); err == nil {
		t.Error("oversized burst must error")
	}
	wide := cfg
	wide.Workers = maxAnalyticWorkers + 1
	if _, err := Analytic(wide, 100, 1); err == nil {
		t.Error("oversized worker pool must error")
	}
	tiny := cfg
	tiny.Workers = minAnalyticWorkers - 1
	if _, err := Analytic(tiny, 100, 1); err == nil {
		t.Error("undersized worker pool must error")
	}
	spiky := cfg
	spiky.ServiceCV = maxAnalyticCV + 0.1
	if _, err := Analytic(spiky, 100, 1); err == nil {
		t.Error("service CV beyond the calibrated range must error")
	}
	dispersed := cfg
	dispersed.BurstProb, dispersed.BurstLen = 0.05, 30 // C²a ≈ 19
	if _, err := Analytic(dispersed, 100, 1); err == nil {
		t.Error("arrival dispersion beyond the calibrated range must error")
	}
	bad := cfg
	bad.MeanServiceMs = -1
	if _, err := Analytic(bad, 100, 1); err == nil {
		t.Error("invalid config must error")
	}
}

// TestUtilization cross-checks the classifier signal against first
// principles: rho = rate·E[G]·E[S] / (k·1000·perf).
func TestUtilization(t *testing.T) {
	cfg := Config{Workers: 16, MeanServiceMs: 17, ServiceCV: 0.4,
		BurstProb: 0.005, BurstLen: 20, QoSQuantile: 0.99, QoSTargetMs: 100}
	eg := 1 + 0.005*19
	want := 700.0 / 1000 * eg * 17 / 16
	if got := Utilization(cfg, 700, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
	if got := Utilization(cfg, 700, 0.5); math.Abs(got-2*want) > 1e-12 {
		t.Errorf("halving perf must double utilization: got %v want %v", got, 2*want)
	}
	if !math.IsInf(Utilization(Config{}, 700, 1), 1) {
		t.Error("unconfigured service must report infinite utilization")
	}
}

// BenchmarkAnalyticTail prices one cold analytic solve — the unit the
// fleet engine's per-worker solve cache amortises. The fluid fast path
// only wins when (cache hits × discrete window cost) outruns
// (distinct keys × this number), so keep it well under a millisecond:
// the monotone atom-to-bucket merge walk in depositAnalytic exists
// because a per-atom binary search through Histogram.UpperBound made
// this benchmark ~2× slower and dragged small auto fleets below
// break-even.
func BenchmarkAnalyticTail(b *testing.B) {
	cfg := Config{
		Workers: 16, MeanServiceMs: 4.163, ServiceCV: 0.31,
		BurstProb: 0.05, BurstLen: 8,
		QoSQuantile: 0.99, QoSTargetMs: 12,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyticTail(cfg, 700, 1, 200); err != nil {
			b.Fatal(err)
		}
	}
}
