package queueing

import (
	"math"
	"testing"
)

// FuzzSimulate checks the Validate→Simulate contract: a configuration the
// validator accepts, driven with in-contract arguments, must simulate
// without error or panic and measure the expected request count. Fuzzed
// magnitudes are bounded so a single case stays fast; NaN/Inf survive
// math.Mod (as NaN) and exercise the rejection paths.
func FuzzSimulate(f *testing.F) {
	f.Add(8, 5.0, 1.0, 0.1, 3.0, 0.99, 100.0, 400.0, 2000, 1.0, uint64(1))
	f.Add(64, 3.2, 1.4, 0.03, 10.0, 0.99, 20.0, 9000.0, 1500, 0.85, uint64(2))
	f.Add(1, 170.0, 0.9, 0.0, 0.0, 0.95, 1000.0, 4.0, 800, 0.5, uint64(3))
	f.Add(0, -1.0, math.NaN(), 2.0, -3.0, 1.5, 0.0, 0.0, 0, 0.0, uint64(4))
	f.Fuzz(func(t *testing.T, workers int, mean, cv, bp, bl, q, target, rate float64, nReq int, perf float64, seed uint64) {
		workers %= 256
		nReq %= 3000
		cfg := Config{
			Workers:       workers,
			MeanServiceMs: math.Mod(mean, 1e6),
			ServiceCV:     math.Mod(cv, 50),
			BurstProb:     bp,
			BurstLen:      math.Mod(bl, 100),
			QoSQuantile:   q,
			QoSTargetMs:   math.Mod(target, 1e6),
		}
		if cfg.Validate() != nil {
			return
		}
		rate = math.Mod(rate, 1e7)
		if rate <= 0 || nReq <= 0 || perf <= 0 || perf > MaxPerfFactor || math.IsNaN(rate) || math.IsNaN(perf) {
			// Out-of-contract arguments must be rejected, not crash.
			if _, err := Simulate(cfg, rate, nReq, perf, seed); err == nil {
				t.Fatalf("accepted rate=%v nReq=%d perf=%v", rate, nReq, perf)
			}
			return
		}
		r, err := Simulate(cfg, rate, nReq, perf, seed)
		if err != nil {
			t.Fatalf("validated config failed: %v (cfg=%+v rate=%v nReq=%d perf=%v)", err, cfg, rate, nReq, perf)
		}
		if want := nReq - nReq/10; r.Requests != want {
			t.Fatalf("measured %d of %d requests", r.Requests, want)
		}
		for _, v := range []float64{r.MeanMs, r.P95Ms, r.P99Ms, r.QoSMs} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("non-finite latency in %+v", r)
			}
		}
		if r.MaxQueue < 0 {
			t.Fatalf("negative max queue %d", r.MaxQueue)
		}
	})
}
