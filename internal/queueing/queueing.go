// Package queueing implements the request-level discrete-event simulator
// behind the paper's §II characterisation: a latency-sensitive service is a
// pool of worker threads draining an open-loop, bursty arrival process.
// Queueing delay — not processing time — dominates the tail at high load,
// which is what creates the latency-vs-load knee of Fig. 1 and the slack
// of Fig. 2.
//
// Core performance couples in through a single perf factor: a service
// running at fraction f of full single-thread performance has its service
// times stretched by 1/f (§II's Elfen-style fine-grain interleaving, or
// SMT contention, or a Stretch partition choice).
package queueing

import (
	"container/heap"
	"fmt"

	"stretch/internal/rng"
	"stretch/internal/stats"
)

// Config describes a service's request-level behaviour.
type Config struct {
	// Workers is the number of concurrent request-serving threads.
	Workers int
	// MeanServiceMs and ServiceCV shape the log-normal service time at
	// full single-thread performance.
	MeanServiceMs float64
	ServiceCV     float64
	// BurstProb is the probability an arrival is a burst head; a burst
	// head brings BurstLen-1 additional simultaneous requests. Fixed
	// burst sizes keep the idle-load tail finite while still letting
	// burst drain time stretch with background utilisation — which is
	// what makes the p99 knee appear near peak load (Fig. 1).
	BurstProb float64
	BurstLen  float64
	// QoSQuantile and QoSTargetMs define the QoS constraint.
	QoSQuantile float64
	QoSTargetMs float64
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Workers <= 0:
		return fmt.Errorf("queueing: need at least one worker")
	case c.MeanServiceMs <= 0:
		return fmt.Errorf("queueing: non-positive service time")
	case c.ServiceCV < 0:
		return fmt.Errorf("queueing: negative service CV")
	case c.QoSQuantile <= 0 || c.QoSQuantile >= 1:
		return fmt.Errorf("queueing: QoS quantile out of (0,1)")
	case c.QoSTargetMs <= 0:
		return fmt.Errorf("queueing: non-positive QoS target")
	}
	return nil
}

// Result summarises one simulation.
type Result struct {
	MeanMs float64
	P95Ms  float64
	P99Ms  float64
	// QoSMs is the latency at the configured QoS quantile.
	QoSMs float64
	// MeetsQoS reports QoSMs <= QoSTargetMs.
	MeetsQoS bool
	// MaxQueue is the deepest queue observed.
	MaxQueue int
	// Requests is the number of completed requests measured.
	Requests int
}

// workerHeap tracks worker free times.
type workerHeap []float64

func (h workerHeap) Len() int            { return len(h) }
func (h workerHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h workerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *workerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate runs nRequests through the service at the given arrival rate
// (requests per second) with the core at perfFactor of full single-thread
// performance. The first 10% of requests are warm-up and excluded.
func Simulate(cfg Config, ratePerSec float64, nRequests int, perfFactor float64, seed uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if ratePerSec <= 0 || nRequests <= 0 {
		return Result{}, fmt.Errorf("queueing: non-positive rate or request count")
	}
	if perfFactor <= 0 || perfFactor > 1 {
		return Result{}, fmt.Errorf("queueing: perf factor %v out of (0,1]", perfFactor)
	}

	arr := rng.New(seed).Derive(1)
	svc := rng.New(seed).Derive(2)

	// FCFS k-server queue processed in arrival order: with identical
	// workers, assigning each request to the earliest-free worker in
	// arrival order is exactly FCFS.
	workers := make(workerHeap, cfg.Workers)
	heap.Init(&workers)

	meanGapMs := 1000 / ratePerSec
	now := 0.0 // arrival clock, ms
	warm := nRequests / 10
	lat := stats.NewSample(nRequests - warm)
	var mean stats.Running
	maxQ := 0
	pending := 0 // requests in this burst still to arrive at `now`

	for i := 0; i < nRequests; i++ {
		if pending > 0 {
			pending--
		} else {
			now += arr.Exp(meanGapMs)
			if arr.Bernoulli(cfg.BurstProb) {
				pending = int(cfg.BurstLen) - 1
				if pending < 0 {
					pending = 0
				}
			}
		}
		free := heap.Pop(&workers).(float64)
		start := free
		if now > start {
			start = now
		}
		s := svc.LogNormal(cfg.MeanServiceMs, cfg.ServiceCV) / perfFactor
		finish := start + s
		heap.Push(&workers, finish)

		// Queue depth proxy: workers busy beyond `now`.
		busy := 0
		for _, f := range workers {
			if f > now {
				busy++
			}
		}
		if q := busy - cfg.Workers; q > maxQ {
			maxQ = q
		}
		if i >= warm {
			l := finish - now
			lat.Add(l)
			mean.Add(l)
		}
	}

	r := Result{
		MeanMs:   mean.Mean(),
		P95Ms:    lat.Quantile(0.95),
		P99Ms:    lat.Quantile(0.99),
		QoSMs:    lat.Quantile(cfg.QoSQuantile),
		MaxQueue: maxQ,
		Requests: lat.N(),
	}
	r.MeetsQoS = r.QoSMs <= cfg.QoSTargetMs
	return r, nil
}

// PeakLoad finds the highest arrival rate (req/s) that still meets the QoS
// target at full performance — the paper's "peak sustainable load" that
// anchors the X axes of Figs. 1 and 2.
func PeakLoad(cfg Config, nRequests int, seed uint64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	// The saturation rate of the worker pool bounds the search.
	satRate := float64(cfg.Workers) * 1000 / cfg.MeanServiceMs
	lo, hi := satRate*0.05, satRate*1.2
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		res, err := Simulate(cfg, mid, nRequests, 1.0, seed)
		if err != nil {
			return 0, err
		}
		if res.MeetsQoS {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// LoadCurve returns mean/p95/p99 latency at the given fractions of peak
// load (Fig. 1).
func LoadCurve(cfg Config, peak float64, fractions []float64, nRequests int, seed uint64) ([]Result, error) {
	out := make([]Result, 0, len(fractions))
	for _, f := range fractions {
		if f <= 0 {
			return nil, fmt.Errorf("queueing: non-positive load fraction %v", f)
		}
		r, err := Simulate(cfg, peak*f, nRequests, 1.0, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
