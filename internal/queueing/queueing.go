// Package queueing implements the request-level discrete-event simulator
// behind the paper's §II characterisation: a latency-sensitive service is a
// pool of worker threads draining an open-loop, bursty arrival process.
// Queueing delay — not processing time — dominates the tail at high load,
// which is what creates the latency-vs-load knee of Fig. 1 and the slack
// of Fig. 2.
//
// Core performance couples in through a single perf factor: a service
// running at fraction f of full single-thread performance has its service
// times stretched by 1/f (§II's Elfen-style fine-grain interleaving, or
// SMT contention, or a Stretch partition choice). Factors above 1 are
// legal up to MaxPerfFactor: a calibrated Q-mode cell widens the LS
// thread's window past the equal-partitioning baseline the service times
// are normalised to, genuinely shortening them.
//
// Invariants: a simulation is a pure function of (Config, rate, nRequests,
// perfFactor, seed) — bit-identical on every run, with Simulator state
// never leaking between calls. Config.Estimator selects the latency
// quantile estimator: exact (sorted sample) or the mergeable log-bucketed
// histogram whose error is bounded by the bucket resolution
// (stats.Histogram); the choice never perturbs the simulated event
// sequence, only how its measurements are summarised.
package queueing

import (
	"fmt"
	"math"

	"stretch/internal/rng"
	"stretch/internal/stats"
)

// MaxPerfFactor bounds the perf factor a simulation accepts. Sub-unity
// factors model contention and B-mode slowdowns; factors modestly above 1
// model Q-mode speedups relative to the equal-partitioning baseline.
// Anything larger is a calibration bug, not a plausible core.
const MaxPerfFactor = 4

// Config describes a service's request-level behaviour.
type Config struct {
	// Workers is the number of concurrent request-serving threads.
	Workers int
	// MeanServiceMs and ServiceCV shape the log-normal service time at
	// full single-thread performance.
	MeanServiceMs float64
	ServiceCV     float64
	// BurstProb is the probability an arrival is a burst head; a burst
	// head brings BurstLen-1 additional simultaneous requests. Fixed
	// burst sizes keep the idle-load tail finite while still letting
	// burst drain time stretch with background utilisation — which is
	// what makes the p99 knee appear near peak load (Fig. 1).
	BurstProb float64
	BurstLen  float64
	// QoSQuantile and QoSTargetMs define the QoS constraint.
	QoSQuantile float64
	QoSTargetMs float64
	// Estimator selects how latency quantiles are computed:
	// stats.EstimatorExact retains and sorts every measured latency;
	// stats.EstimatorHistogram records into a fixed log-bucketed histogram
	// (O(1) add, bounded relative error, mergeable). The zero value
	// (stats.EstimatorDefault) resolves to exact here — standalone queueing
	// callers are the paper's figures, where fidelity wins; the fleet
	// engine passes an explicit estimator.
	Estimator stats.TailEstimator
}

// Validate rejects unusable configurations. Float parameters must be
// finite: a NaN or Inf would silently poison every latency sample.
func (c Config) Validate() error {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	switch {
	case c.Workers <= 0:
		return fmt.Errorf("queueing: need at least one worker")
	case !finite(c.MeanServiceMs) || c.MeanServiceMs <= 0:
		return fmt.Errorf("queueing: non-positive service time")
	case !finite(c.ServiceCV) || c.ServiceCV < 0:
		return fmt.Errorf("queueing: negative service CV")
	case !finite(c.BurstProb) || c.BurstProb < 0 || c.BurstProb > 1:
		return fmt.Errorf("queueing: burst probability out of [0,1]")
	case !finite(c.BurstLen) || c.BurstLen < 0:
		return fmt.Errorf("queueing: negative burst length")
	case !finite(c.QoSQuantile) || c.QoSQuantile <= 0 || c.QoSQuantile >= 1:
		return fmt.Errorf("queueing: QoS quantile out of (0,1)")
	case !finite(c.QoSTargetMs) || c.QoSTargetMs <= 0:
		return fmt.Errorf("queueing: non-positive QoS target")
	}
	return c.Estimator.Validate()
}

// Result summarises one simulation.
type Result struct {
	MeanMs float64
	P95Ms  float64
	P99Ms  float64
	// QoSMs is the latency at the configured QoS quantile.
	QoSMs float64
	// MeetsQoS reports QoSMs <= QoSTargetMs.
	MeetsQoS bool
	// MaxQueue is the deepest queue observed: the most requests that had
	// arrived but not yet started service at any arrival instant.
	MaxQueue int
	// Requests is the number of completed requests measured.
	Requests int
}

// sortedRing keeps worker free times in ascending order in a flat slice:
// the minimum is element 0 and a replaceMin is one rightward scan plus one
// contiguous copy. Worker pools are small (≤ 16 threads for every modelled
// service), so the copy is a cache-line-friendly shuffle that beats a
// binary heap's branchy sift — and min-selection over a totally ordered
// multiset is the same value whatever structure maintains it, so results
// stay bit-identical to the heap this replaces.
type sortedRing []float64

// replaceMin removes the minimum (element 0) and inserts v in order,
// returning the removed minimum.
func (s sortedRing) replaceMin(v float64) float64 {
	top := s[0]
	j := len(s)
	for j > 1 && s[j-1] > v {
		j--
	}
	copy(s[0:], s[1:j])
	s[j-1] = v
	return top
}

// Simulator runs request-level simulations with reusable state: the worker
// and waiting heaps and the latency sample buffer persist across runs, so a
// caller stepping many monitoring windows (the fleet engine's hot loop)
// pays no per-window heap allocations. The zero value is ready after Reset.
// A Simulator is not safe for concurrent use; share one per goroutine.
type Simulator struct {
	cfg Config
	// validated marks cfg as having passed Validate, letting Reset skip
	// revalidating an unchanged config on the fleet's per-window hot loop.
	// A bare equality check would not do: the zero Simulator's zero cfg
	// must still be rejected until a Validate has actually run.
	validated bool
	workers   sortedRing
	// waiting holds start times of queued requests, drained from waitHead
	// and appended at the back. FCFS start times are nondecreasing (both
	// arguments of the max() that assigns them are), so a FIFO ring visits
	// them in exactly the min-first order the former heap did.
	waiting  []float64
	waitHead int
	lat      *stats.Sample
	hist     *stats.Histogram
	// arrGaps/arrHeads buffer batched (inter-arrival gap, burst head) draw
	// pairs from the arrival stream, refilled in blocks so the hot loop
	// amortises the per-draw call overhead. Consumption order is identical
	// to the historical per-arrival draws (rng.Stream.FillArrivals).
	arrGaps  []float64
	arrHeads []bool
}

// arrivalBatch is the block size of buffered arrival draws. Over-drawing
// past the last arrival is harmless: the arrival stream is derived fresh
// per Simulate call and discarded with it.
const arrivalBatch = 256

// NewSimulator builds a Simulator for cfg.
func NewSimulator(cfg Config) (*Simulator, error) {
	s := &Simulator{}
	if err := s.Reset(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset swaps in a service configuration, keeping the allocated heaps and
// sample buffer for reuse by the next Simulate call. Resetting to the
// configuration already in place (the common case on the fleet's
// per-window loop, where a core keeps its client across windows) skips
// the revalidation: Config is a comparable value type, so equality means
// the earlier Validate verdict still holds.
func (s *Simulator) Reset(cfg Config) error {
	if s.validated && cfg == s.cfg {
		return nil
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.cfg = cfg
	s.validated = true
	return nil
}

// Simulate runs nRequests through the configured service at the given
// arrival rate (requests per second) with the core at perfFactor of full
// single-thread performance. The first 10% of requests are warm-up and
// excluded. Results are bit-identical to the package-level Simulate for
// the same (config, arguments, seed), regardless of what the Simulator ran
// before.
func (s *Simulator) Simulate(ratePerSec float64, nRequests int, perfFactor float64, seed uint64) (Result, error) {
	cfg := s.cfg
	if cfg.Workers <= 0 {
		return Result{}, fmt.Errorf("queueing: Simulator not configured (call Reset first)")
	}
	if ratePerSec <= 0 || nRequests <= 0 {
		return Result{}, fmt.Errorf("queueing: non-positive rate or request count")
	}
	if perfFactor <= 0 || perfFactor > MaxPerfFactor || math.IsNaN(perfFactor) {
		return Result{}, fmt.Errorf("queueing: perf factor %v out of (0,%v]", perfFactor, float64(MaxPerfFactor))
	}

	arr := rng.New(seed).Derive(1)
	svc := rng.New(seed).Derive(2)

	// FCFS k-server queue processed in arrival order: with identical
	// workers, assigning each request to the earliest-free worker in
	// arrival order is exactly FCFS.
	if cap(s.workers) < cfg.Workers {
		s.workers = make(sortedRing, cfg.Workers)
	} else {
		s.workers = s.workers[:cfg.Workers]
		for i := range s.workers {
			s.workers[i] = 0
		}
	}
	workers := s.workers

	// Service-draw constants hoisted out of the per-request LogNormal:
	// sigma², mu and sqrt(sigma²) depend only on (MeanServiceMs, ServiceCV),
	// so folding them keeps every draw bit-identical — same expression,
	// same evaluation order — while shedding two Logs and a Sqrt per
	// request from the hot loop.
	svcSigma2 := math.Log(1 + cfg.ServiceCV*cfg.ServiceCV)
	svcMu := math.Log(cfg.MeanServiceMs) - svcSigma2/2
	svcSig := math.Sqrt(svcSigma2)

	meanGapMs := 1000 / ratePerSec
	now := 0.0 // arrival clock, ms
	warm := nRequests / 10
	// The measured-latency store: an exact sorted sample, or the mergeable
	// log-bucketed histogram (O(1) add, O(buckets) quantile — no per-window
	// sort on the fleet hot path). Either is reused across Simulate calls.
	var lat *stats.Sample
	var hist *stats.Histogram
	if s.cfg.Estimator == stats.EstimatorHistogram {
		if s.hist == nil {
			s.hist = stats.NewTailHistogram()
		} else {
			s.hist.Reset()
		}
		hist = s.hist
	} else {
		if s.lat == nil {
			s.lat = stats.NewSample(nRequests - warm)
		} else {
			s.lat.Reset()
		}
		lat = s.lat
	}
	var mean stats.Running
	maxQ := 0
	pending := 0 // requests in this burst still to arrive at `now`

	// Arrival draws are consumed from a block-refilled buffer: one
	// (gap, head) pair per burst head, in exactly the order the unbatched
	// loop drew them, so results stay bit-identical while the hot loop
	// sheds most of the per-draw call overhead. Each refill is sized to
	// the requests still outstanding — an upper bound on the arrival draws
	// they can consume — so a short simulation (the fleet's per-window
	// budget) never pays for draws past its last arrival.
	if s.arrGaps == nil {
		s.arrGaps = make([]float64, arrivalBatch)
		s.arrHeads = make([]bool, arrivalBatch)
	}
	arrPos, arrLen := 0, 0 // empty: first use triggers a refill

	s.waiting = s.waiting[:0]
	s.waitHead = 0

	for i := 0; i < nRequests; i++ {
		if pending > 0 {
			pending--
		} else {
			if arrPos == arrLen {
				arrLen = nRequests - i
				if arrLen > arrivalBatch {
					arrLen = arrivalBatch
				}
				arr.FillArrivals(s.arrGaps[:arrLen], s.arrHeads[:arrLen], meanGapMs, cfg.BurstProb)
				arrPos = 0
			}
			now += s.arrGaps[arrPos]
			if s.arrHeads[arrPos] {
				pending = int(cfg.BurstLen) - 1
				if pending < 0 {
					pending = 0
				}
			}
			arrPos++
		}
		start := workers[0]
		if now > start {
			start = now
		}
		svcMs := math.Exp(svcMu+svcSig*svc.Normal()) / perfFactor
		finish := start + svcMs
		workers.replaceMin(finish)

		// Queue depth: drop requests that started by `now`, then count
		// this one if it has to wait.
		for s.waitHead < len(s.waiting) && s.waiting[s.waitHead] <= now {
			s.waitHead++
		}
		if start > now {
			s.waiting = append(s.waiting, start)
			if q := len(s.waiting) - s.waitHead; q > maxQ {
				maxQ = q
			}
		}
		if i >= warm {
			l := finish - now
			if hist != nil {
				hist.Add(l)
			} else {
				lat.Add(l)
			}
			mean.Add(l)
		}
	}

	r := Result{MeanMs: mean.Mean(), MaxQueue: maxQ}
	if hist != nil {
		r.P95Ms = hist.Quantile(0.95)
		r.P99Ms = hist.Quantile(0.99)
		r.QoSMs = hist.Quantile(cfg.QoSQuantile)
		r.Requests = hist.N()
	} else {
		r.P95Ms = lat.Quantile(0.95)
		r.P99Ms = lat.Quantile(0.99)
		r.QoSMs = lat.Quantile(cfg.QoSQuantile)
		r.Requests = lat.N()
	}
	r.MeetsQoS = r.QoSMs <= cfg.QoSTargetMs
	return r, nil
}

// Simulate runs nRequests through the service at the given arrival rate
// (requests per second) with the core at perfFactor of full single-thread
// performance. The first 10% of requests are warm-up and excluded. It is
// the one-shot form of Simulator.Simulate; callers stepping many windows
// should hold a Simulator to amortise the allocations.
func Simulate(cfg Config, ratePerSec float64, nRequests int, perfFactor float64, seed uint64) (Result, error) {
	var s Simulator
	if err := s.Reset(cfg); err != nil {
		return Result{}, err
	}
	return s.Simulate(ratePerSec, nRequests, perfFactor, seed)
}

// PeakLoad finds the highest arrival rate (req/s) that still meets the QoS
// target at full performance — the paper's "peak sustainable load" that
// anchors the X axes of Figs. 1 and 2.
func PeakLoad(cfg Config, nRequests int, seed uint64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	// The saturation rate of the worker pool bounds the search.
	satRate := float64(cfg.Workers) * 1000 / cfg.MeanServiceMs
	lo, hi := satRate*0.05, satRate*1.2
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		res, err := Simulate(cfg, mid, nRequests, 1.0, seed)
		if err != nil {
			return 0, err
		}
		if res.MeetsQoS {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// LoadCurve returns mean/p95/p99 latency at the given fractions of peak
// load (Fig. 1).
func LoadCurve(cfg Config, peak float64, fractions []float64, nRequests int, seed uint64) ([]Result, error) {
	out := make([]Result, 0, len(fractions))
	for _, f := range fractions {
		if f <= 0 {
			return nil, fmt.Errorf("queueing: non-positive load fraction %v", f)
		}
		r, err := Simulate(cfg, peak*f, nRequests, 1.0, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
