package queueing

import (
	"math"
	"testing"
)

// FuzzAnalyticVsDiscrete checks the closed-form solver's contract across
// arbitrary validator-accepted configurations: wherever Analytic accepts
// a load (refusing is always allowed — that is the discrete fallback),
// its latencies must be finite, ordered and positive, its utilization
// accounting must be linear in rate and perf, and its mean must agree
// with the discrete event simulator within a loose structural tolerance.
// The curated accuracy grid in analytic_test.go holds the tight bounds;
// this fuzz target guards against NaN/Inf escapes and gross divergence on
// shapes the grid does not cover.
func FuzzAnalyticVsDiscrete(f *testing.F) {
	f.Add(8, 5.0, 1.0, 0.1, 3.0, 0.99, 100.0, 0.5, uint64(1))
	f.Add(64, 3.2, 1.4, 0.03, 10.0, 0.99, 20.0, 0.85, uint64(2))
	f.Add(1, 170.0, 0.9, 0.0, 0.0, 0.95, 1000.0, 0.2, uint64(3))
	f.Add(16, 0.5, 2.0, 0.4, 15.0, 0.999, 5.0, 0.7, uint64(4))
	f.Add(2, 40.0, 0.1, 1.0, 2.0, 0.9, 300.0, 0.05, uint64(5))
	f.Fuzz(func(t *testing.T, workers int, mean, cv, bp, bl, q, target, rho float64, seed uint64) {
		workers %= 96
		cfg := Config{
			Workers:       workers,
			MeanServiceMs: math.Mod(mean, 200),
			ServiceCV:     math.Mod(cv, 2.5),
			BurstProb:     bp,
			BurstLen:      math.Mod(bl, 32),
			QoSQuantile:   q,
			QoSTargetMs:   math.Mod(target, 1e5),
		}
		if cfg.Validate() != nil {
			return
		}
		rho = math.Mod(math.Abs(rho), 0.88)
		if rho < 0.05 || math.IsNaN(rho) {
			return
		}
		perRPS := Utilization(cfg, 1, 1)
		if !(perRPS > 0) || math.IsInf(perRPS, 0) {
			t.Fatalf("Utilization(1 rps) = %v for validated config %+v", perRPS, cfg)
		}
		rate := rho / perRPS

		// Utilization must be linear in rate and inverse in perf.
		if got := Utilization(cfg, rate, 1); math.Abs(got-rho) > 1e-9*rho {
			t.Fatalf("Utilization(%v rps) = %v, want %v", rate, got, rho)
		}
		if got := Utilization(cfg, rate, 2); math.Abs(got-rho/2) > 1e-9*rho {
			t.Fatalf("Utilization at perf 2 = %v, want %v", got, rho/2)
		}

		ar, err := Analytic(cfg, rate, 1)
		if err != nil {
			return // out of the soundness envelope: the caller falls back to discrete
		}
		// Histogram-derived quantiles can sit at 0 when they fall below the
		// 1µs bucket floor (possible for µs-scale services at tiny QoS
		// quantiles); the analytic mean itself is always positive.
		for _, v := range []float64{ar.P95Ms, ar.P99Ms, ar.QoSMs} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("non-finite or negative analytic latency in %+v (cfg=%+v rho=%v)", ar, cfg, rho)
			}
		}
		if math.IsNaN(ar.MeanMs) || math.IsInf(ar.MeanMs, 0) || ar.MeanMs <= 0 {
			t.Fatalf("non-finite or non-positive analytic mean in %+v (cfg=%+v rho=%v)", ar, cfg, rho)
		}
		if ar.P99Ms < ar.P95Ms {
			t.Fatalf("analytic quantiles unordered: p95=%v p99=%v", ar.P95Ms, ar.P99Ms)
		}
		if ar.MeanMs < cfg.MeanServiceMs*0.5 {
			t.Fatalf("analytic mean %v below half the service time %v", ar.MeanMs, cfg.MeanServiceMs)
		}

		// Gross-divergence guard against a 3-seed discrete reference. The
		// tolerance widens with the regime's difficulty: the two-moment
		// approximation genuinely degrades toward the utilization ceiling
		// and with batch dispersion (the curated grid in analytic_test.go
		// holds the tight bounds on the shapes the fleet runs).
		var dm float64
		for s := uint64(0); s < 3; s++ {
			dr, err := Simulate(cfg, rate, 3000, 1, seed+s*7919+1)
			if err != nil {
				t.Fatalf("discrete reference failed on accepted load: %v", err)
			}
			dm += dr.MeanMs
		}
		dm /= 3
		b := int(cfg.BurstLen)
		if b < 1 {
			b = 1
		}
		p := cfg.BurstProb
		if b == 1 {
			p = 0
		}
		eg := 1 + p*float64(b-1)
		ca2 := ((1 - p) + p*float64(b)*float64(b)) / eg
		// The 1/k term covers tiny pools, where the batch waiting-time
		// model is roughest and the 3000-request discrete reference is
		// itself truncation-biased below its steady state near the ceiling
		// (observed ±25% across seed triplets at k=1, ρ=0.87).
		tol := 0.25 + 0.25*rho + 0.06*(ca2-1) + 0.30/float64(cfg.Workers)
		if diff := math.Abs(ar.MeanMs - dm); diff > tol*dm+0.05*cfg.MeanServiceMs {
			t.Fatalf("analytic mean %v vs discrete %v diverges beyond %.0f%% (cfg=%+v rho=%v)",
				ar.MeanMs, dm, 100*tol, cfg, rho)
		}
	})
}
