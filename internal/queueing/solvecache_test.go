package queueing

import (
	"math"
	"sync"
	"testing"
)

func TestTailCacheRoundTrip(t *testing.T) {
	c := NewTailCache(1024)
	k := TailKey{Service: 3, Rate: math.Float64bits(120.5), Perf: math.Float64bits(0.93)}
	if _, ok := c.Lookup(k); ok {
		t.Fatal("lookup hit on empty cache")
	}
	if !c.Insert(k, 7.25) {
		t.Fatal("first insert not reported as new")
	}
	if c.Insert(k, 7.25) {
		t.Fatal("second insert of same key reported as new")
	}
	v, ok := c.Lookup(k)
	if !ok || v != 7.25 {
		t.Fatalf("lookup = (%v, %v), want (7.25, true)", v, ok)
	}
}

func TestTailCacheStoresNaNRefusals(t *testing.T) {
	c := NewTailCache(64)
	k := TailKey{Service: 1, Rate: 42, Perf: 42}
	c.Insert(k, math.NaN())
	v, ok := c.Lookup(k)
	if !ok || !math.IsNaN(v) {
		t.Fatalf("cached refusal lookup = (%v, %v), want (NaN, true)", v, ok)
	}
}

// TestTailCacheHotKeySurvivesEvictionStorm is the regression test for the
// old wholesale-clear eviction: a key that keeps being looked up must stay
// resident while a storm of cold keys (far exceeding total capacity)
// churns through the cache. The generational scheme guarantees this as
// long as the hot key is touched at least once per stripe rotation; the
// storm below re-touches it every few inserts, well inside that bound.
func TestTailCacheHotKeySurvivesEvictionStorm(t *testing.T) {
	const capacity = 1024
	c := NewTailCache(capacity)
	hot := TailKey{Service: 0, Rate: math.Float64bits(500.0), Perf: math.Float64bits(1.0)}
	c.Insert(hot, 3.5)
	for i := 0; i < 50*capacity; i++ {
		c.Insert(TailKey{Service: 9, Rate: uint64(i), Perf: uint64(i * 3)}, float64(i))
		if i%4 == 0 {
			if _, ok := c.Lookup(hot); !ok {
				t.Fatalf("hot key evicted after %d cold inserts", i+1)
			}
		}
	}
	if v, ok := c.Lookup(hot); !ok || v != 3.5 {
		t.Fatalf("after storm: lookup = (%v, %v), want (3.5, true)", v, ok)
	}
}

// A cold key, inserted once and never touched again, must eventually age
// out — the cache is bounded, not append-only.
func TestTailCacheColdKeyAgesOut(t *testing.T) {
	const capacity = 256
	c := NewTailCache(capacity)
	cold := TailKey{Service: 2, Rate: 11, Perf: 13}
	c.Insert(cold, 1.0)
	for i := 0; i < 50*capacity; i++ {
		c.Insert(TailKey{Service: 9, Rate: uint64(i), Perf: uint64(i * 7)}, float64(i))
	}
	if _, ok := c.Lookup(cold); ok {
		t.Fatal("cold key still resident after 50x-capacity churn")
	}
}

// First-insert accounting must stay exact under concurrency: N goroutines
// racing to insert the same keys report exactly one "new" per key between
// them. The fleet's AnalyticSolves counter depends on this.
func TestTailCacheConcurrentFirstInsert(t *testing.T) {
	const keys = 512
	c := NewTailCache(8 * keys)
	var wg sync.WaitGroup
	counts := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := TailKey{Service: 5, Rate: uint64(i), Perf: uint64(i)}
				if _, ok := c.Lookup(k); !ok {
					if c.Insert(k, float64(i)) {
						counts[g]++
					}
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != keys {
		t.Fatalf("first-insert count = %d, want %d", total, keys)
	}
}
