package calib

import (
	_ "embed"
	"fmt"
	"sync"
)

// defaultTableJSON is the committed default calibration table: the full
// service × batch catalogue at the headline skews (DefaultInputs), built
// once by `go test ./internal/calib -run TestDefaultTable -regen-default`
// and regenerated only when the fingerprint of the inputs changes. Tests,
// CI and the stretchsim `-calib default` path consume calibrated numbers
// from it without ever paying cycle-level cost.
//
//go:embed testdata/default_table.json
var defaultTableJSON []byte

var defaultTable = sync.OnceValues(func() (*Table, error) {
	t, err := parse(defaultTableJSON, "embedded default table")
	if err != nil {
		return nil, err
	}
	want, ferr := DefaultInputs().Fingerprint()
	if ferr != nil {
		return nil, ferr
	}
	if t.Hash != want {
		return nil, fmt.Errorf("calib: embedded default table is stale (hash %.12s…, inputs now %.12s…); regenerate with `go test ./internal/calib -run TestDefaultTable -regen-default`", t.Hash, want)
	}
	return t, nil
})

// Default returns the committed default calibration table, parsed and
// verified once per process. It errors only if the committed table has
// drifted from DefaultInputs — a state the TestDefaultTable gate keeps out
// of the tree.
func Default() (*Table, error) { return defaultTable() }
