package calib

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"stretch/internal/core"
	"stretch/internal/sampling"
	"stretch/internal/workload"
)

var regenDefault = flag.Bool("regen-default", false, "rebuild testdata/default_table.json from DefaultInputs (runs the full cycle-level grid; minutes)")

// quickInputs is a tiny grid cheap enough to Build repeatedly in tests.
func quickInputs() Inputs {
	return Inputs{
		Services: []string{workload.WebSearch},
		Batches:  []string{workload.Zeusmp, "povray"},
		BSkew:    DefaultBSkew,
		QSkew:    DefaultQSkew,
		Spec:     sampling.Quick(),
	}
}

// TestDefaultTable is the freshness gate for the committed default table:
// its stored hash must match the current fingerprint of DefaultInputs, so
// any change to a workload profile, a core parameter or the sampling spec
// forces a regeneration instead of silently serving stale calibration.
// Run with -regen-default to rebuild after an intentional change.
func TestDefaultTable(t *testing.T) {
	if *regenDefault {
		tbl, err := Build(DefaultInputs())
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Save(filepath.Join("testdata", "default_table.json")); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated default table, hash %s", tbl.Hash)
		return
	}
	tbl, err := Default()
	if err != nil {
		t.Fatalf("%v", err)
	}
	// Full catalogue coverage, usable cells everywhere.
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(tbl.Inputs.Services), len(workload.ServiceNames()); got != want {
		t.Fatalf("default table covers %d services, want %d", got, want)
	}
	if got, want := len(tbl.Inputs.Batches), len(workload.BatchNames()); got != want {
		t.Fatalf("default table covers %d batches, want %d", got, want)
	}
	// The paper's headline directionality must hold for the exemplar pair:
	// B-mode trades LS performance for batch throughput, Q-mode reverses.
	p, ok := tbl.Pair(workload.WebSearch, workload.Zeusmp)
	if !ok {
		t.Fatal("default table missing web-search × zeusmp")
	}
	if p.B.BatchSpeedup <= 0 || p.B.LSSlowdown <= 0 {
		t.Errorf("B-mode cell %+v should gain batch and cost LS", p.B)
	}
	if p.Q.BatchSpeedup >= 0 || p.Q.LSSlowdown >= 0 {
		t.Errorf("Q-mode cell %+v should cost batch and gain LS", p.Q)
	}
}

// TestFingerprintSensitivity: the fingerprint must move with any input and
// be stable across calls.
func TestFingerprintSensitivity(t *testing.T) {
	base := quickInputs()
	h1, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("fingerprint not stable across calls")
	}
	// Service/batch order must not matter (sets, not sequences).
	reordered := base
	reordered.Batches = []string{"povray", workload.Zeusmp}
	if hr, _ := reordered.Fingerprint(); hr != h1 {
		t.Error("fingerprint depends on batch order")
	}
	mutations := []func(*Inputs){
		func(in *Inputs) { in.Batches = []string{workload.Zeusmp} },
		func(in *Inputs) { in.BSkew = 64 },
		func(in *Inputs) { in.QSkew = 128 },
		func(in *Inputs) { in.Spec.Samples++ },
		func(in *Inputs) { in.Spec.Seed++ },
		func(in *Inputs) { in.Spec.Measure += 1000 },
	}
	for i, mutate := range mutations {
		in := base
		mutate(&in)
		h, err := in.Fingerprint()
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if h == h1 {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
}

func TestInputsValidate(t *testing.T) {
	bad := []func(*Inputs){
		func(in *Inputs) { in.Services = nil },
		func(in *Inputs) { in.Services = []string{"nope"} },
		func(in *Inputs) { in.Batches = []string{"nope"} },
		func(in *Inputs) { in.Batches = []string{workload.WebSearch} }, // a service is not a batch
		func(in *Inputs) { in.BSkew = 0 },
		func(in *Inputs) { in.QSkew = 192 },
		func(in *Inputs) { in.Spec.Samples = 0 },
	}
	for i, mutate := range bad {
		in := quickInputs()
		mutate(&in)
		if err := in.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := in.Fingerprint(); err == nil {
			t.Errorf("mutation %d fingerprinted", i)
		}
	}
}

// TestBuildDeterminism: the same inputs must build the identical table —
// same hash, same floats bit-for-bit — across runs and across GOMAXPROCS,
// because every cell derives its seeds from the spec alone and the
// parallel grid only changes execution order, never numbers.
func TestBuildDeterminism(t *testing.T) {
	in := quickInputs()
	t1, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(1)
	t2, err := Build(in)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("tables differ across GOMAXPROCS:\n%+v\nvs\n%+v", t1.Pairs, t2.Pairs)
	}
}

// TestCacheRoundTrip: Save→Load reproduces the table exactly; Cached pays
// cycle-level cost on a miss, then serves the identical table from disk;
// and a cache whose inputs drifted is rebuilt, not served stale.
func TestCacheRoundTrip(t *testing.T) {
	in := quickInputs()
	path := filepath.Join(t.TempDir(), "table.json")

	// Miss: builds and writes.
	t1, err := Cached(path, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}
	// Hit: loads the same table.
	t2, err := Cached(path, in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("cache hit returned a different table")
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, loaded) {
		t.Fatal("Load returned a different table")
	}

	// Different inputs at the same path: must rebuild, not serve stale.
	in2 := in
	in2.Spec.Seed++
	t3, err := Cached(path, in2)
	if err != nil {
		t.Fatal(err)
	}
	if t3.Hash == t1.Hash {
		t.Fatal("changed inputs produced the same hash")
	}
	if reload, err := Load(path); err != nil || reload.Hash != t3.Hash {
		t.Fatalf("cache not refreshed: %v", err)
	}
}

// TestLoadRejectsTampering: a hand-edited cache whose stored hash no
// longer matches its stored inputs must be rejected.
func TestLoadRejectsTampering(t *testing.T) {
	in := quickInputs()
	path := filepath.Join(t.TempDir(), "table.json")
	tbl, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Hash = "0000000000000000"
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("tampered table accepted")
	}
}

func TestLookup(t *testing.T) {
	in := quickInputs()
	tbl, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(workload.WebSearch, workload.Zeusmp, core.ModeB); !ok {
		t.Fatal("calibrated pair not found")
	}
	if c, ok := tbl.Lookup(workload.WebSearch, workload.Zeusmp, core.ModeBaseline); !ok || c != (Cell{}) {
		t.Fatalf("equal-partitioning cell %+v, want zero", c)
	}
	if _, ok := tbl.Lookup(workload.WebSearch, "mcf", core.ModeB); ok {
		t.Fatal("uncalibrated batch found")
	}
	if _, ok := tbl.Lookup(workload.DataServing, workload.Zeusmp, core.ModeB); ok {
		t.Fatal("uncalibrated service found")
	}
	// The B and Q cells of a pair must differ (the skews are different
	// hardware configurations).
	b, _ := tbl.Lookup(workload.WebSearch, workload.Zeusmp, core.ModeB)
	q, _ := tbl.Lookup(workload.WebSearch, workload.Zeusmp, core.ModeQ)
	if b == q {
		t.Fatalf("B and Q cells identical: %+v", b)
	}
}
