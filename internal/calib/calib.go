// Package calib derives the fleet layer's per-colocation performance
// tables from the cycle-level core model, closing the gap between the two
// layers of the reproduction: §V shows that Stretch's B-mode batch speedup
// and LS slowdown are pair-specific — they vary widely across
// (service, batch) colocations — so a fleet that credits batch throughput
// with one flat scalar per mode is faking exactly the numbers the
// cycle-level layer computes.
//
// A calibration run executes the colocation grid once per core
// configuration (equal partitioning, the B-mode skew, the Q-mode skew)
// under a sampling.Spec, and distils each (service, batch, mode) cell into
// the two numbers the fleet engine consumes: the LS thread's slowdown and
// the batch thread's speedup, both relative to the same pair under equal
// partitioning. Equal-partition cells are identically zero by
// construction; solo full-core IPCs ride along for solo-normalised
// reporting.
//
// Tables are content-addressed: Inputs.Fingerprint hashes everything a
// table is a function of — the workload profiles, the three core
// configurations, the service queueing parameters and the sampling spec —
// so an on-disk JSON cache (Cached) can tell a stale table from a current
// one without re-running the cycle-level model, and the committed default
// table (Default) lets tests and CI consume calibrated numbers without
// ever paying cycle-level cost.
//
// Invariant: Build is a pure function of its Inputs. The grid runs in
// parallel, but every cell derives its trace seeds from the spec alone, so
// the same Inputs produce the same Table bit-for-bit at any GOMAXPROCS.
package calib

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"stretch/internal/colocate"
	"stretch/internal/core"
	"stretch/internal/sampling"
	"stretch/internal/workload"
)

// Headline Stretch partition points calibrated by default: the LS thread's
// ROB entries out of 192 in B-mode (56-136) and Q-mode (136-56), matching
// the configurations evaluated throughout §VI.
const (
	DefaultBSkew = 56
	DefaultQSkew = 136
)

// fingerprintVersion is baked into every fingerprint; bump it when the
// meaning of a table changes (new fields, different normalisation) so
// stale caches can never be mistaken for current ones.
const fingerprintVersion = 1

// Cell is the calibrated performance delta of one (service, batch, mode)
// colocation, relative to the same pair under equal partitioning.
type Cell struct {
	// LSSlowdown is the LS thread's performance loss: 1 − IPC/IPC_equal.
	// Positive means the mode costs the service performance (B-mode);
	// negative means it gains (Q-mode, which widens the LS window).
	LSSlowdown float64 `json:"ls_slowdown"`
	// BatchSpeedup is the batch thread's throughput delta:
	// IPC/IPC_equal − 1. Positive in B-mode, negative in Q-mode.
	BatchSpeedup float64 `json:"batch_speedup"`
}

// PairPerf holds one (service, batch) pair's calibrated cells for the two
// engaged modes; the equal-partitioning cell is identically zero by
// construction. The equal-partition IPCs the deltas are relative to ride
// along for reporting and sanity checks.
type PairPerf struct {
	B Cell `json:"b"`
	Q Cell `json:"q"`
	// EqualLSIPC and EqualBatchIPC are the equal-partitioning baseline
	// IPCs of the two hardware threads.
	EqualLSIPC    float64 `json:"equal_ls_ipc"`
	EqualBatchIPC float64 `json:"equal_batch_ipc"`
}

// Inputs pins everything a calibration table is a function of.
type Inputs struct {
	// Services and Batches name the LS × batch grid to calibrate.
	Services []string `json:"services"`
	Batches  []string `json:"batches"`
	// BSkew and QSkew are the LS thread's ROB entries in B- and Q-mode.
	BSkew int `json:"b_skew"`
	QSkew int `json:"q_skew"`
	// Spec is the sampled-measurement budget per cell.
	Spec sampling.Spec `json:"spec"`
}

// DefaultInputs is the committed default table's coverage: the full
// catalogue — every latency-sensitive service against every batch
// benchmark — at the headline skews under the standard sampling spec.
func DefaultInputs() Inputs {
	return Inputs{
		Services: workload.ServiceNames(),
		Batches:  workload.BatchNames(),
		BSkew:    DefaultBSkew,
		QSkew:    DefaultQSkew,
		Spec:     sampling.Standard(),
	}
}

// Validate rejects inputs the cycle-level model could not run.
func (in Inputs) Validate() error {
	if len(in.Services) == 0 || len(in.Batches) == 0 {
		return fmt.Errorf("calib: empty service or batch list")
	}
	svcs := workload.Services()
	for _, s := range in.Services {
		if _, ok := svcs[s]; !ok {
			return fmt.Errorf("calib: unknown service %q", s)
		}
	}
	batches := workload.BatchProfiles()
	for _, b := range in.Batches {
		if _, ok := batches[b]; !ok {
			return fmt.Errorf("calib: unknown batch workload %q", b)
		}
	}
	cfg := core.Default()
	if err := cfg.SetSkew(in.BSkew); err != nil {
		return fmt.Errorf("calib: B skew: %w", err)
	}
	if err := cfg.SetSkew(in.QSkew); err != nil {
		return fmt.Errorf("calib: Q skew: %w", err)
	}
	if in.Spec.Samples <= 0 || in.Spec.Measure == 0 {
		return fmt.Errorf("calib: empty sampling spec")
	}
	return nil
}

// Fingerprint content-hashes the inputs and everything they resolve to:
// the named workloads' full profiles and service parameters, the three
// core configurations the skews expand to, and the sampling spec. Two
// Inputs with the same fingerprint build bit-identical tables; any change
// to a profile, a core parameter or the spec changes the fingerprint.
func (in Inputs) Fingerprint() (string, error) {
	if err := in.Validate(); err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "calib-v%d\n", fingerprintVersion)
	fmt.Fprintf(h, "spec %+v\n", in.Spec)
	for _, cfg := range []core.Config{
		colocate.BaselineConfig(), skewConfig(in.BSkew), skewConfig(in.QSkew), core.Solo(),
	} {
		fmt.Fprintf(h, "config %+v\n", cfg)
	}
	svcs := workload.Services()
	services := append([]string(nil), in.Services...)
	sort.Strings(services)
	for _, s := range services {
		fmt.Fprintf(h, "service %s %+v\n", s, svcs[s])
	}
	batches := append([]string(nil), in.Batches...)
	sort.Strings(batches)
	all := workload.BatchProfiles()
	for _, b := range batches {
		fmt.Fprintf(h, "batch %s %+v\n", b, all[b])
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// skewConfig builds the partitioned configuration for an already-validated
// skew.
func skewConfig(rob0 int) core.Config {
	cfg := core.Default()
	if err := cfg.SetSkew(rob0); err != nil {
		panic(err) // validated by Inputs.Validate
	}
	return cfg
}

// Table maps every calibrated (service, batch) pair to its per-mode
// performance deltas. Tables are immutable once built; concurrent lookups
// are safe.
type Table struct {
	// Hash is the fingerprint of the inputs the table was built from.
	Hash string `json:"hash"`
	// Inputs echoes what was calibrated.
	Inputs Inputs `json:"inputs"`
	// Pairs indexes the calibrated cells as Pairs[service][batch].
	Pairs map[string]map[string]PairPerf `json:"pairs"`
	// SoloIPC is each workload's solo full-core IPC — the normalisation
	// baseline for solo-relative reporting (colocate.Slowdown).
	SoloIPC map[string]float64 `json:"solo_ipc"`
}

// Lookup returns the calibrated cell for a (service, batch, mode)
// colocation. The equal-partitioning mode returns a zero cell for any
// calibrated pair. The second result reports whether the pair is in the
// table.
func (t *Table) Lookup(service, batch string, mode core.Mode) (Cell, bool) {
	row, ok := t.Pairs[service]
	if !ok {
		return Cell{}, false
	}
	p, ok := row[batch]
	if !ok {
		return Cell{}, false
	}
	switch mode {
	case core.ModeB:
		return p.B, true
	case core.ModeQ:
		return p.Q, true
	default:
		return Cell{}, true
	}
}

// Pair returns the full calibrated record for a (service, batch) pair.
func (t *Table) Pair(service, batch string) (PairPerf, bool) {
	p, ok := t.Pairs[service][batch]
	return p, ok
}

// Validate checks the table covers its declared inputs and that every cell
// is usable by the fleet engine (a slowdown below 1, a speedup above −1 —
// otherwise a mode would imply non-positive throughput).
func (t *Table) Validate() error {
	if t == nil {
		return fmt.Errorf("calib: nil table")
	}
	if err := t.Inputs.Validate(); err != nil {
		return err
	}
	for _, s := range t.Inputs.Services {
		for _, b := range t.Inputs.Batches {
			p, ok := t.Pairs[s][b]
			if !ok {
				return fmt.Errorf("calib: table missing pair %s × %s", s, b)
			}
			for _, c := range []Cell{p.B, p.Q} {
				if !(c.LSSlowdown < 1) {
					return fmt.Errorf("calib: %s × %s: LS slowdown %v implies non-positive performance", s, b, c.LSSlowdown)
				}
				if !(c.BatchSpeedup > -1) {
					return fmt.Errorf("calib: %s × %s: batch speedup %v implies non-positive throughput", s, b, c.BatchSpeedup)
				}
			}
		}
	}
	return nil
}

// Build runs the cycle-level model over the inputs' grid — once per core
// configuration — and distils the per-pair per-mode deltas. This is the
// expensive path: the full default grid simulates hundreds of colocations.
// Deterministic: the same inputs build the same table at any GOMAXPROCS.
func Build(in Inputs) (*Table, error) {
	hash, err := in.Fingerprint()
	if err != nil {
		return nil, err
	}
	equal, err := colocate.Grid(in.Services, in.Batches, colocate.BaselineConfig(), in.Spec)
	if err != nil {
		return nil, err
	}
	bGrid, err := colocate.Grid(in.Services, in.Batches, skewConfig(in.BSkew), in.Spec)
	if err != nil {
		return nil, err
	}
	qGrid, err := colocate.Grid(in.Services, in.Batches, skewConfig(in.QSkew), in.Spec)
	if err != nil {
		return nil, err
	}
	names := append(append([]string(nil), in.Services...), in.Batches...)
	solo, err := colocate.SoloIPC(names, in.Spec)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Hash:    hash,
		Inputs:  in,
		Pairs:   make(map[string]map[string]PairPerf, len(in.Services)),
		SoloIPC: solo,
	}
	for _, s := range in.Services {
		t.Pairs[s] = make(map[string]PairPerf, len(in.Batches))
		for _, b := range in.Batches {
			eq, bm, qm := equal[s][b], bGrid[s][b], qGrid[s][b]
			t.Pairs[s][b] = PairPerf{
				B: Cell{
					LSSlowdown:   colocate.Slowdown(bm.LSAgg.IPC, eq.LSAgg.IPC),
					BatchSpeedup: colocate.Speedup(bm.BatchAgg.IPC, eq.BatchAgg.IPC),
				},
				Q: Cell{
					LSSlowdown:   colocate.Slowdown(qm.LSAgg.IPC, eq.LSAgg.IPC),
					BatchSpeedup: colocate.Speedup(qm.BatchAgg.IPC, eq.BatchAgg.IPC),
				},
				EqualLSIPC:    eq.LSAgg.IPC,
				EqualBatchIPC: eq.BatchAgg.IPC,
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("calib: built an unusable table: %w", err)
	}
	return t, nil
}

// Save writes the table as indented JSON (deterministic: JSON object keys
// marshal sorted).
func (t *Table) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a table from disk and verifies it: the stored hash must match
// the stored inputs' fingerprint (a hand-edited or version-skewed cache is
// rejected) and the pairs must cover the inputs.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parse(data, path)
}

func parse(data []byte, origin string) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("calib: %s: %w", origin, err)
	}
	hash, err := t.Inputs.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("calib: %s: %w", origin, err)
	}
	if hash != t.Hash {
		return nil, fmt.Errorf("calib: %s is stale: stored hash %.12s… does not match inputs (now %.12s…); rebuild with calib.Build or calib.Cached", origin, t.Hash, hash)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("calib: %s: %w", origin, err)
	}
	return &t, nil
}

// Cached returns the table for in, paying cycle-level cost at most once
// per content hash: if path holds a table whose hash matches the inputs'
// fingerprint it is loaded; otherwise the table is built and written to
// path. A missing file is a cache miss, not an error.
func Cached(path string, in Inputs) (*Table, error) {
	want, err := in.Fingerprint()
	if err != nil {
		return nil, err
	}
	if t, err := Load(path); err == nil && t.Hash == want {
		return t, nil
	}
	t, err := Build(in)
	if err != nil {
		return nil, err
	}
	if err := t.Save(path); err != nil {
		return nil, err
	}
	return t, nil
}
