// Package loadgen synthesises the open-loop traffic that drives the fleet
// simulator: per-window RPS timelines built from composable arrival shapes
// — constant rates, invitro-style RPS ramps (start/target/step), diurnal
// day profiles, and burst injection — optionally perturbed by Poisson
// sampling of each window's request population, plus multi-client traffic
// specs mixing services with per-client rate fractions and SLO classes.
//
// Every stochastic draw comes from an rng.Stream derived from a
// user-visible seed, so a traffic spec materialises to bit-identical
// timelines across runs and across worker counts.
package loadgen

import (
	"fmt"
	"math"

	"stretch/internal/rng"
)

// Shape produces the deterministic mean arrival rate of each window.
// Implementations must be pure: RPS(w, n) may be called in any order, any
// number of times.
type Shape interface {
	// RPS returns the mean arrival rate (requests/sec) for window w of n.
	RPS(w, n int) float64
}

// Constant is a flat arrival rate.
type Constant struct {
	// Rate is the arrival rate in requests/sec.
	Rate float64
}

// RPS implements Shape.
func (c Constant) RPS(w, n int) float64 { return c.Rate }

// Ramp is the invitro-style RPS sweep: start at StartRPS and move StepRPS
// closer to TargetRPS after every slot of WindowsPerStep windows, holding
// TargetRPS once reached. A zero StepRPS ramps linearly over the whole
// timeline instead.
type Ramp struct {
	StartRPS, TargetRPS float64
	// StepRPS is the per-slot increment (its sign is taken from the
	// start→target direction; only the magnitude matters).
	StepRPS float64
	// WindowsPerStep is how many windows each slot holds (default 1).
	WindowsPerStep int
}

// RPS implements Shape.
func (r Ramp) RPS(w, n int) float64 {
	if r.StepRPS == 0 {
		if n <= 1 {
			return r.TargetRPS
		}
		frac := float64(w) / float64(n-1)
		return r.StartRPS + (r.TargetRPS-r.StartRPS)*frac
	}
	per := r.WindowsPerStep
	if per < 1 {
		per = 1
	}
	step := r.StepRPS
	if step < 0 {
		step = -step
	}
	if r.TargetRPS < r.StartRPS {
		step = -step
	}
	v := r.StartRPS + float64(w/per)*step
	if (step > 0 && v > r.TargetRPS) || (step < 0 && v < r.TargetRPS) {
		return r.TargetRPS
	}
	return v
}

// Diurnal maps a 24-hour load profile (fractions of peak) onto the
// timeline, scaled to PeakRPS. It generalises the §VI-D cluster traces:
// with Smooth set, rates interpolate linearly between hour points instead
// of stepping at hour boundaries.
type Diurnal struct {
	// HourLoad[h] is the load during hour h as a fraction of peak.
	HourLoad [24]float64
	// PeakRPS is the arrival rate at load fraction 1.0.
	PeakRPS float64
	// Smooth interpolates between hour points.
	Smooth bool
	// WindowsPerDay sets the diurnal period in windows; horizons longer
	// than one day wrap around to repeat the cycle. Zero stretches a
	// single day across the whole horizon.
	WindowsPerDay int
}

// RPS implements Shape.
func (d Diurnal) RPS(w, n int) float64 {
	period := d.WindowsPerDay
	if period <= 0 {
		period = n
	}
	if period <= 0 {
		return 0
	}
	pos := 24 * float64(w%period) / float64(period)
	h := int(pos) % 24
	if !d.Smooth {
		return d.HourLoad[h] * d.PeakRPS
	}
	frac := pos - float64(int(pos))
	next := d.HourLoad[(h+1)%24]
	return (d.HourLoad[h]*(1-frac) + next*frac) * d.PeakRPS
}

// WebSearchDay is the §VI-D Web Search cluster query-rate pattern (after
// Meisner et al.): a daytime plateau near peak with a deep overnight
// trough; the service sits below 85% of max for roughly 11 hours a day.
func WebSearchDay() [24]float64 {
	return [24]float64{
		0.55, 0.48, 0.42, 0.38, 0.36, 0.40, // 00-05
		0.50, 0.65, 0.86, 0.92, 0.96, 1.00, // 06-11
		1.00, 0.98, 0.97, 0.95, 0.93, 0.90, // 12-17
		0.89, 0.87, 0.86, 0.80, 0.72, 0.62, // 18-23
	}
}

// VideoDay is the §VI-D YouTube-like edge-traffic pattern (after Gill et
// al.): requests concentrate between 10:00 and 19:00, peaking at 14:00;
// the other ~17 hours stay below 85% of peak.
func VideoDay() [24]float64 {
	return [24]float64{
		0.35, 0.30, 0.26, 0.24, 0.22, 0.24, // 00-05
		0.30, 0.40, 0.55, 0.70, 0.84, 0.95, // 06-11
		0.98, 0.99, 1.00, 0.97, 0.94, 0.90, // 12-17
		0.84, 0.80, 0.70, 0.60, 0.50, 0.42, // 18-23
	}
}

// Burst injects load spikes on top of a base shape: starting at window
// Start (and, with Every > 0, repeating every Every windows), the base rate
// is multiplied by Magnitude for Length consecutive windows.
type Burst struct {
	Base      Shape
	Start     int
	Length    int
	Every     int // 0 = single burst
	Magnitude float64
}

// RPS implements Shape.
func (b Burst) RPS(w, n int) float64 {
	base := b.Base.RPS(w, n)
	if w < b.Start || b.Length <= 0 {
		return base
	}
	off := w - b.Start
	if b.Every > 0 {
		off %= b.Every
	}
	if off < b.Length {
		return base * b.Magnitude
	}
	return base
}

// Replay plays back a recorded per-window rate timeline verbatim — the
// shape a trace file materialises to (internal/tracefile), which is what
// lets recorded and synthetic traffic flow through the same loadgen →
// fleet path. Rates must cover the whole horizon; Timeline rejects a
// length mismatch.
type Replay struct {
	// Rates[w] is the arrival rate (requests/sec) of window w.
	Rates []float64
}

// RPS implements Shape.
func (r Replay) RPS(w, n int) float64 {
	if w < 0 || w >= len(r.Rates) {
		return 0
	}
	return r.Rates[w]
}

// Scale multiplies a base shape's rate by a constant factor — how a cohort
// member carries its share of the cohort's aggregate shape.
type Scale struct {
	Base   Shape
	Factor float64
}

// RPS implements Shape.
func (s Scale) RPS(w, n int) float64 { return s.Base.RPS(w, n) * s.Factor }

// Shift delays a base shape by Offset windows, wrapping at the horizon —
// phase diversity across cohort members (one member's evening peak is
// another's afternoon).
type Shift struct {
	Base   Shape
	Offset int
}

// RPS implements Shape.
func (s Shift) RPS(w, n int) float64 {
	if n > 0 {
		w = ((w-s.Offset)%n + n) % n
	}
	return s.Base.RPS(w, n)
}

// ShapeUnsteady reports whether the shape is in a transient regime at
// window w of n: a Burst actively multiplying its base rate, through any
// Scale/Shift composition (Shift remaps the window exactly as its RPS
// does). The fleet's auto engine keeps unsteady windows on the discrete
// simulator — a burst window is precisely where the operator asked for
// turbulence, so it gets full event-level fidelity rather than a
// steady-state shortcut. Rate variation between windows (ramps, diurnal
// profiles, replayed traces) is not unsteadiness: every window carries one
// stationary rate, which is the same stationarity the discrete per-window
// simulation assumes.
func ShapeUnsteady(s Shape, w, n int) bool {
	switch v := s.(type) {
	case Burst:
		if w >= v.Start && v.Length > 0 {
			off := w - v.Start
			if v.Every > 0 {
				off %= v.Every
			}
			if off < v.Length {
				return true
			}
		}
		return ShapeUnsteady(v.Base, w, n)
	case Scale:
		return ShapeUnsteady(v.Base, w, n)
	case Shift:
		if n > 0 {
			w = ((w-v.Offset)%n + n) % n
		}
		return ShapeUnsteady(v.Base, w, n)
	default:
		return false
	}
}

// Spec couples a shape with the arrival-noise model.
type Spec struct {
	Shape Shape
	// Poisson draws each window's realised request population from a
	// Poisson distribution with the shape's mean (open-loop arrival
	// noise); otherwise windows carry the exact mean rate. Equivalent to
	// Process: ArrivalPoisson; kept for compatibility — the richer
	// processes are selected through Process.
	Poisson bool
	// Process selects the arrival noise explicitly (exact, Poisson, or
	// the overdispersed Gamma/Weibull mixtures). The zero value defers to
	// the legacy Poisson flag. Setting both Poisson and a non-Poisson
	// Process is a contradiction and rejected.
	Process Arrival
	// CV is the burstiness knob for ArrivalGamma and ArrivalWeibull: the
	// coefficient of variation of the per-window rate multiplier. It must
	// be positive for those processes and zero for the others.
	CV float64
}

// validateShape rejects degenerate shape compositions and parameters
// before they silently produce something other than what was asked for.
// windows is the horizon the shape will be materialised over (0 when
// unknown), which is what lets Replay reject a length mismatch. Only the
// built-in shapes are inspected; custom Shape implementations are trusted
// to return non-negative finite rates.
func validateShape(s Shape, windows int) error {
	nonneg := func(what string, vs ...float64) error {
		for _, v := range vs {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("loadgen: %s %v must be non-negative and finite", what, v)
			}
		}
		return nil
	}
	switch v := s.(type) {
	case Constant:
		return nonneg("constant rate", v.Rate)
	case Ramp:
		return nonneg("ramp rate", v.StartRPS, v.TargetRPS, v.StepRPS)
	case Diurnal:
		if err := nonneg("diurnal peak", v.PeakRPS); err != nil {
			return err
		}
		return nonneg("diurnal hour load", v.HourLoad[:]...)
	case Burst:
		if v.Base == nil {
			return fmt.Errorf("loadgen: burst without a base shape")
		}
		if v.Every > 0 && v.Length >= v.Every {
			return fmt.Errorf("loadgen: burst length %d >= period %d would be a permanent multiplier, not bursts", v.Length, v.Every)
		}
		if err := nonneg("burst magnitude", v.Magnitude); err != nil {
			return err
		}
		return validateShape(v.Base, windows)
	case Replay:
		if len(v.Rates) == 0 {
			return fmt.Errorf("loadgen: replay without rates")
		}
		if windows > 0 && len(v.Rates) != windows {
			return fmt.Errorf("loadgen: replay carries %d windows, horizon wants %d", len(v.Rates), windows)
		}
		return nonneg("replay rate", v.Rates...)
	case Scale:
		if v.Base == nil {
			return fmt.Errorf("loadgen: scale without a base shape")
		}
		if err := nonneg("scale factor", v.Factor); err != nil {
			return err
		}
		return validateShape(v.Base, windows)
	case Shift:
		if v.Base == nil {
			return fmt.Errorf("loadgen: shift without a base shape")
		}
		return validateShape(v.Base, windows)
	default:
		return nil
	}
}

// Timeline materialises the spec into per-window arrival rates
// (requests/sec) for the given horizon, drawing any noise from stream.
func (s Spec) Timeline(windows int, windowSec float64, stream *rng.Stream) ([]float64, error) {
	if s.Shape == nil {
		return nil, fmt.Errorf("loadgen: spec without a shape")
	}
	if err := validateShape(s.Shape, windows); err != nil {
		return nil, err
	}
	proc, err := s.resolveProcess()
	if err != nil {
		return nil, err
	}
	if windows <= 0 || windowSec <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive horizon (%d windows × %vs)", windows, windowSec)
	}
	// The Weibull CV knob inverts to the distribution's shape parameter
	// once per materialisation.
	wshape := 0.0
	if proc == ArrivalWeibull {
		wshape, err = weibullShapeFromCV(s.CV)
		if err != nil {
			return nil, err
		}
	}
	out := make([]float64, windows)
	for w := 0; w < windows; w++ {
		mean := s.Shape.RPS(w, windows)
		if mean < 0 {
			return nil, fmt.Errorf("loadgen: negative rate %v at window %d", mean, w)
		}
		switch proc {
		case ArrivalPoisson:
			out[w] = stream.Poisson(mean*windowSec) / windowSec
		case ArrivalGamma:
			// Gamma-mixed Poisson: the window's true rate is itself a
			// Gamma draw around the shape's mean, so counts are
			// overdispersed by the CV (negative-binomial-style bursts).
			m := stream.Gamma(1, s.CV)
			out[w] = stream.Poisson(mean*m*windowSec) / windowSec
		case ArrivalWeibull:
			// Weibull-modulated Poisson: same mixture with Weibull tail
			// behaviour — sub-exponential shapes (CV > 1) yield rare,
			// deep rate excursions.
			m := stream.Weibull(1, wshape)
			out[w] = stream.Poisson(mean*m*windowSec) / windowSec
		default:
			out[w] = mean
		}
	}
	return out, nil
}

// SLOClass scales a service's published QoS target for a traffic client:
// premium clients run against a tighter target, best-effort ones against a
// looser one.
type SLOClass int

// SLO classes.
const (
	// SLOStandard keeps the service's published target.
	SLOStandard SLOClass = iota
	// SLOStrict tightens the target to 80%.
	SLOStrict
	// SLORelaxed loosens the target to 150%.
	SLORelaxed
)

// Scale returns the multiplier applied to the service's QoS target.
func (c SLOClass) Scale() float64 {
	switch c {
	case SLOStrict:
		return 0.8
	case SLORelaxed:
		return 1.5
	default:
		return 1.0
	}
}

// String names the class.
func (c SLOClass) String() string {
	switch c {
	case SLOStrict:
		return "strict"
	case SLORelaxed:
		return "relaxed"
	default:
		return "standard"
	}
}

// Client is one traffic source in a multi-client spec.
type Client struct {
	// Name labels the client in results (unique within a Traffic).
	Name string
	// Service is the latency-sensitive workload serving this client.
	Service string
	// Batch names the batch workload colocated on this client's cores —
	// the other hardware thread of every SMT core the client holds. It
	// selects the calibration row a calibrated fleet applies to the
	// client's B-/Q-mode deltas; empty means the fleet's default pairing.
	// loadgen treats it as an opaque label (the fleet layer validates it
	// against the workload catalogue).
	Batch string
	// Fraction is this client's share of the fleet's cores.
	Fraction float64
	// SLO selects the QoS-target class.
	SLO SLOClass
	// Spec is the client's arrival process; its timeline is the
	// fleet-wide rate, split evenly across the client's cores.
	Spec Spec
}

// Traffic is a complete multi-client traffic specification.
type Traffic struct {
	Clients   []Client
	Windows   int
	WindowSec float64
}

// Validate rejects unusable specs.
func (t Traffic) Validate() error {
	if t.Windows <= 0 || t.WindowSec <= 0 {
		return fmt.Errorf("loadgen: non-positive horizon (%d windows × %vs)", t.Windows, t.WindowSec)
	}
	if len(t.Clients) == 0 {
		return fmt.Errorf("loadgen: traffic without clients")
	}
	seen := make(map[string]bool, len(t.Clients))
	sum := 0.0
	for i, c := range t.Clients {
		if c.Name == "" {
			return fmt.Errorf("loadgen: client %d unnamed", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("loadgen: duplicate client %q", c.Name)
		}
		seen[c.Name] = true
		if c.Service == "" {
			return fmt.Errorf("loadgen: client %q without a service", c.Name)
		}
		if !(c.Fraction > 0) || math.IsInf(c.Fraction, 0) {
			return fmt.Errorf("loadgen: client %q fraction %v must be positive and finite", c.Name, c.Fraction)
		}
		if c.Spec.Shape == nil {
			return fmt.Errorf("loadgen: client %q without an arrival shape", c.Name)
		}
		if err := validateShape(c.Spec.Shape, t.Windows); err != nil {
			return fmt.Errorf("loadgen: client %q: %w", c.Name, err)
		}
		if _, err := c.Spec.resolveProcess(); err != nil {
			return fmt.Errorf("loadgen: client %q: %w", c.Name, err)
		}
		sum += c.Fraction
	}
	if sum > 1+1e-9 {
		return fmt.Errorf("loadgen: client fractions sum to %v > 1", sum)
	}
	return nil
}

// Timelines materialises every client's timeline. Each client draws from
// its own stream derived from seed and the client's index, so adding a
// client never perturbs the others.
func (t Traffic) Timelines(seed uint64) (map[string][]float64, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(seed)
	out := make(map[string][]float64, len(t.Clients))
	for i, c := range t.Clients {
		tl, err := c.Spec.Timeline(t.Windows, t.WindowSec, root.Derive(uint64(i)+1))
		if err != nil {
			return nil, fmt.Errorf("loadgen: client %q: %w", c.Name, err)
		}
		out[c.Name] = tl
	}
	return out, nil
}

// Hours returns the horizon length in hours.
func (t Traffic) Hours() float64 { return float64(t.Windows) * t.WindowSec / 3600 }
