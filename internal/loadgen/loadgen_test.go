package loadgen

import (
	"testing"

	"stretch/internal/rng"
)

func TestConstantShape(t *testing.T) {
	c := Constant{Rate: 120}
	for _, w := range []int{0, 5, 99} {
		if got := c.RPS(w, 100); got != 120 {
			t.Fatalf("window %d: %v", w, got)
		}
	}
}

func TestRampSteps(t *testing.T) {
	r := Ramp{StartRPS: 10, TargetRPS: 20, StepRPS: 5, WindowsPerStep: 2}
	want := []float64{10, 10, 15, 15, 20, 20, 20, 20}
	for w, v := range want {
		if got := r.RPS(w, len(want)); got != v {
			t.Errorf("window %d: got %v want %v", w, got, v)
		}
	}
}

func TestRampDescendsAndClamps(t *testing.T) {
	r := Ramp{StartRPS: 50, TargetRPS: 20, StepRPS: 15, WindowsPerStep: 1}
	want := []float64{50, 35, 20, 20}
	for w, v := range want {
		if got := r.RPS(w, len(want)); got != v {
			t.Errorf("window %d: got %v want %v", w, got, v)
		}
	}
}

func TestRampLinearWhenStepless(t *testing.T) {
	r := Ramp{StartRPS: 0, TargetRPS: 100}
	if got := r.RPS(0, 11); got != 0 {
		t.Errorf("start: %v", got)
	}
	if got := r.RPS(10, 11); got != 100 {
		t.Errorf("end: %v", got)
	}
	if got := r.RPS(5, 11); got != 50 {
		t.Errorf("middle: %v", got)
	}
}

func TestDiurnalHourMapping(t *testing.T) {
	day := WebSearchDay()
	d := Diurnal{HourLoad: day, PeakRPS: 1000}
	// Hour-grain: n=24 windows map 1:1.
	for h := 0; h < 24; h++ {
		if got := d.RPS(h, 24); got != day[h]*1000 {
			t.Fatalf("hour %d: got %v want %v", h, got, day[h]*1000)
		}
	}
	// Finer windows step at hour boundaries without smoothing.
	if got := d.RPS(25, 48); got != day[12]*1000 {
		t.Errorf("half-hour window maps to wrong hour: %v", got)
	}
	// Smooth interpolates midway between hour points.
	ds := Diurnal{HourLoad: day, PeakRPS: 1000, Smooth: true}
	want := (day[12] + day[13]) / 2 * 1000
	if got := ds.RPS(25, 48); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("smooth midpoint: got %v want %v", got, want)
	}
}

func TestBurstWindows(t *testing.T) {
	b := Burst{Base: Constant{Rate: 100}, Start: 4, Length: 2, Magnitude: 3}
	for w := 0; w < 12; w++ {
		want := 100.0
		if w == 4 || w == 5 {
			want = 300
		}
		if got := b.RPS(w, 12); got != want {
			t.Errorf("single burst window %d: got %v want %v", w, got, want)
		}
	}
	rep := Burst{Base: Constant{Rate: 100}, Start: 2, Length: 1, Every: 4, Magnitude: 2}
	for w := 0; w < 12; w++ {
		want := 100.0
		if w >= 2 && (w-2)%4 == 0 {
			want = 200
		}
		if got := rep.RPS(w, 12); got != want {
			t.Errorf("repeating burst window %d: got %v want %v", w, got, want)
		}
	}
}

func TestTimelineValidation(t *testing.T) {
	if _, err := (Spec{}).Timeline(10, 1, rng.New(1)); err == nil {
		t.Error("nil shape accepted")
	}
	if _, err := (Spec{Shape: Constant{Rate: 1}}).Timeline(0, 1, rng.New(1)); err == nil {
		t.Error("zero windows accepted")
	}
	if _, err := (Spec{Shape: Constant{Rate: -1}}).Timeline(4, 1, rng.New(1)); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestPoissonTimelineMeanAndDeterminism(t *testing.T) {
	spec := Spec{Shape: Constant{Rate: 200}, Poisson: true}
	a, err := spec.Timeline(400, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Timeline(400, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	diverged := false
	for w := range a {
		if a[w] != b[w] {
			t.Fatalf("same seed diverged at window %d", w)
		}
		sum += a[w]
	}
	mean := sum / float64(len(a))
	if mean < 190 || mean > 210 {
		t.Errorf("Poisson timeline mean %v, want ≈200", mean)
	}
	c, err := spec.Timeline(400, 10, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for w := range a {
		if a[w] != c[w] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical noisy timelines")
	}
}

func TestExactTimelineCarriesShape(t *testing.T) {
	spec := Spec{Shape: Ramp{StartRPS: 0, TargetRPS: 90}}
	tl, err := spec.Timeline(10, 60, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if tl[0] != 0 || tl[9] != 90 {
		t.Fatalf("exact timeline %v does not follow the shape", tl)
	}
}

func TestSLOClasses(t *testing.T) {
	if SLOStandard.Scale() != 1 || SLOStrict.Scale() >= 1 || SLORelaxed.Scale() <= 1 {
		t.Fatal("SLO scales out of order")
	}
	for _, c := range []SLOClass{SLOStandard, SLOStrict, SLORelaxed} {
		if c.String() == "" {
			t.Fatal("unnamed SLO class")
		}
	}
}

func validTraffic() Traffic {
	return Traffic{
		Windows: 24, WindowSec: 3600,
		Clients: []Client{
			{Name: "a", Service: "web-search", Fraction: 0.6,
				Spec: Spec{Shape: Constant{Rate: 100}}},
			{Name: "b", Service: "data-serving", Fraction: 0.4, SLO: SLORelaxed,
				Spec: Spec{Shape: Constant{Rate: 50}, Poisson: true}},
		},
	}
}

func TestTrafficValidate(t *testing.T) {
	if err := validTraffic().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Traffic){
		func(tr *Traffic) { tr.Windows = 0 },
		func(tr *Traffic) { tr.WindowSec = 0 },
		func(tr *Traffic) { tr.Clients = nil },
		func(tr *Traffic) { tr.Clients[0].Name = "" },
		func(tr *Traffic) { tr.Clients[1].Name = "a" },
		func(tr *Traffic) { tr.Clients[0].Service = "" },
		func(tr *Traffic) { tr.Clients[0].Fraction = 0 },
		func(tr *Traffic) { tr.Clients[0].Fraction = 0.7 }, // sum > 1
		func(tr *Traffic) { tr.Clients[0].Spec.Shape = nil },
	}
	for i, mutate := range bad {
		tr := validTraffic()
		mutate(&tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTimelinesPerClientIndependence(t *testing.T) {
	tr := validTraffic()
	tls, err := tr.Timelines(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tls) != 2 || len(tls["a"]) != 24 || len(tls["b"]) != 24 {
		t.Fatalf("bad timelines shape: %v", tls)
	}
	// Adding a client must not perturb existing clients' draws.
	tr2 := validTraffic()
	tr2.Clients[0].Fraction = 0.3
	tr2.Clients[1].Fraction = 0.3
	tr2.Clients = append(tr2.Clients, Client{
		Name: "c", Service: "web-serving", Fraction: 0.4,
		Spec: Spec{Shape: Constant{Rate: 10}, Poisson: true},
	})
	tls2, err := tr2.Timelines(7)
	if err != nil {
		t.Fatal(err)
	}
	for w := range tls["b"] {
		if tls["b"][w] != tls2["b"][w] {
			t.Fatalf("client b's noise changed when client c was added (window %d)", w)
		}
	}
	if tr.Hours() != 24 {
		t.Fatalf("Hours() = %v", tr.Hours())
	}
}

func TestDiurnalWrapsMultiDayHorizons(t *testing.T) {
	day := WebSearchDay()
	d := Diurnal{HourLoad: day, PeakRPS: 1000, WindowsPerDay: 24}
	// A 48-window horizon at 24 windows/day repeats the cycle, not
	// stretches it.
	for w := 0; w < 48; w++ {
		if got := d.RPS(w, 48); got != day[w%24]*1000 {
			t.Fatalf("window %d: got %v want %v", w, got, day[w%24]*1000)
		}
	}
	// Smooth interpolation wraps across the day boundary too.
	ds := Diurnal{HourLoad: day, PeakRPS: 1000, WindowsPerDay: 48, Smooth: true}
	want := (day[23] + day[0]) / 2 * 1000
	if got := ds.RPS(47, 96); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("midnight wrap: got %v want %v", got, want)
	}
	if got := ds.RPS(95, 96); got != ds.RPS(47, 96) {
		t.Fatalf("second day diverges from first: %v vs %v", got, ds.RPS(47, 96))
	}
}

func TestDegenerateBurstRejected(t *testing.T) {
	cases := []Shape{
		Burst{Length: 2, Magnitude: 2},                                    // no base
		Burst{Base: Constant{Rate: 1}, Every: 4, Length: 8, Magnitude: 2}, // permanent multiplier
		Burst{Base: Constant{Rate: 1}, Length: 1, Magnitude: -2},          // negative magnitude
		Burst{Base: Burst{}, Length: 1, Every: 4, Magnitude: 2},           // nested degenerate base
	}
	for i, sh := range cases {
		if _, err := (Spec{Shape: sh}).Timeline(8, 1, rng.New(1)); err == nil {
			t.Errorf("degenerate burst %d accepted", i)
		}
	}
	ok := Spec{Shape: Burst{Base: Constant{Rate: 1}, Start: 2, Length: 1, Every: 4, Magnitude: 2}}
	if _, err := ok.Timeline(8, 1, rng.New(1)); err != nil {
		t.Errorf("valid burst rejected: %v", err)
	}
}

func TestShapeUnsteady(t *testing.T) {
	burst := Burst{Base: Constant{Rate: 100}, Start: 4, Length: 2, Every: 6, Magnitude: 2}
	// Active windows: 4,5 then every 6: 10,11, 16,17 ...
	for w := 0; w < 12; w++ {
		want := w == 4 || w == 5 || w == 10 || w == 11
		if got := ShapeUnsteady(burst, w, 12); got != want {
			t.Errorf("burst window %d: unsteady = %v, want %v", w, got, want)
		}
	}
	// Steady shapes are never unsteady, however much the rate varies.
	for w := 0; w < 12; w++ {
		if ShapeUnsteady(Diurnal{HourLoad: WebSearchDay(), PeakRPS: 1000}, w, 12) {
			t.Fatalf("diurnal window %d flagged unsteady", w)
		}
		if ShapeUnsteady(Ramp{StartRPS: 1, TargetRPS: 100}, w, 12) {
			t.Fatalf("ramp window %d flagged unsteady", w)
		}
	}
	// Shift remaps the window exactly as RPS does; Scale passes through.
	shifted := Shift{Base: Scale{Base: burst, Factor: 0.5}, Offset: 3}
	for w := 0; w < 12; w++ {
		want := ShapeUnsteady(burst, ((w-3)%12+12)%12, 12)
		if got := ShapeUnsteady(shifted, w, 12); got != want {
			t.Errorf("shifted window %d: unsteady = %v, want %v", w, got, want)
		}
	}
}
