package loadgen

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseEvents(t *testing.T) {
	sc, err := ParseEvents("drain:24:0, restore:72:0,surge:30-40:video:1.8,perf:3:0.85")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: EventDrain, Window: 24, Server: 0},
		{Kind: EventRestore, Window: 72, Server: 0},
		{Kind: EventSurge, Window: 30, Until: 40, Client: "video", Factor: 1.8},
		{Kind: EventPerf, Server: 3, Factor: 0.85},
	}
	if !reflect.DeepEqual(sc.Events, want) {
		t.Fatalf("parsed %+v", sc.Events)
	}
	// Events round-trip through String.
	var parts []string
	for _, e := range sc.Events {
		parts = append(parts, e.String())
	}
	rt, err := ParseEvents(strings.Join(parts, ","))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rt.Events, want) {
		t.Fatalf("round trip %+v", rt.Events)
	}
	if sc, err := ParseEvents("  "); err != nil || len(sc.Events) != 0 {
		t.Fatalf("empty spec: %v %v", sc, err)
	}
}

func TestParseEventsRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"drain:24",
		"drain:x:0",
		"restore:1:y",
		"surge:30:video:1.8",
		"surge:30-40:video:x",
		"surge:30-40::1.8",
		"perf:3",
		"perf:3:abc",
		"teleport:1:2",
	} {
		if _, err := ParseEvents(s); err == nil {
			t.Errorf("%q accepted", s)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	clients := []Client{{Name: "a"}, {Name: "b"}}
	ok := Scenario{Events: []Event{
		{Kind: EventDrain, Window: 0, Server: 3},
		{Kind: EventRestore, Window: 9, Server: 3},
		{Kind: EventSurge, Window: 2, Until: 5, Client: "b", Factor: 2},
		{Kind: EventPerf, Server: 0, Factor: 0.8},
	}}
	if err := ok.Validate(10, 4, clients); err != nil {
		t.Fatal(err)
	}
	if err := (Scenario{}).Validate(10, 4, clients); err != nil {
		t.Fatalf("zero scenario rejected: %v", err)
	}
	bad := []Event{
		{Kind: EventDrain, Window: 10, Server: 0},                          // past horizon
		{Kind: EventDrain, Window: -1, Server: 0},                          // negative window
		{Kind: EventRestore, Window: 0, Server: 4},                         // server out of range
		{Kind: EventSurge, Window: 5, Until: 5, Client: "a", Factor: 2},    // empty range
		{Kind: EventSurge, Window: 0, Until: 11, Client: "a", Factor: 2},   // past horizon
		{Kind: EventSurge, Window: 0, Until: 5, Client: "nope", Factor: 2}, // unknown client
		{Kind: EventSurge, Window: 0, Until: 5, Client: "a", Factor: 0},    // zero factor
		{Kind: EventPerf, Server: 0, Factor: 0},                            // zero perf
		{Kind: EventPerf, Server: 0, Factor: 1.2},                          // >1 perf
		{Kind: EventKind(99), Window: 0},                                   // unknown kind
	}
	for i, e := range bad {
		if err := (Scenario{Events: []Event{e}}).Validate(10, 4, clients); err == nil {
			t.Errorf("bad event %d (%+v) accepted", i, e)
		}
	}
}

func TestDrainMask(t *testing.T) {
	sc := Scenario{Events: []Event{
		{Kind: EventDrain, Window: 2, Server: 1},
		{Kind: EventRestore, Window: 5, Server: 1},
		{Kind: EventDrain, Window: 7, Server: 1},
		{Kind: EventDrain, Window: 4, Server: 0},
	}}
	m := sc.DrainMask(2, 9)
	// Server 0: drained from 4 to the end (no restore).
	for w := 0; w < 9; w++ {
		want := w >= 4
		if m[0][w] != want {
			t.Errorf("server 0 window %d: %v", w, m[0][w])
		}
	}
	// Server 1: down [2,5), up [5,7), down again from 7.
	for w := 0; w < 9; w++ {
		want := (w >= 2 && w < 5) || w >= 7
		if m[1][w] != want {
			t.Errorf("server 1 window %d: %v", w, m[1][w])
		}
	}
	// Same-window drain+restore leaves the server up.
	tie := Scenario{Events: []Event{
		{Kind: EventDrain, Window: 3, Server: 0},
		{Kind: EventRestore, Window: 3, Server: 0},
	}}
	if tie.DrainMask(1, 5)[0][3] {
		t.Error("same-window drain+restore left server down")
	}
}

func TestSurgeMatrixStacks(t *testing.T) {
	sc := Scenario{Events: []Event{
		{Kind: EventSurge, Window: 1, Until: 4, Client: "a", Factor: 2},
		{Kind: EventSurge, Window: 3, Until: 6, Client: "a", Factor: 1.5},
		{Kind: EventSurge, Window: 0, Until: 2, Client: "b", Factor: 3},
	}}
	m := sc.SurgeMatrix([]string{"a", "b"}, 6)
	wantA := []float64{1, 2, 2, 3, 1.5, 1.5}
	for w, v := range wantA {
		if m[0][w] != v {
			t.Errorf("a window %d: got %v want %v", w, m[0][w], v)
		}
	}
	if m[1][0] != 3 || m[1][2] != 1 {
		t.Errorf("b: %v", m[1])
	}
}

func TestPerfFactors(t *testing.T) {
	sc := Scenario{Events: []Event{
		{Kind: EventPerf, Server: 1, Factor: 0.8},
		{Kind: EventPerf, Server: 1, Factor: 0.9}, // last wins
	}}
	got := sc.PerfFactors(3)
	if !reflect.DeepEqual(got, []float64{1, 0.9, 1}) {
		t.Fatalf("perf factors %v", got)
	}
}

func TestShapeParameterValidation(t *testing.T) {
	bad := []Shape{
		Constant{Rate: -1},
		Ramp{StartRPS: -5, TargetRPS: 10},
		Diurnal{HourLoad: [24]float64{0: -0.1}, PeakRPS: 100},
		Burst{Base: Constant{Rate: -1}, Length: 1, Magnitude: 2},
	}
	for i, sh := range bad {
		tr := validTraffic()
		tr.Clients[0].Spec.Shape = sh
		if err := tr.Validate(); err == nil {
			t.Errorf("shape %d accepted by Traffic.Validate", i)
		}
	}
}
