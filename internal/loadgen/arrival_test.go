package loadgen

import (
	"math"
	"strings"
	"testing"

	"stretch/internal/rng"
)

func TestResolveProcess(t *testing.T) {
	cases := []struct {
		spec Spec
		want Arrival
		ok   bool
	}{
		{Spec{}, ArrivalExact, true},
		{Spec{Poisson: true}, ArrivalPoisson, true},
		{Spec{Process: ArrivalExact}, ArrivalExact, true},
		{Spec{Process: ArrivalPoisson, Poisson: true}, ArrivalPoisson, true},
		{Spec{Process: ArrivalGamma, CV: 1.5}, ArrivalGamma, true},
		{Spec{Process: ArrivalWeibull, CV: 2}, ArrivalWeibull, true},
		{Spec{Process: ArrivalGamma, Poisson: true, CV: 1}, 0, false}, // contradiction
		{Spec{Process: ArrivalExact, Poisson: true}, 0, false},
		{Spec{Process: ArrivalGamma}, 0, false},                  // missing CV
		{Spec{Process: ArrivalGamma, CV: math.Inf(1)}, 0, false}, // infinite CV
		{Spec{Process: ArrivalGamma, CV: math.NaN()}, 0, false},  // NaN CV
		{Spec{Process: ArrivalWeibull, CV: 0.001}, 0, false},     // below invertible range
		{Spec{Process: ArrivalWeibull, CV: 100}, 0, false},       // above invertible range
		{Spec{Process: ArrivalPoisson, CV: 0.5}, 0, false},       // CV without mixture
		{Spec{CV: 0.5}, 0, false},                                // CV on exact
		{Spec{Process: Arrival(42)}, 0, false},                   // unknown process
	}
	for i, c := range cases {
		got, err := c.spec.resolveProcess()
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("case %d: got (%v, %v), want (%v, nil)", i, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("case %d: spec %+v accepted as %v", i, c.spec, got)
		}
	}
}

func TestWeibullShapeFromCV(t *testing.T) {
	for _, cv := range []float64{0.1, 0.5, 1, 1.5, 3, 10} {
		k, err := weibullShapeFromCV(cv)
		if err != nil {
			t.Fatalf("cv %v: %v", cv, err)
		}
		g1 := math.Gamma(1 + 1/k)
		got := math.Sqrt(math.Gamma(1+2/k)/(g1*g1) - 1)
		if math.Abs(got-cv) > 1e-9 {
			t.Errorf("cv %v inverted to k=%v which has cv %v", cv, k, got)
		}
	}
	// cv = 1 is exponential: shape must come back ≈ 1.
	if k, _ := weibullShapeFromCV(1); math.Abs(k-1) > 1e-9 {
		t.Errorf("cv 1 inverted to shape %v, want 1", k)
	}
}

func TestMixtureTimelineMeanAndDeterminism(t *testing.T) {
	for _, proc := range []Arrival{ArrivalGamma, ArrivalWeibull} {
		spec := Spec{Shape: Constant{Rate: 200}, Process: proc, CV: 1.5}
		a, err := spec.Timeline(3000, 10, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Timeline(3000, 10, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		sum, varsum := 0.0, 0.0
		for w := range a {
			if a[w] != b[w] {
				t.Fatalf("%v: same seed diverged at window %d", proc, w)
			}
			sum += a[w]
		}
		mean := sum / float64(len(a))
		if mean < 180 || mean > 220 {
			t.Errorf("%v timeline mean %v, want ≈200", proc, mean)
		}
		for w := range a {
			varsum += (a[w] - mean) * (a[w] - mean)
		}
		// Overdispersion: with CV 1.5 the window-rate CV should be far above
		// the Poisson-only value (~sqrt(200*10)/2000 ≈ 0.02).
		cv := math.Sqrt(varsum/float64(len(a))) / mean
		if cv < 1.0 {
			t.Errorf("%v timeline CV %v, want > 1 (overdispersed)", proc, cv)
		}
	}
}

func TestReplayShape(t *testing.T) {
	rates := []float64{5, 10, 0, 7}
	spec := Spec{Shape: Replay{Rates: rates}}
	tl, err := spec.Timeline(4, 60, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range rates {
		if tl[w] != want {
			t.Fatalf("window %d: got %v, want %v", w, tl[w], want)
		}
	}
	// Length mismatch against the horizon is rejected.
	if _, err := spec.Timeline(5, 60, rng.New(1)); err == nil {
		t.Error("replay shorter than horizon accepted")
	}
	bad := []Shape{
		Replay{},
		Replay{Rates: []float64{1, math.NaN()}},
		Replay{Rates: []float64{1, math.Inf(1)}},
		Replay{Rates: []float64{1, -2}},
		Scale{Base: Constant{Rate: 1}, Factor: -1},
		Scale{Base: Constant{Rate: 1}, Factor: math.Inf(1)},
		Scale{},
		Shift{},
	}
	for i, s := range bad {
		if _, err := (Spec{Shape: s}).Timeline(2, 60, rng.New(1)); err == nil {
			t.Errorf("bad shape %d accepted", i)
		}
	}
}

func TestScaleAndShift(t *testing.T) {
	base := Replay{Rates: []float64{1, 2, 3, 4}}
	s := Scale{Base: base, Factor: 10}
	if got := s.RPS(2, 4); got != 30 {
		t.Fatalf("scale: got %v, want 30", got)
	}
	sh := Shift{Base: base, Offset: 1}
	want := []float64{4, 1, 2, 3} // rotated right by one, wrapping at horizon
	for w := range want {
		if got := sh.RPS(w, 4); got != want[w] {
			t.Fatalf("shift window %d: got %v, want %v", w, got, want[w])
		}
	}
}

func TestParseArrival(t *testing.T) {
	good := map[string]struct {
		proc Arrival
		cv   float64
	}{
		"exact":       {ArrivalExact, 0},
		"poisson":     {ArrivalPoisson, 0},
		"gamma:1.5":   {ArrivalGamma, 1.5},
		"weibull:0.8": {ArrivalWeibull, 0.8},
	}
	for in, want := range good {
		proc, cv, err := ParseArrival(in)
		if err != nil || proc != want.proc || cv != want.cv {
			t.Errorf("ParseArrival(%q) = (%v, %v, %v), want (%v, %v, nil)",
				in, proc, cv, err, want.proc, want.cv)
		}
	}
	for _, in := range []string{"", "gaussian", "gamma", "gamma:", "gamma:x",
		"gamma:-1", "weibull:0", "weibull:1e9", "poisson:2", "exact:0"} {
		if _, _, err := ParseArrival(in); err == nil {
			t.Errorf("ParseArrival(%q) accepted", in)
		}
	}
}

func TestParseSLOClass(t *testing.T) {
	for _, c := range []SLOClass{SLOStandard, SLOStrict, SLORelaxed} {
		got, err := ParseSLOClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseSLOClass(%q) = (%v, %v), want (%v, nil)", c.String(), got, err, c)
		}
	}
	if _, err := ParseSLOClass("gold"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestExpandCohort(t *testing.T) {
	parent := Client{
		Name: "search", Service: "web-search", Fraction: 0.6, SLO: SLOStrict,
		Spec: Spec{Shape: Constant{Rate: 100}, Process: ArrivalGamma, CV: 1.2},
	}
	members, err := ExpandCohort(parent, CohortSpec{Members: 3, Skew: 1, PhaseWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 {
		t.Fatalf("got %d members", len(members))
	}
	fracSum, rateSum := 0.0, 0.0
	for i, m := range members {
		if !strings.HasPrefix(m.Name, "search#") {
			t.Errorf("member %d name %q", i, m.Name)
		}
		if m.Service != parent.Service || m.SLO != parent.SLO {
			t.Errorf("member %d lost service/SLO", i)
		}
		if m.Spec.Process != ArrivalGamma || m.Spec.CV != 1.2 {
			t.Errorf("member %d lost arrival process", i)
		}
		fracSum += m.Fraction
		rateSum += m.Spec.Shape.RPS(0, 24)
	}
	if math.Abs(fracSum-parent.Fraction) > 1e-12 {
		t.Errorf("member fractions sum to %v, want %v", fracSum, parent.Fraction)
	}
	if math.Abs(rateSum-100) > 1e-9 {
		t.Errorf("member rates sum to %v, want 100", rateSum)
	}
	// Zipf skew 1: member 0 carries share 1/(1+1/2+1/3).
	wantShare := 1 / (1 + 0.5 + 1.0/3)
	if got := members[0].Spec.Shape.RPS(0, 24) / 100; math.Abs(got-wantShare) > 1e-12 {
		t.Errorf("member 0 share %v, want %v", got, wantShare)
	}
	// Phase stride: members must be usable in a Traffic and validate.
	tr := Traffic{Windows: 24, WindowSec: 3600, Clients: members}
	if err := tr.Validate(); err != nil {
		t.Fatalf("cohort traffic invalid: %v", err)
	}

	bad := []CohortSpec{
		{Members: 0},
		{Members: 2, Skew: -1},
		{Members: 2, Skew: math.NaN()},
		{Members: 2, PhaseWindows: -1},
	}
	for i, spec := range bad {
		if _, err := ExpandCohort(parent, spec); err == nil {
			t.Errorf("bad cohort spec %d accepted", i)
		}
	}
	if _, err := ExpandCohort(Client{Name: "x"}, CohortSpec{Members: 2}); err == nil {
		t.Error("cohort of shapeless client accepted")
	}
}

func TestTrafficValidateRejectsContradictoryProcess(t *testing.T) {
	tr := validTraffic()
	tr.Clients[0].Spec = Spec{Shape: Constant{Rate: 1}, Poisson: true, Process: ArrivalGamma, CV: 1}
	if err := tr.Validate(); err == nil {
		t.Error("contradictory Poisson+Process accepted")
	}
	tr = validTraffic()
	tr.Clients[0].Spec = Spec{Shape: Replay{Rates: []float64{1, 2}}}
	if err := tr.Validate(); err == nil {
		t.Error("replay shorter than traffic horizon accepted")
	}
}
