// Arrival-process realism beyond Poisson, and client cohorts — the
// ServeGen-style ingredients for synthesising traffic that looks like
// recorded production traces. A window's realised request population can
// be exact, Poisson, or an overdispersed Gamma/Weibull mixture (a
// Gamma-mixed Poisson is the classic model for the burstiness plain
// Poisson misses), and one logical client can expand into a cohort of
// members with Zipf-skewed rate shares and phase-shifted day shapes.
// Everything stays deterministic: mixtures draw from the same per-client
// seed-derived streams as the Poisson noise, and cohort expansion is pure
// arithmetic.
package loadgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Arrival selects the window-population noise model layered on a Spec's
// deterministic shape.
type Arrival int

// Arrival processes.
const (
	// ArrivalDefault defers to the legacy Spec.Poisson flag: Poisson
	// noise when set, exact rates otherwise.
	ArrivalDefault Arrival = iota
	// ArrivalExact carries each window's exact mean rate — no noise.
	// Replayed traces use it: their rates are already realised.
	ArrivalExact
	// ArrivalPoisson draws each window's request population from a
	// Poisson distribution with the shape's mean (variance = mean).
	ArrivalPoisson
	// ArrivalGamma is a Gamma-mixed Poisson: each window's true rate is a
	// Gamma draw with mean 1 and the spec's CV around the shape's mean,
	// then the population is Poisson at that rate. Counts are
	// overdispersed — bursty the way production arrival streams are.
	ArrivalGamma
	// ArrivalWeibull modulates the Poisson rate with a mean-1 Weibull
	// multiplier instead; sub-exponential shapes (CV > 1) produce rare
	// deep excursions rather than steady jitter.
	ArrivalWeibull
)

// String names the process.
func (a Arrival) String() string {
	switch a {
	case ArrivalDefault:
		return "default"
	case ArrivalExact:
		return "exact"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalGamma:
		return "gamma"
	case ArrivalWeibull:
		return "weibull"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// weibullCVRange bounds the CV the Weibull knob accepts: the shape
// inversion below covers it comfortably, and anything outside is a typo,
// not a workload.
const (
	minWeibullCV = 0.05
	maxWeibullCV = 20.0
)

// resolveProcess merges the legacy Poisson flag with the explicit Process
// field and validates the CV knob against the resolved process.
func (s Spec) resolveProcess() (Arrival, error) {
	proc := s.Process
	switch proc {
	case ArrivalDefault:
		proc = ArrivalExact
		if s.Poisson {
			proc = ArrivalPoisson
		}
	case ArrivalExact, ArrivalGamma, ArrivalWeibull:
		if s.Poisson {
			return 0, fmt.Errorf("loadgen: spec sets both Poisson and process %s", proc)
		}
	case ArrivalPoisson:
		// The flag and the explicit process agree; nothing to reconcile.
	default:
		return 0, fmt.Errorf("loadgen: unknown arrival process %d", int(s.Process))
	}
	switch proc {
	case ArrivalGamma:
		if !(s.CV > 0) || math.IsInf(s.CV, 0) {
			return 0, fmt.Errorf("loadgen: %s arrivals need a positive finite CV (got %v)", proc, s.CV)
		}
	case ArrivalWeibull:
		if !(s.CV >= minWeibullCV) || !(s.CV <= maxWeibullCV) {
			return 0, fmt.Errorf("loadgen: weibull arrival CV %v out of [%v,%v]", s.CV, minWeibullCV, maxWeibullCV)
		}
	default:
		if s.CV != 0 {
			return 0, fmt.Errorf("loadgen: CV %v set but %s arrivals take none", s.CV, proc)
		}
	}
	return proc, nil
}

// weibullShapeFromCV inverts the Weibull coefficient of variation to the
// distribution's shape parameter k: cv²(k) = Γ(1+2/k)/Γ(1+1/k)² − 1,
// strictly decreasing in k, bisected to machine-precision convergence so
// the inversion is deterministic.
func weibullShapeFromCV(cv float64) (float64, error) {
	if !(cv >= minWeibullCV) || !(cv <= maxWeibullCV) {
		return 0, fmt.Errorf("loadgen: weibull arrival CV %v out of [%v,%v]", cv, minWeibullCV, maxWeibullCV)
	}
	cvOf := func(k float64) float64 {
		g1 := math.Gamma(1 + 1/k)
		return math.Sqrt(math.Gamma(1+2/k)/(g1*g1) - 1)
	}
	lo, hi := 0.05, 60.0 // cvOf(0.05) ≈ 4e3, cvOf(60) ≈ 0.024: brackets the accepted CV range
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cvOf(mid) > cv {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// ParseArrival parses an arrival-process string: "exact", "poisson",
// "gamma:<cv>" or "weibull:<cv>". It returns the process and its CV knob
// (zero for the unparameterised processes).
func ParseArrival(s string) (Arrival, float64, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(s), ":")
	switch name {
	case "exact", "poisson":
		if hasArg {
			return 0, 0, fmt.Errorf("loadgen: arrival %q takes no parameter", name)
		}
		if name == "exact" {
			return ArrivalExact, 0, nil
		}
		return ArrivalPoisson, 0, nil
	case "gamma", "weibull":
		cv, err := strconv.ParseFloat(arg, 64)
		if !hasArg || err != nil {
			return 0, 0, fmt.Errorf("loadgen: arrival %q wants %s:<cv>", s, name)
		}
		proc := ArrivalGamma
		if name == "weibull" {
			proc = ArrivalWeibull
		}
		if _, err := (Spec{Process: proc, CV: cv}).resolveProcess(); err != nil {
			return 0, 0, err
		}
		return proc, cv, nil
	default:
		return 0, 0, fmt.Errorf("loadgen: unknown arrival process %q (exact|poisson|gamma:<cv>|weibull:<cv>)", s)
	}
}

// ParseSLOClass resolves an SLO class name (standard|strict|relaxed) — the
// inverse of SLOClass.String, used by the trace-file grammar.
func ParseSLOClass(s string) (SLOClass, error) {
	switch s {
	case "standard":
		return SLOStandard, nil
	case "strict":
		return SLOStrict, nil
	case "relaxed":
		return SLORelaxed, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown SLO class %q (standard|strict|relaxed)", s)
	}
}

// CohortSpec describes how one logical client expands into a population
// of cohort members — ServeGen's observation that a service's aggregate
// traffic is really many heterogeneous client populations.
type CohortSpec struct {
	// Members is the cohort size.
	Members int
	// Skew is the Zipf exponent of the rate share across members: member
	// i carries weight 1/(i+1)^Skew, normalised. Zero splits evenly.
	Skew float64
	// PhaseWindows shifts each successive member's shape by this many
	// more windows (member i is shifted i·PhaseWindows, wrapping at the
	// horizon), so members peak at staggered times.
	PhaseWindows int
}

// ExpandCohort splits a client into spec.Members cohort clients named
// "name#00", "name#01", …: each member keeps the service, batch pairing,
// SLO class and arrival process, carries a Zipf-skewed share of the rate
// and core fraction, and (optionally) a phase-shifted copy of the shape.
// The expansion is deterministic — shares are normalised Zipf weights, no
// randomness — and the members' timelines draw from their own per-client
// streams, so their mixture noise is independent.
func ExpandCohort(c Client, spec CohortSpec) ([]Client, error) {
	if spec.Members < 1 {
		return nil, fmt.Errorf("loadgen: cohort of %d members", spec.Members)
	}
	if spec.Skew < 0 || math.IsNaN(spec.Skew) || math.IsInf(spec.Skew, 0) {
		return nil, fmt.Errorf("loadgen: cohort skew %v must be non-negative and finite", spec.Skew)
	}
	if spec.PhaseWindows < 0 {
		return nil, fmt.Errorf("loadgen: negative cohort phase stride %d", spec.PhaseWindows)
	}
	if c.Spec.Shape == nil {
		return nil, fmt.Errorf("loadgen: cohort client %q without an arrival shape", c.Name)
	}
	shares := make([]float64, spec.Members)
	sum := 0.0
	for i := range shares {
		shares[i] = 1 / math.Pow(float64(i+1), spec.Skew)
		sum += shares[i]
	}
	out := make([]Client, spec.Members)
	for i := range out {
		share := shares[i] / sum
		shape := c.Spec.Shape
		if off := i * spec.PhaseWindows; off > 0 {
			shape = Shift{Base: shape, Offset: off}
		}
		m := c
		m.Name = fmt.Sprintf("%s#%02d", c.Name, i)
		m.Fraction = c.Fraction * share
		m.Spec.Shape = Scale{Base: shape, Factor: share}
		out[i] = m
	}
	return out, nil
}
