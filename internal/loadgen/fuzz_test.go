package loadgen

import (
	"math"
	"reflect"
	"testing"

	"stretch/internal/rng"
)

// boundRate keeps fuzzed rate parameters inside a range that cannot
// overflow the window populations; NaN/Inf pass through (math.Mod yields
// NaN) so the validation paths still see non-finite inputs.
func boundRate(v float64) float64 { return math.Mod(v, 1e9) }

// FuzzSpecTimeline drives Spec.Timeline over fuzzed shape compositions:
// whatever the inputs, materialisation must never panic, and any accepted
// spec must yield exactly `windows` finite non-negative rates.
func FuzzSpecTimeline(f *testing.F) {
	// One seed per shape kind, plus a composed burst and an invalid one.
	f.Add(0, 120.0, 0.0, 0.0, 0.0, 0, 0, 24, 300.0, true, uint64(1))
	f.Add(1, 10.0, 500.0, 25.0, 0.0, 2, 0, 48, 60.0, false, uint64(2))
	f.Add(2, 0.9, 800.0, 0.4, 0.0, 24, 0, 96, 900.0, true, uint64(3))
	f.Add(3, 100.0, 0.0, 0.0, 1.8, 4, 2, 36, 300.0, true, uint64(4))
	f.Add(0, -5.0, 0.0, 0.0, 0.0, 0, 0, 8, 1.0, false, uint64(5))
	f.Fuzz(func(t *testing.T, kind int, a, b, c, d float64, e, g, windows int, windowSec float64, poisson bool, seed uint64) {
		a, b, c, d = boundRate(a), boundRate(b), boundRate(c), boundRate(d)
		windows %= 4096
		windowSec = math.Mod(windowSec, 3600)
		var shape Shape
		switch k := kind % 4; k {
		case 1, -1:
			shape = Ramp{StartRPS: a, TargetRPS: b, StepRPS: c, WindowsPerStep: e}
		case 2, -2:
			var day [24]float64
			for h := range day {
				day[h] = a * float64(h%5) / 4
			}
			shape = Diurnal{HourLoad: day, PeakRPS: b, Smooth: poisson, WindowsPerDay: e}
		case 3, -3:
			shape = Burst{Base: Constant{Rate: a}, Start: e, Length: g, Every: e * 2, Magnitude: d}
		default:
			shape = Constant{Rate: a}
		}
		tl, err := (Spec{Shape: shape, Poisson: poisson}).Timeline(windows, windowSec, rng.New(seed))
		if err != nil {
			return
		}
		if len(tl) != windows {
			t.Fatalf("accepted spec produced %d of %d windows", len(tl), windows)
		}
		for w, r := range tl {
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				t.Fatalf("window %d: rate %v (shape %#v)", w, r, shape)
			}
		}
	})
}

// FuzzTrafficValidate checks the Validate→Timelines contract: any traffic
// spec Validate accepts must materialise without error.
func FuzzTrafficValidate(f *testing.F) {
	f.Add("a", "b", 0.5, 0.5, 100.0, 50.0, 24, 3600.0, uint64(1))
	f.Add("x", "x", 0.3, 0.3, 10.0, -1.0, 8, 60.0, uint64(2))
	f.Add("", "y", 0.9, 0.2, 1e8, 0.0, 100, 1.0, uint64(3))
	f.Fuzz(func(t *testing.T, name1, name2 string, frac1, frac2, rate1, rate2 float64, windows int, windowSec float64, seed uint64) {
		windows %= 2048
		windowSec = math.Mod(windowSec, 3600)
		tr := Traffic{
			Windows: windows, WindowSec: windowSec,
			Clients: []Client{
				{Name: name1, Service: "web-search", Fraction: frac1,
					Spec: Spec{Shape: Constant{Rate: boundRate(rate1)}}},
				{Name: name2, Service: "data-serving", Fraction: frac2, SLO: SLORelaxed,
					Spec: Spec{Shape: Constant{Rate: boundRate(rate2)}, Poisson: true}},
			},
		}
		if tr.Validate() != nil {
			return
		}
		tls, err := tr.Timelines(seed)
		if err != nil {
			t.Fatalf("validated traffic failed to materialise: %v", err)
		}
		if len(tls) != 2 {
			t.Fatalf("materialised %d clients", len(tls))
		}
	})
}

// FuzzParseEvents checks the event grammar: parsing must never panic, and
// whatever parses must round-trip through Event.String.
func FuzzParseEvents(f *testing.F) {
	f.Add("drain:24:0,restore:72:0,surge:30-40:video:1.8,perf:3:0.85")
	f.Add("drain:-1:99")
	f.Add("surge:5-3:x:0")
	f.Add(":::,")
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseEvents(s)
		if err != nil {
			return
		}
		var parts []string
		for _, e := range sc.Events {
			parts = append(parts, e.String())
		}
		rt, err := ParseEvents(joinComma(parts))
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", s, err)
		}
		if len(sc.Events) > 0 && !reflect.DeepEqual(rt.Events, sc.Events) {
			t.Fatalf("round trip of %q drifted: %+v vs %+v", s, rt.Events, sc.Events)
		}
	})
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}
