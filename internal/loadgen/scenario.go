// Scenario events extend a Traffic spec with the fleet-level incidents the
// §VI-D cluster studies motivate: servers draining for maintenance or
// failing outright, traffic surges redirected onto a client, and
// heterogeneous server generations running at a fraction of the newest
// hardware's single-thread performance. Events are pure data — the fleet
// engine consumes them through the precomputed masks below, so a scenario
// never perturbs the seed-derived arrival noise and results stay
// bit-identical across worker counts.
package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// EventKind discriminates scenario events.
type EventKind int

// Event kinds.
const (
	// EventDrain takes every core of a server out of service starting at
	// Window (maintenance drain or failure); its clients' load reroutes to
	// their remaining cores.
	EventDrain EventKind = iota
	// EventRestore returns a drained server to service at Window.
	EventRestore
	// EventSurge multiplies a client's offered load by Factor over
	// [Window, Until) — a redirected traffic spike on top of the client's
	// arrival spec.
	EventSurge
	// EventPerf pins a server's cores at Factor of full single-thread
	// performance for the whole horizon (an older hardware generation).
	EventPerf
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventDrain:
		return "drain"
	case EventRestore:
		return "restore"
	case EventSurge:
		return "surge"
	case EventPerf:
		return "perf"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scenario incident. Which fields matter depends on Kind:
// drain/restore use Window and Server; surge uses Window, Until, Client and
// Factor; perf uses Server and Factor.
type Event struct {
	Kind   EventKind
	Window int
	Until  int
	Server int
	Client string
	Factor float64
}

// String renders the event in ParseEvents syntax.
func (e Event) String() string {
	switch e.Kind {
	case EventDrain, EventRestore:
		return fmt.Sprintf("%s:%d:%d", e.Kind, e.Window, e.Server)
	case EventSurge:
		return fmt.Sprintf("surge:%d-%d:%s:%g", e.Window, e.Until, e.Client, e.Factor)
	case EventPerf:
		return fmt.Sprintf("perf:%d:%g", e.Server, e.Factor)
	default:
		return e.Kind.String()
	}
}

// Scenario is an ordered set of events applied to one fleet run.
type Scenario struct {
	Events []Event
}

// ParseEvents parses a comma-separated event list:
//
//	drain:<window>:<server>      drain server at window
//	restore:<window>:<server>    restore a drained server
//	surge:<from>-<to>:<client>:<factor>   multiply client load on [from,to)
//	perf:<server>:<factor>       server runs at factor of full perf
//
// e.g. "drain:24:0,restore:72:0,surge:30-40:video:1.8,perf:3:0.85".
// Bounds against a concrete fleet are checked later by Validate.
func ParseEvents(s string) (Scenario, error) {
	var sc Scenario
	if strings.TrimSpace(s) == "" {
		return sc, nil
	}
	for _, tok := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(tok), ":")
		ev, err := parseEvent(parts)
		if err != nil {
			return Scenario{}, fmt.Errorf("loadgen: event %q: %w", tok, err)
		}
		sc.Events = append(sc.Events, ev)
	}
	return sc, nil
}

func parseEvent(parts []string) (Event, error) {
	bad := func(format string) (Event, error) {
		return Event{}, fmt.Errorf("want %s", format)
	}
	switch parts[0] {
	case "drain", "restore":
		if len(parts) != 3 {
			return bad(parts[0] + ":<window>:<server>")
		}
		w, err1 := strconv.Atoi(parts[1])
		srv, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return bad(parts[0] + ":<window>:<server>")
		}
		kind := EventDrain
		if parts[0] == "restore" {
			kind = EventRestore
		}
		return Event{Kind: kind, Window: w, Server: srv}, nil
	case "surge":
		if len(parts) != 4 {
			return bad("surge:<from>-<to>:<client>:<factor>")
		}
		from, to, ok := strings.Cut(parts[1], "-")
		w, err1 := strconv.Atoi(from)
		u, err2 := strconv.Atoi(to)
		f, err3 := strconv.ParseFloat(parts[3], 64)
		if !ok || err1 != nil || err2 != nil || err3 != nil || parts[2] == "" {
			return bad("surge:<from>-<to>:<client>:<factor>")
		}
		return Event{Kind: EventSurge, Window: w, Until: u, Client: parts[2], Factor: f}, nil
	case "perf":
		if len(parts) != 3 {
			return bad("perf:<server>:<factor>")
		}
		srv, err1 := strconv.Atoi(parts[1])
		f, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return bad("perf:<server>:<factor>")
		}
		return Event{Kind: EventPerf, Server: srv, Factor: f}, nil
	default:
		return Event{}, fmt.Errorf("unknown kind %q (drain|restore|surge|perf)", parts[0])
	}
}

// Validate checks every event against a concrete fleet shape: windows in
// horizon, servers in range, surge clients present in the traffic, factors
// usable. A zero Scenario is always valid.
func (sc Scenario) Validate(windows, servers int, clients []Client) error {
	known := make(map[string]bool, len(clients))
	for _, c := range clients {
		known[c.Name] = true
	}
	for _, e := range sc.Events {
		switch e.Kind {
		case EventDrain, EventRestore:
			if e.Window < 0 || e.Window >= windows {
				return fmt.Errorf("loadgen: %s window %d outside horizon [0,%d)", e.Kind, e.Window, windows)
			}
			if e.Server < 0 || e.Server >= servers {
				return fmt.Errorf("loadgen: %s server %d outside fleet [0,%d)", e.Kind, e.Server, servers)
			}
		case EventSurge:
			if e.Window < 0 || e.Until > windows || e.Window >= e.Until {
				return fmt.Errorf("loadgen: surge range [%d,%d) invalid for horizon %d", e.Window, e.Until, windows)
			}
			if !known[e.Client] {
				return fmt.Errorf("loadgen: surge targets unknown client %q", e.Client)
			}
			if !(e.Factor > 0) || math.IsInf(e.Factor, 0) {
				return fmt.Errorf("loadgen: surge factor %v must be a positive finite multiplier", e.Factor)
			}
		case EventPerf:
			if e.Server < 0 || e.Server >= servers {
				return fmt.Errorf("loadgen: perf server %d outside fleet [0,%d)", e.Server, servers)
			}
			if !(e.Factor > 0) || e.Factor > 1 {
				return fmt.Errorf("loadgen: perf factor %v out of (0,1]", e.Factor)
			}
		default:
			return fmt.Errorf("loadgen: unknown event kind %d", e.Kind)
		}
	}
	return nil
}

// PerfFactors returns each server's performance-generation factor (1.0
// unless an EventPerf overrides it). The last perf event for a server wins.
func (sc Scenario) PerfFactors(servers int) []float64 {
	out := make([]float64, servers)
	for i := range out {
		out[i] = 1
	}
	for _, e := range sc.Events {
		if e.Kind == EventPerf && e.Server >= 0 && e.Server < servers {
			out[e.Server] = e.Factor
		}
	}
	return out
}

// DrainMask returns drained[server][window]: whether the server is out of
// service during the window. A drain holds until the server's next restore
// (or the end of the horizon).
func (sc Scenario) DrainMask(servers, windows int) [][]bool {
	out := make([][]bool, servers)
	for i := range out {
		out[i] = make([]bool, windows)
	}
	// Per-server drain/restore edges, in window order; ties at the same
	// window resolve restore-last so drain:W,restore:W leaves the server up.
	type edge struct {
		window int
		drain  bool
	}
	edges := make([][]edge, servers)
	for _, e := range sc.Events {
		if e.Server < 0 || e.Server >= servers {
			continue
		}
		switch e.Kind {
		case EventDrain:
			edges[e.Server] = append(edges[e.Server], edge{e.Window, true})
		case EventRestore:
			edges[e.Server] = append(edges[e.Server], edge{e.Window, false})
		}
	}
	for s, es := range edges {
		sort.SliceStable(es, func(a, b int) bool {
			if es[a].window != es[b].window {
				return es[a].window < es[b].window
			}
			return es[a].drain && !es[b].drain
		})
		down := false
		ei := 0
		for w := 0; w < windows; w++ {
			for ei < len(es) && es[ei].window <= w {
				down = es[ei].drain
				ei++
			}
			out[s][w] = down
		}
	}
	return out
}

// SurgeMatrix returns factor[clientIndex][window]: the product of all surge
// multipliers active on that client at that window (1.0 when none).
func (sc Scenario) SurgeMatrix(clients []string, windows int) [][]float64 {
	out := make([][]float64, len(clients))
	for i := range out {
		out[i] = make([]float64, windows)
		for w := range out[i] {
			out[i][w] = 1
		}
	}
	idx := make(map[string]int, len(clients))
	for i, n := range clients {
		idx[n] = i
	}
	for _, e := range sc.Events {
		if e.Kind != EventSurge {
			continue
		}
		ci, ok := idx[e.Client]
		if !ok {
			continue
		}
		lo, hi := e.Window, e.Until
		if lo < 0 {
			lo = 0
		}
		if hi > windows {
			hi = windows
		}
		for w := lo; w < hi; w++ {
			out[ci][w] *= e.Factor
		}
	}
	return out
}
