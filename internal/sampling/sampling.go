// Package sampling implements the SimFlex-inspired measurement methodology
// of §V-C: a run is a set of independent samples, each warming the
// microarchitectural state and then measuring a fixed instruction budget;
// reported figures are means across samples. Samples differ only in their
// trace seeds, which both decorrelates them and keeps every experiment
// bit-reproducible.
package sampling

import (
	"fmt"
	"runtime"
	"sync"

	"stretch/internal/core"
	"stretch/internal/rng"
	"stretch/internal/trace"
)

// Spec sizes a sampled measurement.
type Spec struct {
	// Samples is the number of independent samples (paper: 320; the
	// default experiment scales use far fewer since the synthetic traces
	// are stationary).
	Samples int
	// Warmup and Measure are per-thread instruction budgets per sample
	// (paper: 100K + 50K).
	Warmup, Measure uint64
	// Seed selects the whole family of sample seeds.
	Seed uint64
}

// Quick returns a spec suitable for unit tests.
func Quick() Spec { return Spec{Samples: 2, Warmup: 12000, Measure: 15000, Seed: 1} }

// Standard returns the spec used by the experiment harness.
func Standard() Spec { return Spec{Samples: 4, Warmup: 30000, Measure: 30000, Seed: 1} }

// Agg aggregates per-thread metrics across samples.
type Agg struct {
	// IPC is the mean measured IPC across samples.
	IPC float64
	// IPCStdDev is the across-sample standard deviation.
	IPCStdDev float64
	// MLPTail is the mean in-flight-miss tail distribution (Fig. 7).
	MLPTail [6]float64
	// AvgOutstanding is the mean outstanding demand-miss count.
	AvgOutstanding float64
	// MispredictRate, L1DMissRate and L1IMissRate are sample means.
	MispredictRate float64
	L1DMissRate    float64
	L1IMissRate    float64
}

func aggregate(ms []core.ThreadMetrics) Agg {
	var a Agg
	if len(ms) == 0 {
		return a
	}
	for _, m := range ms {
		a.IPC += m.IPC
		a.AvgOutstanding += m.AvgOutstanding
		a.MispredictRate += m.MispredictRate
		a.L1DMissRate += m.L1DMissRate
		a.L1IMissRate += m.L1IMissRate
		for k := range a.MLPTail {
			a.MLPTail[k] += m.MLPTail[k]
		}
	}
	n := float64(len(ms))
	a.IPC /= n
	a.AvgOutstanding /= n
	a.MispredictRate /= n
	a.L1DMissRate /= n
	a.L1IMissRate /= n
	for k := range a.MLPTail {
		a.MLPTail[k] /= n
	}
	var ss float64
	for _, m := range ms {
		d := m.IPC - a.IPC
		ss += d * d
	}
	if len(ms) > 1 {
		a.IPCStdDev = ss / float64(len(ms)-1)
	}
	return a
}

// seedFor derives a stable per-sample seed from the spec seed, a stream
// label and the sample index, so results are independent of execution
// order and parallelism.
func seedFor(base uint64, label string, sample, tid int) uint64 {
	s := rng.New(base)
	for _, r := range label {
		s = s.Derive(uint64(r))
	}
	return s.Derive(uint64(sample)<<8 | uint64(tid)).Uint64()
}

// Solo measures profile p alone on a core configured by cfg.
func Solo(cfg core.Config, p trace.Profile, spec Spec) (Agg, error) {
	ms := make([]core.ThreadMetrics, 0, spec.Samples)
	for s := 0; s < spec.Samples; s++ {
		g, err := trace.NewGenerator(p, seedFor(spec.Seed, p.Name, s, 0))
		if err != nil {
			return Agg{}, err
		}
		c, err := core.New(cfg, g)
		if err != nil {
			return Agg{}, err
		}
		tm, err := c.Run(core.RunSpec{WarmupInstr: spec.Warmup, MeasureInstr: spec.Measure})
		if err != nil {
			return Agg{}, err
		}
		ms = append(ms, tm[0])
	}
	return aggregate(ms), nil
}

// Colocated measures p0 (hardware thread 0) and p1 (thread 1) sharing a
// core configured by cfg.
func Colocated(cfg core.Config, p0, p1 trace.Profile, spec Spec) (Agg, Agg, error) {
	m0 := make([]core.ThreadMetrics, 0, spec.Samples)
	m1 := make([]core.ThreadMetrics, 0, spec.Samples)
	label := p0.Name + "+" + p1.Name
	for s := 0; s < spec.Samples; s++ {
		g0, err := trace.NewGenerator(p0, seedFor(spec.Seed, label, s, 0))
		if err != nil {
			return Agg{}, Agg{}, err
		}
		g1, err := trace.NewGenerator(p1, seedFor(spec.Seed, label, s, 1))
		if err != nil {
			return Agg{}, Agg{}, err
		}
		c, err := core.New(cfg, g0, g1)
		if err != nil {
			return Agg{}, Agg{}, err
		}
		tm, err := c.Run(core.RunSpec{WarmupInstr: spec.Warmup, MeasureInstr: spec.Measure})
		if err != nil {
			return Agg{}, Agg{}, err
		}
		m0 = append(m0, tm[0])
		m1 = append(m1, tm[1])
	}
	return aggregate(m0), aggregate(m1), nil
}

// Job is one unit of work for Parallel.
type Job func() error

// Parallel runs jobs across GOMAXPROCS workers and returns the first error.
func Parallel(jobs []Job) error {
	nw := runtime.GOMAXPROCS(0)
	if nw > len(jobs) {
		nw = len(jobs)
	}
	if nw < 1 {
		nw = 1
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		err  error
		next int
	)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(jobs) || err != nil {
					mu.Unlock()
					return
				}
				j := jobs[next]
				next++
				mu.Unlock()
				if e := j(); e != nil {
					mu.Lock()
					if err == nil {
						err = fmt.Errorf("sampling: parallel job: %w", e)
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}
