package sampling

import (
	"errors"
	"sync/atomic"
	"testing"

	"stretch/internal/core"
	"stretch/internal/workload"
)

func TestSoloDeterministicAndPositive(t *testing.T) {
	p, err := workload.Lookup("povray")
	if err != nil {
		t.Fatal(err)
	}
	spec := Quick()
	a, err := Solo(core.Solo(), p, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solo(core.Solo(), p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC {
		t.Fatalf("same spec produced different IPC: %v vs %v", a.IPC, b.IPC)
	}
	if a.IPC <= 0 {
		t.Fatal("non-positive IPC")
	}
	if a.MLPTail[0] < a.MLPTail[1] || a.MLPTail[1] < a.MLPTail[2] {
		t.Fatal("MLP tail not monotone")
	}
}

func TestSeedChangesResults(t *testing.T) {
	p, _ := workload.Lookup("povray")
	s1 := Quick()
	s2 := Quick()
	s2.Seed = 999
	a, err := Solo(core.Solo(), p, s1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solo(core.Solo(), p, s2)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC == b.IPC {
		t.Fatal("different seeds produced identical IPC")
	}
}

func TestColocatedBothThreadsMeasured(t *testing.T) {
	lp, _ := workload.Lookup(workload.WebSearch)
	bp, _ := workload.Lookup(workload.Zeusmp)
	a0, a1, err := Colocated(core.Default(), lp, bp, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if a0.IPC <= 0 || a1.IPC <= 0 {
		t.Fatalf("IPC = %v / %v", a0.IPC, a1.IPC)
	}
	// The high-MLP batch thread must out-IPC the chase-bound service.
	if a1.IPC <= a0.IPC {
		t.Fatalf("zeusmp (%v) should out-IPC web-search (%v)", a1.IPC, a0.IPC)
	}
}

func TestColocatedRejectsBadConfig(t *testing.T) {
	lp, _ := workload.Lookup(workload.WebSearch)
	bp, _ := workload.Lookup(workload.Zeusmp)
	cfg := core.Default()
	cfg.Width = 0
	if _, _, err := Colocated(cfg, lp, bp, Quick()); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestParallelRunsAllJobs(t *testing.T) {
	var n int64
	jobs := make([]Job, 50)
	for i := range jobs {
		jobs[i] = func() error {
			atomic.AddInt64(&n, 1)
			return nil
		}
	}
	if err := Parallel(jobs); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("ran %d/50 jobs", n)
	}
}

func TestParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		func() error { return nil },
		func() error { return boom },
		func() error { return nil },
	}
	err := Parallel(jobs)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if err := Parallel(nil); err != nil {
		t.Fatalf("empty job list: %v", err)
	}
}

func TestSeedForStability(t *testing.T) {
	a := seedFor(1, "x+y", 3, 0)
	b := seedFor(1, "x+y", 3, 0)
	if a != b {
		t.Fatal("seedFor not stable")
	}
	if seedFor(1, "x+y", 3, 1) == a || seedFor(1, "x+z", 3, 0) == a || seedFor(2, "x+y", 3, 0) == a {
		t.Fatal("seedFor collisions across labels/threads/seeds")
	}
}

func TestAggregateMath(t *testing.T) {
	ms := []core.ThreadMetrics{{IPC: 1}, {IPC: 3}}
	a := aggregate(ms)
	if a.IPC != 2 {
		t.Fatalf("mean IPC = %v", a.IPC)
	}
	if a.IPCStdDev != 2 { // sample variance of {1,3} = 2
		t.Fatalf("variance = %v", a.IPCStdDev)
	}
	if aggregate(nil).IPC != 0 {
		t.Fatal("empty aggregate")
	}
}
