package experiments

import (
	"fmt"
	"sort"
	"sync"

	"stretch/internal/colocate"
	"stretch/internal/sampling"
	"stretch/internal/stats"
	"stretch/internal/workload"
)

// BModeSkew is the headline Stretch configuration evaluated throughout
// §VI: 56 ROB entries for the LS thread, 136 for the batch thread.
const BModeSkew = 56

// QModeSkew is the mirrored QoS-boost configuration (136-56).
const QModeSkew = 136

// skewGrid memoises a colocation grid at a given LS-thread ROB allocation.
func skewGrid(c *Context, rob0 int) (map[string]map[string]colocate.Pair, error) {
	return c.Grid(fmt.Sprintf("skew-%d", rob0), func() (map[string]map[string]colocate.Pair, error) {
		return colocate.Grid(workload.ServiceNames(), c.BatchNames(), colocate.SkewConfig(rob0), c.Spec())
	})
}

// Fig9 reproduces Figure 9: performance change of latency-sensitive and
// batch threads under B-mode skews (left) and Q-mode skews (right),
// normalised to the equally partitioned baseline.
func Fig9(c *Context) (Table, error) {
	base, err := baselineGrid(c)
	if err != nil {
		return Table{}, err
	}
	bSkews := []int{64, 56, 48, 40, 32}
	qSkews := []int{128, 136, 144, 152, 160}
	if c.Scale == Quick {
		bSkews = []int{56, 32}
		qSkews = []int{136}
	}

	t := Table{
		ID:      "fig9",
		Title:   "Speedup vs equal partitioning for Stretch skews (Fig. 9)",
		Header:  []string{"mode", "skew (LS-batch)", "LS mean", "LS min", "batch mean", "batch max"},
		Metrics: map[string]float64{},
	}
	run := func(mode string, skews []int) error {
		for _, s := range skews {
			grid, err := skewGrid(c, s)
			if err != nil {
				return err
			}
			var lsCh, bCh []float64
			for _, ls := range workload.ServiceNames() {
				for _, b := range c.BatchNames() {
					lsCh = append(lsCh, colocate.Speedup(grid[ls][b].LSAgg.IPC, base[ls][b].LSAgg.IPC))
					bCh = append(bCh, colocate.Speedup(grid[ls][b].BatchAgg.IPC, base[ls][b].BatchAgg.IPC))
				}
			}
			lv, bv := stats.Summarize(lsCh), stats.Summarize(bCh)
			t.Rows = append(t.Rows, []string{mode, fmt.Sprintf("%d-%d", s, 192-s),
				pct(lv.Mean), pct(lv.Min), pct(bv.Mean), pct(bv.Max)})
			t.Metrics[fmt.Sprintf("%s_%d_ls_mean", mode, s)] = lv.Mean
			t.Metrics[fmt.Sprintf("%s_%d_batch_mean", mode, s)] = bv.Mean
			t.Metrics[fmt.Sprintf("%s_%d_batch_max", mode, s)] = bv.Max
			t.Metrics[fmt.Sprintf("%s_%d_batch_min", mode, s)] = bv.Min
		}
		return nil
	}
	if err := run("B", bSkews); err != nil {
		return Table{}, err
	}
	if err := run("Q", qSkews); err != nil {
		return Table{}, err
	}
	t.Notes = append(t.Notes,
		"paper: B-mode 56-136 gives batch +13% mean (+30% max) at -7% mean LS; B-mode 32-160 +18% mean (+40% max); Q-mode 136-56 gives LS +7% mean (+18% max) at -21% mean batch")
	return t, nil
}

// Fig10 reproduces Figure 10: per-benchmark batch speedups under the
// B-mode 56-136 skew, sorted from largest to smallest per service.
func Fig10(c *Context) (Table, error) {
	base, err := baselineGrid(c)
	if err != nil {
		return Table{}, err
	}
	grid, err := skewGrid(c, BModeSkew)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "fig10",
		Title:   "Batch speedup with B-mode 56-136, sorted per service (Fig. 10)",
		Header:  []string{"rank"},
		Metrics: map[string]float64{},
	}
	for _, ls := range workload.ServiceNames() {
		t.Header = append(t.Header, ls)
	}
	perLS := make(map[string][]float64)
	var over15, over10 int
	var all []float64
	for _, ls := range workload.ServiceNames() {
		var xs []float64
		for _, b := range c.BatchNames() {
			xs = append(xs, colocate.Speedup(grid[ls][b].BatchAgg.IPC, base[ls][b].BatchAgg.IPC))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(xs)))
		perLS[ls] = xs
		all = append(all, xs...)
		for _, x := range xs {
			if x > 0.15 {
				over15++
			} else if x > 0.10 {
				over10++
			}
		}
	}
	for i := range c.BatchNames() {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, ls := range workload.ServiceNames() {
			row = append(row, pct(perLS[ls][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Metrics["mean"] = stats.Mean(all)
	t.Metrics["max"] = stats.Max(all)
	t.Metrics["min"] = stats.Min(all)
	t.Metrics["over15_per_ls"] = float64(over15) / float64(len(workload.ServiceNames()))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"mean %.0f%%, max %.0f%%; %.1f benchmarks/service above 15%% (paper: >=10 above 15%%, ~2 more above 10%%, rest 2-9%%)",
		100*t.Metrics["mean"], 100*t.Metrics["max"], t.Metrics["over15_per_ls"]))
	return t, nil
}

// Fig11 reproduces Figure 11: batch slowdown under a dynamically shared ROB
// relative to equal partitioning (and the small LS-side improvement).
func Fig11(c *Context) (Table, error) {
	base, err := baselineGrid(c)
	if err != nil {
		return Table{}, err
	}
	grid, err := c.Grid("dynamic", func() (map[string]map[string]colocate.Pair, error) {
		return colocate.Grid(workload.ServiceNames(), c.BatchNames(), colocate.DynamicConfig(), c.Spec())
	})
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "fig11",
		Title:   "Batch slowdown with dynamically shared ROB vs equal partitioning (Fig. 11)",
		Header:  []string{"LS service", "batch mean", "batch max", "LS change (mean)"},
		Metrics: map[string]float64{},
	}
	var allB, allLS []float64
	for _, ls := range workload.ServiceNames() {
		var bs, lss []float64
		for _, b := range c.BatchNames() {
			bs = append(bs, -colocate.Speedup(grid[ls][b].BatchAgg.IPC, base[ls][b].BatchAgg.IPC))
			lss = append(lss, colocate.Speedup(grid[ls][b].LSAgg.IPC, base[ls][b].LSAgg.IPC))
		}
		allB = append(allB, bs...)
		allLS = append(allLS, lss...)
		t.Rows = append(t.Rows, []string{ls, pct(stats.Mean(bs)), pct(stats.Max(bs)), pct(stats.Mean(lss))})
		t.Metrics["batch_slow_"+ls] = stats.Mean(bs)
	}
	t.Metrics["batch_slow_mean"] = stats.Mean(allB)
	t.Metrics["batch_slow_max"] = stats.Max(allB)
	t.Metrics["ls_gain_mean"] = stats.Mean(allLS)
	t.Notes = append(t.Notes,
		"paper: batch loses 8% mean / 49% max under dynamic sharing (worst with Data Serving, ~20%); LS gains ~4% mean",
		"KNOWN DIVERGENCE: in this trace-driven model the LS thread's front-end stalls (I-misses, mispredict shadows) keep its window occupancy too low to clog the shared pool, so the batch thread gains modestly from dynamic sharing instead of losing; see EXPERIMENTS.md")
	return t, nil
}

// Fig12 reproduces Figure 12: fetch throttling at ratios 1:2..1:16 (on a
// dynamically shared ROB) versus Stretch B-mode 56-136, both normalised to
// the equally partitioned baseline.
func Fig12(c *Context) (Table, error) {
	base, err := baselineGrid(c)
	if err != nil {
		return Table{}, err
	}
	ratios := []int{2, 4, 8, 16}
	if c.Scale == Quick {
		ratios = []int{4, 16}
	}

	type res struct{ lsSlow, bGain map[string]float64 }
	rows := make(map[string]res)
	var mu sync.Mutex
	var jobs []sampling.Job
	addCfg := func(label string, build func() (map[string]map[string]colocate.Pair, error)) {
		jobs = append(jobs, func() error {
			grid, err := c.Grid(label, build)
			if err != nil {
				return err
			}
			r := res{lsSlow: map[string]float64{}, bGain: map[string]float64{}}
			for _, ls := range workload.ServiceNames() {
				var lss, bs []float64
				for _, b := range c.BatchNames() {
					lss = append(lss, -colocate.Speedup(grid[ls][b].LSAgg.IPC, base[ls][b].LSAgg.IPC))
					bs = append(bs, colocate.Speedup(grid[ls][b].BatchAgg.IPC, base[ls][b].BatchAgg.IPC))
				}
				r.lsSlow[ls] = stats.Mean(lss)
				r.bGain[ls] = stats.Mean(bs)
			}
			mu.Lock()
			rows[label] = r
			mu.Unlock()
			return nil
		})
	}
	for _, m := range ratios {
		m := m
		addCfg(fmt.Sprintf("ft-%d", m), func() (map[string]map[string]colocate.Pair, error) {
			return colocate.Grid(workload.ServiceNames(), c.BatchNames(), colocate.ThrottleConfig(m), c.Spec())
		})
	}
	if err := sampling.Parallel(jobs); err != nil {
		return Table{}, err
	}
	// Stretch comparison point (memoised from fig9/10 if already run).
	sg, err := skewGrid(c, BModeSkew)
	if err != nil {
		return Table{}, err
	}
	st := res{lsSlow: map[string]float64{}, bGain: map[string]float64{}}
	for _, ls := range workload.ServiceNames() {
		var lss, bs []float64
		for _, b := range c.BatchNames() {
			lss = append(lss, -colocate.Speedup(sg[ls][b].LSAgg.IPC, base[ls][b].LSAgg.IPC))
			bs = append(bs, colocate.Speedup(sg[ls][b].BatchAgg.IPC, base[ls][b].BatchAgg.IPC))
		}
		st.lsSlow[ls] = stats.Mean(lss)
		st.bGain[ls] = stats.Mean(bs)
	}

	t := Table{
		ID:      "fig12",
		Title:   "Fetch throttling vs Stretch B-mode, change vs equal partitioning (Fig. 12)",
		Header:  []string{"config", "LS slowdown (avg)", "batch speedup (avg)"},
		Metrics: map[string]float64{},
	}
	avg := func(m map[string]float64) float64 {
		var xs []float64
		for _, ls := range workload.ServiceNames() {
			xs = append(xs, m[ls])
		}
		return stats.Mean(xs)
	}
	for _, m := range ratios {
		r := rows[fmt.Sprintf("ft-%d", m)]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("FT 1:%d", m), pct(avg(r.lsSlow)), pct(avg(r.bGain))})
		t.Metrics[fmt.Sprintf("ft%d_ls_slow", m)] = avg(r.lsSlow)
		t.Metrics[fmt.Sprintf("ft%d_batch_gain", m)] = avg(r.bGain)
	}
	t.Rows = append(t.Rows, []string{"Stretch 56-136", pct(avg(st.lsSlow)), pct(avg(st.bGain))})
	t.Metrics["stretch_ls_slow"] = avg(st.lsSlow)
	t.Metrics["stretch_batch_gain"] = avg(st.bGain)
	t.Notes = append(t.Notes,
		"paper: FT 1:2/1:4 cost LS 10%/25% for batch -3%/0%; 1:8/1:16 cost LS 48%/68% for batch +4%/+6%; Stretch gives batch +13% at LS -7%")
	return t, nil
}

// Fig13 reproduces Figure 13: idealised software scheduling (zero shared-
// structure contention, equal ROB split) vs Stretch (real contention,
// 56-136) vs the combination, as batch speedup over the baseline core.
func Fig13(c *Context) (Table, error) {
	base, err := baselineGrid(c)
	if err != nil {
		return Table{}, err
	}
	ideal, err := c.Grid("ideal-sched", func() (map[string]map[string]colocate.Pair, error) {
		return colocate.Grid(workload.ServiceNames(), c.BatchNames(), colocate.IdealSchedulingConfig(0), c.Spec())
	})
	if err != nil {
		return Table{}, err
	}
	stretch, err := skewGrid(c, BModeSkew)
	if err != nil {
		return Table{}, err
	}
	both, err := c.Grid("ideal-sched+stretch", func() (map[string]map[string]colocate.Pair, error) {
		return colocate.Grid(workload.ServiceNames(), c.BatchNames(), colocate.IdealSchedulingConfig(BModeSkew), c.Spec())
	})
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "fig13",
		Title:   "Batch speedup: ideal software scheduling vs Stretch vs both (Fig. 13)",
		Header:  []string{"LS service", "ideal scheduling", "Stretch", "Stretch + ideal"},
		Metrics: map[string]float64{},
	}
	gain := func(grid map[string]map[string]colocate.Pair, ls string) float64 {
		var xs []float64
		for _, b := range c.BatchNames() {
			xs = append(xs, colocate.Speedup(grid[ls][b].BatchAgg.IPC, base[ls][b].BatchAgg.IPC))
		}
		return stats.Mean(xs)
	}
	var gi, gs, gb []float64
	for _, ls := range workload.ServiceNames() {
		i, s, bo := gain(ideal, ls), gain(stretch, ls), gain(both, ls)
		gi, gs, gb = append(gi, i), append(gs, s), append(gb, bo)
		t.Rows = append(t.Rows, []string{ls, pct(i), pct(s), pct(bo)})
	}
	t.Rows = append(t.Rows, []string{"average", pct(stats.Mean(gi)), pct(stats.Mean(gs)), pct(stats.Mean(gb))})
	t.Metrics["ideal_mean"] = stats.Mean(gi)
	t.Metrics["stretch_mean"] = stats.Mean(gs)
	t.Metrics["both_mean"] = stats.Mean(gb)
	t.Notes = append(t.Notes,
		"paper: ideal scheduling +8%, Stretch +13%, combined +21% — the techniques are additive")
	return t, nil
}
