package experiments

import (
	"fmt"

	"stretch/internal/colocate"
	"stretch/internal/core"
	"stretch/internal/fleet"
	"stretch/internal/monitor"
	"stretch/internal/stats"
	"stretch/internal/workload"
)

// Fig14 reproduces the §VI-D impact case studies built on the diurnal load
// patterns of Figure 14: a Web Search cluster (B-mode engageable ~11 h/day)
// and a YouTube-like video cluster (~17 h/day). Cluster-level batch
// throughput gains are integrated over 24 hours using the measured B-mode
// 56-136 speedups, with the mode driven both by the coarse hour-grain rule
// and by the closed-loop controller.
func Fig14(c *Context) (Table, error) {
	base, err := baselineGrid(c)
	if err != nil {
		return Table{}, err
	}
	grid, err := skewGrid(c, BModeSkew)
	if err != nil {
		return Table{}, err
	}

	// Measured B-mode batch speedup and LS slowdown per LS service.
	speedup := func(ls string) (bGain, lsSlow float64) {
		var bs, lss []float64
		for _, b := range c.BatchNames() {
			bs = append(bs, colocate.Speedup(grid[ls][b].BatchAgg.IPC, base[ls][b].BatchAgg.IPC))
			lss = append(lss, -colocate.Speedup(grid[ls][b].LSAgg.IPC, base[ls][b].LSAgg.IPC))
		}
		return stats.Mean(bs), stats.Mean(lss)
	}

	t := Table{
		ID:      "fig14",
		Title:   "Diurnal case studies: 24-hour cluster throughput gain (Fig. 14 / §VI-D)",
		Header:  []string{"cluster", "LS service", "B-mode hours", "batch gain (engaged)", "24h cluster gain", "controller switches"},
		Metrics: map[string]float64{},
	}
	cases := []struct {
		trace fleet.DiurnalTrace
		ls    string
	}{
		{fleet.WebSearchTrace(), workload.WebSearch},
		{fleet.YouTubeTrace(), workload.MediaStreaming},
	}
	for _, cs := range cases {
		bGain, lsSlow := speedup(cs.ls)
		study := fleet.Study{
			Trace:         cs.trace,
			EngageBelow:   0.85,
			BatchSpeedupB: bGain,
			LSSlowdownB:   lsSlow,
		}
		res, err := study.Run()
		if err != nil {
			return Table{}, err
		}

		// Closed-loop replay: tail latency rises with load and with the
		// B-mode slowdown; the analytic proxy keeps the controller study
		// independent of queueing-simulation noise.
		svc := workload.Services()[cs.ls]
		tailAt := func(load float64, mode core.Mode) float64 {
			perf := 1.0
			if mode == core.ModeB {
				perf = 1 - lsSlow
			}
			util := load / perf
			if util >= 0.999 {
				util = 0.999
			}
			// Tail ≈ service tail + queueing term growing as 1/(1-util).
			return svc.QoSTargetMs * (0.30 + 0.55*util/(1-util)*0.12)
		}
		ctl, err := monitor.New(monitor.DefaultConfig(svc.QoSTargetMs))
		if err != nil {
			return Table{}, err
		}
		ctlRes, err := study.RunWithController(ctl, 12, tailAt)
		if err != nil {
			return Table{}, err
		}

		t.Rows = append(t.Rows, []string{
			cs.trace.Name, cs.ls,
			fmt.Sprintf("%d", res.EngagedHours),
			pct(bGain), pct(res.ClusterGain),
			fmt.Sprintf("%d", ctl.Switches()),
		})
		t.Metrics["gain_"+cs.trace.Name] = res.ClusterGain
		t.Metrics["hours_"+cs.trace.Name] = float64(res.EngagedHours)
		t.Metrics["ctl_gain_"+cs.trace.Name] = ctlRes.ClusterGain
		t.Metrics["ctl_switches_"+cs.trace.Name] = float64(ctl.Switches())
	}
	t.Notes = append(t.Notes,
		"paper: Web Search cluster ~11 engageable hours -> ~5% 24h gain; YouTube cluster ~17 hours -> ~11% 24h gain")
	return t, nil
}
