package experiments

import (
	"fmt"
	"sync"

	"stretch/internal/colocate"
	"stretch/internal/core"
	"stretch/internal/sampling"
	"stretch/internal/stats"
	"stretch/internal/workload"
)

// baselineGrid memoises the Table II SMT-baseline colocation grid.
func baselineGrid(c *Context) (map[string]map[string]colocate.Pair, error) {
	return c.Grid("baseline", func() (map[string]map[string]colocate.Pair, error) {
		return colocate.Grid(workload.ServiceNames(), c.BatchNames(), colocate.BaselineConfig(), c.Spec())
	})
}

// Fig3 reproduces Figure 3: slowdown of latency-sensitive and batch
// applications colocated on the SMT baseline, normalised to solo full-core
// execution. The paper's headline: LS loses 14% on average (28% max),
// batch loses 24% on average (46% max).
func Fig3(c *Context) (Table, error) {
	grid, err := baselineGrid(c)
	if err != nil {
		return Table{}, err
	}
	solo, err := c.SoloIPC(append(workload.ServiceNames(), c.BatchNames()...)...)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "fig3",
		Title:   "Colocation slowdown vs solo full core (Fig. 3)",
		Header:  []string{"LS service", "side", "min", "q1", "median", "q3", "max", "mean"},
		Metrics: map[string]float64{},
	}
	var allLS, allB []float64
	for _, ls := range workload.ServiceNames() {
		var lsS, bS []float64
		for _, b := range c.BatchNames() {
			p := grid[ls][b]
			lsS = append(lsS, colocate.Slowdown(p.LSAgg.IPC, solo[ls]))
			bS = append(bS, colocate.Slowdown(p.BatchAgg.IPC, solo[b]))
		}
		allLS = append(allLS, lsS...)
		allB = append(allB, bS...)
		for _, side := range []struct {
			name string
			xs   []float64
		}{{"latency-sensitive", lsS}, {"batch", bS}} {
			v := stats.Summarize(side.xs)
			t.Rows = append(t.Rows, []string{ls, side.name,
				pct(v.Min), pct(v.Q1), pct(v.Median), pct(v.Q3), pct(v.Max), pct(v.Mean)})
		}
	}
	t.Metrics["ls_mean"] = stats.Mean(allLS)
	t.Metrics["ls_max"] = stats.Max(allLS)
	t.Metrics["batch_mean"] = stats.Mean(allB)
	t.Metrics["batch_max"] = stats.Max(allB)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"LS mean %.0f%% / max %.0f%%; batch mean %.0f%% / max %.0f%% (paper: 14%%/28%% and 24%%/46%%)",
		100*t.Metrics["ls_mean"], 100*t.Metrics["ls_max"],
		100*t.Metrics["batch_mean"], 100*t.Metrics["batch_max"]))
	return t, nil
}

// resourceStudy runs the §III-B single-shared-resource grids for one LS
// service and returns, per resource, the slowdown distributions of the LS
// thread and the batch co-runners relative to solo.
func resourceStudy(c *Context, ls string) (map[colocate.Resource][2]stats.Violin, error) {
	solo, err := c.SoloIPC(append([]string{ls}, c.BatchNames()...)...)
	if err != nil {
		return nil, err
	}
	out := make(map[colocate.Resource][2]stats.Violin, 4)
	var mu sync.Mutex
	var jobs []sampling.Job
	for _, r := range colocate.Resources() {
		r := r
		jobs = append(jobs, func() error {
			grid, err := c.Grid(fmt.Sprintf("share-%v-%s", r, ls), func() (map[string]map[string]colocate.Pair, error) {
				return colocate.Grid([]string{ls}, c.BatchNames(), colocate.ShareOnlyConfig(r), c.Spec())
			})
			if err != nil {
				return err
			}
			var lsS, bS []float64
			for _, b := range c.BatchNames() {
				p := grid[ls][b]
				lsS = append(lsS, colocate.Slowdown(p.LSAgg.IPC, solo[ls]))
				bS = append(bS, colocate.Slowdown(p.BatchAgg.IPC, solo[b]))
			}
			mu.Lock()
			out[r] = [2]stats.Violin{stats.Summarize(lsS), stats.Summarize(bS)}
			mu.Unlock()
			return nil
		})
	}
	if err := sampling.Parallel(jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4 reproduces Figure 4: Web Search and batch slowdown when the two
// threads share exactly one microarchitectural resource. Headline: the ROB
// is the dominant source of batch-side degradation.
func Fig4(c *Context) (Table, error) {
	res, err := resourceStudy(c, workload.WebSearch)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "fig4",
		Title:   "Slowdown when sharing one resource, Web Search colocations (Fig. 4)",
		Header:  []string{"resource", "LS mean", "LS max", "batch mean", "batch max"},
		Metrics: map[string]float64{},
	}
	for _, r := range colocate.Resources() {
		v := res[r]
		t.Rows = append(t.Rows, []string{r.String(),
			pct(v[0].Mean), pct(v[0].Max), pct(v[1].Mean), pct(v[1].Max)})
		t.Metrics["batch_mean_"+r.String()] = v[1].Mean
		t.Metrics["ls_mean_"+r.String()] = v[0].Mean
		t.Metrics["batch_max_"+r.String()] = v[1].Max
	}
	t.Notes = append(t.Notes,
		"paper: batch loss in the shared ROB exceeds 15% for 15/29 applications, 31% worst case; Web Search losses stay within ~12% except with lbm on L1-D")
	return t, nil
}

// Fig5 reproduces Figure 5: the same per-resource study averaged across all
// four latency-sensitive services.
func Fig5(c *Context) (Table, error) {
	t := Table{
		ID:      "fig5",
		Title:   "Average slowdown from sharing one resource, all services (Fig. 5)",
		Header:  []string{"LS service", "side", "ROB", "L1-I", "L1-D", "BTB+BP"},
		Metrics: map[string]float64{},
	}
	for _, ls := range workload.ServiceNames() {
		res, err := resourceStudy(c, ls)
		if err != nil {
			return Table{}, err
		}
		lsRow := []string{ls, "latency-sensitive"}
		bRow := []string{ls, "batch"}
		for _, r := range colocate.Resources() {
			lsRow = append(lsRow, pct(res[r][0].Mean))
			bRow = append(bRow, pct(res[r][1].Mean))
			t.Metrics[fmt.Sprintf("batch_%s_%v", ls, r)] = res[r][1].Mean
			t.Metrics[fmt.Sprintf("ls_%s_%v", ls, r)] = res[r][0].Mean
		}
		t.Rows = append(t.Rows, lsRow, bRow)
	}
	t.Notes = append(t.Notes,
		"paper: ROB accounts for 19% average batch degradation (31% max); no single resource dominates LS degradation except lbm-induced L1-D pressure")
	return t, nil
}

// Fig6 reproduces Figure 6: sensitivity to ROB capacity (solo runs with a
// full private core, LSQ scaled in proportion), normalised to 192 entries.
func Fig6(c *Context) (Table, error) {
	sizes := []int{16, 32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 192}
	if c.Scale == Quick {
		sizes = []int{32, 48, 96, 160, 192}
	}
	names := append(append([]string{}, workload.ServiceNames()...), workload.Zeusmp)
	batch := c.BatchNames()

	type key struct {
		name string
		size int
	}
	ipc := make(map[key]float64)
	var mu sync.Mutex
	var jobs []sampling.Job
	all := append(append([]string{}, names...), batch...)
	seen := map[string]bool{}
	for _, n := range all {
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, sz := range sizes {
			n, sz := n, sz
			jobs = append(jobs, func() error {
				p, err := workload.Lookup(n)
				if err != nil {
					return err
				}
				cfg := core.Solo()
				cfg.ROBEntries = sz
				cfg.LSQEntries = sz / 3
				if cfg.LSQEntries < 8 {
					cfg.LSQEntries = 8
				}
				a, err := sampling.Solo(cfg, p, c.Spec())
				if err != nil {
					return err
				}
				mu.Lock()
				ipc[key{n, sz}] = a.IPC
				mu.Unlock()
				return nil
			})
		}
	}
	if err := sampling.Parallel(jobs); err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "fig6",
		Title:   "Sensitivity to ROB capacity, slowdown vs 192 entries (Fig. 6)",
		Header:  []string{"workload"},
		Metrics: map[string]float64{},
	}
	for _, sz := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("%d", sz))
	}
	slowAt := func(n string, sz int) float64 {
		base := ipc[key{n, sizes[len(sizes)-1]}]
		if base <= 0 {
			return 0
		}
		return 1 - ipc[key{n, sz}]/base
	}
	for _, n := range names {
		row := []string{n}
		for _, sz := range sizes {
			row = append(row, pct(slowAt(n, sz)))
		}
		t.Rows = append(t.Rows, row)
	}
	// Batch average row.
	row := []string{"batch (avg)"}
	for _, sz := range sizes {
		var xs []float64
		for _, b := range batch {
			xs = append(xs, slowAt(b, sz))
		}
		avg := stats.Mean(xs)
		row = append(row, pct(avg))
		t.Metrics[fmt.Sprintf("batch_avg_%d", sz)] = avg
	}
	t.Rows = append(t.Rows, row)
	for _, n := range names {
		t.Metrics[fmt.Sprintf("%s_96", n)] = slowAt(n, 96)
		t.Metrics[fmt.Sprintf("%s_48", n)] = slowAt(n, 48)
	}
	t.Notes = append(t.Notes,
		"paper: LS workloads reach 90-95% of peak with 96 entries and lose <=23% at 48; batch average loses 19% at 96 (31% max) and 4% at 160")
	return t, nil
}

// Fig7 reproduces Figure 7: the fraction of time Web Search and zeusmp have
// >= k concurrent in-flight memory requests (distinct cache blocks), from
// solo full-core runs.
func Fig7(c *Context) (Table, error) {
	t := Table{
		ID:      "fig7",
		Title:   "Fraction of time with >= k in-flight memory requests (Fig. 7)",
		Header:  []string{"workload", ">=1", ">=2", ">=3", ">=4", ">=5", "avg outstanding"},
		Metrics: map[string]float64{},
	}
	for _, n := range []string{workload.WebSearch, workload.Zeusmp} {
		p, err := workload.Lookup(n)
		if err != nil {
			return Table{}, err
		}
		a, err := sampling.Solo(core.Solo(), p, c.Spec())
		if err != nil {
			return Table{}, err
		}
		row := []string{n}
		for k := 1; k <= 5; k++ {
			row = append(row, pct(a.MLPTail[k]))
		}
		row = append(row, fmt.Sprintf("%.2f", a.AvgOutstanding))
		t.Rows = append(t.Rows, row)
		t.Metrics["mlp2_"+n] = a.MLPTail[2]
		t.Metrics["mlp3_"+n] = a.MLPTail[3]
	}
	t.Notes = append(t.Notes,
		"paper: Web Search exhibits MLP (>=2 in flight) only 9% of the time and >=3 only 3%; zeusmp 55% and 21%")
	return t, nil
}
