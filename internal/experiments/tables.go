package experiments

import (
	"fmt"

	"stretch/internal/core"
	"stretch/internal/workload"
)

// Table1 reproduces Table I: the slack-study workloads and QoS targets.
func Table1() Table {
	t := Table{
		ID:      "table1",
		Title:   "Workloads and QoS targets used to measure slack (Table I)",
		Header:  []string{"name", "description", "QoS target", "metric", "workers"},
		Metrics: map[string]float64{},
	}
	svcs := workload.Services()
	for _, n := range workload.ServiceNames() {
		s := svcs[n]
		t.Rows = append(t.Rows, []string{
			n, s.Description,
			fmt.Sprintf("%gms", s.QoSTargetMs), s.QoSMetric,
			fmt.Sprintf("%d", s.Workers),
		})
		t.Metrics["target_ms_"+n] = s.QoSTargetMs
	}
	return t
}

// Table2 reproduces Table II: the simulated processor parameters, read back
// from the default core configuration so the table can never drift from
// the model.
func Table2() Table {
	cfg := core.Default()
	t := Table{
		ID:     "table2",
		Title:  "Simulated processor parameters (Table II)",
		Header: []string{"parameter", "value"},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("core", "dual-thread SMT, 6-wide OoO, 2.5 GHz")
	add("fetch", fmt.Sprintf("%d instrs, up to %d cache blocks, up to 1 branch", cfg.Width, cfg.FetchBlocks))
	add("L1-I", fmt.Sprintf("%dKB, %dB line, %d-way, LRU", cfg.L1I.SizeBytes>>10, cfg.L1I.LineBytes, cfg.L1I.Ways))
	add("BP", fmt.Sprintf("hybrid (%dK gshare & %dK bimodal)", cfg.Branch.GshareEntries>>10, cfg.Branch.BimodalEntries>>10))
	add("BTB", fmt.Sprintf("%dK entries", cfg.Branch.BTBEntries>>10))
	add("pipeline flush", fmt.Sprintf("%d cycles", cfg.FlushCycles))
	add("ROB", fmt.Sprintf("%d entries total, %d per thread", cfg.ROBEntries, cfg.ROBLimit[0]))
	add("LSQ", fmt.Sprintf("%d entries total, %d per thread", cfg.LSQEntries, cfg.LSQLimit[0]))
	add("L1-D", fmt.Sprintf("%dKB, %dB line, %d-way, %d MSHRs/thread, stride prefetcher (%d PCs)",
		cfg.L1D.SizeBytes>>10, cfg.L1D.LineBytes, cfg.L1D.Ways, cfg.MSHRPerThread, cfg.PrefetchPCs))
	add("FUs", "4 int add, 2 int mul, 3 FP, 2 LSU")
	add("LLC", "8MB NUCA, 16-way, partitioned; avg access 28 cycles")
	add("memory", fmt.Sprintf("%d cycles (75ns at 2.5GHz, incl. LLC miss)", cfg.MemLatency))
	t.Metrics = map[string]float64{
		"rob_entries": float64(cfg.ROBEntries),
		"lsq_entries": float64(cfg.LSQEntries),
		"mshr":        float64(cfg.MSHRPerThread),
	}
	return t
}

// Table3 reproduces Table III: the latency-sensitive workloads evaluated in
// colocation.
func Table3() Table {
	t := Table{
		ID:      "table3",
		Title:   "Latency-sensitive workloads used for evaluation (Table III)",
		Header:  []string{"name", "description", "code WS", "data WS", "chase frac"},
		Metrics: map[string]float64{},
	}
	svcs := workload.Services()
	for _, n := range workload.ServiceNames() {
		s := svcs[n]
		p := s.Profile
		t.Rows = append(t.Rows, []string{
			n, s.Description,
			fmt.Sprintf("%.1fMB", float64(p.CodeFootprint)/(1<<20)),
			fmt.Sprintf("%dMB", p.DataFootprint>>20),
			pct(p.ChaseFrac),
		})
		t.Metrics["chase_"+n] = p.ChaseFrac
	}
	return t
}
