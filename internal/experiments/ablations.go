package experiments

import (
	"fmt"

	"stretch/internal/colocate"
	"stretch/internal/core"
	"stretch/internal/fleet"
	"stretch/internal/monitor"
	"stretch/internal/sampling"
	"stretch/internal/stats"
	"stretch/internal/trace"
	"stretch/internal/workload"
)

// AblationLSQCoupling isolates the design choice of partitioning the LSQ in
// proportion to the ROB (§IV footnote): B-mode 56-136 with the coupled LSQ
// versus the same ROB skew with the LSQ left at the equal 32-32 split.
func AblationLSQCoupling(c *Context) (Table, error) {
	base, err := baselineGrid(c)
	if err != nil {
		return Table{}, err
	}
	coupled, err := skewGrid(c, BModeSkew)
	if err != nil {
		return Table{}, err
	}
	decoupledCfg := colocate.SkewConfig(BModeSkew)
	decoupledCfg.LSQLimit = [2]int{decoupledCfg.LSQEntries / 2, decoupledCfg.LSQEntries / 2}
	decoupled, err := c.Grid("skew-lsq-equal", func() (map[string]map[string]colocate.Pair, error) {
		return colocate.Grid(workload.ServiceNames(), c.BatchNames(), decoupledCfg, c.Spec())
	})
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:      "ablation-lsq",
		Title:   "Ablation: LSQ partitioned with the ROB vs kept equal (B-mode 56-136)",
		Header:  []string{"LSQ policy", "batch gain (mean)", "batch gain (max)"},
		Metrics: map[string]float64{},
	}
	gains := func(grid map[string]map[string]colocate.Pair) (mean, max float64) {
		var xs []float64
		for _, ls := range workload.ServiceNames() {
			for _, b := range c.BatchNames() {
				xs = append(xs, colocate.Speedup(grid[ls][b].BatchAgg.IPC, base[ls][b].BatchAgg.IPC))
			}
		}
		return stats.Mean(xs), stats.Max(xs)
	}
	cm, cx := gains(coupled)
	dm, dx := gains(decoupled)
	t.Rows = append(t.Rows,
		[]string{"proportional (Stretch)", pct(cm), pct(cx)},
		[]string{"equal 32-32", pct(dm), pct(dx)})
	t.Metrics["coupled_mean"] = cm
	t.Metrics["decoupled_mean"] = dm
	t.Notes = append(t.Notes,
		"an equal LSQ caps the batch thread's in-flight memory ops and forfeits part of the B-mode gain, which is why Stretch manages the LSQ in proportion to the ROB")
	return t, nil
}

// AblationMSHR sweeps the per-thread MSHR budget: the MLP ceiling that
// bounds how much a large window can help a memory-bound thread.
func AblationMSHR(c *Context) (Table, error) {
	budgets := []int{2, 5, 10, 16}
	names := []string{workload.Zeusmp, "libquantum", workload.WebSearch}
	t := Table{
		ID:    "ablation-mshr",
		Title: "Ablation: per-thread MSHR budget vs solo IPC (full 192-entry window)",
		Header: append([]string{"workload"}, func() []string {
			var h []string
			for _, b := range budgets {
				h = append(h, fmt.Sprintf("%d", b))
			}
			return h
		}()...),
		Metrics: map[string]float64{},
	}
	for _, n := range names {
		p, err := workload.Lookup(n)
		if err != nil {
			return Table{}, err
		}
		row := []string{n}
		for _, b := range budgets {
			cfg := core.Solo()
			cfg.MSHRPerThread = b
			a, err := sampling.Solo(cfg, p, c.Spec())
			if err != nil {
				return Table{}, err
			}
			row = append(row, f3(a.IPC))
			t.Metrics[fmt.Sprintf("%s_%d", n, b)] = a.IPC
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"high-MLP batch workloads scale with MSHRs while the chase-bound service does not — the asymmetry Stretch exploits exists beneath the ROB as well")
	return t, nil
}

// AblationPrefetcher toggles the stride prefetcher for the streaming batch
// tier and a latency-sensitive service.
func AblationPrefetcher(c *Context) (Table, error) {
	names := []string{"libquantum", "lbm", workload.Zeusmp, workload.WebSearch}
	t := Table{
		ID:      "ablation-prefetch",
		Title:   "Ablation: stride prefetcher on/off (solo full core)",
		Header:  []string{"workload", "IPC off", "IPC on", "speedup"},
		Metrics: map[string]float64{},
	}
	for _, n := range names {
		p, err := workload.Lookup(n)
		if err != nil {
			return Table{}, err
		}
		off := core.Solo()
		off.Prefetch = false
		on := core.Solo()
		aOff, err := sampling.Solo(off, p, c.Spec())
		if err != nil {
			return Table{}, err
		}
		aOn, err := sampling.Solo(on, p, c.Spec())
		if err != nil {
			return Table{}, err
		}
		sp := colocate.Speedup(aOn.IPC, aOff.IPC)
		t.Rows = append(t.Rows, []string{n, f3(aOff.IPC), f3(aOn.IPC), pct(sp)})
		t.Metrics["speedup_"+n] = sp
	}
	return t, nil
}

// AblationControllerSignal compares the tail-latency and queue-length
// controller signals over a synthetic diurnal day.
func AblationControllerSignal(c *Context) (Table, error) {
	study := fleet.Study{Trace: fleet.WebSearchTrace(), EngageBelow: 0.85, BatchSpeedupB: 0.13, LSSlowdownB: 0.07}
	t := Table{
		ID:      "ablation-signal",
		Title:   "Ablation: controller signal (tail latency vs queue length)",
		Header:  []string{"signal", "24h gain", "B-mode hours", "mode switches"},
		Metrics: map[string]float64{},
	}
	for _, sig := range []monitor.Signal{monitor.SignalTailLatency, monitor.SignalQueueLength} {
		cfg := monitor.DefaultConfig(100)
		cfg.Signal = sig
		ctl, err := monitor.New(cfg)
		if err != nil {
			return Table{}, err
		}
		res, err := study.RunWithController(ctl, 12, func(load float64, mode core.Mode) float64 {
			perf := 1.0
			if mode == core.ModeB {
				perf = 1 - study.LSSlowdownB
			}
			util := load / perf
			if util >= 0.999 {
				util = 0.999
			}
			return 100 * (0.30 + 0.55*util/(1-util)*0.12)
		})
		if err != nil {
			return Table{}, err
		}
		// The queue-length variant reads queue depth instead; derive a
		// deterministic proxy from load for the replay.
		name := "tail-latency"
		if sig == monitor.SignalQueueLength {
			name = "queue-length"
		}
		t.Rows = append(t.Rows, []string{name, pct(res.ClusterGain),
			fmt.Sprintf("%d", res.EngagedHours), fmt.Sprintf("%d", ctl.Switches())})
		t.Metrics["gain_"+name] = res.ClusterGain
		t.Metrics["switches_"+name] = float64(ctl.Switches())
	}
	return t, nil
}

// AblationFlushCost measures the cost of mode-change pipeline flushes by
// toggling the partition at varying periods during a colocated run —
// quantifying §IV-C's claim that infrequent, long-duration modes make the
// flush overhead negligible.
func AblationFlushCost(c *Context) (Table, error) {
	lp, err := workload.Lookup(workload.WebSearch)
	if err != nil {
		return Table{}, err
	}
	bp, err := workload.Lookup(workload.Zeusmp)
	if err != nil {
		return Table{}, err
	}
	periods := []int64{0, 100000, 10000, 1000}
	t := Table{
		ID:      "ablation-flush",
		Title:   "Ablation: mode-switch period vs throughput (web-search + zeusmp, B-mode)",
		Header:  []string{"switch period (cycles)", "combined IPC", "loss vs static"},
		Metrics: map[string]float64{},
	}
	run := func(period int64) (float64, error) {
		g0, err := trace.NewGenerator(lp, 101)
		if err != nil {
			return 0, err
		}
		g1, err := trace.NewGenerator(bp, 102)
		if err != nil {
			return 0, err
		}
		cc, err := core.New(colocate.SkewConfig(BModeSkew), g0, g1)
		if err != nil {
			return 0, err
		}
		total := int64(400000)
		if c.Scale == Quick {
			total = 150000
		}
		if period == 0 {
			cc.RunCycles(total)
		} else {
			// Re-program the same B-mode skew every period: the limit
			// values do not change, so any throughput difference from
			// the static run is pure mode-switch cost (squash, flush,
			// refill) — isolating the overhead from the mode mix.
			for done := int64(0); done < total; done += period {
				n := period
				if total-done < n {
					n = total - done
				}
				cc.RunCycles(n)
				if err := cc.SetPartition(BModeSkew); err != nil {
					return 0, err
				}
			}
		}
		return float64(cc.Committed(0)+cc.Committed(1)) / float64(cc.Cycle()), nil
	}
	base := 0.0
	for i, p := range periods {
		ipc, err := run(p)
		if err != nil {
			return Table{}, err
		}
		if i == 0 {
			base = ipc
		}
		label := "static (no switches)"
		if p > 0 {
			label = fmt.Sprintf("%d", p)
		}
		loss := 0.0
		if base > 0 {
			loss = 1 - ipc/base
		}
		t.Rows = append(t.Rows, []string{label, f3(ipc), pct(loss)})
		t.Metrics[fmt.Sprintf("loss_%d", p)] = loss
	}
	t.Notes = append(t.Notes,
		"diurnal-scale mode durations (minutes-hours ~ billions of cycles) make drain+flush costs invisible; only pathological sub-10K-cycle flapping shows measurable loss")
	return t, nil
}
