package experiments

import (
	"os"
	"strings"
	"testing"

	"stretch/internal/workload"
)

// The experiment tests run at Quick scale by default and assert the
// paper's qualitative shapes, not absolute numbers; set
// STRETCH_EXPERIMENTS_SCALE=full to run the full budgets. One shared
// context memoises the grids across the parallel tests (Context.Grid
// builds each grid exactly once).
var testCtx = NewContext(testScale())

func testScale() Scale {
	if os.Getenv("STRETCH_EXPERIMENTS_SCALE") == "full" {
		return Full
	}
	return Quick
}

func TestStaticTables(t *testing.T) {
	t.Parallel()
	t1 := Table1()
	if len(t1.Rows) != 4 {
		t.Fatalf("table1 rows = %d", len(t1.Rows))
	}
	if t1.Metrics["target_ms_"+workload.WebSearch] != 100 {
		t.Fatal("table1 Web Search target must be 100ms")
	}
	t2 := Table2()
	if t2.Metrics["rob_entries"] != 192 || t2.Metrics["lsq_entries"] != 64 {
		t.Fatal("table2 must read back 192/64 window sizes")
	}
	t3 := Table3()
	if len(t3.Rows) != 4 {
		t.Fatalf("table3 rows = %d", len(t3.Rows))
	}
	for _, tab := range []Table{t1, t2, t3} {
		if s := tab.String(); !strings.Contains(s, tab.ID) {
			t.Errorf("%s: String() missing id", tab.ID)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	t.Parallel()
	tab, err := Fig1(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Metrics["p99_growth"] < 1.8 {
		t.Errorf("p99 grows only %.2fx across the load range (paper: >2.5x)", tab.Metrics["p99_growth"])
	}
	if tab.Metrics["p99_high"] > 101 {
		t.Errorf("p99 at peak (%.1f) exceeds the 100ms target", tab.Metrics["p99_high"])
	}
	// The tail must grow faster than the average in absolute terms.
	if tab.Metrics["p99_high"]-tab.Metrics["p99_low"] <= tab.Metrics["avg_growth"]*20 {
		t.Error("queueing delay does not dominate the tail")
	}
}

func TestFig2Shape(t *testing.T) {
	t.Parallel()
	tab, err := Fig2(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range workload.ServiceNames() {
		s20 := tab.Metrics["slack20_"+svc]
		s80 := tab.Metrics["slack80_"+svc]
		if s20 < 0.40 {
			t.Errorf("%s: only %.0f%% slack at 20%% load (paper: 55-90%%)", svc, 100*s20)
		}
		if s80 > 0.35 {
			t.Errorf("%s: %.0f%% slack at 80%% load (paper: <=20%%)", svc, 100*s80)
		}
		if s20 < s80 {
			t.Errorf("%s: slack grows with load", svc)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	t.Parallel()
	tab, err := Fig3(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	ls, batch := tab.Metrics["ls_mean"], tab.Metrics["batch_mean"]
	if batch <= ls {
		t.Fatalf("batch slowdown (%.0f%%) must exceed LS slowdown (%.0f%%)", 100*batch, 100*ls)
	}
	if ls < 0.05 || ls > 0.30 {
		t.Errorf("LS mean slowdown %.0f%% outside plausible band (paper 14%%)", 100*ls)
	}
	if batch < 0.15 || batch > 0.45 {
		t.Errorf("batch mean slowdown %.0f%% outside plausible band (paper 24%%)", 100*batch)
	}
}

func TestFig4ROBDominates(t *testing.T) {
	t.Parallel()
	tab, err := Fig4(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	rob := tab.Metrics["batch_mean_ROB"]
	for _, other := range []string{"L1-I", "L1-D", "BTB+BP"} {
		if rob <= tab.Metrics["batch_mean_"+other] {
			t.Errorf("ROB (%.1f%%) must dominate %s (%.1f%%) for batch degradation",
				100*rob, other, 100*tab.Metrics["batch_mean_"+other])
		}
	}
	// Web Search's own degradation from any single resource stays modest.
	for _, r := range []string{"ROB", "L1-I", "L1-D", "BTB+BP"} {
		if tab.Metrics["ls_mean_"+r] > 0.20 {
			t.Errorf("Web Search loses %.0f%% from sharing %s alone (paper: ~within 12%%)",
				100*tab.Metrics["ls_mean_"+r], r)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	t.Parallel()
	tab, err := Fig6(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// LS nearly insensitive at 96; zeusmp strongly sensitive.
	for _, svc := range workload.ServiceNames() {
		if tab.Metrics[svc+"_96"] > 0.12 {
			t.Errorf("%s loses %.0f%% at 96 entries (paper: 5-10%%)", svc, 100*tab.Metrics[svc+"_96"])
		}
		if tab.Metrics[svc+"_48"] > 0.30 {
			t.Errorf("%s loses %.0f%% at 48 entries (paper: <=23%%)", svc, 100*tab.Metrics[svc+"_48"])
		}
	}
	z96 := tab.Metrics[workload.Zeusmp+"_96"]
	if z96 < 0.15 {
		t.Errorf("zeusmp loses only %.0f%% at 96 (paper: ~31%%)", 100*z96)
	}
	avg96 := tab.Metrics["batch_avg_96"]
	if avg96 < 0.10 || avg96 > 0.35 {
		t.Errorf("batch average at 96 = %.0f%% (paper: 19%%)", 100*avg96)
	}
	if tab.Metrics["batch_avg_160"] > avg96/1.5 {
		t.Errorf("batch slowdown at 160 (%.0f%%) should be far below 96 (%.0f%%)",
			100*tab.Metrics["batch_avg_160"], 100*avg96)
	}
}

func TestFig7MLPContrast(t *testing.T) {
	t.Parallel()
	tab, err := Fig7(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	ws := tab.Metrics["mlp2_"+workload.WebSearch]
	z := tab.Metrics["mlp2_"+workload.Zeusmp]
	if z < 3*ws {
		t.Errorf("zeusmp MLP>=2 (%.0f%%) must dwarf web-search (%.0f%%); paper 55%% vs 9%%",
			100*z, 100*ws)
	}
	if ws > 0.25 {
		t.Errorf("web-search exhibits MLP %.0f%% of the time (paper: 9%%)", 100*ws)
	}
}

func TestFig9BModeTradeoff(t *testing.T) {
	t.Parallel()
	tab, err := Fig9(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	bGain := tab.Metrics["B_56_batch_mean"]
	lsCost := -tab.Metrics["B_56_ls_mean"]
	if bGain < 0.08 || bGain > 0.25 {
		t.Errorf("B-mode 56-136 batch gain %.0f%% (paper: 13%%)", 100*bGain)
	}
	if lsCost < 0.02 || lsCost > 0.15 {
		t.Errorf("B-mode 56-136 LS cost %.0f%% (paper: 7%%)", 100*lsCost)
	}
	// Deeper skew gives more batch gain.
	if tab.Metrics["B_32_batch_mean"] <= bGain {
		t.Error("32-160 must out-gain 56-136 for batch")
	}
	// Q-mode: LS gains modestly, batch pays.
	if tab.Metrics["Q_136_ls_mean"] <= 0 {
		t.Error("Q-mode must speed up the LS thread")
	}
	if tab.Metrics["Q_136_batch_mean"] >= 0 {
		t.Error("Q-mode must cost the batch thread")
	}
	if tab.Metrics["Q_136_ls_mean"] >= bGain {
		t.Error("Q-mode LS gain should be smaller than B-mode batch gain (LS is window-insensitive)")
	}
}

func TestFig11DynamicSharing(t *testing.T) {
	t.Parallel()
	tab, err := Fig11(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	// Known divergence from the paper (see the table note): our model's
	// LS thread cannot clog the shared pool, so the batch side gains
	// modestly instead of losing 8%. The test pins the model's stable
	// behaviour: batch change bounded, LS essentially unharmed, and —
	// critically for the paper's argument — dynamic sharing buys far
	// less than Stretch's explicit B-mode repartitioning (fig12 checks
	// the comparison directly).
	batchGain := -tab.Metrics["batch_slow_mean"]
	if batchGain < -0.10 || batchGain > 0.20 {
		t.Errorf("dynamic-vs-equal batch change %.1f%% outside modelled band", 100*batchGain)
	}
	if ls := tab.Metrics["ls_gain_mean"]; ls < -0.08 || ls > 0.10 {
		t.Errorf("dynamic-vs-equal LS change %.1f%% outside modelled band", 100*ls)
	}
}

func TestFig12StretchDominatesThrottling(t *testing.T) {
	t.Parallel()
	tab, err := Fig12(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	sGain := tab.Metrics["stretch_batch_gain"]
	sCost := tab.Metrics["stretch_ls_slow"]
	// Aggressive throttling destroys LS performance for little batch gain.
	if tab.Metrics["ft16_ls_slow"] < 2*sCost {
		t.Errorf("1:16 throttling LS cost %.0f%% should far exceed Stretch's %.0f%%",
			100*tab.Metrics["ft16_ls_slow"], 100*sCost)
	}
	if tab.Metrics["ft16_batch_gain"] >= sGain {
		t.Errorf("1:16 throttling batch gain %.0f%% should trail Stretch's %.0f%%",
			100*tab.Metrics["ft16_batch_gain"], 100*sGain)
	}
	if tab.Metrics["ft4_batch_gain"] >= sGain {
		t.Errorf("1:4 throttling batch gain should trail Stretch")
	}
}

func TestFig13Additive(t *testing.T) {
	t.Parallel()
	tab, err := Fig13(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	ideal, st, both := tab.Metrics["ideal_mean"], tab.Metrics["stretch_mean"], tab.Metrics["both_mean"]
	if st <= ideal {
		t.Errorf("Stretch (%.0f%%) should beat ideal software scheduling (%.0f%%); paper 13%% vs 8%%",
			100*st, 100*ideal)
	}
	if both <= st || both <= ideal {
		t.Errorf("combined (%.0f%%) must beat either alone (%.0f%%, %.0f%%)",
			100*both, 100*ideal, 100*st)
	}
}

func TestFig14CaseStudies(t *testing.T) {
	t.Parallel()
	tab, err := Fig14(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	ws := tab.Metrics["gain_web-search-cluster"]
	yt := tab.Metrics["gain_youtube-cluster"]
	if ws < 0.02 || ws > 0.12 {
		t.Errorf("Web Search cluster gain %.1f%% (paper ~5%%)", 100*ws)
	}
	if yt < 0.05 || yt > 0.18 {
		t.Errorf("YouTube cluster gain %.1f%% (paper ~11%%)", 100*yt)
	}
	if yt <= ws {
		t.Error("YouTube (17 engageable hours) must gain more than Web Search (11)")
	}
	if tab.Metrics["hours_web-search-cluster"] != 11 || tab.Metrics["hours_youtube-cluster"] != 17 {
		t.Error("engageable hours must match §VI-D")
	}
	if tab.Metrics["ctl_switches_web-search-cluster"] > 20 {
		t.Error("controller flaps on the diurnal trace")
	}
}

func TestAblations(t *testing.T) {
	t.Parallel()
	lsq, err := AblationLSQCoupling(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if lsq.Metrics["coupled_mean"] <= lsq.Metrics["decoupled_mean"] {
		t.Error("proportional LSQ must out-gain the equal LSQ split")
	}

	mshr, err := AblationMSHR(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if mshr.Metrics["zeusmp_10"] <= mshr.Metrics["zeusmp_2"] {
		t.Error("zeusmp must scale with MSHRs")
	}
	wsGain := mshr.Metrics[workload.WebSearch+"_10"] / mshr.Metrics[workload.WebSearch+"_2"]
	zGain := mshr.Metrics["zeusmp_10"] / mshr.Metrics["zeusmp_2"]
	if zGain <= wsGain {
		t.Error("MSHR scaling must favour the high-MLP workload")
	}

	pf, err := AblationPrefetcher(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Metrics["speedup_libquantum"] <= 0 {
		t.Error("prefetcher must help the streaming benchmark")
	}

	fl, err := AblationFlushCost(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Metrics["loss_100000"] > 0.05 {
		t.Errorf("infrequent mode switches cost %.1f%% — should be negligible", 100*fl.Metrics["loss_100000"])
	}
	if fl.Metrics["loss_1000"] <= fl.Metrics["loss_100000"] {
		t.Error("pathological flapping must cost more than infrequent switching")
	}

	sig, err := AblationControllerSignal(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Metrics["gain_tail-latency"] <= 0 {
		t.Error("tail-latency controller produced no gain")
	}
}

func TestByIDAndAll(t *testing.T) {
	t.Parallel()
	if len(All()) < 19 {
		t.Fatalf("only %d experiments registered", len(All()))
	}
	if _, err := ByID("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	// Scales and context helpers.
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("scale strings")
	}
	if len(NewContext(Full).BatchNames()) != 29 {
		t.Fatal("full scale must use all 29 benchmarks")
	}
	if len(NewContext(Quick).BatchNames()) >= 29 {
		t.Fatal("quick scale must subset")
	}
}

func TestFig10SpreadAndSorting(t *testing.T) {
	t.Parallel()
	tab, err := Fig10(testCtx)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Metrics["mean"] < 0.05 || tab.Metrics["mean"] > 0.25 {
		t.Errorf("B-mode mean gain %.0f%% outside band (paper 13%%)", 100*tab.Metrics["mean"])
	}
	if tab.Metrics["max"] <= tab.Metrics["mean"] {
		t.Error("max gain must exceed the mean")
	}
	if tab.Metrics["min"] < -0.05 {
		t.Errorf("no benchmark should lose much under B-mode (min %.0f%%)", 100*tab.Metrics["min"])
	}
	// Rows are sorted descending per service column.
	if len(tab.Rows) != len(testCtx.BatchNames()) {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestExperimentDeterminism(t *testing.T) {
	t.Parallel()
	a, err := Fig7(NewContext(Quick))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(NewContext(Quick))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s differs across identical runs: %v vs %v", k, v, b.Metrics[k])
		}
	}
}
