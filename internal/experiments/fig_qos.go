package experiments

import (
	"fmt"

	"stretch/internal/queueing"
	"stretch/internal/slack"
	"stretch/internal/workload"
)

// queueConfig converts a workload.Service to a queueing.Config.
func queueConfig(s workload.Service) queueing.Config {
	return queueing.Config{
		Workers:       s.Workers,
		MeanServiceMs: s.MeanServiceMs,
		ServiceCV:     s.ServiceCV,
		BurstProb:     s.BurstProb,
		BurstLen:      s.BurstLen,
		QoSQuantile:   s.QoSQuantile,
		QoSTargetMs:   s.QoSTargetMs,
	}
}

// Fig1 reproduces Figure 1: Web Search average/95th/99th-percentile latency
// as a function of load. The paper's headline shape: the average climbs
// slowly (+43% low→high) while the 99th percentile grows by over 2.5×.
func Fig1(c *Context) (Table, error) {
	svc := workload.Services()[workload.WebSearch]
	qc := queueConfig(svc)
	n := c.QueueRequests()

	peak, err := queueing.PeakLoad(qc, n, 7)
	if err != nil {
		return Table{}, err
	}
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	rs, err := queueing.LoadCurve(qc, peak, loads, n, 7)
	if err != nil {
		return Table{}, err
	}

	t := Table{
		ID:     "fig1",
		Title:  "Web Search latency vs load (Fig. 1); QoS target 100ms @ p99",
		Header: []string{"load", "avg (ms)", "p95 (ms)", "p99 (ms)", "meets QoS"},
	}
	for i, r := range rs {
		t.Rows = append(t.Rows, []string{
			pct(loads[i]), fmt.Sprintf("%.1f", r.MeanMs),
			fmt.Sprintf("%.1f", r.P95Ms), fmt.Sprintf("%.1f", r.P99Ms),
			fmt.Sprintf("%v", r.MeetsQoS),
		})
	}
	lo, hi := rs[0], rs[len(rs)-1]
	t.Metrics = map[string]float64{
		"peak_rps":   peak,
		"avg_growth": hi.MeanMs/lo.MeanMs - 1,
		"p99_growth": hi.P99Ms / lo.P99Ms,
		"p99_low":    lo.P99Ms,
		"p99_high":   hi.P99Ms,
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("avg grows %.0f%%, p99 grows %.1fx from lowest to highest load (paper: 43%% and >2.5x)",
			100*t.Metrics["avg_growth"], t.Metrics["p99_growth"]))
	return t, nil
}

// Fig2 reproduces Figure 2: the fraction of full single-thread performance
// each service needs to keep meeting QoS, versus load. Slack is the
// headroom below 100%.
func Fig2(c *Context) (Table, error) {
	n := c.QueueRequests() / 2 // each point runs a bisection of simulations
	resolution := 0.05
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

	t := Table{
		ID:    "fig2",
		Title: "Required performance to meet QoS vs load (Fig. 2)",
		Header: append([]string{"service"}, func() []string {
			h := []string{}
			for _, l := range loads {
				h = append(h, pct(l))
			}
			return h
		}()...),
		Metrics: map[string]float64{},
	}
	svcs := workload.Services()
	for _, name := range workload.ServiceNames() {
		svc := svcs[name]
		qc := queueConfig(svc)
		peak, err := queueing.PeakLoad(qc, n, 11)
		if err != nil {
			return Table{}, err
		}
		pts, err := slack.Curve(qc, peak, loads, n, resolution, 11)
		if err != nil {
			return Table{}, err
		}
		row := []string{name}
		for _, p := range pts {
			row = append(row, pct(p.RequiredPerf))
		}
		t.Rows = append(t.Rows, row)
		t.Metrics["slack20_"+name] = pts[1].Slack
		t.Metrics["slack50_"+name] = pts[4].Slack
		t.Metrics["slack80_"+name] = pts[7].Slack
	}
	t.Notes = append(t.Notes,
		"paper: at 20% load 55-90% of performance can be sacrificed; at 50% load 30-70%; at 80% load at most ~20%")
	return t, nil
}
