// Package experiments reproduces every table and figure of the paper's
// characterisation (§II–III) and evaluation (§VI). Each artifact has a
// constructor returning a printable Table plus a set of named headline
// metrics that the test suite asserts qualitative shapes on and
// EXPERIMENTS.md records against the paper's numbers.
//
// Invariant: every artifact is a pure function of its Scale and the
// built-in seeds — regenerating an artifact is bit-reproducible, and the
// shared memoised grids in Context only deduplicate work across artifacts,
// never alter any cell.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"stretch/internal/colocate"
	"stretch/internal/sampling"
	"stretch/internal/workload"
)

// Scale selects experiment fidelity.
type Scale int

// Scales.
const (
	// Quick uses a representative batch subset and short samples; used
	// by the test suite.
	Quick Scale = iota
	// Full uses all 29 batch benchmarks and the standard sample budget;
	// used by the benchmark harness and the CLI.
	Full
)

// String names the scale.
func (s Scale) String() string {
	if s == Quick {
		return "quick"
	}
	return "full"
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Metrics holds headline numbers ("batch_gain_mean", ...) consumed
	// by tests and EXPERIMENTS.md.
	Metrics map[string]float64
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a fraction as a percentage cell.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// f3 formats a float cell.
func f3(f float64) string { return fmt.Sprintf("%.3f", f) }

// Context memoises expensive shared results (solo baselines, grids) across
// the experiments of one run. Concurrent experiments share a single build
// per grid key: the first caller builds, the rest wait.
type Context struct {
	Scale Scale

	mu    sync.Mutex
	solo  map[string]float64
	grids map[string]*gridEntry
}

// gridEntry holds one memoised grid; once guarantees a single build even
// under concurrent callers.
type gridEntry struct {
	once sync.Once
	g    map[string]map[string]colocate.Pair
	err  error
}

// NewContext builds a context at the given scale.
func NewContext(sc Scale) *Context {
	return &Context{
		Scale: sc,
		solo:  make(map[string]float64),
		grids: make(map[string]*gridEntry),
	}
}

// Spec returns the sampling spec for the context's scale.
func (c *Context) Spec() sampling.Spec {
	if c.Scale == Quick {
		return sampling.Quick()
	}
	return sampling.Standard()
}

// BatchNames returns the batch suite at the context's scale: all 29 at
// Full, a tier-spanning subset of 10 at Quick.
func (c *Context) BatchNames() []string {
	if c.Scale == Full {
		return workload.BatchNames()
	}
	return []string{
		"zeusmp", "libquantum", "lbm", "mcf", "bwaves", // memory-bound
		"gcc", "omnetpp", "hmmer", // moderate
		"povray", "sjeng", // compute-bound
	}
}

// QueueRequests returns the queueing-simulation request budget.
func (c *Context) QueueRequests() int {
	if c.Scale == Quick {
		return 20000
	}
	return 80000
}

// SoloIPC returns the memoised solo full-core IPC for the named workloads.
func (c *Context) SoloIPC(names ...string) (map[string]float64, error) {
	c.mu.Lock()
	var missing []string
	for _, n := range names {
		if _, ok := c.solo[n]; !ok {
			missing = append(missing, n)
		}
	}
	c.mu.Unlock()
	if len(missing) > 0 {
		m, err := colocate.SoloIPC(missing, c.Spec())
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		for k, v := range m {
			c.solo[k] = v
		}
		c.mu.Unlock()
	}
	out := make(map[string]float64, len(names))
	c.mu.Lock()
	for _, n := range names {
		out[n] = c.solo[n]
	}
	c.mu.Unlock()
	return out, nil
}

// Grid returns the memoised colocation grid for a configuration key. The
// builder runs at most once per key, even under concurrent callers.
func (c *Context) Grid(key string, build func() (map[string]map[string]colocate.Pair, error)) (map[string]map[string]colocate.Pair, error) {
	c.mu.Lock()
	e, ok := c.grids[key]
	if !ok {
		e = &gridEntry{}
		c.grids[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g, e.err = build() })
	return e.g, e.err
}

// Named couples an experiment id with its runner, for the CLI and benches.
type Named struct {
	ID  string
	Run func(*Context) (Table, error)
}

// All lists every experiment in paper order.
func All() []Named {
	return []Named{
		{"table1", func(c *Context) (Table, error) { return Table1(), nil }},
		{"table2", func(c *Context) (Table, error) { return Table2(), nil }},
		{"table3", func(c *Context) (Table, error) { return Table3(), nil }},
		{"fig1", Fig1},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"ablation-lsq", AblationLSQCoupling},
		{"ablation-mshr", AblationMSHR},
		{"ablation-prefetch", AblationPrefetcher},
		{"ablation-signal", AblationControllerSignal},
		{"ablation-flush", AblationFlushCost},
	}
}

// ByID returns the named experiment or an error.
func ByID(id string) (Named, error) {
	for _, n := range All() {
		if n.ID == id {
			return n, nil
		}
	}
	return Named{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
