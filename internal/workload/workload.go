// Package workload catalogues the 33 workloads the paper evaluates: the four
// CloudSuite latency-sensitive services (Tables I and III) and the 29 SPEC
// CPU2006 batch benchmarks, each expressed as a trace.Profile plus, for the
// services, the request-level parameters driving the queueing model.
//
// Profile parameters follow the public characterisations the paper cites
// (CloudSuite / "Clearing the Clouds" for the services; standard SPEC
// memory-behaviour studies for the batch suite): services get multi-MB code
// footprints, pointer-dependent loads and low MLP; batch benchmarks span
// compute-bound (povray, gamess) to memory-streaming with high MLP
// (zeusmp, bwaves, libquantum, lbm). Absolute rates are calibrated so the
// modelled core reproduces the paper's relative sensitivities, not any
// particular machine's absolute IPC.
//
// Invariant: the catalogue is fixed at build time and read-only at
// runtime — lookups never mutate shared state, so concurrent experiments
// can share it freely.
package workload

import (
	"fmt"
	"sort"

	"stretch/internal/trace"
)

// Service describes one latency-sensitive workload: its µarch profile and
// the request-level behaviour used by the queueing and slack studies.
type Service struct {
	Profile trace.Profile

	// Description matches Table I / Table III.
	Description string
	// QoSMetric names the constrained statistic, e.g. "99th percentile".
	QoSMetric string
	// QoSQuantile is the constrained quantile (0.99, 0.95, ...).
	QoSQuantile float64
	// QoSTargetMs is the latency limit in milliseconds.
	QoSTargetMs float64
	// Workers is the number of concurrent request-serving threads.
	Workers int
	// MeanServiceMs is the mean per-request service time at full
	// single-thread performance.
	MeanServiceMs float64
	// ServiceCV is the coefficient of variation of service time.
	ServiceCV float64
	// BurstProb is the probability an arrival is a burst head bringing
	// BurstLen-1 immediate followers (bursty request arrival, §II).
	BurstProb float64
	// BurstLen is the mean burst length.
	BurstLen float64
}

// Names of the four latency-sensitive services.
const (
	DataServing    = "data-serving"
	WebServing     = "web-serving"
	WebSearch      = "web-search"
	MediaStreaming = "media-streaming"
)

// Zeusmp is the high-MLP batch exemplar used in Figs. 6 and 7.
const Zeusmp = "zeusmp"

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
)

// lsProfile builds a scale-out-service profile: branchy integer code with a
// multi-MB instruction footprint, dependent (pointer-chasing) data accesses
// and essentially no exploitable MLP.
func lsProfile(name string, codeMB float64, dataMB int64, hotCodeProb, chase, stream float64) trace.Profile {
	return trace.Profile{
		Name:          name,
		Class:         trace.LatencySensitive,
		Mix:           trace.Mix{Load: 0.24, Store: 0.08, Branch: 0.08, FP: 0.01, Mul: 0.02},
		CodeFootprint: int64(codeMB * float64(mb)),
		HotCodeBytes:  40 * kb,
		HotCodeProb:   hotCodeProb,
		BlockLen:      7,
		DataFootprint: dataMB * mb,
		HotDataBytes:  24 * kb,
		WarmDataBytes: 2 * mb,
		HotDataProb:   0.84,
		WarmDataProb:  0.15,
		StreamFrac:    stream,
		StreamSites:   2,
		ChaseFrac:     chase,
		DepProb:       0.75,
		DepMean:       5,
		DepTwoFrac:    0.30,
		BranchNoise:   0.050,
		TakenBias:     0.55,
	}
}

// Services returns the four latency-sensitive services keyed by name.
func Services() map[string]Service {
	return map[string]Service{
		DataServing: {
			Profile:       lsProfile(DataServing, 1.2, 24, 0.84, 0.55, 0.03),
			Description:   "Apache Cassandra, 95:5 read-to-write",
			QoSMetric:     "99th percentile",
			QoSQuantile:   0.99,
			QoSTargetMs:   20,
			Workers:       15,
			MeanServiceMs: 3.2,
			ServiceCV:     0.4,
			BurstProb:     0.005,
			BurstLen:      18,
		},
		WebServing: {
			Profile:       lsProfile(WebServing, 1.6, 32, 0.82, 0.48, 0.05),
			Description:   "Elgg/Nginx front-end with MySQL back-end",
			QoSMetric:     "95th percentile",
			QoSQuantile:   0.95,
			QoSTargetMs:   1000,
			Workers:       10,
			MeanServiceMs: 170,
			ServiceCV:     0.5,
			BurstProb:     0.005,
			BurstLen:      12,
		},
		WebSearch: {
			Profile:       lsProfile(WebSearch, 1.4, 48, 0.85, 0.50, 0.04),
			Description:   "Nutch/Lucene index serving",
			QoSMetric:     "99th percentile",
			QoSQuantile:   0.99,
			QoSTargetMs:   100,
			Workers:       16,
			MeanServiceMs: 17,
			ServiceCV:     0.4,
			BurstProb:     0.005,
			BurstLen:      20,
		},
		MediaStreaming: {
			Profile:       lsProfile(MediaStreaming, 0.9, 40, 0.88, 0.42, 0.18),
			Description:   "Darwin/Nginx streaming at high bitrates",
			QoSMetric:     "timeout",
			QoSQuantile:   0.99,
			QoSTargetMs:   2000,
			Workers:       12,
			MeanServiceMs: 60,
			ServiceCV:     0.5,
			BurstProb:     0.004,
			BurstLen:      18,
		},
	}
}

// ServiceNames returns the service names in the paper's presentation order.
func ServiceNames() []string {
	return []string{DataServing, WebServing, WebSearch, MediaStreaming}
}

// batchSpec concentrates the knobs that set a batch benchmark's ROB
// sensitivity: coldProb×(1-stream-chase)×loadFrac sets the independent
// miss density a large window can overlap, chase serialises, and
// depMean/depProb set base ILP.
type batchSpec struct {
	name     string
	fp       bool    // FP-heavy mix
	codeKB   int64   // cold code footprint
	dataMB   int64   // cold data footprint
	hotP     float64 // hot-tier probability for scatter/chase accesses
	warmP    float64 // warm (LLC) tier probability
	stream   float64 // streaming fraction of loads/stores
	sites    int     // concurrent stream walkers
	chase    float64 // pointer-chase fraction of loads
	depMean  float64
	depProb  float64
	brNoise  float64
	storeFix float64 // override store fraction (0 = default)
}

func (s batchSpec) profile() trace.Profile {
	mix := trace.Mix{Load: 0.22, Store: 0.07, Branch: 0.06, FP: 0.00, Mul: 0.02}
	if s.fp {
		mix = trace.Mix{Load: 0.24, Store: 0.06, Branch: 0.02, FP: 0.30, Mul: 0.01}
	}
	if s.storeFix > 0 {
		mix.Store = s.storeFix
	}
	sites := s.sites
	if sites == 0 {
		sites = 4
	}
	return trace.Profile{
		Name:          s.name,
		Class:         trace.Batch,
		Mix:           mix,
		CodeFootprint: s.codeKB * kb,
		HotCodeBytes:  16 * kb,
		HotCodeProb:   0.97,
		BlockLen:      9,
		DataFootprint: s.dataMB * mb,
		HotDataBytes:  24 * kb,
		WarmDataBytes: 2 * mb,
		HotDataProb:   s.hotP,
		WarmDataProb:  s.warmP,
		StreamFrac:    s.stream,
		StreamSites:   sites,
		ChaseFrac:     s.chase,
		DepProb:       s.depProb,
		DepMean:       s.depMean,
		DepTwoFrac:    0.25,
		BranchNoise:   s.brNoise,
		TakenBias:     0.5,
	}
}

// batchSpecs is the 29-benchmark SPEC CPU2006 stand-in suite.
//
// Grouping intent (cold scatter density drives ROB sensitivity):
//   - very ROB-sensitive, memory-bound with MLP: zeusmp, bwaves, leslie3d,
//     GemsFDTD, libquantum, milc, mcf, lbm, soplex, cactusADM
//   - moderately sensitive: sphinx3, wrf, omnetpp, xalancbmk, astar, gcc,
//     bzip2, hmmer, h264ref, dealII, gromacs, perlbench
//   - compute-bound, insensitive: gamess, povray, namd, tonto, calculix,
//     gobmk, sjeng
var batchSpecs = []batchSpec{
	{name: "astar", codeKB: 48, dataMB: 24, hotP: 0.82, warmP: 0.10, stream: 0.02, chase: 0.25, depMean: 5, depProb: 0.70, brNoise: 0.055},
	{name: "bwaves", fp: true, codeKB: 48, dataMB: 96, hotP: 0.62, warmP: 0.16, stream: 0.30, sites: 6, chase: 0, depMean: 9, depProb: 0.60, brNoise: 0.004},
	{name: "bzip2", codeKB: 64, dataMB: 10, hotP: 0.86, warmP: 0.09, stream: 0.18, chase: 0.05, depMean: 8, depProb: 0.60, brNoise: 0.045},
	{name: "cactusADM", fp: true, codeKB: 80, dataMB: 64, hotP: 0.72, warmP: 0.14, stream: 0.25, sites: 6, chase: 0, depMean: 8, depProb: 0.62, brNoise: 0.003},
	{name: "calculix", fp: true, codeKB: 96, dataMB: 2, hotP: 0.94, warmP: 0.02, stream: 0.08, chase: 0.02, depMean: 11, depProb: 0.52, brNoise: 0.010},
	{name: "dealII", fp: true, codeKB: 160, dataMB: 12, hotP: 0.88, warmP: 0.08, stream: 0.12, chase: 0.08, depMean: 8, depProb: 0.60, brNoise: 0.020},
	{name: "gamess", fp: true, codeKB: 128, dataMB: 1, hotP: 0.96, warmP: 0.012, stream: 0.03, chase: 0.02, depMean: 11, depProb: 0.52, brNoise: 0.012},
	{name: "gcc", codeKB: 512, dataMB: 20, hotP: 0.85, warmP: 0.09, stream: 0.08, chase: 0.12, depMean: 5, depProb: 0.70, brNoise: 0.040},
	{name: "GemsFDTD", fp: true, codeKB: 64, dataMB: 96, hotP: 0.66, warmP: 0.16, stream: 0.30, sites: 8, chase: 0, depMean: 8.5, depProb: 0.60, brNoise: 0.003},
	{name: "gobmk", codeKB: 192, dataMB: 2, hotP: 0.94, warmP: 0.02, stream: 0.02, chase: 0.06, depMean: 8, depProb: 0.60, brNoise: 0.080},
	{name: "gromacs", fp: true, codeKB: 96, dataMB: 4, hotP: 0.92, warmP: 0.02, stream: 0.08, chase: 0.02, depMean: 11, depProb: 0.52, brNoise: 0.010},
	{name: "h264ref", codeKB: 128, dataMB: 6, hotP: 0.89, warmP: 0.07, stream: 0.25, chase: 0.03, depMean: 8, depProb: 0.60, brNoise: 0.025},
	{name: "hmmer", codeKB: 48, dataMB: 4, hotP: 0.90, warmP: 0.03, stream: 0.20, chase: 0.01, depMean: 11, depProb: 0.52, brNoise: 0.008},
	{name: "lbm", fp: true, codeKB: 32, dataMB: 128, hotP: 0.54, warmP: 0.14, stream: 0.60, sites: 12, chase: 0, depMean: 9, depProb: 0.58, brNoise: 0.002, storeFix: 0.22},
	{name: "leslie3d", fp: true, codeKB: 64, dataMB: 80, hotP: 0.68, warmP: 0.15, stream: 0.28, sites: 6, chase: 0, depMean: 8.5, depProb: 0.60, brNoise: 0.004},
	{name: "libquantum", codeKB: 24, dataMB: 64, hotP: 0.58, warmP: 0.16, stream: 0.55, sites: 4, chase: 0, depMean: 10, depProb: 0.55, brNoise: 0.002},
	{name: "mcf", codeKB: 32, dataMB: 160, hotP: 0.62, warmP: 0.16, stream: 0.02, chase: 0.12, depMean: 7, depProb: 0.62, brNoise: 0.050},
	{name: "milc", fp: true, codeKB: 48, dataMB: 96, hotP: 0.68, warmP: 0.15, stream: 0.28, sites: 6, chase: 0, depMean: 8, depProb: 0.60, brNoise: 0.004},
	{name: "namd", fp: true, codeKB: 96, dataMB: 3, hotP: 0.95, warmP: 0.015, stream: 0.06, chase: 0.02, depMean: 11, depProb: 0.52, brNoise: 0.008},
	{name: "omnetpp", codeKB: 256, dataMB: 40, hotP: 0.80, warmP: 0.12, stream: 0.02, chase: 0.22, depMean: 5, depProb: 0.70, brNoise: 0.045},
	{name: "perlbench", codeKB: 384, dataMB: 12, hotP: 0.89, warmP: 0.07, stream: 0.05, chase: 0.12, depMean: 5, depProb: 0.72, brNoise: 0.040},
	{name: "povray", fp: true, codeKB: 144, dataMB: 1, hotP: 0.96, warmP: 0.012, stream: 0.02, chase: 0.03, depMean: 11, depProb: 0.52, brNoise: 0.020},
	{name: "sjeng", codeKB: 96, dataMB: 2, hotP: 0.94, warmP: 0.02, stream: 0.02, chase: 0.05, depMean: 8, depProb: 0.60, brNoise: 0.075},
	{name: "soplex", fp: true, codeKB: 128, dataMB: 64, hotP: 0.72, warmP: 0.14, stream: 0.20, sites: 4, chase: 0.06, depMean: 7, depProb: 0.64, brNoise: 0.015},
	{name: "sphinx3", fp: true, codeKB: 96, dataMB: 32, hotP: 0.78, warmP: 0.12, stream: 0.25, sites: 4, chase: 0.03, depMean: 7, depProb: 0.64, brNoise: 0.015},
	{name: "tonto", fp: true, codeKB: 160, dataMB: 2, hotP: 0.94, warmP: 0.02, stream: 0.05, chase: 0.02, depMean: 11, depProb: 0.52, brNoise: 0.012},
	{name: "wrf", fp: true, codeKB: 128, dataMB: 48, hotP: 0.76, warmP: 0.13, stream: 0.25, sites: 6, chase: 0.01, depMean: 7.5, depProb: 0.62, brNoise: 0.006},
	{name: "xalancbmk", codeKB: 320, dataMB: 24, hotP: 0.83, warmP: 0.10, stream: 0.04, chase: 0.18, depMean: 5, depProb: 0.70, brNoise: 0.045},
	{name: Zeusmp, fp: true, codeKB: 64, dataMB: 96, hotP: 0.60, warmP: 0.16, stream: 0.30, sites: 8, chase: 0, depMean: 9.5, depProb: 0.58, brNoise: 0.003},
}

// BatchProfiles returns the 29 SPEC CPU2006 stand-in profiles keyed by name.
func BatchProfiles() map[string]trace.Profile {
	m := make(map[string]trace.Profile, len(batchSpecs))
	for _, s := range batchSpecs {
		m[s.name] = s.profile()
	}
	return m
}

// BatchNames returns the 29 batch benchmark names in sorted order.
func BatchNames() []string {
	names := make([]string, 0, len(batchSpecs))
	for _, s := range batchSpecs {
		names = append(names, s.name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the profile for any known workload name.
func Lookup(name string) (trace.Profile, error) {
	if s, ok := Services()[name]; ok {
		return s.Profile, nil
	}
	if p, ok := BatchProfiles()[name]; ok {
		return p, nil
	}
	return trace.Profile{}, fmt.Errorf("workload: unknown workload %q", name)
}

// All returns every workload profile keyed by name.
func All() map[string]trace.Profile {
	m := make(map[string]trace.Profile)
	for n, s := range Services() {
		m[n] = s.Profile
	}
	for n, p := range BatchProfiles() {
		m[n] = p
	}
	return m
}
