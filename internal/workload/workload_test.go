package workload

import (
	"testing"

	"stretch/internal/trace"
)

func TestAllProfilesValidate(t *testing.T) {
	for name, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile %s has mismatched name %q", name, p.Name)
		}
	}
}

func TestSuiteSizes(t *testing.T) {
	if n := len(BatchProfiles()); n != 29 {
		t.Fatalf("batch suite has %d benchmarks, want 29 (SPEC CPU2006)", n)
	}
	if n := len(Services()); n != 4 {
		t.Fatalf("service set has %d entries, want 4", n)
	}
	if n := len(BatchNames()); n != 29 {
		t.Fatalf("BatchNames has %d entries", n)
	}
	if n := len(All()); n != 33 {
		t.Fatalf("All has %d entries, want 33", n)
	}
}

func TestClasses(t *testing.T) {
	for _, n := range ServiceNames() {
		p, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Class != trace.LatencySensitive {
			t.Errorf("%s not marked latency-sensitive", n)
		}
	}
	for _, n := range BatchNames() {
		p, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Class != trace.Batch {
			t.Errorf("%s not marked batch", n)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-workload"); err == nil {
		t.Fatal("Lookup accepted an unknown name")
	}
}

func TestZeusmpPresent(t *testing.T) {
	p, err := Lookup(Zeusmp)
	if err != nil {
		t.Fatal(err)
	}
	if p.ChaseFrac != 0 {
		t.Error("zeusmp must not pointer-chase (it is the high-MLP exemplar)")
	}
	if p.StreamFrac <= 0 {
		t.Error("zeusmp must stream")
	}
}

func TestServiceQoSFields(t *testing.T) {
	for n, s := range Services() {
		if s.QoSTargetMs <= 0 {
			t.Errorf("%s: non-positive QoS target", n)
		}
		if s.QoSQuantile <= 0 || s.QoSQuantile >= 1 {
			t.Errorf("%s: bad quantile %v", n, s.QoSQuantile)
		}
		if s.Workers <= 0 || s.MeanServiceMs <= 0 || s.ServiceCV < 0 {
			t.Errorf("%s: bad queueing parameters", n)
		}
		if s.MeanServiceMs >= s.QoSTargetMs {
			t.Errorf("%s: mean service %vms exceeds QoS target %vms", n, s.MeanServiceMs, s.QoSTargetMs)
		}
	}
	ws := Services()[WebSearch]
	if ws.QoSTargetMs != 100 || ws.QoSQuantile != 0.99 {
		t.Error("Web Search target must be 100ms @ p99 (Table I)")
	}
	ds := Services()[DataServing]
	if ds.QoSTargetMs != 20 {
		t.Error("Data Serving target must be 20ms (Table I)")
	}
}

func TestServicesAreChaseHeavyAndBigCode(t *testing.T) {
	for _, n := range ServiceNames() {
		p, _ := Lookup(n)
		if p.ChaseFrac < 0.3 {
			t.Errorf("%s: chase fraction %v too low for a scale-out service", n, p.ChaseFrac)
		}
		if p.CodeFootprint < 512<<10 {
			t.Errorf("%s: code footprint %d too small for a scale-out service", n, p.CodeFootprint)
		}
	}
}

func TestBatchTiersSpanSensitivity(t *testing.T) {
	// The suite must include clearly memory-bound and clearly compute-
	// bound members for the spread of Figs. 6 and 10 to exist.
	prof := BatchProfiles()
	cold := func(p trace.Profile) float64 { return 1 - p.HotDataProb - p.WarmDataProb }
	if cold(prof["zeusmp"]) < 0.1 {
		t.Error("zeusmp must have substantial cold accesses")
	}
	if cold(prof["povray"]) > 0.05 {
		t.Error("povray must be nearly cache-resident")
	}
	if cold(prof["gamess"]) > 0.05 {
		t.Error("gamess must be nearly cache-resident")
	}
}
