// Package rng provides small, fast, deterministic pseudo-random number
// streams for the simulator.
//
// Every stochastic component of the simulation (trace generation, arrival
// processes, sampling offsets) draws from its own Stream seeded from a
// user-visible experiment seed, so that repeated runs are bit-identical and
// independent components never perturb one another's sequences.
package rng

import "math"

// Stream is a splitmix64 generator. The zero value is a valid stream seeded
// with zero; use New to derive well-separated streams.
type Stream struct {
	state uint64
}

// New returns a stream seeded from seed. Distinct seeds give statistically
// independent sequences.
func New(seed uint64) *Stream {
	return &Stream{state: seed}
}

// Derive returns a new stream whose sequence is independent of s for any
// pair (s, label). It does not advance s.
func (s *Stream) Derive(label uint64) *Stream {
	return New(mix(s.state ^ mix(label^0x9e3779b97f4a7c15)))
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	u := s.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// FillArrivals fills gaps[i] with an Exp(mean) draw and heads[i] with a
// Bernoulli(p) draw, interleaved pairwise — exactly the draw sequence of a
// sequential caller alternating Exp and Bernoulli per arrival, so batched
// consumers (the queueing simulator's arrival loop) stay bit-identical to
// the unbatched loop. gaps and heads must have the same length.
func (s *Stream) FillArrivals(gaps []float64, heads []bool, mean, p float64) {
	for i := range gaps {
		u := s.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		gaps[i] = -mean * math.Log(1-u)
		heads[i] = s.Float64() < p
	}
}

// Geometric returns a geometrically distributed integer >= 1 with the given
// mean (mean must be >= 1).
func (s *Stream) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := s.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	n := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// LogNormal returns a log-normally distributed value parameterised by the
// mean and coefficient of variation of the resulting distribution.
func (s *Stream) LogNormal(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*s.Normal())
}

// Gamma returns a gamma-distributed value parameterised by the mean and
// coefficient of variation of the resulting distribution (shape 1/cv²,
// scale mean·cv²). A zero cv degenerates to the mean. Gamma multipliers
// with mean 1 are the classic overdispersion mixture for arrival counts:
// Poisson(mean·Gamma(1, cv)) has the burstiness a plain Poisson misses.
func (s *Stream) Gamma(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	k := 1 / (cv * cv)
	return mean * cv * cv * s.gammaShape(k)
}

// gammaShape draws a standard gamma variate with shape k (scale 1) using
// Marsaglia-Tsang squeeze rejection; shapes below 1 are boosted through
// G(k) = G(k+1)·U^(1/k).
func (s *Stream) gammaShape(k float64) float64 {
	if k < 1 {
		u := s.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		return s.gammaShape(k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}

// Weibull returns a Weibull-distributed value with the given mean and
// shape k (scale mean/Γ(1+1/k)): k = 1 is exponential, k < 1 heavy-tailed
// and bursty, k > 1 more regular than Poisson. Inverse-CDF sampling, one
// uniform draw per variate.
func (s *Stream) Weibull(mean, shape float64) float64 {
	if mean <= 0 || shape <= 0 {
		return 0
	}
	scale := mean / math.Gamma(1+1/shape)
	u := s.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// Poisson returns a Poisson-distributed count with the given mean. Small
// means use Knuth's product method; large means fall back to a (rounded,
// clamped) normal approximation, which is accurate to well under a percent
// for the window populations the load generator draws.
func (s *Stream) Poisson(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		limit := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p < limit {
				return float64(k)
			}
			k++
		}
	}
	n := math.Round(mean + math.Sqrt(mean)*s.Normal())
	if n < 0 {
		n = 0
	}
	return n
}

// Normal returns a standard normal variate (Box-Muller).
func (s *Stream) Normal() float64 {
	u1 := s.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Zipf returns a Zipf-distributed integer in [0, n) with exponent theta in
// (0, 1). It uses the rejection-inversion-free bounded harmonic method,
// which is adequate for the modest n used in the workload models.
type Zipf struct {
	cdf []float64
	src *Stream
}

// NewZipf builds a Zipf sampler over n items with the given skew theta
// (larger theta = more skew; theta of 0 is uniform).
func NewZipf(src *Stream, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Next returns the next Zipf-distributed rank in [0, len).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
