package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	base := New(7)
	a := base.Derive(1)
	b := base.Derive(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("derived streams with different labels collide immediately")
	}
	// Deriving must not advance the parent.
	c := New(7)
	c.Derive(1)
	d := New(7)
	if c.Uint64() != d.Uint64() {
		t.Fatal("Derive advanced the parent stream")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		if n > 1<<20 {
			n %= 1 << 20
			n++
		}
		v := New(seed).Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exp(10)
	}
	mean := sum / n
	if mean < 9.8 || mean > 10.2 {
		t.Fatalf("Exp(10) mean = %v, want ~10", mean)
	}
}

func TestGeometricMeanAndFloor(t *testing.T) {
	s := New(6)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		g := s.Geometric(6)
		if g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
		sum += float64(g)
	}
	mean := sum / n
	if mean < 5.5 || mean > 6.5 {
		t.Fatalf("Geometric(6) mean = %v, want ~6", mean)
	}
	if g := s.Geometric(0.5); g != 1 {
		t.Fatalf("Geometric(<1) = %d, want 1", g)
	}
}

func TestLogNormalMoments(t *testing.T) {
	s := New(8)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.LogNormal(20, 1.0)
		if v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 19 || mean > 21 {
		t.Fatalf("LogNormal(20,1) mean = %v, want ~20", mean)
	}
	if s.LogNormal(0, 1) != 0 {
		t.Fatal("LogNormal with zero mean should be 0")
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(9)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Normal()
		sum += v
		sq += v * v
	}
	mean, std := sum/n, math.Sqrt(sq/n)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Normal mean = %v, want ~0", mean)
	}
	if std < 0.98 || std > 1.02 {
		t.Fatalf("Normal std = %v, want ~1", std)
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	src := New(10)
	z := NewZipf(src, 100, 0.9)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("Zipf rank %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Uniform when theta = 0.
	z0 := NewZipf(New(11), 10, 0)
	c0 := make([]int, 10)
	for i := 0; i < n; i++ {
		c0[z0.Next()]++
	}
	for i, c := range c0 {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("Zipf(theta=0) not uniform: bucket %d has %d", i, c)
		}
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(12)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestPoissonMeanSmallAndLarge(t *testing.T) {
	s := New(11)
	for _, mean := range []float64{0.5, 5, 300} {
		sum := 0.0
		n := 20000
		for i := 0; i < n; i++ {
			v := s.Poisson(mean)
			if v < 0 || v != math.Trunc(v) {
				t.Fatalf("Poisson(%v) produced non-count %v", mean, v)
			}
			sum += v
		}
		got := sum / float64(n)
		if got < mean*0.95 || got > mean*1.05 {
			t.Errorf("Poisson(%v) sample mean %v off by >5%%", mean, got)
		}
	}
	if v := s.Poisson(0); v != 0 {
		t.Errorf("Poisson(0) = %v", v)
	}
	if v := s.Poisson(-3); v != 0 {
		t.Errorf("Poisson(-3) = %v", v)
	}
}

func TestPoissonDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 200; i++ {
		if av, bv := a.Poisson(40), b.Poisson(40); av != bv {
			t.Fatalf("Poisson diverged at draw %d: %v vs %v", i, av, bv)
		}
	}
}

// moments draws n variates and returns their sample mean and CV.
func moments(t *testing.T, n int, draw func() float64) (mean, cv float64) {
	t.Helper()
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := draw()
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("draw %d returned %v", i, v)
		}
		sum += v
		sq += v * v
	}
	mean = sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean
}

func TestGammaMoments(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{
		{1, 0.5},  // shape 4: squeeze-rejection branch
		{20, 1.0}, // shape 1
		{5, 2.0},  // shape 0.25: boost branch
	} {
		s := New(11)
		mean, cv := moments(t, 200000, func() float64 { return s.Gamma(tc.mean, tc.cv) })
		if math.Abs(mean-tc.mean)/tc.mean > 0.03 {
			t.Errorf("Gamma(%v,%v) mean = %v", tc.mean, tc.cv, mean)
		}
		if math.Abs(cv-tc.cv)/tc.cv > 0.05 {
			t.Errorf("Gamma(%v,%v) cv = %v", tc.mean, tc.cv, cv)
		}
	}
	if v := New(1).Gamma(7, 0); v != 7 {
		t.Fatalf("Gamma with zero cv = %v, want the mean", v)
	}
	if v := New(1).Gamma(0, 1); v != 0 {
		t.Fatalf("Gamma with zero mean = %v, want 0", v)
	}
}

func TestWeibullMoments(t *testing.T) {
	// Weibull CV is a pure function of shape: cv² = Γ(1+2/k)/Γ(1+1/k)² − 1.
	wcv := func(k float64) float64 {
		g1 := math.Gamma(1 + 1/k)
		return math.Sqrt(math.Gamma(1+2/k)/(g1*g1) - 1)
	}
	for _, tc := range []struct{ mean, shape float64 }{
		{10, 0.5}, // heavy-tailed
		{3, 1.0},  // exponential
		{100, 2.5},
	} {
		s := New(12)
		mean, cv := moments(t, 200000, func() float64 { return s.Weibull(tc.mean, tc.shape) })
		if math.Abs(mean-tc.mean)/tc.mean > 0.04 {
			t.Errorf("Weibull(%v,%v) mean = %v", tc.mean, tc.shape, mean)
		}
		want := wcv(tc.shape)
		if math.Abs(cv-want)/want > 0.06 {
			t.Errorf("Weibull(%v,%v) cv = %v, want %v", tc.mean, tc.shape, cv, want)
		}
	}
	if v := New(1).Weibull(0, 1); v != 0 {
		t.Fatalf("Weibull with zero mean = %v, want 0", v)
	}
	if v := New(1).Weibull(1, 0); v != 0 {
		t.Fatalf("Weibull with zero shape = %v, want 0", v)
	}
}

func TestGammaWeibullDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if a.Gamma(2, 1.5) != b.Gamma(2, 1.5) {
			t.Fatalf("Gamma diverged at step %d", i)
		}
	}
	a, b = New(98), New(98)
	for i := 0; i < 1000; i++ {
		if a.Weibull(2, 0.7) != b.Weibull(2, 0.7) {
			t.Fatalf("Weibull diverged at step %d", i)
		}
	}
}
