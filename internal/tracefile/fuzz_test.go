package tracefile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace drives the parser with arbitrary bytes. The invariants:
// never panic, never allocate beyond the MaxWindows guard, and any input
// that parses must validate, re-encode in both dialects, and re-parse to
// the identical trace (parse ∘ encode is the identity on accepted inputs).
func FuzzParseTrace(f *testing.F) {
	f.Add(validCSV)
	f.Add("#stretch-trace v1\n#meta windows=1 window_sec=60\n#client name=a service=s slo=strict fraction=1\nwindow,client,rps\n0,a,0\n")
	f.Add("#stretch-trace v1\n#meta windows=2 window_sec=60\n#client name=a service=s slo=standard fraction=0.5\n#event drain:0:3,restore:1:3\nwindow,client,rps\n0,a,1\n1,a,2.5\n")
	f.Add(`{"format":"stretch-trace","version":1,"windows":1,"window_sec":60}
{"client":{"name":"a","service":"s","fraction":1,"slo":"standard"}}
{"w":0,"c":"a","rps":3.5}
`)
	f.Add(`{"format":"stretch-trace","version":1,"windows":1,"window_sec":1e309}`)
	f.Add("#stretch-trace v1\n#meta windows=4194304 window_sec=1\n")
	f.Add("#stretch-trace v1\n#meta windows=2 window_sec=60\n#client name=a service=s slo=standard fraction=1\nwindow,client,rps\n0,a,NaN\n")
	f.Add("#stretch-trace v1\n#meta windows=2 window_sec=60\nwindow,client,rps\n0,a,-1\n")

	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("parsed trace fails validation: %v", err)
		}
		for _, format := range []string{"csv", "jsonl"} {
			var buf bytes.Buffer
			if err := tr.Write(&buf, format); err != nil {
				t.Fatalf("%s re-encode of valid trace: %v", format, err)
			}
			again, err := Parse(&buf)
			if err != nil {
				t.Fatalf("%s re-parse: %v", format, err)
			}
			if again.Windows != tr.Windows || len(again.Clients) != len(tr.Clients) ||
				len(again.Events.Events) != len(tr.Events.Events) {
				t.Fatalf("%s re-parse changed the trace: %+v vs %+v", format, tr, again)
			}
		}
	})
}
