// Package tracefile is the simulator's recorded-traffic substrate: a
// versioned on-disk trace format (CSV or JSONL) carrying per-window,
// per-client arrival rates plus the client metadata the fleet needs to
// replay them — service, batch pairing, core fraction, SLO class — and
// optional scenario annotations (drains, restores, perf faults, surges)
// in the loadgen event grammar.
//
// One format serves two sources. Recorded production traffic is written
// by whatever tooling watches the real fleet; synthetic traffic comes
// from Synth, which materialises a loadgen.Traffic (shapes, arrival
// processes, cohorts) through the same seed-derived streams the fleet
// itself would use, so a synthesised trace replays bit-identically to
// driving the fleet from the spec directly. Either way the parser is the
// single trust boundary: strict, line-numbered, and total — rates must be
// finite and non-negative, every (window, client) cell must appear
// exactly once, and gaps or undeclared clients are errors, never guesses.
package tracefile

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"stretch/internal/loadgen"
)

// FormatVersion is the trace format generation this package reads and
// writes. Bump it only with a migration path for old files.
const FormatVersion = 1

// MaxWindows bounds the window horizon a trace may declare, so a hostile
// or corrupt file cannot force a giant allocation before validation.
const MaxWindows = 1 << 22

// MaxCells bounds windows × clients — the rate matrix a parse may
// allocate (128 MiB of float64 at the limit).
const MaxCells = 1 << 24

// csvMagic is the first line of every CSV trace.
const csvMagic = "#stretch-trace v1"

// Client is the per-client metadata a trace carries — the fields of
// loadgen.Client minus the arrival spec, which the trace's rate rows
// replace.
type Client struct {
	// Name labels the client (unique within the trace; no whitespace or
	// commas, so names survive the CSV encoding untouched).
	Name string
	// Service is the latency-sensitive workload serving the client.
	Service string
	// Batch names the colocated batch workload; empty means the fleet's
	// default pairing.
	Batch string
	// Fraction is the client's share of the fleet's cores.
	Fraction float64
	// SLO is the client's QoS-target class.
	SLO loadgen.SLOClass
}

// Trace is a parsed (or synthesised) traffic recording.
type Trace struct {
	// Windows is the horizon length; WindowSec the seconds per window.
	Windows   int
	WindowSec float64
	// Clients declares the traffic sources, in file order.
	Clients []Client
	// Events carries optional scenario annotations recorded with the
	// traffic (drains, perf faults, surges).
	Events loadgen.Scenario
	// Rates[i][w] is client i's fleet-wide arrival rate (requests/sec)
	// during window w; len(Rates) == len(Clients), len(Rates[i]) == Windows.
	Rates [][]float64
}

// Hours is the trace horizon in hours.
func (t *Trace) Hours() float64 { return float64(t.Windows) * t.WindowSec / 3600 }

func validName(s string) bool {
	return s != "" && !strings.ContainsAny(s, " \t\n\r,=\"")
}

// Validate checks the trace's internal consistency: positive horizon,
// well-formed unique clients, complete finite rate matrix, and events
// that fit the horizon and client set (server indices are bounded by the
// fleet at replay time, not here — a trace does not know the fleet size).
func (t *Trace) Validate() error {
	if t.Windows <= 0 || t.Windows > MaxWindows {
		return fmt.Errorf("tracefile: %d windows out of [1,%d]", t.Windows, MaxWindows)
	}
	if !(t.WindowSec > 0) || math.IsInf(t.WindowSec, 0) {
		return fmt.Errorf("tracefile: window_sec %v must be positive and finite", t.WindowSec)
	}
	if len(t.Clients) == 0 {
		return fmt.Errorf("tracefile: no clients declared")
	}
	seen := make(map[string]bool, len(t.Clients))
	fracSum := 0.0
	for i, c := range t.Clients {
		if !validName(c.Name) {
			return fmt.Errorf("tracefile: client %d name %q (need non-empty, no spaces/commas)", i, c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("tracefile: duplicate client %q", c.Name)
		}
		seen[c.Name] = true
		if !validName(c.Service) {
			return fmt.Errorf("tracefile: client %q service %q invalid", c.Name, c.Service)
		}
		if c.Batch != "" && !validName(c.Batch) {
			return fmt.Errorf("tracefile: client %q batch %q invalid", c.Name, c.Batch)
		}
		if !(c.Fraction > 0) || c.Fraction > 1 {
			return fmt.Errorf("tracefile: client %q fraction %v out of (0,1]", c.Name, c.Fraction)
		}
		switch c.SLO {
		case loadgen.SLOStandard, loadgen.SLOStrict, loadgen.SLORelaxed:
		default:
			return fmt.Errorf("tracefile: client %q has unknown SLO class %d", c.Name, int(c.SLO))
		}
		fracSum += c.Fraction
	}
	if fracSum > 1+1e-9 {
		return fmt.Errorf("tracefile: client fractions sum to %v > 1", fracSum)
	}
	if len(t.Rates) != len(t.Clients) {
		return fmt.Errorf("tracefile: %d rate rows for %d clients", len(t.Rates), len(t.Clients))
	}
	for i, rates := range t.Rates {
		if len(rates) != t.Windows {
			return fmt.Errorf("tracefile: client %q has %d windows, trace declares %d",
				t.Clients[i].Name, len(rates), t.Windows)
		}
		for w, r := range rates {
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				return fmt.Errorf("tracefile: client %q window %d rate %v must be finite and non-negative",
					t.Clients[i].Name, w, r)
			}
		}
	}
	// Server-indexed events are range-checked against the replaying
	// fleet's size by fleet.Config.Validate; MaxInt defers that here.
	return t.Events.Validate(t.Windows, math.MaxInt, t.loadgenClients())
}

func (t *Trace) loadgenClients() []loadgen.Client {
	out := make([]loadgen.Client, len(t.Clients))
	for i, c := range t.Clients {
		out[i] = loadgen.Client{
			Name: c.Name, Service: c.Service, Batch: c.Batch,
			Fraction: c.Fraction, SLO: c.SLO,
			Spec: loadgen.Spec{Process: loadgen.ArrivalExact},
		}
	}
	return out
}

// Traffic converts the trace into the fleet's traffic source: each client
// becomes a loadgen.Client whose shape replays the recorded rates with an
// exact arrival process. The rates are already a realisation, so replay
// consumes no random draws for traffic — any fleet seed reproduces the
// same timelines, and the engine's per-core streams stay seed-derived
// exactly as for spec-driven runs.
func (t *Trace) Traffic() (loadgen.Traffic, error) {
	if err := t.Validate(); err != nil {
		return loadgen.Traffic{}, err
	}
	clients := t.loadgenClients()
	for i := range clients {
		clients[i].Spec.Shape = loadgen.Replay{Rates: t.Rates[i]}
	}
	return loadgen.Traffic{Clients: clients, Windows: t.Windows, WindowSec: t.WindowSec}, nil
}

// SynthSpec drives the deterministic synthesizer.
type SynthSpec struct {
	// Traffic is the generative spec: shapes, arrival processes, cohort
	// members — anything loadgen can express.
	Traffic loadgen.Traffic
	// Events are scenario annotations to embed in the trace.
	Events loadgen.Scenario
	// Seed selects the realisation. Synthesising with seed s and
	// replaying the trace under a fleet with the same seed is
	// bit-identical to driving that fleet from Traffic directly.
	Seed uint64
}

// Synth materialises the spec's per-client timelines through the same
// seed-derived streams the fleet uses and packages them as a Trace.
func Synth(spec SynthSpec) (*Trace, error) {
	timelines, err := spec.Traffic.Timelines(spec.Seed)
	if err != nil {
		return nil, err
	}
	t := &Trace{
		Windows:   spec.Traffic.Windows,
		WindowSec: spec.Traffic.WindowSec,
		Clients:   make([]Client, len(spec.Traffic.Clients)),
		Events:    spec.Events,
		Rates:     make([][]float64, len(spec.Traffic.Clients)),
	}
	for i, c := range spec.Traffic.Clients {
		t.Clients[i] = Client{
			Name: c.Name, Service: c.Service, Batch: c.Batch,
			Fraction: c.Fraction, SLO: c.SLO,
		}
		t.Rates[i] = timelines[c.Name]
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("tracefile: synthesised trace invalid: %w", err)
	}
	return t, nil
}

// fnum renders a float with the shortest representation that parses back
// to the identical bits, so write → parse round-trips exactly.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV encodes the trace in the v1 CSV dialect: a magic line, #meta /
// #client / #event directives, a column header, then window-major rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n", csvMagic)
	fmt.Fprintf(bw, "#meta windows=%d window_sec=%s\n", t.Windows, fnum(t.WindowSec))
	for _, c := range t.Clients {
		fmt.Fprintf(bw, "#client name=%s service=%s slo=%s fraction=%s", c.Name, c.Service, c.SLO, fnum(c.Fraction))
		if c.Batch != "" {
			fmt.Fprintf(bw, " batch=%s", c.Batch)
		}
		fmt.Fprintln(bw)
	}
	for _, e := range t.Events.Events {
		fmt.Fprintf(bw, "#event %s\n", e)
	}
	fmt.Fprintln(bw, "window,client,rps")
	for w := 0; w < t.Windows; w++ {
		for i, c := range t.Clients {
			fmt.Fprintf(bw, "%d,%s,%s\n", w, c.Name, fnum(t.Rates[i][w]))
		}
	}
	return bw.Flush()
}

// jsonHeader, jsonClient and jsonLine are the JSONL wire types. encoding/json
// emits floats in their shortest round-trip form, matching the CSV dialect.
type jsonClient struct {
	Name     string  `json:"name"`
	Service  string  `json:"service"`
	Batch    string  `json:"batch,omitempty"`
	Fraction float64 `json:"fraction"`
	SLO      string  `json:"slo"`
}

type jsonLine struct {
	// Header line.
	Format    string  `json:"format,omitempty"`
	Version   int     `json:"version,omitempty"`
	Windows   int     `json:"windows,omitempty"`
	WindowSec float64 `json:"window_sec,omitempty"`
	// Client declaration line.
	Client *jsonClient `json:"client,omitempty"`
	// Event annotation line.
	Event string `json:"event,omitempty"`
	// Rate row.
	W   *int     `json:"w,omitempty"`
	C   string   `json:"c,omitempty"`
	RPS *float64 `json:"rps,omitempty"`
}

// WriteJSONL encodes the trace as JSON lines: one header object, one
// object per client, one per event, then one per (window, client) rate in
// window-major order.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonLine{Format: "stretch-trace", Version: FormatVersion,
		Windows: t.Windows, WindowSec: t.WindowSec}); err != nil {
		return err
	}
	for _, c := range t.Clients {
		jc := jsonClient{Name: c.Name, Service: c.Service, Batch: c.Batch,
			Fraction: c.Fraction, SLO: c.SLO.String()}
		if err := enc.Encode(jsonLine{Client: &jc}); err != nil {
			return err
		}
	}
	for _, e := range t.Events.Events {
		if err := enc.Encode(jsonLine{Event: e.String()}); err != nil {
			return err
		}
	}
	for w := 0; w < t.Windows; w++ {
		for i, c := range t.Clients {
			w, rps := w, t.Rates[i][w]
			if err := enc.Encode(jsonLine{W: &w, C: c.Name, RPS: &rps}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Write encodes the trace in the named format: "csv" or "jsonl".
func (t *Trace) Write(w io.Writer, format string) error {
	switch format {
	case "csv":
		return t.WriteCSV(w)
	case "jsonl":
		return t.WriteJSONL(w)
	default:
		return fmt.Errorf("tracefile: unknown format %q (csv|jsonl)", format)
	}
}

// parser accumulates state shared by both dialects and enforces the
// structural rules: header before clients, clients before rates, every
// cell exactly once, no gaps.
type parser struct {
	t       *Trace
	index   map[string]int // client name → index
	seen    []map[int]bool // per client: which windows have rows
	hasMeta bool
	inRates bool
}

func newParser() *parser {
	return &parser{t: &Trace{}, index: make(map[string]int)}
}

func (p *parser) meta(line int, windows int, windowSec float64) error {
	if p.hasMeta {
		return fmt.Errorf("line %d: duplicate trace header", line)
	}
	if windows <= 0 || windows > MaxWindows {
		return fmt.Errorf("line %d: windows %d out of [1,%d]", line, windows, MaxWindows)
	}
	if !(windowSec > 0) || math.IsInf(windowSec, 0) || math.IsNaN(windowSec) {
		return fmt.Errorf("line %d: window_sec %v must be positive and finite", line, windowSec)
	}
	p.hasMeta = true
	p.t.Windows = windows
	p.t.WindowSec = windowSec
	return nil
}

func (p *parser) client(line int, c Client) error {
	if !p.hasMeta {
		return fmt.Errorf("line %d: client declared before trace header", line)
	}
	if p.inRates {
		return fmt.Errorf("line %d: client declared after rate rows", line)
	}
	if _, dup := p.index[c.Name]; dup {
		return fmt.Errorf("line %d: duplicate client %q", line, c.Name)
	}
	if !validName(c.Name) {
		return fmt.Errorf("line %d: client name %q (need non-empty, no spaces/commas)", line, c.Name)
	}
	if (len(p.t.Clients)+1)*p.t.Windows > MaxCells {
		return fmt.Errorf("line %d: trace exceeds %d rate cells", line, MaxCells)
	}
	p.index[c.Name] = len(p.t.Clients)
	p.t.Clients = append(p.t.Clients, c)
	p.seen = append(p.seen, make(map[int]bool))
	p.t.Rates = append(p.t.Rates, make([]float64, p.t.Windows))
	return nil
}

func (p *parser) event(line int, s string) error {
	if !p.hasMeta {
		return fmt.Errorf("line %d: event declared before trace header", line)
	}
	if p.inRates {
		return fmt.Errorf("line %d: event declared after rate rows", line)
	}
	sc, err := loadgen.ParseEvents(s)
	if err != nil {
		return fmt.Errorf("line %d: %v", line, err)
	}
	// Window bounds are knowable here (the header precedes events), so
	// report them with the offending line; client and factor semantics
	// wait for finish, when the full client set is known.
	for _, e := range sc.Events {
		switch e.Kind {
		case loadgen.EventDrain, loadgen.EventRestore:
			if e.Window < 0 || e.Window >= p.t.Windows {
				return fmt.Errorf("line %d: %s window %d outside horizon [0,%d)", line, e.Kind, e.Window, p.t.Windows)
			}
		case loadgen.EventSurge:
			if e.Window < 0 || e.Until > p.t.Windows || e.Window >= e.Until {
				return fmt.Errorf("line %d: surge range [%d,%d) outside horizon %d", line, e.Window, e.Until, p.t.Windows)
			}
		}
	}
	p.t.Events.Events = append(p.t.Events.Events, sc.Events...)
	return nil
}

func (p *parser) rate(line, w int, client string, rps float64) error {
	if !p.hasMeta {
		return fmt.Errorf("line %d: rate row before trace header", line)
	}
	p.inRates = true
	i, ok := p.index[client]
	if !ok {
		return fmt.Errorf("line %d: rate row for undeclared client %q", line, client)
	}
	if w < 0 || w >= p.t.Windows {
		return fmt.Errorf("line %d: window %d outside horizon [0,%d)", line, w, p.t.Windows)
	}
	if math.IsNaN(rps) || math.IsInf(rps, 0) || rps < 0 {
		return fmt.Errorf("line %d: rate %v must be finite and non-negative", line, rps)
	}
	if p.seen[i][w] {
		return fmt.Errorf("line %d: duplicate rate for window %d client %q", line, w, client)
	}
	p.seen[i][w] = true
	p.t.Rates[i][w] = rps
	return nil
}

// finish checks completeness — every client has a rate for every window —
// then runs full semantic validation.
func (p *parser) finish() (*Trace, error) {
	if !p.hasMeta {
		return nil, fmt.Errorf("missing trace header")
	}
	for i, c := range p.t.Clients {
		if got := len(p.seen[i]); got != p.t.Windows {
			missing := make([]int, 0, 8)
			for w := 0; w < p.t.Windows && len(missing) < 5; w++ {
				if !p.seen[i][w] {
					missing = append(missing, w)
				}
			}
			sort.Ints(missing)
			return nil, fmt.Errorf("client %q has %d of %d windows (gap at %v)",
				c.Name, got, p.t.Windows, missing)
		}
	}
	if err := p.t.Validate(); err != nil {
		return nil, strip(err)
	}
	return p.t, nil
}

// strip removes the package prefix from an error about to be re-wrapped.
func strip(err error) error {
	return fmt.Errorf("%s", strings.TrimPrefix(err.Error(), "tracefile: "))
}

// Parse reads a trace in either dialect, sniffing JSONL by a leading '{'.
// Errors carry 1-based line numbers.
func Parse(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("tracefile: empty input")
	}
	var t *Trace
	if first[0] == '{' {
		t, err = parseJSONL(br)
	} else {
		t, err = parseCSV(br)
	}
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	return t, nil
}

// Load reads and parses the trace file at path.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	defer f.Close()
	t, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, strip(err))
	}
	return t, nil
}

// kvs parses "k=v k=v …" directive fields in order.
func kvs(s string) ([][2]string, error) {
	var out [][2]string
	for _, f := range strings.Fields(s) {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed field %q (want key=value)", f)
		}
		out = append(out, [2]string{k, v})
	}
	return out, nil
}

func parseCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	p := newParser()
	line := 0
	sawHeaderRow := false
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		switch {
		case line == 1:
			if text != csvMagic {
				return nil, fmt.Errorf("line 1: not a stretch trace (want %q, got %q)", csvMagic, text)
			}
		case text == "":
			// Blank lines are allowed anywhere after the magic.
		case strings.HasPrefix(text, "#meta "):
			var windows int
			var windowSec float64
			var haveW, haveS bool
			fields, err := kvs(text[len("#meta "):])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			for _, kv := range fields {
				switch kv[0] {
				case "windows":
					n, err := strconv.Atoi(kv[1])
					if err != nil {
						return nil, fmt.Errorf("line %d: windows %q not an integer", line, kv[1])
					}
					windows, haveW = n, true
				case "window_sec":
					v, err := strconv.ParseFloat(kv[1], 64)
					if err != nil {
						return nil, fmt.Errorf("line %d: window_sec %q not a number", line, kv[1])
					}
					windowSec, haveS = v, true
				default:
					return nil, fmt.Errorf("line %d: unknown meta field %q", line, kv[0])
				}
			}
			if !haveW || !haveS {
				return nil, fmt.Errorf("line %d: meta needs windows= and window_sec=", line)
			}
			if err := p.meta(line, windows, windowSec); err != nil {
				return nil, err
			}
		case strings.HasPrefix(text, "#client "):
			fields, err := kvs(text[len("#client "):])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			var c Client
			for _, kv := range fields {
				switch kv[0] {
				case "name":
					c.Name = kv[1]
				case "service":
					c.Service = kv[1]
				case "batch":
					c.Batch = kv[1]
				case "slo":
					slo, err := loadgen.ParseSLOClass(kv[1])
					if err != nil {
						return nil, fmt.Errorf("line %d: %v", line, err)
					}
					c.SLO = slo
				case "fraction":
					v, err := strconv.ParseFloat(kv[1], 64)
					if err != nil {
						return nil, fmt.Errorf("line %d: fraction %q not a number", line, kv[1])
					}
					c.Fraction = v
				default:
					return nil, fmt.Errorf("line %d: unknown client field %q", line, kv[0])
				}
			}
			if err := p.client(line, c); err != nil {
				return nil, err
			}
		case strings.HasPrefix(text, "#event "):
			if err := p.event(line, strings.TrimSpace(text[len("#event "):])); err != nil {
				return nil, err
			}
		case strings.HasPrefix(text, "#"):
			return nil, fmt.Errorf("line %d: unknown directive %q", line, text)
		case text == "window,client,rps":
			if sawHeaderRow {
				return nil, fmt.Errorf("line %d: duplicate column header", line)
			}
			sawHeaderRow = true
		default:
			if !sawHeaderRow {
				return nil, fmt.Errorf("line %d: rate row before %q header", line, "window,client,rps")
			}
			parts := strings.Split(text, ",")
			if len(parts) != 3 {
				return nil, fmt.Errorf("line %d: want 3 comma-separated fields, got %d", line, len(parts))
			}
			w, err := strconv.Atoi(parts[0])
			if err != nil {
				return nil, fmt.Errorf("line %d: window %q not an integer", line, parts[0])
			}
			rps, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: rate %q not a number", line, parts[2])
			}
			if err := p.rate(line, w, parts[1], rps); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p.finish()
}

func parseJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	p := newParser()
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader([]byte(text)))
		dec.DisallowUnknownFields()
		var jl jsonLine
		if err := dec.Decode(&jl); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		switch {
		case jl.Format != "":
			if jl.Format != "stretch-trace" || jl.Version != FormatVersion {
				return nil, fmt.Errorf("line %d: not a stretch-trace v%d header (format %q version %d)",
					line, FormatVersion, jl.Format, jl.Version)
			}
			if err := p.meta(line, jl.Windows, jl.WindowSec); err != nil {
				return nil, err
			}
		case jl.Client != nil:
			slo, err := loadgen.ParseSLOClass(jl.Client.SLO)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			c := Client{Name: jl.Client.Name, Service: jl.Client.Service,
				Batch: jl.Client.Batch, Fraction: jl.Client.Fraction, SLO: slo}
			if err := p.client(line, c); err != nil {
				return nil, err
			}
		case jl.Event != "":
			if err := p.event(line, jl.Event); err != nil {
				return nil, err
			}
		case jl.W != nil:
			if jl.RPS == nil {
				return nil, fmt.Errorf("line %d: rate row without rps", line)
			}
			if err := p.rate(line, *jl.W, jl.C, *jl.RPS); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("line %d: unrecognised object %s", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p.finish()
}
