package tracefile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"stretch/internal/fleet"
	"stretch/internal/loadgen"
	"stretch/internal/workload"
)

// synthSpec is a small two-client spec exercising mixture arrivals, batch
// pairing, SLO classes and scenario annotations.
func synthSpec() SynthSpec {
	events, err := loadgen.ParseEvents("drain:3:1,surge:4-6:search:1.5,perf:0:0.92")
	if err != nil {
		panic(err)
	}
	return SynthSpec{
		Traffic: loadgen.Traffic{
			Windows: 12, WindowSec: 300,
			Clients: []loadgen.Client{
				{Name: "search", Service: workload.WebSearch, Fraction: 0.6, SLO: loadgen.SLOStrict,
					Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 1800}, Process: loadgen.ArrivalGamma, CV: 1.2}},
				{Name: "media", Service: workload.MediaStreaming, Batch: workload.Zeusmp,
					Fraction: 0.4, SLO: loadgen.SLORelaxed,
					Spec: loadgen.Spec{Shape: loadgen.Ramp{StartRPS: 200, TargetRPS: 900}, Poisson: true}},
			},
		},
		Events: events,
		Seed:   7,
	}
}

func TestSynthRoundTrip(t *testing.T) {
	orig, err := Synth(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"csv", "jsonl"} {
		var buf bytes.Buffer
		if err := orig.Write(&buf, format); err != nil {
			t.Fatalf("%s write: %v", format, err)
		}
		// The writer must be deterministic: two encodes are byte-identical.
		var buf2 bytes.Buffer
		if err := orig.Write(&buf2, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s encode not deterministic", format)
		}
		parsed, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s parse: %v", format, err)
		}
		if !reflect.DeepEqual(orig, parsed) {
			t.Fatalf("%s round trip diverged:\norig:   %+v\nparsed: %+v", format, orig, parsed)
		}
	}
}

func TestWriteUnknownFormat(t *testing.T) {
	tr, err := Synth(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(&bytes.Buffer{}, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// fleetConfig builds a fleet over the given traffic, with everything else
// held fixed.
func fleetConfig(tr loadgen.Traffic, events loadgen.Scenario, workers int) fleet.Config {
	return fleet.Config{
		Servers: 2, CoresPerServer: 4,
		Traffic:       tr,
		Scenario:      events,
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 150, Seed: 7, Workers: workers,
	}
}

// TestReplayEquivalence is the round-trip determinism contract: synth →
// encode → parse → replay must be bit-identical to driving the fleet from
// the generative spec directly (same seed), and the replayed result must
// not depend on the worker count.
func TestReplayEquivalence(t *testing.T) {
	spec := synthSpec()
	direct, err := fleet.Run(fleetConfig(spec.Traffic, spec.Events, 0))
	if err != nil {
		t.Fatal(err)
	}

	synthed, err := Synth(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := synthed.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	traffic, err := parsed.Traffic()
	if err != nil {
		t.Fatal(err)
	}

	replayed, err := fleet.Run(fleetConfig(traffic, parsed.Events, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, replayed) {
		t.Fatalf("replay diverged from direct spec run:\ndirect: %+v\nreplay: %+v", direct, replayed)
	}

	for _, workers := range []int{1, 7} {
		again, err := fleet.Run(fleetConfig(traffic, parsed.Events, workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(replayed, again) {
			t.Fatalf("replay with %d workers diverged", workers)
		}
	}
}

// TestReplaySeedIndependentTimelines: a trace is already a realisation,
// so the traffic it produces is identical under any fleet seed.
func TestReplaySeedIndependentTimelines(t *testing.T) {
	tr, err := Synth(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	traffic, err := tr.Traffic()
	if err != nil {
		t.Fatal(err)
	}
	a, err := traffic.Timelines(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := traffic.Timelines(99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("replayed timelines depend on the fleet seed")
	}
}

const validCSV = `#stretch-trace v1
#meta windows=2 window_sec=300
#client name=a service=web-search slo=standard fraction=0.5
#client name=b service=data-serving slo=relaxed fraction=0.5 batch=zeusmp
#event drain:1:0
window,client,rps
0,a,100
0,b,50.5
1,a,90
1,b,0
`

func TestParseValidCSV(t *testing.T) {
	tr, err := Parse(strings.NewReader(validCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Windows != 2 || tr.WindowSec != 300 || len(tr.Clients) != 2 {
		t.Fatalf("parsed shape wrong: %+v", tr)
	}
	if tr.Clients[1].Batch != workload.Zeusmp || tr.Clients[1].SLO != loadgen.SLORelaxed {
		t.Fatalf("client metadata lost: %+v", tr.Clients[1])
	}
	if len(tr.Events.Events) != 1 {
		t.Fatalf("events lost: %+v", tr.Events)
	}
	if tr.Rates[0][1] != 90 || tr.Rates[1][0] != 50.5 {
		t.Fatalf("rates misplaced: %+v", tr.Rates)
	}
}

func TestParseStrictness(t *testing.T) {
	mut := func(from, to string) string { return strings.Replace(validCSV, from, to, 1) }
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "empty input"},
		{"bad magic", mut("#stretch-trace v1", "#stretch-trace v9"), "line 1"},
		{"nan rate", mut("0,a,100", "0,a,NaN"), "line 7"},
		{"inf rate", mut("0,a,100", "0,a,+Inf"), "line 7"},
		{"negative rate", mut("0,a,100", "0,a,-4"), "line 7"},
		{"duplicate cell", mut("1,a,90", "0,a,90"), "line 9: duplicate rate"},
		{"window gap", strings.Replace(validCSV, "1,b,0\n", "", 1), `client "b" has 1 of 2 windows`},
		{"out of horizon", mut("1,a,90", "2,a,90"), "line 9: window 2 outside horizon"},
		{"undeclared client", mut("0,b,50.5", "0,z,50.5"), `line 8: rate row for undeclared client "z"`},
		{"duplicate client", mut("name=b", "name=a"), "line 4: duplicate client"},
		{"bad slo", mut("slo=relaxed", "slo=gold"), "line 4"},
		{"bad fraction", mut("fraction=0.5 batch", "fraction=1.5 batch"), "fraction 1.5 out of (0,1]"},
		{"fractions oversubscribed", mut("fraction=0.5\n", "fraction=0.9\n"), "sum to 1.4"},
		{"zero windows", mut("windows=2", "windows=0"), "line 2"},
		{"huge windows", mut("windows=2", "windows=99999999"), "line 2"},
		{"bad window_sec", mut("window_sec=300", "window_sec=0"), "line 2"},
		{"rows before header", mut("window,client,rps\n", ""), "line 6: rate row before"},
		{"client after rows", validCSV + "#client name=c service=x slo=standard fraction=0.1\n", "line 11: client declared after rate rows"},
		{"unknown directive", mut("#event", "#evt"), "line 5: unknown directive"},
		{"bad event", mut("drain:1:0", "drain:9:0"), "line 5"},
		{"surge unknown client", mut("drain:1:0", "surge:0-1:z:2"), "unknown client"},
		{"three fields", mut("0,a,100", "0,a,100,x"), "want 3 comma-separated fields"},
		{"no meta", mut("#meta windows=2 window_sec=300\n", ""), "client declared before trace header"},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestParseJSONLStrictness(t *testing.T) {
	tr, err := Synth(synthSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"format":"stretch-trace","version":1,"windows":2,"window_sec":300,"x":1}`, "line 1"},
		{"wrong version", strings.Replace(buf.String(), `"version":1`, `"version":2`, 1), "line 1"},
		{"row without rps", lines[0] + "\n" + lines[1] + "\n" + `{"w":0,"c":"search"}`, "rate row without rps"},
		{"unrecognised", lines[0] + "\n" + `{}`, "line 2: unrecognised object"},
		{"truncated", strings.Join(lines[:len(lines)-1], "\n"), "windows"},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("testdata/definitely-not-here.trace"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidateRejectsCorruptTrace(t *testing.T) {
	mk := func() *Trace {
		tr, err := Synth(synthSpec())
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	bad := []func(*Trace){
		func(tr *Trace) { tr.Windows = 0 },
		func(tr *Trace) { tr.WindowSec = -1 },
		func(tr *Trace) { tr.Clients = nil },
		func(tr *Trace) { tr.Clients[0].Name = "with space" },
		func(tr *Trace) { tr.Clients[0].Service = "" },
		func(tr *Trace) { tr.Clients[0].Fraction = 2 },
		func(tr *Trace) { tr.Clients[0].SLO = loadgen.SLOClass(9) },
		func(tr *Trace) { tr.Rates = tr.Rates[:1] },
		func(tr *Trace) { tr.Rates[0] = tr.Rates[0][:3] },
		func(tr *Trace) { tr.Rates[1][2] = -5 },
	}
	for i, mutate := range bad {
		tr := mk()
		mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
