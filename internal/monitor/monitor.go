// Package monitor implements the Stretch software control plane of §IV-C:
// a CPI2-style monitor that watches a QoS signal (windowed tail latency, or
// optionally queue length) and drives the architecturally exposed control
// bits — the S-bit engaging Stretch and the B/Q selector — with hysteresis,
// falling back to co-runner throttling when even Q-mode cannot restore QoS,
// exactly as the paper layers Stretch onto the CPI2 mitigation ladder.
//
// Invariant: the Controller is a pure state machine over its observation
// sequence — no clocks, no randomness, no dependence on the core model's
// timing — so identical observations always replay to identical actions,
// and the fleet engine can hold controllers by value and reinitialise
// them in place (Reset) without perturbing results.
package monitor

import (
	"fmt"

	"stretch/internal/core"
)

// Action is the mitigation the controller requests after an observation.
type Action int

// Actions, in escalation order.
const (
	ActionNone         Action = iota // keep current mode
	ActionEngageB                    // slack detected: give the batch thread the big partition
	ActionBaseline                   // revert to equal partitioning
	ActionEngageQ                    // high load: give the LS thread the big partition
	ActionThrottleCo                 // persistent violation: throttle the co-runner (CPI2 ladder)
	ActionStopThrottle               // violation cleared: release the co-runner
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionEngageB:
		return "engage-B"
	case ActionBaseline:
		return "baseline"
	case ActionEngageQ:
		return "engage-Q"
	case ActionThrottleCo:
		return "throttle-corunner"
	case ActionStopThrottle:
		return "stop-throttle"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Signal selects the QoS metric the controller reads.
type Signal int

// Signals.
const (
	// SignalTailLatency compares windowed tail latency to the target
	// (the paper's primary, "representative and easily-available" metric).
	SignalTailLatency Signal = iota
	// SignalQueueLength uses instantaneous queue depth thresholds (the
	// paper's suggested alternative, after Rubik).
	SignalQueueLength
)

// Config tunes the controller.
type Config struct {
	// Signal selects the QoS metric.
	Signal Signal

	// TargetMs is the tail-latency QoS target.
	TargetMs float64
	// EngageBelow engages B-mode when tail < EngageBelow × target.
	EngageBelow float64
	// DisengageAbove leaves B-mode when tail > DisengageAbove × target.
	DisengageAbove float64

	// QueueEngageBelow / QueueDisengageAbove are the queue-length
	// equivalents (requests waiting).
	QueueEngageBelow    int
	QueueDisengageAbove int

	// QModeAvailable provisions the optional Q-mode configuration.
	QModeAvailable bool

	// Hysteresis is how many consecutive windows a condition must hold
	// before the controller acts — mode flips flush both pipelines, so
	// flapping is costly.
	Hysteresis int
	// ThrottleAfter is how many consecutive violating windows (after
	// leaving B-mode) trigger co-runner throttling.
	ThrottleAfter int
}

// DefaultConfig returns the controller tuning used by the experiments.
func DefaultConfig(targetMs float64) Config {
	return Config{
		Signal:              SignalTailLatency,
		TargetMs:            targetMs,
		EngageBelow:         0.70,
		DisengageAbove:      0.95,
		QueueEngageBelow:    1,
		QueueDisengageAbove: 4,
		QModeAvailable:      true,
		Hysteresis:          2,
		ThrottleAfter:       4,
	}
}

// Validate rejects unusable tunings.
func (c Config) Validate() error {
	switch {
	case c.TargetMs <= 0 && c.Signal == SignalTailLatency:
		return fmt.Errorf("monitor: non-positive target")
	case c.EngageBelow <= 0 || c.EngageBelow >= c.DisengageAbove:
		return fmt.Errorf("monitor: engage threshold must be in (0, disengage)")
	case c.Hysteresis < 1:
		return fmt.Errorf("monitor: hysteresis must be >= 1")
	case c.ThrottleAfter < 1:
		return fmt.Errorf("monitor: throttle-after must be >= 1")
	}
	return nil
}

// Controller is the mode state machine. It is deliberately free of any
// timing dependence on the core model: callers feed it one observation per
// monitoring window and apply the returned action.
type Controller struct {
	cfg  Config
	mode core.Mode

	lowStreak  int
	highStreak int
	violStreak int
	throttled  bool

	lastTail float64
	observed bool

	switches uint64
}

// New builds a controller starting in Baseline mode.
func New(cfg Config) (*Controller, error) {
	c := &Controller{}
	if err := c.Reset(cfg); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset reinitialises the controller in place for cfg, starting in Baseline
// mode with all streaks and the switch count cleared — the allocation-free
// form of New for hot loops (the fleet engine) that keep controller storage
// per core and rebuild it when a core changes hands.
func (c *Controller) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	*c = Controller{cfg: cfg, mode: core.ModeBaseline}
	return nil
}

// Mode returns the currently engaged Stretch mode.
func (c *Controller) Mode() core.Mode { return c.mode }

// Throttled reports whether the co-runner is currently throttled.
func (c *Controller) Throttled() bool { return c.throttled }

// Switches returns how many mode changes the controller has requested.
func (c *Controller) Switches() uint64 { return c.switches }

// LastTailMs returns the most recently observed windowed tail latency
// (0 before the first observation).
func (c *Controller) LastTailMs() float64 { return c.lastTail }

// Slack returns the controller's current headroom below its tail-latency
// target as a fraction of the target: (target − lastTail)/target. Positive
// slack means the service runs below target — the reserve the batch thread
// can harvest (§IV-C); negative slack is a QoS violation. Before any
// observation, or when the controller is not tail-latency driven, Slack
// returns 0.
func (c *Controller) Slack() float64 {
	if !c.observed || c.cfg.TargetMs <= 0 {
		return 0
	}
	return (c.cfg.TargetMs - c.lastTail) / c.cfg.TargetMs
}

// Observation is one monitoring window's QoS reading.
type Observation struct {
	// TailMs is the window's latency at the QoS quantile.
	TailMs float64
	// QueueLen is the queue depth sample (SignalQueueLength).
	QueueLen int
}

// Observe consumes one window and returns the action the system software
// should take. The controller assumes the action is applied.
func (c *Controller) Observe(o Observation) Action {
	c.lastTail = o.TailMs
	c.observed = true
	low, high := c.classify(o)

	if low {
		c.lowStreak++
	} else {
		c.lowStreak = 0
	}
	if high {
		c.highStreak++
	} else {
		c.highStreak = 0
		c.violStreak = 0
	}

	switch {
	case high:
		// QoS pressure: leave B-mode first, then escalate.
		if c.mode == core.ModeB && c.highStreak >= c.cfg.Hysteresis {
			c.mode = c.modeUnderPressure()
			c.switches++
			c.highStreak = 0
			return c.actionFor(c.mode)
		}
		if c.mode != core.ModeB {
			c.violStreak++
			if !c.throttled && c.violStreak >= c.cfg.ThrottleAfter {
				c.throttled = true
				return ActionThrottleCo
			}
			if c.mode == core.ModeBaseline && c.cfg.QModeAvailable &&
				c.highStreak >= c.cfg.Hysteresis {
				c.mode = core.ModeQ
				c.switches++
				return ActionEngageQ
			}
		}
	case low:
		if c.throttled {
			c.throttled = false
			c.violStreak = 0
			return ActionStopThrottle
		}
		if c.mode != core.ModeB && c.lowStreak >= c.cfg.Hysteresis {
			c.mode = core.ModeB
			c.switches++
			return ActionEngageB
		}
	default:
		// Mid band: a Q-mode engagement relaxes to baseline once
		// pressure subsides.
		if c.mode == core.ModeQ && c.lowStreak == 0 && c.highStreak == 0 {
			c.mode = core.ModeBaseline
			c.switches++
			return ActionBaseline
		}
	}
	return ActionNone
}

func (c *Controller) classify(o Observation) (low, high bool) {
	if c.cfg.Signal == SignalQueueLength {
		return o.QueueLen <= c.cfg.QueueEngageBelow, o.QueueLen >= c.cfg.QueueDisengageAbove
	}
	return o.TailMs < c.cfg.EngageBelow*c.cfg.TargetMs,
		o.TailMs > c.cfg.DisengageAbove*c.cfg.TargetMs
}

func (c *Controller) modeUnderPressure() core.Mode {
	if c.cfg.QModeAvailable {
		return core.ModeQ
	}
	return core.ModeBaseline
}

func (c *Controller) actionFor(m core.Mode) Action {
	if m == core.ModeQ {
		return ActionEngageQ
	}
	return ActionBaseline
}
