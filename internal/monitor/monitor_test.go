package monitor

import (
	"testing"

	"stretch/internal/core"
)

func newCtl(t *testing.T, mut ...func(*Config)) *Controller {
	t.Helper()
	cfg := DefaultConfig(100)
	for _, m := range mut {
		m(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.TargetMs = 0 },
		func(c *Config) { c.EngageBelow = 0 },
		func(c *Config) { c.EngageBelow, c.DisengageAbove = 0.9, 0.8 },
		func(c *Config) { c.Hysteresis = 0 },
		func(c *Config) { c.ThrottleAfter = 0 },
	}
	for i, m := range bad {
		cfg := DefaultConfig(100)
		m(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEngagesBAfterHysteresis(t *testing.T) {
	c := newCtl(t)
	// One low window is not enough (hysteresis 2).
	if a := c.Observe(Observation{TailMs: 30}); a != ActionNone {
		t.Fatalf("engaged after one window: %v", a)
	}
	if c.Mode() != core.ModeBaseline {
		t.Fatal("mode changed prematurely")
	}
	if a := c.Observe(Observation{TailMs: 30}); a != ActionEngageB {
		t.Fatalf("second low window: %v, want engage-B", a)
	}
	if c.Mode() != core.ModeB {
		t.Fatal("mode not B after engage")
	}
	if c.Switches() != 1 {
		t.Fatalf("switches = %d", c.Switches())
	}
}

func TestMidBandHoldsState(t *testing.T) {
	c := newCtl(t)
	for i := 0; i < 10; i++ {
		if a := c.Observe(Observation{TailMs: 85}); a != ActionNone {
			t.Fatalf("mid-band observation caused %v", a)
		}
	}
	if c.Mode() != core.ModeBaseline {
		t.Fatal("mid band must not change mode")
	}
}

func TestLeavesBUnderPressureThenEscalates(t *testing.T) {
	c := newCtl(t)
	c.Observe(Observation{TailMs: 20})
	c.Observe(Observation{TailMs: 20})
	if c.Mode() != core.ModeB {
		t.Fatal("setup: not in B")
	}
	// Two high windows: leave B (straight to Q since it is provisioned).
	c.Observe(Observation{TailMs: 99})
	a := c.Observe(Observation{TailMs: 99})
	if a != ActionEngageQ {
		t.Fatalf("pressure exit action = %v, want engage-Q", a)
	}
	if c.Mode() != core.ModeQ {
		t.Fatalf("mode = %v", c.Mode())
	}
}

func TestNoQModeFallsBackToBaseline(t *testing.T) {
	c := newCtl(t, func(cfg *Config) { cfg.QModeAvailable = false })
	c.Observe(Observation{TailMs: 20})
	c.Observe(Observation{TailMs: 20})
	c.Observe(Observation{TailMs: 99})
	a := c.Observe(Observation{TailMs: 99})
	if a != ActionBaseline {
		t.Fatalf("without Q-mode, pressure exit = %v, want baseline", a)
	}
	if c.Mode() != core.ModeBaseline {
		t.Fatalf("mode = %v", c.Mode())
	}
}

func TestThrottlesAfterPersistentViolation(t *testing.T) {
	c := newCtl(t)
	// Persistent violation from baseline: engage Q first, keep violating,
	// then throttle.
	var acts []Action
	for i := 0; i < 8; i++ {
		acts = append(acts, c.Observe(Observation{TailMs: 120}))
	}
	sawQ, sawThrottle := false, false
	for _, a := range acts {
		if a == ActionEngageQ {
			sawQ = true
		}
		if a == ActionThrottleCo {
			sawThrottle = true
		}
	}
	if !sawQ || !sawThrottle {
		t.Fatalf("escalation ladder incomplete: %v", acts)
	}
	if !c.Throttled() {
		t.Fatal("controller not in throttled state")
	}
	// Load drops: throttle released.
	a := c.Observe(Observation{TailMs: 20})
	if a != ActionStopThrottle {
		t.Fatalf("low window while throttled = %v, want stop-throttle", a)
	}
	if c.Throttled() {
		t.Fatal("still throttled after release")
	}
}

func TestQRelaxesToBaselineInMidBand(t *testing.T) {
	c := newCtl(t)
	for i := 0; i < 4; i++ {
		c.Observe(Observation{TailMs: 120})
	}
	if c.Mode() != core.ModeQ {
		t.Fatalf("setup: mode = %v", c.Mode())
	}
	a := c.Observe(Observation{TailMs: 85})
	if a != ActionBaseline || c.Mode() != core.ModeBaseline {
		t.Fatalf("Q did not relax in mid band: %v / %v", a, c.Mode())
	}
}

func TestQueueLengthSignal(t *testing.T) {
	c := newCtl(t, func(cfg *Config) { cfg.Signal = SignalQueueLength })
	c.Observe(Observation{QueueLen: 0})
	if a := c.Observe(Observation{QueueLen: 0}); a != ActionEngageB {
		t.Fatalf("short queue did not engage B: %v", a)
	}
	c.Observe(Observation{QueueLen: 10})
	if a := c.Observe(Observation{QueueLen: 10}); a != ActionEngageQ {
		t.Fatalf("long queue did not escalate: %v", a)
	}
}

func TestHysteresisPreventsFlapping(t *testing.T) {
	c := newCtl(t)
	// Alternate low/high every window: streaks never build, mode holds.
	for i := 0; i < 40; i++ {
		tail := 20.0
		if i%2 == 1 {
			tail = 99
		}
		c.Observe(Observation{TailMs: tail})
	}
	if c.Switches() > 1 {
		t.Fatalf("flapping inputs caused %d switches", c.Switches())
	}
}

// TestSlackReflectsLastObservation pins the headroom reading the fleet
// engine publishes in its window observations: (target − tail)/target
// after each Observe, 0 before any observation, negative on violation.
func TestSlackReflectsLastObservation(t *testing.T) {
	c := newCtl(t) // target 100ms
	if c.Slack() != 0 || c.LastTailMs() != 0 {
		t.Fatalf("unobserved controller reports slack %v tail %v", c.Slack(), c.LastTailMs())
	}
	c.Observe(Observation{TailMs: 30})
	if c.LastTailMs() != 30 {
		t.Fatalf("last tail %v, want 30", c.LastTailMs())
	}
	if got := c.Slack(); got != 0.7 {
		t.Fatalf("slack %v, want 0.7", got)
	}
	c.Observe(Observation{TailMs: 150})
	if got := c.Slack(); got != -0.5 {
		t.Fatalf("violating slack %v, want -0.5", got)
	}
	c.Observe(Observation{TailMs: 100})
	if got := c.Slack(); got != 0 {
		t.Fatalf("at-target slack %v, want 0", got)
	}
}

func TestActionStrings(t *testing.T) {
	for a := ActionNone; a <= ActionStopThrottle; a++ {
		if a.String() == "" {
			t.Fatalf("action %d has empty string", a)
		}
	}
	if Action(99).String() == "" {
		t.Fatal("unknown action must format")
	}
}
