// Package trace generates synthetic micro-op streams with controlled
// statistical properties: instruction mix, code/data locality tiers,
// dependence density (ILP), pointer-chasing fraction (MLP suppression),
// streaming fraction (prefetchability), and branch predictability.
//
// The generator substitutes for the full-system CloudSuite/SPEC traces the
// paper feeds its Flexus simulator. Each workload is described by a Profile;
// a Generator deterministically expands a Profile into an unbounded µop
// stream that the core model consumes. The properties the paper's argument
// rests on — latency-sensitive services have large instruction footprints
// and dependent (serialised) misses, batch workloads have independent
// misses that a large window can overlap — are first-class profile knobs.
//
// Invariant: a Generator's stream is a pure function of (Profile, seed) —
// all randomness comes from its own rng.Stream — so any measurement built
// on it reproduces bit-identically.
//
// Memory locality is expressed as three address tiers sized to the cache
// hierarchy: a hot region (L1-resident), a warm region (LLC-resident) and a
// cold region (the full footprint, mostly memory-resident). The core still
// simulates real caches over these addresses, so SMT capacity contention
// emerges from the arrays rather than from the profile.
package trace

import (
	"fmt"

	"stretch/internal/isa"
	"stretch/internal/rng"
)

// Class distinguishes the two workload families in the paper.
type Class uint8

// Workload classes.
const (
	LatencySensitive Class = iota
	Batch
)

// String returns the class name.
func (c Class) String() string {
	if c == LatencySensitive {
		return "latency-sensitive"
	}
	return "batch"
}

// Mix gives the fraction of each micro-op kind in the dynamic stream. The
// remainder after Load+Store+Branch+FP+Mul is integer ALU work.
type Mix struct {
	Load, Store, Branch, FP, Mul float64
}

// Valid reports whether the fractions are sane.
func (m Mix) Valid() bool {
	sum := m.Load + m.Store + m.Branch + m.FP + m.Mul
	return m.Load >= 0 && m.Store >= 0 && m.Branch >= 0 && m.FP >= 0 && m.Mul >= 0 && sum <= 1.0001
}

// Profile is the statistical description of one workload.
type Profile struct {
	// Name identifies the workload (e.g. "web-search", "zeusmp").
	Name string
	// Class marks the workload latency-sensitive or batch.
	Class Class
	// Mix is the dynamic instruction mix.
	Mix Mix

	// HotCodeBytes is the L1-I-resident part of the code working set;
	// HotCodeProb is the probability a control transfer stays inside it.
	// The remainder of CodeFootprint is touched uniformly (cold code,
	// LLC-resident). Server workloads have multi-MB cold code.
	CodeFootprint int64
	HotCodeBytes  int64
	HotCodeProb   float64
	// BlockLen is the mean basic-block length in instructions.
	BlockLen float64

	// Data tiers: scatter/chase accesses hit the hot region with
	// HotDataProb, the warm region with WarmDataProb, and the cold
	// region (DataFootprint) otherwise.
	DataFootprint int64
	HotDataBytes  int64
	WarmDataBytes int64
	HotDataProb   float64
	WarmDataProb  float64

	// StreamFrac is the fraction of loads/stores that walk sequential
	// cold addresses (stride-prefetchable); StreamSites is the number of
	// concurrent independent stream walkers.
	StreamFrac  float64
	StreamSites int
	// ChaseFrac is the fraction of loads whose address depends on the
	// value of the previous load (pointer chasing): these serialise and
	// yield no MLP regardless of window size.
	ChaseFrac float64

	// DepProb is the probability a µop has a register input; DepMean is
	// the mean dependence distance (larger = more ILP); DepTwoFrac adds
	// a second input.
	DepProb    float64
	DepMean    float64
	DepTwoFrac float64

	// BranchNoise is the probability a branch outcome is inherently
	// unpredictable (flips against its bias); sets the mispredict floor.
	BranchNoise float64
	// TakenBias is the mean probability a conditional branch is taken.
	TakenBias float64
}

// Validate checks the profile for obviously broken parameters.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("trace: profile missing name")
	case !p.Mix.Valid():
		return fmt.Errorf("trace: profile %s has invalid mix", p.Name)
	case p.CodeFootprint < 1024 || p.DataFootprint < 1024:
		return fmt.Errorf("trace: profile %s has degenerate footprints", p.Name)
	case p.HotCodeBytes <= 0 || p.HotDataBytes <= 0 || p.WarmDataBytes <= 0:
		return fmt.Errorf("trace: profile %s has empty locality tiers", p.Name)
	case p.HotCodeProb < 0 || p.HotCodeProb > 1:
		return fmt.Errorf("trace: profile %s has invalid hot-code probability", p.Name)
	case p.HotDataProb < 0 || p.WarmDataProb < 0 || p.HotDataProb+p.WarmDataProb > 1:
		return fmt.Errorf("trace: profile %s has invalid data tier probabilities", p.Name)
	case p.BlockLen < 2:
		return fmt.Errorf("trace: profile %s has block length < 2", p.Name)
	case p.StreamFrac < 0 || p.ChaseFrac < 0 || p.StreamFrac+p.ChaseFrac > 1:
		return fmt.Errorf("trace: profile %s has invalid load behaviour fractions", p.Name)
	case p.StreamFrac > 0 && p.StreamSites <= 0:
		return fmt.Errorf("trace: profile %s streams without stream sites", p.Name)
	case p.DepMean < 1 || p.DepProb < 0 || p.DepProb > 1:
		return fmt.Errorf("trace: profile %s has invalid dependence model", p.Name)
	}
	return nil
}

const (
	lineBytes  = 64
	instrBytes = 4
	// Address-space layout. Code and the three data tiers live in
	// disjoint ranges; the core salts addresses per thread when
	// structures are shared.
	codeBase     = uint64(0x0000_4000_0000)
	hotDataBase  = uint64(0x0008_0000_0000)
	warmDataBase = uint64(0x0010_0000_0000)
	coldDataBase = uint64(0x0020_0000_0000)

	streamStride = 16 // bytes between consecutive stream accesses
	maxDep       = 255
)

// Generator expands a Profile into a deterministic µop stream. It
// implements the core's Stream interface.
type Generator struct {
	prof Profile
	src  *rng.Stream

	hotBlocks, coldBlocks int
	block                 int    // current static block id
	blockPC               uint64 // start PC of the current block
	pcCursor              uint64 // PC of the next µop
	blockLeft             int
	takenProb             float64

	hotLines, warmLines, coldLines int64

	streamPtrs []uint64
	streamNext int

	sinceLoad int32
	emitted   uint64
}

// NewGenerator builds a generator for profile p seeded by seed. The same
// (profile, seed) pair always produces the identical stream.
func NewGenerator(p Profile, seed uint64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	blockBytes := 2 * int64(p.BlockLen) * instrBytes // block spacing
	g := &Generator{
		prof:       p,
		src:        rng.New(seed).Derive(0xace),
		hotBlocks:  atLeast(int(p.HotCodeBytes/blockBytes), 2),
		coldBlocks: atLeast(int(p.CodeFootprint/blockBytes), 4),
		hotLines:   atLeast64(p.HotDataBytes/lineBytes, 2),
		warmLines:  atLeast64(p.WarmDataBytes/lineBytes, 2),
		coldLines:  atLeast64(p.DataFootprint/lineBytes, 4),
	}
	sites := p.StreamSites
	if sites <= 0 {
		sites = 1
	}
	g.streamPtrs = make([]uint64, sites)
	span := uint64(g.coldLines) * lineBytes / uint64(sites)
	for i := range g.streamPtrs {
		g.streamPtrs[i] = coldDataBase + uint64(i)*span
	}
	g.newBlock()
	return g, nil
}

func atLeast(v, min int) int {
	if v < min {
		return min
	}
	return v
}

func atLeast64(v, min int64) int64 {
	if v < min {
		return min
	}
	return v
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// newBlock jumps to a fresh basic block: hot pool with HotCodeProb, cold
// pool otherwise.
func (g *Generator) newBlock() {
	if g.src.Bernoulli(g.prof.HotCodeProb) {
		g.enterBlock(g.src.Intn(g.hotBlocks))
	} else {
		g.enterBlock(g.hotBlocks + g.src.Intn(g.coldBlocks))
	}
}

// fallthrough advances to the sequentially next block in the same pool (a
// not-taken terminator falls into adjacent code).
func (g *Generator) fallThrough() {
	b := g.block + 1
	if g.block < g.hotBlocks {
		b %= g.hotBlocks
	} else if b >= g.hotBlocks+g.coldBlocks {
		b = g.hotBlocks
	}
	g.enterBlock(b)
}

// enterBlock positions the generator at the start of static block b. Block
// length and branch bias are deterministic properties of the block, so
// every visit ends at the same terminator PC with the same direction;
// BranchNoise flips individual executions. Stable sites are what makes
// real branches learnable — predictor accuracy then degrades only through
// noise and through table aliasing/capacity pressure, which is exactly the
// contention the BTB+BP sharing studies measure.
func (g *Generator) enterBlock(b int) {
	g.block = b
	spacing := 2 * int64(g.prof.BlockLen) * instrBytes
	g.blockPC = codeBase + uint64(b)*uint64(spacing)
	g.pcCursor = g.blockPC
	h := rng.New(uint64(b)).Derive(7)
	// Length in [2, 2*BlockLen-1], mean ≈ BlockLen, bounded by the block
	// spacing so code never overruns into the next block's range.
	n := 2 + h.Intn(int(2*g.prof.BlockLen)-2)
	g.blockLeft = n
	if h.Float64() < g.prof.TakenBias {
		g.takenProb = 1
	} else {
		g.takenProb = 0
	}
}

// tieredLine returns a data address in the hot/warm/cold tiers.
func (g *Generator) tieredLine() uint64 {
	r := g.src.Float64()
	switch {
	case r < g.prof.HotDataProb:
		return hotDataBase + uint64(g.src.Intn(int(g.hotLines)))*lineBytes + uint64(g.src.Intn(8))*8
	case r < g.prof.HotDataProb+g.prof.WarmDataProb:
		return warmDataBase + uint64(g.src.Intn(int(g.warmLines)))*lineBytes + uint64(g.src.Intn(8))*8
	default:
		line := uint64(g.src.Uint64() % uint64(g.coldLines))
		return coldDataBase + line*lineBytes + uint64(g.src.Intn(8))*8
	}
}

// Next produces the next micro-op in program order.
func (g *Generator) Next() isa.MicroOp {
	pc := g.pcCursor
	g.pcCursor += instrBytes
	g.blockLeft--

	var op isa.MicroOp
	op.PC = pc
	op.Site = uint32(pc >> 2)

	if g.blockLeft <= 0 {
		// Terminate the block with a branch.
		op.Kind = isa.OpBranch
		taken := g.src.Bernoulli(g.takenProb)
		if g.src.Bernoulli(g.prof.BranchNoise) {
			taken = !taken
		}
		op.Taken = taken
		if taken {
			g.newBlock()
		} else {
			g.fallThrough()
		}
		op.Target = g.blockPC
		// Most branch conditions test values computed well in advance
		// (loop counters, flags); only some depend on recent data. This
		// keeps mispredict resolution mostly fast — if every branch
		// waited on an in-flight load, the front end would serialise on
		// the memory system, which real traces do not show.
		if g.src.Bernoulli(0.4) {
			op.Dep1 = g.depDistance()
		}
		g.sinceLoad++
		g.emitted++
		return op
	}

	// The kind of the instruction at a given PC is a deterministic
	// property of the static code (real programs never morph an add into
	// a load at the same address); only operands, addresses and branch
	// outcomes vary across executions. Stable kinds keep the branch-site
	// set small and learnable and give loads stable PCs.
	m := g.prof.Mix
	r := rng.New(pc).Derive(3).Float64()
	switch {
	case r < m.Load:
		op.Kind = isa.OpLoad
		g.loadAddr(&op)
	case r < m.Load+m.Store:
		op.Kind = isa.OpStore
		op.Addr = g.storeAddr(&op)
	case r < m.Load+m.Store+m.FP:
		op.Kind = isa.OpFP
	case r < m.Load+m.Store+m.FP+m.Mul:
		op.Kind = isa.OpIntMul
	case r < m.Load+m.Store+m.FP+m.Mul+m.Branch:
		// Intra-block branch (call/unconditional): predictable.
		op.Kind = isa.OpBranch
		op.Taken = false
		op.Target = pc + instrBytes
	default:
		op.Kind = isa.OpIntAlu
	}

	if op.Dep1 == 0 && g.src.Bernoulli(g.prof.DepProb) {
		op.Dep1 = g.depDistance()
	}
	if g.src.Bernoulli(g.prof.DepTwoFrac) {
		op.Dep2 = g.depDistance()
	}
	if op.Kind == isa.OpLoad {
		g.sinceLoad = 0
	} else {
		g.sinceLoad++
	}
	g.emitted++
	return op
}

// loadAddr selects the load behaviour: stream, pointer chase, or tiered
// scatter. Chase loads carry a dependence on the previous load.
func (g *Generator) loadAddr(op *isa.MicroOp) {
	r := g.src.Float64()
	switch {
	case r < g.prof.StreamFrac:
		i := g.streamNext
		g.streamNext = (g.streamNext + 1) % len(g.streamPtrs)
		g.streamPtrs[i] += streamStride
		span := uint64(g.coldLines) * lineBytes / uint64(len(g.streamPtrs))
		base := coldDataBase + uint64(i)*span
		if g.streamPtrs[i] >= base+span {
			g.streamPtrs[i] = base
		}
		op.Addr = g.streamPtrs[i]
		// Stable site id per walker lets the PC-indexed stride
		// prefetcher latch the stream, as a fixed load PC would in
		// real code.
		op.Site = uint32(0x5000_0000 + i)
	case r < g.prof.StreamFrac+g.prof.ChaseFrac:
		d := g.sinceLoad + 1
		if d > maxDep {
			d = maxDep
		}
		op.Dep1 = d
		op.Addr = g.tieredLine()
	default:
		op.Addr = g.tieredLine()
	}
}

func (g *Generator) storeAddr(op *isa.MicroOp) uint64 {
	if g.src.Bernoulli(g.prof.StreamFrac) {
		i := g.streamNext
		g.streamPtrs[i] += streamStride
		span := uint64(g.coldLines) * lineBytes / uint64(len(g.streamPtrs))
		base := coldDataBase + uint64(i)*span
		if g.streamPtrs[i] >= base+span {
			g.streamPtrs[i] = base
		}
		op.Site = uint32(0x5000_0000 + i)
		return g.streamPtrs[i]
	}
	return g.tieredLine()
}

// depDistance draws a register dependence distance in [1, maxDep].
func (g *Generator) depDistance() int32 {
	d := int32(g.src.Geometric(g.prof.DepMean))
	if d > maxDep {
		d = maxDep
	}
	if max := int32(g.emitted); d > max && max > 0 {
		d = max
	}
	return d
}

// Emitted returns the number of µops generated so far.
func (g *Generator) Emitted() uint64 { return g.emitted }
