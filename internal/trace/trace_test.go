package trace

import (
	"testing"
	"testing/quick"

	"stretch/internal/isa"
)

// testProfile returns a small valid profile for generator tests.
func testProfile() Profile {
	return Profile{
		Name:          "test",
		Class:         Batch,
		Mix:           Mix{Load: 0.25, Store: 0.08, Branch: 0.03, FP: 0.20, Mul: 0.02},
		CodeFootprint: 64 << 10,
		HotCodeBytes:  16 << 10,
		HotCodeProb:   0.9,
		BlockLen:      8,
		DataFootprint: 8 << 20,
		HotDataBytes:  32 << 10,
		WarmDataBytes: 1 << 20,
		HotDataProb:   0.7,
		WarmDataProb:  0.2,
		StreamFrac:    0.2,
		StreamSites:   4,
		ChaseFrac:     0.2,
		DepProb:       0.6,
		DepMean:       6,
		DepTwoFrac:    0.2,
		BranchNoise:   0.02,
		TakenBias:     0.5,
	}
}

func TestDeterminism(t *testing.T) {
	a, err := NewGenerator(testProfile(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(testProfile(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("same-seed generators diverged at op %d: %+v vs %+v", i, x, y)
		}
	}
	if a.Emitted() != 20000 {
		t.Fatalf("Emitted = %d", a.Emitted())
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := NewGenerator(testProfile(), 1)
	b, _ := NewGenerator(testProfile(), 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical ops", same)
	}
}

func TestValidateRejections(t *testing.T) {
	bad := func(mut func(*Profile)) Profile {
		p := testProfile()
		mut(&p)
		return p
	}
	cases := map[string]Profile{
		"no name":       bad(func(p *Profile) { p.Name = "" }),
		"bad mix":       bad(func(p *Profile) { p.Mix.Load = 1.5 }),
		"tiny code":     bad(func(p *Profile) { p.CodeFootprint = 10 }),
		"no hot tiers":  bad(func(p *Profile) { p.HotDataBytes = 0 }),
		"bad hot prob":  bad(func(p *Profile) { p.HotCodeProb = 1.5 }),
		"tier overflow": bad(func(p *Profile) { p.HotDataProb, p.WarmDataProb = 0.8, 0.5 }),
		"short blocks":  bad(func(p *Profile) { p.BlockLen = 1 }),
		"load fracs":    bad(func(p *Profile) { p.StreamFrac, p.ChaseFrac = 0.8, 0.5 }),
		"no sites":      bad(func(p *Profile) { p.StreamSites = 0 }),
		"bad deps":      bad(func(p *Profile) { p.DepMean = 0 }),
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid profile", name)
		}
		if _, err := NewGenerator(p, 1); err == nil {
			t.Errorf("%s: NewGenerator accepted invalid profile", name)
		}
	}
	good := testProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}

func TestMixApproximatelyHonoured(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 7)
	counts := make(map[isa.OpKind]int)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	loadFrac := float64(counts[isa.OpLoad]) / n
	if loadFrac < 0.20 || loadFrac > 0.30 {
		t.Errorf("load fraction = %.3f, want ~0.25", loadFrac)
	}
	fpFrac := float64(counts[isa.OpFP]) / n
	if fpFrac < 0.15 || fpFrac > 0.25 {
		t.Errorf("fp fraction = %.3f, want ~0.20", fpFrac)
	}
	// Terminators add branches beyond the mix fraction.
	brFrac := float64(counts[isa.OpBranch]) / n
	if brFrac < 0.05 || brFrac > 0.25 {
		t.Errorf("branch fraction = %.3f", brFrac)
	}
}

func TestDependenceBounds(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 9)
	for i := 0; i < 50000; i++ {
		op := g.Next()
		if op.Dep1 < 0 || op.Dep1 > 255 {
			t.Fatalf("op %d Dep1 = %d out of [0,255]", i, op.Dep1)
		}
		if op.Dep2 < 0 || op.Dep2 > 255 {
			t.Fatalf("op %d Dep2 = %d out of [0,255]", i, op.Dep2)
		}
		if int64(op.Dep1) > int64(i+1) {
			t.Fatalf("op %d depends beyond the start of the trace (%d)", i, op.Dep1)
		}
	}
}

func TestStableKindsPerPC(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 11)
	kinds := make(map[uint64]isa.OpKind)
	for i := 0; i < 100000; i++ {
		op := g.Next()
		// Branch terminators share PCs with nothing else; loads keep
		// their behaviourally-relevant kind stable.
		if prev, ok := kinds[op.PC]; ok {
			if prev != op.Kind {
				t.Fatalf("PC %#x changed kind %v -> %v", op.PC, prev, op.Kind)
			}
		} else {
			kinds[op.PC] = op.Kind
		}
	}
}

func TestBranchSitesDeterministicWithoutNoise(t *testing.T) {
	p := testProfile()
	p.BranchNoise = 0
	g, _ := NewGenerator(p, 13)
	dir := make(map[uint64]bool)
	for i := 0; i < 100000; i++ {
		op := g.Next()
		if op.Kind != isa.OpBranch {
			continue
		}
		if prev, ok := dir[op.PC]; ok {
			if prev != op.Taken {
				t.Fatalf("noise-free branch site %#x changed direction", op.PC)
			}
		} else {
			dir[op.PC] = op.Taken
		}
	}
}

func TestChaseLoadsDependOnPreviousLoad(t *testing.T) {
	p := testProfile()
	p.ChaseFrac = 1.0
	p.StreamFrac = 0
	g, _ := NewGenerator(p, 15)
	lastLoad := -1
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Kind != isa.OpLoad {
			continue
		}
		if lastLoad >= 0 {
			want := i - lastLoad
			if want <= 255 && int(op.Dep1) != want {
				t.Fatalf("chase load at %d: Dep1 = %d, want %d", i, op.Dep1, want)
			}
		}
		lastLoad = i
	}
}

func TestStreamAddressesStride(t *testing.T) {
	p := testProfile()
	p.StreamFrac = 1.0
	p.ChaseFrac = 0
	p.StreamSites = 1
	p.Mix.Store = 0 // only loads walk the stream
	g, _ := NewGenerator(p, 17)
	var last uint64
	seen := 0
	for i := 0; i < 5000 && seen < 100; i++ {
		op := g.Next()
		if op.Kind != isa.OpLoad {
			continue
		}
		if seen > 0 && op.Addr != last+16 && op.Addr > last {
			t.Fatalf("stream stride broken: %#x -> %#x", last, op.Addr)
		}
		last = op.Addr
		seen++
	}
	if seen < 100 {
		t.Fatal("too few stream loads observed")
	}
}

func TestAddressesWithinRegions(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 19)
	for i := 0; i < 50000; i++ {
		op := g.Next()
		if op.Kind.IsMem() && op.Addr < hotDataBase {
			t.Fatalf("data address %#x below data base", op.Addr)
		}
		if op.PC < codeBase || op.PC > codeBase+1<<30 {
			t.Fatalf("PC %#x outside code region", op.PC)
		}
	}
}

func TestTakenBranchTargetsBlockStarts(t *testing.T) {
	g, _ := NewGenerator(testProfile(), 21)
	var prev isa.MicroOp
	havePrev := false
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if havePrev && prev.Kind == isa.OpBranch && prev.Taken {
			if op.PC != prev.Target {
				t.Fatalf("taken branch target %#x but next PC %#x", prev.Target, op.PC)
			}
		}
		prev, havePrev = op, true
	}
}

func TestGeneratorQuickProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		g, err := NewGenerator(testProfile(), seed)
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			op := g.Next()
			if op.Kind == isa.OpBranch && op.Taken && op.Target == 0 {
				return false // taken branches must carry a target
			}
			if op.Kind.IsMem() && op.Addr == 0 {
				return false // memory ops must carry an address
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
