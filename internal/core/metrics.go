package core

import (
	"fmt"
	"sort"
)

// RunSpec bounds one simulation run. Instruction counts are per thread,
// mirroring the SimFlex methodology (§V-C): warm up, then measure.
type RunSpec struct {
	// WarmupInstr µops retire per thread before measurement starts.
	WarmupInstr uint64
	// MeasureInstr µops are measured per thread.
	MeasureInstr uint64
	// MaxCycles caps the run (0 = derive a generous default).
	MaxCycles int64
}

// ThreadMetrics summarises one hardware thread's measured window.
type ThreadMetrics struct {
	// IPC is µops committed per cycle inside the measurement window
	// (the paper's UIPC figure of merit).
	IPC float64
	// Cycles and Instructions delimit the measured window.
	Cycles       int64
	Instructions uint64
	// MispredictRate is mispredicts per branch over the whole run.
	MispredictRate float64
	// L1DMissRate and L1IMissRate are per-access miss ratios attributed
	// to this thread over the whole run.
	L1DMissRate float64
	L1IMissRate float64
	// MLPTail[k] is the fraction of measured time with >= k demand
	// misses in flight (k = 0..5); MLPTail[2] is the paper's "exhibits
	// MLP" statistic from Fig. 7.
	MLPTail [6]float64
	// AvgOutstanding is the mean number of demand misses in flight.
	AvgOutstanding float64
	// Stall diagnostics (event counts over the whole run): cycles the
	// thread's fetch was blocked, and dispatch-blocking events by cause.
	StallFetchBlocked uint64
	StallBranchRec    uint64
	StallROBFull      uint64
	StallLSQFull      uint64
	StallEmptyFB      uint64
}

// Run executes the core until every thread has retired
// WarmupInstr+MeasureInstr µops (or MaxCycles elapses) and returns
// per-thread metrics. It may be called once per Core.
func (c *Core) Run(spec RunSpec) ([]ThreadMetrics, error) {
	if spec.MeasureInstr == 0 {
		return nil, fmt.Errorf("core: zero measurement length")
	}
	maxCycles := spec.MaxCycles
	if maxCycles == 0 {
		// At worst IPC ~0.005 per thread (pathological throttling).
		maxCycles = int64(spec.WarmupInstr+spec.MeasureInstr) * 200
	}
	target := spec.WarmupInstr + spec.MeasureInstr
	for c.cycle < maxCycles {
		c.step()
		doneAll := true
		for _, t := range c.threads {
			if t.measStartCycle == 0 && t.committed >= spec.WarmupInstr {
				t.measStartCycle = c.cycle
				t.measStartN = t.committed
			}
			if t.measEndCycle == 0 && t.committed >= target {
				t.measEndCycle = c.cycle
				t.measEndN = t.committed
			}
			if t.measEndCycle == 0 {
				doneAll = false
			}
		}
		if doneAll {
			break
		}
	}
	out := make([]ThreadMetrics, c.nthreads)
	for i, t := range c.threads {
		if t.measStartCycle == 0 {
			t.measStartCycle, t.measStartN = 1, 0
		}
		if t.measEndCycle == 0 { // hit the cycle cap: measure what ran
			t.measEndCycle, t.measEndN = c.cycle, t.committed
		}
		out[i] = c.threadMetrics(t)
	}
	return out, nil
}

// RunCycles advances the core by n cycles without measurement windows;
// used by the closed-loop controller experiments. It returns per-thread
// committed-instruction counts since the start of the run.
func (c *Core) RunCycles(n int64) []uint64 {
	end := c.cycle + n
	for c.cycle < end {
		c.step()
	}
	out := make([]uint64, c.nthreads)
	for i, t := range c.threads {
		out[i] = t.committed
	}
	return out
}

// Committed returns the lifetime committed µop count of thread tid.
func (c *Core) Committed(tid int) uint64 { return c.threads[tid].committed }

// ROBOccupancy returns thread tid's current window occupancy (testing and
// introspection).
func (c *Core) ROBOccupancy(tid int) int { return c.threads[tid].robOcc }

// ROBLimit returns thread tid's current limit register value.
func (c *Core) ROBLimit(tid int) int { return c.threads[tid].robLimit }

func (c *Core) threadMetrics(t *thread) ThreadMetrics {
	m := ThreadMetrics{
		Cycles:       t.measEndCycle - t.measStartCycle,
		Instructions: t.measEndN - t.measStartN,
	}
	if m.Cycles > 0 {
		m.IPC = float64(m.Instructions) / float64(m.Cycles)
	}
	if t.branches > 0 {
		m.MispredictRate = float64(t.mispredicts) / float64(t.branches)
	}
	if t.dAccesses > 0 {
		m.L1DMissRate = float64(t.dMisses) / float64(t.dAccesses)
	}
	if t.iAccesses > 0 {
		m.L1IMissRate = float64(t.iMisses) / float64(t.iAccesses)
	}
	m.MLPTail, m.AvgOutstanding = mlpCensus(t.missEvents, t.measStartCycle, t.measEndCycle)
	m.StallFetchBlocked = t.stallFetchBlocked
	m.StallBranchRec = t.stallBranchRec
	m.StallROBFull = t.stallROBFull
	m.StallLSQFull = t.stallLSQFull
	m.StallEmptyFB = t.stallEmptyFB
	return m
}

// mlpCensus integrates the demand-miss interval events over the window and
// returns the fraction of time with >= k misses outstanding, for k = 0..5,
// plus the time-average outstanding count.
func mlpCensus(events []missEvent, start, end int64) (tail [6]float64, avg float64) {
	if end <= start || len(events) == 0 {
		tail[0] = 1
		return tail, 0
	}
	evs := make([]missEvent, 0, len(events))
	for _, e := range events {
		at := e.at
		if at < start {
			at = start
		}
		if at > end {
			at = end
		}
		evs = append(evs, missEvent{at: at, delta: e.delta})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })

	var timeAt [16]int64
	level := 0
	prev := start
	area := int64(0)
	for _, e := range evs {
		if e.at > prev {
			l := level
			if l > 15 {
				l = 15
			}
			if l < 0 {
				l = 0
			}
			timeAt[l] += e.at - prev
			area += int64(level) * (e.at - prev)
			prev = e.at
		}
		level += int(e.delta)
	}
	if end > prev {
		l := level
		if l > 15 {
			l = 15
		}
		if l < 0 {
			l = 0
		}
		timeAt[l] += end - prev
		area += int64(level) * (end - prev)
	}
	total := float64(end - start)
	cum := int64(0)
	for k := 15; k >= 0; k-- {
		cum += timeAt[k]
		if k < 6 {
			tail[k] = float64(cum) / total
		}
	}
	return tail, float64(area) / total
}
