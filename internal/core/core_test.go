package core

import (
	"testing"
	"testing/quick"

	"stretch/internal/isa"
	"stretch/internal/trace"
)

// fakeStream feeds a fixed op pattern, for white-box pipeline tests.
type fakeStream struct {
	ops []isa.MicroOp
	i   int
}

func (f *fakeStream) Next() isa.MicroOp {
	op := f.ops[f.i%len(f.ops)]
	op.PC += uint64(f.i/len(f.ops)) % 4 * 0 // keep PCs stable
	f.i++
	return op
}

// aluStream returns an endless stream of independent single-cycle ALU ops
// walking a tiny code footprint.
func aluStream() *fakeStream {
	ops := make([]isa.MicroOp, 64)
	for i := range ops {
		ops[i] = isa.MicroOp{PC: 0x4000 + uint64(i*4), Kind: isa.OpIntAlu}
	}
	return &fakeStream{ops: ops}
}

func genProfile() trace.Profile {
	return trace.Profile{
		Name:          "t",
		Class:         trace.Batch,
		Mix:           trace.Mix{Load: 0.2, Store: 0.05, Branch: 0.02, FP: 0.1, Mul: 0.02},
		CodeFootprint: 64 << 10,
		HotCodeBytes:  16 << 10,
		HotCodeProb:   0.95,
		BlockLen:      8,
		DataFootprint: 4 << 20,
		HotDataBytes:  24 << 10,
		WarmDataBytes: 1 << 20,
		HotDataProb:   0.8,
		WarmDataProb:  0.15,
		StreamFrac:    0.2,
		StreamSites:   2,
		ChaseFrac:     0.1,
		DepProb:       0.6,
		DepMean:       6,
		DepTwoFrac:    0.2,
		BranchNoise:   0.01,
		TakenBias:     0.5,
	}
}

func mustGen(t *testing.T, seed uint64) *trace.Generator {
	t.Helper()
	g, err := trace.NewGenerator(genProfile(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.ROBEntries = 0 },
		func(c *Config) { c.MSHRPerThread = 0 },
		func(c *Config) { c.FlushCycles = -1 },
		func(c *Config) { c.FetchThrottle = -2 },
		func(c *Config) { c.ROBLimit = [2]int{0, 96} },
		func(c *Config) { c.ROBLimit = [2]int{150, 100} },
		func(c *Config) { c.LSQLimit = [2]int{0, 32} },
		func(c *Config) { c.FU[isa.FUFP] = 0 },
	}
	for i, mut := range bad {
		cfg := Default()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSetSkewProportionalLSQ(t *testing.T) {
	cfg := Default()
	if err := cfg.SetSkew(56); err != nil {
		t.Fatal(err)
	}
	if cfg.ROBLimit != [2]int{56, 136} {
		t.Fatalf("ROB limits = %v", cfg.ROBLimit)
	}
	if cfg.LSQLimit[0]+cfg.LSQLimit[1] > cfg.LSQEntries {
		t.Fatalf("LSQ limits %v exceed %d", cfg.LSQLimit, cfg.LSQEntries)
	}
	// Proportional: 56/192 of 64 ≈ 18.
	if cfg.LSQLimit[0] < 14 || cfg.LSQLimit[0] > 22 {
		t.Fatalf("LSQ limit[0] = %d, want ~18", cfg.LSQLimit[0])
	}
	if err := cfg.SetSkew(0); err == nil {
		t.Fatal("SetSkew(0) accepted")
	}
	if err := cfg.SetSkew(192); err == nil {
		t.Fatal("SetSkew(total) accepted")
	}
}

func TestNewRejectsBadStreamCount(t *testing.T) {
	if _, err := New(Default()); err == nil {
		t.Fatal("New with no streams accepted")
	}
	g := aluStream()
	if _, err := New(Default(), g, g, g); err == nil {
		t.Fatal("New with three streams accepted")
	}
}

func TestSoloRunProgressAndIPC(t *testing.T) {
	c, err := New(Solo(), mustGen(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := c.Run(RunSpec{WarmupInstr: 5000, MeasureInstr: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].IPC <= 0 || ms[0].IPC > float64(Solo().Width) {
		t.Fatalf("solo IPC = %v out of (0, width]", ms[0].IPC)
	}
	if ms[0].Instructions < 10000 {
		t.Fatalf("measured only %d instructions", ms[0].Instructions)
	}
	if c.Committed(0) < 15000 {
		t.Fatalf("committed %d < warm+measure", c.Committed(0))
	}
}

func TestRunRejectsZeroMeasure(t *testing.T) {
	c, _ := New(Solo(), aluStream())
	if _, err := c.Run(RunSpec{}); err == nil {
		t.Fatal("zero measurement accepted")
	}
}

func TestPureALUIPCHigh(t *testing.T) {
	c, _ := New(Solo(), aluStream())
	ms, err := c.Run(RunSpec{WarmupInstr: 2000, MeasureInstr: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].IPC < 3 {
		t.Fatalf("independent ALU stream IPC = %v, want >= 3 (6-wide core)", ms[0].IPC)
	}
}

func TestROBOccupancyNeverExceedsLimit(t *testing.T) {
	cfg := Default()
	if err := cfg.SetSkew(56); err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, mustGen(t, 2), mustGen(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		c.step()
		if o := c.ROBOccupancy(0); o > 56 {
			t.Fatalf("thread 0 occupancy %d > limit 56", o)
		}
		if o := c.ROBOccupancy(1); o > 136 {
			t.Fatalf("thread 1 occupancy %d > limit 136", o)
		}
		if c.threads[0].lsqOcc > c.threads[0].lsqLim ||
			c.threads[1].lsqOcc > c.threads[1].lsqLim {
			t.Fatal("LSQ occupancy exceeded limit")
		}
	}
}

func TestDynamicPoolBound(t *testing.T) {
	cfg := Default()
	cfg.ROBPolicy = ROBDynamic
	c, err := New(cfg, mustGen(t, 4), mustGen(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		c.step()
		r, l := c.poolOcc()
		if r > cfg.ROBEntries {
			t.Fatalf("pool occupancy %d > %d", r, cfg.ROBEntries)
		}
		if l > cfg.LSQEntries {
			t.Fatalf("LSQ pool occupancy %d > %d", l, cfg.LSQEntries)
		}
	}
}

func TestModeSwitchDrainsAndApplies(t *testing.T) {
	c, err := New(Default(), mustGen(t, 6), mustGen(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	c.RunCycles(2000)
	if c.ROBLimit(0) != 96 {
		t.Fatalf("initial limit = %d", c.ROBLimit(0))
	}
	if err := c.SetPartition(56); err != nil {
		t.Fatal(err)
	}
	if c.ModeSwitches() != 1 {
		t.Fatal("mode switch not counted")
	}
	before0, before1 := c.Committed(0), c.Committed(1)
	c.RunCycles(5000)
	if c.ROBLimit(0) != 56 || c.ROBLimit(1) != 136 {
		t.Fatalf("limits after switch = %d/%d", c.ROBLimit(0), c.ROBLimit(1))
	}
	if c.Committed(0) <= before0 || c.Committed(1) <= before1 {
		t.Fatal("threads stopped committing after a mode switch")
	}
	// Switch back mid-flight (failure injection: immediate re-switch).
	if err := c.SetEqualPartition(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPartition(136); err != nil {
		t.Fatal(err)
	}
	c.RunCycles(5000)
	if c.ROBLimit(0) != 136 {
		t.Fatalf("limit after re-switch = %d", c.ROBLimit(0))
	}
	if err := c.SetPartition(500); err == nil {
		t.Fatal("out-of-range skew accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		c, err := New(Default(), mustGen(t, 8), mustGen(t, 9))
		if err != nil {
			t.Fatal(err)
		}
		ms, err := c.Run(RunSpec{WarmupInstr: 3000, MeasureInstr: 6000})
		if err != nil {
			t.Fatal(err)
		}
		return ms[0].IPC, ms[1].IPC
	}
	a0, a1 := run()
	b0, b1 := run()
	if a0 != b0 || a1 != b1 {
		t.Fatalf("identical runs diverged: (%v,%v) vs (%v,%v)", a0, a1, b0, b1)
	}
}

func TestBModeShiftsThroughput(t *testing.T) {
	measure := func(skew int) (float64, float64) {
		cfg := Default()
		if skew > 0 {
			if err := cfg.SetSkew(skew); err != nil {
				t.Fatal(err)
			}
		}
		// Thread 0: chase-bound (window-insensitive); thread 1: scatter
		// (window-sensitive).
		p0 := genProfile()
		p0.ChaseFrac, p0.StreamFrac = 0.6, 0
		p0.HotDataProb, p0.WarmDataProb = 0.85, 0.13
		p1 := genProfile()
		p1.ChaseFrac, p1.StreamFrac = 0, 0.1
		p1.HotDataProb, p1.WarmDataProb = 0.62, 0.16
		g0, err := trace.NewGenerator(p0, 10)
		if err != nil {
			t.Fatal(err)
		}
		g1, err := trace.NewGenerator(p1, 11)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(cfg, g0, g1)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := c.Run(RunSpec{WarmupInstr: 8000, MeasureInstr: 15000})
		if err != nil {
			t.Fatal(err)
		}
		return ms[0].IPC, ms[1].IPC
	}
	eq0, eq1 := measure(0)
	b0, b1 := measure(56)
	if b1 <= eq1 {
		t.Fatalf("B-mode did not speed up the window-hungry thread: %v -> %v", eq1, b1)
	}
	if b0 >= eq0 {
		t.Fatalf("B-mode did not cost the shrunk thread anything: %v -> %v", eq0, b0)
	}
}

func TestFetchThrottleSlowsThrottledThread(t *testing.T) {
	measure := func(m int) float64 {
		cfg := Default()
		cfg.ROBPolicy = ROBDynamic
		cfg.FetchThrottle = m
		cfg.ThrottledThread = 0
		c, err := New(cfg, mustGen(t, 12), mustGen(t, 13))
		if err != nil {
			t.Fatal(err)
		}
		ms, err := c.Run(RunSpec{WarmupInstr: 3000, MeasureInstr: 8000})
		if err != nil {
			t.Fatal(err)
		}
		return ms[0].IPC
	}
	if free, throttled := measure(0), measure(16); throttled >= free*0.8 {
		t.Fatalf("1:16 throttling barely slowed thread 0: %v vs %v", throttled, free)
	}
}

func TestSharedCachesContend(t *testing.T) {
	run := func(shared bool) float64 {
		cfg := Default()
		cfg.SharedL1I, cfg.SharedL1D, cfg.SharedBP = shared, shared, shared
		if !shared {
			cfg.MSHRPerThread = 10
		}
		c, err := New(cfg, mustGen(t, 14), mustGen(t, 15))
		if err != nil {
			t.Fatal(err)
		}
		ms, err := c.Run(RunSpec{WarmupInstr: 5000, MeasureInstr: 10000})
		if err != nil {
			t.Fatal(err)
		}
		return ms[0].IPC + ms[1].IPC
	}
	if sh, pr := run(true), run(false); sh >= pr {
		t.Fatalf("shared structures should cost throughput: shared %v >= private %v", sh, pr)
	}
}

func TestMLPCensus(t *testing.T) {
	// Hand-built intervals: [0,10) one miss, [5,10) a second.
	events := []missEvent{{0, 1}, {5, 1}, {10, -1}, {10, -1}}
	tail, avg := mlpCensus(events, 0, 20)
	if tail[1] != 0.5 {
		t.Fatalf("tail[1] = %v, want 0.5", tail[1])
	}
	if tail[2] != 0.25 {
		t.Fatalf("tail[2] = %v, want 0.25", tail[2])
	}
	if avg != (10.0+5.0)/20.0 {
		t.Fatalf("avg = %v, want 0.75", avg)
	}
	// Empty window.
	tail, avg = mlpCensus(nil, 0, 10)
	if tail[0] != 1 || avg != 0 {
		t.Fatal("empty census should be all-zero levels")
	}
	// Events outside the window clip.
	tail, _ = mlpCensus([]missEvent{{-100, 1}, {100, -1}}, 0, 10)
	if tail[1] != 1 {
		t.Fatalf("clipped census tail[1] = %v, want 1", tail[1])
	}
}

func TestROBLimitsQuickProperty(t *testing.T) {
	// Property: for any valid skew, a short run never violates limits and
	// both threads commit.
	if err := quick.Check(func(seed uint64, skewRaw uint8) bool {
		skew := 16 + int(skewRaw)%(192-32) // [16, 176)
		cfg := Default()
		if err := cfg.SetSkew(skew); err != nil {
			return false
		}
		g0, err := trace.NewGenerator(genProfile(), seed)
		if err != nil {
			return false
		}
		g1, err := trace.NewGenerator(genProfile(), seed^0xdead)
		if err != nil {
			return false
		}
		c, err := New(cfg, g0, g1)
		if err != nil {
			return false
		}
		for i := 0; i < 600; i++ {
			c.step()
			if c.ROBOccupancy(0) > skew || c.ROBOccupancy(1) > 192-skew {
				return false
			}
		}
		return c.Committed(0) > 0 && c.Committed(1) > 0
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCyclesCapRespected(t *testing.T) {
	c, _ := New(Solo(), aluStream())
	ms, err := c.Run(RunSpec{WarmupInstr: 1 << 40, MeasureInstr: 1 << 40, MaxCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycle() > 501 {
		t.Fatalf("ran %d cycles past the cap", c.Cycle())
	}
	_ = ms
}

func TestICountPrefersLessOccupiedThread(t *testing.T) {
	c, _ := New(Default(), aluStream(), aluStream())
	c.threads[0].robOcc = 50
	c.threads[1].robOcc = 10
	if order := c.priorityOrder(); order[0] != 1 {
		t.Fatal("ICOUNT must prioritise the thread with fewer in-flight ops")
	}
	c.threads[1].robOcc = 90
	if order := c.priorityOrder(); order[0] != 0 {
		t.Fatal("ICOUNT must flip when occupancy flips")
	}
}

func TestPolicyStrings(t *testing.T) {
	if ROBPartitioned.String() != "partitioned" || ROBDynamic.String() != "dynamic" ||
		ROBPrivate.String() != "private" || ROBPolicy(9).String() == "" {
		t.Fatal("ROBPolicy strings")
	}
	if ModeBaseline.String() != "baseline" || ModeB.String() != "B-mode" ||
		ModeQ.String() != "Q-mode" || Mode(9).String() == "" {
		t.Fatal("Mode strings")
	}
}
