package core

import (
	"testing"

	"stretch/internal/isa"
)

// branchyStream emits runs of ALU ops separated by a branch whose outcome
// is drawn from a PRNG — unlearnable by both bimodal and gshare, so it
// mispredicts roughly half the time.
type branchyStream struct {
	i     int
	state uint64
	burst int // ALU ops between branches
}

func (s *branchyStream) Next() isa.MicroOp {
	s.i++
	if s.i%(s.burst+1) != 0 {
		return isa.MicroOp{PC: 0x4000 + uint64(s.i%64)*4, Kind: isa.OpIntAlu}
	}
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return isa.MicroOp{
		PC:     0x8000,
		Kind:   isa.OpBranch,
		Taken:  s.state>>63 == 1,
		Target: 0x4000,
	}
}

func TestWrongPathSquashPreservesProgramOrder(t *testing.T) {
	cfg := Solo()
	c, err := New(cfg, &branchyStream{burst: 20})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := c.Run(RunSpec{WarmupInstr: 2000, MeasureInstr: 8000})
	if err != nil {
		t.Fatal(err)
	}
	// Every emitted op must commit exactly once: committed counts grow
	// past warm+measure and IPC stays positive despite constant
	// mispredicts.
	if ms[0].IPC <= 0 {
		t.Fatal("no progress under constant mispredicts")
	}
	if ms[0].MispredictRate < 0.35 {
		t.Fatalf("random site should mispredict heavily, got %.2f", ms[0].MispredictRate)
	}
}

func TestWrongPathStateClearsAfterResolve(t *testing.T) {
	c, err := New(Solo(), &branchyStream{burst: 30})
	if err != nil {
		t.Fatal(err)
	}
	sawShadow := false
	for i := 0; i < 4000; i++ {
		c.step()
		th := c.threads[0]
		if th.wrongPath {
			sawShadow = true
			if th.wpOlder > th.robOcc {
				t.Fatalf("cycle %d: wpOlder %d > occupancy %d", i, th.wpOlder, th.robOcc)
			}
		}
		if th.lsqOcc < 0 || th.robOcc < 0 {
			t.Fatalf("cycle %d: negative occupancy after squash", i)
		}
	}
	if !sawShadow {
		t.Fatal("test never entered a wrong-path shadow")
	}
}

func TestMispredictsCostThroughput(t *testing.T) {
	run := func(burst int) float64 {
		c, err := New(Solo(), &branchyStream{burst: burst})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := c.Run(RunSpec{WarmupInstr: 2000, MeasureInstr: 8000})
		if err != nil {
			t.Fatal(err)
		}
		return ms[0].IPC
	}
	frequent := run(10) // mispredict every ~11 ops
	rare := run(200)    // mispredict every ~201 ops
	if frequent >= rare {
		t.Fatalf("frequent mispredicts (%v IPC) should cost more than rare ones (%v IPC)", frequent, rare)
	}
}

func TestSquashDuringWrongPath(t *testing.T) {
	// Failure injection: a mode switch lands while a thread is on the
	// wrong path; the squash must clear the shadow and the core must
	// keep making progress.
	cfg := Default()
	c, err := New(cfg, &branchyStream{burst: 15}, &branchyStream{burst: 25})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.RunCycles(97) // odd period to land in shadows
		if err := c.SetPartition(56 + (i%2)*80); err != nil {
			t.Fatal(err)
		}
		for _, th := range c.threads {
			if th.wrongPath {
				t.Fatal("squash did not clear wrong-path state")
			}
			if th.robOcc != 0 {
				t.Fatal("squash left entries in the ROB")
			}
		}
	}
	before := c.Committed(0) + c.Committed(1)
	c.RunCycles(3000)
	if c.Committed(0)+c.Committed(1) <= before {
		t.Fatal("no progress after repeated mid-shadow squashes")
	}
}

func TestReplayNeverBeatsOriginalSchedule(t *testing.T) {
	// prevDone monotonicity: flapping the partition as fast as possible
	// must not increase IPC versus never switching.
	run := func(flap bool) float64 {
		c, err := New(Default(), &branchyStream{burst: 20}, &branchyStream{burst: 20})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			c.RunCycles(50)
			if flap {
				if err := c.SetPartition(96); err != nil {
					t.Fatal(err)
				}
			}
		}
		return float64(c.Committed(0)+c.Committed(1)) / float64(c.Cycle())
	}
	static := run(false)
	flapped := run(true)
	if flapped > static*1.02 {
		t.Fatalf("pathological flapping sped the core up: %v vs %v", flapped, static)
	}
}

func TestSingleThreadIgnoresThrottle(t *testing.T) {
	cfg := Solo()
	cfg.FetchThrottle = 16 // throttling needs two threads; solo ignores it
	c, err := New(cfg, aluStream())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := c.Run(RunSpec{WarmupInstr: 1000, MeasureInstr: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].IPC < 3 {
		t.Fatalf("solo run affected by throttle config: IPC %v", ms[0].IPC)
	}
}

func TestStrictICountStillProgressesBothThreads(t *testing.T) {
	cfg := Default()
	cfg.StrictICount = true
	c, err := New(cfg, mustGen(t, 21), mustGen(t, 22))
	if err != nil {
		t.Fatal(err)
	}
	c.RunCycles(20000)
	if c.Committed(0) == 0 || c.Committed(1) == 0 {
		t.Fatalf("strict ICOUNT starved a thread: %d / %d", c.Committed(0), c.Committed(1))
	}
}

func TestLoadMergeSharesMSHR(t *testing.T) {
	// Two loads to the same block back to back: the second must not
	// allocate a second MSHR entry (white-box via the MSHR census).
	ops := []isa.MicroOp{
		{PC: 0x4000, Kind: isa.OpLoad, Addr: 0x9_0000_0000},
		{PC: 0x4004, Kind: isa.OpLoad, Addr: 0x9_0000_0008},
		{PC: 0x4008, Kind: isa.OpIntAlu},
		{PC: 0x400c, Kind: isa.OpIntAlu},
	}
	c, err := New(Solo(), &fakeStream{ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	c.RunCycles(20)
	if got := c.threads[0].mshr.InFlight(); got > 1 {
		t.Fatalf("same-block loads allocated %d MSHRs, want <= 1", got)
	}
}
