package core

import (
	"fmt"

	"stretch/internal/branch"
	"stretch/internal/cache"
	"stretch/internal/isa"
)

// Stream supplies a thread's µop trace in program order.
type Stream interface {
	Next() isa.MicroOp
}

const (
	histSize   = 512 // completion-time ring; must exceed max dep distance
	maxDepDist = 255
	fuRingSize = 1 << 16 // FU reservation horizon in cycles
	fillSlots  = 16      // in-flight prefetch fills tracked per L1-D

	// prefetchDegree is how many strides ahead the L1-D prefetcher
	// targets; 4 puts a 16-byte-stride stream one full line ahead.
	prefetchDegree = 4
)

// dcache wraps an L1-D array with its in-flight prefetch fills.
type dcache struct {
	arr       *cache.Cache
	pf        *cache.StridePrefetcher
	fillBlock [fillSlots]uint64
	fillReady [fillSlots]int64
	fillNext  int
}

func (d *dcache) pendingFill(block uint64) (int64, bool) {
	for i, b := range d.fillBlock {
		if b == block|1<<63 {
			return d.fillReady[i], true
		}
	}
	return 0, false
}

func (d *dcache) addFill(block uint64, ready int64) {
	d.fillBlock[d.fillNext] = block | 1<<63
	d.fillReady[d.fillNext] = ready
	d.fillNext = (d.fillNext + 1) % fillSlots
}

type fetched struct {
	op         isa.MicroOp
	seq        uint64
	mispredict bool
	// prevDone carries a squashed op's originally scheduled completion
	// time into its replay: re-execution cannot beat the original
	// execution, so pipeline flushes are never a net win.
	prevDone int64
}

type robEnt struct {
	doneAt int64
	isMem  bool
	f      fetched // retained for squash-and-replay on mode switches
}

type missEvent struct {
	at    int64
	delta int8
}

type thread struct {
	id  int
	src Stream

	next    isa.MicroOp
	hasNext bool
	seq     uint64 // next fetch sequence number

	histDone [histSize]int64

	fetchBuf             []fetched // FIFO
	fetchBlockedUntil    int64
	dispatchBlockedUntil int64 // pipeline-flush refill (mode switches)
	lastFetchBlock       uint64

	// Wrong-path state: after a mispredicted branch dispatches, the
	// thread keeps fetching and dispatching past it (the junk occupies
	// window resources exactly as a real wrong path does); at resolution
	// everything younger than the branch is squashed and replayed as the
	// correct path.
	wrongPath   bool
	wpResolveAt int64
	wpOlder     int // in-ROB entries at or older than the faulting branch

	rob              []robEnt // ring
	robHead, robOcc  int
	lsqOcc           int
	robLimit, lsqLim int

	mshr *cache.MSHRs

	committed uint64

	// measurement window
	measStartCycle, measEndCycle int64
	measStartN, measEndN         uint64

	// statistics
	branches, mispredicts uint64
	dAccesses, dMisses    uint64
	iAccesses, iMisses    uint64
	missEvents            []missEvent

	// stall accounting (cycles; diagnostic)
	stallFetchBlocked uint64 // fetch blocked: I-miss, mispredict recovery, flush
	stallBranchRec    uint64 // subset of stallFetchBlocked: mispredict recovery
	stallROBFull      uint64 // dispatch blocked on ROB limit
	stallLSQFull      uint64 // dispatch blocked on LSQ limit
	stallEmptyFB      uint64 // dispatch found empty fetch buffer
}

// Core is one simulated SMT core instance.
type Core struct {
	cfg      Config
	nthreads int
	threads  []*thread

	l1i [2]*cache.Cache // may alias when shared
	l1d [2]*dcache
	llc [2]*cache.Cache
	bp  [2]*branch.Predictor

	fuUse [isa.NumFUClasses][]int16

	cycle int64

	modeSwitches uint64
}

// New builds a core running the given streams (one per hardware thread;
// one or two threads supported).
func New(cfg Config, streams ...Stream) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(streams) < 1 || len(streams) > 2 {
		return nil, fmt.Errorf("core: need 1 or 2 streams, got %d", len(streams))
	}
	c := &Core{cfg: cfg, nthreads: len(streams)}

	if cfg.SharedL1I && c.nthreads == 2 {
		shared := cache.New(cfg.L1I)
		c.l1i[0], c.l1i[1] = shared, shared
	} else {
		c.l1i[0] = cache.New(cfg.L1I)
		c.l1i[1] = cache.New(cfg.L1I)
	}
	newD := func() *dcache {
		d := &dcache{arr: cache.New(cfg.L1D)}
		if cfg.Prefetch {
			d.pf = cache.NewStridePrefetcher(cfg.PrefetchPCs)
		}
		return d
	}
	if cfg.SharedL1D && c.nthreads == 2 {
		shared := newD()
		c.l1d[0], c.l1d[1] = shared, shared
	} else {
		c.l1d[0], c.l1d[1] = newD(), newD()
	}
	c.llc[0] = cache.New(cache.LLCPartitionConfig())
	c.llc[1] = cache.New(cache.LLCPartitionConfig())
	if cfg.SharedBP && c.nthreads == 2 {
		shared := branch.New(cfg.Branch, true)
		c.bp[0], c.bp[1] = shared, shared
	} else {
		c.bp[0] = branch.New(cfg.Branch, false)
		c.bp[1] = branch.New(cfg.Branch, false)
	}
	for cl := range c.fuUse {
		c.fuUse[cl] = make([]int16, fuRingSize)
	}

	for i, s := range streams {
		t := &thread{
			id:       i,
			src:      s,
			fetchBuf: make([]fetched, 0, cfg.FetchBufEntries),
			rob:      make([]robEnt, cfg.ROBEntries),
			mshr:     cache.NewMSHRs(cfg.MSHRPerThread),
		}
		for j := range t.histDone {
			t.histDone[j] = 0
		}
		c.threads = append(c.threads, t)
	}
	c.applyLimits()
	return c, nil
}

// applyLimits loads the per-thread limit registers from the config.
func (c *Core) applyLimits() {
	for _, t := range c.threads {
		switch c.cfg.ROBPolicy {
		case ROBPrivate:
			t.robLimit, t.lsqLim = c.cfg.ROBEntries, c.cfg.LSQEntries
		case ROBDynamic:
			// The Fig. 11 study shares the ROB dynamically; the LSQ
			// keeps its static split (the study isolates the ROB).
			t.robLimit = c.cfg.ROBEntries
			t.lsqLim = c.cfg.LSQEntries / 2
			if c.nthreads == 1 {
				t.lsqLim = c.cfg.LSQEntries
			}
		default:
			t.robLimit, t.lsqLim = c.cfg.ROBLimit[t.id], c.cfg.LSQLimit[t.id]
		}
	}
}

// SetPartition reprograms the Stretch limit registers. Mirroring §IV-C's
// "any mode change is accompanied by a pipeline flush in both threads",
// both windows are squashed — their in-flight µops are replayed through
// dispatch — the new limits apply immediately, and fetch stalls for the
// flush penalty.
func (c *Core) SetPartition(rob0 int) error {
	cfg := c.cfg
	if err := cfg.SetSkew(rob0); err != nil {
		return err
	}
	c.cfg.ROBLimit, c.cfg.LSQLimit = cfg.ROBLimit, cfg.LSQLimit
	c.cfg.ROBPolicy = ROBPartitioned
	for _, t := range c.threads {
		c.squash(t)
	}
	c.applyLimits()
	c.modeSwitches++
	return nil
}

// squash flushes a thread's pipeline: in-flight µops return to the front of
// the fetch buffer for replay (their cache fills and trained predictor state
// persist, as after a real flush) and fetch pays the flush penalty.
func (c *Core) squash(t *thread) {
	if t.robOcc > 0 {
		replay := make([]fetched, 0, t.robOcc+len(t.fetchBuf))
		for i := 0; i < t.robOcc; i++ {
			f := t.rob[(t.robHead+i)%len(t.rob)].f
			if t.wrongPath && i >= t.wpOlder {
				// Wrong-path junk: its timing is discarded (as in
				// resolveWrongPath); correct-path in-flight work
				// keeps its schedule so a flush is never a net win.
				f.prevDone = 0
			}
			replay = append(replay, f)
		}
		replay = append(replay, t.fetchBuf...)
		t.fetchBuf = replay
		t.robOcc, t.robHead, t.lsqOcc = 0, 0, 0
	}
	t.wrongPath = false
	if u := c.cycle + int64(c.cfg.FlushCycles); u > t.fetchBlockedUntil {
		t.fetchBlockedUntil = u
	}
	if u := c.cycle + int64(c.cfg.FlushCycles); u > t.dispatchBlockedUntil {
		t.dispatchBlockedUntil = u
	}
}

// SetEqualPartition reprograms the Baseline 50:50 split (drain + flush).
func (c *Core) SetEqualPartition() error { return c.SetPartition(c.cfg.ROBEntries / 2) }

// ModeSwitches reports how many partition reprogrammings have occurred.
func (c *Core) ModeSwitches() uint64 { return c.modeSwitches }

// Cycle returns the current cycle count.
func (c *Core) Cycle() int64 { return c.cycle }

// salt disambiguates the two threads' address spaces in shared structures.
func salt(addr uint64, tid int) uint64 {
	return addr ^ uint64(tid)<<45
}

// reserveFU books the earliest free slot of class cl at or after ready.
func (c *Core) reserveFU(cl isa.FUClass, ready int64) int64 {
	limit := c.cycle + fuRingSize - 1
	if ready > limit {
		return ready // beyond the horizon: contention negligible
	}
	cap16 := int16(c.cfg.FU[cl])
	t := ready
	for ; t < limit; t++ {
		if c.fuUse[cl][t&(fuRingSize-1)] < cap16 {
			c.fuUse[cl][t&(fuRingSize-1)]++
			return t
		}
	}
	return t
}

// step advances the core one cycle: commit, dispatch, fetch.
func (c *Core) step() {
	// Recycle the FU reservation slot that now refers to a future cycle.
	idx := (c.cycle + fuRingSize - 1) & (fuRingSize - 1)
	for cl := range c.fuUse {
		c.fuUse[cl][idx] = 0
	}

	for _, t := range c.threads {
		c.resolveWrongPath(t)
		if t.wrongPath {
			t.stallBranchRec++ // cycles spent on the wrong path
		}
	}
	c.commit()

	order := c.priorityOrder()
	c.dispatch(order)
	c.fetch(order)
	c.cycle++
}

// priorityOrder returns thread indices in ICOUNT order (fewest in-flight
// µops first).
func (c *Core) priorityOrder() [2]int {
	if c.nthreads == 1 {
		return [2]int{0, 0}
	}
	i0 := c.threads[0].robOcc + len(c.threads[0].fetchBuf)
	i1 := c.threads[1].robOcc + len(c.threads[1].fetchBuf)
	if i1 < i0 {
		return [2]int{1, 0}
	}
	return [2]int{0, 1}
}

// commit retires completed µops in order, round-robin across threads.
func (c *Core) commit() {
	slots := c.cfg.Width
	first := int(c.cycle) & 1
	if c.nthreads == 1 {
		first = 0
	}
	for i := 0; i < c.nthreads && slots > 0; i++ {
		t := c.threads[(first+i)%c.nthreads]
		for slots > 0 && t.robOcc > 0 {
			e := &t.rob[t.robHead]
			if e.doneAt > c.cycle {
				break
			}
			if e.isMem {
				t.lsqOcc--
			}
			t.robHead = (t.robHead + 1) % len(t.rob)
			t.robOcc--
			if t.wrongPath && t.wpOlder > 0 {
				t.wpOlder--
			}
			t.committed++
			slots--
		}
	}
}

// poolOcc returns total ROB and LSQ occupancy (dynamic-sharing check).
func (c *Core) poolOcc() (rob, lsq int) {
	for _, t := range c.threads {
		rob += t.robOcc
		lsq += t.lsqOcc
	}
	return rob, lsq
}

// dispatch moves µops from fetch buffers into the windows and schedules
// their execution.
func (c *Core) dispatch(order [2]int) {
	slots := c.cfg.Width
	for i := 0; i < c.nthreads && slots > 0; i++ {
		t := c.threads[order[i]]
		if c.cycle < t.dispatchBlockedUntil {
			continue // refilling the front of the pipe after a flush
		}
		if len(t.fetchBuf) == 0 {
			t.stallEmptyFB++
		}
		for slots > 0 && len(t.fetchBuf) > 0 {
			f := t.fetchBuf[0]
			isMem := f.op.Kind.IsMem()
			if t.robOcc >= t.robLimit {
				t.stallROBFull++
				break
			}
			if isMem && t.lsqOcc >= t.lsqLim {
				t.stallLSQFull++
				break
			}
			if c.cfg.ROBPolicy == ROBDynamic {
				pr, pl := c.poolOcc()
				if pr >= c.cfg.ROBEntries || (isMem && pl >= c.cfg.LSQEntries) {
					break
				}
			}
			copy(t.fetchBuf, t.fetchBuf[1:])
			t.fetchBuf = t.fetchBuf[:len(t.fetchBuf)-1]
			c.schedule(t, f)
			slots--
		}
	}
}

// schedule computes the µop's completion time and inserts it into the ROB.
func (c *Core) schedule(t *thread, f fetched) {
	op := &f.op
	ready := c.cycle + 1
	for _, dep := range [2]int32{op.Dep1, op.Dep2} {
		if dep <= 0 || dep > maxDepDist {
			continue
		}
		p := int64(f.seq) - int64(dep)
		if p < 0 {
			continue
		}
		if d := t.histDone[p&(histSize-1)]; d > ready {
			ready = d
		}
	}

	issue := c.reserveFU(isa.FUFor(op.Kind), ready)
	var done int64
	switch op.Kind {
	case isa.OpLoad:
		done = c.loadDone(t, op, issue)
	case isa.OpStore:
		done = issue + 1
		c.storeAccess(t, op, issue)
	default:
		done = issue + int64(isa.Latency(op.Kind))
	}

	if done < f.prevDone {
		done = f.prevDone
	}
	t.histDone[int64(f.seq)&(histSize-1)] = done

	tail := (t.robHead + t.robOcc) % len(t.rob)
	f.prevDone = done
	t.rob[tail] = robEnt{doneAt: done, isMem: op.Kind.IsMem(), f: f}
	t.robOcc++
	if op.Kind.IsMem() {
		t.lsqOcc++
	}

	// A mispredicted branch puts the thread on the wrong path until it
	// resolves; everything dispatched after it will be squashed then.
	if f.mispredict && !t.wrongPath {
		t.wrongPath = true
		t.wpResolveAt = done
		t.wpOlder = t.robOcc // includes the branch itself
	}
}

// resolveWrongPath squashes everything younger than the faulting branch
// once it resolves: the junk µops return to the fetch buffer for replay as
// the correct path, and fetch pays the flush/redirect penalty.
func (c *Core) resolveWrongPath(t *thread) {
	if !t.wrongPath || c.cycle < t.wpResolveAt {
		return
	}
	young := t.robOcc - t.wpOlder
	if young > 0 {
		replay := make([]fetched, 0, young+len(t.fetchBuf))
		for i := t.wpOlder; i < t.robOcc; i++ {
			e := &t.rob[(t.robHead+i)%len(t.rob)]
			f := e.f
			// The junk execution's timing is discarded: the correct
			// path re-executes from scratch after the redirect.
			f.prevDone = 0
			replay = append(replay, f)
			if e.isMem {
				t.lsqOcc--
			}
		}
		replay = append(replay, t.fetchBuf...)
		t.fetchBuf = replay
		t.robOcc = t.wpOlder
	}
	t.wrongPath = false
	if u := c.cycle + int64(c.cfg.FlushCycles); u > t.fetchBlockedUntil {
		t.fetchBlockedUntil = u
	}
}

// loadDone models the D-side hierarchy and returns the load's completion
// cycle.
func (c *Core) loadDone(t *thread, op *isa.MicroOp, issue int64) int64 {
	d := c.l1d[t.id]
	addr := salt(op.Addr, t.id)
	t.dAccesses++

	// Stride prefetcher: observe every access; launch a fill for the
	// predicted next address if it is not already present or pending.
	if d.pf != nil {
		if p, ok := d.pf.Observe(salt(uint64(op.Site)<<2, t.id), addr, prefetchDegree); ok {
			pb := p >> 6
			if _, pend := d.pendingFill(pb); !pend && !d.arr.Probe(p) {
				lat := int64(c.cfg.LLCLatency)
				if !c.llc[t.id].Access(p) {
					lat = int64(c.cfg.MemLatency)
				}
				d.addFill(pb, issue+lat)
			}
		}
	}

	if d.arr.Access(addr) {
		return issue + int64(c.cfg.L1DHitLatency)
	}
	block := addr >> 6

	// In-flight prefetch fill?
	if ready, ok := d.pendingFill(block); ok {
		if ready <= issue {
			d.arr.Fill(addr)
			return issue + int64(c.cfg.L1DHitLatency)
		}
		return ready + 1
	}

	t.dMisses++
	t.mshr.Expire(issue)
	// Merge with an outstanding miss to the same block.
	if ready, ok := t.mshr.Pending(addr); ok {
		return ready + 1
	}
	alloc := issue
	if t.mshr.Full() {
		alloc = t.mshr.NextFree(issue)
		t.mshr.Expire(alloc)
	}
	lat := int64(c.cfg.LLCLatency)
	if !c.llc[t.id].Access(addr) {
		lat = int64(c.cfg.MemLatency)
	}
	ready := alloc + lat
	t.mshr.Allocate(addr, ready)
	// The MLP census counts correct-path demand misses only; wrong-path
	// loads still consume MSHRs and pollute caches (as on real hardware)
	// but are not the program's memory-level parallelism.
	if !t.wrongPath {
		t.missEvents = append(t.missEvents,
			missEvent{at: alloc, delta: 1}, missEvent{at: ready, delta: -1})
	}
	return ready + 1
}

// storeAccess models a store's cache allocation; the write buffer hides its
// latency, so stores complete at issue+1 and only perturb cache state.
func (c *Core) storeAccess(t *thread, op *isa.MicroOp, issue int64) {
	d := c.l1d[t.id]
	addr := salt(op.Addr, t.id)
	t.dAccesses++
	if !d.arr.Access(addr) {
		t.dMisses++
		c.llc[t.id].Access(addr)
	}
	_ = issue
}

// fetch pulls µops from the traces into the fetch buffers.
func (c *Core) fetch(order [2]int) {
	slots := c.cfg.Width
	throttleM := c.cfg.FetchThrottle
	for i := 0; i < c.nthreads && slots > 0; i++ {
		tid := order[i]
		if throttleM > 1 && c.nthreads == 2 {
			// 1:M bandwidth split: the throttled thread owns one
			// cycle in M+1, the co-runner owns the rest. The
			// owner's unused slots are not donated — donating
			// would defeat the throttle.
			ownerIsThrottled := c.cycle%int64(throttleM+1) == 0
			if (tid == c.cfg.ThrottledThread) != ownerIsThrottled {
				continue
			}
		}
		n := c.fetchThread(c.threads[tid], slots)
		slots -= n
		if n > 0 && c.cfg.StrictICount {
			break // pure ICOUNT: one thread owns the cycle's fetch
		}
	}
}

// fetchThread fetches up to max µops for t this cycle, honouring the
// block/branch structural limits. It returns the number fetched.
func (c *Core) fetchThread(t *thread, max int) int {
	if c.cycle < t.fetchBlockedUntil {
		t.stallFetchBlocked++
		return 0
	}
	n := 0
	blocks := 0
	curBlock := t.lastFetchBlock
	for n < max && len(t.fetchBuf) < c.cfg.FetchBufEntries {
		if !t.hasNext {
			t.next = t.src.Next()
			t.hasNext = true
		}
		op := t.next

		block := salt(op.PC, t.id) >> 6
		if block != curBlock {
			if blocks >= c.cfg.FetchBlocks {
				break
			}
			blocks++
			t.iAccesses++
			if !c.l1i[t.id].Access(salt(op.PC, t.id)) {
				t.iMisses++
				lat := int64(c.cfg.LLCLatency)
				if !c.llc[t.id].Access(salt(op.PC, t.id)) {
					lat = int64(c.cfg.MemLatency)
				}
				t.fetchBlockedUntil = c.cycle + lat
				break // the missing block's µops fetch after the fill
			}
			curBlock = block
		}

		f := fetched{op: op, seq: t.seq}
		stop := false
		if op.Kind == isa.OpBranch {
			t.branches++
			out := c.bp[t.id].Predict(t.id, salt(op.PC, t.id))
			mis := out.PredictTaken != op.Taken || (op.Taken && !out.BTBHit)
			c.bp[t.id].Update(t.id, salt(op.PC, t.id), op.Taken)
			if mis {
				t.mispredicts++
				f.mispredict = true
				stop = true // redirect ends the fetch group
			} else if op.Taken {
				stop = true // ≤1 taken branch per fetch cycle
			}
		}

		t.fetchBuf = append(t.fetchBuf, f)
		t.seq++
		t.hasNext = false
		n++
		if stop {
			curBlock = ^uint64(0) // next fetch starts a new block
			break
		}
	}
	t.lastFetchBlock = curBlock
	return n
}
