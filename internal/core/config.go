// Package core implements the cycle-level model of the dual-threaded SMT
// out-of-order core from Table II of the paper, including the Stretch
// mechanism itself: software-programmable per-thread ROB/LSQ limit
// registers that realise the Baseline, B-mode and Q-mode partitionings.
//
// The model is trace-driven: each hardware thread consumes a µop Stream
// (normally a trace.Generator). Fetch is ICOUNT-driven with the paper's
// structural limits (6 wide, ≤2 cache blocks, ≤1 branch), the back-end
// schedules µops onto functional-unit pools respecting register
// dependences, D-cache behaviour and the per-thread MSHR budget that
// bounds memory-level parallelism, and commit is round-robin and in-order
// per thread. Mispredicted branches put their thread on the wrong path:
// fetch and dispatch continue past the branch, the junk occupies window
// resources until the branch resolves, and resolution squashes everything
// younger with a 12-cycle redirect penalty, replaying the squashed µops as
// the correct path. Stretch mode switches squash both threads the same way
// (§IV-C's "pipeline flush in both threads").
//
// Invariant: the core model contains no randomness of its own — given the
// same configuration and the same µop streams, the cycle loop is fully
// deterministic, which is what lets sampled measurements reproduce
// bit-identically from their seeds.
package core

import (
	"fmt"

	"stretch/internal/branch"
	"stretch/internal/cache"
	"stretch/internal/isa"
)

// ROBPolicy selects how the instruction window is divided between threads.
type ROBPolicy uint8

const (
	// ROBPartitioned gives each thread a hard limit-register bound
	// (Intel-style static split, or a Stretch asymmetric split).
	ROBPartitioned ROBPolicy = iota
	// ROBDynamic lets both threads allocate from one shared pool
	// (the fig. 11 configuration).
	ROBDynamic
	// ROBPrivate gives every thread a full-size private window (the
	// fig. 4/5 idealisation and solo runs).
	ROBPrivate
)

// String names the policy.
func (p ROBPolicy) String() string {
	switch p {
	case ROBPartitioned:
		return "partitioned"
	case ROBDynamic:
		return "dynamic"
	case ROBPrivate:
		return "private"
	default:
		return fmt.Sprintf("ROBPolicy(%d)", uint8(p))
	}
}

// Config describes one simulated core. The zero value is not usable; start
// from Default and override.
type Config struct {
	// Width is fetch/decode/dispatch/commit bandwidth (Table II: 6).
	Width int
	// FetchBlocks caps cache blocks touched per thread per fetch cycle.
	FetchBlocks int
	// FetchBufEntries is the per-thread fetch-to-dispatch queue depth.
	FetchBufEntries int

	// ROBEntries and LSQEntries size the shared structures (192 / 64).
	ROBEntries int
	LSQEntries int
	// ROBPolicy selects partitioned, dynamic or private windows.
	ROBPolicy ROBPolicy
	// ROBLimit and LSQLimit are per-thread limit registers used when
	// ROBPolicy is ROBPartitioned. These are the registers Stretch
	// reprograms.
	ROBLimit [2]int
	LSQLimit [2]int

	// FlushCycles is the pipeline flush penalty (12).
	FlushCycles int
	// FU is the functional-unit pool sizes.
	FU [isa.NumFUClasses]int
	// MSHRPerThread bounds outstanding demand misses per thread
	// (Table II: 5 per thread when sharing, 10 for a solo/private core).
	MSHRPerThread int

	// L1DHitLatency, LLCLatency and MemLatency are load-use latencies in
	// cycles (3 / 28 / 216; 216 = 28 + 75 ns at 2.5 GHz).
	L1DHitLatency int
	LLCLatency    int
	MemLatency    int

	// L1I and L1D size the private-level caches.
	L1I, L1D cache.Config
	// SharedL1I, SharedL1D, SharedBP mark structures SMT-shared between
	// the two threads (true in the baseline; selectively false in the
	// fig. 4/5 contention studies and the fig. 13 idealisation).
	SharedL1I, SharedL1D, SharedBP bool

	// Prefetch enables the L1-D stride prefetcher; PrefetchPCs sizes it.
	Prefetch    bool
	PrefetchPCs int

	// Branch sizes the prediction structures.
	Branch branch.Config

	// StrictICount restricts fetch to a single thread per cycle (pure
	// ICOUNT); the default donates unused fetch slots to the other
	// thread, as Table II describes.
	StrictICount bool

	// FetchThrottle enables 1:M fetch-bandwidth throttling (fig. 12):
	// the throttled thread may fetch only one cycle in every M+1. Zero
	// or one disables throttling.
	FetchThrottle int
	// ThrottledThread selects which hardware thread is throttled.
	ThrottledThread int
}

// Default returns the Table II SMT baseline: everything shared, ROB and LSQ
// equally partitioned, 5 MSHRs per thread.
func Default() Config {
	cfg := Config{
		Width:           6,
		FetchBlocks:     2,
		FetchBufEntries: 16,
		ROBEntries:      192,
		LSQEntries:      64,
		ROBPolicy:       ROBPartitioned,
		FlushCycles:     12,
		MSHRPerThread:   5,
		L1DHitLatency:   3,
		LLCLatency:      28,
		MemLatency:      216,
		L1I:             cache.L1Config(),
		L1D:             cache.L1Config(),
		SharedL1I:       true,
		SharedL1D:       true,
		SharedBP:        true,
		Prefetch:        true,
		PrefetchPCs:     32,
		Branch:          branch.DefaultConfig(),
	}
	cfg.FU[isa.FUIntAdd] = 4
	cfg.FU[isa.FUIntMul] = 2
	cfg.FU[isa.FUFP] = 3
	cfg.FU[isa.FULSU] = 2
	cfg.SetEqualPartition()
	return cfg
}

// Solo returns the full-core configuration used to normalise results:
// one thread owning every resource (192-entry ROB, 10 MSHRs).
func Solo() Config {
	cfg := Default()
	cfg.ROBPolicy = ROBPrivate
	cfg.MSHRPerThread = 10
	return cfg
}

// SetEqualPartition programs the Intel-style 50:50 split (Baseline mode).
func (c *Config) SetEqualPartition() {
	c.ROBPolicy = ROBPartitioned
	c.ROBLimit = [2]int{c.ROBEntries / 2, c.ROBEntries / 2}
	c.LSQLimit = [2]int{c.LSQEntries / 2, c.LSQEntries / 2}
}

// SetSkew programs a Stretch asymmetric partitioning giving thread 0
// rob0 ROB entries and thread 1 the remainder; LSQ is split in proportion
// (§IV footnote 1). The paper writes configurations as N-M with N for the
// latency-sensitive thread; by convention thread 0 runs the LS workload.
func (c *Config) SetSkew(rob0 int) error {
	if rob0 <= 0 || rob0 >= c.ROBEntries {
		return fmt.Errorf("core: ROB skew %d out of range (0, %d)", rob0, c.ROBEntries)
	}
	c.ROBPolicy = ROBPartitioned
	c.ROBLimit = [2]int{rob0, c.ROBEntries - rob0}
	l0 := rob0 * c.LSQEntries / c.ROBEntries
	if l0 < 4 {
		l0 = 4
	}
	if l0 > c.LSQEntries-4 {
		l0 = c.LSQEntries - 4
	}
	c.LSQLimit = [2]int{l0, c.LSQEntries - l0}
	return nil
}

// Validate rejects configurations the hardware could not be built with.
func (c *Config) Validate() error {
	switch {
	case c.Width <= 0 || c.FetchBlocks <= 0 || c.FetchBufEntries <= 0:
		return fmt.Errorf("core: non-positive front-end parameter")
	case c.ROBEntries <= 0 || c.LSQEntries <= 0:
		return fmt.Errorf("core: non-positive window size")
	case c.MSHRPerThread <= 0:
		return fmt.Errorf("core: need at least one MSHR per thread")
	case c.FlushCycles < 0:
		return fmt.Errorf("core: negative flush penalty")
	case c.FetchThrottle < 0:
		return fmt.Errorf("core: negative fetch throttle")
	}
	if c.ROBPolicy == ROBPartitioned {
		if c.ROBLimit[0] <= 0 || c.ROBLimit[1] < 0 ||
			c.ROBLimit[0]+c.ROBLimit[1] > c.ROBEntries {
			return fmt.Errorf("core: ROB limits %v exceed %d entries", c.ROBLimit, c.ROBEntries)
		}
		if c.LSQLimit[0] <= 0 || c.LSQLimit[1] < 0 ||
			c.LSQLimit[0]+c.LSQLimit[1] > c.LSQEntries {
			return fmt.Errorf("core: LSQ limits %v exceed %d entries", c.LSQLimit, c.LSQEntries)
		}
	}
	for cl, n := range c.FU {
		if n <= 0 {
			return fmt.Errorf("core: no functional units of class %v", isa.FUClass(cl))
		}
	}
	return nil
}

// Mode identifies a Stretch operating point (§IV-C): the S-bit disengaged
// (Baseline) or engaged with the B/Q selector.
type Mode uint8

// Stretch modes.
const (
	ModeBaseline Mode = iota // equal partitioning (S-bit clear)
	ModeB                    // batch boost: LS thread gets the small share
	ModeQ                    // QoS boost: LS thread gets the large share
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeB:
		return "B-mode"
	case ModeQ:
		return "Q-mode"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}
