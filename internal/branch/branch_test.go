package branch

import (
	"testing"
	"testing/quick"
)

func TestLearnsDeterministicSite(t *testing.T) {
	p := New(DefaultConfig(), false)
	const pc = 0x4000_1000
	// Train: always taken.
	for i := 0; i < 8; i++ {
		p.Update(0, pc, true)
	}
	out := p.Predict(0, pc)
	if !out.PredictTaken {
		t.Fatal("predictor failed to learn an always-taken site")
	}
	if !out.BTBHit {
		t.Fatal("BTB missing a trained taken site")
	}
}

func TestLearnsNotTaken(t *testing.T) {
	p := New(DefaultConfig(), false)
	const pc = 0x4000_2000
	for i := 0; i < 8; i++ {
		p.Update(0, pc, false)
	}
	if p.Predict(0, pc).PredictTaken {
		t.Fatal("predictor failed to learn an always-not-taken site")
	}
}

func TestSteadyStateAccuracyOnDeterministicSites(t *testing.T) {
	p := New(DefaultConfig(), false)
	// 512 deterministic sites, direction = parity of index.
	miss := 0
	total := 0
	for round := 0; round < 60; round++ {
		for i := 0; i < 512; i++ {
			pc := uint64(0x4000_0000 + i*72)
			taken := i%2 == 0
			out := p.Predict(0, pc)
			if round >= 10 {
				total++
				if out.PredictTaken != taken || (taken && !out.BTBHit) {
					miss++
				}
			}
			p.Update(0, pc, taken)
		}
	}
	rate := float64(miss) / float64(total)
	if rate > 0.03 {
		t.Fatalf("steady-state mispredict rate %.3f on deterministic sites", rate)
	}
}

func TestSharedTablesInterfere(t *testing.T) {
	// Two threads with opposite biases on the same PCs: shared tables
	// must do worse for thread 0 than private tables do.
	run := func(shared bool) float64 {
		p := New(DefaultConfig(), shared)
		miss, total := 0, 0
		for round := 0; round < 40; round++ {
			for i := 0; i < 256; i++ {
				pc := uint64(0x4000_0000 + i*72)
				out := p.Predict(0, pc)
				if round >= 10 {
					total++
					if !out.PredictTaken {
						miss++
					}
				}
				p.Update(0, pc, true)
				// Thread 1 trains the opposite direction.
				p.Update(1, pc, false)
			}
		}
		return float64(miss) / float64(total)
	}
	private := run(false)
	// With private tables the second thread trains a different instance.
	pPriv := New(DefaultConfig(), false)
	_ = pPriv
	if private > 0.05 {
		t.Fatalf("private-table baseline mispredicts too much: %.3f", private)
	}
	// Shared tables salt thread 1's index, so interference is capacity-
	// level, not direct overwrite; the test just asserts behaviour is
	// sane (finite, not catastrophically wrong).
	shared := run(true)
	if shared > 0.60 {
		t.Fatalf("shared-table interference implausibly high: %.3f", shared)
	}
}

func TestSaltSeparatesThreadsWhenShared(t *testing.T) {
	p := New(DefaultConfig(), true)
	const pc = 0x4000_3000
	for i := 0; i < 8; i++ {
		p.Update(0, pc, true)
	}
	// Thread 1's view of the same PC is salted: untrained.
	if p.Predict(1, pc).BTBHit {
		t.Fatal("shared BTB should salt thread 1's index")
	}
	// When not shared, each thread has its own tables anyway.
	q := New(DefaultConfig(), false)
	for i := 0; i < 8; i++ {
		q.Update(0, pc, true)
	}
	if !q.Predict(0, pc).BTBHit {
		t.Fatal("trained BTB entry missing")
	}
}

func TestHistoryAffectsGshare(t *testing.T) {
	p := New(DefaultConfig(), false)
	p.ghr[0] = 0
	i1 := p.gshareIdx(0, 0x4000)
	p.ghr[0] = 0xffff
	i2 := p.gshareIdx(0, 0x4000)
	if i1 == i2 {
		t.Fatal("global history does not affect gshare index")
	}
	p.ResetHistory(0)
	if p.ghr[0] != 0 {
		t.Fatal("ResetHistory did not clear history")
	}
}

func TestBumpSaturates(t *testing.T) {
	if err := quick.Check(func(c uint8, up bool) bool {
		c %= 4
		n := bump(c, up)
		if n > 3 {
			return false
		}
		if up {
			return n >= c && n-c <= 1
		}
		return n <= c && c-n <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
	if bump(3, true) != 3 || bump(0, false) != 0 {
		t.Fatal("bump must saturate at the ends")
	}
}

func TestUpdateRollsHistory(t *testing.T) {
	p := New(DefaultConfig(), false)
	p.Update(0, 0x4000, true)
	if p.ghr[0]&1 != 1 {
		t.Fatal("taken branch must shift a 1 into history")
	}
	p.Update(0, 0x4000, false)
	if p.ghr[0]&1 != 0 {
		t.Fatal("not-taken branch must shift a 0 into history")
	}
	if p.ghr[1] != 0 {
		t.Fatal("thread 1 history must be untouched")
	}
}
