// Package branch implements the front-end prediction structures of the
// modelled core (Table II): a hybrid direction predictor (16K-entry gshare
// plus 4K-entry bimodal with a chooser), a 2K-entry branch target buffer,
// and a per-thread return address stack. Prediction tables may be shared
// between hardware threads (the SMT baseline) or private (the fig. 4/5/13
// idealisations); history registers are always per-thread, as in the paper.
//
// Invariant: predictor state is a pure function of the update sequence —
// no randomness, no time dependence — so any fetch schedule replays to
// identical predictions.
package branch

// Config sizes the predictor.
type Config struct {
	GshareEntries  int // two-bit counters indexed by PC^history
	BimodalEntries int // two-bit counters indexed by PC
	ChooserEntries int // two-bit chooser counters
	BTBEntries     int // branch target buffer entries (tag store)
}

// DefaultConfig matches Table II: hybrid 16K gshare & 4K bimodal, 2K BTB.
func DefaultConfig() Config {
	return Config{
		GshareEntries:  16 << 10,
		BimodalEntries: 4 << 10,
		ChooserEntries: 4 << 10,
		BTBEntries:     2 << 10,
	}
}

// Predictor is a hybrid direction predictor plus BTB. One Predictor instance
// represents one physical set of tables; attach one or two threads via
// thread contexts. The thread id participates in index hashing only when the
// tables are shared, modelling destructive aliasing between threads.
type Predictor struct {
	cfg     Config
	gshare  []uint8
	bimodal []uint8
	chooser []uint8
	btbTag  []uint64
	shared  bool

	ghr [2]uint64 // per-thread global history (always private)
}

// New creates a predictor. shared marks the tables as SMT-shared: both
// threads index the same counters and BTB entries and can evict or alias
// one another.
func New(cfg Config, shared bool) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		gshare:  make([]uint8, cfg.GshareEntries),
		bimodal: make([]uint8, cfg.BimodalEntries),
		chooser: make([]uint8, cfg.ChooserEntries),
		btbTag:  make([]uint64, cfg.BTBEntries),
		shared:  shared,
	}
	for i := range p.gshare {
		p.gshare[i] = 1 // weakly not-taken
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 1 // weakly prefer bimodal until gshare proves out
	}
	return p
}

// salt perturbs indices for the second thread when tables are shared so the
// two threads' working sets collide rather than overlay.
func (p *Predictor) salt(tid int) uint64 {
	if p.shared && tid == 1 {
		return 0x5bd1e995
	}
	return 0
}

func (p *Predictor) gshareIdx(tid int, pc uint64) int {
	h := (pc >> 2) ^ p.ghr[tid] ^ p.salt(tid)
	return int(h % uint64(p.cfg.GshareEntries))
}

func (p *Predictor) bimodalIdx(tid int, pc uint64) int {
	return int(((pc >> 2) ^ p.salt(tid)) % uint64(p.cfg.BimodalEntries))
}

func (p *Predictor) chooserIdx(tid int, pc uint64) int {
	return int(((pc >> 2) ^ p.salt(tid)) % uint64(p.cfg.ChooserEntries))
}

// Outcome is the result of a lookup.
type Outcome struct {
	// PredictTaken is the predicted direction.
	PredictTaken bool
	// BTBHit reports whether the target was available. A taken branch
	// without a BTB hit is a front-end mispredict (fetch break).
	BTBHit bool
}

// Predict performs a lookup for the branch at pc on thread tid.
func (p *Predictor) Predict(tid int, pc uint64) Outcome {
	g := p.gshare[p.gshareIdx(tid, pc)] >= 2
	b := p.bimodal[p.bimodalIdx(tid, pc)] >= 2
	useG := p.chooser[p.chooserIdx(tid, pc)] >= 2
	taken := b
	if useG {
		taken = g
	}
	btbIdx := ((pc >> 2) ^ p.salt(tid)) % uint64(p.cfg.BTBEntries)
	hit := p.btbTag[btbIdx] == pc|1
	return Outcome{PredictTaken: taken, BTBHit: hit}
}

// Update trains the predictor with the resolved outcome and rolls the
// thread's global history.
func (p *Predictor) Update(tid int, pc uint64, taken bool) {
	gi, bi, ci := p.gshareIdx(tid, pc), p.bimodalIdx(tid, pc), p.chooserIdx(tid, pc)
	gCorrect := (p.gshare[gi] >= 2) == taken
	bCorrect := (p.bimodal[bi] >= 2) == taken
	p.gshare[gi] = bump(p.gshare[gi], taken)
	p.bimodal[bi] = bump(p.bimodal[bi], taken)
	if gCorrect != bCorrect {
		p.chooser[ci] = bump(p.chooser[ci], gCorrect)
	}
	if taken {
		btbIdx := ((pc >> 2) ^ p.salt(tid)) % uint64(p.cfg.BTBEntries)
		p.btbTag[btbIdx] = pc | 1
	}
	p.ghr[tid] = p.ghr[tid]<<1 | b2u(taken)
}

// ResetHistory clears a thread's global history (used on context switch).
func (p *Predictor) ResetHistory(tid int) { p.ghr[tid] = 0 }

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
