// Package slack measures the performance slack of §II: the lowest fraction
// of full single-thread performance at which a latency-sensitive service
// still meets its QoS target at a given load (Fig. 2).
//
// Performance is modulated the way the paper does it — Elfen-inspired
// fine-grain time interleaving of a non-contentious preemptive co-runner:
// the service runs on the core for a duty-cycle fraction f of every
// sub-millisecond quantum. Besides the 1/f service-time stretch this adds
// a small quantisation delay (a request finishing during an off-phase waits
// for the next on-phase), which is negligible exactly because the quantum
// is orders of magnitude below the latency targets — the property the
// paper relies on.
//
// Invariant: slack curves are pure functions of (service config, load,
// seed); the bisection over duty cycles consumes no shared state, so
// curves for different loads may be computed concurrently.
package slack

import (
	"fmt"

	"stretch/internal/queueing"
)

// Modulator describes duty-cycle performance modulation.
type Modulator struct {
	// QuantumMs is the interleaving quantum (sub-millisecond).
	QuantumMs float64
	// Fraction is the duty cycle in (0, 1]: the fraction of each quantum
	// the latency-sensitive thread owns.
	Fraction float64
}

// EffectivePerf returns the modulated performance factor including the
// expected quantisation penalty expressed as an equivalent slowdown for a
// request of the given mean length. For quanta far below the service time
// this converges to the duty cycle itself.
func (m Modulator) EffectivePerf(meanServiceMs float64) (float64, error) {
	if m.Fraction <= 0 || m.Fraction > 1 {
		return 0, fmt.Errorf("slack: duty cycle %v out of (0,1]", m.Fraction)
	}
	if m.QuantumMs <= 0 {
		return 0, fmt.Errorf("slack: non-positive quantum")
	}
	if meanServiceMs <= 0 {
		return 0, fmt.Errorf("slack: non-positive service time")
	}
	// Expected residual off-phase wait at completion: half an off-phase.
	offMs := m.QuantumMs * (1 - m.Fraction)
	stretched := meanServiceMs/m.Fraction + offMs/2
	return meanServiceMs / stretched, nil
}

// Point is one (load, required performance) sample of the slack curve.
type Point struct {
	// LoadFrac is the load as a fraction of peak sustainable load.
	LoadFrac float64
	// RequiredPerf is the minimum performance fraction meeting QoS.
	RequiredPerf float64
	// Slack is 1 - RequiredPerf.
	Slack float64
}

// Curve computes the slack curve for a service at the given load fractions.
// nRequests sizes each queueing simulation; resolution is the perf-factor
// search granularity.
func Curve(cfg queueing.Config, peak float64, loads []float64, nRequests int, resolution float64, seed uint64) ([]Point, error) {
	if resolution <= 0 || resolution >= 1 {
		return nil, fmt.Errorf("slack: resolution %v out of (0,1)", resolution)
	}
	out := make([]Point, 0, len(loads))
	for _, lf := range loads {
		req, err := RequiredPerf(cfg, peak*lf, nRequests, resolution, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{LoadFrac: lf, RequiredPerf: req, Slack: 1 - req})
	}
	return out, nil
}

// RequiredPerf finds the minimum performance factor meeting the QoS target
// at the given arrival rate, by bisection to the given resolution. It
// returns 1 if even full performance misses the target (no slack), and the
// floor resolution if the target is met even at the lowest searched
// performance.
func RequiredPerf(cfg queueing.Config, ratePerSec float64, nRequests int, resolution float64, seed uint64) (float64, error) {
	full, err := queueing.Simulate(cfg, ratePerSec, nRequests, 1.0, seed)
	if err != nil {
		return 0, err
	}
	if !full.MeetsQoS {
		return 1, nil
	}
	lo, hi := resolution, 1.0 // lo may fail QoS, hi always meets it
	for hi-lo > resolution {
		mid := (lo + hi) / 2
		r, err := queueing.Simulate(cfg, ratePerSec, nRequests, mid, seed)
		if err != nil {
			return 0, err
		}
		if r.MeetsQoS {
			hi = mid
		} else {
			lo = mid
		}
	}
	// Accept the floor if it, too, meets QoS.
	r, err := queueing.Simulate(cfg, ratePerSec, nRequests, resolution, seed)
	if err != nil {
		return 0, err
	}
	if r.MeetsQoS {
		return resolution, nil
	}
	return hi, nil
}

// Tolerates reports whether a service at the given load can absorb the
// given colocation-induced slowdown without violating QoS: the check the
// Stretch software monitor performs before engaging B-mode (§IV).
func Tolerates(cfg queueing.Config, peak, loadFrac, slowdown float64, nRequests int, seed uint64) (bool, error) {
	if slowdown < 0 || slowdown >= 1 {
		return false, fmt.Errorf("slack: slowdown %v out of [0,1)", slowdown)
	}
	r, err := queueing.Simulate(cfg, peak*loadFrac, nRequests, 1-slowdown, seed)
	if err != nil {
		return false, err
	}
	return r.MeetsQoS, nil
}
