package slack

import (
	"testing"

	"stretch/internal/queueing"
)

func qcfg() queueing.Config {
	return queueing.Config{
		Workers:       8,
		MeanServiceMs: 5,
		ServiceCV:     1.0,
		BurstProb:     0.1,
		BurstLen:      3,
		QoSQuantile:   0.99,
		QoSTargetMs:   100,
	}
}

func TestModulatorConvergesToDutyCycle(t *testing.T) {
	m := Modulator{QuantumMs: 0.1, Fraction: 0.5}
	perf, err := m.EffectivePerf(10)
	if err != nil {
		t.Fatal(err)
	}
	// Quantum ≪ service time: effective perf ≈ duty cycle.
	if perf < 0.49 || perf > 0.51 {
		t.Fatalf("effective perf = %v, want ~0.5", perf)
	}
	// Coarse quantum hurts more.
	coarse := Modulator{QuantumMs: 5, Fraction: 0.5}
	cPerf, err := coarse.EffectivePerf(10)
	if err != nil {
		t.Fatal(err)
	}
	if cPerf >= perf {
		t.Fatalf("coarse quantum should cost extra: %v >= %v", cPerf, perf)
	}
}

func TestModulatorValidation(t *testing.T) {
	bad := []Modulator{
		{QuantumMs: 0.1, Fraction: 0},
		{QuantumMs: 0.1, Fraction: 1.5},
		{QuantumMs: 0, Fraction: 0.5},
	}
	for i, m := range bad {
		if _, err := m.EffectivePerf(10); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := (Modulator{QuantumMs: 0.1, Fraction: 0.5}).EffectivePerf(0); err == nil {
		t.Error("zero service time accepted")
	}
}

func TestRequiredPerfMonotoneInLoad(t *testing.T) {
	c := qcfg()
	peak, err := queueing.PeakLoad(c, 15000, 3)
	if err != nil {
		t.Fatal(err)
	}
	low, err := RequiredPerf(c, peak*0.2, 15000, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	high, err := RequiredPerf(c, peak*0.9, 15000, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if low > high {
		t.Fatalf("required perf fell with load: %v@20%% vs %v@90%%", low, high)
	}
	if high < 0.5 {
		t.Fatalf("near-peak required perf %v implausibly low", high)
	}
	if low > 0.7 {
		t.Fatalf("low-load required perf %v implausibly high (no slack)", low)
	}
}

func TestRequiredPerfOverload(t *testing.T) {
	c := qcfg()
	// Far beyond saturation: even full performance fails -> 1.
	rp, err := RequiredPerf(c, 10000, 10000, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rp != 1 {
		t.Fatalf("overloaded RequiredPerf = %v, want 1", rp)
	}
}

func TestCurveShape(t *testing.T) {
	c := qcfg()
	peak, err := queueing.PeakLoad(c, 15000, 9)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Curve(c, peak, []float64{0.2, 0.5, 0.8}, 15000, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Slack != 1-p.RequiredPerf {
			t.Fatal("slack identity broken")
		}
	}
	if pts[0].Slack < pts[2].Slack {
		t.Fatalf("slack must shrink with load: %v < %v", pts[0].Slack, pts[2].Slack)
	}
	if _, err := Curve(c, peak, []float64{0.5}, 1000, 1.5, 9); err == nil {
		t.Fatal("bad resolution accepted")
	}
}

func TestTolerates(t *testing.T) {
	c := qcfg()
	peak, err := queueing.PeakLoad(c, 15000, 4)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Tolerates(c, peak, 0.3, 0.07, 15000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("7% slowdown at 30% load should be tolerable")
	}
	ok, err = Tolerates(c, peak, 1.0, 0.5, 15000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("50% slowdown at peak load should violate QoS")
	}
	if _, err := Tolerates(c, peak, 0.5, 1.5, 1000, 4); err == nil {
		t.Fatal("slowdown >= 1 accepted")
	}
}
