// Package colocate is the experiment harness for the paper's SMT
// characterisation and Stretch evaluation: it runs latency-sensitive ×
// batch colocation grids under the various core configurations (baseline
// equal partitioning, Stretch B-/Q-mode skews, dynamic sharing, fetch
// throttling, single-resource sharing studies, idealised software
// scheduling) and normalises against solo full-core baselines.
//
// Invariant: every grid cell is a pure function of (workload pair, core
// config, sampling spec) — memoisation in the experiment context can only
// skip work, never change a number.
package colocate

import (
	"sync"

	"stretch/internal/core"
	"stretch/internal/sampling"
	"stretch/internal/workload"
)

// Resource identifies one of the four contended structures of §III-B.
type Resource int

// Resources under study in Figs. 4 and 5.
const (
	ResROB Resource = iota
	ResL1I
	ResL1D
	ResBTBBP
)

// String names the resource as the paper's figures do.
func (r Resource) String() string {
	switch r {
	case ResROB:
		return "ROB"
	case ResL1I:
		return "L1-I"
	case ResL1D:
		return "L1-D"
	case ResBTBBP:
		return "BTB+BP"
	default:
		return "?"
	}
}

// Resources lists all four studied resources in presentation order.
func Resources() []Resource { return []Resource{ResROB, ResL1I, ResL1D, ResBTBBP} }

// BaselineConfig returns the SMT baseline: everything shared, ROB/LSQ
// equally partitioned, 5 MSHRs per thread (Table II).
func BaselineConfig() core.Config { return core.Default() }

// SkewConfig returns a Stretch configuration with rob0 ROB entries for
// thread 0 (the LS thread by convention) and the rest for thread 1.
func SkewConfig(rob0 int) core.Config {
	cfg := core.Default()
	if err := cfg.SetSkew(rob0); err != nil {
		panic(err) // skews are compile-time experiment constants
	}
	return cfg
}

// DynamicConfig returns the dynamically shared ROB configuration (Fig. 11).
func DynamicConfig() core.Config {
	cfg := core.Default()
	cfg.ROBPolicy = core.ROBDynamic
	return cfg
}

// ThrottleConfig returns dynamic ROB sharing plus 1:m fetch throttling of
// thread 0 (Fig. 12; ratio 1:1 is plain dynamic sharing).
func ThrottleConfig(m int) core.Config {
	cfg := DynamicConfig()
	if m > 1 {
		cfg.FetchThrottle = m
		cfg.ThrottledThread = 0
	}
	return cfg
}

// ShareOnlyConfig returns the §III-B single-resource study configuration:
// every structure private and full-size except the one under study. A
// private L1-D implies the full 10-MSHR budget per thread.
func ShareOnlyConfig(r Resource) core.Config {
	cfg := core.Default()
	cfg.SharedL1I = r == ResL1I
	cfg.SharedL1D = r == ResL1D
	cfg.SharedBP = r == ResBTBBP
	if r == ResROB {
		cfg.SetEqualPartition() // halves: the SMT static split
	} else {
		cfg.ROBPolicy = core.ROBPrivate // full window each
	}
	if !cfg.SharedL1D {
		cfg.MSHRPerThread = 10
	}
	return cfg
}

// IdealSchedulingConfig returns the Fig. 13 idealisation of software
// scheduling: zero contention in all dynamically shared structures
// (private full-size L1-I, L1-D, BP) with the ROB statically partitioned;
// rob0 <= 0 selects the equal split, otherwise a Stretch skew is applied
// on top ("Stretch + Ideal Software Scheduling").
func IdealSchedulingConfig(rob0 int) core.Config {
	cfg := core.Default()
	cfg.SharedL1I, cfg.SharedL1D, cfg.SharedBP = false, false, false
	cfg.MSHRPerThread = 10
	if rob0 > 0 {
		if err := cfg.SetSkew(rob0); err != nil {
			panic(err)
		}
	}
	return cfg
}

// Pair is one LS × batch colocation result.
type Pair struct {
	LS, Batch string
	// LSAgg and BatchAgg are the sampled metrics of each hardware thread.
	LSAgg, BatchAgg sampling.Agg
}

// Grid runs every (ls, batch) pair on cores configured by cfg, in parallel,
// and returns results indexed [ls][batch].
func Grid(lsNames, batchNames []string, cfg core.Config, spec sampling.Spec) (map[string]map[string]Pair, error) {
	var mu sync.Mutex
	out := make(map[string]map[string]Pair, len(lsNames))
	for _, ls := range lsNames {
		out[ls] = make(map[string]Pair, len(batchNames))
	}
	var jobs []sampling.Job
	for _, ls := range lsNames {
		for _, b := range batchNames {
			ls, b := ls, b
			jobs = append(jobs, func() error {
				lp, err := workload.Lookup(ls)
				if err != nil {
					return err
				}
				bp, err := workload.Lookup(b)
				if err != nil {
					return err
				}
				a0, a1, err := sampling.Colocated(cfg, lp, bp, spec)
				if err != nil {
					return err
				}
				mu.Lock()
				out[ls][b] = Pair{LS: ls, Batch: b, LSAgg: a0, BatchAgg: a1}
				mu.Unlock()
				return nil
			})
		}
	}
	if err := sampling.Parallel(jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// SoloIPC measures each named workload alone on a full core (the
// normalisation baseline for every slowdown/speedup figure) in parallel.
func SoloIPC(names []string, spec sampling.Spec) (map[string]float64, error) {
	var mu sync.Mutex
	out := make(map[string]float64, len(names))
	var jobs []sampling.Job
	for _, n := range names {
		n := n
		jobs = append(jobs, func() error {
			p, err := workload.Lookup(n)
			if err != nil {
				return err
			}
			a, err := sampling.Solo(core.Solo(), p, spec)
			if err != nil {
				return err
			}
			mu.Lock()
			out[n] = a.IPC
			mu.Unlock()
			return nil
		})
	}
	if err := sampling.Parallel(jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// Slowdown returns 1 - colocated/solo (positive = performance loss).
func Slowdown(colocatedIPC, soloIPC float64) float64 {
	if soloIPC <= 0 {
		return 0
	}
	return 1 - colocatedIPC/soloIPC
}

// Speedup returns colocated/baseline - 1 (positive = gain over baseline).
func Speedup(ipc, baselineIPC float64) float64 {
	if baselineIPC <= 0 {
		return 0
	}
	return ipc/baselineIPC - 1
}
