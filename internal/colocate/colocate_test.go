package colocate

import (
	"testing"

	"stretch/internal/core"
	"stretch/internal/sampling"
	"stretch/internal/workload"
)

func TestConfigConstructors(t *testing.T) {
	b := BaselineConfig()
	if !b.SharedL1I || !b.SharedL1D || !b.SharedBP || b.ROBPolicy != core.ROBPartitioned {
		t.Fatal("baseline must share everything and partition the ROB")
	}
	if b.ROBLimit != [2]int{96, 96} {
		t.Fatalf("baseline limits %v", b.ROBLimit)
	}

	s := SkewConfig(56)
	if s.ROBLimit != [2]int{56, 136} {
		t.Fatalf("skew limits %v", s.ROBLimit)
	}

	d := DynamicConfig()
	if d.ROBPolicy != core.ROBDynamic {
		t.Fatal("dynamic config policy")
	}

	ft := ThrottleConfig(8)
	if ft.FetchThrottle != 8 || ft.ROBPolicy != core.ROBDynamic || ft.ThrottledThread != 0 {
		t.Fatalf("throttle config %+v", ft)
	}
	if ThrottleConfig(1).FetchThrottle != 0 {
		t.Fatal("ratio 1:1 must disable throttling (it equals dynamic sharing)")
	}
}

func TestShareOnlyConfigs(t *testing.T) {
	for _, r := range Resources() {
		cfg := ShareOnlyConfig(r)
		if (cfg.SharedL1I && r != ResL1I) || (!cfg.SharedL1I && r == ResL1I) {
			t.Errorf("%v: L1I sharing wrong", r)
		}
		if (cfg.SharedL1D && r != ResL1D) || (!cfg.SharedL1D && r == ResL1D) {
			t.Errorf("%v: L1D sharing wrong", r)
		}
		if (cfg.SharedBP && r != ResBTBBP) || (!cfg.SharedBP && r == ResBTBBP) {
			t.Errorf("%v: BP sharing wrong", r)
		}
		if r == ResROB {
			if cfg.ROBPolicy != core.ROBPartitioned {
				t.Error("ROB study must use the static split")
			}
		} else if cfg.ROBPolicy != core.ROBPrivate {
			t.Errorf("%v: everything else must give full private windows", r)
		}
		if !cfg.SharedL1D && cfg.MSHRPerThread != 10 {
			t.Errorf("%v: private L1-D implies the full 10-MSHR budget", r)
		}
		if cfg.SharedL1D && cfg.MSHRPerThread != 5 {
			t.Errorf("%v: shared L1-D implies 5 MSHRs per thread", r)
		}
	}
}

func TestIdealSchedulingConfig(t *testing.T) {
	cfg := IdealSchedulingConfig(0)
	if cfg.SharedL1I || cfg.SharedL1D || cfg.SharedBP {
		t.Fatal("ideal scheduling must privatise all dynamically shared structures")
	}
	if cfg.ROBLimit != [2]int{96, 96} {
		t.Fatalf("ideal scheduling keeps the equal split: %v", cfg.ROBLimit)
	}
	combo := IdealSchedulingConfig(56)
	if combo.ROBLimit != [2]int{56, 136} {
		t.Fatalf("combined config limits %v", combo.ROBLimit)
	}
}

func TestNormalisations(t *testing.T) {
	if Slowdown(0.8, 1.0) != 0.19999999999999996 && Slowdown(0.8, 1.0) != 0.2 {
		t.Fatalf("Slowdown = %v", Slowdown(0.8, 1.0))
	}
	if Speedup(1.2, 1.0) <= 0.19 || Speedup(1.2, 1.0) >= 0.21 {
		t.Fatalf("Speedup = %v", Speedup(1.2, 1.0))
	}
	if Slowdown(1, 0) != 0 || Speedup(1, 0) != 0 {
		t.Fatal("zero baselines must yield 0")
	}
}

func TestGridSmall(t *testing.T) {
	grid, err := Grid([]string{workload.WebSearch}, []string{"povray", workload.Zeusmp},
		BaselineConfig(), sampling.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 1 || len(grid[workload.WebSearch]) != 2 {
		t.Fatalf("grid shape wrong: %d services", len(grid))
	}
	for b, p := range grid[workload.WebSearch] {
		if p.LSAgg.IPC <= 0 || p.BatchAgg.IPC <= 0 {
			t.Errorf("%s: non-positive IPCs", b)
		}
		if p.LS != workload.WebSearch || p.Batch != b {
			t.Errorf("%s: mislabelled pair %+v", b, p)
		}
	}
}

func TestGridUnknownWorkload(t *testing.T) {
	if _, err := Grid([]string{"nope"}, []string{"povray"}, BaselineConfig(), sampling.Quick()); err == nil {
		t.Fatal("unknown LS accepted")
	}
	if _, err := Grid([]string{workload.WebSearch}, []string{"nope"}, BaselineConfig(), sampling.Quick()); err == nil {
		t.Fatal("unknown batch accepted")
	}
}

func TestSoloIPC(t *testing.T) {
	m, err := SoloIPC([]string{"povray", workload.Zeusmp}, sampling.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["povray"] <= 0 || m[workload.Zeusmp] <= 0 {
		t.Fatalf("solo map %v", m)
	}
	if _, err := SoloIPC([]string{"nope"}, sampling.Quick()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestResourceStrings(t *testing.T) {
	want := map[Resource]string{ResROB: "ROB", ResL1I: "L1-I", ResL1D: "L1-D", ResBTBBP: "BTB+BP"}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%v.String() = %q", r, r.String())
		}
	}
	if Resource(99).String() != "?" {
		t.Error("unknown resource string")
	}
}
