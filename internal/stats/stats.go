// Package stats provides the small statistical toolkit used throughout the
// simulator: running moments (Running), exact percentiles over bounded
// samples (Sample), mergeable log-bucketed tail-latency histograms
// (Histogram) behind the TailEstimator selector, fixed-width census bins
// (LinearHistogram) and the five-number "violin" summaries the paper's
// figures report.
//
// Invariants: every estimator here is deterministic — identical inputs in
// identical order produce bit-identical outputs — and the log-bucketed
// Histogram is additionally order- and sharding-independent, because its
// integer bucket counts merge associatively and commutatively. That is
// what lets the fleet engine shard observations across any number of
// workers and still reproduce results bit-identically.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming mean/variance/min/max without retaining
// samples (Welford's algorithm). The zero value is ready to use.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates x.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples added.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 for no samples).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the sample variance (0 for fewer than two samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample (0 for no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 for no samples).
func (r *Running) Max() float64 { return r.max }

// Sample retains every observation for exact quantile computation. Use for
// the experiment-scale data sets (at most a few million points).
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a Sample with capacity hint n.
func NewSample(n int) *Sample {
	return &Sample{xs: make([]float64, 0, n)}
}

// Add appends x.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Reset discards all observations while keeping the underlying buffer, so
// hot loops can reuse one Sample across windows without reallocating.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
}

// Mean returns the sample mean.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between closest ranks. Returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Violin is the distribution summary the paper draws as violin plots:
// min, lower quartile, median, upper quartile, max, and mean.
type Violin struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Summarize computes a Violin over xs. An empty input yields a zero Violin.
func Summarize(xs []float64) Violin {
	if len(xs) == 0 {
		return Violin{}
	}
	s := Sample{xs: append([]float64(nil), xs...)}
	return Violin{
		Min:    s.Quantile(0),
		Q1:     s.Quantile(0.25),
		Median: s.Quantile(0.5),
		Q3:     s.Quantile(0.75),
		Max:    s.Quantile(1),
		Mean:   s.Mean(),
		N:      s.N(),
	}
}

// String renders the summary in a compact fixed-point percent-friendly form.
func (v Violin) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f n=%d",
		v.Min, v.Q1, v.Median, v.Q3, v.Max, v.Mean, v.N)
}

// LinearHistogram counts observations in fixed-width bins over [lo, hi);
// values outside the range clamp to the first/last bin. Used for the MLP
// census (Fig. 7). For tail-latency quantiles over wide dynamic ranges use
// the log-bucketed Histogram instead.
type LinearHistogram struct {
	lo, width float64
	counts    []int64
	total     int64
}

// NewLinearHistogram creates a histogram with n bins spanning [lo, hi).
func NewLinearHistogram(lo, hi float64, n int) *LinearHistogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &LinearHistogram{lo: lo, width: (hi - lo) / float64(n), counts: make([]int64, n)}
}

// Add increments the bin containing x.
func (h *LinearHistogram) Add(x float64) { h.AddN(x, 1) }

// AddN increments the bin containing x by w.
func (h *LinearHistogram) AddN(x float64, w int64) {
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i] += w
	h.total += w
}

// Fraction returns the fraction of mass in bin i.
func (h *LinearHistogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// TailFraction returns the fraction of mass in bins >= i (cumulative from
// above), matching the ">= k in-flight requests" presentation of Fig. 7.
func (h *LinearHistogram) TailFraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	if i < 0 {
		i = 0
	}
	var c int64
	for j := i; j < len(h.counts); j++ {
		c += h.counts[j]
	}
	return float64(c) / float64(h.total)
}

// Bins returns the number of bins.
func (h *LinearHistogram) Bins() int { return len(h.counts) }

// Total returns the total mass added.
func (h *LinearHistogram) Total() int64 { return h.total }

// GeoMean returns the geometric mean of xs (all must be positive); it
// returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs (0 if empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 if empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Jain returns the Jain fairness index of xs: (Σx)² / (n·Σx²) — 1 when
// every value is equal and positive, approaching 1/n when one value
// dominates. Empty or all-zero inputs return 0: no allocation to be fair
// about.
func Jain(xs []float64) float64 {
	sum, sumsq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}
