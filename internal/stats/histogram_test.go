package stats

import (
	"math"
	"reflect"
	"testing"

	"stretch/internal/rng"
)

// TestHistogramQuantileMatchesSample is the accuracy property test: across
// several distributions spanning the histogram's dynamic range, every
// quantile estimate must sit within the bucket resolution of the exact
// sample quantile.
func TestHistogramQuantileMatchesSample(t *testing.T) {
	const n = 20000
	dists := map[string]func(*rng.Stream) float64{
		"lognormal-1ms":    func(s *rng.Stream) float64 { return s.LogNormal(1, 1.5) },
		"lognormal-20ms":   func(s *rng.Stream) float64 { return s.LogNormal(20, 0.5) },
		"exponential-5ms":  func(s *rng.Stream) float64 { return s.Exp(5) },
		"uniform-0-100ms":  func(s *rng.Stream) float64 { return s.Float64() * 100 },
		"bimodal-1-1000ms": func(s *rng.Stream) float64 { return 1 + 999*float64(s.Intn(2))*s.Float64() },
	}
	quantiles := []float64{0.5, 0.9, 0.95, 0.99, 0.999}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			src := rng.New(42).Derive(uint64(len(name)))
			h := NewTailHistogram()
			exact := NewSample(n)
			for i := 0; i < n; i++ {
				x := draw(src)
				h.Add(x)
				exact.Add(x)
			}
			// One bucket of slack on either side of the exact value: the
			// worst case of rank-convention skew plus bucket quantisation.
			tol := 2 * h.Resolution()
			for _, q := range quantiles {
				want := exact.Quantile(q)
				got := h.Quantile(q)
				if want <= 0 {
					t.Fatalf("degenerate exact quantile %v at q=%v", want, q)
				}
				if rel := math.Abs(got-want) / want; rel > tol {
					t.Errorf("q=%v: histogram %v vs exact %v (relative error %.3f > %.3f)",
						q, got, want, rel, tol)
				}
			}
		})
	}
}

// TestHistogramMergeEqualsSequential locks the sharding independence the
// fleet barrier relies on: splitting a stream of observations across any
// number of shard histograms and merging must reproduce the single-
// histogram counts exactly.
func TestHistogramMergeEqualsSequential(t *testing.T) {
	src := rng.New(7)
	one := NewTailHistogram()
	shards := []*Histogram{NewTailHistogram(), NewTailHistogram(), NewTailHistogram()}
	for i := 0; i < 5000; i++ {
		x := src.LogNormal(8, 1.2)
		one.Add(x)
		shards[i%len(shards)].Add(x)
	}
	merged := NewTailHistogram()
	for _, s := range shards {
		merged.Merge(s)
	}
	if !reflect.DeepEqual(one, merged) {
		t.Fatal("merged shard histograms differ from sequential accumulation")
	}
	if merged.N() != one.N() || merged.Quantile(0.99) != one.Quantile(0.99) {
		t.Fatal("merge perturbed count or quantile")
	}
}

func TestHistogramResetReuses(t *testing.T) {
	h := NewTailHistogram()
	h.Add(5)
	h.Add(50)
	if h.N() != 2 {
		t.Fatalf("N = %d", h.N())
	}
	h.Reset()
	if h.N() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("Reset left residual state")
	}
	h.Add(5)
	fresh := NewTailHistogram()
	fresh.Add(5)
	if !reflect.DeepEqual(h, fresh) {
		t.Fatal("reused histogram differs from a fresh one")
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := NewTailHistogram()
	if h.Quantile(0.99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report 0")
	}
	// Zero and sub-minimum values land in the underflow bucket and report 0
	// — the exact estimator's convention for idle windows.
	h.Add(0)
	h.Add(-3)
	h.Add(math.NaN())
	if got := h.Quantile(1); got != 0 {
		t.Fatalf("underflow quantile = %v, want 0", got)
	}
	// Values at or beyond the maximum clamp into the top bucket.
	h.Reset()
	h.Add(1e9)
	h.Add(math.Inf(1))
	if got := h.Quantile(0.5); got < tailHistMaxMs/2 {
		t.Fatalf("overflow quantile = %v, want clamped near max", got)
	}
	if h.N() != 2 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	src := rng.New(3)
	h := NewTailHistogram()
	for i := 0; i < 3000; i++ {
		h.Add(src.Exp(12))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at lower q (%v)", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramMergePanicsOnGeometryMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cross-geometry merge did not panic")
		}
	}()
	NewTailHistogram().Merge(NewLogHistogram(1, 100, 8))
}

func TestLogHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLogHistogram with max<=min did not panic")
		}
	}()
	NewLogHistogram(5, 5, 4)
}

// BenchmarkHistogramAdd measures the O(1) hot-path record.
func BenchmarkHistogramAdd(b *testing.B) {
	h := NewTailHistogram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i%1000) + 0.5)
	}
}

// BenchmarkHistogramQuantile measures the O(buckets) query.
func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewTailHistogram()
	src := rng.New(1)
	for i := 0; i < 4096; i++ {
		h.Add(src.LogNormal(10, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}

// BenchmarkSampleQuantile is the exact-estimator counterpart: append and
// sort the same population per query cycle.
func BenchmarkSampleQuantile(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = src.LogNormal(10, 1)
	}
	s := NewSample(len(xs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		for _, x := range xs {
			s.Add(x)
		}
		s.Quantile(0.99)
	}
}
