package stats

import (
	"math"
	"reflect"
	"testing"

	"stretch/internal/rng"
)

// FuzzHistogram throws arbitrary (seed, scale, shape, count) populations at
// the log-bucketed histogram and checks its structural invariants: counts
// conserved, quantiles monotone and inside the covered range, merge
// equivalent to sequential accumulation, and Reset restoring a fresh state.
func FuzzHistogram(f *testing.F) {
	f.Add(uint64(1), 10.0, 1.0, uint16(100))
	f.Add(uint64(2), 0.0005, 2.0, uint16(1000))
	f.Add(uint64(3), 1e6, 0.1, uint16(17))
	f.Add(uint64(42), 1.0, 0.0, uint16(1))
	f.Fuzz(func(t *testing.T, seed uint64, scale, shape float64, n uint16) {
		if !(scale > 0) || math.IsInf(scale, 0) || !(shape >= 0) || math.IsInf(shape, 0) || n == 0 {
			t.Skip()
		}
		src := rng.New(seed)
		h := NewTailHistogram()
		a, b := NewTailHistogram(), NewTailHistogram()
		for i := 0; i < int(n); i++ {
			x := src.LogNormal(scale, shape)
			h.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		if h.N() != int(n) {
			t.Fatalf("N = %d after %d adds", h.N(), n)
		}
		a.Merge(b)
		if !reflect.DeepEqual(h, a) {
			t.Fatal("merge of even/odd shards differs from sequential accumulation")
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			v := h.Quantile(q)
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("Quantile(%v) = %v", q, v)
			}
			if v < prev {
				t.Fatalf("Quantile(%v) = %v not monotone (prev %v)", q, v, prev)
			}
			prev = v
		}
		if mx := h.Max(); h.Quantile(1) > mx {
			t.Fatalf("Quantile(1) = %v above Max %v", h.Quantile(1), mx)
		}
		h.Reset()
		if h.N() != 0 || h.Quantile(0.5) != 0 {
			t.Fatal("Reset left residual state")
		}
	})
}
