package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunningAgainstDirect(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if math.Abs(r.Mean()-mean) > 1e-12 {
		t.Fatalf("mean = %v, want %v", r.Mean(), mean)
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	wantVar := ss / float64(len(xs)-1)
	if math.Abs(r.Variance()-wantVar) > 1e-9 {
		t.Fatalf("variance = %v, want %v", r.Variance(), wantVar)
	}
	if r.Min() != 1 || r.Max() != 9 || r.N() != len(xs) {
		t.Fatalf("min/max/n = %v/%v/%v", r.Min(), r.Max(), r.N())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 {
		t.Fatal("zero-value Running should report zeros")
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.99, 99.01},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 0.5 {
			t.Errorf("Quantile(%v) = %v, want ~%v", c.q, got, c.want)
		}
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestSampleEmptyAndInterleaved(t *testing.T) {
	s := NewSample(4)
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	s.Add(10)
	if s.Quantile(0.5) != 10 {
		t.Fatal("single-element quantile")
	}
	s.Add(20) // add after a quantile call must re-sort
	if got := s.Quantile(1); got != 20 {
		t.Fatalf("max after interleaved add = %v", got)
	}
}

// TestSampleReset pins the buffer-reuse contract the fleet hot loop and
// queueing.Simulator rely on: after Reset a Sample behaves exactly like a
// fresh one (including the NaN-safe zero quantiles of an empty sample)
// without reallocating.
func TestSampleReset(t *testing.T) {
	s := NewSample(8)
	for i := 0; i < 8; i++ {
		s.Add(float64(i))
	}
	if s.Quantile(1) != 7 {
		t.Fatal("pre-reset quantile wrong")
	}
	s.Reset()
	if s.N() != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("reset sample not empty: n=%d q=%v", s.N(), s.Quantile(0.99))
	}
	s.Add(3)
	s.Add(1)
	if s.Quantile(0.5) != 2 || s.N() != 2 {
		t.Fatalf("post-reset stats wrong: %v over %d", s.Quantile(0.5), s.N())
	}
}

func TestQuantileOrderingProperty(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Sample{xs: append([]float64(nil), clean...)}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeOrdering(t *testing.T) {
	v := Summarize([]float64{5, 1, 9, 3, 7})
	if !(v.Min <= v.Q1 && v.Q1 <= v.Median && v.Median <= v.Q3 && v.Q3 <= v.Max) {
		t.Fatalf("violin not ordered: %+v", v)
	}
	if v.N != 5 || v.Min != 1 || v.Max != 9 || v.Median != 5 {
		t.Fatalf("violin fields wrong: %+v", v)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summarize should be zero")
	}
	if v.String() == "" {
		t.Fatal("violin String empty")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if !sort.Float64sAreSorted(xs[:0]) && (xs[0] != 3 || xs[1] != 1 || xs[2] != 2) {
		t.Fatalf("Summarize mutated input: %v", xs)
	}
}

func TestLinearHistogramTails(t *testing.T) {
	h := NewLinearHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.Total() != 10 || h.Bins() != 10 {
		t.Fatalf("total/bins = %v/%v", h.Total(), h.Bins())
	}
	if got := h.TailFraction(0); got != 1 {
		t.Fatalf("TailFraction(0) = %v", got)
	}
	if got := h.TailFraction(5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TailFraction(5) = %v, want 0.5", got)
	}
	if got := h.Fraction(3); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Fraction(3) = %v, want 0.1", got)
	}
}

func TestLinearHistogramClamping(t *testing.T) {
	h := NewLinearHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Fraction(0) != 0.5 || h.Fraction(4) != 0.5 {
		t.Fatal("out-of-range values should clamp to edge bins")
	}
	if h.TailFraction(-3) != 1 {
		t.Fatal("negative tail index should clamp to 0")
	}
}

func TestLinearHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLinearHistogram with hi<=lo did not panic")
		}
	}()
	NewLinearHistogram(5, 5, 3)
}

func TestAggregates(t *testing.T) {
	xs := []float64{1, 2, 4}
	if m := Mean(xs); math.Abs(m-7.0/3) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Max(xs); m != 4 {
		t.Fatalf("Max = %v", m)
	}
	if m := Min(xs); m != 1 {
		t.Fatalf("Min = %v", m)
	}
	if g := GeoMean(xs); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", g)
	}
	if GeoMean([]float64{1, -1}) != 0 || GeoMean(nil) != 0 {
		t.Fatal("GeoMean edge cases")
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
}

func TestJainFairness(t *testing.T) {
	if j := Jain([]float64{1, 1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares: %v, want 1", j)
	}
	// One dominant value drives the index toward 1/n.
	if j := Jain([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("single dominant share: %v, want 0.25", j)
	}
	// Known hand value: (1+2+3)² / (3·(1+4+9)) = 36/42.
	if j := Jain([]float64{1, 2, 3}); math.Abs(j-36.0/42) > 1e-12 {
		t.Fatalf("mixed shares: %v, want %v", j, 36.0/42)
	}
	// Scale invariance.
	if a, b := Jain([]float64{1, 2, 3}), Jain([]float64{10, 20, 30}); math.Abs(a-b) > 1e-12 {
		t.Fatalf("not scale invariant: %v vs %v", a, b)
	}
	if Jain(nil) != 0 || Jain([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}
