package stats

import (
	"fmt"
	"math"
)

// TailEstimator selects how a component estimates tail-latency quantiles.
type TailEstimator int

// Tail estimators.
const (
	// EstimatorDefault lets each consumer pick its own default: the fleet
	// engine resolves it to EstimatorHistogram (mergeable, O(1) memory in
	// the request count), the standalone queueing experiments resolve it
	// to EstimatorExact (full fidelity for the paper's figures).
	EstimatorDefault TailEstimator = iota
	// EstimatorExact retains every observation in a Sample and sorts per
	// quantile query: exact, but memory and time scale with the number of
	// observations.
	EstimatorExact
	// EstimatorHistogram records observations into a fixed log-bucketed
	// Histogram: quantiles carry a bounded relative error (the bucket
	// resolution) but Add is O(1), memory is O(buckets), and histograms
	// from different shards merge associatively.
	EstimatorHistogram
)

// String names the estimator.
func (e TailEstimator) String() string {
	switch e {
	case EstimatorDefault:
		return "default"
	case EstimatorExact:
		return "exact"
	case EstimatorHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("TailEstimator(%d)", int(e))
	}
}

// Validate rejects unknown estimator values.
func (e TailEstimator) Validate() error {
	switch e {
	case EstimatorDefault, EstimatorExact, EstimatorHistogram:
		return nil
	}
	return fmt.Errorf("stats: unknown tail estimator %d", int(e))
}

// ParseTailEstimator resolves an estimator name (exact|histogram).
func ParseTailEstimator(s string) (TailEstimator, error) {
	switch s {
	case "exact":
		return EstimatorExact, nil
	case "histogram":
		return EstimatorHistogram, nil
	case "", "default":
		return EstimatorDefault, nil
	}
	return 0, fmt.Errorf("stats: unknown tail estimator %q (exact|histogram)", s)
}

// Default geometry for latency histograms (milliseconds): 1µs..60s with 16
// log-linear sub-buckets per octave — worst-case relative bucket width
// 1/16 = 6.25% (at the bottom of each octave; 4.4% averaged over an
// octave), ~3.3KB per histogram.
const (
	tailHistMinMs     = 1e-3
	tailHistMaxMs     = 6e4
	tailHistPerOctave = 16
)

// Histogram is a fixed log-bucketed (HDR-style) latency histogram: each
// power-of-two octave between a minimum and maximum trackable value is
// split into a fixed number of linear sub-buckets, so Add is O(1) with no
// allocation, Quantile is O(buckets), and two histograms with the same
// geometry merge by adding bucket counts.
//
// Invariants that make it the fleet's scalable tail estimator:
//
//   - Counts are integers, so merging is associative and commutative:
//     sharding observations across any number of workers and merging at a
//     barrier yields bit-identical counts regardless of the sharding.
//   - The bucket boundaries are fixed by the constructor parameters alone
//     (never adapted to data), so histograms built independently are always
//     mergeable and quantiles are reproducible.
//   - Quantile returns the midpoint of the bucket containing the requested
//     rank: its relative error is bounded by the bucket resolution,
//     1/perOctave of the value (half that in expectation).
//
// Values below the minimum (including zero — an idle window's tail) land in
// a dedicated underflow bucket whose representative value is 0; values at
// or above the maximum clamp into the top bucket. The zero Histogram is not
// usable; construct with NewLogHistogram or NewTailHistogram.
type Histogram struct {
	min       float64
	max       float64
	perOctave int
	counts    []uint64
	total     uint64
}

// NewLogHistogram builds a histogram covering [min, max) with perOctave
// linear sub-buckets per power-of-two octave. Histograms are mergeable iff
// they share the same (min, max, perOctave) geometry.
func NewLogHistogram(min, max float64, perOctave int) *Histogram {
	if perOctave <= 0 || min <= 0 || max <= min {
		panic("stats: invalid log histogram shape")
	}
	octaves := int(math.Ceil(math.Log2(max / min)))
	if octaves < 1 {
		octaves = 1
	}
	return &Histogram{
		min: min, max: max, perOctave: perOctave,
		counts: make([]uint64, 1+octaves*perOctave),
	}
}

// NewTailHistogram builds a Histogram with the default latency geometry
// (1µs to 60s in milliseconds, 16 sub-buckets per octave) shared by the
// queueing simulator and the fleet engine, so any two tail histograms in
// the system are mergeable.
func NewTailHistogram() *Histogram {
	return NewLogHistogram(tailHistMinMs, tailHistMaxMs, tailHistPerOctave)
}

// bucket maps x to its bucket index. Index 0 is the underflow bucket
// (x below the minimum, including zero, negatives and NaN).
func (h *Histogram) bucket(x float64) int {
	if !(x >= h.min) { // NaN-safe: NaN compares false
		return 0
	}
	if x >= h.max {
		return len(h.counts) - 1
	}
	// x/min = f × 2^e with f in [0.5, 1): octave e-1, linear sub-bucket
	// from the mantissa — no Log call on the hot path. The ratio is ≥ 1
	// (x ≥ min) and < max/min, so it is always a positive normal float and
	// Frexp reduces to reading the exponent field and forcing it to 2^-1 —
	// the same (f, e) Frexp returns, without its subnormal normalisation.
	b := math.Float64bits(x / h.min)
	e := int(b>>52) - 1022
	f := math.Float64frombits(b&(1<<52-1) | 0x3fe<<52)
	sub := int((f*2 - 1) * float64(h.perOctave))
	if sub >= h.perOctave { // guard the f→1 rounding edge
		sub = h.perOctave - 1
	}
	i := 1 + (e-1)*h.perOctave + sub
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// value returns the representative value of bucket i: 0 for the underflow
// bucket, otherwise the arithmetic midpoint of the bucket's bounds.
func (h *Histogram) value(i int) float64 {
	if i == 0 {
		return 0
	}
	o := (i - 1) / h.perOctave
	sub := (i - 1) % h.perOctave
	base := h.min * math.Ldexp(1, o) // min × 2^o
	width := base / float64(h.perOctave)
	return base + width*(float64(sub)+0.5)
}

// Add records x. O(1), allocation-free.
func (h *Histogram) Add(x float64) {
	h.counts[h.bucket(x)]++
	h.total++
}

// AddN records x n times in one bucket update — the bulk-fill path for
// analytic callers depositing a closed-form distribution's probability
// mass as integer counts (internal/queueing.Analytic), so an analytically
// filled histogram merges and quantiles exactly like a sampled one.
func (h *Histogram) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	h.counts[h.bucket(x)] += n
	h.total += n
}

// NumBuckets returns the number of buckets, including the underflow
// bucket at index 0 and the clamping top bucket.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// UpperBound returns the exclusive upper edge of bucket i: the minimum
// trackable value for the underflow bucket 0, +Inf for the top bucket
// (which absorbs everything at or above the maximum). Together with the
// midpoint convention of Quantile, the edges let analytic callers evaluate
// a CDF on exactly the grid a sampled histogram would discretise to.
func (h *Histogram) UpperBound(i int) float64 {
	if i <= 0 {
		return h.min
	}
	if i >= len(h.counts)-1 {
		return math.Inf(1)
	}
	o := (i - 1) / h.perOctave
	sub := (i - 1) % h.perOctave
	base := h.min * math.Ldexp(1, o) // min × 2^o
	width := base / float64(h.perOctave)
	return base + width*float64(sub+1)
}

// N returns the number of recorded observations.
func (h *Histogram) N() int { return int(h.total) }

// Reset discards all counts, keeping the bucket array for reuse.
func (h *Histogram) Reset() {
	clear(h.counts)
	h.total = 0
}

// Merge adds o's counts into h. Both histograms must share the same
// geometry (same constructor parameters); Merge panics otherwise, since a
// cross-geometry merge would silently misattribute every observation.
func (h *Histogram) Merge(o *Histogram) {
	if h.min != o.min || h.max != o.max || h.perOctave != o.perOctave || len(h.counts) != len(o.counts) {
		panic("stats: merging histograms of different geometry")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// Quantile returns the q-quantile (0 <= q <= 1) as the representative value
// of the bucket containing that rank: within one bucket width of the exact
// sample quantile, i.e. a relative error bounded by 1/perOctave. Returns 0
// for an empty histogram. O(buckets).
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// The same closest-rank convention as Sample.Quantile: rank q×(n−1).
	rank := uint64(q * float64(h.total-1))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			return h.value(i)
		}
	}
	return h.value(len(h.counts) - 1)
}

// Max returns the representative value of the highest occupied bucket
// (0 if empty).
func (h *Histogram) Max() float64 {
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] > 0 {
			return h.value(i)
		}
	}
	return 0
}

// Resolution is the worst-case relative half-width of a quantile estimate:
// bucket width over bucket lower bound, 1/perOctave.
func (h *Histogram) Resolution() float64 { return 1 / float64(h.perOctave) }
