// Package cluster reproduces the §VI-D impact case studies (Fig. 14): a
// Web Search cluster and a YouTube-like video cluster with diurnal load,
// where Stretch B-mode is engaged during the hours the service runs below
// the engage threshold, and batch throughput is integrated over 24 hours.
package cluster

import (
	"fmt"

	"stretch/internal/core"
	"stretch/internal/monitor"
)

// DiurnalTrace is a 24-hour load profile in fractions of peak load.
type DiurnalTrace struct {
	Name string
	// HourLoad[h] is the load during hour h as a fraction of peak.
	HourLoad [24]float64
}

// WebSearchTrace is the query-rate pattern of Fig. 14(a) (after Meisner et
// al.): a daytime plateau near peak with a deep overnight trough; the
// service sits below 85% of max for roughly 11 hours a day.
func WebSearchTrace() DiurnalTrace {
	return DiurnalTrace{
		Name: "web-search-cluster",
		HourLoad: [24]float64{
			0.55, 0.48, 0.42, 0.38, 0.36, 0.40, // 00-05
			0.50, 0.65, 0.86, 0.92, 0.96, 1.00, // 06-11
			1.00, 0.98, 0.97, 0.95, 0.93, 0.90, // 12-17
			0.89, 0.87, 0.86, 0.80, 0.72, 0.62, // 18-23
		},
	}
}

// YouTubeTrace is the edge-traffic pattern of Fig. 14(b) (after Gill et
// al.): requests concentrate between 10:00 and 19:00, peaking at 14:00;
// the other ~17 hours stay below 85% of peak.
func YouTubeTrace() DiurnalTrace {
	return DiurnalTrace{
		Name: "youtube-cluster",
		HourLoad: [24]float64{
			0.35, 0.30, 0.26, 0.24, 0.22, 0.24, // 00-05
			0.30, 0.40, 0.55, 0.70, 0.84, 0.95, // 06-11
			0.98, 0.99, 1.00, 0.97, 0.94, 0.90, // 12-17
			0.84, 0.80, 0.70, 0.60, 0.50, 0.42, // 18-23
		},
	}
}

// Study parameterises one case study.
type Study struct {
	Trace DiurnalTrace
	// EngageBelow is the load threshold under which B-mode is safe (the
	// paper uses 85% of max).
	EngageBelow float64
	// BatchSpeedupB is the measured batch speedup of the B-mode skew in
	// use (e.g. 56-136) relative to equal partitioning.
	BatchSpeedupB float64
	// LSSlowdownB is the measured LS slowdown of that skew relative to
	// equal partitioning (used to sanity-check safety against slack).
	LSSlowdownB float64
}

// HourResult records one hour of the study.
type HourResult struct {
	Hour     int
	Load     float64
	Mode     core.Mode
	BatchRel float64 // batch throughput relative to equal partitioning
}

// Result is the 24-hour integration.
type Result struct {
	Hours []HourResult
	// EngagedHours is how many hours B-mode was active.
	EngagedHours int
	// ClusterGain is the 24-hour batch-throughput improvement over the
	// baseline SMT deployment with equal partitioning.
	ClusterGain float64
}

// Run integrates the study over 24 hours. Hour-grain mode selection mirrors
// the coarse exploitation the paper evaluates ("both cases are doing a very
// coarse exploitation of the capabilities of Stretch").
func (s Study) Run() (Result, error) {
	if s.EngageBelow <= 0 || s.EngageBelow > 1 {
		return Result{}, fmt.Errorf("cluster: engage threshold %v out of (0,1]", s.EngageBelow)
	}
	if s.BatchSpeedupB < 0 {
		return Result{}, fmt.Errorf("cluster: negative batch speedup")
	}
	var res Result
	var sum float64
	for h, load := range s.Trace.HourLoad {
		hr := HourResult{Hour: h, Load: load, Mode: core.ModeBaseline, BatchRel: 1}
		if load < s.EngageBelow {
			hr.Mode = core.ModeB
			hr.BatchRel = 1 + s.BatchSpeedupB
			res.EngagedHours++
		}
		sum += hr.BatchRel
		res.Hours = append(res.Hours, hr)
	}
	res.ClusterGain = sum/24 - 1
	return res, nil
}

// RunWithController replays the diurnal day through the §IV-C controller at
// the given monitoring granularity (windows per hour), feeding it the tail
// latency that the queueing model predicts for each window's load and the
// currently engaged mode. tailAt maps (loadFrac, mode) to the window's tail
// latency in ms. It returns per-hour modal decisions plus the controller's
// switch count — demonstrating that hysteresis keeps flips infrequent even
// at fine granularity.
func (s Study) RunWithController(ctl *monitor.Controller, windowsPerHour int,
	tailAt func(load float64, mode core.Mode) float64) (Result, error) {
	if windowsPerHour <= 0 {
		return Result{}, fmt.Errorf("cluster: need at least one window per hour")
	}
	var res Result
	var sum float64
	for h, load := range s.Trace.HourLoad {
		engagedWindows := 0
		for w := 0; w < windowsPerHour; w++ {
			tail := tailAt(load, ctl.Mode())
			ctl.Observe(monitor.Observation{TailMs: tail})
			if ctl.Mode() == core.ModeB {
				engagedWindows++
			}
		}
		hr := HourResult{Hour: h, Load: load, Mode: ctl.Mode()}
		frac := float64(engagedWindows) / float64(windowsPerHour)
		hr.BatchRel = 1 + s.BatchSpeedupB*frac
		if frac > 0.5 {
			res.EngagedHours++
		}
		sum += hr.BatchRel
		res.Hours = append(res.Hours, hr)
	}
	res.ClusterGain = sum/24 - 1
	return res, nil
}
