package fleet

import (
	"reflect"
	"testing"

	"stretch/internal/loadgen"
)

func TestEngineParse(t *testing.T) {
	cases := []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineDiscrete, true},
		{"discrete", EngineDiscrete, true},
		{"fluid", EngineFluid, true},
		{"auto", EngineAuto, true},
		{"nope", 0, false},
		{"Auto", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseEngine(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if err := Engine(99).Validate(); err == nil {
		t.Error("Engine(99) validated")
	}
	if got := EngineFluid.String(); got != "fluid" {
		t.Errorf("EngineFluid.String() = %q", got)
	}
}

// autoLoadConfig is lowLoadConfig at a diurnally varying moderate load:
// steady enough that the auto classifier answers most post-warm-up
// windows analytically, with a controller mode switch early in the
// horizon exercising the discrete fallback.
func autoLoadConfig() Config {
	cfg := lowLoadConfig()
	cfg.Traffic.Clients[0].Spec.Shape = loadgen.Diurnal{
		HourLoad: loadgen.WebSearchDay(), PeakRPS: 600 * 8, WindowsPerDay: 12,
	}
	cfg.Engine = EngineAuto
	return cfg
}

// TestFleetAutoIndependentOfWorkerCount: the analytic fast path is a pure
// function of (client, rate, perf), so sharding cores across goroutines —
// each with its own solve cache — must not perturb a single bit of the
// result. The -race CI job runs this, covering the per-worker cache under
// the race detector.
func TestFleetAutoIndependentOfWorkerCount(t *testing.T) {
	run := func(workers int) Result {
		t.Helper()
		cfg := autoLoadConfig()
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if base.AnalyticCoreWindows == 0 {
		t.Fatal("auto engine answered no windows analytically; the test is vacuous")
	}
	for _, workers := range []int{5, 16} {
		if got := run(workers); !reflect.DeepEqual(base, got) {
			t.Fatalf("auto run with %d workers diverged from 1 worker", workers)
		}
	}
}

// TestFleetAutoClassifier locks the classifier's structural rules: the
// cold-start window stays discrete, unsteady (burst) windows stay
// discrete, and the discrete engine reports no analytic windows at all.
func TestFleetAutoClassifier(t *testing.T) {
	disc, err := Run(lowLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if disc.AnalyticCoreWindows != 0 || disc.Engine != EngineDiscrete {
		t.Fatalf("discrete run reported engine %v with %d analytic windows",
			disc.Engine, disc.AnalyticCoreWindows)
	}

	cfg := autoLoadConfig()
	auto, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Engine != EngineAuto {
		t.Fatalf("auto run reported engine %v", auto.Engine)
	}
	// Window 0 is a cold start on every core: at most windows-1 of each
	// core's windows can be analytic.
	if max := auto.Cores * (cfg.Traffic.Windows - 1); auto.AnalyticCoreWindows > max {
		t.Fatalf("%d analytic core-windows exceeds the %d cold-start ceiling", auto.AnalyticCoreWindows, max)
	}

	// A recurring burst keeps its windows discrete even under fluid-eligible
	// load: bursty windows must never be answered analytically.
	burst := autoLoadConfig()
	burst.Traffic.Clients[0].Spec.Shape = loadgen.Burst{
		Base:  loadgen.Constant{Rate: 280 * 8},
		Start: 2, Length: 2, Every: 4, Magnitude: 1.5,
	}
	bres, err := Run(burst)
	if err != nil {
		t.Fatal(err)
	}
	unsteady := 0
	for w := 0; w < burst.Traffic.Windows; w++ {
		if loadgen.ShapeUnsteady(burst.Traffic.Clients[0].Spec.Shape, w, burst.Traffic.Windows) {
			unsteady++
		}
	}
	if unsteady == 0 {
		t.Fatal("burst shape marked no windows unsteady")
	}
	if max := auto.Cores * (burst.Traffic.Windows - unsteady - 1); bres.AnalyticCoreWindows > max {
		t.Fatalf("%d analytic core-windows exceeds the %d steady-window ceiling", bres.AnalyticCoreWindows, max)
	}
}

// TestFleetFluidForcesAnalytic: the fluid engine answers every sound
// serving window analytically — only the utilization ceiling and solver
// refusals fall back — so on an in-envelope constant load the analytic
// share must be total.
func TestFleetFluidForcesAnalytic(t *testing.T) {
	cfg := lowLoadConfig()
	cfg.Engine = EngineFluid
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serving := res.Cores*cfg.Traffic.Windows - res.DrainedCoreWindows - res.ParkedCoreWindows - res.IdleCoreWindows
	if res.AnalyticCoreWindows != serving {
		t.Fatalf("fluid answered %d of %d serving core-windows analytically", res.AnalyticCoreWindows, serving)
	}
	if res.Clients[0].P99Ms <= 0 {
		t.Fatalf("fluid run produced no tail: %+v", res.Clients[0])
	}
}
