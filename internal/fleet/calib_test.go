package fleet

import (
	"math"
	"reflect"
	"testing"

	"stretch/internal/calib"
	"stretch/internal/core"
	"stretch/internal/loadgen"
	"stretch/internal/sampling"
	"stretch/internal/stats"
	"stretch/internal/workload"
)

// syntheticTable fabricates a calibration table covering the given pairs
// without running the cycle-level model; tests use it to pin the engine's
// lookup arithmetic exactly.
func syntheticTable(cells map[string]map[string]calib.PairPerf) *calib.Table {
	services := make([]string, 0, len(cells))
	batchSet := map[string]bool{}
	for s, row := range cells {
		services = append(services, s)
		for b := range row {
			batchSet[b] = true
		}
	}
	batches := make([]string, 0, len(batchSet))
	for b := range batchSet {
		batches = append(batches, b)
	}
	in := calib.Inputs{
		Services: services, Batches: batches,
		BSkew: calib.DefaultBSkew, QSkew: calib.DefaultQSkew,
		Spec: sampling.Quick(),
	}
	hash, err := in.Fingerprint()
	if err != nil {
		panic(err)
	}
	return &calib.Table{Hash: hash, Inputs: in, Pairs: cells}
}

// TestUniformFallbackEquivalence is the refactor's safety proof: a
// calibration table whose cells encode exactly the old uniform scalars —
// B-mode {LSSlowdownB, BatchSpeedupB}, Q-mode {0, −QModeBatchCost} — must
// reproduce the scalar run's Result bit-for-bit (modulo the fields that
// echo which source was used), because the engine's per-mode arrays resolve
// to the same floats either way.
func TestUniformFallbackEquivalence(t *testing.T) {
	const bGain, lsSlow, qCost = 0.13, 0.07, 0.15
	base := lowLoadConfig()
	base.BatchSpeedupB, base.LSSlowdownB, base.QModeBatchCost = bGain, lsSlow, qCost

	calibrated := base
	calibrated.Calibration = syntheticTable(map[string]map[string]calib.PairPerf{
		workload.WebSearch: {DefaultBatchPairing: {
			B: calib.Cell{LSSlowdown: lsSlow, BatchSpeedup: bGain},
			Q: calib.Cell{LSSlowdown: 0, BatchSpeedup: -qCost},
		}},
	})

	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(calibrated)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CalibrationHash == "" {
		t.Fatal("calibrated run did not echo its table hash")
	}
	if r1.CalibrationHash != "" {
		t.Fatal("uniform run echoed a table hash")
	}
	r2.CalibrationHash = ""
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("equivalent table diverged from uniform scalars:\n%+v\nvs\n%+v", r1, r2)
	}
}

// TestCalibratedDeltasAreClientSpecific: two clients of the same service
// with different batch pairings must earn different batch credit per
// engaged core-window — the whole point of threading the table through.
func TestCalibratedDeltasAreClientSpecific(t *testing.T) {
	table := syntheticTable(map[string]map[string]calib.PairPerf{
		workload.WebSearch: {
			workload.Zeusmp: {
				B: calib.Cell{LSSlowdown: 0.07, BatchSpeedup: 0.30},
				Q: calib.Cell{LSSlowdown: -0.02, BatchSpeedup: -0.20},
			},
			"povray": {
				B: calib.Cell{LSSlowdown: 0.04, BatchSpeedup: 0.02},
				Q: calib.Cell{LSSlowdown: -0.01, BatchSpeedup: -0.05},
			},
		},
	})
	cfg := Config{
		Servers: 2, CoresPerServer: 4,
		Traffic: loadgen.Traffic{
			Windows: 12, WindowSec: 300,
			Clients: []loadgen.Client{
				{Name: "mlp", Service: workload.WebSearch, Batch: workload.Zeusmp, Fraction: 0.5,
					Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 280 * 4}, Poisson: true}},
				{Name: "compute", Service: workload.WebSearch, Batch: "povray", Fraction: 0.5,
					Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 280 * 4}, Poisson: true}},
			},
		},
		Calibration:    table,
		WindowRequests: 300, Seed: 1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var perHour [2]float64
	for i, cm := range res.Clients {
		if cm.EngagedCoreHours == 0 {
			t.Fatalf("client %s never engaged B-mode at idle load", cm.Client)
		}
		perHour[i] = cm.BatchCoreHoursGained / cm.EngagedCoreHours
	}
	// The zeusmp pairing's calibrated speedup is 15× povray's; the
	// per-engaged-hour gain must reflect that ordering decisively.
	if perHour[0] <= 2*perHour[1] {
		t.Fatalf("per-engaged-hour gains %.3f vs %.3f do not reflect the pairing deltas", perHour[0], perHour[1])
	}
	if res.Clients[0].Batch != workload.Zeusmp || res.Clients[1].Batch != "povray" {
		t.Fatalf("resolved pairings %q, %q", res.Clients[0].Batch, res.Clients[1].Batch)
	}
	// Per-client gains must sum to the fleet aggregate (same windowHours
	// quantisation, so exact within float tolerance).
	sum := res.Clients[0].BatchCoreHoursGained + res.Clients[1].BatchCoreHoursGained
	if d := math.Abs(sum - res.BatchCoreHoursGained); d > 1e-9*math.Abs(res.BatchCoreHoursGained) {
		t.Fatalf("per-client gains sum to %v, fleet reports %v", sum, res.BatchCoreHoursGained)
	}
	// Per-window observation carries the calibrated credit: once engaged,
	// the mlp client's mean BatchRel must exceed the compute client's.
	last := res.WindowTrace[len(res.WindowTrace)-1]
	if last.Clients[0].BatchRel <= last.Clients[1].BatchRel {
		t.Fatalf("window BatchRel %.3f vs %.3f does not reflect pairings",
			last.Clients[0].BatchRel, last.Clients[1].BatchRel)
	}
}

// TestCalibrationValidation: a calibrated fleet must reject clients the
// table does not cover, unknown batch pairings, and unusable cells.
func TestCalibrationValidation(t *testing.T) {
	table := syntheticTable(map[string]map[string]calib.PairPerf{
		workload.WebSearch: {workload.Zeusmp: {
			B: calib.Cell{LSSlowdown: 0.07, BatchSpeedup: 0.30},
		}},
	})
	base := lowLoadConfig()
	base.Calibration = table

	// Covered pairing (empty Batch resolves to zeusmp): accepted.
	if err := base.Validate(); err != nil {
		t.Fatalf("covered pairing rejected: %v", err)
	}
	// Uncovered batch pairing: rejected.
	cfg := base
	cfg.Traffic.Clients = append([]loadgen.Client(nil), base.Traffic.Clients...)
	cfg.Traffic.Clients[0].Batch = "povray"
	if err := cfg.Validate(); err == nil {
		t.Fatal("uncovered pairing accepted")
	}
	// Unknown batch workload: rejected even without calibration.
	cfg.Traffic.Clients[0].Batch = "nope"
	cfg.Calibration = nil
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown batch workload accepted")
	}
	// A cell implying non-positive LS performance: rejected.
	badTable := syntheticTable(map[string]map[string]calib.PairPerf{
		workload.WebSearch: {workload.Zeusmp: {
			B: calib.Cell{LSSlowdown: 1.2, BatchSpeedup: 0.30},
		}},
	})
	cfg = base
	cfg.Calibration = badTable
	if err := cfg.Validate(); err == nil {
		t.Fatal("LS slowdown >= 1 accepted")
	}
}

// TestCalibratedRunUsesDefaultTable smoke-tests the committed default
// table end-to-end: a calibrated fleet run over it must succeed, engage
// B-mode at idle load, and credit batch work in the pair's own units.
func TestCalibratedRunUsesDefaultTable(t *testing.T) {
	table, err := calib.Default()
	if err != nil {
		t.Fatal(err)
	}
	cfg := lowLoadConfig()
	cfg.Calibration = table
	cfg.Traffic.Clients[0].Batch = workload.Zeusmp
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CalibrationHash != table.Hash {
		t.Fatalf("run echoed hash %q, want %q", res.CalibrationHash, table.Hash)
	}
	cell, ok := table.Lookup(workload.WebSearch, workload.Zeusmp, core.ModeB)
	if !ok {
		t.Fatal("default table missing web-search × zeusmp")
	}
	if res.EngagedCoreHours == 0 || res.BatchCoreHoursGained <= 0 {
		t.Fatalf("calibrated idle-load run gained nothing: %+v", res)
	}
	// Gain per engaged core-hour cannot exceed the pair's B-mode speedup
	// (Q-mode windows and migrations only subtract).
	if perHour := res.BatchCoreHoursGained / res.EngagedCoreHours; perHour > cell.BatchSpeedup+1e-9 {
		t.Fatalf("gain %.4f/engaged-hour exceeds calibrated B speedup %.4f", perHour, cell.BatchSpeedup)
	}
}

// TestIdleWindowReadsZeroTail locks the documented idle-window semantics:
// a client whose arrival rate is zero all horizon simulates no requests,
// reads zero tail in every core-window under BOTH estimators (the zeros
// flow through the exact samples and the histogram shards alike), reports
// zero violations, and drives its controllers into B-mode on the maximal
// slack those zero tails imply.
func TestIdleWindowReadsZeroTail(t *testing.T) {
	for _, est := range []struct {
		name string
		est  stats.TailEstimator
	}{{"exact", stats.EstimatorExact}, {"histogram", stats.EstimatorHistogram}} {
		t.Run(est.name, func(t *testing.T) {
			cfg := lowLoadConfig()
			cfg.TailEstimator = est.est
			cfg.Traffic.Clients[0].Spec = loadgen.Spec{Shape: loadgen.Constant{Rate: 0}}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cm := res.Clients[0]
			if cm.CoreWindows == 0 {
				t.Fatal("no core-windows served")
			}
			if cm.P99Ms != 0 || cm.P999Ms != 0 || res.FleetP99Ms != 0 || res.FleetP999Ms != 0 {
				t.Fatalf("idle fleet reports non-zero tails: client p99=%v p99.9=%v fleet p99=%v p99.9=%v",
					cm.P99Ms, cm.P999Ms, res.FleetP99Ms, res.FleetP999Ms)
			}
			if cm.ViolationWindows != 0 {
				t.Fatalf("%d violations with zero arrivals", cm.ViolationWindows)
			}
			// Zero tail is maximal slack: after the engage hysteresis the
			// controllers must sit in B-mode, harvesting batch hours.
			if cm.EngagedCoreHours == 0 || cm.BatchCoreHoursGained <= 0 {
				t.Fatalf("idle cores never engaged B-mode: engaged=%v gained=%v",
					cm.EngagedCoreHours, cm.BatchCoreHoursGained)
			}
			for _, o := range res.WindowTrace {
				if co := o.Clients[0]; co.MeanTailMs != 0 || co.MaxTailMs != 0 || co.TailP99Ms != 0 {
					t.Fatalf("window %d reads non-zero tail: %+v", o.Window, co)
				}
			}
		})
	}
}
