// Policy search: sweep SchedulerConfig candidates against a trace suite
// and rank them by fitness. This is the ROADMAP's "stop hand-tuning
// policies" move: with decisions as data and a scalar fitness, finding a
// better scheduler becomes a (deterministic, exhaustive) search instead of
// an intuition. The driver is deliberately a plain grid sweep — the
// candidate space is tiny and a full ranking is more useful for a report
// than a black-box optimum.
package fleet

import (
	"fmt"
	"sort"
)

// SearchOutcome is one candidate's evaluation over the whole suite.
type SearchOutcome struct {
	// Scheduler is the candidate with defaults resolved (so reports show
	// the gains and hysteresis actually run, not zero placeholders).
	Scheduler SchedulerConfig
	// Fitness is the candidate's total fitness, summed over the suite;
	// PerTrace holds the per-suite-entry terms in suite order.
	Fitness  float64
	PerTrace []float64
	// Violations, Migrations and BatchCoreHoursGained sum the raw
	// objectives over the suite; Fairness is the mean Jain index.
	Violations, Migrations int
	BatchCoreHoursGained   float64
	Fairness               float64
}

// SearchGrid is the default candidate grid: every policy at its defaults,
// plus a sweep of PolicyFeedback's gain × decay × hysteresis. The
// hand-tuned default feedback configuration is always a member, so the
// ranked winner's fitness is ≥ the hand-tuned one's by construction.
func SearchGrid() []SchedulerConfig {
	grid := []SchedulerConfig{
		{Policy: PolicyStatic},
		{Policy: PolicyProportional},
		{Policy: PolicyP2C},
		{Policy: PolicyFeedback}, // the hand-tuned baseline
	}
	for _, gain := range []float64{0.75, 1.5, 3} {
		for _, decay := range []float64{0.85, 0.92} {
			for _, hyst := range []float64{0.05, 0.1, 0.2} {
				if gain == feedbackGain && decay == feedbackDecay && hyst == defaultHysteresis {
					continue // already in the grid as the zero-valued baseline
				}
				grid = append(grid, SchedulerConfig{
					Policy:       PolicyFeedback,
					FeedbackGain: gain, FeedbackDecay: decay, Hysteresis: hyst,
				})
			}
		}
	}
	return grid
}

// SearchSchedulers evaluates every candidate scheduler over every suite
// config and returns the outcomes ranked by fitness, best first (ties
// keep candidate order, so the ranking is deterministic). Each suite
// entry is run once per candidate with its Scheduler replaced; decision
// tracing and counterfactuals are forced off — the search wants the
// cheapest honest run, and the suite configs' own levels would only slow
// the sweep.
func SearchSchedulers(suite []Config, cands []SchedulerConfig, w FitnessWeights) ([]SearchOutcome, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("fleet: search needs a non-empty trace suite")
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("fleet: search needs candidate schedulers")
	}
	outs := make([]SearchOutcome, 0, len(cands))
	for _, cand := range cands {
		out := SearchOutcome{
			Scheduler: cand.withDefaults(),
			PerTrace:  make([]float64, len(suite)),
		}
		for ti, cfg := range suite {
			cfg.Scheduler = cand
			cfg.DecisionTrace = TraceOff
			cfg.CounterfactualK = 0
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("fleet: search candidate %s on suite entry %d: %w",
					cand.Policy, ti, err)
			}
			f := w.Score(res)
			out.PerTrace[ti] = f
			out.Fitness += f
			out.Violations += res.ViolationWindows
			out.Migrations += res.Migrations
			out.BatchCoreHoursGained += res.BatchCoreHoursGained
			out.Fairness += res.FairnessIndex
		}
		out.Fairness /= float64(len(suite))
		outs = append(outs, out)
	}
	sort.SliceStable(outs, func(a, b int) bool { return outs[a].Fitness > outs[b].Fitness })
	return outs, nil
}
