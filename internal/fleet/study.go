// The §VI-D impact case studies (Fig. 14), folded into the fleet package
// as the 1-core, hour-grain special case of the fleet engine: a Web Search
// cluster and a YouTube-like video cluster with diurnal load, where
// Stretch B-mode is engaged during the hours the service runs below the
// engage threshold, and batch throughput is integrated over 24 hours. The
// diurnal day profiles live in internal/loadgen and the windowed mode
// integration in timeline.go; this file keeps the paper-facing Study
// vocabulary on top.
package fleet

import (
	"fmt"

	"stretch/internal/core"
	"stretch/internal/loadgen"
	"stretch/internal/monitor"
)

// DiurnalTrace is a 24-hour load profile in fractions of peak load.
type DiurnalTrace struct {
	Name string
	// HourLoad[h] is the load during hour h as a fraction of peak.
	HourLoad [24]float64
}

// WebSearchTrace is the query-rate pattern of Fig. 14(a) (after Meisner et
// al.): a daytime plateau near peak with a deep overnight trough; the
// service sits below 85% of max for roughly 11 hours a day.
func WebSearchTrace() DiurnalTrace {
	return DiurnalTrace{Name: "web-search-cluster", HourLoad: loadgen.WebSearchDay()}
}

// YouTubeTrace is the edge-traffic pattern of Fig. 14(b) (after Gill et
// al.): requests concentrate between 10:00 and 19:00, peaking at 14:00;
// the other ~17 hours stay below 85% of peak.
func YouTubeTrace() DiurnalTrace {
	return DiurnalTrace{Name: "youtube-cluster", HourLoad: loadgen.VideoDay()}
}

// Study parameterises one §VI-D case study.
type Study struct {
	Trace DiurnalTrace
	// EngageBelow is the load threshold under which B-mode is safe (the
	// paper uses 85% of max).
	EngageBelow float64
	// BatchSpeedupB is the measured batch speedup of the B-mode skew in
	// use (e.g. 56-136) relative to equal partitioning.
	BatchSpeedupB float64
	// LSSlowdownB is the measured LS slowdown of that skew relative to
	// equal partitioning (used to sanity-check safety against slack).
	LSSlowdownB float64
}

// HourResult records one hour of the study.
type HourResult struct {
	Hour     int
	Load     float64
	Mode     core.Mode
	BatchRel float64 // batch throughput relative to equal partitioning
}

// StudyResult is the 24-hour integration.
type StudyResult struct {
	Hours []HourResult
	// EngagedHours is how many hours B-mode was active.
	EngagedHours int
	// ClusterGain is the 24-hour batch-throughput improvement over the
	// baseline SMT deployment with equal partitioning.
	ClusterGain float64
}

// Run integrates the study over 24 hours. Hour-grain mode selection mirrors
// the coarse exploitation the paper evaluates ("both cases are doing a very
// coarse exploitation of the capabilities of Stretch").
func (s Study) Run() (StudyResult, error) {
	modes, rel, engaged, err := ThresholdTimeline(s.Trace.HourLoad[:], s.EngageBelow, s.BatchSpeedupB)
	if err != nil {
		return StudyResult{}, err
	}
	res := StudyResult{EngagedHours: engaged}
	var sum float64
	for h, load := range s.Trace.HourLoad {
		res.Hours = append(res.Hours, HourResult{Hour: h, Load: load, Mode: modes[h], BatchRel: rel[h]})
		sum += rel[h]
	}
	res.ClusterGain = sum/24 - 1
	return res, nil
}

// RunWithController replays the diurnal day through the §IV-C controller at
// the given monitoring granularity (windows per hour), feeding it the tail
// latency that the queueing model predicts for each window's load and the
// currently engaged mode. tailAt maps (loadFrac, mode) to the window's tail
// latency in ms. It returns per-hour modal decisions plus the controller's
// switch count — demonstrating that hysteresis keeps flips infrequent even
// at fine granularity.
func (s Study) RunWithController(ctl *monitor.Controller, windowsPerHour int,
	tailAt func(load float64, mode core.Mode) float64) (StudyResult, error) {
	if windowsPerHour <= 0 {
		return StudyResult{}, fmt.Errorf("fleet: need at least one window per hour")
	}
	modes, frac, err := ControlledTimeline(s.Trace.HourLoad[:], ctl, windowsPerHour, tailAt)
	if err != nil {
		return StudyResult{}, err
	}
	var res StudyResult
	var sum float64
	for h, load := range s.Trace.HourLoad {
		hr := HourResult{Hour: h, Load: load, Mode: modes[h], BatchRel: 1 + s.BatchSpeedupB*frac[h]}
		if frac[h] > 0.5 {
			res.EngagedHours++
		}
		sum += hr.BatchRel
		res.Hours = append(res.Hours, hr)
	}
	res.ClusterGain = sum/24 - 1
	return res, nil
}
