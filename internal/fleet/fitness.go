// Multi-objective fitness: one number ranking a fleet run for the policy
// search driver (search.go). A scheduling policy trades QoS-violation
// core-windows against batch core-hours gained, migration churn and
// fairness across clients; the weighted sum makes the trade explicit and
// tunable, and the weight-spec grammar makes it scriptable from the CLI
// (stretchsim search -weights).
package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// FitnessWeights weighs the four fleet objectives. Violations and
// Migrations are costs (subtracted), BatchHours and Fairness rewards
// (added); all weights are non-negative, direction is fixed by Score.
type FitnessWeights struct {
	// Violations is the cost per QoS-violating core-window.
	Violations float64
	// BatchHours is the reward per batch core-hour gained versus equal
	// partitioning.
	BatchHours float64
	// Migrations is the cost per migration core-window.
	Migrations float64
	// Fairness scales the Jain fairness index over per-client SLO
	// fulfilment (a [0,1] number, so this weight sets how many violation
	// core-windows perfect fairness is worth).
	Fairness float64
}

// DefaultFitnessWeights is the hand-picked trade: a violation core-window
// costs twice what a batch core-hour earns, migrations are a light churn
// tax, and the fairness range is worth 25 violation core-windows.
func DefaultFitnessWeights() FitnessWeights {
	return FitnessWeights{Violations: 1, BatchHours: 0.5, Migrations: 0.05, Fairness: 25}
}

// Validate rejects unusable weights (negative, NaN or infinite).
func (w FitnessWeights) Validate() error {
	for _, kv := range []struct {
		key string
		v   float64
	}{
		{"viol", w.Violations}, {"batch", w.BatchHours},
		{"migr", w.Migrations}, {"fair", w.Fairness},
	} {
		if math.IsNaN(kv.v) || math.IsInf(kv.v, 0) || kv.v < 0 {
			return fmt.Errorf("fleet: fitness weight %s=%v must be finite and non-negative", kv.key, kv.v)
		}
	}
	return nil
}

// String renders the canonical weight spec: every key in fixed order, so
// ParseFitnessWeights(w.String()) reproduces w exactly (the fuzz harness'
// fixpoint).
func (w FitnessWeights) String() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return "viol=" + f(w.Violations) + ",batch=" + f(w.BatchHours) +
		",migr=" + f(w.Migrations) + ",fair=" + f(w.Fairness)
}

// ParseFitnessWeights resolves a weight spec: comma-separated key=value
// pairs over the keys viol, batch, migr and fair, each at most once —
// e.g. "viol=1,batch=0.5". Unspecified keys keep their default weight;
// the empty spec is DefaultFitnessWeights.
func ParseFitnessWeights(s string) (FitnessWeights, error) {
	w := DefaultFitnessWeights()
	if s == "" {
		return w, nil
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return FitnessWeights{}, fmt.Errorf("fleet: fitness weight %q is not key=value", part)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return FitnessWeights{}, fmt.Errorf("fleet: fitness weight %s: %v", key, err)
		}
		if seen[key] {
			return FitnessWeights{}, fmt.Errorf("fleet: duplicate fitness weight %q", key)
		}
		seen[key] = true
		switch key {
		case "viol":
			w.Violations = v
		case "batch":
			w.BatchHours = v
		case "migr":
			w.Migrations = v
		case "fair":
			w.Fairness = v
		default:
			return FitnessWeights{}, fmt.Errorf("fleet: unknown fitness weight %q (viol|batch|migr|fair)", key)
		}
	}
	if err := w.Validate(); err != nil {
		return FitnessWeights{}, err
	}
	return w, nil
}

// Score evaluates one run under the weights: rewards minus costs, higher
// is better.
func (w FitnessWeights) Score(res Result) float64 {
	return -w.Violations*float64(res.ViolationWindows) +
		w.BatchHours*res.BatchCoreHoursGained -
		w.Migrations*float64(res.Migrations) +
		w.Fairness*res.FairnessIndex
}
