package fleet

import (
	"testing"

	"stretch/internal/loadgen"
	"stretch/internal/workload"
)

// feedbackConfig is a two-client fleet engineered so the closed loop has a
// clear signal the open-loop demand model cannot see: both clients run at
// ~93% of their per-core saturation, which puts web search past the knee
// of its 100ms target (violating) while media streaming — whose 2s target
// sits thirty mean service times out — still has enormous measured slack.
// Demand-proportional allocation treats the two identically; only the
// measurements tell them apart.
func feedbackConfig(policy Policy) Config {
	return Config{
		Servers: 4, CoresPerServer: 4,
		Traffic: loadgen.Traffic{
			Windows: 16, WindowSec: 300,
			Clients: []loadgen.Client{
				{Name: "search", Service: workload.WebSearch, Fraction: 0.7,
					Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 10200}}},
				{Name: "video", Service: workload.MediaStreaming, Fraction: 0.3,
					Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 1000}}},
			},
		},
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 200, Seed: 1,
		Scheduler: SchedulerConfig{Policy: policy},
	}
}

// TestFeedbackStealsFromSlackRich: the violating client must end up with
// more core-windows under feedback than under proportional, taken from the
// slack-rich client, and violations must drop.
func TestFeedbackStealsFromSlackRich(t *testing.T) {
	prop, err := Run(feedbackConfig(PolicyProportional))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Run(feedbackConfig(PolicyFeedback))
	if err != nil {
		t.Fatal(err)
	}
	if prop.ViolationWindows == 0 {
		t.Fatal("proportional has no violations; the scenario gives feedback nothing to react to")
	}
	if fb.Clients[0].CoreWindows <= prop.Clients[0].CoreWindows {
		t.Errorf("feedback gave the violating client %d core-windows, proportional %d; want more",
			fb.Clients[0].CoreWindows, prop.Clients[0].CoreWindows)
	}
	if fb.Clients[1].CoreWindows >= prop.Clients[1].CoreWindows {
		t.Errorf("feedback kept the slack-rich client at %d core-windows, proportional %d; want fewer",
			fb.Clients[1].CoreWindows, prop.Clients[1].CoreWindows)
	}
	if fb.ViolationWindows >= prop.ViolationWindows {
		t.Errorf("feedback violated %d core-windows, want fewer than proportional's %d",
			fb.ViolationWindows, prop.ViolationWindows)
	}
}

// TestFeedbackWeightsReact drives the allocator directly: violations grow
// a client's weight, slack decays it, and both stay clamped.
func TestFeedbackWeightsReact(t *testing.T) {
	e := &elastic{
		sched:  SchedulerConfig{Policy: PolicyFeedback}.withDefaults(),
		n:      2,
		sat:    []float64{1000, 1000},
		fracs:  []float64{0.5, 0.5},
		load:   []float64{500, 500},
		demand: make([]float64, 2),
	}
	e.nActive = 8
	f := &feedbackAlloc{}

	// First call (no observation): neutral weights, proportional split.
	got := f.desired(e, 0, nil)
	if got[0] != got[1] {
		t.Fatalf("neutral weights split unevenly: %v", got)
	}
	if f.weight[0] != 1 || f.weight[1] != 1 {
		t.Fatalf("initial weights %v, want 1s", f.weight)
	}

	// Client 0 violates on half its cores; client 1 is slack-rich.
	obs := &WindowObservation{Clients: []ClientWindowObs{
		{Cores: 4, Violations: 2},
		{Cores: 4, MeanSlack: 0.8},
	}}
	got = f.desired(e, 1, obs)
	if f.weight[0] <= 1 {
		t.Fatalf("violating client's weight %v did not grow", f.weight[0])
	}
	if f.weight[1] >= 1 {
		t.Fatalf("slack-rich client's weight %v did not decay", f.weight[1])
	}
	if got[0] <= got[1] {
		t.Fatalf("violating client got %d cores <= slack-rich client's %d", got[0], got[1])
	}

	// Sustained pressure saturates at the clamps, never beyond.
	for i := 0; i < 100; i++ {
		f.desired(e, i+2, obs)
	}
	if f.weight[0] != feedbackMaxWeight {
		t.Fatalf("weight %v did not clamp at max %v", f.weight[0], feedbackMaxWeight)
	}
	if f.weight[1] != feedbackMinWeight {
		t.Fatalf("weight %v did not clamp at min %v", f.weight[1], feedbackMinWeight)
	}

	// A client squeezed to zero cores relaxes back toward neutral rather
	// than starving forever.
	starved := &WindowObservation{Clients: []ClientWindowObs{
		{Cores: 8, MeanSlack: 0.8},
		{Cores: 0},
	}}
	before := f.weight[1]
	f.desired(e, 200, starved)
	if f.weight[1] <= before {
		t.Fatalf("starved client's weight %v did not recover from %v", f.weight[1], before)
	}
}

// TestFeedbackObservationPlumbed checks Run actually feeds measurements to
// the scheduler: with the loop closed the schedule must diverge from the
// open-loop proportional schedule on the same traffic.
func TestFeedbackObservationPlumbed(t *testing.T) {
	prop, err := Run(feedbackConfig(PolicyProportional))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Run(feedbackConfig(PolicyFeedback))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for w := range fb.WindowTrace {
		for ci := range fb.WindowTrace[w].Clients {
			if fb.WindowTrace[w].Clients[ci].Cores != prop.WindowTrace[w].Clients[ci].Cores {
				same = false
			}
		}
	}
	if same {
		t.Fatal("feedback produced the identical core series to proportional; observations are not reaching the scheduler")
	}
}
