package fleet

import (
	"testing"

	"stretch/internal/core"
	"stretch/internal/monitor"
)

func TestTracesShape(t *testing.T) {
	for _, tr := range []DiurnalTrace{WebSearchTrace(), YouTubeTrace()} {
		peak := 0.0
		for h, l := range tr.HourLoad {
			if l <= 0 || l > 1 {
				t.Errorf("%s hour %d load %v out of (0,1]", tr.Name, h, l)
			}
			if l > peak {
				peak = l
			}
		}
		if peak != 1.0 {
			t.Errorf("%s never reaches peak (max %v)", tr.Name, peak)
		}
	}
}

func TestPaperEngageableHours(t *testing.T) {
	count := func(tr DiurnalTrace) int {
		n := 0
		for _, l := range tr.HourLoad {
			if l < 0.85 {
				n++
			}
		}
		return n
	}
	if got := count(WebSearchTrace()); got != 11 {
		t.Fatalf("Web Search trace has %d engageable hours, want 11 (§VI-D)", got)
	}
	if got := count(YouTubeTrace()); got != 17 {
		t.Fatalf("YouTube trace has %d engageable hours, want 17 (§VI-D)", got)
	}
}

func TestStudyRunGainMath(t *testing.T) {
	s := Study{Trace: WebSearchTrace(), EngageBelow: 0.85, BatchSpeedupB: 0.13}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EngagedHours != 11 {
		t.Fatalf("engaged %d hours", res.EngagedHours)
	}
	want := 0.13 * 11.0 / 24.0
	if diff := res.ClusterGain - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("gain = %v, want %v", res.ClusterGain, want)
	}
	if len(res.Hours) != 24 {
		t.Fatalf("%d hour records", len(res.Hours))
	}
	for _, h := range res.Hours {
		if (h.Mode == core.ModeB) != (h.Load < 0.85) {
			t.Fatalf("hour %d: mode %v at load %v", h.Hour, h.Mode, h.Load)
		}
	}
}

func TestStudyRunValidation(t *testing.T) {
	if _, err := (Study{Trace: WebSearchTrace(), EngageBelow: 0}).Run(); err == nil {
		t.Fatal("zero threshold accepted")
	}
	if _, err := (Study{Trace: WebSearchTrace(), EngageBelow: 0.85, BatchSpeedupB: -1}).Run(); err == nil {
		t.Fatal("negative speedup accepted")
	}
}

func TestStudyRunWithControllerTracksLoad(t *testing.T) {
	s := Study{Trace: WebSearchTrace(), EngageBelow: 0.85, BatchSpeedupB: 0.13, LSSlowdownB: 0.07}
	ctl, err := monitor.New(monitor.DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWithController(ctl, 10, func(load float64, mode core.Mode) float64 {
		// Low load -> low tail; high load -> violation band.
		if load < 0.7 {
			return 40
		}
		if load < 0.9 {
			return 85
		}
		return 99
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EngagedHours == 0 {
		t.Fatal("controller never engaged B-mode on an idle night")
	}
	if res.EngagedHours > 16 {
		t.Fatalf("controller engaged %d hours — should stay out at daytime load", res.EngagedHours)
	}
	if res.ClusterGain <= 0 {
		t.Fatal("no gain from controller-driven engagement")
	}
	if ctl.Switches() == 0 || ctl.Switches() > 10 {
		t.Fatalf("suspicious switch count %d", ctl.Switches())
	}
	if _, err := s.RunWithController(ctl, 0, nil); err == nil {
		t.Fatal("zero windows accepted")
	}
}

func TestStudyRunWithControllerSingleWindowPerHour(t *testing.T) {
	s := Study{Trace: WebSearchTrace(), EngageBelow: 0.85, BatchSpeedupB: 0.13}
	ctl, err := monitor.New(monitor.DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunWithController(ctl, 1, func(load float64, mode core.Mode) float64 {
		if load < 0.8 {
			return 40
		}
		return 99
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hours) != 24 {
		t.Fatalf("%d hour records", len(res.Hours))
	}
	// At one window per hour, each hour's engaged fraction is 0 or 1, so
	// BatchRel must be exactly 1 or 1+speedup.
	for _, h := range res.Hours {
		if h.BatchRel != 1 && h.BatchRel != 1.13 {
			t.Fatalf("hour %d: fractional BatchRel %v at hour grain", h.Hour, h.BatchRel)
		}
	}
	if res.EngagedHours == 0 || res.ClusterGain <= 0 {
		t.Fatalf("hour-grain controller never engaged (hours=%d gain=%v)",
			res.EngagedHours, res.ClusterGain)
	}
}

func TestStudyRunWithControllerNeverEngages(t *testing.T) {
	s := Study{Trace: WebSearchTrace(), EngageBelow: 0.85, BatchSpeedupB: 0.13}
	ctl, err := monitor.New(monitor.DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	// Tail pinned above the disengage band: no slack anywhere in the day.
	res, err := s.RunWithController(ctl, 12, func(load float64, mode core.Mode) float64 {
		return 99
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EngagedHours != 0 {
		t.Fatalf("engaged %d hours with zero slack", res.EngagedHours)
	}
	if res.ClusterGain != 0 {
		t.Fatalf("gain %v without engagement", res.ClusterGain)
	}
	for _, h := range res.Hours {
		if h.Mode == core.ModeB || h.BatchRel != 1 {
			t.Fatalf("hour %d in B-mode under sustained pressure", h.Hour)
		}
	}
}

func TestStudyRunWithControllerHysteresisLimitsSwitches(t *testing.T) {
	s := Study{Trace: WebSearchTrace(), EngageBelow: 0.85, BatchSpeedupB: 0.13}
	ctl, err := monitor.New(monitor.DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	// Fine granularity (60 windows/hour = 1440 observations): hysteresis
	// must keep the switch count at the diurnal scale, not the window
	// scale — one engage and one disengage per load transition.
	if _, err := s.RunWithController(ctl, 60, func(load float64, mode core.Mode) float64 {
		if load < 0.85 {
			return 50
		}
		return 99
	}); err != nil {
		t.Fatal(err)
	}
	if sw := ctl.Switches(); sw == 0 || sw > 8 {
		t.Fatalf("switch count %d at 1440 windows/day — hysteresis broken", sw)
	}
}
