package fleet

import (
	"math"
	"reflect"
	"testing"

	"stretch/internal/loadgen"
)

func TestParseTraceLevel(t *testing.T) {
	for s, want := range map[string]TraceLevel{
		"":        TraceOff,
		"off":     TraceOff,
		"summary": TraceSummary,
		"full":    TraceFull,
	} {
		got, err := ParseTraceLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseTraceLevel(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Errorf("round trip %q -> %q", s, got.String())
		}
	}
	if _, err := ParseTraceLevel("verbose"); err == nil {
		t.Error("unknown level accepted")
	}
	if err := TraceLevel(9).Validate(); err == nil {
		t.Error("out-of-range level validated")
	}
}

func TestDecisionTraceConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.DecisionTrace = TraceLevel(9) },
		func(c *Config) { c.CounterfactualK = -1 },
		func(c *Config) { c.CounterfactualK = 2 }, // needs a trace level
	}
	for i, mutate := range bad {
		cfg := lowLoadConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	ok := lowLoadConfig()
	ok.DecisionTrace = TraceSummary
	ok.CounterfactualK = 2
	if _, err := Run(ok); err != nil {
		t.Fatalf("counterfactuals atop a summary trace rejected: %v", err)
	}
}

func TestDecisionTraceOffByDefault(t *testing.T) {
	res, err := Run(lowLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.DecisionTrace != nil {
		t.Fatalf("tracing off still recorded %d decisions", len(res.DecisionTrace))
	}
	if res.FairnessIndex <= 0 || res.FairnessIndex > 1 {
		t.Fatalf("fairness index %v outside (0, 1]", res.FairnessIndex)
	}
}

// decisionScenario is the eventful schedule the decision-trace property
// tests run under: a drain/restore cycle, a surge and a slow server.
func decisionScenario() loadgen.Scenario {
	return loadgen.Scenario{Events: []loadgen.Event{
		{Kind: loadgen.EventDrain, Window: 2, Server: 1},
		{Kind: loadgen.EventRestore, Window: 6, Server: 1},
		{Kind: loadgen.EventSurge, Window: 4, Until: 8, Client: "b", Factor: 1.5},
		{Kind: loadgen.EventPerf, Server: 3, Factor: 0.85},
	}}
}

// checkDecisionTrace asserts the conservation contract on one run's
// decision trace: every record partitions the fleet's cores between
// clients and the drained/parked/idle buckets, the per-client deltas are
// consistent with the previous record, and the record agrees with the
// independently-aggregated WindowTrace entry for the same window.
func checkDecisionTrace(t *testing.T, label string, cfg Config, res Result) {
	t.Helper()
	if len(res.DecisionTrace) != res.Windows {
		t.Fatalf("%s: %d decision records for %d windows", label, len(res.DecisionTrace), res.Windows)
	}
	prev := make([]int, len(res.Clients))
	for w := range res.DecisionTrace {
		rec := &res.DecisionTrace[w]
		if rec.Window != w {
			t.Fatalf("%s: record %d labelled window %d", label, w, rec.Window)
		}
		if len(rec.Clients) != len(res.Clients) {
			t.Fatalf("%s: window %d has %d client decisions", label, w, len(rec.Clients))
		}
		obs := res.WindowTrace[w]
		serving := 0
		for ci := range rec.Clients {
			cd := &rec.Clients[ci]
			serving += cd.Cores
			if cd.Gained < 0 || cd.Lost < 0 || (cd.Gained > 0 && cd.Lost > 0) {
				t.Fatalf("%s: window %d client %d gained %d lost %d", label, w, ci, cd.Gained, cd.Lost)
			}
			// Conservation against the previous record (all-idle at w=0):
			// the net delta is exactly what the gain/loss split says.
			if cd.Cores-prev[ci] != cd.Gained-cd.Lost {
				t.Fatalf("%s: window %d client %d cores %d (prev %d) but gained %d lost %d",
					label, w, ci, cd.Cores, prev[ci], cd.Gained, cd.Lost)
			}
			prev[ci] = cd.Cores
			if cd.Cores != obs.Clients[ci].Cores {
				t.Fatalf("%s: window %d client %d: decision says %d cores, window trace %d",
					label, w, ci, cd.Cores, obs.Clients[ci].Cores)
			}
			if cd.Desired < 0 || cd.OfferedRPS < 0 || cd.Weight <= 0 {
				t.Fatalf("%s: window %d client %d signals implausible: %+v", label, w, ci, cd)
			}
			if cfg.Scheduler.Policy != PolicyFeedback && cd.Weight != 1 {
				t.Fatalf("%s: open-loop policy reports pressure weight %v", label, cd.Weight)
			}
			if cfg.Scheduler.Policy == PolicyStatic && cd.Desired != cd.Cores {
				t.Fatalf("%s: static policy desired %d != held %d", label, cd.Desired, cd.Cores)
			}
		}
		// The partition invariant: client cores plus the three non-serving
		// buckets cover the fleet exactly — a core gained anywhere was lost
		// somewhere else.
		if got := serving + rec.Drained + rec.Parked + rec.Idle; got != res.Cores {
			t.Fatalf("%s: window %d partitions %d of %d cores", label, w, got, res.Cores)
		}
		if rec.Active != serving+rec.Idle {
			t.Fatalf("%s: window %d active %d != serving %d + idle %d",
				label, w, rec.Active, serving, rec.Idle)
		}
		if rec.Drained != obs.DrainedCores || rec.Parked != obs.ParkedCores || rec.Idle != obs.IdleCores {
			t.Fatalf("%s: window %d buckets %d/%d/%d disagree with window trace %d/%d/%d",
				label, w, rec.Drained, rec.Parked, rec.Idle,
				obs.DrainedCores, obs.ParkedCores, obs.IdleCores)
		}
		if rec.Migrations != obs.Migrations {
			t.Fatalf("%s: window %d migrations %d != window trace %d", label, w, rec.Migrations, obs.Migrations)
		}
		if rec.Migrations > 0 && rec.MigrationPenalty <= 0 && !cfg.Scheduler.NoMigrationPenalty {
			t.Fatalf("%s: window %d charged %d migrations at penalty %v",
				label, w, rec.Migrations, rec.MigrationPenalty)
		}
		if cfg.Scheduler.Policy == PolicyStatic {
			if rec.Moves != 0 || rec.Rebalanced || rec.Suppressed || rec.Forced {
				t.Fatalf("%s: static policy recorded scheduling activity: %+v", label, rec)
			}
		}
		if rec.Rebalanced && rec.Suppressed {
			t.Fatalf("%s: window %d both rebalanced and suppressed", label, w)
		}
	}
}

// TestDecisionRecordConservation is the decision-trace property test:
// across every policy, with and without scenario events, under both the
// discrete and auto engines and with an autoscaler parking servers
// mid-horizon, each window's record conserves cores and mirrors the
// engine's own window trace — and the whole Result (trace included) is
// identical at 1, 5 and 16 workers.
func TestDecisionRecordConservation(t *testing.T) {
	for _, policy := range []Policy{PolicyStatic, PolicyProportional, PolicyP2C, PolicyFeedback} {
		for _, eng := range []Engine{EngineDiscrete, EngineAuto} {
			for _, withEvents := range []bool{false, true} {
				cfg := planConfig(policy)
				cfg.Traffic.Clients[0].Spec.Poisson = true
				cfg.Traffic.Clients[1].Spec.Poisson = true
				cfg.Engine = eng
				cfg.DecisionTrace = TraceSummary
				if withEvents {
					cfg.Scenario = decisionScenario()
				}
				label := policy.String() + "/" + eng.String()
				if withEvents {
					label += "/events"
				}
				cfg.Workers = 1
				base, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				checkDecisionTrace(t, label, cfg, base)
				for _, workers := range []int{5, 16} {
					c := cfg
					c.Workers = workers
					got, err := Run(c)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if !reflect.DeepEqual(base, got) {
						t.Fatalf("%s: %d workers perturbed the decision trace", label, workers)
					}
				}
			}
		}
	}
	// Autoscaling composes: parked cores land in the Parked bucket and the
	// partition still covers the fleet.
	cfg := planConfig(PolicyProportional)
	cfg.DecisionTrace = TraceSummary
	cfg.Autoscale = AutoscaleConfig{Policy: AutoscaleUtil, Custom: windowScale(func(w int) int {
		if w == 2 || w == 3 {
			return 3
		}
		return 4
	})}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkDecisionTrace(t, "proportional/autoscale", cfg, res)
	parked := 0
	for _, rec := range res.DecisionTrace {
		parked += rec.Parked
	}
	if parked != 4 {
		t.Fatalf("autoscaled trace shows %d parked core-windows, want 4", parked)
	}
}

// TestDecisionTraceFullReplaysAssignment checks the TraceFull contract:
// the per-core snapshots alone are enough to reproduce the engine's
// schedule — per-client core counts, routed load and the migration flags
// all follow from the records.
func TestDecisionTraceFullReplaysAssignment(t *testing.T) {
	cfg := planConfig(PolicyProportional)
	cfg.Scenario = decisionScenario()
	cfg.DecisionTrace = TraceFull
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFullReplay(t, "proportional/events", cfg, res)

	// Autoscale warm-up: the replay must charge the rejoining server's
	// cores even though their owner never changed.
	auto := planConfig(PolicyStatic)
	auto.DecisionTrace = TraceFull
	auto.Autoscale = AutoscaleConfig{Policy: AutoscaleUtil, Custom: windowScale(func(w int) int {
		if w == 2 || w == 3 {
			return 3
		}
		return 4
	})}
	res, err = Run(auto)
	if err != nil {
		t.Fatal(err)
	}
	checkFullReplay(t, "static/autoscale", auto, res)

	// TraceSummary omits the snapshot.
	cfg.DecisionTrace = TraceSummary
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for w := range res.DecisionTrace {
		if res.DecisionTrace[w].Assignment != nil {
			t.Fatalf("summary trace window %d carries a per-core snapshot", w)
		}
	}
}

// TestCounterfactualRegretNonNegative pins the regret construction: every
// traced window carries an evaluation whose best cost is the minimum over
// the chosen and all alternatives, so regret is ≥ 0 — under both engines,
// with scenario events stressing degraded fleets.
func TestCounterfactualRegretNonNegative(t *testing.T) {
	for _, eng := range []Engine{EngineDiscrete, EngineAuto} {
		cfg := planConfig(PolicyFeedback)
		cfg.Scenario = decisionScenario()
		cfg.Engine = eng
		cfg.DecisionTrace = TraceSummary
		cfg.CounterfactualK = 3
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		evaluated := 0
		for w := range res.DecisionTrace {
			cf := res.DecisionTrace[w].Counterfactual
			if cf == nil {
				t.Fatalf("%v: window %d has no counterfactual", eng, w)
			}
			if cf.K != 3 || len(cf.Alternatives) > 3 {
				t.Fatalf("%v: window %d evaluated %d alternatives under k=%d", eng, w, len(cf.Alternatives), cf.K)
			}
			best := cf.ChosenCost
			for _, alt := range cf.Alternatives {
				if alt.Donor == alt.Receiver || alt.Cost < 0 || math.IsNaN(alt.Cost) {
					t.Fatalf("%v: window %d alternative implausible: %+v", eng, w, alt)
				}
				if alt.Cost < best {
					best = alt.Cost
				}
				evaluated++
			}
			if cf.BestCost != best {
				t.Fatalf("%v: window %d best cost %v, recomputed %v", eng, w, cf.BestCost, best)
			}
			if cf.Regret != cf.ChosenCost-cf.BestCost || cf.Regret < 0 {
				t.Fatalf("%v: window %d regret %v (chosen %v, best %v)",
					eng, w, cf.Regret, cf.ChosenCost, cf.BestCost)
			}
		}
		if evaluated == 0 {
			t.Fatalf("%v: no alternatives evaluated over the whole horizon", eng)
		}
	}
}

// TestCounterfactualDeterministicAcrossWorkers extends the determinism
// contract to the counterfactual evaluator: it runs on the engine
// goroutine from (seed, window, client)-derived randomness only, so the
// full decision trace — alternatives, costs and regret included — must be
// identical at 1 and 8 workers.
func TestCounterfactualDeterministicAcrossWorkers(t *testing.T) {
	for _, eng := range []Engine{EngineDiscrete, EngineAuto} {
		for _, policy := range []Policy{PolicyProportional, PolicyFeedback} {
			cfg := planConfig(policy)
			cfg.Traffic.Clients[0].Spec.Poisson = true
			cfg.Traffic.Clients[1].Spec.Poisson = true
			cfg.Scenario = decisionScenario()
			cfg.Engine = eng
			cfg.DecisionTrace = TraceFull
			cfg.CounterfactualK = 3
			one := cfg
			one.Workers = 1
			many := cfg
			many.Workers = 8
			a, err := Run(one)
			if err != nil {
				t.Fatalf("%v/%v: %v", eng, policy, err)
			}
			b, err := Run(many)
			if err != nil {
				t.Fatalf("%v/%v: %v", eng, policy, err)
			}
			if !reflect.DeepEqual(a.DecisionTrace, b.DecisionTrace) {
				t.Fatalf("%v/%v: worker count perturbed the decision trace", eng, policy)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%v/%v: worker count perturbed the results", eng, policy)
			}
		}
	}
}

func checkFullReplay(t *testing.T, label string, cfg Config, res Result) {
	t.Helper()
	nCores := res.Cores
	cps := cfg.CoresPerServer
	// lastOwner replay state: the last real client each core served, and
	// whether each server was parked last window (to spot rejoins).
	lastOwner := make([]int16, nCores)
	for c := range lastOwner {
		lastOwner[c] = coreIdle
	}
	prevParked := make([]bool, nCores/cps)
	for w := range res.DecisionTrace {
		rec := &res.DecisionTrace[w]
		ar := rec.Assignment
		if ar == nil || len(ar.Client) != nCores || len(ar.Rate) != nCores || len(ar.Migrated) != nCores {
			t.Fatalf("%s: window %d snapshot missing or misshapen", label, w)
		}
		counts := make([]int, len(rec.Clients))
		rates := make([]float64, len(rec.Clients))
		buckets := map[int16]int{}
		parked := make([]bool, nCores/cps)
		for s := range parked {
			parked[s] = true
		}
		migrations := 0
		for c := 0; c < nCores; c++ {
			cl := ar.Client[c]
			if cl >= 0 {
				counts[cl]++
				rates[cl] += ar.Rate[c]
				parked[c/cps] = false
			} else {
				buckets[cl]++
				if cl != coreParked {
					parked[c/cps] = false
				}
				if ar.Rate[c] != 0 {
					t.Fatalf("%s: window %d non-serving core %d routed %v rps", label, w, c, ar.Rate[c])
				}
			}
			if ar.Migrated[c] {
				migrations++
			}
			// Recompute the flag from the replay state.
			want := false
			if cl >= 0 {
				joined := w > 0 && prevParked[c/cps]
				want = (w > 0 && lastOwner[c] != cl) || joined
				lastOwner[c] = cl
			}
			if ar.Migrated[c] != want {
				t.Fatalf("%s: window %d core %d migrated=%v, replay says %v",
					label, w, c, ar.Migrated[c], want)
			}
		}
		copy(prevParked, parked)
		if migrations != rec.Migrations {
			t.Fatalf("%s: window %d snapshot has %d migrated cores, record says %d",
				label, w, migrations, rec.Migrations)
		}
		if buckets[coreDrained] != rec.Drained || buckets[coreParked] != rec.Parked || buckets[coreIdle] != rec.Idle {
			t.Fatalf("%s: window %d snapshot buckets %d/%d/%d != record %d/%d/%d", label, w,
				buckets[coreDrained], buckets[coreParked], buckets[coreIdle],
				rec.Drained, rec.Parked, rec.Idle)
		}
		for ci := range rec.Clients {
			if counts[ci] != rec.Clients[ci].Cores {
				t.Fatalf("%s: window %d client %d snapshot holds %d cores, record says %d",
					label, w, ci, counts[ci], rec.Clients[ci].Cores)
			}
			if counts[ci] != res.WindowTrace[w].Clients[ci].Cores {
				t.Fatalf("%s: window %d client %d snapshot holds %d cores, window trace says %d",
					label, w, ci, counts[ci], res.WindowTrace[w].Clients[ci].Cores)
			}
			// Routing conserves the offered load the record reports.
			if offered := rec.Clients[ci].OfferedRPS; counts[ci] > 0 && offered > 0 {
				if math.Abs(rates[ci]-offered) > 1e-9*offered {
					t.Fatalf("%s: window %d client %d routes %v of %v offered",
						label, w, ci, rates[ci], offered)
				}
			}
		}
	}
}
