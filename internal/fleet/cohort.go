// Cohort-coalesced window execution: the fluid/auto engines' default path.
//
// In a homogeneous fleet almost every in-service core is bit-identical to
// its neighbours: same client, same perf generation, same settled mode,
// same per-core rate. The per-core path still pays per-core cost for each
// of them — a work-claim, a solve-cache probe, a histogram Add, a
// controller Observe — a million times per window. This path exploits the
// redundancy instead: each window is walked once, in core order, as
// run-length spans of the plan keyed by (client, rate, perf bits,
// migrated, controller class). A span whose classification is steady is
// answered once — one analytic solve, one Histogram.AddN deposit of the
// span's whole count, a bulk fill of the window slices, and one
// representative controller per equivalence class.
//
// Controller equivalence is exact, not approximate: monitor.Controller is
// a deterministic all-scalar function of its observation stream, so cores
// that have observed identical tail histories hold identical controller
// values. The engine tracks that sharing as lazily-split classes: a class
// forks a core out (copying its by-value controller) the moment the core
// diverges — a discrete window, a migration, a drain/park/handover
// transition — and re-merges classes whose post-observation states collide
// (after a shared steady window every member has observed the same tail,
// so formerly distinct classes often collapse back together; the merge map
// is what keeps the class population proportional to the number of
// distinct histories, not the number of cores).
//
// Discrete-residue cores keep their per-core (seed, core, window) rng
// streams untouched and run on the worker pool exactly as the reference
// path would run them, so the determinism contract — byte-identical
// goldens, DeepEqual across worker counts, DeepEqual against the
// reference path — is preserved exactly. The reference per-core path
// remains available via the STRETCH_NO_COALESCE environment variable (or
// the unexported Config.noCoalesce bit) and is the basis of the
// equivalence suite in cohort_test.go.
package fleet

import (
	"math"
	"sync"

	"stretch/internal/core"
	"stretch/internal/monitor"
	"stretch/internal/queueing"
	"stretch/internal/stats"
)

// claimChunk is the number of work units a pool worker claims per atomic
// increment. One atomic per core made the claim counter the hottest cache
// line in a million-core window; block claims amortise it 128×, and the
// chunk is small enough that the tail imbalance (≤ chunk per worker) is
// noise at every fleet size the benches run.
const claimChunk = 128

// cohortClass is one controller-equivalence class: the controller value
// shared — by construction, not by assumption — by every core whose
// observation history matches. size counts current members; born is the
// window the class was created in (−2 marks a freed table slot awaiting
// reuse), which guards the in-place singleton advance and the double-free
// check in retire sweeps.
type cohortClass struct {
	ctl      monitor.Controller
	client   int16
	lastMode int8
	born     int32
	size     int32
}

// mergeKey identifies classes that become indistinguishable after a
// coalesced window: identical controller value (all-scalar, so directly
// comparable), identical owner and identical settled mode. Classes mapping
// to the same key are re-merged rather than kept apart forever.
type mergeKey struct {
	ctl      monitor.Controller
	client   int16
	lastMode int8
}

// workItem is one discrete-residue core-window handed to the pool: the
// core keeps its own derived seed, its forked class holds its controller.
type workItem struct {
	core       int32
	class      int32
	rate, perf float64
}

// workerPool is the persistent pool the engine reuses across all windows —
// the former per-window spawn loop created workers × windows goroutines
// per run. Jobs are dispatched per window and joined on the pool's own
// WaitGroup; the channel send/receive pairs give the race detector (and
// the memory model) the happens-before edges the barrier needs.
type workerPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make(chan func())}
	for i := 0; i < n; i++ {
		go func() {
			for fn := range p.jobs {
				fn()
				p.wg.Done()
			}
		}()
	}
	return p
}

// run dispatches fn(wk) for each worker index and blocks until all return.
func (p *workerPool) run(n int, fn func(wk int)) {
	p.wg.Add(n)
	for wk := 0; wk < n; wk++ {
		wk := wk
		p.jobs <- func() { fn(wk) }
	}
	p.wg.Wait()
}

func (p *workerPool) close() { close(p.jobs) }

// initCohorts wires the coalesced path's state. The class table starts
// empty and grows to the number of distinct controller histories alive at
// once (bounded by nCores, typically far smaller); freed slots recycle
// through freeClass so a discrete window's million forks reuse the slots
// the following steady window's merges release.
func (e *engine) initCohorts(nClients int) {
	e.classOf = make([]int32, e.nCores)
	for c := range e.classOf {
		e.classOf[c] = -1
	}
	e.swBase = make([]uint64, e.nCores)
	e.mergeMap = make(map[mergeKey]int32)
	e.freshFor = make([]int32, nClients)
}

// newClass allocates a class table slot, recycling freed ones.
func (e *engine) newClass(cl cohortClass) int32 {
	if n := len(e.freeClass); n > 0 {
		k := e.freeClass[n-1]
		e.freeClass = e.freeClass[:n-1]
		e.classes[k] = cl
		return k
	}
	e.classes = append(e.classes, cl)
	return int32(len(e.classes) - 1)
}

// leaveClass removes core c from class k, banking the class controller's
// switch count into the core's own base — the same accounting the
// reference path does at controller reset, moved to departure time (the
// class controller may be reused or merged away before the core's next
// reset). A class emptied here is only reclaimed by the end-of-window
// sweep, never mid-walk: later cores this window may still join it
// through freshFor.
func (e *engine) leaveClass(c int, k int32) {
	e.swBase[c] += e.classes[k].ctl.Switches()
	e.classes[k].size--
	if e.classes[k].size == 0 {
		e.retired = append(e.retired, k)
	}
	e.classOf[c] = -1
}

// coalesceWindow is phase one of a coalesced window: a single serial walk
// over the plan that answers every steady span in closed form and queues
// the discrete residue for the pool. Serial is deliberate — span handling
// mutates the shared class table and merge map, and the walk is O(spans +
// cores·(slice fills)) with no simulation inside, so it is never the
// bottleneck; the expensive residue runs on the pool in phase two.
func (e *engine) coalesceWindow(w int, asg Assignment) {
	e.worklist = e.worklist[:0]
	e.retired = e.retired[:0]
	for ci := range e.freshFor {
		e.freshFor[ci] = -1
	}
	clear(e.mergeMap)

	spanStart := -1
	var spanClass int32
	var spanCi int16
	var spanRate, spanPerf float64
	var spanMig bool
	flush := func(end int) {
		if spanStart >= 0 {
			e.subRun(w, spanClass, spanStart, end, spanCi, spanRate, spanPerf, spanMig)
			spanStart = -1
		}
	}

	for c := 0; c < e.nCores; c++ {
		ci := asg.Client[c]
		if ci < 0 {
			flush(c)
			idx := c*e.windows + w
			e.client[idx] = ci
			e.tails[idx] = math.NaN()
			if ci == coreIdle {
				// An in-service core with no LS client runs batch exactly
				// as the equal-partitioning baseline would: no gain.
				e.batchRel[idx] = 1
			}
			if k := e.classOf[c]; k >= 0 {
				e.leaveClass(c, k)
			}
			continue
		}
		k := e.classOf[c]
		if k < 0 || e.classes[k].client != ci {
			// Handover (or return from a sentinel state): cold start, same
			// as the reference path's controller reset.
			flush(c)
			if k >= 0 {
				e.leaveClass(c, k)
			}
			k = e.freshFor[ci]
			if k < 0 {
				k = e.newClass(cohortClass{client: ci, lastMode: -1, born: int32(w)})
				if err := e.classes[k].ctl.Reset(e.monCfg(e.targets[ci])); err != nil {
					e.errs[c] = err
					continue
				}
				e.freshFor[ci] = k
			}
			e.classOf[c] = k
			e.classes[k].size++
		}
		rate, mig, perf := asg.Rate[c], asg.Migrated[c], e.perf[c]
		if spanStart >= 0 && (k != spanClass || rate != spanRate || perf != spanPerf || mig != spanMig) {
			flush(c)
		}
		if spanStart < 0 {
			spanStart, spanClass, spanCi = c, k, ci
			spanRate, spanPerf, spanMig = rate, perf, mig
		}
	}
	flush(e.nCores)

	// Reclaim classes that emptied this window. born == -2 marks a slot
	// already freed, guarding against duplicate retire entries; a class
	// that emptied mid-walk but was rejoined later has size > 0 again and
	// survives.
	for _, k := range e.retired {
		if e.classes[k].size == 0 && e.classes[k].born >= 0 {
			e.classes[k].born = -2
			e.freeClass = append(e.freeClass, k)
		}
	}
}

// subRun executes one maximal run of cores sharing (class, client, rate,
// perf, migrated) — the cohort key. The mode, effective perf factor,
// batch credit and steadiness classification are computed once for the
// whole run, exactly as stepCore computes them per core.
func (e *engine) subRun(w int, k int32, a, b int, ci int16, rate, rawPerf float64, mig bool) {
	m := int32(b - a)
	mode := e.classes[k].ctl.Mode()
	perf := rawPerf
	if s := e.lsSlowMode[ci][mode]; s != 0 {
		perf *= 1 - s
	}
	if mig {
		perf *= 1 - e.migPenalty
	}
	modeB := mode == core.ModeB
	var bRel float64
	if modeB && mig && e.migPenalty > 0 {
		// Warming the new client's working set eats the bonus.
		bRel = 1
	} else {
		bRel = e.batchRelMode[ci][mode]
	}
	for c := a; c < b; c++ {
		idx := c*e.windows + w
		e.client[idx] = ci
		e.batchRel[idx] = bRel
		if modeB {
			e.modeB[idx] = true
		}
	}

	// Classification, once per cohort: identical inputs would give every
	// member core the identical answer, so deciding per span IS deciding
	// per core. A zero-rate span coalesces trivially (tail 0, see
	// stepCore's idle-window note); a solver refusal drops the whole span
	// to the discrete residue, matching the per-core fallback.
	tail, analytic, coalesced := 0.0, false, false
	if rate > 0 {
		if e.fluidOK[ci] {
			util := rate * e.utilCoef[ci] / perf
			var steady bool
			if e.engineSel == EngineFluid {
				steady = util < queueing.AnalyticMaxUtilization
			} else {
				steady = util <= autoSteadyMaxUtil && int8(mode) == e.classes[k].lastMode &&
					!mig && !e.unsteady[ci][w]
			}
			if steady {
				if t, ok := e.analyticTail(ci, rate, perf); ok {
					tail, analytic, coalesced = t, true, true
				}
			}
		}
	} else {
		coalesced = true
	}

	if coalesced {
		// Answer the whole cohort at once. Every member observes the same
		// tail, so the post-observation controller is one shared value:
		// look it up in the merge map and fold the members into whichever
		// class already carries that exact state (or mint one).
		cand := e.classes[k].ctl
		cand.Observe(monitor.Observation{TailMs: tail})
		mk := mergeKey{ctl: cand, client: ci, lastMode: int8(mode)}
		tgt, ok := e.mergeMap[mk]
		if !ok {
			tgt = e.newClass(cohortClass{ctl: cand, client: ci, lastMode: int8(mode), born: int32(w)})
			e.mergeMap[mk] = tgt
		}
		for c := a; c < b; c++ {
			idx := c*e.windows + w
			e.tails[idx] = tail
			if analytic {
				e.analytic[idx] = true
			}
			e.classOf[c] = tgt
		}
		e.classes[tgt].size += m
		e.classes[k].size -= m
		if e.classes[k].size == 0 {
			e.retired = append(e.retired, k)
		}
		if e.cohortShard != nil {
			e.cohortShard[ci].AddN(tail, uint64(m))
		}
		return
	}

	// Discrete residue: each member diverges through its own rng stream,
	// so each forks out into a singleton class the pool can advance
	// independently. A sole surviving member of an old class advances in
	// place — the steady state of a settled discrete fleet, paying no
	// table traffic at all.
	if m == 1 && e.classes[k].size == 1 && e.classes[k].born < int32(w) {
		e.classes[k].lastMode = int8(mode)
		e.worklist = append(e.worklist, workItem{core: int32(a), class: k, rate: rate, perf: perf})
		return
	}
	base := e.classes[k].ctl
	lm := int8(mode)
	for c := a; c < b; c++ {
		sk := e.newClass(cohortClass{ctl: base, client: ci, lastMode: lm, born: int32(w), size: 1})
		e.classOf[c] = sk
		e.worklist = append(e.worklist, workItem{core: int32(c), class: sk, rate: rate, perf: perf})
	}
	e.classes[k].size -= m
	if e.classes[k].size == 0 {
		e.retired = append(e.retired, k)
	}
}

// runWorkItem is phase two's unit of work: one discrete-residue
// core-window, simulated exactly as the reference path would — same
// (seed, core, window)-derived stream, same Simulator reuse, same shard
// deposit — with the controller advance landing on the core's singleton
// class instead of a coreState. Items touch disjoint cores and classes,
// so the pool needs no locking beyond the claim counter.
func (e *engine) runWorkItem(it workItem, w int, sim *queueing.Simulator, shard []*stats.Histogram) {
	c := int(it.core)
	idx := c*e.windows + w
	ci := e.client[idx]
	seed := e.streams[c].Derive(uint64(w)).Uint64()
	if err := sim.Reset(e.qcfgs[ci]); err != nil {
		e.errs[c] = err
		return
	}
	qr, err := sim.Simulate(it.rate, e.windowReq, it.perf, seed)
	if err != nil {
		e.errs[c] = err
		return
	}
	e.tails[idx] = qr.QoSMs
	if shard != nil {
		shard[ci].Add(qr.QoSMs)
	}
	e.classes[it.class].ctl.Observe(monitor.Observation{TailMs: qr.QoSMs})
}
