// Decision tracing: every scheduling decision as a first-class,
// replayable data record. The ROADMAP's complaint is that the scheduler's
// per-window reasoning is opaque — we can show *that* feedback beats
// proportional on the failover day but not *why*. Tracing answers that by
// capturing, per window, the signal the allocator acted on (offered
// demand, pressure weight, measured slack and violations), what it wanted
// (desired core counts), what it did (cores gained/lost, rebalance vs
// hysteresis suppression, migrations charged) and — optionally — what it
// could have done instead: the counterfactual evaluator re-answers the
// same window under the k most promising single-core moves and records
// the regret of the chosen assignment.
//
// Tracing is off by default and costs nothing when off: the stepper's hot
// path adds one level check per window, and no record is allocated. The
// trace is part of Result, so the determinism contract extends to it —
// records are built behind the window barrier on the engine goroutine and
// depend only on the seed, never on the worker count.
package fleet

import (
	"fmt"
	"sort"

	"stretch/internal/queueing"
	"stretch/internal/rng"
)

// TraceLevel selects how much of each window's scheduling decision is
// recorded into Result.DecisionTrace.
type TraceLevel int

// Trace levels.
const (
	// TraceOff records nothing (the default; zero hot-path cost).
	TraceOff TraceLevel = iota
	// TraceSummary records one DecisionRecord per window: per-client
	// allocation deltas and driving signals, rebalance/suppression flags,
	// migration counts — everything except the raw per-core assignment.
	TraceSummary
	// TraceFull additionally snapshots the per-core assignment (owner,
	// routed rate, migration flag) into each record, which is what lets
	// tests replay a trace and reproduce the engine's exact schedule.
	TraceFull
)

// String names the trace level.
func (l TraceLevel) String() string {
	switch l {
	case TraceOff:
		return "off"
	case TraceSummary:
		return "summary"
	case TraceFull:
		return "full"
	default:
		return fmt.Sprintf("TraceLevel(%d)", int(l))
	}
}

// Validate rejects unknown trace levels.
func (l TraceLevel) Validate() error {
	switch l {
	case TraceOff, TraceSummary, TraceFull:
		return nil
	}
	return fmt.Errorf("fleet: unknown trace level %d", int(l))
}

// ParseTraceLevel resolves a trace-level name (off|summary|full).
func ParseTraceLevel(s string) (TraceLevel, error) {
	switch s {
	case "", "off":
		return TraceOff, nil
	case "summary":
		return TraceSummary, nil
	case "full":
		return TraceFull, nil
	}
	return 0, fmt.Errorf("fleet: unknown trace level %q (off|summary|full)", s)
}

// ClientDecision is one client's slice of a window's scheduling decision:
// the allocation it ended up with, how it changed, and the signals that
// drove the change. Slack and Violations echo the *previous* window's
// measured observation — the input the allocator actually saw — and are
// zero at window 0, where no observation exists yet.
type ClientDecision struct {
	// Cores is the client's serving-core count this window; Gained and
	// Lost are the deltas versus the previous window (never both
	// positive). Desired is what the allocator asked for before
	// hysteresis, rebalancing and core availability had their say (equal
	// to Cores under the static policy, which never asks).
	Cores, Gained, Lost, Desired int
	// OfferedRPS is the client's total offered arrival rate this window
	// (surge-adjusted), and Demand the SLO-weighted, pressure-weighted
	// demand signal handed to the core divider: OfferedRPS normalised by
	// the service's per-core saturation rate, times Weight.
	OfferedRPS, Demand float64
	// Weight is the closed-loop pressure weight (1 under the open-loop
	// policies, which have none).
	Weight float64
	// Slack is the mean measured headroom the client's monitors reported
	// last window (fraction of the tail target; negative = violating).
	Slack float64
	// Violations is the client's violating core-windows last window.
	Violations int
}

// AssignmentRecord is a TraceFull snapshot of one window's per-core
// assignment: owner sentinel/client per core, routed rate, migration flag.
// Unlike Assignment, the slices are owned by the record.
type AssignmentRecord struct {
	Client   []int16
	Rate     []float64
	Migrated []bool
}

// CounterfactualAlt is one evaluated alternative assignment: the chosen
// allocation with a single core moved from Donor to Receiver, and the
// window cost (violating core-windows under the counterfactual evaluation
// model) that move would have produced.
type CounterfactualAlt struct {
	Donor, Receiver int
	Cost            float64
}

// Counterfactual records one traced window's alternative-assignment
// evaluation: the chosen allocation's cost under the same evaluator, the
// best cost over the chosen and all alternatives, and the regret —
// ChosenCost − BestCost, ≥ 0 by construction since the chosen allocation
// participates in the minimum.
type Counterfactual struct {
	// K echoes how many alternatives were requested; Alternatives holds
	// the ones actually evaluated (fewer when the allocation admits fewer
	// legal single-core moves), in evaluated (rank) order.
	K            int
	ChosenCost   float64
	BestCost     float64
	Regret       float64
	Alternatives []CounterfactualAlt
}

// DecisionRecord is one window's complete scheduling decision. Drained,
// Parked and Idle count the non-serving cores, so the per-client Cores
// plus the three buckets always partition the fleet; consecutive records
// (with an all-idle fleet as the window-0 baseline) therefore conserve
// cores — every core gained by a client is lost by another client or by a
// non-serving bucket, which TestDecisionRecordConservation asserts.
type DecisionRecord struct {
	Window  int
	Clients []ClientDecision
	// Drained, Parked and Idle count scenario-drained, autoscaler-parked
	// and in-service-but-unassigned cores this window; Active counts
	// in-service cores (serving + idle).
	Drained, Parked, Idle, Active int
	// Moves is how many cores the allocator's desired counts would have
	// moved; Rebalanced says whether the rebalance actually ran, Forced
	// whether a measured violation pushed it through the hysteresis
	// threshold, and Suppressed whether hysteresis swallowed a non-zero
	// desired move. The static policy never moves cores: all zero/false.
	Moves                          int
	Forced, Rebalanced, Suppressed bool
	// Migrations counts cores paying the migration penalty this window;
	// MigrationPenalty echoes the per-core penalty rate charged to them.
	Migrations       int
	MigrationPenalty float64
	// Counterfactual is the window's alternative-assignment evaluation
	// (nil unless Config.CounterfactualK > 0).
	Counterfactual *Counterfactual
	// Assignment is the TraceFull per-core snapshot (nil at TraceSummary).
	Assignment *AssignmentRecord
}

// decisionTracer is the optional extension a Stepper implements to support
// decision tracing; the built-in elastic stepper does. Kept separate from
// Stepper so the stepped-scheduling interface itself stays stable.
type decisionTracer interface {
	SetTraceLevel(TraceLevel)
	// LastDecision returns the record of the most recent Step call; the
	// pointer is owned by the stepper but the record (and everything it
	// references) is freshly allocated per Step.
	LastDecision() *DecisionRecord
}

// weighted is the optional allocator extension exposing per-client
// pressure weights for tracing (feedbackAlloc implements it).
type weighted interface {
	weights() []float64
}

// SetTraceLevel enables decision recording on the elastic stepper.
func (e *elastic) SetTraceLevel(l TraceLevel) { e.trace = l }

// LastDecision returns the record built by the most recent Step.
func (e *elastic) LastDecision() *DecisionRecord { return e.dec }

// record builds the window's DecisionRecord after the assignment is
// final. Only called when tracing is on; the previous window's per-client
// counts live in e.prevCount (allocated lazily, zero — an all-idle fleet —
// at window 0).
func (e *elastic) record(w int, obs *WindowObservation, desired []int, moves int, forced, rebalanced, suppressed bool) {
	if e.prevCount == nil {
		e.prevCount = make([]int, e.n)
	}
	rec := &DecisionRecord{
		Window:     w,
		Clients:    make([]ClientDecision, e.n),
		Active:     e.nActive,
		Moves:      moves,
		Forced:     forced,
		Rebalanced: rebalanced,
		Suppressed: suppressed,
	}
	for c := 0; c < e.nCores; c++ {
		switch e.asg.Client[c] {
		case coreDrained:
			rec.Drained++
		case coreParked:
			rec.Parked++
		case coreIdle:
			rec.Idle++
		}
		if e.asg.Migrated[c] {
			rec.Migrations++
		}
	}
	if rec.Migrations > 0 {
		rec.MigrationPenalty = e.sched.MigrationPenalty
	}
	var weights []float64
	if wa, ok := e.alloc.(weighted); ok {
		weights = wa.weights()
	}
	for ci := range rec.Clients {
		cd := &rec.Clients[ci]
		cd.Cores = len(e.byClient[ci])
		if d := cd.Cores - e.prevCount[ci]; d > 0 {
			cd.Gained = d
		} else {
			cd.Lost = -d
		}
		if desired != nil {
			cd.Desired = desired[ci]
		} else {
			cd.Desired = cd.Cores
		}
		cd.OfferedRPS = e.load[ci]
		cd.Weight = 1
		if weights != nil {
			cd.Weight = weights[ci]
		}
		cd.Demand = e.load[ci] / e.sat[ci] * cd.Weight
		if obs != nil {
			cd.Slack = obs.Clients[ci].MeanSlack
			cd.Violations = obs.Clients[ci].Violations
		}
		e.prevCount[ci] = cd.Cores
	}
	if e.trace == TraceFull {
		ar := &AssignmentRecord{
			Client:   make([]int16, e.nCores),
			Rate:     make([]float64, e.nCores),
			Migrated: make([]bool, e.nCores),
		}
		copy(ar.Client, e.asg.Client)
		copy(ar.Rate, e.asg.Rate)
		copy(ar.Migrated, e.asg.Migrated)
		rec.Assignment = ar
	}
	e.dec = rec
}

// --- Counterfactual evaluation -----------------------------------------
//
// At each traced window the engine (single-threaded, behind the Step call
// and before the worker pool runs) re-answers the window under up to K
// alternative assignments. The alternative space is the single-core moves
// off the chosen allocation — one core handed from a donor client to a
// receiver — ranked by how promising last window's measurements make them
// (receivers with violations, donors with slack) and truncated to the K
// best. Each allocation, the chosen one included, is costed under a
// shared representative-core model: every client's load splits evenly
// over its cores at generation-neutral performance, one tail answers the
// whole client, and each core of a client whose tail exceeds its target
// counts as a violating core-window. The regret of the chosen assignment
// is its cost minus the best cost over all evaluated allocations — ≥ 0 by
// construction.
//
// Determinism: the evaluator draws its seed from (Seed, window, client)
// only, reuses one dedicated Simulator, and — identical seeds per (w, ci)
// across allocations — compares alternatives under common random numbers.
// Under the fluid/auto engines it answers eligible (in-band utilization,
// structurally solvable) evaluations from the analytic fast path instead,
// exactly like the main engine's steady windows.

// cfLabel derives the counterfactual evaluator's rng branch from the
// experiment seed, disjoint from the simulation (0xF1EE7) and scheduler
// (0x70C2) branches.
const cfLabel = 0xCF0F

// cfKey caches one window's evaluated (client, core-count) tail: within a
// window the seed and load are fixed, so equal counts give equal rates and
// equal tails on every evaluated allocation.
type cfKey struct{ ci, count int }

// counterfactual evaluates window w's chosen allocation against up to
// e.cfK single-core-move alternatives and attaches the outcome to rec.
func (e *engine) counterfactual(w int, rec *DecisionRecord) error {
	n := len(rec.Clients)
	counts := make([]int, n)
	for ci := range counts {
		counts[ci] = rec.Clients[ci].Cores
		e.cfLoad[ci] = rec.Clients[ci].OfferedRPS
	}
	clear(e.cfCache)

	chosen, err := e.cfCost(w, counts)
	if err != nil {
		return err
	}
	cf := &Counterfactual{K: e.cfK, ChosenCost: chosen, BestCost: chosen}

	// The per-client floor alternatives must respect: the configured
	// min-core floor, degraded the way allocCounts degrades it when the
	// active fleet cannot afford it — but never below one, so a move can
	// never strip a loaded client to zero cores (whose cost the
	// representative-core model could not express).
	floor := e.cfMinCores
	if n > 0 && floor > rec.Active/n {
		floor = rec.Active / n
	}
	if floor < 1 {
		floor = 1
	}
	type cand struct {
		donor, receiver int
		score           float64
	}
	var cands []cand
	for d := 0; d < n; d++ {
		if counts[d] <= floor {
			continue
		}
		dc := &rec.Clients[d]
		for r := 0; r < n; r++ {
			if r == d {
				continue
			}
			rc := &rec.Clients[r]
			// Prior ranking from last window's signals: moving a core to
			// a violating client from a slack-rich one is the most
			// promising alternative; violations dominate slack.
			score := 1000*float64(rc.Violations-dc.Violations) + (dc.Slack - rc.Slack)
			cands = append(cands, cand{d, r, score})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
	if len(cands) > e.cfK {
		cands = cands[:e.cfK]
	}
	for _, c := range cands {
		counts[c.donor]--
		counts[c.receiver]++
		cost, err := e.cfCost(w, counts)
		counts[c.donor]++
		counts[c.receiver]--
		if err != nil {
			return err
		}
		cf.Alternatives = append(cf.Alternatives, CounterfactualAlt{
			Donor: c.donor, Receiver: c.receiver, Cost: cost,
		})
		if cost < cf.BestCost {
			cf.BestCost = cost
		}
	}
	cf.Regret = cf.ChosenCost - cf.BestCost
	rec.Counterfactual = cf
	return nil
}

// cfCost prices one allocation for window w under the representative-core
// model: per client, load splits evenly across its cores at perf 1, and a
// tail above target makes every one of its cores a violating core-window.
func (e *engine) cfCost(w int, counts []int) (float64, error) {
	cost := 0.0
	for ci, cnt := range counts {
		load := e.cfLoad[ci]
		if cnt == 0 || load == 0 {
			continue
		}
		tail, err := e.cfTail(w, ci, cnt, load/float64(cnt))
		if err != nil {
			return 0, err
		}
		if tail > e.targets[ci] {
			cost += float64(cnt)
		}
	}
	return cost, nil
}

// cfTail answers one (client, core-count) evaluation: from the window
// cache, the analytic fast path (fluid/auto engines, in-band utilization)
// or the dedicated discrete simulator seeded by (Seed, window, client).
func (e *engine) cfTail(w, ci, cnt int, rate float64) (float64, error) {
	k := cfKey{ci, cnt}
	if t, ok := e.cfCache[k]; ok {
		return t, nil
	}
	if e.engineSel != EngineDiscrete && e.fluidOK[ci] &&
		rate*e.utilCoef[ci] <= autoSteadyMaxUtil {
		if t, ok := e.analyticTail(int16(ci), rate, 1); ok {
			e.cfCache[k] = t
			return t, nil
		}
	}
	seed := e.cfRng.Derive(uint64(w)).Derive(uint64(ci)).Uint64()
	if err := e.cfSim.Reset(e.qcfgs[ci]); err != nil {
		return 0, err
	}
	qr, err := e.cfSim.Simulate(rate, e.windowReq, 1, seed)
	if err != nil {
		return 0, err
	}
	e.cfCache[k] = qr.QoSMs
	return qr.QoSMs, nil
}

// initCounterfactual wires the evaluator's run-constant state.
func (e *engine) initCounterfactual(k, minCores int, seed uint64) {
	e.cfK = k
	e.cfMinCores = minCores
	e.cfRng = rng.New(seed).Derive(cfLabel)
	e.cfSim = new(queueing.Simulator)
	e.cfCache = make(map[cfKey]float64)
	e.cfLoad = make([]float64, len(e.targets))
}
