package fleet

import (
	"math"
	"strings"
	"testing"
)

func TestParseFitnessWeights(t *testing.T) {
	def := DefaultFitnessWeights()
	got, err := ParseFitnessWeights("")
	if err != nil || got != def {
		t.Fatalf("empty spec: %+v, %v", got, err)
	}
	// Overrides land on defaults: unspecified keys keep their weight.
	got, err = ParseFitnessWeights("viol=2,fair=0")
	if err != nil {
		t.Fatal(err)
	}
	want := def
	want.Violations = 2
	want.Fairness = 0
	if got != want {
		t.Fatalf("partial spec: %+v, want %+v", got, want)
	}
	// The canonical rendering round-trips.
	again, err := ParseFitnessWeights(got.String())
	if err != nil || again != got {
		t.Fatalf("round trip %q: %+v, %v", got.String(), again, err)
	}
	bad := []string{
		"viol",            // not key=value
		"viol=",           // empty value
		"viol=x",          // not a number
		"viol=1,viol=2",   // duplicate key
		"speed=1",         // unknown key
		"viol=-1",         // negative
		"batch=NaN",       // NaN
		"fair=+Inf",       // infinite
		"viol=1,,batch=2", // empty part
	}
	for _, s := range bad {
		if _, err := ParseFitnessWeights(s); err == nil {
			t.Errorf("bad spec %q accepted", s)
		}
	}
}

func TestFitnessScoreDirections(t *testing.T) {
	w := DefaultFitnessWeights()
	base := Result{BatchCoreHoursGained: 10, FairnessIndex: 1}
	s := w.Score(base)
	// Each cost must strictly lower the score, each reward raise it.
	worse := base
	worse.ViolationWindows = 5
	if w.Score(worse) >= s {
		t.Fatal("violations did not lower fitness")
	}
	worse = base
	worse.Migrations = 100
	if w.Score(worse) >= s {
		t.Fatal("migrations did not lower fitness")
	}
	better := base
	better.BatchCoreHoursGained = 20
	if w.Score(better) <= s {
		t.Fatal("batch core-hours did not raise fitness")
	}
	worse = base
	worse.FairnessIndex = 0.5
	if w.Score(worse) >= s {
		t.Fatal("fairness did not raise fitness")
	}
	// Sanity: default trade makes perfect fairness worth 25 violations.
	if diff := (s - w.Score(worse)) - 25*0.5; math.Abs(diff) > 1e-12 {
		t.Fatalf("fairness worth off: %v", diff)
	}
}

// FuzzParseFitnessWeights mirrors FuzzParseTrace's contract on the weight
// grammar: never panic, and any accepted spec must validate, render
// canonically and re-parse to the identical weights (parse ∘ encode is
// the identity on accepted inputs).
func FuzzParseFitnessWeights(f *testing.F) {
	f.Add("")
	f.Add("viol=1,batch=0.5,migr=0.05,fair=25")
	f.Add("viol=2")
	f.Add("fair=0,migr=1e-3")
	f.Add("batch=0.5,viol=1")
	f.Add("viol=1,viol=2")
	f.Add("speed=1")
	f.Add("viol=-1")
	f.Add("batch=NaN")
	f.Add("migr=1e309")
	f.Add("viol==1")
	f.Add(",")

	f.Fuzz(func(t *testing.T, in string) {
		w, err := ParseFitnessWeights(in)
		if err != nil {
			return
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("accepted weights fail validation: %v", err)
		}
		s := w.String()
		if strings.Count(s, ",") != 3 {
			t.Fatalf("canonical form %q not four keys", s)
		}
		again, err := ParseFitnessWeights(s)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", s, err)
		}
		if again != w {
			t.Fatalf("re-parse changed the weights: %+v vs %+v", again, w)
		}
	})
}
