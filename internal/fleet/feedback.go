// PolicyFeedback: the closed-loop allocator. The paper's core argument
// (§IV-C) is that Stretch wins by reacting to *measured* tail-latency
// slack; the open-loop policies can only react to offered load. Feedback
// keeps a per-client pressure weight that integrates the previous window's
// measurements — violating core-windows grow a client's weight (stealing
// cores from the rest of the fleet), while clients whose monitors report
// tails far below target decay toward a floor and release cores. The
// weighted demand then flows through the same allocCounts/hysteresis/
// rebalance machinery as PolicyProportional, so min-core floors and the
// migration penalty apply unchanged.
package fleet

// Feedback tuning. The constants trade reaction speed against migration
// churn; they are deliberately conservative so the weight integrates over
// a few windows rather than slamming the fleet on one bad reading.
const (
	// feedbackGain scales how fast a violating client's weight grows:
	// weight ×= 1 + gain × (violating fraction of its cores). This and
	// feedbackDecay are the defaults behind SchedulerConfig.FeedbackGain
	// and FeedbackDecay, the two knobs the search driver sweeps.
	feedbackGain = 1.5
	// feedbackSlackRich is the mean measured headroom (fraction of the
	// tail target, from the per-core monitors) beyond which a client is
	// considered slack-rich and starts releasing cores.
	feedbackSlackRich = 0.4
	// feedbackDecay shrinks a slack-rich client's weight each window.
	feedbackDecay = 0.92
	// feedbackRelax drifts a neutral (neither violating nor slack-rich)
	// or unobserved client's weight back toward 1 each window.
	feedbackRelax = 0.25
	// feedbackMinWeight / feedbackMaxWeight clamp the weights so one
	// client can neither monopolise the fleet nor be starved forever.
	feedbackMinWeight = 0.4
	feedbackMaxWeight = 4.0
)

// feedbackAlloc holds the per-client pressure weights across windows.
type feedbackAlloc struct {
	weight []float64
}

// weights exposes the pressure weights to decision tracing (decision.go);
// nil until the first desired call.
func (f *feedbackAlloc) weights() []float64 { return f.weight }

// desired updates the pressure weights from the previous window's
// observation, then allocates cores proportionally to weighted demand.
// A measured violation also forces the rebalance through the hysteresis
// threshold: hysteresis damps churn from *demand drift*, but a violation
// is direct evidence the current assignment is inadequate — exactly the
// signal the threshold is a proxy for.
func (f *feedbackAlloc) desired(e *elastic, _ int, obs *WindowObservation) []int {
	if f.weight == nil {
		f.weight = make([]float64, e.n)
		for ci := range f.weight {
			f.weight[ci] = 1
		}
	}
	if obs != nil && obs.Violations > 0 {
		e.force = true
	}
	if obs != nil {
		for ci := range f.weight {
			o := obs.Clients[ci]
			switch {
			case o.Cores == 0:
				// No measurement this window: relax toward neutral so a
				// client squeezed to zero cores recovers its
				// proportional share instead of starving forever.
				f.weight[ci] += (1 - f.weight[ci]) * feedbackRelax
			case o.Violations > 0:
				f.weight[ci] *= 1 + e.sched.FeedbackGain*float64(o.Violations)/float64(o.Cores)
			case o.MeanSlack > feedbackSlackRich:
				f.weight[ci] *= e.sched.FeedbackDecay
			default:
				f.weight[ci] += (1 - f.weight[ci]) * feedbackRelax
			}
			if f.weight[ci] < feedbackMinWeight {
				f.weight[ci] = feedbackMinWeight
			}
			if f.weight[ci] > feedbackMaxWeight {
				f.weight[ci] = feedbackMaxWeight
			}
		}
	}
	for ci := range e.demand {
		e.demand[ci] = e.load[ci] / e.sat[ci] * f.weight[ci]
	}
	return allocCounts(e.demand, e.fracs, e.nActive, e.sched.MinCores)
}
