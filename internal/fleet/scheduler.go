// The fleet scheduler decides, window by window, which client each SMT
// core serves and at what arrival rate — turning the §VI-D observation
// that Stretch's value comes from *reacting to load* into a first-class,
// replayable policy. The whole schedule is computed in a sequential
// pre-pass from the (already materialised) client timelines and the
// scenario's drain/surge/perf events, before any simulation goroutine
// starts: scheduling therefore never consumes simulation randomness, and
// results stay bit-identical for identical seeds regardless of the worker
// count.
package fleet

import (
	"fmt"
	"sort"

	"stretch/internal/rng"
	"stretch/internal/workload"
)

// Policy selects how the scheduler divides cores and load.
type Policy int

// Scheduler policies.
const (
	// PolicyStatic is the fixed split: each client owns the cores its
	// Fraction bought for the whole horizon, and its load divides evenly
	// across whichever of them are in service. No cores move between
	// clients; drained servers still reroute load within the client.
	PolicyStatic Policy = iota
	// PolicyProportional re-divides all in-service cores every window in
	// proportion to each client's current offered load (normalised by its
	// service's per-core saturation rate), subject to min-core floors and
	// a rebalance hysteresis; load splits evenly within a client.
	PolicyProportional
	// PolicyP2C allocates cores like PolicyProportional but routes each
	// window's load across a client's cores with power-of-two-choices
	// instead of an even split: the load arrives in chunks, each chunk
	// picking the less-loaded of two uniformly sampled cores.
	PolicyP2C
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyProportional:
		return "proportional"
	case PolicyP2C:
		return "p2c"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy resolves a policy name (static|proportional|p2c).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "static", "":
		return PolicyStatic, nil
	case "proportional":
		return PolicyProportional, nil
	case "p2c":
		return PolicyP2C, nil
	default:
		return 0, fmt.Errorf("fleet: unknown policy %q (static|proportional|p2c)", s)
	}
}

// SchedulerConfig tunes the elastic reallocation.
type SchedulerConfig struct {
	// Policy selects the allocation/routing policy (default static).
	Policy Policy
	// MinCores is the per-client core floor the elastic policies respect
	// (default 1; a degraded fleet with fewer in-service cores than
	// clients×MinCores lowers the floor).
	MinCores int
	// Hysteresis is the fraction of in-service cores that would have to
	// move before a rebalance is worth its migration cost; smaller demand
	// drifts keep the current assignment (zero defaults to 0.1). Drains
	// and restores always force a rebalance.
	Hysteresis float64
	// MigrationPenalty models the cost of moving a core to a new client:
	// for its first window on the new client the core runs the LS service
	// at (1-MigrationPenalty) of its performance and forfeits its B-mode
	// batch bonus (cold caches, state handoff). Default 0.25.
	MigrationPenalty float64
}

// Defaults used when the corresponding SchedulerConfig field is zero.
const (
	defaultMinCores         = 1
	defaultHysteresis       = 0.1
	defaultMigrationPenalty = 0.25
)

// withDefaults fills zero fields.
func (s SchedulerConfig) withDefaults() SchedulerConfig {
	if s.MinCores == 0 {
		s.MinCores = defaultMinCores
	}
	if s.Hysteresis == 0 {
		s.Hysteresis = defaultHysteresis
	}
	if s.MigrationPenalty == 0 {
		s.MigrationPenalty = defaultMigrationPenalty
	}
	return s
}

// Validate rejects unusable tunings. Zero fields are legal (defaulted).
func (s SchedulerConfig) Validate() error {
	switch {
	case s.Policy != PolicyStatic && s.Policy != PolicyProportional && s.Policy != PolicyP2C:
		return fmt.Errorf("fleet: unknown scheduler policy %d", int(s.Policy))
	case s.MinCores < 0:
		return fmt.Errorf("fleet: negative min-core floor")
	case s.Hysteresis < 0 || s.Hysteresis >= 1:
		return fmt.Errorf("fleet: hysteresis %v out of [0,1)", s.Hysteresis)
	case s.MigrationPenalty < 0 || s.MigrationPenalty >= 1:
		return fmt.Errorf("fleet: migration penalty %v out of [0,1)", s.MigrationPenalty)
	}
	return nil
}

// Core-assignment sentinels used in plan.client.
const (
	// coreIdle marks an in-service core with no client this window.
	coreIdle int16 = -1
	// coreDrained marks a core whose server is out of service.
	coreDrained int16 = -2
)

// p2cChunksPerCore is how many routing chunks each core's share of a
// window's load splits into; more chunks = smoother balancing.
const p2cChunksPerCore = 8

// plan is the fully precomputed fleet schedule: for every core and window,
// the client served (or an idle/drained sentinel), the arrival rate, and
// whether the core pays the migration penalty this window.
type plan struct {
	// perf[core] is the server's performance-generation factor.
	perf []float64
	// client[core][window], rate[core][window], migrated[core][window].
	client   [][]int16
	rate     [][]float64
	migrated [][]bool

	// initialCores[clientIndex] is the window-0 allocation.
	initialCores []int
	// Aggregate schedule stats.
	migrations         int
	drainedCoreWindows int
	idleCoreWindows    int
}

// buildPlan computes the schedule. sched must already carry defaults and
// timelines must cover every client.
func buildPlan(cfg Config, sched SchedulerConfig, timelines map[string][]float64) *plan {
	nCores := cfg.Servers * cfg.CoresPerServer
	windows := cfg.Traffic.Windows
	clients := cfg.Traffic.Clients
	n := len(clients)

	names := make([]string, n)
	rates := make([][]float64, n)
	sat := make([]float64, n)
	fracs := make([]float64, n)
	for i, c := range clients {
		names[i] = c.Name
		rates[i] = timelines[c.Name]
		svc := workload.Services()[c.Service]
		// Demand normalises offered load by the service's per-core
		// saturation rate and weights it by SLO class: a strict client
		// needs proportionally more headroom per unit of load than a
		// relaxed one, whose slack the batch side can harvest instead.
		sat[i] = float64(svc.Workers) * 1000 / svc.MeanServiceMs * c.SLO.Scale()
		fracs[i] = c.Fraction
	}
	perfGen := cfg.Scenario.PerfFactors(cfg.Servers)
	drained := cfg.Scenario.DrainMask(cfg.Servers, windows)
	surge := cfg.Scenario.SurgeMatrix(names, windows)

	p := &plan{
		perf:         make([]float64, nCores),
		client:       make([][]int16, nCores),
		rate:         make([][]float64, nCores),
		migrated:     make([][]bool, nCores),
		initialCores: make([]int, n),
	}
	for c := 0; c < nCores; c++ {
		p.perf[c] = perfGen[c/cfg.CoresPerServer]
		p.client[c] = make([]int16, windows)
		p.rate[c] = make([]float64, windows)
		p.migrated[c] = make([]bool, windows)
	}

	// Owners start from the static Fraction split; elastic policies adjust
	// them window by window. Drained cores keep their owner so a restored
	// server resumes where it left off until the next rebalance.
	owner := make([]int16, nCores)
	idx := 0
	for ci, k := range assignCores(clients, nCores) {
		for j := 0; j < k; j++ {
			owner[idx] = int16(ci)
			idx++
		}
	}
	for ; idx < nCores; idx++ {
		owner[idx] = coreIdle
	}

	route := rng.New(cfg.Seed).Derive(0x70C2)
	active := make([]bool, nCores)
	load := make([]float64, n)
	cur := make([]int, n)
	byClient := make([][]int, n)

	for w := 0; w < windows; w++ {
		nActive := 0
		drainChanged := w == 0
		for c := 0; c < nCores; c++ {
			a := !drained[c/cfg.CoresPerServer][w]
			if w > 0 && a != active[c] {
				drainChanged = true
			}
			active[c] = a
			if a {
				nActive++
			}
		}
		for ci := 0; ci < n; ci++ {
			load[ci] = rates[ci][w] * surge[ci][w]
		}

		if sched.Policy != PolicyStatic && nActive > 0 {
			for ci := range cur {
				cur[ci] = 0
			}
			for c := 0; c < nCores; c++ {
				if active[c] && owner[c] >= 0 {
					cur[owner[c]]++
				}
			}
			demand := make([]float64, n)
			for ci := range demand {
				demand[ci] = load[ci] / sat[ci]
			}
			desired := allocCounts(demand, fracs, nActive, sched.MinCores)
			moves := 0
			for ci := range desired {
				if d := desired[ci] - cur[ci]; d > 0 {
					moves += d
				}
			}
			if drainChanged || float64(moves) > sched.Hysteresis*float64(nActive) {
				rebalance(owner, active, cur, desired)
			}
		}

		// Record assignments, migrations and per-client core lists.
		for ci := range byClient {
			byClient[ci] = byClient[ci][:0]
		}
		for c := 0; c < nCores; c++ {
			cl := owner[c]
			if !active[c] {
				cl = coreDrained
			}
			p.client[c][w] = cl
			switch {
			case cl == coreDrained:
				p.drainedCoreWindows++
			case cl == coreIdle:
				p.idleCoreWindows++
			default:
				if w > 0 && p.client[c][w-1] != cl {
					p.migrated[c][w] = true
					p.migrations++
				}
				byClient[cl] = append(byClient[cl], c)
				if w == 0 {
					p.initialCores[cl]++
				}
			}
		}

		// Route each client's offered load across its in-service cores.
		for ci := 0; ci < n; ci++ {
			cores := byClient[ci]
			k := len(cores)
			if k == 0 || load[ci] == 0 {
				continue
			}
			if sched.Policy == PolicyP2C && k > 1 {
				chunks := p2cChunksPerCore * k
				q := load[ci] / float64(chunks)
				per := make([]float64, k)
				for j := 0; j < chunks; j++ {
					a := route.Intn(k)
					if b := route.Intn(k); per[b] < per[a] {
						a = b
					}
					per[a] += q
				}
				for i, c := range cores {
					p.rate[c][w] = per[i]
				}
			} else {
				r := load[ci] / float64(k)
				for _, c := range cores {
					p.rate[c][w] = r
				}
			}
		}
	}
	return p
}

// allocCounts divides nActive cores across clients proportionally to
// demand (falling back to the configured fractions when no client offers
// load), with a per-client floor and largest-remainder rounding. The
// result always sums to min(nActive, …): every in-service core is put to
// work — a core serving a lightly loaded client still harvests B-mode
// batch hours, an idle one harvests nothing.
func allocCounts(demand, fracs []float64, nActive, minCores int) []int {
	n := len(demand)
	out := make([]int, n)
	if nActive <= 0 || n == 0 {
		return out
	}
	sum := 0.0
	for _, d := range demand {
		sum += d
	}
	if sum <= 0 {
		demand = fracs
		sum = 0
		for _, d := range demand {
			sum += d
		}
	}
	floor := minCores
	if floor > nActive/n {
		floor = nActive / n
	}
	spare := nActive - floor*n
	type share struct {
		idx  int
		frac float64
	}
	shares := make([]share, n)
	used := 0
	for i, d := range demand {
		exact := d / sum * float64(spare)
		k := int(exact)
		out[i] = floor + k
		used += k
		shares[i] = share{i, exact - float64(k)}
	}
	sort.SliceStable(shares, func(a, b int) bool { return shares[a].frac > shares[b].frac })
	for k := 0; used < spare; k = (k + 1) % n {
		out[shares[k].idx]++
		used++
	}
	return out
}

// rebalance minimally edits the owner mapping so each client's in-service
// core count matches desired: surplus clients release their highest-index
// cores, deficit clients claim the lowest-index free ones. cur is updated
// in place.
func rebalance(owner []int16, active []bool, cur, desired []int) {
	var free []int
	for c := len(owner) - 1; c >= 0; c-- {
		if !active[c] {
			continue
		}
		ci := owner[c]
		if ci == coreIdle {
			free = append(free, c)
			continue
		}
		if cur[ci] > desired[ci] {
			owner[c] = coreIdle
			cur[ci]--
			free = append(free, c)
		}
	}
	sort.Ints(free)
	fi := 0
	for ci := range desired {
		for cur[ci] < desired[ci] && fi < len(free) {
			owner[free[fi]] = int16(ci)
			fi++
			cur[ci]++
		}
	}
}
