// The fleet scheduler decides, window by window, which client each SMT
// core serves and at what arrival rate — turning the §VI-D observation
// that Stretch's value comes from *reacting to load* into a first-class,
// replayable policy. Since the engine went window-major, the scheduler is a
// stateful stepped interface (Stepper): Plan fixes the static inputs, then
// Step is called once per window — with the previous window's *measured*
// observation — and returns the window's assignment. The open-loop
// policies (static, proportional, p2c) decide from offered load alone and
// ignore the observation, so their schedules are bit-identical to the
// former precomputed plan; PolicyFeedback (feedback.go) closes the loop on
// measured tails. Scheduling draws only from its own seed-derived rng
// stream, never from simulation randomness, so results stay bit-identical
// for identical seeds regardless of the worker count.
package fleet

import (
	"fmt"
	"sort"

	"stretch/internal/loadgen"
	"stretch/internal/rng"
	"stretch/internal/workload"
)

// Policy selects how the scheduler divides cores and load.
type Policy int

// Scheduler policies.
const (
	// PolicyStatic is the fixed split: each client owns the cores its
	// Fraction bought for the whole horizon, and its load divides evenly
	// across whichever of them are in service. No cores move between
	// clients; drained servers still reroute load within the client.
	PolicyStatic Policy = iota
	// PolicyProportional re-divides all in-service cores every window in
	// proportion to each client's current offered load (normalised by its
	// service's per-core saturation rate), subject to min-core floors and
	// a rebalance hysteresis; load splits evenly within a client.
	PolicyProportional
	// PolicyP2C allocates cores like PolicyProportional but routes each
	// window's load across a client's cores with power-of-two-choices
	// instead of an even split: the load arrives in chunks, each chunk
	// picking the less-loaded of two uniformly sampled cores.
	PolicyP2C
	// PolicyFeedback allocates like PolicyProportional but weights each
	// client's demand by a closed-loop pressure signal from the previous
	// window's measurements: clients with violating core-windows gain
	// weight (and steal cores), clients whose observed tails sit far below
	// target decay and release them — all under the same hysteresis,
	// min-core-floor and migration-penalty machinery.
	PolicyFeedback
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyProportional:
		return "proportional"
	case PolicyP2C:
		return "p2c"
	case PolicyFeedback:
		return "feedback"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy resolves a policy name (static|proportional|p2c|feedback).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "static", "":
		return PolicyStatic, nil
	case "proportional":
		return PolicyProportional, nil
	case "p2c":
		return PolicyP2C, nil
	case "feedback":
		return PolicyFeedback, nil
	default:
		return 0, fmt.Errorf("fleet: unknown policy %q (static|proportional|p2c|feedback)", s)
	}
}

// SchedulerConfig tunes the elastic reallocation.
type SchedulerConfig struct {
	// Policy selects the allocation/routing policy (default static).
	Policy Policy
	// MinCores is the per-client core floor the elastic policies respect
	// (default 1; a degraded fleet with fewer in-service cores than
	// clients×MinCores lowers the floor).
	MinCores int
	// Hysteresis is the fraction of in-service cores that would have to
	// move before a rebalance is worth its migration cost; smaller demand
	// drifts keep the current assignment (zero defaults to 0.1). Drains
	// and restores always force a rebalance.
	Hysteresis float64
	// MigrationPenalty models the cost of moving a core to a new client:
	// for its first window on the new client the core runs the LS service
	// at (1-MigrationPenalty) of its performance and forfeits its B-mode
	// batch bonus (cold caches, state handoff). Default 0.25.
	MigrationPenalty float64

	// FeedbackGain and FeedbackDecay tune PolicyFeedback's closed loop
	// (see feedback.go): gain scales how fast a violating client's
	// pressure weight grows, decay shrinks a slack-rich client's weight
	// each window. Zero means the hand-tuned defaults (1.5 and 0.92);
	// both are ignored by the open-loop policies. These are the knobs the
	// search driver (search.go) sweeps.
	FeedbackGain, FeedbackDecay float64

	// NoMinCores, NoHysteresis and NoMigrationPenalty make the
	// corresponding zero value literal instead of "use the default": a
	// plain zero struct still gets the defaults above (so existing configs
	// keep working), while e.g. NoHysteresis genuinely disables rebalance
	// damping and NoMigrationPenalty makes core moves free. Setting a flag
	// together with a non-zero value of its field is rejected.
	NoMinCores, NoHysteresis, NoMigrationPenalty bool
}

// Defaults used when the corresponding SchedulerConfig field is zero and
// not explicitly disabled.
const (
	defaultMinCores         = 1
	defaultHysteresis       = 0.1
	defaultMigrationPenalty = 0.25
)

// WithDefaults returns the config with every zero field resolved to the
// value a run would actually use — what newStepper sees, and what search
// reports so tunings never show as zero placeholders.
func (s SchedulerConfig) WithDefaults() SchedulerConfig { return s.withDefaults() }

// withDefaults fills zero fields unless they are explicitly pinned to zero.
func (s SchedulerConfig) withDefaults() SchedulerConfig {
	if s.MinCores == 0 && !s.NoMinCores {
		s.MinCores = defaultMinCores
	}
	if s.Hysteresis == 0 && !s.NoHysteresis {
		s.Hysteresis = defaultHysteresis
	}
	if s.MigrationPenalty == 0 && !s.NoMigrationPenalty {
		s.MigrationPenalty = defaultMigrationPenalty
	}
	if s.FeedbackGain == 0 {
		s.FeedbackGain = feedbackGain
	}
	if s.FeedbackDecay == 0 {
		s.FeedbackDecay = feedbackDecay
	}
	return s
}

// Validate rejects unusable tunings. Zero fields are legal (defaulted).
func (s SchedulerConfig) Validate() error {
	switch {
	case s.Policy < PolicyStatic || s.Policy > PolicyFeedback:
		return fmt.Errorf("fleet: unknown scheduler policy %d", int(s.Policy))
	case s.MinCores < 0:
		return fmt.Errorf("fleet: negative min-core floor")
	case s.Hysteresis < 0 || s.Hysteresis >= 1:
		return fmt.Errorf("fleet: hysteresis %v out of [0,1)", s.Hysteresis)
	case s.MigrationPenalty < 0 || s.MigrationPenalty >= 1:
		return fmt.Errorf("fleet: migration penalty %v out of [0,1)", s.MigrationPenalty)
	case s.FeedbackGain < 0:
		return fmt.Errorf("fleet: negative feedback gain %v", s.FeedbackGain)
	case s.FeedbackDecay < 0 || s.FeedbackDecay > 1:
		return fmt.Errorf("fleet: feedback decay %v out of [0,1]", s.FeedbackDecay)
	case s.NoMinCores && s.MinCores != 0:
		return fmt.Errorf("fleet: NoMinCores contradicts MinCores=%d", s.MinCores)
	case s.NoHysteresis && s.Hysteresis != 0:
		return fmt.Errorf("fleet: NoHysteresis contradicts Hysteresis=%v", s.Hysteresis)
	case s.NoMigrationPenalty && s.MigrationPenalty != 0:
		return fmt.Errorf("fleet: NoMigrationPenalty contradicts MigrationPenalty=%v", s.MigrationPenalty)
	}
	return nil
}

// Core-assignment sentinels used in Assignment.Client.
const (
	// coreIdle marks an in-service core with no client this window.
	coreIdle int16 = -1
	// coreDrained marks a core whose server the scenario took out of
	// service (failure / maintenance drain).
	coreDrained int16 = -2
	// coreParked marks a core whose server the autoscaler scaled in: out
	// of service like a drain, but by fleet-sizing choice rather than
	// scenario event, and accounted separately.
	coreParked int16 = -3
)

// p2cChunksPerCore is how many routing chunks each core's share of a
// window's load splits into; more chunks = smoother balancing.
const p2cChunksPerCore = 8

// Assignment is one window's scheduling decision: for every core, the
// client served (or an idle/drained sentinel), the arrival rate routed to
// it, and whether it pays the migration penalty this window. The slices
// belong to the scheduler and are valid only until the next Step call.
type Assignment struct {
	Client   []int16
	Rate     []float64
	Migrated []bool
}

// PlanInput carries the static scheduler inputs, fixed before the first
// window: fleet shape, traffic spec with its materialised per-client
// timelines, scenario events and the experiment seed.
type PlanInput struct {
	Servers, CoresPerServer int
	Traffic                 loadgen.Traffic
	// Timelines maps each client name to its per-window offered load
	// (already drawn from the seed).
	Timelines map[string][]float64
	Scenario  loadgen.Scenario
	Seed      uint64
}

// Stepper is the stateful, stepped scheduling interface the window-major
// engine drives. Plan consumes the static inputs once; Step is then called
// for every window in order, receiving the previous window's measured
// observation (nil at window 0), and returns the window's assignment.
// Policies are free to ignore the observation (the open-loop policies do)
// or to close the loop on it (PolicyFeedback).
type Stepper interface {
	Plan(in PlanInput) error
	Step(w int, obs *WindowObservation) Assignment
}

// newStepper builds the Stepper for the configured policy and autoscaler.
// Both configs must already carry defaults.
func newStepper(sched SchedulerConfig, auto AutoscaleConfig) Stepper {
	e := &elastic{sched: sched, auto: newAutoscaler(auto), autoMin: auto.MinServers}
	switch sched.Policy {
	case PolicyProportional, PolicyP2C:
		e.alloc = demandAlloc{}
	case PolicyFeedback:
		e.alloc = &feedbackAlloc{}
	}
	return e
}

// allocator computes the per-client desired core counts for the elastic
// policies; a nil allocator means static ownership (cores never move).
type allocator interface {
	desired(e *elastic, w int, obs *WindowObservation) []int
}

// demandAlloc is the open-loop proportional allocation shared by
// PolicyProportional and PolicyP2C: cores in proportion to each client's
// SLO-weighted offered load.
type demandAlloc struct{}

func (demandAlloc) desired(e *elastic, _ int, _ *WindowObservation) []int {
	for ci := range e.demand {
		e.demand[ci] = e.load[ci] / e.sat[ci]
	}
	return allocCounts(e.demand, e.fracs, e.nActive, e.sched.MinCores)
}

// elastic implements Stepper for every built-in policy; the policies
// differ only in the allocator hook (and p2c's routing). All scratch state
// is owned by the stepper, so Step performs no per-window allocations
// beyond the allocator's count slice.
type elastic struct {
	sched   SchedulerConfig
	alloc   allocator
	auto    Autoscaler // nil when autoscaling is off
	autoMin int        // in-service server floor for the autoscaler

	nCores, coresPerServer, windows, n int

	rates      [][]float64 // per-client offered-load timelines
	sat, fracs []float64
	drained    [][]bool
	surge      [][]float64

	route  *rng.Stream
	owner  []int16
	active []bool
	// lastOwner is the last *real* client each core served (coreIdle
	// until the first assignment); sentinels are never written to it, so
	// a core resuming its previous client after a drain, park or idle gap
	// is not a migration — only a genuine owner change pays the penalty.
	lastOwner []int16
	parked    []bool // per-server: scaled in by the autoscaler
	joined    []bool // per-server: unparked this window (pays warm-up)
	load      []float64
	demand    []float64
	cur       []int
	byClient  [][]int
	per       []float64 // p2c routing scratch
	nActive   int
	// force is set by the allocator to push the rebalance through the
	// hysteresis threshold (PolicyFeedback on a measured violation); it is
	// cleared every Step.
	force bool

	// Decision tracing (decision.go): prevCount holds the previous
	// window's per-client core counts for the gained/lost deltas, dec the
	// record built by the most recent Step. Both stay nil when trace is
	// TraceOff, which is the entire hot-path cost of the feature.
	trace     TraceLevel
	prevCount []int
	dec       *DecisionRecord

	asg Assignment
}

// Plan materialises the static schedule inputs: demand normalisation, the
// scenario's drain/surge matrices, and the window-0 ownership from the
// static Fraction split.
func (e *elastic) Plan(in PlanInput) error {
	nCores := in.Servers * in.CoresPerServer
	clients := in.Traffic.Clients
	n := len(clients)
	e.nCores, e.coresPerServer, e.windows, e.n = nCores, in.CoresPerServer, in.Traffic.Windows, n

	names := make([]string, n)
	e.rates = make([][]float64, n)
	e.sat = make([]float64, n)
	e.fracs = make([]float64, n)
	for i, c := range clients {
		names[i] = c.Name
		tl, ok := in.Timelines[c.Name]
		if !ok || len(tl) < e.windows {
			return fmt.Errorf("fleet: client %q has no %d-window timeline", c.Name, e.windows)
		}
		e.rates[i] = tl
		svc := workload.Services()[c.Service]
		// Demand normalises offered load by the service's per-core
		// saturation rate and weights it by SLO class: a strict client
		// needs proportionally more headroom per unit of load than a
		// relaxed one, whose slack the batch side can harvest instead.
		e.sat[i] = float64(svc.Workers) * 1000 / svc.MeanServiceMs * c.SLO.Scale()
		e.fracs[i] = c.Fraction
	}
	e.drained = in.Scenario.DrainMask(in.Servers, e.windows)
	e.surge = in.Scenario.SurgeMatrix(names, e.windows)

	// Owners start from the static Fraction split; elastic policies adjust
	// them window by window. Drained cores keep their owner so a restored
	// server resumes where it left off until the next rebalance.
	e.owner = make([]int16, nCores)
	idx := 0
	for ci, k := range assignCores(clients, nCores) {
		for j := 0; j < k; j++ {
			e.owner[idx] = int16(ci)
			idx++
		}
	}
	for ; idx < nCores; idx++ {
		e.owner[idx] = coreIdle
	}

	e.route = rng.New(in.Seed).Derive(0x70C2)
	e.active = make([]bool, nCores)
	// The planned window-0 owners are the baseline: like window 0 itself,
	// a core's first window on its planned client is free.
	e.lastOwner = make([]int16, nCores)
	copy(e.lastOwner, e.owner)
	e.parked = make([]bool, in.Servers)
	e.joined = make([]bool, in.Servers)
	e.load = make([]float64, n)
	e.demand = make([]float64, n)
	e.cur = make([]int, n)
	e.byClient = make([][]int, n)
	e.asg = Assignment{
		Client:   make([]int16, nCores),
		Rate:     make([]float64, nCores),
		Migrated: make([]bool, nCores),
	}
	return nil
}

// Step decides window w: compute offered load, let the autoscaler
// park/unpark servers, compose that with the scenario drain mask, let the
// allocator move cores (behind the hysteresis threshold), then route each
// client's load across its in-service cores.
func (e *elastic) Step(w int, obs *WindowObservation) Assignment {
	nCores, n := e.nCores, e.n
	for ci := 0; ci < n; ci++ {
		e.load[ci] = e.rates[ci][w] * e.surge[ci][w]
	}
	if e.auto != nil {
		e.autoscale(w, obs)
	}
	nActive := 0
	drainChanged := w == 0
	for c := 0; c < nCores; c++ {
		srv := c / e.coresPerServer
		a := !e.drained[srv][w] && !e.parked[srv]
		if w > 0 && a != e.active[c] {
			drainChanged = true
		}
		e.active[c] = a
		if a {
			nActive++
		}
	}
	e.nActive = nActive

	var desired []int
	moves := 0
	rebalanced := false
	if e.alloc != nil && nActive > 0 {
		for ci := range e.cur {
			e.cur[ci] = 0
		}
		for c := 0; c < nCores; c++ {
			if e.active[c] && e.owner[c] >= 0 {
				e.cur[e.owner[c]]++
			}
		}
		e.force = false
		desired = e.alloc.desired(e, w, obs)
		for ci := range desired {
			if d := desired[ci] - e.cur[ci]; d > 0 {
				moves += d
			}
		}
		if drainChanged || (e.force && moves > 0) ||
			float64(moves) > e.sched.Hysteresis*float64(nActive) {
			rebalance(e.owner, e.active, e.cur, desired)
			rebalanced = true
		}
	}

	// Record assignments, migrations and per-client core lists.
	for ci := range e.byClient {
		e.byClient[ci] = e.byClient[ci][:0]
	}
	for c := 0; c < nCores; c++ {
		cl := e.owner[c]
		srv := c / e.coresPerServer
		if !e.active[c] {
			// Scenario drains take precedence over parking in the books:
			// a parked server that fails is a failed server.
			if e.drained[srv][w] {
				cl = coreDrained
			} else {
				cl = coreParked
			}
		}
		e.asg.Client[c] = cl
		e.asg.Rate[c] = 0
		e.asg.Migrated[c] = false
		if cl >= 0 {
			// A migration is a genuine owner change (never a resume after
			// a drain, park or idle gap) — or the warm-up a freshly
			// unparked server's cores pay on their first active window.
			if (w > 0 && e.lastOwner[c] != cl) || e.joined[srv] {
				e.asg.Migrated[c] = true
			}
			e.byClient[cl] = append(e.byClient[cl], c)
			e.lastOwner[c] = cl
		}
	}

	// Route each client's offered load across its in-service cores.
	for ci := 0; ci < n; ci++ {
		cores := e.byClient[ci]
		k := len(cores)
		if k == 0 || e.load[ci] == 0 {
			continue
		}
		if e.sched.Policy == PolicyP2C && k > 1 {
			chunks := p2cChunksPerCore * k
			q := e.load[ci] / float64(chunks)
			if cap(e.per) < k {
				e.per = make([]float64, k)
			}
			per := e.per[:k]
			for i := range per {
				per[i] = 0
			}
			for j := 0; j < chunks; j++ {
				a := e.route.Intn(k)
				if b := e.route.Intn(k); per[b] < per[a] {
					a = b
				}
				per[a] += q
			}
			for i, c := range cores {
				e.asg.Rate[c] = per[i]
			}
		} else {
			r := e.load[ci] / float64(k)
			for _, c := range cores {
				e.asg.Rate[c] = r
			}
		}
	}
	if e.trace != TraceOff {
		e.record(w, obs, desired, moves, e.force, rebalanced, moves > 0 && !rebalanced)
	}
	return e.asg
}

// autoscale runs one scaling decision: build the fleet state, ask the
// policy how many servers should be up, clamp to [MinServers, available]
// and park/unpark whole servers. Unparking picks the lowest-index parked
// server first and parking the highest-index up server first, so the
// fleet grows and shrinks at the same deterministic edge regardless of
// worker count. Servers unparked at w>0 are marked joined for this window
// so their cores pay the warm-up cost.
func (e *elastic) autoscale(w int, obs *WindowObservation) {
	servers := e.nCores / e.coresPerServer
	avail, up := 0, 0
	for s := 0; s < servers; s++ {
		e.joined[s] = false
		if e.drained[s][w] {
			continue
		}
		avail++
		if !e.parked[s] {
			up++
		}
	}
	demand := 0.0
	for ci := range e.load {
		demand += e.load[ci] / e.sat[ci]
	}
	want := e.auto.DesiredServers(w, obs, ScaleState{
		AvailableServers: avail,
		UpServers:        up,
		CoresPerServer:   e.coresPerServer,
		DemandCores:      demand,
	})
	if floor := min(e.autoMin, avail); want < floor {
		want = floor
	}
	if want > avail {
		want = avail
	}
	for s := 0; s < servers && up < want; s++ {
		if e.parked[s] && !e.drained[s][w] {
			e.parked[s] = false
			if w > 0 {
				e.joined[s] = true
			}
			up++
		}
	}
	for s := servers - 1; s >= 0 && up > want; s-- {
		if !e.parked[s] && !e.drained[s][w] {
			e.parked[s] = true
			up--
		}
	}
}

// allocCounts divides nActive cores across clients proportionally to
// demand (falling back to the configured fractions when no client offers
// load), with a per-client floor and largest-remainder rounding. The
// result always sums to min(nActive, …): every in-service core is put to
// work — a core serving a lightly loaded client still harvests B-mode
// batch hours, an idle one harvests nothing.
func allocCounts(demand, fracs []float64, nActive, minCores int) []int {
	n := len(demand)
	out := make([]int, n)
	if nActive <= 0 || n == 0 {
		return out
	}
	sum := 0.0
	for _, d := range demand {
		sum += d
	}
	if sum <= 0 {
		demand = fracs
		sum = 0
		for _, d := range demand {
			sum += d
		}
	}
	floor := minCores
	if floor > nActive/n {
		floor = nActive / n
	}
	spare := nActive - floor*n
	if sum <= 0 {
		// No demand and no fractions to fall back on: d/sum would make
		// every share NaN and the remainder sort arbitrary. Split evenly.
		for i := range out {
			out[i] = floor + spare/n
		}
		for i := 0; i < spare%n; i++ {
			out[i]++
		}
		return out
	}
	type share struct {
		idx  int
		frac float64
	}
	shares := make([]share, n)
	used := 0
	for i, d := range demand {
		exact := d / sum * float64(spare)
		k := int(exact)
		out[i] = floor + k
		used += k
		shares[i] = share{i, exact - float64(k)}
	}
	sort.SliceStable(shares, func(a, b int) bool { return shares[a].frac > shares[b].frac })
	for k := 0; used < spare; k = (k + 1) % n {
		out[shares[k].idx]++
		used++
	}
	return out
}

// rebalance minimally edits the owner mapping so each client's in-service
// core count matches desired: surplus clients release their highest-index
// cores, deficit clients claim the lowest-index free ones. cur is updated
// in place.
func rebalance(owner []int16, active []bool, cur, desired []int) {
	var free []int
	for c := len(owner) - 1; c >= 0; c-- {
		if !active[c] {
			continue
		}
		ci := owner[c]
		if ci == coreIdle {
			free = append(free, c)
			continue
		}
		if cur[ci] > desired[ci] {
			owner[c] = coreIdle
			cur[ci]--
			free = append(free, c)
		}
	}
	sort.Ints(free)
	fi := 0
	for ci := range desired {
		for cur[ci] < desired[ci] && fi < len(free) {
			owner[free[fi]] = int16(ci)
			fi++
			cur[ci]++
		}
	}
}
