// Capacity planning: turn the simulator around. A fleet run answers "what
// happens with N servers"; PlanCapacity answers the operator's question —
// "how many servers do I need" — by binary-searching the smallest fleet
// whose full-horizon run stays within an SLO budget of violating
// core-windows. Driven from a recorded trace (internal/loadgen trace
// files), the offered load is fixed while the fleet shrinks, so the
// answer is a property of the traffic and the budget alone: seed- and
// worker-count-independent, reproducible in CI.
package fleet

import "fmt"

// CapacitySpec asks for the minimum fleet that meets an SLO budget.
type CapacitySpec struct {
	// Config is the run template. Config.Servers is the search ceiling
	// (the largest fleet considered); every probe reruns the identical
	// config with a smaller Servers. The traffic should be a recorded
	// trace (or any spec whose offered load does not depend on the fleet
	// size) for the answer to mean anything.
	Config Config
	// MinServers is the search floor (default 1). The template must be
	// valid at the floor — e.g. enough cores for every client.
	MinServers int
	// MaxViolationWindows is the SLO budget: the largest tolerable count
	// of QoS-violating core-windows over the whole horizon.
	MaxViolationWindows int
}

// CapacityPoint is one probed fleet size.
type CapacityPoint struct {
	Servers, Cores int
	// ViolationWindows is the probe run's fleet-wide violating
	// core-window count; Met reports whether it is within budget.
	ViolationWindows int
	Met              bool
	// FleetP99Ms and BatchCoreHoursGained summarise the probe run.
	FleetP99Ms           float64
	BatchCoreHoursGained float64
}

// CapacityPlan is the search result.
type CapacityPlan struct {
	// Budget, CoresPerServer, MinServers and MaxServers echo the spec.
	Budget         int
	CoresPerServer int
	MinServers     int
	MaxServers     int
	// Probes records every evaluated fleet size in evaluation order:
	// ceiling first, then floor, then the bisection midpoints. The full
	// record is what lets tests assert the monotonicity the bisection
	// relies on (violations non-increasing in fleet size).
	Probes []CapacityPoint
	// Feasible reports whether even MaxServers meets the budget; when
	// false, Servers and Cores are zero.
	Feasible bool
	// Servers and Cores are the minimum fleet meeting the budget, and
	// ViolationWindows its measured violation count.
	Servers, Cores   int
	ViolationWindows int
}

// PlanCapacity binary-searches the minimum server count in
// [MinServers, Config.Servers] whose full-horizon run meets the budget.
// Bisection assumes violations are non-increasing in fleet size — true
// whenever adding servers only dilutes per-core load (the recorded-trace
// replays this is built for); the ceiling and floor are probed first, so
// an infeasible budget is detected without a fruitless search.
func PlanCapacity(spec CapacitySpec) (CapacityPlan, error) {
	cfg := spec.Config
	minS := spec.MinServers
	if minS == 0 {
		minS = 1
	}
	maxS := cfg.Servers
	plan := CapacityPlan{
		Budget:         spec.MaxViolationWindows,
		CoresPerServer: cfg.CoresPerServer,
		MinServers:     minS,
		MaxServers:     maxS,
	}
	if spec.MaxViolationWindows < 0 {
		return plan, fmt.Errorf("fleet: negative SLO budget %d", spec.MaxViolationWindows)
	}
	if minS < 1 || minS > maxS {
		return plan, fmt.Errorf("fleet: capacity search range [%d,%d] invalid", minS, maxS)
	}
	floorCfg := cfg
	floorCfg.Servers = minS
	if err := floorCfg.Validate(); err != nil {
		return plan, fmt.Errorf("fleet: capacity template invalid at %d servers: %w", minS, err)
	}
	probe := func(k int) (CapacityPoint, error) {
		c := cfg
		c.Servers = k
		res, err := Run(c)
		if err != nil {
			return CapacityPoint{}, err
		}
		pt := CapacityPoint{
			Servers: k, Cores: k * cfg.CoresPerServer,
			ViolationWindows:     res.ViolationWindows,
			Met:                  res.ViolationWindows <= spec.MaxViolationWindows,
			FleetP99Ms:           res.FleetP99Ms,
			BatchCoreHoursGained: res.BatchCoreHoursGained,
		}
		plan.Probes = append(plan.Probes, pt)
		return pt, nil
	}
	pick := func(pt CapacityPoint) (CapacityPlan, error) {
		plan.Feasible = true
		plan.Servers, plan.Cores = pt.Servers, pt.Cores
		plan.ViolationWindows = pt.ViolationWindows
		return plan, nil
	}

	top, err := probe(maxS)
	if err != nil {
		return plan, err
	}
	if !top.Met {
		return plan, nil // infeasible even at the ceiling
	}
	if minS == maxS {
		return pick(top)
	}
	bottom, err := probe(minS)
	if err != nil {
		return plan, err
	}
	if bottom.Met {
		return pick(bottom)
	}
	// Invariant: lo misses the budget, hi meets it.
	lo, hi, best := minS, maxS, top
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		pt, err := probe(mid)
		if err != nil {
			return plan, err
		}
		if pt.Met {
			hi, best = mid, pt
		} else {
			lo = mid
		}
	}
	return pick(best)
}
