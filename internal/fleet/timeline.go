// Single-core mode-timeline engines: the windowed integration primitives
// the fleet engine is built from. The §VI-D case studies (study.go) are
// the 1-core, hour-grain special case of these.
package fleet

import (
	"fmt"

	"stretch/internal/core"
	"stretch/internal/monitor"
)

// ThresholdTimeline applies the coarse hour-grain rule the paper's cluster
// studies evaluate: engage B-mode whenever the window's load sits below
// engageBelow, crediting the batch thread 1+batchSpeedupB relative to equal
// partitioning. It returns the per-window modes, per-window batch-relative
// throughput, and the engaged-window count.
func ThresholdTimeline(loads []float64, engageBelow, batchSpeedupB float64) ([]core.Mode, []float64, int, error) {
	if engageBelow <= 0 || engageBelow > 1 {
		return nil, nil, 0, fmt.Errorf("fleet: engage threshold %v out of (0,1]", engageBelow)
	}
	if batchSpeedupB < 0 {
		return nil, nil, 0, fmt.Errorf("fleet: negative batch speedup")
	}
	modes := make([]core.Mode, len(loads))
	rel := make([]float64, len(loads))
	engaged := 0
	for w, load := range loads {
		modes[w] = core.ModeBaseline
		rel[w] = 1
		if load < engageBelow {
			modes[w] = core.ModeB
			rel[w] = 1 + batchSpeedupB
			engaged++
		}
	}
	return modes, rel, engaged, nil
}

// ControlledTimeline replays a load timeline through a closed-loop
// monitor.Controller at subWindows monitoring windows per load window,
// feeding it the tail latency tailAt predicts for the window's load and the
// currently engaged mode. It returns each load window's final mode and the
// fraction of its monitoring windows spent in B-mode.
func ControlledTimeline(loads []float64, ctl *monitor.Controller, subWindows int,
	tailAt func(load float64, mode core.Mode) float64) ([]core.Mode, []float64, error) {
	if subWindows <= 0 {
		return nil, nil, fmt.Errorf("fleet: need at least one monitoring window per load window")
	}
	if ctl == nil || tailAt == nil {
		return nil, nil, fmt.Errorf("fleet: controlled timeline needs a controller and a tail model")
	}
	modes := make([]core.Mode, len(loads))
	frac := make([]float64, len(loads))
	for w, load := range loads {
		engaged := 0
		for i := 0; i < subWindows; i++ {
			ctl.Observe(monitor.Observation{TailMs: tailAt(load, ctl.Mode())})
			if ctl.Mode() == core.ModeB {
				engaged++
			}
		}
		modes[w] = ctl.Mode()
		frac[w] = float64(engaged) / float64(subWindows)
	}
	return modes, frac, nil
}
