package fleet

import (
	"fmt"
	"reflect"
	"testing"

	"stretch/internal/loadgen"
	"stretch/internal/stats"
	"stretch/internal/workload"
)

// equivConfig is the equivalence suite's base fleet: two clients on
// different services (different targets and calibration-free deltas), a
// diurnal shape so the auto classifier mixes analytic and discrete
// windows, and a drain/restore plus a surge so cores transit sentinel
// states and unsteady windows mid-horizon — the transitions that fork and
// re-merge controller-equivalence classes.
func equivConfig() Config {
	return Config{
		Servers: 3, CoresPerServer: 4,
		Traffic: loadgen.Traffic{
			Windows: 10, WindowSec: 300,
			Clients: []loadgen.Client{
				{
					Name: "search", Service: workload.WebSearch, Fraction: 0.5, SLO: loadgen.SLOStrict,
					Spec: loadgen.Spec{Shape: loadgen.Diurnal{
						HourLoad: loadgen.WebSearchDay(), PeakRPS: 600 * 6, WindowsPerDay: 10,
					}, Poisson: true},
				},
				{
					Name: "kv", Service: workload.DataServing, Fraction: 0.5,
					Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 1000 * 6}, Poisson: true},
				},
			},
		},
		Scenario: loadgen.Scenario{Events: []loadgen.Event{
			{Kind: loadgen.EventDrain, Window: 3, Server: 1},
			{Kind: loadgen.EventRestore, Window: 6, Server: 1},
			{Kind: loadgen.EventSurge, Window: 5, Until: 7, Client: "kv", Factor: 1.4},
		}},
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 150, Seed: 7,
	}
}

// TestCohortEquivalence is the cohort path's contract: for every policy ×
// engine × estimator, the coalesced run must DeepEqual the reference
// per-core run — full Results, every float bit — at every worker count.
// The -race CI job runs this, putting the shared solve cache, the
// persistent pool and the phase-two class advances under the detector.
func TestCohortEquivalence(t *testing.T) {
	policies := []Policy{PolicyStatic, PolicyProportional, PolicyP2C, PolicyFeedback}
	engines := []Engine{EngineAuto, EngineFluid}
	estimators := []stats.TailEstimator{stats.EstimatorHistogram, stats.EstimatorExact}
	for _, pol := range policies {
		for _, eng := range engines {
			for _, est := range estimators {
				t.Run(fmt.Sprintf("%v/%v/%v", pol, eng, est), func(t *testing.T) {
					cfg := equivConfig()
					cfg.Scheduler = SchedulerConfig{Policy: pol}
					cfg.Engine = eng
					cfg.TailEstimator = est
					cfg.Workers = 1
					cfg.noCoalesce = true
					ref, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if ref.CohortCoreWindows == 0 {
						t.Fatal("no coalescible core-windows; the equivalence check is vacuous")
					}
					for _, workers := range []int{1, 5, 16} {
						ccfg := cfg
						ccfg.Workers = workers
						ccfg.noCoalesce = false
						got, err := Run(ccfg)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(ref, got) {
							t.Fatalf("coalesced run (%d workers) diverged from per-core reference", workers)
						}
					}
				})
			}
		}
	}
}

// TestCohortEquivalenceAutoscale drives park/unpark transitions (plus a
// scenario drain) under the util autoscaler: parked cores leave their
// equivalence classes and return as cold starts, the class-split path the
// plain suite cannot reach. Both estimators, both engines, three worker
// counts.
func TestCohortEquivalenceAutoscale(t *testing.T) {
	for _, eng := range []Engine{EngineAuto, EngineFluid} {
		for _, est := range []stats.TailEstimator{stats.EstimatorHistogram, stats.EstimatorExact} {
			t.Run(fmt.Sprintf("%v/%v", eng, est), func(t *testing.T) {
				cfg := equivConfig()
				cfg.Scheduler = SchedulerConfig{Policy: PolicyProportional, NoMinCores: true}
				cfg.Engine = eng
				cfg.TailEstimator = est
				cfg.Autoscale = AutoscaleConfig{
					Policy: AutoscaleUtil, MinServers: 1,
					Custom: windowScale(func(w int) int {
						switch {
						case w >= 2 && w < 5: // park two servers mid-horizon
							return 1
						default:
							return 3
						}
					}),
				}
				cfg.Workers = 1
				cfg.noCoalesce = true
				ref, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if ref.ParkedCoreWindows == 0 {
					t.Fatal("autoscaler parked nothing; the split scenario is vacuous")
				}
				for _, workers := range []int{1, 5, 16} {
					ccfg := cfg
					ccfg.Workers = workers
					ccfg.noCoalesce = false
					got, err := Run(ccfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ref, got) {
						t.Fatalf("coalesced autoscale run (%d workers) diverged from reference", workers)
					}
				}
			})
		}
	}
}

// TestCohortDiscreteEngineUnaffected: the discrete engine has no steady
// spans to coalesce and must keep running the reference path — reporting
// no cohort or analytic core-windows — whatever the flag says.
func TestCohortDiscreteEngineUnaffected(t *testing.T) {
	cfg := equivConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CohortCoreWindows != 0 || res.AnalyticCoreWindows != 0 || res.AnalyticSolves != 0 {
		t.Fatalf("discrete engine reported cohort=%d analytic=%d solves=%d",
			res.CohortCoreWindows, res.AnalyticCoreWindows, res.AnalyticSolves)
	}
}

// TestCohortSolveCounter: AnalyticSolves counts distinct solved keys —
// strictly positive whenever analytic windows were answered, no larger
// than the analytic core-window count, and identical across paths (the
// DeepEqual suites above already pin the latter; this pins the bounds).
func TestCohortSolveCounter(t *testing.T) {
	cfg := equivConfig()
	cfg.Engine = EngineAuto
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalyticCoreWindows == 0 {
		t.Fatal("auto run answered nothing analytically")
	}
	if res.AnalyticSolves <= 0 || res.AnalyticSolves > res.AnalyticCoreWindows {
		t.Fatalf("AnalyticSolves = %d with %d analytic core-windows",
			res.AnalyticSolves, res.AnalyticCoreWindows)
	}
	if res.CohortCoreWindows < res.AnalyticCoreWindows {
		t.Fatalf("CohortCoreWindows %d < AnalyticCoreWindows %d (zero-rate windows only add)",
			res.CohortCoreWindows, res.AnalyticCoreWindows)
	}
}
