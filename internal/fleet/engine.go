// Engine selection: the fluid fast path. A steady core-window — stationary
// arrival rate, settled controller mode, no migration cold-start, no burst
// or surge turbulence — is fully described by its queueing equilibrium, so
// the engine can answer it with queueing.AnalyticTail instead of simulating
// hundreds of discrete requests. At fleet scale almost every core-window is
// steady (a diurnal fleet spends its life cruising between rate plateaus),
// which is what turns a 1M-core × 24h day from hours of event simulation
// into seconds of closed-form evaluation plus a residue of genuinely
// transitional windows on the discrete path.
package fleet

import (
	"fmt"
	"math"

	"stretch/internal/queueing"
)

// Engine selects how per-core window tails are computed.
type Engine int

// Engines.
const (
	// EngineDiscrete runs every core-window through the event-level
	// queueing simulator — the default, byte-identical to all results
	// predating the engine selector.
	EngineDiscrete Engine = iota
	// EngineFluid forces the analytic solver wherever it is sound
	// (utilization under the analytic ceiling, service within the
	// solver's structural caps) and falls back to the discrete simulator
	// only where it is not.
	EngineFluid
	// EngineAuto classifies each (core, window): steady windows take the
	// analytic fast path, transitional windows — mode switch, migration
	// cold-start, burst or surge turbulence, utilization above the guard
	// band — keep full discrete fidelity.
	EngineAuto
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineDiscrete:
		return "discrete"
	case EngineFluid:
		return "fluid"
	case EngineAuto:
		return "auto"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Validate rejects unknown engine values.
func (e Engine) Validate() error {
	switch e {
	case EngineDiscrete, EngineFluid, EngineAuto:
		return nil
	}
	return fmt.Errorf("fleet: unknown engine %d", int(e))
}

// ParseEngine resolves an engine name (discrete|fluid|auto).
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "discrete":
		return EngineDiscrete, nil
	case "fluid":
		return EngineFluid, nil
	case "auto":
		return EngineAuto, nil
	}
	return 0, fmt.Errorf("fleet: unknown engine %q (discrete|fluid|auto)", s)
}

// autoSteadyMaxUtil is the auto engine's guard band: at or below this
// utilization a steady window takes the analytic path. It sits below
// queueing.AnalyticMaxUtilization because auto promises discrete-grade
// answers, and the solver's calibration envelope (documented by
// queueing.TestAnalyticMatchesDiscrete) is validated through 0.85.
const autoSteadyMaxUtil = 0.85

// analyticCacheLimit bounds the run's shared solve cache; a fleet day
// offers only as many distinct (client, rate, perf) triples as the traffic
// has rate plateaus, so the limit exists purely as a safety valve against
// pathological per-core rate diversity (e.g. p2c routing). Eviction is
// per-stripe and generational (queueing.TailCache), not a wholesale clear:
// hot plateau entries that keep being hit survive any churn of cold keys.
const analyticCacheLimit = 1 << 16

// analyticTail answers one steady core-window from the run's shared solve
// cache, solving on a miss. Keys carry the exact bit patterns of rate and
// perf, and the solver is a pure function: equal bits give equal results
// on every worker — which is what keeps auto runs bit-identical across
// worker counts even though the cache is shared. The sampleEquiv passed to
// the solver makes the analytic quantile reproduce the discrete window's
// finite-sample rank convention rather than improve on it. A solver
// refusal (utilization raced past the ceiling between classification and
// solve, structural caps) is cached as NaN and reported as !ok: the caller
// falls back to the discrete path. First insertions of successful solves
// feed Result.AnalyticSolves.
func (e *engine) analyticTail(ci int16, rate, perf float64) (float64, bool) {
	k := queueing.TailKey{Service: int32(ci), Rate: math.Float64bits(rate), Perf: math.Float64bits(perf)}
	if v, hit := e.solveCache.Lookup(k); hit {
		return v, !math.IsNaN(v)
	}
	t, err := queueing.AnalyticTail(e.qcfgs[ci], rate, perf, e.windowReq)
	if err != nil {
		e.solveCache.Insert(k, math.NaN())
		return 0, false
	}
	if e.solveCache.Insert(k, t) {
		e.solves.Add(1)
	}
	return t, true
}
