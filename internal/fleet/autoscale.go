// Autoscaling: servers join and leave the fleet between windows. The
// scheduler (scheduler.go) re-divides a *fixed* set of in-service cores;
// the autoscaler decides how many servers are in service at all, turning
// the simulator from "what happens with N cores" into the capacity
// question "how many cores do I need" (plan.go answers it offline).
//
// The autoscaler is a stepped interface like the scheduler's allocator:
// once per window, before the scheduler assigns cores, it is fed the
// previous window's measured WindowObservation plus the current window's
// fleet state and returns the number of servers that should be up. The
// elastic stepper owns the mechanics: it parks surplus servers (their
// cores leave service like a drain, keeping their owner) and unparks them
// on scale-out. A joining server's cores are cold — they pay the
// scheduler's migration penalty for their first active window (reduced LS
// performance, no B-mode batch bonus), the configured warm-up cost.
// Scenario drains compose: a scenario-drained server is never eligible,
// and the autoscaler sees only the remaining availability, so a mid-day
// failure can trigger a compensating scale-out.
//
// Decisions draw no randomness — they are pure functions of the
// seed-derived demand timelines and deterministic measurements — so
// autoscaled runs stay bit-identical across worker counts.
package fleet

import "fmt"

// AutoscalePolicy selects the built-in autoscaling policy.
type AutoscalePolicy int

// Autoscale policies.
const (
	// AutoscaleOff keeps every server in service: the fleet size is fixed
	// and results are byte-identical to pre-autoscaling runs.
	AutoscaleOff AutoscalePolicy = iota
	// AutoscaleUtil tracks offered load: it keeps fleet utilisation —
	// demand in cores' worth (offered load normalised by per-core
	// saturation rate) over in-service cores — inside the
	// [TargetLow, TargetHigh] band, stepping toward the mid-band size
	// when it drifts out. Window 0 sizes the fleet to the first window's
	// demand directly.
	AutoscaleUtil
	// AutoscaleViolation tracks measured QoS: it scales out when the
	// previous window recorded at least ViolationOut violating
	// core-windows, and scales in only after SlackWindows consecutive
	// windows with no violations and utilisation below TargetLow. It
	// starts with every available server up.
	AutoscaleViolation
)

// String names the policy.
func (p AutoscalePolicy) String() string {
	switch p {
	case AutoscaleOff:
		return "off"
	case AutoscaleUtil:
		return "util"
	case AutoscaleViolation:
		return "violation"
	default:
		return fmt.Sprintf("AutoscalePolicy(%d)", int(p))
	}
}

// ParseAutoscalePolicy resolves a policy name (off|util|violation).
func ParseAutoscalePolicy(s string) (AutoscalePolicy, error) {
	switch s {
	case "off", "":
		return AutoscaleOff, nil
	case "util":
		return AutoscaleUtil, nil
	case "violation":
		return AutoscaleViolation, nil
	default:
		return 0, fmt.Errorf("fleet: unknown autoscale policy %q (off|util|violation)", s)
	}
}

// ScaleState is the current window's fleet state handed to an Autoscaler
// alongside the previous window's observation.
type ScaleState struct {
	// AvailableServers is how many servers the scenario leaves eligible
	// this window (scenario-drained servers are never available).
	AvailableServers int
	// UpServers is how many of those are currently in service (not
	// parked by earlier autoscale decisions).
	UpServers int
	// CoresPerServer echoes the fleet shape.
	CoresPerServer int
	// DemandCores is the current window's fleet-wide offered load in
	// cores' worth: each client's offered rate divided by its service's
	// SLO-weighted per-core saturation rate, summed. DemandCores /
	// (UpServers × CoresPerServer) is the fleet utilisation the util
	// policy regulates.
	DemandCores float64
}

// Autoscaler is the stepped scaling interface the elastic stepper drives:
// DesiredServers is called once per window, before cores are assigned,
// with the previous window's measured observation (nil at window 0) and
// the current window's state; it returns how many servers should be in
// service. The stepper clamps the answer to [MinServers,
// AvailableServers] and parks/unparks deterministically (highest-index
// servers park first, lowest-index unpark first).
type Autoscaler interface {
	DesiredServers(w int, obs *WindowObservation, st ScaleState) int
}

// AutoscaleConfig tunes the autoscaling layer. The zero value disables it.
type AutoscaleConfig struct {
	// Policy selects the built-in policy (default off).
	Policy AutoscalePolicy
	// MinServers is the floor of in-service servers (default 1); the
	// ceiling is Config.Servers, the physical fleet.
	MinServers int
	// TargetLow and TargetHigh bound the utilisation band (defaults
	// 0.45 and 0.75). AutoscaleUtil scales to stay inside it;
	// AutoscaleViolation uses TargetLow as its scale-in slack threshold.
	TargetLow, TargetHigh float64
	// StepServers caps how many servers one decision moves (default 1).
	StepServers int
	// Cooldown is the number of windows a decision blocks the next one
	// (default 4), damping oscillation around the band edges.
	Cooldown int
	// ViolationOut is the violating-core-window count that triggers an
	// AutoscaleViolation scale-out (default 1).
	ViolationOut int
	// SlackWindows is how many consecutive no-violation, low-utilisation
	// windows AutoscaleViolation requires before scaling in (default 8).
	SlackWindows int
	// Custom overrides the built-in policies with a caller-supplied
	// Autoscaler; Policy must still be non-off so the engine knows
	// autoscaling is active.
	Custom Autoscaler
}

// Autoscale defaults used when the corresponding field is zero.
const (
	defaultAutoMinServers   = 1
	defaultAutoTargetLow    = 0.45
	defaultAutoTargetHigh   = 0.75
	defaultAutoStepServers  = 1
	defaultAutoCooldown     = 4
	defaultAutoViolationOut = 1
	defaultAutoSlackWindows = 8
)

// withDefaults fills zero fields.
func (a AutoscaleConfig) withDefaults() AutoscaleConfig {
	if a.MinServers == 0 {
		a.MinServers = defaultAutoMinServers
	}
	if a.TargetLow == 0 {
		a.TargetLow = defaultAutoTargetLow
	}
	if a.TargetHigh == 0 {
		a.TargetHigh = defaultAutoTargetHigh
	}
	if a.StepServers == 0 {
		a.StepServers = defaultAutoStepServers
	}
	if a.Cooldown == 0 {
		a.Cooldown = defaultAutoCooldown
	}
	if a.ViolationOut == 0 {
		a.ViolationOut = defaultAutoViolationOut
	}
	if a.SlackWindows == 0 {
		a.SlackWindows = defaultAutoSlackWindows
	}
	return a
}

// Validate rejects unusable tunings against a concrete fleet. Zero fields
// are legal (defaulted).
func (a AutoscaleConfig) Validate(servers int) error {
	switch {
	case a.Policy < AutoscaleOff || a.Policy > AutoscaleViolation:
		return fmt.Errorf("fleet: unknown autoscale policy %d", int(a.Policy))
	case a.Policy == AutoscaleOff:
		if a.Custom != nil {
			return fmt.Errorf("fleet: custom autoscaler needs a non-off policy")
		}
		return nil
	case a.MinServers < 0 || a.MinServers > servers:
		return fmt.Errorf("fleet: autoscale min %d servers outside fleet [0,%d]", a.MinServers, servers)
	case a.TargetLow < 0 || a.TargetHigh < 0 || (a.TargetLow != 0 && a.TargetHigh != 0 && a.TargetLow >= a.TargetHigh):
		return fmt.Errorf("fleet: autoscale utilisation band [%v,%v] invalid", a.TargetLow, a.TargetHigh)
	case a.StepServers < 0 || a.Cooldown < 0 || a.ViolationOut < 0 || a.SlackWindows < 0:
		return fmt.Errorf("fleet: negative autoscale tuning")
	}
	return nil
}

// newAutoscaler builds the Autoscaler for a (defaulted) config; nil when
// autoscaling is off.
func newAutoscaler(a AutoscaleConfig) Autoscaler {
	if a.Policy == AutoscaleOff {
		return nil
	}
	if a.Custom != nil {
		return a.Custom
	}
	switch a.Policy {
	case AutoscaleUtil:
		return &utilAuto{cfg: a}
	case AutoscaleViolation:
		return &violationAuto{cfg: a}
	}
	return nil
}

// utilAuto implements AutoscaleUtil: hold utilisation inside the band by
// stepping toward the mid-band fleet size whenever it drifts out.
type utilAuto struct {
	cfg  AutoscaleConfig
	cool int
}

// needServers is the fleet size that puts utilisation at the middle of
// the band for the given demand (at least one server for any demand).
func (a *utilAuto) needServers(st ScaleState) int {
	target := (a.cfg.TargetLow + a.cfg.TargetHigh) / 2
	perServer := target * float64(st.CoresPerServer)
	n := int(st.DemandCores/perServer) + 1
	if st.DemandCores == 0 {
		n = 1
	}
	return n
}

func (a *utilAuto) DesiredServers(w int, obs *WindowObservation, st ScaleState) int {
	need := a.needServers(st)
	if w == 0 {
		// Initial sizing: jump straight to the demand-implied size.
		return need
	}
	if a.cool > 0 {
		a.cool--
		return st.UpServers
	}
	capacity := float64(st.UpServers * st.CoresPerServer)
	util := 0.0
	if capacity > 0 {
		util = st.DemandCores / capacity
	}
	switch {
	case util > a.cfg.TargetHigh && need > st.UpServers:
		a.cool = a.cfg.Cooldown
		return st.UpServers + min(a.cfg.StepServers, need-st.UpServers)
	case util < a.cfg.TargetLow && need < st.UpServers:
		a.cool = a.cfg.Cooldown
		return st.UpServers - min(a.cfg.StepServers, st.UpServers-need)
	}
	return st.UpServers
}

// violationAuto implements AutoscaleViolation: scale out on measured
// QoS-violation core-windows, scale in only on sustained slack.
type violationAuto struct {
	cfg      AutoscaleConfig
	slackRun int
	cool     int
}

func (a *violationAuto) DesiredServers(w int, obs *WindowObservation, st ScaleState) int {
	if obs == nil {
		// No measurement yet: start with everything the scenario allows.
		return st.AvailableServers
	}
	if a.cool > 0 {
		a.cool--
	}
	if obs.Violations >= a.cfg.ViolationOut {
		a.slackRun = 0
		if a.cool == 0 {
			a.cool = a.cfg.Cooldown
			return st.UpServers + a.cfg.StepServers
		}
		return st.UpServers
	}
	capacity := float64(st.UpServers * st.CoresPerServer)
	if capacity > 0 && st.DemandCores/capacity < a.cfg.TargetLow {
		a.slackRun++
	} else {
		a.slackRun = 0
	}
	if a.slackRun >= a.cfg.SlackWindows && a.cool == 0 {
		a.slackRun = 0
		a.cool = a.cfg.Cooldown
		return st.UpServers - a.cfg.StepServers
	}
	return st.UpServers
}
