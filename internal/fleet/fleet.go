// Package fleet simulates a datacenter-scale Stretch deployment: N servers
// × SMT cores, each core running a queueing-backed latency-sensitive
// service colocated with a batch thread and governed by its own §IV-C
// monitor.Controller. A multi-client traffic spec (internal/loadgen)
// drives the per-window arrival rates.
//
// Execution is window-major and closed-loop: the engine advances the whole
// fleet one monitoring window at a time. Within a window, cores shard
// across a goroutine worker pool — every core draws from its own
// (seed, core, window)-derived rng stream, so aggregate results are
// bit-identical for identical seeds regardless of worker count — and a
// barrier then collects the window's measured tails, modes, violations and
// controller slack into a WindowObservation. That observation is handed to
// the scheduler's Step for the *next* window, which is what lets
// latency-aware policies (PolicyFeedback) react to measured violations the
// way §IV-C's controller reacts to measured slack; the open-loop policies
// ignore it and reproduce their precomputed schedules exactly. Per-core
// controller state survives across windows (a core keeps its monitor until
// the scheduler hands it to a different client), and each worker reuses
// one queueing.Simulator so the hot loop pays no per-window allocations.
//
// Per window, each core simulates its share of its client's arrival rate
// through the request-level queueing model at the perf factor its current
// mode implies, feeds the measured tail to its controller, and credits the
// colocated batch thread relative to equal partitioning (B-mode gains,
// Q-mode pays). The per-mode deltas come from one of two sources, resolved
// once per client before the first window: a calibration table
// (Config.Calibration) derived from the cycle-level core model, which makes
// both the LS slowdown and the batch credit specific to the client's
// (service, batch-pairing) colocation in every mode — or, when no table is
// supplied, the legacy uniform scalars (BatchSpeedupB, LSSlowdownB,
// QModeBatchCost) applied identically to every client, which reproduces
// pre-calibration results byte-identically. Either way the per-window hot
// path only indexes a per-client array; no table lookup or map access sits
// on the per-request path. Results aggregate into per-client and fleet-wide tails
// (p99/p99.9 over core-window tails), QoS-violation window counts,
// engaged-core-hours, batch core-hours gained versus an equal-partitioning
// deployment, and the per-window fleet series in Result.WindowTrace.
//
// Tail quantiles are estimated by Config.TailEstimator. The default is
// the mergeable log-bucketed histogram (stats.Histogram): each worker
// records its cores' window tails into per-client shards, and the barrier
// merges shards into per-client window, per-client run and fleet-wide
// histograms — integer bucket counts merge associatively, so the
// nondeterministic core-to-worker mapping cannot perturb any aggregate,
// and memory stays constant in the request count (the enabler for
// 10k+-core runs). The exact estimator retains every core-window tail in
// sorted samples instead; it reproduces the pre-histogram golden files
// byte-identically and serves as the accuracy reference.
//
// Which client a core serves each window — and at what rate — is decided
// by the scheduler (see scheduler.go): the static Fraction split, elastic
// proportional reallocation, power-of-two-choices routing, or closed-loop
// feedback reallocation (feedback.go), optionally under a loadgen.Scenario
// of server drains, traffic surges and heterogeneous server generations.
package fleet

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync/atomic"

	"stretch/internal/calib"
	"stretch/internal/core"
	"stretch/internal/loadgen"
	"stretch/internal/monitor"
	"stretch/internal/queueing"
	"stretch/internal/rng"
	"stretch/internal/stats"
	"stretch/internal/workload"
)

// Config parameterises a fleet run.
type Config struct {
	// Servers and CoresPerServer size the fleet (Servers × CoresPerServer
	// SMT cores total).
	Servers, CoresPerServer int

	// Traffic is the multi-client arrival spec; each client's fleet-wide
	// timeline is split evenly across the cores its Fraction buys.
	Traffic loadgen.Traffic

	// Calibration supplies per-(service, batch, mode) performance deltas
	// derived from the cycle-level core model: each client's B-/Q-mode LS
	// slowdown and batch credit come from its (Service, Batch) pair's
	// calibrated cells instead of the uniform scalars below. The table
	// must cover every client's pairing (empty Client.Batch resolves to
	// DefaultBatchPairing). Nil falls back to the uniform scalars and
	// reproduces pre-calibration results byte-identically.
	Calibration *calib.Table

	// BatchSpeedupB and LSSlowdownB are the uniform measured B-mode deltas
	// versus equal partitioning (e.g. from the 56-136 skew grid), applied
	// to every client alike. Ignored when Calibration is set.
	BatchSpeedupB, LSSlowdownB float64
	// QModeBatchCost is the uniform batch throughput lost while Q-mode is
	// engaged (default 0.15 when zero). Ignored when Calibration is set.
	QModeBatchCost float64

	// WindowRequests is the per-core request budget sampling each window's
	// steady state (default 800 when zero).
	WindowRequests int

	// Workers caps the goroutine pool (default GOMAXPROCS when zero).
	// Results are independent of the worker count.
	Workers int

	// Seed is the experiment seed; identical seeds reproduce identical
	// aggregate metrics.
	Seed uint64

	// Monitor builds each core's controller tuning from its client's
	// (SLO-scaled) tail target; nil uses monitor.DefaultConfig.
	Monitor func(targetMs float64) monitor.Config

	// TailEstimator selects how tail quantiles are estimated, at every
	// level: per-request latencies inside each core-window simulation,
	// per-client window tails at the barrier, and the per-client and
	// fleet-wide aggregates. stats.EstimatorHistogram (the default —
	// stats.EstimatorDefault resolves to it here) records into fixed
	// log-bucketed histograms that merge across worker shards: O(1) per
	// observation, memory independent of the request count, quantile error
	// bounded by the bucket resolution. stats.EstimatorExact retains every
	// observation and sorts per query — exact, but memory and tail-query
	// cost grow linearly with requests; use it for small runs and accuracy
	// comparisons. Either way results are bit-identical across worker
	// counts for identical seeds.
	TailEstimator stats.TailEstimator

	// Engine selects how per-core window tails are computed: the discrete
	// event-level simulator (the zero value — byte-identical to all
	// pre-engine results), the analytic fluid fast path wherever sound, or
	// the per-window auto classifier that keeps transitional windows on
	// the discrete path. See engine.go.
	Engine Engine

	// Scheduler selects the core-allocation and load-routing policy; the
	// zero value is the static Fraction split.
	Scheduler SchedulerConfig

	// DecisionTrace records every window's scheduling decision into
	// Result.DecisionTrace (decision.go): TraceOff (the zero value)
	// records nothing and costs nothing, TraceSummary captures per-client
	// deltas and driving signals, TraceFull additionally snapshots the
	// per-core assignment.
	DecisionTrace TraceLevel

	// CounterfactualK, when positive, evaluates up to K alternative
	// single-core-move assignments at every traced window and records the
	// chosen assignment's regret in each DecisionRecord. Requires
	// DecisionTrace to be on.
	CounterfactualK int

	// Autoscale lets servers join/leave the fleet between windows under a
	// scaling policy (autoscale.go); Servers becomes the physical ceiling
	// of a fleet that parks and unparks whole servers. The zero value
	// keeps every server in service and reproduces pre-autoscaling
	// results byte-identically.
	Autoscale AutoscaleConfig

	// Scenario injects fleet events — server drains/restores, traffic
	// surges, per-server performance generations. The zero value is an
	// uneventful run.
	Scenario loadgen.Scenario

	// noCoalesce forces the reference per-core execution path under the
	// fluid/auto engines, where the cohort-coalesced path (cohort.go) is
	// otherwise the default. Unexported: the equivalence suite sets it
	// directly, external callers reach it through the STRETCH_NO_COALESCE
	// environment variable. The two paths produce DeepEqual Results by
	// contract; the discrete engine always runs the reference path.
	noCoalesce bool
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Servers <= 0 || c.CoresPerServer <= 0 {
		return fmt.Errorf("fleet: need a positive fleet size (%d servers × %d cores)", c.Servers, c.CoresPerServer)
	}
	if err := c.Traffic.Validate(); err != nil {
		return err
	}
	if len(c.Traffic.Clients) > c.Servers*c.CoresPerServer {
		return fmt.Errorf("fleet: %d clients need at least as many cores (have %d)",
			len(c.Traffic.Clients), c.Servers*c.CoresPerServer)
	}
	if c.BatchSpeedupB < 0 {
		return fmt.Errorf("fleet: negative B-mode batch speedup")
	}
	if c.LSSlowdownB < 0 || c.LSSlowdownB >= 1 {
		return fmt.Errorf("fleet: B-mode LS slowdown %v out of [0,1)", c.LSSlowdownB)
	}
	if c.QModeBatchCost < 0 || c.QModeBatchCost >= 1 {
		return fmt.Errorf("fleet: Q-mode batch cost %v out of [0,1)", c.QModeBatchCost)
	}
	if c.WindowRequests < 0 {
		return fmt.Errorf("fleet: negative window request budget")
	}
	if err := c.TailEstimator.Validate(); err != nil {
		return err
	}
	if err := c.Engine.Validate(); err != nil {
		return err
	}
	batches := workload.BatchProfiles()
	for _, cl := range c.Traffic.Clients {
		if _, ok := workload.Services()[cl.Service]; !ok {
			return fmt.Errorf("fleet: client %q: unknown service %q", cl.Name, cl.Service)
		}
		if cl.Batch != "" {
			if _, ok := batches[cl.Batch]; !ok {
				return fmt.Errorf("fleet: client %q: unknown batch pairing %q", cl.Name, cl.Batch)
			}
		}
		if c.Calibration != nil {
			b := BatchPairing(cl)
			p, ok := c.Calibration.Pair(cl.Service, b)
			if !ok {
				return fmt.Errorf("fleet: client %q: calibration table %.12s… has no %s × %s cell",
					cl.Name, c.Calibration.Hash, cl.Service, b)
			}
			for _, cell := range []calib.Cell{p.B, p.Q} {
				if !(cell.LSSlowdown < 1) || !(1-cell.LSSlowdown <= queueing.MaxPerfFactor) {
					return fmt.Errorf("fleet: client %q: calibrated LS slowdown %v for %s × %s out of range",
						cl.Name, cell.LSSlowdown, cl.Service, b)
				}
				if !(cell.BatchSpeedup > -1) {
					return fmt.Errorf("fleet: client %q: calibrated batch speedup %v for %s × %s out of range",
						cl.Name, cell.BatchSpeedup, cl.Service, b)
				}
			}
		}
	}
	if err := c.Scheduler.Validate(); err != nil {
		return err
	}
	if err := c.DecisionTrace.Validate(); err != nil {
		return err
	}
	if c.CounterfactualK < 0 {
		return fmt.Errorf("fleet: negative counterfactual k")
	}
	if c.CounterfactualK > 0 && c.DecisionTrace == TraceOff {
		return fmt.Errorf("fleet: counterfactual evaluation requires a decision-trace level")
	}
	if err := c.Autoscale.Validate(c.Servers); err != nil {
		return err
	}
	return c.Scenario.Validate(c.Traffic.Windows, c.Servers, c.Traffic.Clients)
}

// DefaultBatchPairing is the batch workload assumed to colocate with a
// client whose Batch field is empty: the paper's high-MLP exemplar
// (Figs. 6-7), which is also the pairing the legacy uniform scalars were
// historically measured on.
const DefaultBatchPairing = workload.Zeusmp

// BatchPairing resolves a client's colocated batch workload: its Batch
// field, or DefaultBatchPairing when empty. This is the single owner of
// the empty-Batch rule; callers building calibration inputs for a traffic
// spec (e.g. the CLI cache path) must use it rather than re-deriving it.
func BatchPairing(cl loadgen.Client) string {
	if cl.Batch != "" {
		return cl.Batch
	}
	return DefaultBatchPairing
}

// ClientMetrics aggregates one traffic client's cores.
type ClientMetrics struct {
	Client  string
	Service string
	// Batch is the client's resolved colocated batch workload.
	Batch string
	SLO   loadgen.SLOClass
	// Cores is the client's window-0 allocation; under the elastic
	// policies the per-window allocation drifts with demand, tracked by
	// CoreWindows.
	Cores int
	// TargetMs is the SLO-scaled tail target its controllers enforce.
	TargetMs float64
	// P99Ms and P999Ms are quantiles over all core-window tail readings.
	// A client whose elastic allocation reached zero core-windows has no
	// readings and reports zeros (never NaN).
	P99Ms, P999Ms float64
	// ViolationWindows counts core-windows whose tail exceeded the target.
	ViolationWindows int
	// CoreWindows is the total core-windows that served this client.
	CoreWindows int
	// EngagedCoreHours is the B-mode time integrated over the client's
	// cores.
	EngagedCoreHours float64
	// BatchCoreHoursGained integrates (batchRel − 1) over the client's
	// serving core-windows: the extra batch work this client's cores
	// produced versus equal partitioning, in the client's own calibrated
	// speedup units (or the uniform scalars when no table is set). The
	// per-client values sum to Result.BatchCoreHoursGained.
	BatchCoreHoursGained float64
}

// ClientWindowObs aggregates one client's serving cores within a single
// completed window.
type ClientWindowObs struct {
	// Cores is how many cores served the client this window.
	Cores int
	// OfferedRPS is the total arrival rate routed to the client.
	OfferedRPS float64
	// MeanTailMs, MaxTailMs and TailP99Ms summarise the client's per-core
	// window tails.
	MeanTailMs, MaxTailMs, TailP99Ms float64
	// MeanSlack is the mean headroom below the tail target reported by the
	// client's per-core monitors, as a fraction of the target (negative
	// means violating).
	MeanSlack float64
	// Violations counts the client's violating core-windows this window.
	Violations int
	// BCores counts the client's cores that ran the window in B-mode.
	BCores int
	// BatchRel is the mean batch throughput of the client's serving cores
	// this window, relative to equal partitioning — in the client's
	// calibrated speedup units when the run is calibrated. 1 means the
	// equal-partitioning baseline; >1 means B-mode credit is flowing.
	BatchRel float64
}

// WindowObservation is the measured record of one completed window: the
// feedback the engine hands the scheduler's Step at the next window, and
// the per-window entry of Result.WindowTrace.
type WindowObservation struct {
	// Window is the window index.
	Window int
	// Clients holds per-client window aggregates in traffic order.
	Clients []ClientWindowObs
	// ServingCores, DrainedCores, ParkedCores and IdleCores partition the
	// fleet: serving a client, scenario-drained, autoscaler-parked, or in
	// service but unassigned.
	ServingCores, DrainedCores, ParkedCores, IdleCores int
	// Violations counts the window's violating core-windows fleet-wide.
	Violations int
	// BCores counts cores that ran the window in B-mode.
	BCores int
	// Migrations counts cores that paid the migration penalty.
	Migrations int
	// AnalyticCores counts cores whose window was answered by the
	// analytic fast path (always zero under the discrete engine).
	AnalyticCores int
	// CohortCores counts cores whose window the cohort-coalesced path
	// answers without per-core work — analytically solved or zero-rate
	// windows. Computed from the same shared classification state on both
	// execution paths (so a reference-path run reports what the coalesced
	// run would coalesce, keeping the paths DeepEqual); always zero under
	// the discrete engine.
	CohortCores int
}

// Result is the fleet-wide aggregation.
type Result struct {
	// Cores and Windows echo the simulated extent.
	Cores, Windows int
	WindowSec      float64

	// Policy echoes the scheduler policy the run used.
	Policy Policy
	// Autoscale echoes the autoscaling policy the run used.
	Autoscale AutoscalePolicy
	// TailEstimator echoes the resolved tail estimator the run used.
	TailEstimator stats.TailEstimator
	// Engine echoes the engine the run used; AnalyticCoreWindows counts
	// the core-windows it answered analytically (zero under discrete —
	// and the fraction of the horizon the fluid fast path absorbed
	// otherwise, which is what the speedup is proportional to).
	Engine              Engine
	AnalyticCoreWindows int
	// AnalyticSolves counts distinct successful analytic solves — first
	// insertions into the shared solve cache. The gap between
	// AnalyticCoreWindows and AnalyticSolves is the work the solve cache
	// (and, per window, the cohort coalescing) absorbed. Deterministic
	// across worker counts and execution paths as long as the cache is not
	// thrashing (re-solving an evicted key recounts it).
	AnalyticSolves int
	// CohortCoreWindows sums WindowObservation.CohortCores over the
	// horizon: core-windows the cohort-coalesced path answers without
	// per-core simulation (zero under the discrete engine; see
	// WindowObservation.CohortCores for the both-paths contract).
	CohortCoreWindows int
	// CalibrationHash is the content hash of the calibration table the run
	// used; empty means the uniform-scalar fallback.
	CalibrationHash string

	// Clients holds per-client aggregates in traffic order.
	Clients []ClientMetrics

	// FleetP99Ms and FleetP999Ms are fleet-wide quantiles over every
	// serving core-window tail, across all clients — the datacenter-level
	// tail report that per-client metrics cannot express.
	FleetP99Ms, FleetP999Ms float64

	// TotalCoreHours is Cores × horizon.
	TotalCoreHours float64
	// EngagedCoreHours is the fleet-wide B-mode time.
	EngagedCoreHours float64
	// BatchCoreHoursGained integrates (batchRel − 1) over every serving
	// core-window: the extra batch work versus the same schedule run under
	// equal partitioning, in core-hours. Idle and drained core-windows
	// contribute nothing to either side.
	BatchCoreHoursGained float64
	// BatchGain is BatchCoreHoursGained normalised by TotalCoreHours: the
	// fleet-wide batch throughput improvement over equal partitioning.
	BatchGain float64
	// ViolationWindows counts QoS-violating core-windows fleet-wide.
	ViolationWindows int
	// Switches sums all controllers' mode changes.
	Switches uint64

	// Migrations counts core-windows that paid the migration penalty
	// (core handed to a different client than the previous window).
	Migrations int
	// DrainedCoreWindows, ParkedCoreWindows and IdleCoreWindows count
	// scenario-drained, autoscaler-parked and unassigned core-windows in
	// the schedule.
	DrainedCoreWindows int
	ParkedCoreWindows  int
	IdleCoreWindows    int

	// FairnessIndex is the Jain fairness index over per-client SLO
	// fulfilment — each client's non-violating fraction of its serving
	// core-windows (zero for a client squeezed to none) — 1 when every
	// client is equally well served, approaching 1/n when one client
	// absorbs all the violations.
	FairnessIndex float64

	// WindowTrace is the per-window fleet series: one measured observation
	// per window, in order — the same records the closed-loop scheduler
	// consumed online.
	WindowTrace []WindowObservation

	// DecisionTrace holds one DecisionRecord per window when
	// Config.DecisionTrace is on (nil otherwise): the scheduler-side
	// account of the same horizon WindowTrace measures.
	DecisionTrace []DecisionRecord
}

// coreState is one core's persistent execution state: its controller (and
// the client it was built for) survives across windows instead of being
// rebuilt per core-walk; it resets only when the scheduler hands the core
// to a different client — a handed-over core is a cold start. The
// controller is held by value and reinitialised in place, so a fleet of N
// cores pays no per-controller heap allocations.
type coreState struct {
	ctl      monitor.Controller
	hasCtl   bool  // ctl has been initialised at least once
	prev     int16 // client the controller was built for (-4: none yet)
	lastMode int8  // mode of the previous served window (-1: cold start)
	switches uint64
}

// engine is one run's window-major execution state. Per-core-per-window
// records are kept flat (core-major: index core×windows+window) so the
// final aggregation can replay the exact accumulation order of the former
// core-major engine, keeping aggregate floats bit-identical.
type engine struct {
	nCores, windows, windowReq int
	migPenalty                 float64
	monCfg                     func(float64) monitor.Config
	engineSel                  Engine

	// lsSlowMode and batchRelMode are the per-client per-mode performance
	// deltas, indexed [client][core.Mode]: the LS thread's slowdown
	// (applied to the perf factor) and the batch thread's throughput
	// relative to equal partitioning. Resolved once before the first
	// window — from the calibration table or the uniform scalars — so the
	// hot loop pays one array index per core-window, nothing per request.
	lsSlowMode   [][3]float64
	batchRelMode [][3]float64

	targets []float64
	qcfgs   []queueing.Config
	perf    []float64
	streams []rng.Stream
	// states carries the reference path's per-core controllers; nil under
	// the cohort-coalesced path, which tracks controllers in equivalence
	// classes instead (classOf/classes below).
	states []coreState

	// solveCache is the lock-striped analytic solve cache shared by every
	// worker and the counterfactual evaluator (the solver is pure, so
	// sharing cannot perturb results — it stops W workers re-solving the
	// same rate plateau W times); solves counts its distinct successful
	// first insertions, surfaced as Result.AnalyticSolves.
	solveCache *queueing.TailCache
	solves     atomic.Int64

	// Cohort-coalesced execution state (cohort.go); allocated only when
	// coalesce is set. classOf maps each core to its controller-
	// equivalence class in classes (−1: none), swBase banks switch counts
	// a core accrued in classes it has left, and freshFor/mergeMap/
	// worklist/retired are per-window scratch for the span walk. Under the
	// histogram estimator cohortShard collects the coalesced AddN deposits
	// for the barrier merge.
	coalesce    bool
	classOf     []int32
	classes     []cohortClass
	freeClass   []int32
	retired     []int32
	swBase      []uint64
	mergeMap    map[mergeKey]int32
	freshFor    []int32
	worklist    []workItem
	cohortShard []*stats.Histogram

	// Counterfactual evaluator state (decision.go), wired by
	// initCounterfactual when Config.CounterfactualK > 0: a dedicated
	// Simulator and rng branch (the evaluator runs single-threaded behind
	// the Step call, so worker count cannot touch it), a per-window
	// (client, count) → tail cache, and the per-client load scratch; its
	// analytic solves share solveCache.
	cfK, cfMinCores int
	cfRng           *rng.Stream
	cfSim           *queueing.Simulator
	cfCache         map[cfKey]float64
	cfLoad          []float64

	// Fluid fast-path classification inputs, resolved once per run:
	// utilCoef[ci] turns a per-core rate into a utilization (util =
	// rate·utilCoef/perf), fluidOK[ci] records whether the client's
	// service is inside the analytic solver's structural caps, and
	// unsteady[ci][w] flags windows with burst or surge turbulence, which
	// auto keeps on the discrete path.
	utilCoef []float64
	fluidOK  []bool
	unsteady [][]bool

	tails    []float64
	batchRel []float64
	modeB    []bool
	analytic []bool
	client   []int16
	errs     []error

	// Exact estimator: winSamples holds one reusable per-client sample for
	// the window observation's tail quantile, filled and drained at each
	// barrier.
	winSamples []*stats.Sample

	// Histogram estimator: each worker records its cores' window tails
	// into its own per-client shard (shards[worker][client]); the barrier
	// merges shards into winHists for the window quantile, then folds them
	// into the per-client runHists and the fleet-wide fleetHist. All share
	// one geometry, and integer bucket counts merge associatively, so the
	// aggregate is bit-identical regardless of how cores land on workers.
	shards    [][]*stats.Histogram
	winHists  []*stats.Histogram
	runHists  []*stats.Histogram
	fleetHist *stats.Histogram
}

// Run simulates the fleet over the traffic horizon.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	nCores := cfg.Servers * cfg.CoresPerServer
	windows := cfg.Traffic.Windows
	windowReq := cfg.WindowRequests
	if windowReq == 0 {
		windowReq = 800
	}
	qCost := cfg.QModeBatchCost
	if qCost == 0 {
		qCost = 0.15
	}
	monCfg := cfg.Monitor
	if monCfg == nil {
		monCfg = monitor.DefaultConfig
	}
	est := cfg.TailEstimator
	if est == stats.EstimatorDefault {
		est = stats.EstimatorHistogram
	}
	sched := cfg.Scheduler.withDefaults()
	auto := cfg.Autoscale.withDefaults()

	timelines, err := cfg.Traffic.Timelines(cfg.Seed)
	if err != nil {
		return Result{}, err
	}

	// Per-client service configs, SLO-scaled targets and per-mode
	// performance deltas. With a calibration table each client gets its
	// own (service, batch) pair's cycle-level-derived cells; without one,
	// every client shares the uniform scalars (and reproduces the
	// pre-calibration arithmetic bit-for-bit).
	n := len(cfg.Traffic.Clients)
	targets := make([]float64, n)
	qcfgs := make([]queueing.Config, n)
	lsSlowMode := make([][3]float64, n)
	batchRelMode := make([][3]float64, n)
	for ci, cl := range cfg.Traffic.Clients {
		svc := workload.Services()[cl.Service]
		targets[ci] = svc.QoSTargetMs * cl.SLO.Scale()
		qcfgs[ci] = queueing.Config{
			Workers: svc.Workers, MeanServiceMs: svc.MeanServiceMs,
			ServiceCV: svc.ServiceCV, BurstProb: svc.BurstProb, BurstLen: svc.BurstLen,
			QoSQuantile: svc.QoSQuantile, QoSTargetMs: targets[ci],
			Estimator: est,
		}
		if cfg.Calibration != nil {
			b := BatchPairing(cl)
			pb, _ := cfg.Calibration.Lookup(cl.Service, b, core.ModeB)
			pq, _ := cfg.Calibration.Lookup(cl.Service, b, core.ModeQ)
			lsSlowMode[ci] = [3]float64{0, pb.LSSlowdown, pq.LSSlowdown}
			batchRelMode[ci] = [3]float64{1, 1 + pb.BatchSpeedup, 1 + pq.BatchSpeedup}
		} else {
			lsSlowMode[ci] = [3]float64{0, cfg.LSSlowdownB, 0}
			batchRelMode[ci] = [3]float64{1, 1 + cfg.BatchSpeedupB, 1 - qCost}
		}
	}

	st := newStepper(sched, auto)
	var tracer decisionTracer
	if cfg.DecisionTrace != TraceOff {
		dt, ok := st.(decisionTracer)
		if !ok {
			return Result{}, fmt.Errorf("fleet: scheduler does not support decision tracing")
		}
		dt.SetTraceLevel(cfg.DecisionTrace)
		tracer = dt
	}
	if err := st.Plan(PlanInput{
		Servers: cfg.Servers, CoresPerServer: cfg.CoresPerServer,
		Traffic: cfg.Traffic, Timelines: timelines,
		Scenario: cfg.Scenario, Seed: cfg.Seed,
	}); err != nil {
		return Result{}, err
	}

	// Each core derives its own rng stream from the experiment seed and
	// its global index — and each window's simulation seed from that — so
	// neither the schedule nor the worker count can perturb results.
	root := rng.New(cfg.Seed).Derive(0xF1EE7)
	perfGen := cfg.Scenario.PerfFactors(cfg.Servers)
	e := &engine{
		nCores: nCores, windows: windows, windowReq: windowReq,
		migPenalty: sched.MigrationPenalty, monCfg: monCfg,
		engineSel:    cfg.Engine,
		lsSlowMode:   lsSlowMode,
		batchRelMode: batchRelMode,
		targets:      targets,
		qcfgs:        qcfgs,
		perf:         make([]float64, nCores),
		streams:      make([]rng.Stream, nCores),
		tails:        make([]float64, nCores*windows),
		batchRel:     make([]float64, nCores*windows),
		modeB:        make([]bool, nCores*windows),
		client:       make([]int16, nCores*windows),
		errs:         make([]error, nCores),
	}
	// The cohort-coalesced path is the default under the fluid/auto
	// engines; the discrete engine always runs the reference per-core
	// path (it has no steady spans to coalesce), as does any run opting
	// out for an equivalence check.
	e.coalesce = cfg.Engine != EngineDiscrete && !cfg.noCoalesce &&
		os.Getenv("STRETCH_NO_COALESCE") == ""
	if e.coalesce {
		e.initCohorts(n)
	} else {
		e.states = make([]coreState, nCores)
	}
	for c := 0; c < nCores; c++ {
		e.perf[c] = perfGen[c/cfg.CoresPerServer]
		e.streams[c] = *root.Derive(uint64(c))
		if e.states != nil {
			e.states[c] = coreState{prev: -4, lastMode: -1} // matches no client and no sentinel
		}
	}
	if cfg.Engine != EngineDiscrete {
		e.solveCache = queueing.NewTailCache(analyticCacheLimit)
		// Resolve the classification inputs: per-client utilization
		// coefficients, structural solver feasibility (probed once at a
		// comfortably steady utilization — the refusals that matter here
		// are rate-independent caps), and the steadiness mask from the
		// traffic shapes and scenario surges.
		e.analytic = make([]bool, nCores*windows)
		e.utilCoef = make([]float64, n)
		e.fluidOK = make([]bool, n)
		e.unsteady = make([][]bool, n)
		names := make([]string, n)
		for ci, cl := range cfg.Traffic.Clients {
			names[ci] = cl.Name
		}
		surges := cfg.Scenario.SurgeMatrix(names, windows)
		for ci, cl := range cfg.Traffic.Clients {
			e.utilCoef[ci] = queueing.Utilization(qcfgs[ci], 1, 1)
			if e.utilCoef[ci] > 0 && !math.IsInf(e.utilCoef[ci], 0) {
				_, err := queueing.Analytic(qcfgs[ci], 0.1/e.utilCoef[ci], 1)
				e.fluidOK[ci] = err == nil
			}
			e.unsteady[ci] = make([]bool, windows)
			for w := 0; w < windows; w++ {
				e.unsteady[ci][w] = loadgen.ShapeUnsteady(cl.Spec.Shape, w, windows) || surges[ci][w] != 1
			}
		}
	}

	if cfg.CounterfactualK > 0 {
		e.initCounterfactual(cfg.CounterfactualK, sched.MinCores, cfg.Seed)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nCores {
		workers = nCores
	}
	// One reusable Simulator per worker: the queueing heaps and sample
	// buffers live across the whole horizon. Analytic solves under the
	// fluid/auto engines go through the shared striped cache wired above.
	sims := make([]*queueing.Simulator, workers)
	for i := range sims {
		sims[i] = new(queueing.Simulator)
	}
	if est == stats.EstimatorHistogram {
		if e.coalesce {
			e.cohortShard = make([]*stats.Histogram, n)
			for ci := range e.cohortShard {
				e.cohortShard[ci] = stats.NewTailHistogram()
			}
		}
		e.shards = make([][]*stats.Histogram, workers)
		for wk := range e.shards {
			e.shards[wk] = make([]*stats.Histogram, n)
			for ci := range e.shards[wk] {
				e.shards[wk][ci] = stats.NewTailHistogram()
			}
		}
		e.winHists = make([]*stats.Histogram, n)
		e.runHists = make([]*stats.Histogram, n)
		for ci := 0; ci < n; ci++ {
			e.winHists[ci] = stats.NewTailHistogram()
			e.runHists[ci] = stats.NewTailHistogram()
		}
		e.fleetHist = stats.NewTailHistogram()
	} else {
		e.winSamples = make([]*stats.Sample, n)
		for ci := range e.winSamples {
			e.winSamples[ci] = stats.NewSample(nCores)
		}
	}

	var (
		obs      *WindowObservation
		winTrace = make([]WindowObservation, 0, windows)
		decTrace []DecisionRecord
	)
	if tracer != nil {
		decTrace = make([]DecisionRecord, 0, windows)
	}

	// One persistent pool for the whole horizon — the former per-window
	// spawn loop burned workers × windows goroutine creations per run.
	pool := newWorkerPool(workers)
	defer pool.close()

	for w := 0; w < windows; w++ {
		asg := st.Step(w, obs)
		if tracer != nil {
			// Capture (and counterfactually evaluate) the decision before
			// the worker pool runs: the record and the evaluator live on
			// the engine goroutine only, so the trace — like every other
			// aggregate — cannot depend on the worker count.
			rec := tracer.LastDecision()
			if e.cfK > 0 {
				if err := e.counterfactual(w, rec); err != nil {
					return Result{}, err
				}
			}
			decTrace = append(decTrace, *rec)
		}

		// Simulate the window, then barrier before observing. The
		// coalesced path answers steady cohorts serially in the span walk
		// and hands only the discrete residue to the pool; the reference
		// path shards every core across the pool. Both claim work in
		// blocks of claimChunk instead of one atomic per unit.
		work := nCores
		if e.coalesce {
			e.coalesceWindow(w, asg)
			work = len(e.worklist)
		}
		if work > 0 {
			var next atomic.Int64
			pool.run(workers, func(wk int) {
				sim := sims[wk]
				var shard []*stats.Histogram
				if e.shards != nil {
					shard = e.shards[wk]
				}
				for {
					lo := int(next.Add(claimChunk)) - claimChunk
					if lo >= work {
						return
					}
					hi := lo + claimChunk
					if hi > work {
						hi = work
					}
					if e.coalesce {
						for _, it := range e.worklist[lo:hi] {
							e.runWorkItem(it, w, sim, shard)
						}
					} else {
						for c := lo; c < hi; c++ {
							e.stepCore(c, w, asg, sim, shard)
						}
					}
				}
			})
		}
		for c := 0; c < nCores; c++ {
			if e.errs[c] != nil {
				return Result{}, e.errs[c]
			}
		}

		o := e.observe(w, asg)
		winTrace = append(winTrace, o)
		obs = &winTrace[len(winTrace)-1]
	}

	// Schedule bookkeeping falls out of the per-window observations.
	migrations, drainedCoreWindows, parkedCoreWindows, idleCoreWindows := 0, 0, 0, 0
	analyticCoreWindows, cohortCoreWindows := 0, 0
	for _, o := range winTrace {
		migrations += o.Migrations
		drainedCoreWindows += o.DrainedCores
		parkedCoreWindows += o.ParkedCores
		idleCoreWindows += o.IdleCores
		analyticCoreWindows += o.AnalyticCores
		cohortCoreWindows += o.CohortCores
	}
	initialCores := make([]int, n)
	if len(winTrace) > 0 {
		for ci := range initialCores {
			initialCores[ci] = winTrace[0].Clients[ci].Cores
		}
	}

	// Deterministic aggregation in core order — the exact accumulation
	// order of the former core-major engine, so aggregate floats (and the
	// golden files derived from them) are bit-identical.
	calibHash := ""
	if cfg.Calibration != nil {
		calibHash = cfg.Calibration.Hash
	}
	res := Result{
		Cores: nCores, Windows: windows, WindowSec: cfg.Traffic.WindowSec,
		Policy:              sched.Policy,
		Autoscale:           auto.Policy,
		TailEstimator:       est,
		Engine:              cfg.Engine,
		AnalyticCoreWindows: analyticCoreWindows,
		AnalyticSolves:      int(e.solves.Load()),
		CohortCoreWindows:   cohortCoreWindows,
		CalibrationHash:     calibHash,
		TotalCoreHours:      float64(nCores) * cfg.Traffic.Hours(),
		Migrations:          migrations,
		DrainedCoreWindows:  drainedCoreWindows,
		ParkedCoreWindows:   parkedCoreWindows,
		IdleCoreWindows:     idleCoreWindows,
		WindowTrace:         winTrace,
		DecisionTrace:       decTrace,
	}
	windowHours := cfg.Traffic.WindowSec / 3600
	// Under the exact estimator the per-client and fleet-wide tails need
	// every core-window tail retained and sorted; the histogram estimator
	// already folded them into runHists/fleetHist at the barriers.
	var perClient []*stats.Sample
	var fleetSample *stats.Sample
	if est == stats.EstimatorExact {
		perClient = make([]*stats.Sample, n)
		for ci := range perClient {
			perClient[ci] = stats.NewSample(initialCores[ci] * windows)
		}
		fleetSample = stats.NewSample(nCores * windows)
	}
	cms := make([]ClientMetrics, n)
	for ci, cl := range cfg.Traffic.Clients {
		cms[ci] = ClientMetrics{
			Client: cl.Name, Service: cl.Service, Batch: BatchPairing(cl), SLO: cl.SLO,
			Cores: initialCores[ci], TargetMs: targets[ci],
		}
	}
	for c := 0; c < nCores; c++ {
		for w := 0; w < windows; w++ {
			idx := c*windows + w
			ci := e.client[idx]
			if ci < 0 {
				continue
			}
			cm := &cms[ci]
			t := e.tails[idx]
			if perClient != nil {
				perClient[ci].Add(t)
				fleetSample.Add(t)
			}
			cm.CoreWindows++
			if t > targets[ci] {
				cm.ViolationWindows++
			}
			if e.modeB[idx] {
				cm.EngagedCoreHours += windowHours
			}
			// The fleet-wide gain keeps its own accumulator (in core-major
			// order, part of the byte-identical goldens contract) alongside
			// the per-client one; per-client gains sum to the fleet total.
			cm.BatchCoreHoursGained += (e.batchRel[idx] - 1) * windowHours
			res.BatchCoreHoursGained += (e.batchRel[idx] - 1) * windowHours
		}
		var sw uint64
		if e.states != nil {
			sw = e.states[c].switches
			if st := &e.states[c]; st.hasCtl {
				sw += st.ctl.Switches()
			}
		} else {
			// Coalesced accounting: switches banked when the core left
			// past classes, plus its current class's live count.
			sw = e.swBase[c]
			if k := e.classOf[c]; k >= 0 {
				sw += e.classes[k].ctl.Switches()
			}
		}
		res.Switches += sw
	}
	for ci := range cms {
		// A client squeezed to zero core-windows has an empty sample or
		// histogram; Quantile reports 0 for it, never NaN.
		if perClient != nil {
			cms[ci].P99Ms = perClient[ci].Quantile(0.99)
			cms[ci].P999Ms = perClient[ci].Quantile(0.999)
		} else {
			cms[ci].P99Ms = e.runHists[ci].Quantile(0.99)
			cms[ci].P999Ms = e.runHists[ci].Quantile(0.999)
		}
		res.ViolationWindows += cms[ci].ViolationWindows
		res.EngagedCoreHours += cms[ci].EngagedCoreHours
	}
	if fleetSample != nil {
		res.FleetP99Ms = fleetSample.Quantile(0.99)
		res.FleetP999Ms = fleetSample.Quantile(0.999)
	} else {
		res.FleetP99Ms = e.fleetHist.Quantile(0.99)
		res.FleetP999Ms = e.fleetHist.Quantile(0.999)
	}
	res.Clients = cms
	res.BatchGain = res.BatchCoreHoursGained / res.TotalCoreHours
	// Jain fairness over per-client SLO fulfilment: the non-violating
	// fraction of each client's serving core-windows, zero for a client
	// that served none (a squeezed-out client is maximally unfairly
	// treated, not absent).
	fulfil := make([]float64, n)
	for ci, cm := range cms {
		if cm.CoreWindows > 0 {
			fulfil[ci] = 1 - float64(cm.ViolationWindows)/float64(cm.CoreWindows)
		}
	}
	res.FairnessIndex = stats.Jain(fulfil)
	return res, nil
}

// stepCore advances one SMT core through one window: resolve the window's
// tail — analytically when the engine classifies the (core, window) steady,
// through the event-level simulator otherwise — at the engaged mode's perf
// factor (scaled by the server's generation and any migration penalty),
// feed the measured tail to the core's persistent controller, credit the
// batch thread, and — under the histogram estimator — record the tail into
// the worker's per-client shard for the barrier merge.
func (e *engine) stepCore(c, w int, asg Assignment, sim *queueing.Simulator, shard []*stats.Histogram) {
	idx := c*e.windows + w
	ci := asg.Client[c]
	e.client[idx] = ci
	st := &e.states[c]
	if ci < 0 {
		e.tails[idx] = math.NaN()
		if ci == coreIdle {
			// An in-service core with no LS client runs batch exactly
			// as the equal-partitioning baseline would: no gain.
			e.batchRel[idx] = 1
		}
		st.prev = ci
		return
	}
	if ci != st.prev {
		if st.hasCtl {
			st.switches += st.ctl.Switches()
		}
		if err := st.ctl.Reset(e.monCfg(e.targets[ci])); err != nil {
			e.errs[c] = err
			return
		}
		st.hasCtl = true
		st.prev = ci
		st.lastMode = -1 // cold start: auto keeps the first window discrete
	}
	mode := st.ctl.Mode()
	perf := e.perf[c]
	// The engaged mode's calibrated LS delta: positive slows the service
	// (B-mode), negative speeds it up (a calibrated Q-mode cell). Guarded
	// so disengaged modes multiply nothing and stay bit-identical to the
	// pre-calibration arithmetic.
	if s := e.lsSlowMode[ci][mode]; s != 0 {
		perf *= 1 - s
	}
	if asg.Migrated[c] {
		perf *= 1 - e.migPenalty
	}
	var tail float64
	if rate := asg.Rate[c]; rate > 0 {
		// Engine classification. Fluid takes the analytic path wherever it
		// is sound; auto additionally demands a steady window — settled
		// mode, no migration cold-start, no burst/surge turbulence, and
		// utilization inside the guard band. A solver refusal falls back
		// to the discrete path, never errors the run.
		solved := false
		if e.engineSel != EngineDiscrete && e.fluidOK[ci] {
			util := rate * e.utilCoef[ci] / perf
			steady := false
			if e.engineSel == EngineFluid {
				steady = util < queueing.AnalyticMaxUtilization
			} else {
				steady = util <= autoSteadyMaxUtil && int8(mode) == st.lastMode &&
					!asg.Migrated[c] && !e.unsteady[ci][w]
			}
			if steady {
				if t, ok := e.analyticTail(ci, rate, perf); ok {
					tail = t
					e.analytic[idx] = true
					solved = true
				}
			}
		}
		if !solved {
			seed := e.streams[c].Derive(uint64(w)).Uint64()
			if err := sim.Reset(e.qcfgs[ci]); err != nil {
				e.errs[c] = err
				return
			}
			qr, err := sim.Simulate(rate, e.windowReq, perf, seed)
			if err != nil {
				e.errs[c] = err
				return
			}
			tail = qr.QoSMs
		}
	}
	// An idle window — a Poisson draw of zero arrivals, or a window the
	// scheduler routed no load to — skips the queueing simulation entirely
	// and reads as zero tail: maximal slack. This is deliberate: a core
	// with nothing to serve cannot violate its target, its controller sees
	// the deepest possible headroom (driving it toward B-mode), and the
	// zero is recorded like any other tail under both estimators — it
	// lands in the exact samples and in the histogram shard's bottom
	// bucket alike, so idle windows pull the measured quantiles down
	// rather than being silently dropped.
	e.tails[idx] = tail
	if shard != nil {
		shard[ci].Add(tail)
	}
	if mode == core.ModeB {
		e.modeB[idx] = true
	}
	if mode == core.ModeB && asg.Migrated[c] && e.migPenalty > 0 {
		// Warming the new client's working set eats the bonus.
		e.batchRel[idx] = 1
	} else {
		e.batchRel[idx] = e.batchRelMode[ci][mode]
	}
	st.lastMode = int8(mode)
	st.ctl.Observe(monitor.Observation{TailMs: tail})
}

// observe collects the window's measurements behind the barrier, in core
// order, into the observation record the scheduler sees next window. One
// pass over the fleet fills the per-client aggregates and tail samples.
func (e *engine) observe(w int, asg Assignment) WindowObservation {
	o := WindowObservation{Window: w, Clients: make([]ClientWindowObs, len(e.targets))}
	for c := 0; c < e.nCores; c++ {
		cl := asg.Client[c]
		switch {
		case cl == coreDrained:
			o.DrainedCores++
		case cl == coreParked:
			o.ParkedCores++
		case cl == coreIdle:
			o.IdleCores++
		default:
			co := &o.Clients[cl]
			idx := c*e.windows + w
			t := e.tails[idx]
			co.Cores++
			o.ServingCores++
			co.OfferedRPS += asg.Rate[c]
			co.MeanTailMs += t
			if t > co.MaxTailMs {
				co.MaxTailMs = t
			}
			if t > e.targets[cl] {
				co.Violations++
				o.Violations++
			}
			if e.modeB[idx] {
				co.BCores++
				o.BCores++
			}
			co.BatchRel += e.batchRel[idx]
			// A coalesced class's members share their controller's exact
			// observation history, so the class Slack IS each member's
			// Slack — the sum is bit-identical to the per-core path's.
			if e.states != nil {
				co.MeanSlack += e.states[c].ctl.Slack()
			} else {
				co.MeanSlack += e.classes[e.classOf[c]].ctl.Slack()
			}
			if asg.Migrated[c] {
				o.Migrations++
			}
			if e.analytic != nil && e.analytic[idx] {
				o.AnalyticCores++
			}
			if e.engineSel != EngineDiscrete && (e.analytic[idx] || asg.Rate[c] == 0) {
				o.CohortCores++
			}
			if e.winSamples != nil {
				e.winSamples[cl].Add(t)
			}
		}
	}
	if e.shards != nil {
		// Merge the workers' per-client shards (in worker order — though
		// integer counts make any order equivalent) into the window
		// histograms, fold those into the horizon aggregates, and hand the
		// cleared shards back to the next window.
		for _, shard := range e.shards {
			for ci, h := range shard {
				e.winHists[ci].Merge(h)
				h.Reset()
			}
		}
		if e.cohortShard != nil {
			// The coalesced AddN deposits merge like one more worker
			// shard: integer counts, so placement in the merge order
			// cannot perturb the histograms.
			for ci, h := range e.cohortShard {
				e.winHists[ci].Merge(h)
				h.Reset()
			}
		}
	}
	for ci := range o.Clients {
		co := &o.Clients[ci]
		if e.winHists != nil {
			if co.Cores > 0 {
				co.TailP99Ms = e.winHists[ci].Quantile(0.99)
			}
			e.runHists[ci].Merge(e.winHists[ci])
			e.fleetHist.Merge(e.winHists[ci])
			e.winHists[ci].Reset()
		}
		if co.Cores == 0 {
			continue
		}
		co.MeanTailMs /= float64(co.Cores)
		co.MeanSlack /= float64(co.Cores)
		co.BatchRel /= float64(co.Cores)
		if e.winSamples != nil {
			co.TailP99Ms = e.winSamples[ci].Quantile(0.99)
			e.winSamples[ci].Reset()
		}
	}
	return o
}

// assignCores splits nCores across the clients proportionally to their
// fractions: floor allocation (minimum one core each), then — when the
// fractions subscribe the whole fleet — largest-remainder distribution of
// the leftover. Under-subscribed traffic leaves the remaining cores idle;
// over-allocation from the one-core minimum is reclaimed from the largest
// allocations.
func assignCores(clients []loadgen.Client, nCores int) []int {
	out := make([]int, len(clients))
	sum := 0.0
	for _, c := range clients {
		sum += c.Fraction
	}
	used := 0
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(clients))
	for i, c := range clients {
		exact := c.Fraction * float64(nCores)
		out[i] = int(exact)
		if out[i] < 1 {
			out[i] = 1
		}
		used += out[i]
		rems = append(rems, rem{i, exact - float64(int(exact))})
	}
	for used > nCores {
		big := 0
		for i := range out {
			if out[i] > out[big] {
				big = i
			}
		}
		out[big]--
		used--
	}
	if sum > 1-1e-9 {
		sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
		for k := 0; used < nCores; k = (k + 1) % len(rems) {
			out[rems[k].idx]++
			used++
		}
	}
	return out
}

// PeakRPSPerCore returns the peak sustainable per-core arrival rate for the
// named service — the rate anchor for building traffic specs in fractions
// of peak (load 1.0 ≈ the paper's "peak sustainable load").
func PeakRPSPerCore(service string, nRequests int, seed uint64) (float64, error) {
	svc, ok := workload.Services()[service]
	if !ok {
		return 0, fmt.Errorf("fleet: unknown service %q", service)
	}
	cfg := queueing.Config{
		Workers: svc.Workers, MeanServiceMs: svc.MeanServiceMs,
		ServiceCV: svc.ServiceCV, BurstProb: svc.BurstProb, BurstLen: svc.BurstLen,
		QoSQuantile: svc.QoSQuantile, QoSTargetMs: svc.QoSTargetMs,
	}
	return queueing.PeakLoad(cfg, nRequests, seed)
}
