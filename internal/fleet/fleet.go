// Package fleet simulates a datacenter-scale Stretch deployment: N servers
// × SMT cores, each core running a queueing-backed latency-sensitive
// service colocated with a batch thread and governed by its own §IV-C
// monitor.Controller. An open-loop multi-client traffic spec
// (internal/loadgen) drives the per-window arrival rates; execution is
// sharded across a goroutine worker pool, with every core drawing from its
// own rng stream derived from the experiment seed, so aggregate results are
// bit-identical for identical seeds regardless of worker count.
//
// Per window, each core simulates its share of its client's arrival rate
// through the request-level queueing model at the perf factor its current
// mode implies, feeds the measured tail to its controller, and credits the
// colocated batch thread relative to equal partitioning (B-mode gains,
// Q-mode pays). Results aggregate into fleet-wide tails (p99/p99.9 over
// core-window tails), QoS-violation window counts, engaged-core-hours, and
// batch core-hours gained versus an equal-partitioning deployment.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"stretch/internal/core"
	"stretch/internal/loadgen"
	"stretch/internal/monitor"
	"stretch/internal/queueing"
	"stretch/internal/rng"
	"stretch/internal/stats"
	"stretch/internal/workload"
)

// Config parameterises a fleet run.
type Config struct {
	// Servers and CoresPerServer size the fleet (Servers × CoresPerServer
	// SMT cores total).
	Servers, CoresPerServer int

	// Traffic is the multi-client arrival spec; each client's fleet-wide
	// timeline is split evenly across the cores its Fraction buys.
	Traffic loadgen.Traffic

	// BatchSpeedupB and LSSlowdownB are the measured B-mode deltas versus
	// equal partitioning (e.g. from the 56-136 skew grid).
	BatchSpeedupB, LSSlowdownB float64
	// QModeBatchCost is the batch throughput lost while Q-mode is engaged
	// (default 0.15 when zero).
	QModeBatchCost float64

	// WindowRequests is the per-core request budget sampling each window's
	// steady state (default 800 when zero).
	WindowRequests int

	// Workers caps the goroutine pool (default GOMAXPROCS when zero).
	// Results are independent of the worker count.
	Workers int

	// Seed is the experiment seed; identical seeds reproduce identical
	// aggregate metrics.
	Seed uint64

	// Monitor builds each core's controller tuning from its client's
	// (SLO-scaled) tail target; nil uses monitor.DefaultConfig.
	Monitor func(targetMs float64) monitor.Config
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Servers <= 0 || c.CoresPerServer <= 0 {
		return fmt.Errorf("fleet: need a positive fleet size (%d servers × %d cores)", c.Servers, c.CoresPerServer)
	}
	if err := c.Traffic.Validate(); err != nil {
		return err
	}
	if len(c.Traffic.Clients) > c.Servers*c.CoresPerServer {
		return fmt.Errorf("fleet: %d clients need at least as many cores (have %d)",
			len(c.Traffic.Clients), c.Servers*c.CoresPerServer)
	}
	if c.BatchSpeedupB < 0 {
		return fmt.Errorf("fleet: negative B-mode batch speedup")
	}
	if c.LSSlowdownB < 0 || c.LSSlowdownB >= 1 {
		return fmt.Errorf("fleet: B-mode LS slowdown %v out of [0,1)", c.LSSlowdownB)
	}
	if c.QModeBatchCost < 0 || c.QModeBatchCost >= 1 {
		return fmt.Errorf("fleet: Q-mode batch cost %v out of [0,1)", c.QModeBatchCost)
	}
	if c.WindowRequests < 0 {
		return fmt.Errorf("fleet: negative window request budget")
	}
	for _, cl := range c.Traffic.Clients {
		if _, ok := workload.Services()[cl.Service]; !ok {
			return fmt.Errorf("fleet: client %q: unknown service %q", cl.Name, cl.Service)
		}
	}
	return nil
}

// ClientMetrics aggregates one traffic client's cores.
type ClientMetrics struct {
	Client  string
	Service string
	SLO     loadgen.SLOClass
	// Cores is how many SMT cores the client's Fraction bought.
	Cores int
	// TargetMs is the SLO-scaled tail target its controllers enforce.
	TargetMs float64
	// P99Ms and P999Ms are quantiles over all core-window tail readings.
	P99Ms, P999Ms float64
	// ViolationWindows counts core-windows whose tail exceeded the target.
	ViolationWindows int
	// CoreWindows is the total core-windows simulated for this client.
	CoreWindows int
	// EngagedCoreHours is the B-mode time integrated over the client's
	// cores.
	EngagedCoreHours float64
}

// Result is the fleet-wide aggregation.
type Result struct {
	// Cores and Windows echo the simulated extent.
	Cores, Windows int
	WindowSec      float64

	// Clients holds per-client aggregates in traffic order.
	Clients []ClientMetrics

	// TotalCoreHours is Cores × horizon.
	TotalCoreHours float64
	// EngagedCoreHours is the fleet-wide B-mode time.
	EngagedCoreHours float64
	// BatchCoreHoursGained integrates (batchRel − 1) over every
	// core-window: the extra batch work versus an equal-partitioning
	// deployment of the same fleet, in core-hours.
	BatchCoreHoursGained float64
	// BatchGain is BatchCoreHoursGained normalised by TotalCoreHours: the
	// fleet-wide batch throughput improvement over equal partitioning.
	BatchGain float64
	// ViolationWindows counts QoS-violating core-windows fleet-wide.
	ViolationWindows int
	// Switches sums all controllers' mode changes.
	Switches uint64
}

// coreJob is the per-core work description handed to the pool.
type coreJob struct {
	client int
	rates  []float64 // per-window per-core arrival rate
	target float64   // SLO-scaled tail target, ms
	qcfg   queueing.Config
}

// coreResult is one core's contribution, aggregated deterministically in
// core order after the pool drains.
type coreResult struct {
	tails          []float64
	violations     int
	engagedWindows int
	batchRelSum    float64
	switches       uint64
	err            error
}

// Run simulates the fleet over the traffic horizon.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	nCores := cfg.Servers * cfg.CoresPerServer
	windows := cfg.Traffic.Windows
	windowReq := cfg.WindowRequests
	if windowReq == 0 {
		windowReq = 800
	}
	qCost := cfg.QModeBatchCost
	if qCost == 0 {
		qCost = 0.15
	}
	monCfg := cfg.Monitor
	if monCfg == nil {
		monCfg = monitor.DefaultConfig
	}

	timelines, err := cfg.Traffic.Timelines(cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	coresOf := assignCores(cfg.Traffic.Clients, nCores)

	// Flatten the per-core work list in client order.
	jobs := make([]coreJob, 0, nCores)
	targets := make([]float64, len(cfg.Traffic.Clients))
	for ci, cl := range cfg.Traffic.Clients {
		svc := workload.Services()[cl.Service]
		targets[ci] = svc.QoSTargetMs * cl.SLO.Scale()
		qcfg := queueing.Config{
			Workers: svc.Workers, MeanServiceMs: svc.MeanServiceMs,
			ServiceCV: svc.ServiceCV, BurstProb: svc.BurstProb, BurstLen: svc.BurstLen,
			QoSQuantile: svc.QoSQuantile, QoSTargetMs: targets[ci],
		}
		perCore := make([]float64, windows)
		for w, r := range timelines[cl.Name] {
			perCore[w] = r / float64(coresOf[ci])
		}
		for j := 0; j < coresOf[ci]; j++ {
			jobs = append(jobs, coreJob{client: ci, rates: perCore, target: targets[ci], qcfg: qcfg})
		}
	}

	// Shard the cores over a worker pool. Each core derives its own rng
	// stream from the experiment seed and its global index, so the
	// schedule — and therefore the worker count — cannot perturb results.
	root := rng.New(cfg.Seed).Derive(0xF1EE7)
	results := make([]coreResult, len(jobs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	next := make(chan int, len(jobs))
	for i := range jobs {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runCore(jobs[i].qcfg, jobs[i].rates, jobs[i].target,
					monCfg, windowReq, cfg.BatchSpeedupB, cfg.LSSlowdownB, qCost,
					root.Derive(uint64(i)))
			}
		}()
	}
	wg.Wait()

	// Deterministic aggregation in core order.
	res := Result{
		Cores: nCores, Windows: windows, WindowSec: cfg.Traffic.WindowSec,
		TotalCoreHours: float64(nCores) * cfg.Traffic.Hours(),
	}
	windowHours := cfg.Traffic.WindowSec / 3600
	perClient := make([]*stats.Sample, len(cfg.Traffic.Clients))
	cms := make([]ClientMetrics, len(cfg.Traffic.Clients))
	for ci, cl := range cfg.Traffic.Clients {
		perClient[ci] = stats.NewSample(coresOf[ci] * windows)
		cms[ci] = ClientMetrics{
			Client: cl.Name, Service: cl.Service, SLO: cl.SLO,
			Cores: coresOf[ci], TargetMs: targets[ci],
		}
	}
	for i, r := range results {
		if r.err != nil {
			return Result{}, r.err
		}
		ci := jobs[i].client
		for _, tl := range r.tails {
			perClient[ci].Add(tl)
		}
		cms[ci].ViolationWindows += r.violations
		cms[ci].CoreWindows += windows
		cms[ci].EngagedCoreHours += float64(r.engagedWindows) * windowHours
		res.BatchCoreHoursGained += (r.batchRelSum - float64(windows)) * windowHours
		res.Switches += r.switches
	}
	for ci := range cms {
		cms[ci].P99Ms = perClient[ci].Quantile(0.99)
		cms[ci].P999Ms = perClient[ci].Quantile(0.999)
		res.ViolationWindows += cms[ci].ViolationWindows
		res.EngagedCoreHours += cms[ci].EngagedCoreHours
	}
	res.Clients = cms
	res.BatchGain = res.BatchCoreHoursGained / res.TotalCoreHours
	return res, nil
}

// runCore walks one SMT core through every window: simulate the window's
// arrivals at the engaged mode's perf factor, feed the tail to the
// controller, credit the batch thread.
func runCore(qcfg queueing.Config, rates []float64, targetMs float64,
	monCfg func(float64) monitor.Config, windowReq int,
	bGain, lsSlow, qCost float64, stream *rng.Stream) coreResult {

	ctl, err := monitor.New(monCfg(targetMs))
	if err != nil {
		return coreResult{err: err}
	}
	r := coreResult{tails: make([]float64, 0, len(rates))}
	for w, rate := range rates {
		mode := ctl.Mode()
		var tail float64
		if rate > 0 {
			perf := 1.0
			if mode == core.ModeB {
				perf = 1 - lsSlow
			}
			seed := stream.Derive(uint64(w)).Uint64()
			qr, err := queueing.Simulate(qcfg, rate, windowReq, perf, seed)
			if err != nil {
				return coreResult{err: err}
			}
			tail = qr.QoSMs
		}
		// An idle window (a Poisson draw of zero arrivals) reads as zero
		// tail: maximal slack.
		r.tails = append(r.tails, tail)
		if tail > targetMs {
			r.violations++
		}
		switch mode {
		case core.ModeB:
			r.engagedWindows++
			r.batchRelSum += 1 + bGain
		case core.ModeQ:
			r.batchRelSum += 1 - qCost
		default:
			r.batchRelSum += 1
		}
		ctl.Observe(monitor.Observation{TailMs: tail})
	}
	r.switches = ctl.Switches()
	return r
}

// assignCores splits nCores across the clients proportionally to their
// fractions: floor allocation (minimum one core each), then — when the
// fractions subscribe the whole fleet — largest-remainder distribution of
// the leftover. Under-subscribed traffic leaves the remaining cores idle;
// over-allocation from the one-core minimum is reclaimed from the largest
// allocations.
func assignCores(clients []loadgen.Client, nCores int) []int {
	out := make([]int, len(clients))
	sum := 0.0
	for _, c := range clients {
		sum += c.Fraction
	}
	used := 0
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(clients))
	for i, c := range clients {
		exact := c.Fraction * float64(nCores)
		out[i] = int(exact)
		if out[i] < 1 {
			out[i] = 1
		}
		used += out[i]
		rems = append(rems, rem{i, exact - float64(int(exact))})
	}
	for used > nCores {
		big := 0
		for i := range out {
			if out[i] > out[big] {
				big = i
			}
		}
		out[big]--
		used--
	}
	if sum > 1-1e-9 {
		sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
		for k := 0; used < nCores; k = (k + 1) % len(rems) {
			out[rems[k].idx]++
			used++
		}
	}
	return out
}

// PeakRPSPerCore returns the peak sustainable per-core arrival rate for the
// named service — the rate anchor for building traffic specs in fractions
// of peak (load 1.0 ≈ the paper's "peak sustainable load").
func PeakRPSPerCore(service string, nRequests int, seed uint64) (float64, error) {
	svc, ok := workload.Services()[service]
	if !ok {
		return 0, fmt.Errorf("fleet: unknown service %q", service)
	}
	cfg := queueing.Config{
		Workers: svc.Workers, MeanServiceMs: svc.MeanServiceMs,
		ServiceCV: svc.ServiceCV, BurstProb: svc.BurstProb, BurstLen: svc.BurstLen,
		QoSQuantile: svc.QoSQuantile, QoSTargetMs: svc.QoSTargetMs,
	}
	return queueing.PeakLoad(cfg, nRequests, seed)
}
