// Package fleet simulates a datacenter-scale Stretch deployment: N servers
// × SMT cores, each core running a queueing-backed latency-sensitive
// service colocated with a batch thread and governed by its own §IV-C
// monitor.Controller. An open-loop multi-client traffic spec
// (internal/loadgen) drives the per-window arrival rates; execution is
// sharded across a goroutine worker pool, with every core drawing from its
// own rng stream derived from the experiment seed, so aggregate results are
// bit-identical for identical seeds regardless of worker count.
//
// Per window, each core simulates its share of its client's arrival rate
// through the request-level queueing model at the perf factor its current
// mode implies, feeds the measured tail to its controller, and credits the
// colocated batch thread relative to equal partitioning (B-mode gains,
// Q-mode pays). Results aggregate into fleet-wide tails (p99/p99.9 over
// core-window tails), QoS-violation window counts, engaged-core-hours, and
// batch core-hours gained versus an equal-partitioning deployment.
//
// Which client a core serves each window — and at what rate — is decided
// by the scheduler (see scheduler.go): the static Fraction split, elastic
// proportional reallocation, or power-of-two-choices routing, optionally
// under a loadgen.Scenario of server drains, traffic surges and
// heterogeneous server generations.
package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"stretch/internal/core"
	"stretch/internal/loadgen"
	"stretch/internal/monitor"
	"stretch/internal/queueing"
	"stretch/internal/rng"
	"stretch/internal/stats"
	"stretch/internal/workload"
)

// Config parameterises a fleet run.
type Config struct {
	// Servers and CoresPerServer size the fleet (Servers × CoresPerServer
	// SMT cores total).
	Servers, CoresPerServer int

	// Traffic is the multi-client arrival spec; each client's fleet-wide
	// timeline is split evenly across the cores its Fraction buys.
	Traffic loadgen.Traffic

	// BatchSpeedupB and LSSlowdownB are the measured B-mode deltas versus
	// equal partitioning (e.g. from the 56-136 skew grid).
	BatchSpeedupB, LSSlowdownB float64
	// QModeBatchCost is the batch throughput lost while Q-mode is engaged
	// (default 0.15 when zero).
	QModeBatchCost float64

	// WindowRequests is the per-core request budget sampling each window's
	// steady state (default 800 when zero).
	WindowRequests int

	// Workers caps the goroutine pool (default GOMAXPROCS when zero).
	// Results are independent of the worker count.
	Workers int

	// Seed is the experiment seed; identical seeds reproduce identical
	// aggregate metrics.
	Seed uint64

	// Monitor builds each core's controller tuning from its client's
	// (SLO-scaled) tail target; nil uses monitor.DefaultConfig.
	Monitor func(targetMs float64) monitor.Config

	// Scheduler selects the core-allocation and load-routing policy; the
	// zero value is the static Fraction split.
	Scheduler SchedulerConfig

	// Scenario injects fleet events — server drains/restores, traffic
	// surges, per-server performance generations. The zero value is an
	// uneventful run.
	Scenario loadgen.Scenario
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Servers <= 0 || c.CoresPerServer <= 0 {
		return fmt.Errorf("fleet: need a positive fleet size (%d servers × %d cores)", c.Servers, c.CoresPerServer)
	}
	if err := c.Traffic.Validate(); err != nil {
		return err
	}
	if len(c.Traffic.Clients) > c.Servers*c.CoresPerServer {
		return fmt.Errorf("fleet: %d clients need at least as many cores (have %d)",
			len(c.Traffic.Clients), c.Servers*c.CoresPerServer)
	}
	if c.BatchSpeedupB < 0 {
		return fmt.Errorf("fleet: negative B-mode batch speedup")
	}
	if c.LSSlowdownB < 0 || c.LSSlowdownB >= 1 {
		return fmt.Errorf("fleet: B-mode LS slowdown %v out of [0,1)", c.LSSlowdownB)
	}
	if c.QModeBatchCost < 0 || c.QModeBatchCost >= 1 {
		return fmt.Errorf("fleet: Q-mode batch cost %v out of [0,1)", c.QModeBatchCost)
	}
	if c.WindowRequests < 0 {
		return fmt.Errorf("fleet: negative window request budget")
	}
	for _, cl := range c.Traffic.Clients {
		if _, ok := workload.Services()[cl.Service]; !ok {
			return fmt.Errorf("fleet: client %q: unknown service %q", cl.Name, cl.Service)
		}
	}
	if err := c.Scheduler.Validate(); err != nil {
		return err
	}
	return c.Scenario.Validate(c.Traffic.Windows, c.Servers, c.Traffic.Clients)
}

// ClientMetrics aggregates one traffic client's cores.
type ClientMetrics struct {
	Client  string
	Service string
	SLO     loadgen.SLOClass
	// Cores is the client's window-0 allocation; under the elastic
	// policies the per-window allocation drifts with demand, tracked by
	// CoreWindows.
	Cores int
	// TargetMs is the SLO-scaled tail target its controllers enforce.
	TargetMs float64
	// P99Ms and P999Ms are quantiles over all core-window tail readings.
	P99Ms, P999Ms float64
	// ViolationWindows counts core-windows whose tail exceeded the target.
	ViolationWindows int
	// CoreWindows is the total core-windows that served this client.
	CoreWindows int
	// EngagedCoreHours is the B-mode time integrated over the client's
	// cores.
	EngagedCoreHours float64
}

// Result is the fleet-wide aggregation.
type Result struct {
	// Cores and Windows echo the simulated extent.
	Cores, Windows int
	WindowSec      float64

	// Policy echoes the scheduler policy the run used.
	Policy Policy

	// Clients holds per-client aggregates in traffic order.
	Clients []ClientMetrics

	// TotalCoreHours is Cores × horizon.
	TotalCoreHours float64
	// EngagedCoreHours is the fleet-wide B-mode time.
	EngagedCoreHours float64
	// BatchCoreHoursGained integrates (batchRel − 1) over every serving
	// core-window: the extra batch work versus the same schedule run under
	// equal partitioning, in core-hours. Idle and drained core-windows
	// contribute nothing to either side.
	BatchCoreHoursGained float64
	// BatchGain is BatchCoreHoursGained normalised by TotalCoreHours: the
	// fleet-wide batch throughput improvement over equal partitioning.
	BatchGain float64
	// ViolationWindows counts QoS-violating core-windows fleet-wide.
	ViolationWindows int
	// Switches sums all controllers' mode changes.
	Switches uint64

	// Migrations counts core-windows that paid the migration penalty
	// (core handed to a different client than the previous window).
	Migrations int
	// DrainedCoreWindows and IdleCoreWindows count out-of-service and
	// unassigned core-windows in the schedule.
	DrainedCoreWindows int
	IdleCoreWindows    int
}

// coreJob is the per-core work description handed to the pool: the core's
// full-horizon schedule slice of the plan.
type coreJob struct {
	perf     float64   // server performance-generation factor
	client   []int16   // per-window client index (coreIdle / coreDrained)
	rate     []float64 // per-window arrival rate
	migrated []bool    // per-window migration-penalty flag
}

// coreResult is one core's contribution, aggregated deterministically in
// core order after the pool drains. tails is NaN on non-serving windows.
type coreResult struct {
	tails    []float64
	batchRel []float64
	modeB    []bool
	switches uint64
	err      error
}

// Run simulates the fleet over the traffic horizon.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	nCores := cfg.Servers * cfg.CoresPerServer
	windows := cfg.Traffic.Windows
	windowReq := cfg.WindowRequests
	if windowReq == 0 {
		windowReq = 800
	}
	qCost := cfg.QModeBatchCost
	if qCost == 0 {
		qCost = 0.15
	}
	monCfg := cfg.Monitor
	if monCfg == nil {
		monCfg = monitor.DefaultConfig
	}
	sched := cfg.Scheduler.withDefaults()

	timelines, err := cfg.Traffic.Timelines(cfg.Seed)
	if err != nil {
		return Result{}, err
	}

	// Per-client service configs and SLO-scaled targets.
	targets := make([]float64, len(cfg.Traffic.Clients))
	qcfgs := make([]queueing.Config, len(cfg.Traffic.Clients))
	for ci, cl := range cfg.Traffic.Clients {
		svc := workload.Services()[cl.Service]
		targets[ci] = svc.QoSTargetMs * cl.SLO.Scale()
		qcfgs[ci] = queueing.Config{
			Workers: svc.Workers, MeanServiceMs: svc.MeanServiceMs,
			ServiceCV: svc.ServiceCV, BurstProb: svc.BurstProb, BurstLen: svc.BurstLen,
			QoSQuantile: svc.QoSQuantile, QoSTargetMs: targets[ci],
		}
	}

	// The scheduler pre-pass fixes every core's client and rate for every
	// window before any goroutine starts, so scheduling decisions never
	// consume simulation randomness.
	pl := buildPlan(cfg, sched, timelines)
	jobs := make([]coreJob, nCores)
	for c := 0; c < nCores; c++ {
		jobs[c] = coreJob{perf: pl.perf[c], client: pl.client[c], rate: pl.rate[c], migrated: pl.migrated[c]}
	}

	// Shard the cores over a worker pool. Each core derives its own rng
	// stream from the experiment seed and its global index, so the
	// schedule — and therefore the worker count — cannot perturb results.
	root := rng.New(cfg.Seed).Derive(0xF1EE7)
	results := make([]coreResult, len(jobs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	next := make(chan int, len(jobs))
	for i := range jobs {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runCore(jobs[i], qcfgs, targets, monCfg, windowReq,
					cfg.BatchSpeedupB, cfg.LSSlowdownB, qCost, sched.MigrationPenalty,
					root.Derive(uint64(i)))
			}
		}()
	}
	wg.Wait()

	// Deterministic aggregation in core order.
	res := Result{
		Cores: nCores, Windows: windows, WindowSec: cfg.Traffic.WindowSec,
		Policy:             sched.Policy,
		TotalCoreHours:     float64(nCores) * cfg.Traffic.Hours(),
		Migrations:         pl.migrations,
		DrainedCoreWindows: pl.drainedCoreWindows,
		IdleCoreWindows:    pl.idleCoreWindows,
	}
	windowHours := cfg.Traffic.WindowSec / 3600
	perClient := make([]*stats.Sample, len(cfg.Traffic.Clients))
	cms := make([]ClientMetrics, len(cfg.Traffic.Clients))
	for ci, cl := range cfg.Traffic.Clients {
		perClient[ci] = stats.NewSample(pl.initialCores[ci] * windows)
		cms[ci] = ClientMetrics{
			Client: cl.Name, Service: cl.Service, SLO: cl.SLO,
			Cores: pl.initialCores[ci], TargetMs: targets[ci],
		}
	}
	for i, r := range results {
		if r.err != nil {
			return Result{}, r.err
		}
		for w := 0; w < windows; w++ {
			ci := jobs[i].client[w]
			if ci < 0 {
				continue
			}
			cm := &cms[ci]
			t := r.tails[w]
			perClient[ci].Add(t)
			cm.CoreWindows++
			if t > targets[ci] {
				cm.ViolationWindows++
			}
			if r.modeB[w] {
				cm.EngagedCoreHours += windowHours
			}
			res.BatchCoreHoursGained += (r.batchRel[w] - 1) * windowHours
		}
		res.Switches += r.switches
	}
	for ci := range cms {
		cms[ci].P99Ms = perClient[ci].Quantile(0.99)
		cms[ci].P999Ms = perClient[ci].Quantile(0.999)
		res.ViolationWindows += cms[ci].ViolationWindows
		res.EngagedCoreHours += cms[ci].EngagedCoreHours
	}
	res.Clients = cms
	res.BatchGain = res.BatchCoreHoursGained / res.TotalCoreHours
	return res, nil
}

// runCore walks one SMT core through its schedule: simulate each serving
// window's arrivals at the engaged mode's perf factor (scaled by the
// server's generation and any migration penalty), feed the tail to the
// controller, credit the batch thread. The controller resets whenever the
// core starts serving a different client — a handed-over core is a cold
// start.
func runCore(job coreJob, qcfgs []queueing.Config, targets []float64,
	monCfg func(float64) monitor.Config, windowReq int,
	bGain, lsSlow, qCost, migPenalty float64, stream *rng.Stream) coreResult {

	windows := len(job.client)
	r := coreResult{
		tails:    make([]float64, windows),
		batchRel: make([]float64, windows),
		modeB:    make([]bool, windows),
	}
	var ctl *monitor.Controller
	prev := int16(-3) // matches no client and no sentinel
	for w := 0; w < windows; w++ {
		ci := job.client[w]
		if ci < 0 {
			r.tails[w] = math.NaN()
			if ci == coreIdle {
				// An in-service core with no LS client runs batch exactly
				// as the equal-partitioning baseline would: no gain.
				r.batchRel[w] = 1
			}
			prev = ci
			continue
		}
		if ci != prev {
			if ctl != nil {
				r.switches += ctl.Switches()
			}
			var err error
			ctl, err = monitor.New(monCfg(targets[ci]))
			if err != nil {
				return coreResult{err: err}
			}
			prev = ci
		}
		mode := ctl.Mode()
		perf := job.perf
		if mode == core.ModeB {
			perf *= 1 - lsSlow
		}
		if job.migrated[w] {
			perf *= 1 - migPenalty
		}
		var tail float64
		if rate := job.rate[w]; rate > 0 {
			seed := stream.Derive(uint64(w)).Uint64()
			qr, err := queueing.Simulate(qcfgs[ci], rate, windowReq, perf, seed)
			if err != nil {
				return coreResult{err: err}
			}
			tail = qr.QoSMs
		}
		// An idle window (a Poisson draw of zero arrivals) reads as zero
		// tail: maximal slack.
		r.tails[w] = tail
		switch mode {
		case core.ModeB:
			r.modeB[w] = true
			if job.migrated[w] {
				// Warming the new client's working set eats the bonus.
				r.batchRel[w] = 1
			} else {
				r.batchRel[w] = 1 + bGain
			}
		case core.ModeQ:
			r.batchRel[w] = 1 - qCost
		default:
			r.batchRel[w] = 1
		}
		ctl.Observe(monitor.Observation{TailMs: tail})
	}
	if ctl != nil {
		r.switches += ctl.Switches()
	}
	return r
}

// assignCores splits nCores across the clients proportionally to their
// fractions: floor allocation (minimum one core each), then — when the
// fractions subscribe the whole fleet — largest-remainder distribution of
// the leftover. Under-subscribed traffic leaves the remaining cores idle;
// over-allocation from the one-core minimum is reclaimed from the largest
// allocations.
func assignCores(clients []loadgen.Client, nCores int) []int {
	out := make([]int, len(clients))
	sum := 0.0
	for _, c := range clients {
		sum += c.Fraction
	}
	used := 0
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(clients))
	for i, c := range clients {
		exact := c.Fraction * float64(nCores)
		out[i] = int(exact)
		if out[i] < 1 {
			out[i] = 1
		}
		used += out[i]
		rems = append(rems, rem{i, exact - float64(int(exact))})
	}
	for used > nCores {
		big := 0
		for i := range out {
			if out[i] > out[big] {
				big = i
			}
		}
		out[big]--
		used--
	}
	if sum > 1-1e-9 {
		sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
		for k := 0; used < nCores; k = (k + 1) % len(rems) {
			out[rems[k].idx]++
			used++
		}
	}
	return out
}

// PeakRPSPerCore returns the peak sustainable per-core arrival rate for the
// named service — the rate anchor for building traffic specs in fractions
// of peak (load 1.0 ≈ the paper's "peak sustainable load").
func PeakRPSPerCore(service string, nRequests int, seed uint64) (float64, error) {
	svc, ok := workload.Services()[service]
	if !ok {
		return 0, fmt.Errorf("fleet: unknown service %q", service)
	}
	cfg := queueing.Config{
		Workers: svc.Workers, MeanServiceMs: svc.MeanServiceMs,
		ServiceCV: svc.ServiceCV, BurstProb: svc.BurstProb, BurstLen: svc.BurstLen,
		QoSQuantile: svc.QoSQuantile, QoSTargetMs: svc.QoSTargetMs,
	}
	return queueing.PeakLoad(cfg, nRequests, seed)
}
