package fleet

import (
	"math"
	"reflect"
	"testing"
)

func TestSearchGridContainsHandTuned(t *testing.T) {
	grid := SearchGrid()
	if len(grid) != 21 {
		t.Fatalf("grid has %d candidates, want 21 (4 policies + 17 feedback tunings)", len(grid))
	}
	baseline := false
	seen := map[SchedulerConfig]bool{}
	for _, cand := range grid {
		if cand == (SchedulerConfig{Policy: PolicyFeedback}) {
			baseline = true
		}
		// No two candidates may resolve to the same effective scheduler,
		// or the sweep wastes runs and the ranking shows twins.
		eff := cand.withDefaults()
		if seen[eff] {
			t.Fatalf("duplicate effective candidate %+v", eff)
		}
		seen[eff] = true
		if err := cand.Validate(); err != nil {
			t.Fatalf("grid candidate invalid: %+v: %v", cand, err)
		}
	}
	if !baseline {
		t.Fatal("hand-tuned feedback baseline missing from the grid")
	}
}

func TestSearchSchedulersRanksAndConserves(t *testing.T) {
	suite := []Config{planConfig(PolicyStatic), planConfig(PolicyFeedback)}
	// The search must force tracing off per run, so suite entries carrying
	// their own levels are harmless.
	suite[1].DecisionTrace = TraceFull
	suite[1].CounterfactualK = 2
	cands := []SchedulerConfig{
		{Policy: PolicyStatic},
		{Policy: PolicyProportional},
		{Policy: PolicyFeedback},
		{Policy: PolicyFeedback, FeedbackGain: 3, Hysteresis: 0.05},
	}
	w := DefaultFitnessWeights()
	outs, err := SearchSchedulers(suite, cands, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(cands) {
		t.Fatalf("%d outcomes for %d candidates", len(outs), len(cands))
	}
	var handTuned *SearchOutcome
	for i := range outs {
		o := &outs[i]
		if i > 0 && outs[i-1].Fitness < o.Fitness {
			t.Fatalf("ranking not descending at %d: %v < %v", i, outs[i-1].Fitness, o.Fitness)
		}
		if len(o.PerTrace) != len(suite) {
			t.Fatalf("outcome %d has %d per-trace terms", i, len(o.PerTrace))
		}
		sum := 0.0
		for _, f := range o.PerTrace {
			sum += f
		}
		if math.Abs(sum-o.Fitness) > 1e-9 {
			t.Fatalf("outcome %d fitness %v != per-trace sum %v", i, o.Fitness, sum)
		}
		if o.Fairness < 0 || o.Fairness > 1 {
			t.Fatalf("outcome %d mean fairness %v outside [0, 1]", i, o.Fairness)
		}
		// Defaults are resolved for the report.
		if o.Scheduler.Policy == PolicyFeedback && (o.Scheduler.FeedbackGain == 0 || o.Scheduler.FeedbackDecay == 0) {
			t.Fatalf("outcome %d reports unresolved gains: %+v", i, o.Scheduler)
		}
		if o.Scheduler == (SchedulerConfig{Policy: PolicyFeedback}).WithDefaults() {
			handTuned = o
		}
	}
	if handTuned == nil {
		t.Fatal("hand-tuned feedback candidate missing from the outcomes")
	}
	// The winner is at least as fit as the hand-tuned baseline — the
	// acceptance guarantee the grid construction provides.
	if outs[0].Fitness < handTuned.Fitness {
		t.Fatalf("winner %v less fit than a participant %v", outs[0].Fitness, handTuned.Fitness)
	}
	// Deterministic: the same sweep reproduces the same ranking exactly.
	again, err := SearchSchedulers(suite, cands, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outs, again) {
		t.Fatal("repeated search produced a different ranking")
	}
}

func TestSearchSchedulersValidation(t *testing.T) {
	suite := []Config{planConfig(PolicyStatic)}
	cands := []SchedulerConfig{{Policy: PolicyStatic}}
	if _, err := SearchSchedulers(nil, cands, DefaultFitnessWeights()); err == nil {
		t.Error("empty suite accepted")
	}
	if _, err := SearchSchedulers(suite, nil, DefaultFitnessWeights()); err == nil {
		t.Error("empty candidate list accepted")
	}
	if _, err := SearchSchedulers(suite, cands, FitnessWeights{Violations: -1}); err == nil {
		t.Error("negative weights accepted")
	}
	bad := []SchedulerConfig{{Policy: Policy(9)}}
	if _, err := SearchSchedulers(suite, bad, DefaultFitnessWeights()); err == nil {
		t.Error("invalid candidate accepted")
	}
}
