package fleet

import (
	"math"
	"reflect"
	"testing"

	"stretch/internal/core"
	"stretch/internal/loadgen"
	"stretch/internal/monitor"
	"stretch/internal/stats"
	"stretch/internal/workload"
)

// lowLoadConfig is a small fleet whose single client runs well below the
// engage threshold the whole horizon: web-search at ~30% of its ~900 rps
// per-core saturation.
func lowLoadConfig() Config {
	return Config{
		Servers: 2, CoresPerServer: 4,
		Traffic: loadgen.Traffic{
			Windows: 12, WindowSec: 300,
			Clients: []loadgen.Client{{
				Name: "search", Service: workload.WebSearch, Fraction: 1,
				Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 280 * 8}, Poisson: true},
			}},
		},
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 300, Seed: 1,
	}
}

func TestFleetGainPositiveBelowEngageThreshold(t *testing.T) {
	res, err := Run(lowLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchGain <= 0 {
		t.Fatalf("batch gain %v must be positive when load sits below the engage threshold", res.BatchGain)
	}
	if res.BatchCoreHoursGained <= 0 {
		t.Fatalf("batch core-hours gained %v must be positive", res.BatchCoreHoursGained)
	}
	// At 30% load the controller should spend nearly the whole horizon in
	// B-mode (the first windows pay the engage hysteresis).
	if res.EngagedCoreHours < 0.7*res.TotalCoreHours {
		t.Fatalf("engaged only %.1f of %.1f core-hours at idle load",
			res.EngagedCoreHours, res.TotalCoreHours)
	}
	if res.ViolationWindows != 0 {
		t.Fatalf("%d QoS violations at 30%% load", res.ViolationWindows)
	}
	if res.Cores != 8 || len(res.Clients) != 1 || res.Clients[0].Cores != 8 {
		t.Fatalf("fleet shape wrong: %+v", res)
	}
	if res.Clients[0].P99Ms <= 0 || res.Clients[0].P999Ms < res.Clients[0].P99Ms {
		t.Fatalf("tail aggregation wrong: p99=%v p99.9=%v", res.Clients[0].P99Ms, res.Clients[0].P999Ms)
	}
}

func TestFleetDeterministicUnderSeed(t *testing.T) {
	a, err := Run(lowLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(lowLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different aggregate metrics")
	}
	diff := lowLoadConfig()
	diff.Seed = 2
	c, err := Run(diff)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Clients[0].P99Ms, c.Clients[0].P99Ms) &&
		reflect.DeepEqual(a.EngagedCoreHours, c.EngagedCoreHours) &&
		a.BatchCoreHoursGained == c.BatchCoreHoursGained {
		t.Fatal("different seeds produced suspiciously identical metrics")
	}
}

func TestFleetIndependentOfWorkerCount(t *testing.T) {
	one := lowLoadConfig()
	one.Workers = 1
	many := lowLoadConfig()
	many.Workers = 7
	a, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(many)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("worker count perturbed the results")
	}
}

func TestFleetHighLoadEngagesLess(t *testing.T) {
	low, err := Run(lowLoadConfig())
	if err != nil {
		t.Fatal(err)
	}
	hi := lowLoadConfig()
	// ~97% of the ~941 rps per-core saturation: past the knee, where the
	// tail leaves no slack.
	hi.Traffic.Clients[0].Spec.Shape = loadgen.Constant{Rate: 910 * 8}
	high, err := Run(hi)
	if err != nil {
		t.Fatal(err)
	}
	if high.EngagedCoreHours >= low.EngagedCoreHours {
		t.Fatalf("high load engaged %.1f core-hours >= low load's %.1f",
			high.EngagedCoreHours, low.EngagedCoreHours)
	}
	if high.BatchGain >= low.BatchGain {
		t.Fatalf("high load batch gain %v >= low load's %v", high.BatchGain, low.BatchGain)
	}
}

func TestFleetMultiClientAggregation(t *testing.T) {
	cfg := lowLoadConfig()
	cfg.Traffic.Clients = []loadgen.Client{
		{
			Name: "search", Service: workload.WebSearch, Fraction: 0.5, SLO: loadgen.SLOStrict,
			Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 280 * 4}, Poisson: true},
		},
		{
			Name: "kv", Service: workload.DataServing, Fraction: 0.5,
			Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 1000 * 4}, Poisson: true},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clients) != 2 {
		t.Fatalf("%d client aggregates", len(res.Clients))
	}
	if res.Clients[0].Cores+res.Clients[1].Cores != 8 {
		t.Fatalf("core split %d+%d != 8", res.Clients[0].Cores, res.Clients[1].Cores)
	}
	ws := workload.Services()[workload.WebSearch]
	if res.Clients[0].TargetMs != ws.QoSTargetMs*loadgen.SLOStrict.Scale() {
		t.Fatalf("strict SLO target %v", res.Clients[0].TargetMs)
	}
	total := 0
	for _, cm := range res.Clients {
		total += cm.ViolationWindows
	}
	if total != res.ViolationWindows {
		t.Fatal("violation windows do not sum")
	}
}

// TestClientWithZeroCoreWindows pins the edge case of a client squeezed to
// zero core-windows: with the min-core floor explicitly disabled and no
// offered load, the elastic allocation gives it nothing, and its metrics
// must report NaN-safe zeros rather than panicking on an empty sample.
func TestClientWithZeroCoreWindows(t *testing.T) {
	cfg := lowLoadConfig()
	cfg.Traffic.Clients = []loadgen.Client{
		{
			Name: "busy", Service: workload.WebSearch, Fraction: 0.5,
			Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 280 * 8}, Poisson: true},
		},
		{
			Name: "ghost", Service: workload.DataServing, Fraction: 0.5,
			Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 1e-12}},
		},
	}
	cfg.Scheduler = SchedulerConfig{Policy: PolicyProportional, NoMinCores: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ghost := res.Clients[1]
	if ghost.CoreWindows != 0 {
		t.Fatalf("with the floor disabled and ~zero demand the ghost still held %d core-windows", ghost.CoreWindows)
	}
	if ghost.P99Ms != 0 || ghost.P999Ms != 0 {
		t.Fatalf("zero-core-window client reports non-zero tails: p99=%v p99.9=%v", ghost.P99Ms, ghost.P999Ms)
	}
	if math.IsNaN(ghost.P99Ms) || math.IsNaN(ghost.P999Ms) || math.IsNaN(res.BatchGain) {
		t.Fatalf("NaN leaked into metrics: %+v", res)
	}
	if ghost.ViolationWindows != 0 || ghost.EngagedCoreHours != 0 {
		t.Fatalf("zero-core-window client accrued activity: %+v", ghost)
	}
}

// TestWindowTraceConsistency checks the per-window series against the
// aggregate result: per-window violation and core counts must sum to the
// fleet totals, and slack must mirror the measured tails.
func TestWindowTraceConsistency(t *testing.T) {
	cfg := lowLoadConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WindowTrace) != res.Windows {
		t.Fatalf("%d trace entries for %d windows", len(res.WindowTrace), res.Windows)
	}
	viol, serving, drained, parked, idle := 0, 0, 0, 0, 0
	for w, o := range res.WindowTrace {
		if o.Window != w {
			t.Fatalf("trace entry %d labelled window %d", w, o.Window)
		}
		if got := o.ServingCores + o.DrainedCores + o.ParkedCores + o.IdleCores; got != res.Cores {
			t.Fatalf("window %d partitions %d cores, want %d", w, got, res.Cores)
		}
		viol += o.Violations
		serving += o.ServingCores
		drained += o.DrainedCores
		parked += o.ParkedCores
		idle += o.IdleCores
		for ci, co := range o.Clients {
			if co.Cores == 0 {
				continue
			}
			if co.MaxTailMs < co.MeanTailMs || co.TailP99Ms > co.MaxTailMs {
				t.Fatalf("window %d client %d tail summary inconsistent: %+v", w, ci, co)
			}
			// The window's mean monitor slack must agree with the mean
			// tail: slack = (target - tail)/target.
			want := (res.Clients[ci].TargetMs - co.MeanTailMs) / res.Clients[ci].TargetMs
			if diff := co.MeanSlack - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("window %d client %d slack %v, want %v", w, ci, co.MeanSlack, want)
			}
		}
	}
	if viol != res.ViolationWindows {
		t.Fatalf("trace violations %d != aggregate %d", viol, res.ViolationWindows)
	}
	if drained != res.DrainedCoreWindows || parked != res.ParkedCoreWindows || idle != res.IdleCoreWindows {
		t.Fatalf("trace drained/parked/idle %d/%d/%d != aggregate %d/%d/%d",
			drained, parked, idle, res.DrainedCoreWindows, res.ParkedCoreWindows, res.IdleCoreWindows)
	}
	total := 0
	for _, cm := range res.Clients {
		total += cm.CoreWindows
	}
	if serving != total {
		t.Fatalf("trace serving core-windows %d != client sum %d", serving, total)
	}
}

func TestFleetValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.CoresPerServer = -1 },
		func(c *Config) { c.Traffic.Clients = nil },
		func(c *Config) { c.BatchSpeedupB = -0.1 },
		func(c *Config) { c.LSSlowdownB = 1 },
		func(c *Config) { c.QModeBatchCost = -0.2 },
		func(c *Config) { c.WindowRequests = -5 },
		func(c *Config) { c.Traffic.Clients[0].Service = "no-such-service" },
		func(c *Config) {
			c.Servers = 1
			c.CoresPerServer = 1
			c.Traffic.Clients = append(c.Traffic.Clients, loadgen.Client{Name: "x", Service: workload.WebSearch, Fraction: 0.0001, Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 1}}})
		},
	}
	for i, mutate := range bad {
		cfg := lowLoadConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAssignCores(t *testing.T) {
	mk := func(fracs ...float64) []loadgen.Client {
		out := make([]loadgen.Client, len(fracs))
		for i, f := range fracs {
			out[i] = loadgen.Client{Fraction: f}
		}
		return out
	}
	if got := assignCores(mk(0.5, 0.25, 0.25), 8); !reflect.DeepEqual(got, []int{4, 2, 2}) {
		t.Fatalf("even split: %v", got)
	}
	// Remainders distribute largest-first when fully subscribed.
	got := assignCores(mk(0.5, 0.3, 0.2), 10)
	if got[0]+got[1]+got[2] != 10 {
		t.Fatalf("fully subscribed fleet left cores unassigned: %v", got)
	}
	// A tiny client still gets one core, reclaimed from the largest.
	got = assignCores(mk(0.9, 0.05, 0.05), 10)
	if got[1] < 1 || got[2] < 1 || got[0]+got[1]+got[2] != 10 {
		t.Fatalf("tiny clients starved or fleet oversubscribed: %v", got)
	}
	// Under-subscribed traffic leaves cores idle.
	got = assignCores(mk(0.25), 8)
	if got[0] != 2 {
		t.Fatalf("under-subscribed: %v", got)
	}
}

func TestThresholdTimeline(t *testing.T) {
	loads := []float64{0.2, 0.9, 0.84, 0.86}
	modes, rel, engaged, err := ThresholdTimeline(loads, 0.85, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	wantModes := []core.Mode{core.ModeB, core.ModeBaseline, core.ModeB, core.ModeBaseline}
	if !reflect.DeepEqual(modes, wantModes) {
		t.Fatalf("modes %v", modes)
	}
	if rel[0] != 1.10 || rel[1] != 1 || engaged != 2 {
		t.Fatalf("rel %v engaged %d", rel, engaged)
	}
	if _, _, _, err := ThresholdTimeline(loads, 0, 0.1); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, _, _, err := ThresholdTimeline(loads, 0.85, -1); err == nil {
		t.Error("negative speedup accepted")
	}
}

func TestControlledTimelineValidation(t *testing.T) {
	ctl, err := monitor.New(monitor.DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	tail := func(load float64, mode core.Mode) float64 { return 10 }
	if _, _, err := ControlledTimeline([]float64{0.5}, ctl, 0, tail); err == nil {
		t.Error("zero subwindows accepted")
	}
	if _, _, err := ControlledTimeline([]float64{0.5}, nil, 1, tail); err == nil {
		t.Error("nil controller accepted")
	}
	if _, _, err := ControlledTimeline([]float64{0.5}, ctl, 1, nil); err == nil {
		t.Error("nil tail model accepted")
	}
	modes, frac, err := ControlledTimeline([]float64{0.2, 0.2, 0.2, 0.2}, ctl, 4, tail)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 4 || len(frac) != 4 {
		t.Fatalf("shape %d/%d", len(modes), len(frac))
	}
	if modes[3] != core.ModeB || frac[3] != 1 {
		t.Fatalf("sustained slack did not engage B: %v %v", modes, frac)
	}
}

func TestPeakRPSPerCore(t *testing.T) {
	p, err := PeakRPSPerCore(workload.WebSearch, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Saturation is Workers×1000/MeanServiceMs ≈ 941 rps; peak must be a
	// large fraction of it but below.
	if p < 400 || p > 941 {
		t.Fatalf("peak per-core rate %v implausible", p)
	}
	if _, err := PeakRPSPerCore("nope", 2000, 1); err == nil {
		t.Fatal("unknown service accepted")
	}
}

// TestTailEstimatorHistogramTracksExact is the fleet-level accuracy check:
// the histogram estimator (the default) must reproduce the exact
// estimator's client and fleet-wide tails within the compounded bucket
// resolution — the per-window QoS quantile and the aggregate quantile each
// contribute at most one bucket width of error.
func TestTailEstimatorHistogramTracksExact(t *testing.T) {
	ex := lowLoadConfig()
	ex.TailEstimator = stats.EstimatorExact
	hist := lowLoadConfig() // zero value: EstimatorDefault resolves to histogram
	a, err := Run(ex)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hist)
	if err != nil {
		t.Fatal(err)
	}
	if a.TailEstimator != stats.EstimatorExact || b.TailEstimator != stats.EstimatorHistogram {
		t.Fatalf("estimator echo wrong: %v / %v", a.TailEstimator, b.TailEstimator)
	}
	// Two quantisation levels compound: per-window QoS quantile plus the
	// aggregate quantile over window tails.
	tol := 2 * 2 * stats.NewTailHistogram().Resolution()
	rel := func(got, want float64) float64 { return math.Abs(got-want) / want }
	for _, pair := range [][2]float64{
		{b.Clients[0].P99Ms, a.Clients[0].P99Ms},
		{b.Clients[0].P999Ms, a.Clients[0].P999Ms},
		{b.FleetP99Ms, a.FleetP99Ms},
		{b.FleetP999Ms, a.FleetP999Ms},
	} {
		if pair[1] <= 0 {
			t.Fatalf("degenerate exact tail %v", pair[1])
		}
		if r := rel(pair[0], pair[1]); r > tol {
			t.Errorf("histogram tail %v vs exact %v: relative error %.3f > %.3f",
				pair[0], pair[1], r, tol)
		}
	}
	// The estimator changes how tails are summarised, never what was
	// simulated: mode decisions at 30% load sit far from any threshold, so
	// the physical aggregates must agree exactly.
	if a.EngagedCoreHours != b.EngagedCoreHours || a.BatchCoreHoursGained != b.BatchCoreHoursGained ||
		a.Switches != b.Switches || a.ViolationWindows != b.ViolationWindows {
		t.Fatalf("estimator perturbed physical aggregates:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFleetWideTailsOrdered checks the new datacenter-level tail report:
// populated under both estimators, with p99.9 at or above p99 and at or
// above every client's share-weighted contribution floor of 0.
func TestFleetWideTailsOrdered(t *testing.T) {
	for _, est := range []stats.TailEstimator{stats.EstimatorExact, stats.EstimatorHistogram} {
		cfg := lowLoadConfig()
		cfg.TailEstimator = est
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FleetP99Ms <= 0 || res.FleetP999Ms < res.FleetP99Ms {
			t.Fatalf("%v: fleet tails wrong: p99=%v p99.9=%v", est, res.FleetP99Ms, res.FleetP999Ms)
		}
	}
}

func TestFleetRejectsUnknownEstimator(t *testing.T) {
	cfg := lowLoadConfig()
	cfg.TailEstimator = stats.TailEstimator(7)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}
