package fleet

import (
	"math"
	"reflect"
	"testing"

	"stretch/internal/loadgen"
	"stretch/internal/stats"
	"stretch/internal/workload"
)

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"":             PolicyStatic,
		"static":       PolicyStatic,
		"proportional": PolicyProportional,
		"p2c":          PolicyP2C,
		"feedback":     PolicyFeedback,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Errorf("round trip %q -> %q", s, got.String())
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSchedulerConfigValidate(t *testing.T) {
	if err := (SchedulerConfig{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	bad := []SchedulerConfig{
		{Policy: Policy(9)},
		{Policy: Policy(-1)},
		{MinCores: -1},
		{Hysteresis: -0.1},
		{Hysteresis: 1},
		{MigrationPenalty: -0.5},
		{MigrationPenalty: 1},
		{NoMinCores: true, MinCores: 2},
		{NoHysteresis: true, Hysteresis: 0.2},
		{NoMigrationPenalty: true, MigrationPenalty: 0.1},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, sc)
		}
	}
}

// TestSchedulerConfigZeroVsUnset pins the explicit zero-vs-unset
// semantics: a zero field still defaults (so existing configs keep their
// meaning), while the No* flags pin the zero as literal.
func TestSchedulerConfigZeroVsUnset(t *testing.T) {
	d := (SchedulerConfig{}).withDefaults()
	if d.MinCores != defaultMinCores || d.Hysteresis != defaultHysteresis ||
		d.MigrationPenalty != defaultMigrationPenalty {
		t.Fatalf("zero config did not default: %+v", d)
	}
	z := SchedulerConfig{NoMinCores: true, NoHysteresis: true, NoMigrationPenalty: true}
	if err := z.Validate(); err != nil {
		t.Fatalf("explicit-zero config rejected: %v", err)
	}
	zd := z.withDefaults()
	if zd.MinCores != 0 || zd.Hysteresis != 0 || zd.MigrationPenalty != 0 {
		t.Fatalf("explicit zeros were overwritten by defaults: %+v", zd)
	}
	// Non-zero values pass through untouched either way.
	nz := SchedulerConfig{MinCores: 3, Hysteresis: 0.5, MigrationPenalty: 0.4}.withDefaults()
	if nz.MinCores != 3 || nz.Hysteresis != 0.5 || nz.MigrationPenalty != 0.4 {
		t.Fatalf("non-zero fields rewritten: %+v", nz)
	}
}

// TestNoHysteresisFollowsEveryDrift checks that a genuinely disabled
// hysteresis rebalances on any demand drift (the former Hysteresis: 0
// silently re-enabled the 0.1 default).
func TestNoHysteresisFollowsEveryDrift(t *testing.T) {
	cfg := planConfig(PolicyProportional)
	cfg.Scheduler.NoHysteresis = true
	p := mustPlan(t, cfg)
	if p.migrations == 0 {
		t.Fatal("no migrations with hysteresis explicitly disabled")
	}
}

// TestNoMigrationPenaltyIsFree checks a migrated core under an explicitly
// disabled penalty runs at full performance and keeps its B-mode bonus:
// the run must harvest at least the batch core-hours of the default
// penalty config.
func TestNoMigrationPenaltyIsFree(t *testing.T) {
	base := planConfig(PolicyProportional)
	withPenalty, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	free := planConfig(PolicyProportional)
	free.Scheduler.NoMigrationPenalty = true
	noPenalty, err := Run(free)
	if err != nil {
		t.Fatal(err)
	}
	if noPenalty.Migrations == 0 {
		t.Fatal("no migrations scheduled; penalty comparison is vacuous")
	}
	if noPenalty.BatchCoreHoursGained < withPenalty.BatchCoreHoursGained {
		t.Fatalf("free migrations gained %.3f batch core-hours < penalised %.3f",
			noPenalty.BatchCoreHoursGained, withPenalty.BatchCoreHoursGained)
	}
}

func TestAllocCounts(t *testing.T) {
	// Proportional to demand with a floor of 1.
	got := allocCounts([]float64{3, 1}, []float64{0.5, 0.5}, 8, 1)
	if !reflect.DeepEqual(got, []int{6, 2}) {
		t.Fatalf("proportional: %v", got)
	}
	// Zero demand falls back to fractions.
	got = allocCounts([]float64{0, 0}, []float64{0.75, 0.25}, 8, 1)
	if !reflect.DeepEqual(got, []int{6, 2}) {
		t.Fatalf("fraction fallback: %v", got)
	}
	// Floors hold even for zero-demand clients.
	got = allocCounts([]float64{10, 0}, []float64{0.5, 0.5}, 8, 2)
	if got[1] != 2 || got[0]+got[1] != 8 {
		t.Fatalf("floor: %v", got)
	}
	// Degraded fleet with fewer cores than clients×floor lowers the floor.
	got = allocCounts([]float64{1, 1, 1}, []float64{1, 1, 1}, 2, 1)
	if got[0]+got[1]+got[2] != 2 {
		t.Fatalf("degraded: %v", got)
	}
	// Every in-service core is allocated.
	got = allocCounts([]float64{0.01, 0.02}, []float64{0.1, 0.1}, 7, 1)
	if got[0]+got[1] != 7 {
		t.Fatalf("left cores idle: %v", got)
	}
	// Zero demand AND zero fractions: the d/sum shares would all be NaN
	// (0/0), making the remainder sort arbitrary. The guard splits evenly.
	got = allocCounts([]float64{0, 0}, []float64{0, 0}, 8, 1)
	if !reflect.DeepEqual(got, []int{4, 4}) {
		t.Fatalf("zero demand, zero fractions: %v", got)
	}
	// Odd spare cores land on the lowest-index clients, deterministically.
	got = allocCounts([]float64{0, 0, 0}, []float64{0, 0, 0}, 8, 1)
	if !reflect.DeepEqual(got, []int{3, 3, 2}) {
		t.Fatalf("zero demand odd spare: %v", got)
	}
}

// TestDrainRestoreNoMigrationsUnderStatic is the regression test for the
// restored-server penalty bug: under PolicyStatic nothing ever changes
// ownership, so a server draining and restoring must produce zero Migrated
// flags across the whole horizon — the restored cores resume the client
// they already served. (The old scheduler compared against a prev array
// that the drain had overwritten with the drained sentinel, so the restore
// window wrongly paid the migration penalty.)
func TestDrainRestoreNoMigrationsUnderStatic(t *testing.T) {
	cfg := planConfig(PolicyStatic)
	cfg.Scenario = loadgen.Scenario{Events: []loadgen.Event{
		{Kind: loadgen.EventDrain, Window: 3, Server: 0},
		{Kind: loadgen.EventRestore, Window: 7, Server: 0},
	}}
	p := mustPlan(t, cfg)
	for c := 0; c < 8; c++ {
		for w := 0; w < 10; w++ {
			if p.migrated[c][w] {
				t.Fatalf("core %d window %d pays a migration penalty under static ownership", c, w)
			}
		}
	}
	// The full closed-loop engine agrees, independently of the worker
	// count (the -race CI job runs this).
	run := func(workers int) Result {
		c := cfg
		c.Workers = workers
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	if base.Migrations != 0 {
		t.Fatalf("static drain/restore run reports %d migrations, want 0", base.Migrations)
	}
	if base.DrainedCoreWindows != 8 {
		t.Fatalf("drained core-windows %d != 8", base.DrainedCoreWindows)
	}
	for _, workers := range []int{5, 16} {
		if got := run(workers); !reflect.DeepEqual(base, got) {
			t.Fatalf("%d workers diverged from 1 worker", workers)
		}
	}
}

// planConfig is a small two-client fleet for schedule-level tests.
func planConfig(policy Policy) Config {
	return Config{
		Servers: 4, CoresPerServer: 2,
		Traffic: loadgen.Traffic{
			Windows: 10, WindowSec: 300,
			Clients: []loadgen.Client{
				{Name: "a", Service: workload.WebSearch, Fraction: 0.5,
					Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 400}}},
				{Name: "b", Service: workload.WebSearch, Fraction: 0.5,
					Spec: loadgen.Spec{Shape: loadgen.Ramp{StartRPS: 100, TargetRPS: 2400}}},
			},
		},
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 100, Seed: 1,
		Scheduler: SchedulerConfig{Policy: policy},
	}
}

// testPlan collects a stepper's full-horizon schedule into the shape the
// old precomputed plan had, for schedule-level assertions.
type testPlan struct {
	client             [][]int16
	rate               [][]float64
	migrated           [][]bool
	migrations         int
	drainedCoreWindows int
	parkedCoreWindows  int
	idleCoreWindows    int
}

// mustPlan drives the stepped scheduler over the whole horizon via the
// same path Run uses (open loop: no observations) and records the result.
func mustPlan(t *testing.T, cfg Config) *testPlan {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	tls, err := cfg.Traffic.Timelines(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	st := newStepper(cfg.Scheduler.withDefaults(), cfg.Autoscale.withDefaults())
	if err := st.Plan(PlanInput{
		Servers: cfg.Servers, CoresPerServer: cfg.CoresPerServer,
		Traffic: cfg.Traffic, Timelines: tls,
		Scenario: cfg.Scenario, Seed: cfg.Seed,
	}); err != nil {
		t.Fatal(err)
	}
	nCores := cfg.Servers * cfg.CoresPerServer
	p := &testPlan{
		client:   make([][]int16, nCores),
		rate:     make([][]float64, nCores),
		migrated: make([][]bool, nCores),
	}
	for c := 0; c < nCores; c++ {
		p.client[c] = make([]int16, cfg.Traffic.Windows)
		p.rate[c] = make([]float64, cfg.Traffic.Windows)
		p.migrated[c] = make([]bool, cfg.Traffic.Windows)
	}
	for w := 0; w < cfg.Traffic.Windows; w++ {
		asg := st.Step(w, nil)
		for c := 0; c < nCores; c++ {
			p.client[c][w] = asg.Client[c]
			p.rate[c][w] = asg.Rate[c]
			p.migrated[c][w] = asg.Migrated[c]
			switch {
			case asg.Client[c] == coreDrained:
				p.drainedCoreWindows++
			case asg.Client[c] == coreParked:
				p.parkedCoreWindows++
			case asg.Client[c] == coreIdle:
				p.idleCoreWindows++
			default:
				if asg.Migrated[c] {
					p.migrations++
				}
			}
		}
	}
	return p
}

func TestStaticPlanKeepsOwnership(t *testing.T) {
	p := mustPlan(t, planConfig(PolicyStatic))
	for c := 0; c < 8; c++ {
		want := int16(0)
		if c >= 4 {
			want = 1
		}
		for w := 0; w < 10; w++ {
			if p.client[c][w] != want {
				t.Fatalf("core %d window %d: client %d", c, w, p.client[c][w])
			}
		}
	}
	if p.migrations != 0 || p.drainedCoreWindows != 0 || p.idleCoreWindows != 0 {
		t.Fatalf("static uneventful plan has churn: %+v", p)
	}
	// Even split of each client's rate.
	if p.rate[0][0] != p.rate[3][0] || p.rate[0][0] != 100 {
		t.Fatalf("client a per-core rate %v", p.rate[0][0])
	}
}

func TestProportionalPlanFollowsDemand(t *testing.T) {
	p := mustPlan(t, planConfig(PolicyProportional))
	countB := func(w int) int {
		n := 0
		for c := 0; c < 8; c++ {
			if p.client[c][w] == 1 {
				n++
			}
		}
		return n
	}
	// Client b ramps from 100 to 2400 rps against a's constant 400: its
	// allocation must grow over the horizon.
	if first, last := countB(0), countB(9); last <= first {
		t.Fatalf("ramping client kept %d -> %d cores", first, last)
	}
	if p.migrations == 0 {
		t.Fatal("elastic reallocation recorded no migrations")
	}
	// Every in-service core serves someone.
	if p.idleCoreWindows != 0 {
		t.Fatalf("%d idle core-windows with subscribed traffic", p.idleCoreWindows)
	}
	// Conservation: each window's total routed rate equals offered load.
	tls, _ := planConfig(PolicyProportional).Traffic.Timelines(1)
	for w := 0; w < 10; w++ {
		total := 0.0
		for c := 0; c < 8; c++ {
			total += p.rate[c][w]
		}
		want := tls["a"][w] + tls["b"][w]
		if math.Abs(total-want) > 1e-9*want {
			t.Fatalf("window %d routes %v of %v offered", w, total, want)
		}
	}
}

func TestHysteresisLimitsChurn(t *testing.T) {
	cfg := planConfig(PolicyProportional)
	cfg.Scheduler.Hysteresis = 0.9 // nothing short of a drain moves cores
	p := mustPlan(t, cfg)
	if p.migrations != 0 {
		t.Fatalf("migrations %d under maximal hysteresis", p.migrations)
	}
	cfg.Scheduler.Hysteresis = 1e-12 // follow demand every window
	loose := mustPlan(t, cfg)
	if loose.migrations == 0 {
		t.Fatal("no migrations with hysteresis disabled")
	}
}

func TestMinCoreFloorHolds(t *testing.T) {
	cfg := planConfig(PolicyProportional)
	// Client a's demand is dwarfed by b's: floor must still hold.
	cfg.Traffic.Clients[0].Spec.Shape = loadgen.Constant{Rate: 1}
	cfg.Traffic.Clients[1].Spec.Shape = loadgen.Constant{Rate: 5000}
	cfg.Scheduler.MinCores = 2
	p := mustPlan(t, cfg)
	for w := 0; w < 10; w++ {
		n := 0
		for c := 0; c < 8; c++ {
			if p.client[c][w] == 0 {
				n++
			}
		}
		if n < 2 {
			t.Fatalf("window %d: client a holds %d cores < floor 2", w, n)
		}
	}
}

func TestDrainReroutesLoad(t *testing.T) {
	for _, policy := range []Policy{PolicyStatic, PolicyProportional, PolicyP2C} {
		cfg := planConfig(policy)
		cfg.Scenario = loadgen.Scenario{Events: []loadgen.Event{
			{Kind: loadgen.EventDrain, Window: 3, Server: 0},
			{Kind: loadgen.EventRestore, Window: 7, Server: 0},
		}}
		p := mustPlan(t, cfg)
		// Server 0's cores (0,1) are out of service during [3,7).
		for _, c := range []int{0, 1} {
			for w := 3; w < 7; w++ {
				if p.client[c][w] != coreDrained {
					t.Fatalf("%v: core %d window %d not drained: %d", policy, c, w, p.client[c][w])
				}
				if p.rate[c][w] != 0 {
					t.Fatalf("%v: drained core %d window %d still gets rate %v", policy, c, w, p.rate[c][w])
				}
			}
		}
		if p.drainedCoreWindows != 2*4 {
			t.Fatalf("%v: drained core-windows %d != 8", policy, p.drainedCoreWindows)
		}
		// The drained load visibly reroutes: surviving cores carry more
		// than before the drain, and offered load is conserved.
		tls, _ := cfg.Traffic.Timelines(cfg.Seed)
		for w := 3; w < 7; w++ {
			total := 0.0
			for c := 0; c < 8; c++ {
				total += p.rate[c][w]
			}
			want := tls["a"][w] + tls["b"][w]
			if math.Abs(total-want) > 1e-9*want {
				t.Fatalf("%v: window %d drops load: routes %v of %v", policy, w, total, want)
			}
		}
		// Client a's survivors during the static drain carry double rate.
		if policy == PolicyStatic {
			if p.rate[2][4] <= p.rate[2][2] {
				t.Fatalf("static: surviving core rate %v not above pre-drain %v", p.rate[2][4], p.rate[2][2])
			}
		}
	}
}

func TestP2CRoutesUnevenButConserves(t *testing.T) {
	p := mustPlan(t, planConfig(PolicyP2C))
	// Find client a's cores at window 0 and check p2c spread them unevenly
	// while conserving total load.
	var rates []float64
	total := 0.0
	for c := 0; c < 8; c++ {
		if p.client[c][0] == 0 {
			rates = append(rates, p.rate[c][0])
			total += p.rate[c][0]
		}
	}
	if len(rates) < 2 {
		t.Fatalf("client a has %d cores", len(rates))
	}
	if math.Abs(total-400) > 1e-9*400 {
		t.Fatalf("p2c drops load: %v of 400", total)
	}
	allEqual := true
	for _, r := range rates[1:] {
		if r != rates[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("p2c produced a perfectly even split; expected routing imbalance")
	}
}

func TestPerfGenerationsSlowTails(t *testing.T) {
	cfg := planConfig(PolicyStatic)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow := planConfig(PolicyStatic)
	// Client a's two servers (cores 0-3) are an older generation.
	slow.Scenario = loadgen.Scenario{Events: []loadgen.Event{
		{Kind: loadgen.EventPerf, Server: 0, Factor: 0.6},
		{Kind: loadgen.EventPerf, Server: 1, Factor: 0.6},
	}}
	res, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients[0].P99Ms <= base.Clients[0].P99Ms {
		t.Fatalf("older generation did not slow client a: %v vs %v",
			res.Clients[0].P99Ms, base.Clients[0].P99Ms)
	}
}

func TestSurgeRaisesOfferedLoad(t *testing.T) {
	cfg := planConfig(PolicyStatic)
	cfg.Scenario = loadgen.Scenario{Events: []loadgen.Event{
		{Kind: loadgen.EventSurge, Window: 2, Until: 5, Client: "a", Factor: 2},
	}}
	p := mustPlan(t, cfg)
	if p.rate[0][3] != 2*p.rate[0][1] {
		t.Fatalf("surge window rate %v vs pre-surge %v", p.rate[0][3], p.rate[0][1])
	}
}

// TestProportionalBeatsStaticOnMixedDay is the headline acceptance check:
// on a mixed diurnal day, elastic reallocation must harvest at least as
// many batch core-hours as the static split at no more QoS-violation
// windows.
func TestProportionalBeatsStaticOnMixedDay(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-request comparison")
	}
	const (
		servers, cores = 16, 8
		wph            = 4
		windows        = 24 * wph
	)
	nCores := float64(servers * cores)
	mk := func(policy Policy) Config {
		return Config{
			Servers: servers, CoresPerServer: cores,
			Traffic: loadgen.Traffic{
				Windows: windows, WindowSec: 3600.0 / wph,
				Clients: []loadgen.Client{
					{Name: "search", Service: workload.WebSearch, Fraction: 0.5,
						SLO: loadgen.SLOStrict,
						Spec: loadgen.Spec{Shape: loadgen.Diurnal{
							HourLoad: loadgen.WebSearchDay(),
							// ~0.85×saturation at peak on the static share.
							PeakRPS: 800 * nCores * 0.5, Smooth: true,
						}, Poisson: true}},
					{Name: "video", Service: workload.MediaStreaming, Fraction: 0.3,
						SLO: loadgen.SLORelaxed,
						Spec: loadgen.Spec{Shape: loadgen.Diurnal{
							HourLoad: loadgen.VideoDay(),
							PeakRPS:  170 * nCores * 0.3, Smooth: true,
						}, Poisson: true}},
					{Name: "kvstore", Service: workload.DataServing, Fraction: 0.2,
						Spec: loadgen.Spec{Shape: loadgen.Burst{
							Base: loadgen.Ramp{StartRPS: 0.3 * 4400 * nCores * 0.2,
								TargetRPS: 0.7 * 4400 * nCores * 0.2},
							Start: windows / 3, Length: wph / 2, Every: windows / 3,
							Magnitude: 1.8,
						}, Poisson: true}},
				},
			},
			BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
			WindowRequests: 200, Seed: 1,
			Scheduler: SchedulerConfig{Policy: policy},
		}
	}
	static, err := Run(mk(PolicyStatic))
	if err != nil {
		t.Fatal(err)
	}
	prop, err := Run(mk(PolicyProportional))
	if err != nil {
		t.Fatal(err)
	}
	if prop.BatchCoreHoursGained < static.BatchCoreHoursGained {
		t.Errorf("proportional gained %.1f batch core-hours < static's %.1f",
			prop.BatchCoreHoursGained, static.BatchCoreHoursGained)
	}
	if prop.ViolationWindows > static.ViolationWindows {
		t.Errorf("proportional violated %d windows > static's %d",
			prop.ViolationWindows, static.ViolationWindows)
	}
}

// --- Determinism: full-Result DeepEqual (including WindowTrace) across
// worker counts for every policy — closed-loop feedback included — with
// and without scenario events, under both tail estimators. The histogram
// estimator's sharded barrier merge must be exactly as worker-count-
// independent as the exact estimator's core-ordered sample.

func TestSchedulerDeterministicAcrossWorkerCounts(t *testing.T) {
	scenario := loadgen.Scenario{Events: []loadgen.Event{
		{Kind: loadgen.EventDrain, Window: 2, Server: 1},
		{Kind: loadgen.EventRestore, Window: 6, Server: 1},
		{Kind: loadgen.EventSurge, Window: 4, Until: 8, Client: "b", Factor: 1.5},
		{Kind: loadgen.EventPerf, Server: 3, Factor: 0.85},
	}}
	for _, policy := range []Policy{PolicyStatic, PolicyProportional, PolicyP2C, PolicyFeedback} {
		for _, est := range []stats.TailEstimator{stats.EstimatorExact, stats.EstimatorHistogram} {
			for _, withEvents := range []bool{false, true} {
				cfg := planConfig(policy)
				cfg.Traffic.Clients[0].Spec.Poisson = true
				cfg.Traffic.Clients[1].Spec.Poisson = true
				cfg.TailEstimator = est
				if withEvents {
					cfg.Scenario = scenario
				}
				one := cfg
				one.Workers = 1
				many := cfg
				many.Workers = 8
				a, err := Run(one)
				if err != nil {
					t.Fatalf("%v est=%v events=%v: %v", policy, est, withEvents, err)
				}
				b, err := Run(many)
				if err != nil {
					t.Fatalf("%v est=%v events=%v: %v", policy, est, withEvents, err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%v est=%v events=%v: worker count perturbed the results:\n%+v\nvs\n%+v",
						policy, est, withEvents, a, b)
				}
			}
		}
	}
}
