package fleet

import (
	"reflect"
	"testing"

	"stretch/internal/loadgen"
	"stretch/internal/stats"
)

func TestParseAutoscalePolicy(t *testing.T) {
	for s, want := range map[string]AutoscalePolicy{
		"":          AutoscaleOff,
		"off":       AutoscaleOff,
		"util":      AutoscaleUtil,
		"violation": AutoscaleViolation,
	} {
		got, err := ParseAutoscalePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseAutoscalePolicy(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Errorf("round trip %q -> %q", s, got.String())
		}
	}
	if _, err := ParseAutoscalePolicy("elastic"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestAutoscaleConfigValidate(t *testing.T) {
	if err := (AutoscaleConfig{}).Validate(4); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if err := (AutoscaleConfig{Policy: AutoscaleUtil, MinServers: 2}).Validate(4); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []AutoscaleConfig{
		{Policy: AutoscalePolicy(9)},
		{Policy: AutoscalePolicy(-1)},
		{Custom: fixedScale(1)}, // custom scaler with the off policy
		{Policy: AutoscaleUtil, MinServers: -1},
		{Policy: AutoscaleUtil, MinServers: 5},
		{Policy: AutoscaleUtil, TargetLow: 0.8, TargetHigh: 0.5},
		{Policy: AutoscaleUtil, TargetLow: -0.1},
		{Policy: AutoscaleUtil, StepServers: -1},
		{Policy: AutoscaleUtil, Cooldown: -1},
		{Policy: AutoscaleViolation, ViolationOut: -1},
		{Policy: AutoscaleViolation, SlackWindows: -1},
	}
	for i, a := range bad {
		if err := a.Validate(4); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, a)
		}
	}
}

// fixedScale is a custom Autoscaler that always wants k servers.
type fixedScale int

func (f fixedScale) DesiredServers(int, *WindowObservation, ScaleState) int { return int(f) }

// windowScale is a custom Autoscaler scripted per window.
type windowScale func(w int) int

func (f windowScale) DesiredServers(w int, _ *WindowObservation, _ ScaleState) int { return f(w) }

// TestAutoscaleWarmupCost pins the warm-up semantics on the open-loop
// schedule: a scripted autoscaler parks the highest-index server for
// windows 2-3 under PolicyStatic. The parked cores keep their owner, so
// the only migration cost over the whole horizon is the warm-up the two
// rejoining cores pay at window 4 — resuming the same client is otherwise
// free.
func TestAutoscaleWarmupCost(t *testing.T) {
	cfg := planConfig(PolicyStatic)
	cfg.Autoscale = AutoscaleConfig{Policy: AutoscaleUtil, Custom: windowScale(func(w int) int {
		if w == 2 || w == 3 {
			return 3
		}
		return 4
	})}
	p := mustPlan(t, cfg)
	// Server 3 (cores 6,7) parks for windows 2 and 3.
	for _, c := range []int{6, 7} {
		for w := 0; w < 10; w++ {
			switch {
			case w == 2 || w == 3:
				if p.client[c][w] != coreParked {
					t.Fatalf("core %d window %d not parked: %d", c, w, p.client[c][w])
				}
				if p.rate[c][w] != 0 {
					t.Fatalf("parked core %d window %d still gets rate %v", c, w, p.rate[c][w])
				}
			default:
				if p.client[c][w] != 1 {
					t.Fatalf("core %d window %d lost its owner: %d", c, w, p.client[c][w])
				}
			}
			if want := w == 4; p.migrated[c][w] != want {
				t.Fatalf("core %d window %d migrated=%v, want %v (warm-up only at rejoin)",
					c, w, p.migrated[c][w], want)
			}
		}
	}
	if p.parkedCoreWindows != 4 {
		t.Fatalf("parked core-windows %d != 4", p.parkedCoreWindows)
	}
	if p.migrations != 2 {
		t.Fatalf("migrations %d != 2 (one warm-up per rejoining core)", p.migrations)
	}
}

// TestAutoscaleComposesWithScenarioDrain: a scenario-drained server is
// accounted as drained (not parked) even while the fleet is autoscaled,
// the autoscaler can never unpark it, and — since the drain brings the
// server back to the same owner — its restore is migration-free.
func TestAutoscaleComposesWithScenarioDrain(t *testing.T) {
	cfg := planConfig(PolicyStatic)
	cfg.Scenario = loadgen.Scenario{Events: []loadgen.Event{
		{Kind: loadgen.EventDrain, Window: 2, Server: 3},
		{Kind: loadgen.EventRestore, Window: 6, Server: 3},
	}}
	cfg.Autoscale = AutoscaleConfig{Policy: AutoscaleUtil, Custom: fixedScale(4)}
	p := mustPlan(t, cfg)
	for _, c := range []int{6, 7} {
		for w := 2; w < 6; w++ {
			if p.client[c][w] != coreDrained {
				t.Fatalf("core %d window %d: %d, want drained (scenario wins over autoscaler)",
					c, w, p.client[c][w])
			}
		}
		if p.client[c][6] != 1 || p.migrated[c][6] {
			t.Fatalf("core %d restore: client %d migrated=%v, want its old owner penalty-free",
				c, p.client[c][6], p.migrated[c][6])
		}
	}
	if p.parkedCoreWindows != 0 || p.drainedCoreWindows != 8 {
		t.Fatalf("bookkeeping: %d parked, %d drained core-windows, want 0 and 8",
			p.parkedCoreWindows, p.drainedCoreWindows)
	}
	if p.migrations != 0 {
		t.Fatalf("migrations %d != 0", p.migrations)
	}
}

// TestUtilAutoscaler unit-tests the util policy's stepping logic directly.
func TestUtilAutoscaler(t *testing.T) {
	a := &utilAuto{cfg: AutoscaleConfig{Policy: AutoscaleUtil, Cooldown: 2}.withDefaults()}
	st := func(up int, demand float64) ScaleState {
		return ScaleState{AvailableServers: 8, UpServers: up, CoresPerServer: 4, DemandCores: demand}
	}
	// Window 0 jumps straight to the demand-implied size: mid-band 0.6,
	// 6 cores' worth of demand / 2.4 per server -> 3 servers.
	if got := a.DesiredServers(0, nil, st(8, 6)); got != 3 {
		t.Fatalf("window-0 sizing: %d, want 3", got)
	}
	// Utilisation inside the band: hold.
	if got := a.DesiredServers(1, nil, st(3, 6)); got != 3 {
		t.Fatalf("in-band hold: %d, want 3", got)
	}
	// Above the band: one step out, then the cooldown blocks the next.
	if got := a.DesiredServers(2, nil, st(3, 12)); got != 4 {
		t.Fatalf("scale-out: %d, want 4", got)
	}
	if got := a.DesiredServers(3, nil, st(4, 16)); got != 4 {
		t.Fatalf("cooldown violated: %d, want 4", got)
	}
	// Zero demand holds at least one server once the cooldown clears.
	b := &utilAuto{cfg: AutoscaleConfig{Policy: AutoscaleUtil}.withDefaults()}
	if got := b.DesiredServers(0, nil, st(8, 0)); got != 1 {
		t.Fatalf("zero-demand sizing: %d, want 1", got)
	}
	// Below the band: one step in.
	c := &utilAuto{cfg: AutoscaleConfig{Policy: AutoscaleUtil}.withDefaults()}
	if got := c.DesiredServers(1, nil, st(4, 1)); got != 3 {
		t.Fatalf("scale-in: %d, want 3", got)
	}
}

// TestViolationAutoscaler unit-tests the violation policy directly.
func TestViolationAutoscaler(t *testing.T) {
	a := &violationAuto{cfg: AutoscaleConfig{
		Policy: AutoscaleViolation, Cooldown: 2, SlackWindows: 2,
	}.withDefaults()}
	st := func(up int, demand float64) ScaleState {
		return ScaleState{AvailableServers: 8, UpServers: up, CoresPerServer: 4, DemandCores: demand}
	}
	// No measurement yet: start with everything available.
	if got := a.DesiredServers(0, nil, st(0, 10)); got != 8 {
		t.Fatalf("initial sizing: %d, want 8", got)
	}
	// A violating window scales out; the cooldown blocks an immediate repeat.
	if got := a.DesiredServers(1, &WindowObservation{Violations: 3}, st(4, 10)); got != 5 {
		t.Fatalf("violation scale-out: %d, want 5", got)
	}
	if got := a.DesiredServers(2, &WindowObservation{Violations: 3}, st(5, 10)); got != 5 {
		t.Fatalf("cooldown violated: %d, want 5", got)
	}
	// Scale-in needs SlackWindows consecutive quiet, underutilised windows.
	quiet := &WindowObservation{}
	if got := a.DesiredServers(3, quiet, st(5, 1)); got != 5 {
		t.Fatalf("slack window 1 already scaled in: %d", got)
	}
	if got := a.DesiredServers(4, quiet, st(5, 1)); got != 4 {
		t.Fatalf("slack scale-in: %d, want 4", got)
	}
	// A violation resets the slack run.
	if got := a.DesiredServers(5, quiet, st(4, 1)); got != 4 {
		t.Fatalf("slack window 1 after reset scaled in: %d", got)
	}
	if got := a.DesiredServers(6, &WindowObservation{Violations: 1}, st(4, 1)); got != 5 {
		t.Fatalf("post-cooldown violation did not scale out: %d", got)
	}
}

// TestAutoscaleRunParksOffPeak: a full closed-loop run under the util
// policy on light traffic parks real capacity, reports it in the result
// partition, and echoes the policy.
func TestAutoscaleRunParksOffPeak(t *testing.T) {
	cfg := planConfig(PolicyProportional)
	cfg.Autoscale = AutoscaleConfig{Policy: AutoscaleUtil}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Autoscale != AutoscaleUtil {
		t.Fatalf("result echoes autoscale %v", res.Autoscale)
	}
	if res.ParkedCoreWindows == 0 {
		t.Fatal("util autoscaler parked nothing on light traffic")
	}
	parked := 0
	for _, o := range res.WindowTrace {
		parked += o.ParkedCores
		if o.ServingCores+o.DrainedCores+o.ParkedCores+o.IdleCores != res.Cores {
			t.Fatalf("window %d partition does not cover the fleet: %+v", o.Window, o)
		}
	}
	if parked != res.ParkedCoreWindows {
		t.Fatalf("window trace parked sum %d != result %d", parked, res.ParkedCoreWindows)
	}
	// Autoscaling off on the same config reports no parked capacity and no
	// policy echo — the zero-value config is byte-identical to pre-
	// autoscaling behaviour.
	off, err := Run(planConfig(PolicyProportional))
	if err != nil {
		t.Fatal(err)
	}
	if off.Autoscale != AutoscaleOff || off.ParkedCoreWindows != 0 {
		t.Fatalf("autoscale-off run reports %v / %d parked", off.Autoscale, off.ParkedCoreWindows)
	}
}

// TestAutoscaleDeterministicAcrossWorkerCounts extends the determinism
// contract to autoscaled runs: both built-in policies, the closed-loop
// scheduler, scenario events and both estimators — bit-identical results
// regardless of the worker pool size.
func TestAutoscaleDeterministicAcrossWorkerCounts(t *testing.T) {
	scenario := loadgen.Scenario{Events: []loadgen.Event{
		{Kind: loadgen.EventDrain, Window: 2, Server: 1},
		{Kind: loadgen.EventRestore, Window: 6, Server: 1},
		{Kind: loadgen.EventSurge, Window: 4, Until: 8, Client: "b", Factor: 1.5},
	}}
	for _, auto := range []AutoscalePolicy{AutoscaleUtil, AutoscaleViolation} {
		for _, policy := range []Policy{PolicyStatic, PolicyFeedback} {
			for _, withEvents := range []bool{false, true} {
				cfg := planConfig(policy)
				cfg.Traffic.Clients[0].Spec.Poisson = true
				cfg.Traffic.Clients[1].Spec.Poisson = true
				cfg.TailEstimator = stats.EstimatorHistogram
				cfg.Autoscale = AutoscaleConfig{Policy: auto}
				if withEvents {
					cfg.Scenario = scenario
				}
				one := cfg
				one.Workers = 1
				many := cfg
				many.Workers = 8
				a, err := Run(one)
				if err != nil {
					t.Fatalf("%v/%v events=%v: %v", auto, policy, withEvents, err)
				}
				b, err := Run(many)
				if err != nil {
					t.Fatalf("%v/%v events=%v: %v", auto, policy, withEvents, err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%v/%v events=%v: worker count perturbed the results", auto, policy, withEvents)
				}
			}
		}
	}
}
