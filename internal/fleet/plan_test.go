package fleet

import (
	"strings"
	"testing"

	"stretch/internal/loadgen"
	"stretch/internal/workload"
)

// planTestConfig is a capacity-search template: a fixed offered load
// (constant rate, independent of the fleet size, like a recorded trace)
// that saturates a 2-server fleet and relaxes as servers are added.
func planTestConfig() Config {
	return Config{
		Servers: 6, CoresPerServer: 2,
		Traffic: loadgen.Traffic{
			Windows: 8, WindowSec: 300,
			Clients: []loadgen.Client{{
				Name: "search", Service: workload.WebSearch, Fraction: 1,
				Spec: loadgen.Spec{Shape: loadgen.Constant{Rate: 910 * 4}, Poisson: true},
			}},
		},
		BatchSpeedupB: 0.13, LSSlowdownB: 0.07,
		WindowRequests: 200, Seed: 1,
	}
}

// TestPlanCapacityMatchesLinearScan: over a range where violations are
// non-increasing in fleet size, the bisection lands on exactly the fleet
// an exhaustive scan would pick, and records every probe it ran.
func TestPlanCapacityMatchesLinearScan(t *testing.T) {
	cfg := planTestConfig()
	viol := make(map[int]int)
	prev := -1
	for k := 1; k <= cfg.Servers; k++ {
		c := cfg
		c.Servers = k
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		viol[k] = res.ViolationWindows
		if prev >= 0 && res.ViolationWindows > prev {
			t.Fatalf("synthetic load not monotone: %d servers has %d violations, %d had %d",
				k, res.ViolationWindows, k-1, prev)
		}
		prev = res.ViolationWindows
	}
	if viol[1] == 0 {
		t.Fatal("synthetic load never violates; search is degenerate")
	}
	// A budget sitting strictly between the extremes exercises real
	// bisection steps; derive it from the measured curve so the test does
	// not bake in simulator constants.
	budget := (viol[1] + viol[cfg.Servers]) / 2
	want := 0
	for k := 1; k <= cfg.Servers; k++ {
		if viol[k] <= budget {
			want = k
			break
		}
	}
	plan, err := PlanCapacity(CapacitySpec{Config: cfg, MaxViolationWindows: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.Servers != want || plan.Cores != want*cfg.CoresPerServer {
		t.Fatalf("bisection picked %d servers (feasible=%v), linear scan says %d", plan.Servers, plan.Feasible, want)
	}
	if plan.ViolationWindows != viol[want] {
		t.Fatalf("plan reports %d violations at %d servers, measured %d", plan.ViolationWindows, want, viol[want])
	}
	if len(plan.Probes) < 2 || plan.Probes[0].Servers != cfg.Servers || plan.Probes[1].Servers != 1 {
		t.Fatalf("probe order wrong (want ceiling then floor): %+v", plan.Probes)
	}
	for _, pt := range plan.Probes {
		if pt.ViolationWindows != viol[pt.Servers] {
			t.Fatalf("probe at %d servers saw %d violations, direct run saw %d",
				pt.Servers, pt.ViolationWindows, viol[pt.Servers])
		}
		if pt.Met != (pt.ViolationWindows <= budget) {
			t.Fatalf("probe at %d servers mislabelled: %+v (budget %d)", pt.Servers, pt, budget)
		}
	}
}

// TestPlanCapacityFloorMet: when even the floor meets the budget, the
// search stops after probing the ceiling and the floor.
func TestPlanCapacityFloorMet(t *testing.T) {
	cfg := planTestConfig()
	cfg.Traffic.Clients[0].Spec.Shape = loadgen.Constant{Rate: 280 * 2}
	plan, err := PlanCapacity(CapacitySpec{Config: cfg, MinServers: 2, MaxViolationWindows: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.Servers != 2 {
		t.Fatalf("underloaded fleet should plan to the 2-server floor, got %+v", plan)
	}
	if len(plan.Probes) != 2 {
		t.Fatalf("floor-met search should stop after 2 probes, ran %d", len(plan.Probes))
	}
}

// TestPlanCapacityInfeasible: a budget the ceiling itself cannot meet is
// reported as infeasible after a single probe, with zero planned capacity.
func TestPlanCapacityInfeasible(t *testing.T) {
	cfg := planTestConfig()
	cfg.Traffic.Clients[0].Spec.Shape = loadgen.Constant{Rate: 2000 * 12}
	plan, err := PlanCapacity(CapacitySpec{Config: cfg, MaxViolationWindows: 0})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible || plan.Servers != 0 || plan.Cores != 0 {
		t.Fatalf("overloaded fleet should be infeasible, got %+v", plan)
	}
	if len(plan.Probes) != 1 || plan.Probes[0].Servers != cfg.Servers || plan.Probes[0].Met {
		t.Fatalf("infeasible search should stop after the ceiling probe: %+v", plan.Probes)
	}
}

// TestPlanCapacityValidation: malformed specs fail up front, before any
// probe run — including a template that is only invalid at the floor.
func TestPlanCapacityValidation(t *testing.T) {
	cases := []struct {
		name string
		spec CapacitySpec
		want string
	}{
		{"negative budget", CapacitySpec{Config: planTestConfig(), MaxViolationWindows: -1}, "negative SLO budget"},
		{"floor above ceiling", CapacitySpec{Config: planTestConfig(), MinServers: 7}, "invalid"},
		{"negative floor", CapacitySpec{Config: planTestConfig(), MinServers: -1}, "invalid"},
		{"floor too small for clients", func() CapacitySpec {
			cfg := planTestConfig()
			c := cfg.Traffic.Clients[0]
			c.Fraction = 1.0 / 3
			cfg.Traffic.Clients = []loadgen.Client{c, c, c}
			cfg.Traffic.Clients[0].Name, cfg.Traffic.Clients[1].Name, cfg.Traffic.Clients[2].Name = "a", "b", "c"
			return CapacitySpec{Config: cfg} // floor 1 server × 2 cores < 3 clients
		}(), "invalid at 1 servers"},
	}
	for _, tc := range cases {
		plan, err := PlanCapacity(tc.spec)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if len(plan.Probes) != 0 {
			t.Errorf("%s: ran %d probes before failing", tc.name, len(plan.Probes))
		}
	}
}
