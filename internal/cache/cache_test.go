package cache

import (
	"testing"
	"testing/quick"
)

func small() Config { return Config{SizeBytes: 4096, LineBytes: 64, Ways: 4} } // 16 sets

func TestHitAfterMiss(t *testing.T) {
	c := New(small())
	if c.Access(0x1000) {
		t.Fatal("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x1004) {
		t.Fatal("same-line access should hit")
	}
	acc, miss := c.Stats()
	if acc != 3 || miss != 1 {
		t.Fatalf("stats = %d/%d", acc, miss)
	}
	if c.MissRate() <= 0.3 || c.MissRate() >= 0.4 {
		t.Fatalf("miss rate = %v", c.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small())
	// 4 ways in one set: fill with 4 tags mapping to set 0.
	setStride := uint64(16 * 64) // sets × lineBytes
	for i := uint64(0); i < 4; i++ {
		c.Access(i * setStride)
	}
	// Touch line 0 to make line 1 the LRU victim.
	c.Access(0)
	c.Access(4 * setStride) // evicts line 1
	if !c.Probe(0) {
		t.Fatal("recently used line was evicted")
	}
	if c.Probe(1 * setStride) {
		t.Fatal("LRU line not evicted")
	}
	for _, a := range []uint64{2 * setStride, 3 * setStride, 4 * setStride} {
		if !c.Probe(a) {
			t.Fatalf("line %#x unexpectedly evicted", a)
		}
	}
}

func TestAssociativityBound(t *testing.T) {
	cfg := small()
	c := New(cfg)
	setStride := uint64(16 * 64)
	// Insert many conflicting lines into set 0.
	for i := uint64(0); i < 64; i++ {
		c.Access(i * setStride)
	}
	resident := 0
	for i := uint64(0); i < 64; i++ {
		if c.Probe(i * setStride) {
			resident++
		}
	}
	if resident != cfg.Ways {
		t.Fatalf("%d lines resident in one set, want %d", resident, cfg.Ways)
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := New(small())
	c.Access(0x40)
	acc, miss := c.Stats()
	c.Probe(0x40)
	c.Probe(0x9999999)
	a2, m2 := c.Stats()
	if a2 != acc || m2 != miss {
		t.Fatal("Probe changed stats")
	}
}

func TestFillInsertsWithoutAccessCount(t *testing.T) {
	c := New(small())
	c.Fill(0x2000)
	if acc, _ := c.Stats(); acc != 0 {
		t.Fatal("Fill counted as access")
	}
	if !c.Probe(0x2000) {
		t.Fatal("filled line not resident")
	}
	if !c.Access(0x2000) {
		t.Fatal("access after fill should hit")
	}
}

func TestCapacityFullyUsable(t *testing.T) {
	cfg := small()
	c := New(cfg)
	lines := cfg.SizeBytes / cfg.LineBytes
	for i := 0; i < lines; i++ {
		c.Access(uint64(i * cfg.LineBytes))
	}
	for i := 0; i < lines; i++ {
		if !c.Probe(uint64(i * cfg.LineBytes)) {
			t.Fatalf("line %d missing although footprint == capacity", i)
		}
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	cases := []Config{
		{SizeBytes: 1000, LineBytes: 64, Ways: 4}, // lines not multiple of ways... 1000/64=15
		{SizeBytes: 4096, LineBytes: 64, Ways: 0},
		{SizeBytes: 0, LineBytes: 64, Ways: 4},
		{SizeBytes: 3 * 64 * 4, LineBytes: 64, Ways: 4}, // 3 sets: not a power of two
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%+v) did not panic", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestAssociativityProperty(t *testing.T) {
	// Property: for any access sequence, at most Ways distinct lines from
	// the same set are resident.
	cfg := Config{SizeBytes: 2048, LineBytes: 64, Ways: 2} // 16 sets
	setStride := uint64(16 * 64)
	if err := quick.Check(func(seq []uint8) bool {
		c := New(cfg)
		for _, s := range seq {
			c.Access(uint64(s) * setStride) // all map to set 0
		}
		resident := 0
		for i := uint64(0); i < 256; i++ {
			if c.Probe(i * setStride) {
				resident++
			}
		}
		return resident <= cfg.Ways
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRMergeAndExpire(t *testing.T) {
	m := NewMSHRs(2)
	m.Allocate(0x1000, 100)
	if r, ok := m.Pending(0x1004); !ok || r != 100 {
		t.Fatal("same-block miss must merge")
	}
	if _, ok := m.Pending(0x2000); ok {
		t.Fatal("different block reported pending")
	}
	m.Allocate(0x2000, 50)
	if !m.Full() {
		t.Fatal("two entries should fill a 2-entry file")
	}
	if got := m.NextFree(10); got != 50 {
		t.Fatalf("NextFree = %d, want 50", got)
	}
	m.Expire(60)
	if m.Full() || m.InFlight() != 1 {
		t.Fatal("expire did not release the completed entry")
	}
	m.Expire(100)
	if m.InFlight() != 0 {
		t.Fatal("expire missed the boundary entry")
	}
	if got := m.NextFree(7); got != 7 {
		t.Fatalf("NextFree on empty file = %d, want now", got)
	}
}

func TestMSHROverflowPanics(t *testing.T) {
	m := NewMSHRs(1)
	m.Allocate(0x1000, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("allocating into a full MSHR file did not panic")
		}
	}()
	m.Allocate(0x2000, 20)
}

func TestMSHRCap(t *testing.T) {
	if NewMSHRs(5).Cap() != 5 {
		t.Fatal("Cap mismatch")
	}
}

func TestStridePrefetcherDetects(t *testing.T) {
	p := NewStridePrefetcher(8)
	const site = 0x5000
	addr := uint64(0x10000)
	var got uint64
	ok := false
	for i := 0; i < 6; i++ {
		got, ok = p.Observe(site, addr, 4)
		addr += 16
	}
	if !ok {
		t.Fatal("prefetcher failed to latch a steady stride")
	}
	// Last observed address is addr-16; prediction 4 strides ahead.
	want := addr - 16 + 4*16
	if got != want {
		t.Fatalf("prefetch target %#x, want %#x", got, want)
	}
}

func TestStridePrefetcherIgnoresIrregular(t *testing.T) {
	p := NewStridePrefetcher(8)
	const site = 0x6000
	addrs := []uint64{100, 228, 36, 900, 17}
	for _, a := range addrs {
		if _, ok := p.Observe(site, a, 4); ok {
			t.Fatal("prefetcher latched onto an irregular stream")
		}
	}
}

func TestStridePrefetcherSiteCollision(t *testing.T) {
	p := NewStridePrefetcher(1) // every site collides
	a, b := uint64(0x5000), uint64(0x5004)
	addr := uint64(0x10000)
	for i := 0; i < 10; i++ {
		p.Observe(a, addr, 1)
		if _, ok := p.Observe(b, addr, 1); ok {
			t.Fatal("collision should reset training, never predict")
		}
		addr += 16
	}
}

func TestL1AndLLCConfigs(t *testing.T) {
	l1 := L1Config()
	if l1.SizeBytes != 64<<10 || l1.Ways != 8 || l1.LineBytes != 64 {
		t.Fatalf("L1Config = %+v", l1)
	}
	llc := LLCPartitionConfig()
	if llc.SizeBytes != 4<<20 || llc.Ways != 16 {
		t.Fatalf("LLCPartitionConfig = %+v", llc)
	}
	// Both must construct.
	New(l1)
	New(llc)
}
