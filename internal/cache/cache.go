// Package cache provides the memory-hierarchy building blocks of the core
// model: set-associative LRU caches (used for L1-I, L1-D and the partitioned
// NUCA LLC of Table II), per-thread MSHR accounting that bounds memory-level
// parallelism, and a PC-indexed stride prefetcher.
//
// The package models hit/miss behaviour and occupancy; latencies are
// composed by the core, which owns the cycle clock.
//
// Invariant: every structure is deterministic (LRU state depends only on
// the access sequence) and single-threaded by design — each modelled core
// owns its hierarchy exclusively, so cross-thread interference is always
// explicit (shared LLC partitions, per-thread MSHR budgets), never
// accidental.
package cache

// Config sizes one cache array.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// L1Config matches Table II: 64 KB, 64 B lines, 8-way.
func L1Config() Config { return Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8} }

// LLCPartitionConfig is one thread's partition of the 8 MB 16-way LLC
// (equal split across the two colocated applications, per §V-A).
func LLCPartitionConfig() Config { return Config{SizeBytes: 4 << 20, LineBytes: 64, Ways: 16} }

// Cache is a set-associative cache with true-LRU replacement. It tracks
// tags only (the model needs hit/miss, not data).
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	tags     []uint64 // sets × ways; 0 = invalid
	lru      []uint32 // per-way timestamps
	tick     uint32

	accesses, misses uint64
}

// New builds a cache from cfg. It panics on degenerate geometry since the
// configurations are compile-time constants of the experiments.
func New(cfg Config) *Cache {
	lines := cfg.SizeBytes / cfg.LineBytes
	if cfg.Ways <= 0 || lines <= 0 || lines%cfg.Ways != 0 {
		panic("cache: invalid geometry")
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: lb,
		tags:     make([]uint64, sets*cfg.Ways),
		lru:      make([]uint32, sets*cfg.Ways),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	block := addr >> c.lineBits
	return int(block % uint64(c.sets)), block | 1 // |1 marks valid
}

// Access looks up addr, allocating the line on a miss (LRU victim) and
// updating recency. It reports whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	set, tag := c.index(addr)
	c.accesses++
	c.tick++
	base := set * c.cfg.Ways
	victim, oldest := base, c.tick
	for w := base; w < base+c.cfg.Ways; w++ {
		if c.tags[w] == tag {
			c.lru[w] = c.tick
			return true
		}
		if c.lru[w] < oldest {
			victim, oldest = w, c.lru[w]
		}
	}
	c.misses++
	c.tags[victim] = tag
	c.lru[victim] = c.tick
	return false
}

// Probe reports whether addr is resident without changing any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	for w := base; w < base+c.cfg.Ways; w++ {
		if c.tags[w] == tag {
			return true
		}
	}
	return false
}

// Fill inserts addr (e.g. a prefetch) without counting an access.
func (c *Cache) Fill(addr uint64) {
	set, tag := c.index(addr)
	c.tick++
	base := set * c.cfg.Ways
	victim, oldest := base, c.tick
	for w := base; w < base+c.cfg.Ways; w++ {
		if c.tags[w] == tag {
			c.lru[w] = c.tick
			return
		}
		if c.lru[w] < oldest {
			victim, oldest = w, c.lru[w]
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.tick
}

// Stats returns lifetime access and miss counts.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRate returns misses/accesses (0 if never accessed).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// MSHRs tracks outstanding misses for one thread. Each distinct in-flight
// block occupies one register; accesses to an already-pending block merge.
// Capacity bounds the thread's memory-level parallelism (Table II: 5 MSHRs
// per thread).
type MSHRs struct {
	cap     int
	block   []uint64 // pending block addresses
	readyAt []int64  // completion cycle of each entry
}

// NewMSHRs creates a file with the given capacity.
func NewMSHRs(capacity int) *MSHRs {
	return &MSHRs{cap: capacity, block: make([]uint64, 0, capacity), readyAt: make([]int64, 0, capacity)}
}

// Expire releases entries whose fills completed at or before now.
func (m *MSHRs) Expire(now int64) {
	w := 0
	for i := range m.block {
		if m.readyAt[i] > now {
			m.block[w] = m.block[i]
			m.readyAt[w] = m.readyAt[i]
			w++
		}
	}
	m.block = m.block[:w]
	m.readyAt = m.readyAt[:w]
}

// Pending returns the completion cycle of an in-flight miss to the block
// containing addr, if any (merge case).
func (m *MSHRs) Pending(addr uint64) (readyAt int64, ok bool) {
	b := addr >> 6
	for i, blk := range m.block {
		if blk == b {
			return m.readyAt[i], true
		}
	}
	return 0, false
}

// Full reports whether all registers are occupied.
func (m *MSHRs) Full() bool { return len(m.block) >= m.cap }

// NextFree returns the earliest completion cycle among current entries;
// callers use it to stall until a register frees. It returns now when the
// file is empty.
func (m *MSHRs) NextFree(now int64) int64 {
	if len(m.block) == 0 {
		return now
	}
	min := m.readyAt[0]
	for _, r := range m.readyAt[1:] {
		if r < min {
			min = r
		}
	}
	return min
}

// Allocate records a new outstanding miss completing at readyAt. The caller
// must ensure the file is not full.
func (m *MSHRs) Allocate(addr uint64, readyAt int64) {
	if m.Full() {
		panic("cache: MSHR overflow")
	}
	m.block = append(m.block, addr>>6)
	m.readyAt = append(m.readyAt, readyAt)
}

// InFlight returns the number of outstanding misses.
func (m *MSHRs) InFlight() int { return len(m.block) }

// Cap returns the capacity.
func (m *MSHRs) Cap() int { return m.cap }

// StridePrefetcher is a PC-indexed stride detector (Table II: tracks up to
// 32 load/store PCs). After two accesses from the same PC with a repeating
// stride it predicts the next address.
type StridePrefetcher struct {
	entries int
	pc      []uint64
	last    []uint64
	stride  []int64
	conf    []uint8
}

// NewStridePrefetcher creates a table tracking n PCs (direct-mapped).
func NewStridePrefetcher(n int) *StridePrefetcher {
	return &StridePrefetcher{
		entries: n,
		pc:      make([]uint64, n),
		last:    make([]uint64, n),
		stride:  make([]int64, n),
		conf:    make([]uint8, n),
	}
}

// Observe records an access by the static site to addr and, when a stride
// is confirmed, returns the address predicted degree strides ahead (degree
// lets the prefetcher run far enough ahead of a dense stream to cross into
// the next cache line before demand gets there).
func (p *StridePrefetcher) Observe(site uint64, addr uint64, degree int64) (prefetch uint64, ok bool) {
	i := int((site >> 2) % uint64(p.entries))
	if p.pc[i] != site {
		p.pc[i], p.last[i], p.stride[i], p.conf[i] = site, addr, 0, 0
		return 0, false
	}
	s := int64(addr) - int64(p.last[i])
	p.last[i] = addr
	if s != 0 && s == p.stride[i] {
		if p.conf[i] < 3 {
			p.conf[i]++
		}
	} else {
		p.stride[i] = s
		p.conf[i] = 0
	}
	if p.conf[i] >= 2 && p.stride[i] != 0 {
		return uint64(int64(addr) + degree*p.stride[i]), true
	}
	return 0, false
}
